// Quickstart: your first declarative overlay in ~6 OverLog rules.
//
// A tiny "reachability" overlay: every node holds a `link` table of direct
// neighbors; nodes periodically probe their neighbors and pull back the
// neighbors' reachable sets. The network computes the transitive closure of
// the link graph — each node ends up knowing every node it can reach, with
// no imperative protocol code at all.
//
// This exercises most of the P2 pipeline: materialized soft-state tables,
// periodic rules, stream rules, cross-node heads (the '@' location
// specifier sends tuples over the network), and delta-triggered derivation.
// The fleet itself (event loop, simulated network, transports) comes from
// the ScenarioNet layer that also powers the `p2run` driver.
#include <cstdio>

#include "src/cli/scenario.h"
#include "src/p2/node.h"

namespace {

constexpr char kReachabilityProgram[] = R"OLG(
materialize(link, infinity, 64, keys(2)).
materialize(reachable, infinity, 256, keys(2)).

/* Direct links are reachable. */
r1 reachable@X(X,Y) :- link@X(X,Y).

/* Every 2 seconds, probe each neighbor. */
r2 probe@Y(Y,X) :- periodic@X(X,E,2), link@X(X,Y).

/* A probed node shares everything it can reach with the prober... */
r3 share@X(X,Z) :- probe@Y(Y,X), reachable@Y(Y,Z).

/* ...which the prober merges into its own reachable set. */
r4 reachable@X(X,Z) :- share@X(X,Z).
)OLG";

}  // namespace

int main() {
  using namespace p2;
  // A four-node line: n0 - n1 - n2 - n3. Each node only knows its direct
  // neighbors at startup.
  const size_t kNodes = 4;
  ScenarioNet net(BackendKind::kSim, kNodes, /*seed=*/7);

  std::vector<std::unique_ptr<P2Node>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    P2NodeConfig cfg;
    cfg.executor = net.executor(i);
    cfg.transport = net.transport(i);
    cfg.seed = 100 + i;
    nodes.push_back(std::make_unique<P2Node>(cfg));
    std::string err;
    if (!nodes[i]->Install(kReachabilityProgram, &err)) {
      std::fprintf(stderr, "install failed: %s\n", err.c_str());
      return 1;
    }
  }
  // Seed the line topology (links are one-directional facts here; the
  // probe/share rules traverse them in both directions).
  auto add_link = [&](size_t a, size_t b) {
    Value self = Value::Addr(nodes[a]->addr());
    Value peer = Value::Addr(nodes[b]->addr());
    nodes[a]->GetTable("link")->Insert(Tuple::Make("link", {self, peer}));
  };
  for (size_t i = 0; i + 1 < kNodes; ++i) {
    add_link(i, i + 1);
    add_link(i + 1, i);
  }
  for (auto& n : nodes) {
    n->Start();
  }

  // Let the declarative protocol run for 20 simulated seconds.
  net.Run(20.0);

  std::printf("reachability after 20s of simulated time:\n");
  for (auto& n : nodes) {
    std::printf("  %s reaches:", n->addr().c_str());
    for (const TuplePtr& row : n->GetTable("reachable")->Scan()) {
      std::printf(" %s", row->field(1).AsAddr().c_str());
    }
    std::printf("\n");
  }
  std::printf("\nEvery node should reach every other node (transitive closure\n"
              "of the line graph), computed purely by the 4 OverLog rules.\n");
  return 0;
}
