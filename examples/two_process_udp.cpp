// Real-network deployment: the same P2 runtime over kernel UDP sockets.
//
// Modes:
//   two_process_udp                      one process, two nodes, loopback
//   two_process_udp listen <port>        run a gossip node, print members
//   two_process_udp join <port> <peer>   run a node seeded with 127.0.0.1:<peer>
//
// Multi-process demo (two shells):
//   $ ./two_process_udp listen 9001
//   $ ./two_process_udp join 9002 9001
// Both processes converge on the same two-member view via the 5-rule
// gossip overlay — no simulator anywhere, real datagrams.
//
// Everything here is a thin wrapper over the scenario layer: the no-arg
// mode is literally `p2run --overlay gossip --nodes 2 --udp`, and the
// listen/join modes use a one-node ScenarioNet fleet pinned to a port.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/cli/scenario.h"
#include "src/overlays/gossip.h"

namespace {

int RunNode(uint16_t port, const char* peer_port, double seconds) {
  using namespace p2;
  ScenarioNet net(BackendKind::kUdp, 1, /*seed=*/port, /*loss_rate=*/0,
                  /*udp_base_port=*/port);
  if (!net.ok()) {
    std::fprintf(stderr, "failed to bind UDP port %u\n", port);
    return 1;
  }
  std::printf("node up at %s\n", net.addr(0).c_str());
  GossipConfig cfg;
  cfg.gossip_period_s = 1.0;
  P2NodeConfig nc;
  nc.executor = net.executor(0);
  nc.transport = net.transport(0);
  nc.seed = static_cast<uint64_t>(port) * 2654435761u + 1;
  std::vector<std::string> seeds;
  if (peer_port != nullptr) {
    seeds.push_back(std::string("127.0.0.1:") + peer_port);
  }
  GossipNode node(nc, cfg, seeds);
  node.Start();
  double step = 2.0;
  for (double t = 0; t < seconds; t += step) {
    net.Run(step);
    std::printf("t=%4.0fs members:", t + step);
    for (const std::string& m : node.Members()) {
      std::printf(" %s", m.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

int RunBothInProcess() {
  using namespace p2;
  // A two-node gossip fleet over real kernel UDP datagrams, built on the
  // same ScenarioNet fabric `p2run --overlay gossip --udp` uses.
  ScenarioNet net(BackendKind::kUdp, 2, /*seed=*/1);
  if (!net.ok()) {
    std::fprintf(stderr, "failed to bind UDP sockets\n");
    return 1;
  }
  GossipConfig cfg;
  cfg.gossip_period_s = 0.5;
  P2NodeConfig ca;
  ca.executor = net.executor(0);
  ca.transport = net.transport(0);
  ca.seed = 1;
  P2NodeConfig cb;
  cb.executor = net.executor(1);
  cb.transport = net.transport(1);
  cb.seed = 2;
  GossipNode a(ca, cfg, {});
  GossipNode b(cb, cfg, {net.addr(0)});  // b knows a
  a.Start();
  b.Start();
  std::printf("a = %s, b = %s (b seeded with a)\n", net.addr(0).c_str(),
              net.addr(1).c_str());
  net.Run(3.0);
  std::printf("a's members:");
  for (const std::string& m : a.Members()) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\nb's members:");
  for (const std::string& m : b.Members()) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\nboth views should contain both addresses — learned over real\n"
              "kernel UDP datagrams (a learned b from b's first gossip push).\n");
  return (a.Members().size() == 2 && b.Members().size() == 2) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "listen") == 0) {
    return RunNode(static_cast<uint16_t>(std::atoi(argv[2])), nullptr, 60.0);
  }
  if (argc >= 4 && std::strcmp(argv[1], "join") == 0) {
    return RunNode(static_cast<uint16_t>(std::atoi(argv[2])), argv[3], 60.0);
  }
  return RunBothInProcess();
}
