// A distributed key-value store in three extra OverLog rules on top of the
// bundled 47-rule Chord specification.
//
// This is the paper's composition story (§2.5): the DHT "application" does
// not re-implement routing, joins, or failure handling — it *extends* the
// Chord program with rules that consume its lookupResults and tables.
//
//   put(k, v): lookup k's successor via Chord, then ship a `store` tuple
//              to that node (rule KV1 stores it).
//   get(k):    lookup k's successor, send a kvGet to it; rule KV2 joins
//              the store table and replies with kvGetResp.
//
// The ring itself rides the ScenarioNet fleet layer shared with `p2run`;
// only the three KV rules and the put/get driver live here.
#include <cstdio>

#include "src/cli/scenario.h"
#include "src/overlays/chord.h"

namespace {

// The whole key-value "service": one table and three rules.
constexpr char kKvRules[] = R"OLG(
materialize(store, infinity, 10000, keys(2)).

/* A put arriving at the key's successor is stored there. */
KV1 store@NI(NI,K,V) :- kvPut@NI(NI,K,V).

/* A get arriving at the key's successor looks the key up in the store... */
KV2 kvGetResp@RI(RI,K,V) :- kvGet@NI(NI,RI,K), store@NI(NI,K,V).

/* ...and missing keys produce an explicit miss so callers need no timer. */
KV3 kvGetMiss@RI(RI,K) :- kvGet@NI(NI,RI,K), not store@NI(NI,K,_).
)OLG";

}  // namespace

int main() {
  using namespace p2;
  const size_t kNodes = 8;
  ScenarioNet net(BackendKind::kSim, kNodes, /*seed=*/11);

  // An 8-node ring with snappy timers (this is a demo, not an experiment).
  ChordConfig chord;
  chord.finger_fix_period_s = 2.0;
  chord.stabilize_period_s = 2.5;
  chord.ping_period_s = 0.8;
  chord.succ_lifetime_s = 1.7;

  std::vector<std::unique_ptr<ChordNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    P2NodeConfig cfg;
    cfg.executor = net.executor(i);
    cfg.transport = net.transport(i);
    cfg.seed = 1000 + i;
    nodes.push_back(std::make_unique<ChordNode>(cfg, chord, i == 0 ? "" : net.addr(0),
                                                kKvRules));
    nodes[i]->Start();
    net.Run(1.0);  // stagger joins
  }
  net.Run(60.0 - net.Now());  // let the ring converge

  // --- put: resolve the key's successor, then ship the value there. ---
  ChordNode* client = nodes[3].get();
  auto put = [&](const std::string& key, const std::string& value) {
    Uint160 k = Uint160::HashOf(key);
    Uint160 ev = client->Lookup(k);
    client->OnLookupResult([=, &net](const ChordNode::LookupResult& r) {
      if (r.event_id != ev) {
        return;
      }
      std::printf("[%6.2fs] put '%s' -> stored at %s (successor of 0x%.12s...)\n",
                  net.Now(), key.c_str(), r.successor_addr.c_str(),
                  k.ToHex().c_str());
      // Injected tuples route by their location specifier: this one ships
      // straight to the key's successor.
      client->node()->Inject(Tuple::Make(
          "kvPut", {Value::Addr(r.successor_addr), Value::Id(k), Value::Str(value)}));
    });
  };
  put("declarative", "overlays");
  put("sigops", "sosp 2005");
  put("p2", "dataflow");
  net.Run(10.0);

  // --- get: resolve, then ask the holder; KV2/KV3 answer. ---
  ChordNode* reader = nodes[6].get();
  reader->node()->Subscribe("kvGetResp", [&](const TuplePtr& t) {
    std::printf("[%6.2fs] get -> '%s'\n", net.Now(), t->field(2).AsStr().c_str());
  });
  reader->node()->Subscribe("kvGetMiss", [&](const TuplePtr&) {
    std::printf("[%6.2fs] get -> MISS\n", net.Now());
  });
  auto get = [&](const std::string& key) {
    Uint160 k = Uint160::HashOf(key);
    Uint160 ev = reader->Lookup(k);
    reader->OnLookupResult([=](const ChordNode::LookupResult& r) {
      if (r.event_id != ev) {
        return;
      }
      reader->node()->Inject(Tuple::Make(
          "kvGet", {Value::Addr(r.successor_addr), Value::Addr(reader->addr()),
                    Value::Id(k)}));
    });
  };
  get("declarative");
  get("p2");
  get("unknown-key");
  net.Run(10.0);

  std::printf("\nstore contents per node:\n");
  for (auto& n : nodes) {
    Table* store = n->node()->GetTable("store");
    if (store->size() > 0) {
      std::printf("  %s holds %zu value(s)\n", n->addr().c_str(), store->size());
    }
  }
  return 0;
}
