// Narada mesh monitor: watch the §2.3 mesh-maintenance protocol run —
// epidemic membership, sequence-number refresh, latency probing, and
// failure detection when a node silently dies.
#include <cstdio>

#include "src/overlays/narada.h"
#include "src/sim/network.h"

int main() {
  using namespace p2;
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 23);

  NaradaConfig narada;
  narada.refresh_period_s = 1.0;
  narada.probe_period_s = 0.5;
  narada.dead_after_s = 6.0;
  narada.latency_probe_period_s = 2.0;

  // A star-seeded mesh: everyone initially knows only m0.
  const size_t kNodes = 6;
  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<NaradaNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    transports.push_back(net.MakeTransport("m" + std::to_string(i), i));
    P2NodeConfig cfg;
    cfg.executor = &loop;
    cfg.transport = transports[i].get();
    cfg.seed = 2000 + i;
    std::vector<std::string> seeds;
    if (i != 0) {
      seeds.push_back("m0");
    }
    nodes.push_back(std::make_unique<NaradaNode>(cfg, narada, seeds));
    nodes[i]->Start();
  }

  auto dump = [&]() {
    std::printf("--- t = %.1fs ---\n", loop.Now());
    for (auto& n : nodes) {
      if (!n) {
        continue;
      }
      std::printf("  %s: %zu members (", n->addr().c_str(), n->Members().size());
      size_t live = 0;
      for (const NaradaMember& m : n->Members()) {
        live += m.live ? 1 : 0;
      }
      std::printf("%zu live), %zu neighbors", live, n->Neighbors().size());
      auto lats = n->Latencies();
      if (!lats.empty()) {
        std::printf(", rtt(%s)=%.0fms", lats[0].first.c_str(), lats[0].second * 1000);
      }
      std::printf("\n");
    }
  };

  loop.RunUntil(5.0);
  dump();
  loop.RunUntil(20.0);
  dump();

  std::printf("\nkilling m4 (it goes silent — no goodbye message)...\n\n");
  nodes[4].reset();
  transports[4].reset();

  loop.RunUntil(45.0);
  dump();
  std::printf("\nafter the %gs silence threshold, m4's former neighbors declared it\n"
              "dead (rule L2), dropped the link (L3), and flooded the death with a\n"
              "bumped sequence number (L4 + refreshes) — every node should now show\n"
              "one non-live member.\n",
              narada.dead_after_s);
  return 0;
}
