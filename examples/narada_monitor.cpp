// Narada mesh monitor: watch the §2.3 mesh-maintenance protocol run —
// epidemic membership, sequence-number refresh, latency probing, and
// failure detection when a node silently dies. The fleet comes from the
// ScenarioNet layer shared with `p2run`; the mid-run crash uses its
// Kill() primitive.
#include <cstdio>

#include "src/cli/scenario.h"
#include "src/overlays/narada.h"

int main() {
  using namespace p2;
  // A star-seeded mesh: everyone initially knows only node 0.
  const size_t kNodes = 6;
  ScenarioNet net(BackendKind::kSim, kNodes, /*seed=*/23);

  NaradaConfig narada;
  narada.refresh_period_s = 1.0;
  narada.probe_period_s = 0.5;
  narada.dead_after_s = 6.0;
  narada.latency_probe_period_s = 2.0;

  std::vector<std::unique_ptr<NaradaNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    P2NodeConfig cfg;
    cfg.executor = net.executor(i);
    cfg.transport = net.transport(i);
    cfg.seed = 2000 + i;
    std::vector<std::string> seeds;
    if (i != 0) {
      seeds.push_back(net.addr(0));
    }
    nodes.push_back(std::make_unique<NaradaNode>(cfg, narada, seeds));
    nodes[i]->Start();
  }

  auto dump = [&]() {
    std::printf("--- t = %.1fs ---\n", net.Now());
    for (auto& n : nodes) {
      if (!n) {
        continue;
      }
      std::printf("  %s: %zu members (", n->addr().c_str(), n->Members().size());
      size_t live = 0;
      for (const NaradaMember& m : n->Members()) {
        live += m.live ? 1 : 0;
      }
      std::printf("%zu live), %zu neighbors", live, n->Neighbors().size());
      auto lats = n->Latencies();
      if (!lats.empty()) {
        std::printf(", rtt(%s)=%.0fms", lats[0].first.c_str(), lats[0].second * 1000);
      }
      std::printf("\n");
    }
  };

  net.Run(5.0);
  dump();
  net.Run(15.0);
  dump();

  std::printf("\nkilling %s (it goes silent — no goodbye message)...\n\n",
              net.addr(4).c_str());
  nodes[4].reset();
  net.Kill(4);

  net.Run(25.0);
  dump();
  std::printf("\nafter the %gs silence threshold, the dead node's former neighbors\n"
              "declared it dead (rule L2), dropped the link (L3), and flooded the\n"
              "death with a bumped sequence number (L4 + refreshes) — every node\n"
              "should now show one non-live member.\n",
              narada.dead_after_s);
  return 0;
}
