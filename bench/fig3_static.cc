// Figure 3 reproduction (E1, E2, E3 in DESIGN.md): performance of static
// Chord networks of different sizes.
//
//   (i)   hop-count distribution for uniform lookups, N in {100, 300, 500}
//   (ii)  per-node maintenance bandwidth while idling, N in {100..500}
//   (iii) cumulative distribution of lookup latency
//
// Setup mirrors §5: transit-stub topology (10 domains, 100 ms inter-domain,
// 2 ms intra-domain), full Appendix-B Chord with paper timer defaults, and
// a uniform workload of lookups against a static membership.
//
// Usage: fig3_static [--quick]   (--quick shrinks populations for CI runs)
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/harness/metrics.h"
#include "src/harness/workload.h"

namespace p2 {
namespace {

struct Fig3Result {
  size_t n = 0;
  Histogram hops{0, 16, 16};
  Cdf latency;
  double maint_bw_per_node = 0;  // bytes/s
  double ring_consistency = 0;
  double mean_mem_bytes = 0;
};

Fig3Result RunOne(size_t n, int lookups, uint64_t seed) {
  TestbedConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.join_stagger_s = 3.0;
  ChordTestbed tb(cfg);
  // Joins staggered, then time for rings and fingers to converge.
  double settle = 3.0 * static_cast<double>(n) + 300.0;
  tb.BuildAndSettle(settle);

  Fig3Result r;
  r.n = n;
  r.ring_consistency = tb.RingConsistencyFraction();

  // Maintenance bandwidth measured over an idle window (no lookups yet).
  uint64_t maint0 = tb.TotalMaintBytesOut();
  double window = 120.0;
  tb.RunFor(window);
  r.maint_bw_per_node = static_cast<double>(tb.TotalMaintBytesOut() - maint0) / window /
                        static_cast<double>(tb.num_live());
  r.mean_mem_bytes = tb.MeanNodeMemoryBytes();

  // Uniform lookup workload.
  for (int i = 0; i < lookups; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(0.25);
  }
  tb.RunFor(30.0);
  for (const auto& rec : tb.lookups()) {
    if (rec.completed) {
      r.hops.Add(static_cast<double>(rec.hops));
      r.latency.Add(rec.latency_s);
    }
  }
  return r;
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  std::vector<size_t> sizes = quick ? std::vector<size_t>{20, 40, 60}
                                    : std::vector<size_t>{100, 200, 300, 400, 500};
  std::vector<size_t> cdf_sizes = quick ? sizes : std::vector<size_t>{100, 300, 500};
  int lookups = quick ? 120 : 400;

  std::printf("=== Figure 3: static Chord networks (P2/OverLog) ===\n");
  std::printf("topology: 10 transit domains, 100ms inter / 2ms intra, 100/10 Mbps\n");
  std::printf("timers: fix=10s stabilize=15s ping=5s (paper defaults)\n\n");

  std::vector<Fig3Result> results;
  for (size_t n : sizes) {
    std::fprintf(stderr, "[fig3] running N=%zu...\n", n);
    results.push_back(RunOne(n, lookups, 42 + n));
  }

  std::printf("--- Fig 3(ii): maintenance bandwidth vs population ---\n");
  std::printf("%s\n", FormatRow({"N", "maint B/s/node", "ring consist.", "mem/node kB"}).c_str());
  for (const Fig3Result& r : results) {
    char bw[32];
    char rc[32];
    char mem[32];
    std::snprintf(bw, sizeof(bw), "%.1f", r.maint_bw_per_node);
    std::snprintf(rc, sizeof(rc), "%.3f", r.ring_consistency);
    std::snprintf(mem, sizeof(mem), "%.0f", r.mean_mem_bytes / 1024.0);
    std::printf("%s\n", FormatRow({std::to_string(r.n), bw, rc, mem}).c_str());
  }

  std::printf("\n--- Fig 3(i): hop-count frequency distribution ---\n");
  {
    std::vector<std::string> header = {"hops"};
    for (const Fig3Result& r : results) {
      bool is_cdf_size = false;
      for (size_t s : cdf_sizes) {
        is_cdf_size |= r.n == s;
      }
      if (is_cdf_size) {
        header.push_back("N=" + std::to_string(r.n));
      }
    }
    std::printf("%s\n", FormatRow(header, 10).c_str());
    for (int h = 0; h < 14; ++h) {
      std::vector<std::string> row = {std::to_string(h)};
      for (const Fig3Result& r : results) {
        bool is_cdf_size = false;
        for (size_t s : cdf_sizes) {
          is_cdf_size |= r.n == s;
        }
        if (!is_cdf_size) {
          continue;
        }
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.3f", r.hops.Frequencies()[h].second);
        row.push_back(cell);
      }
      std::printf("%s\n", FormatRow(row, 10).c_str());
    }
    for (const Fig3Result& r : results) {
      std::printf("N=%zu: mean hops %.2f (log2(N)/2 = %.2f), completed lookups %zu\n", r.n,
                  r.hops.Mean(), 0.5 * std::log2(static_cast<double>(r.n)),
                  r.hops.total());
    }
  }

  std::printf("\n--- Fig 3(iii): lookup latency CDF (seconds) ---\n");
  std::printf("%s\n", FormatRow({"quantile", "N=100", "N=300", "N=500"}, 10).c_str());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.96, 0.99}) {
    std::vector<std::string> row;
    char qs[16];
    std::snprintf(qs, sizeof(qs), "p%02.0f", q * 100);
    row.push_back(qs);
    for (const Fig3Result& r : results) {
      bool is_cdf_size = false;
      for (size_t s : cdf_sizes) {
        is_cdf_size |= r.n == s;
      }
      if (!is_cdf_size) {
        continue;
      }
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.3f", r.latency.Quantile(q));
      row.push_back(cell);
    }
    std::printf("%s\n", FormatRow(row, 10).c_str());
  }
  for (const Fig3Result& r : results) {
    bool is_cdf_size = false;
    for (size_t s : cdf_sizes) {
      is_cdf_size |= r.n == s;
    }
    if (is_cdf_size) {
      std::printf("N=%zu: fraction of lookups completing within 6s = %.3f\n", r.n,
                  r.latency.FractionBelow(6.0));
    }
  }
  std::printf("\npaper shape check: mean hops ~ log2(N)/2; BW low hundreds of B/s,\n"
              "mildly increasing with N; at N=500 ~96%% of lookups < 6 s.\n");
  return 0;
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) { return p2::Main(argc, argv); }
