// Specification-size and footprint reproduction (E7, E9).
//
// The paper's headline numbers: a Narada-style mesh in 16 rules, full Chord
// in 47 rules (§1), and a full-Chord working set of roughly 800 kB (§1).
// This harness parses each bundled overlay, counts rules/tables/watches,
// compiles one node per overlay and reports the resulting dataflow size and
// resident memory estimate, plus per-rule firing counts after a short run
// (the paper's "multi-resolution introspection" claim, §7).
#include <cstdio>

#include "src/overlays/chord.h"
#include "src/overlays/gossip.h"
#include "src/overlays/narada.h"
#include "src/overlog/parser.h"
#include "src/harness/metrics.h"
#include "src/harness/workload.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

struct SpecStats {
  std::string name;
  size_t rules = 0;
  size_t facts = 0;
  size_t tables = 0;
  size_t watches = 0;
  size_t source_lines = 0;
  size_t elements = 0;
  size_t edges = 0;
};

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  bool nonblank = false;
  for (char c : text) {
    if (c == '\n') {
      lines += nonblank ? 1 : 0;
      nonblank = false;
    } else if (!isspace(static_cast<unsigned char>(c))) {
      nonblank = true;
    }
  }
  return lines + (nonblank ? 1 : 0);
}

SpecStats Analyze(const std::string& name, const std::string& program_text) {
  SpecStats s;
  s.name = name;
  s.source_lines = CountLines(program_text);
  ProgramAst ast;
  std::string err;
  if (!ParseOverLog(program_text, &ast, &err)) {
    std::fprintf(stderr, "parse error in %s: %s\n", name.c_str(), err.c_str());
    return s;
  }
  for (const RuleAst& r : ast.rules) {
    if (r.IsFact()) {
      ++s.facts;
    } else {
      ++s.rules;
    }
  }
  s.tables = ast.materializations.size();
  s.watches = ast.watches.size();

  // Compile into a throwaway node to measure the generated dataflow.
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("spec", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  P2Node node(nc);
  if (node.Install(program_text, &err)) {
    s.elements = node.graph().num_elements();
    s.edges = node.graph().num_edges();
  } else {
    std::fprintf(stderr, "plan error in %s: %s\n", name.c_str(), err.c_str());
  }
  return s;
}

int Main() {
  std::printf("=== E7: specification size (rules / tables / compiled dataflow) ===\n");
  std::printf("%s\n", FormatRow({"overlay", "rules", "facts", "tables", "lines", "elements",
                                 "edges"},
                                10)
                          .c_str());
  ChordConfig chord_cfg;
  NaradaConfig narada_cfg;
  GossipConfig gossip_cfg;
  for (const SpecStats& s :
       {Analyze("chord", ChordProgramText(chord_cfg)),
        Analyze("narada", NaradaProgramText(narada_cfg)),
        Analyze("gossip", GossipProgramText(gossip_cfg))}) {
    std::printf("%s\n", FormatRow({s.name, std::to_string(s.rules), std::to_string(s.facts),
                                   std::to_string(s.tables), std::to_string(s.source_lines),
                                   std::to_string(s.elements), std::to_string(s.edges)},
                                  10)
                            .c_str());
  }
  std::printf("paper: Chord = 47 rules, Narada mesh = 16 rules; MIT Chord ~ thousands of\n"
              "lines of C++, MACEDON Chord > 320 statements.\n\n");

  std::printf("=== E9: per-node working set, running full Chord (8-node ring) ===\n");
  TestbedConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 5;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(120.0);
  tb.RunFor(120.0);
  std::printf("mean approx working set per node: %.0f kB (paper: ~800 kB incl. C++ heap)\n\n",
              tb.MeanNodeMemoryBytes() / 1024.0);

  std::printf("=== E7b: per-rule firing counts (introspection, one node, 120 s) ===\n");
  {
    SimEventLoop loop;
    SimNetwork net(&loop, Topology(TopologyConfig{}), 2);
    auto transport = net.MakeTransport("n0", 0);
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = transport.get();
    nc.seed = 2;
    ChordNode node(nc, chord_cfg, "");
    node.Start();
    loop.RunUntil(120.0);
    auto counts = node.node()->RuleFireCounts();
    std::vector<std::pair<std::string, uint64_t>> sorted(counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [rule, fires] : sorted) {
      if (fires > 0) {
        std::printf("  %-6s %8llu fires\n", rule.c_str(),
                    static_cast<unsigned long long>(fires));
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace p2

int main() { return p2::Main(); }
