// Goodput vs. datagram loss for the reliable transport stack.
//
// Two endpoints on the simulated transit-stub fabric; the sender pushes a
// fixed number of tuple-sized payloads through a ReliableChannel while the
// fabric drops datagrams at increasing rates. Reported per loss rate:
// delivered fraction, goodput (payload bytes per virtual second), the
// retransmission overhead the stack paid to get there, and the smoothed
// RTT / congestion window it settled on.
//
//   ./transport_loss [payloads_per_rate]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/metrics.h"
#include "src/net/stack/reliable_channel.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace {

struct RunResult {
  size_t delivered = 0;
  double virtual_s = 0;
  p2::ReliableChannelStats stats;
  uint64_t wire_bytes_out = 0;
};

RunResult RunOnce(double loss_rate, size_t payloads, size_t payload_bytes) {
  p2::SimEventLoop loop;
  p2::SimNetwork net(&loop, p2::Topology(p2::TopologyConfig{}), /*seed=*/42);
  net.set_loss_rate(loss_rate);
  std::unique_ptr<p2::SimTransport> a = net.MakeTransport("a", 0);
  std::unique_ptr<p2::SimTransport> b = net.MakeTransport("b", 1);
  p2::ReliableConfig cfg;
  p2::ReliableChannel ca(a.get(), &loop, cfg, /*seed=*/1);
  p2::ReliableChannel cb(b.get(), &loop, cfg, /*seed=*/2);

  RunResult result;
  cb.SetReceiver([&result](const std::string&, const std::vector<uint8_t>&) {
    ++result.delivered;
  });

  // Pace sends at 50/s so the run exercises the window rather than just
  // flooding the bounded queue.
  std::vector<uint8_t> payload(payload_bytes, 0xAB);
  for (size_t i = 0; i < payloads; ++i) {
    loop.ScheduleAfter(0.02 * static_cast<double>(i), [&ca, payload]() {
      ca.SendTo("b", payload, p2::TrafficClass::kLookup);
    });
  }
  double send_phase = 0.02 * static_cast<double>(payloads);
  loop.RunUntil(send_phase + 120.0);  // generous drain tail for retries

  result.virtual_s = loop.Now();
  result.stats = ca.Stats();
  result.wire_bytes_out = a->stats().bytes_out;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  size_t payloads = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 500;
  const size_t payload_bytes = 128;  // a typical marshaled tuple
  const double rates[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::printf("transport_loss: %zu payloads of %zu bytes per rate\n\n", payloads,
              payload_bytes);
  std::printf("%s\n",
              p2::FormatRow({"loss", "delivered", "goodput_Bps", "retx", "retx_ovh",
                             "srtt_ms", "cwnd", "qdrops"})
                  .c_str());
  for (double rate : rates) {
    RunResult r = RunOnce(rate, payloads, payload_bytes);
    double goodput = r.virtual_s <= 0
                         ? 0
                         : static_cast<double>(r.delivered * payload_bytes) / r.virtual_s;
    double overhead = r.stats.data_frames_sent == 0
                          ? 0
                          : static_cast<double>(r.stats.retransmits) /
                                static_cast<double>(r.stats.data_frames_sent);
    char delivered[32], goodput_s[32], overhead_s[32], srtt_s[32], cwnd_s[32];
    std::snprintf(delivered, sizeof(delivered), "%zu/%zu", r.delivered, payloads);
    std::snprintf(goodput_s, sizeof(goodput_s), "%.0f", goodput);
    std::snprintf(overhead_s, sizeof(overhead_s), "%.2f", overhead);
    std::snprintf(srtt_s, sizeof(srtt_s), "%.0f", r.stats.MeanSrttS() * 1000.0);
    std::snprintf(cwnd_s, sizeof(cwnd_s), "%.1f", r.stats.MeanCwnd());
    char rate_s[32];
    std::snprintf(rate_s, sizeof(rate_s), "%.2f", rate);
    std::printf("%s\n", p2::FormatRow({rate_s, delivered, goodput_s,
                                       std::to_string(r.stats.retransmits), overhead_s,
                                       srtt_s, cwnd_s,
                                       std::to_string(r.stats.queue_drops)})
                            .c_str());
  }
  return 0;
}
