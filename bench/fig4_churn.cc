// Figure 4 reproduction (E4, E5, E6): a 400-node Chord overlay under
// varying degrees of membership churn, following the Bamboo methodology the
// paper cites — exponential session times with means {8, 16, 32, 64, 128}
// minutes, constant population (a dead node is immediately replaced by a
// fresh joiner), 20 minutes of churn.
//
//   (i)   maintenance bandwidth (bytes/s per node) during the churn phase
//   (ii)  CDF of per-window lookup consistency fractions
//   (iii) CDF of lookup latency under churn
//
// Usage: fig4_churn [--quick]
#include <cstdio>
#include <cstring>

#include "src/harness/churn.h"
#include "src/harness/metrics.h"
#include "src/harness/workload.h"

namespace p2 {
namespace {

struct Fig4Result {
  double session_min = 0;
  double maint_bw_per_node = 0;
  Cdf window_consistency;  // one sample per measurement window
  Cdf latency;
  size_t issued = 0;
  size_t completed = 0;
  size_t consistent = 0;
  uint64_t deaths = 0;
};

Fig4Result RunOne(size_t n, double session_min, double churn_s, uint64_t seed) {
  TestbedConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.join_stagger_s = 3.0;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(3.0 * static_cast<double>(n) + 300.0);

  ChurnConfig cc;
  cc.session_mean_s = session_min * 60.0;
  cc.seed = seed ^ 0xC0FFEE;
  ChurnDriver churn(&tb, cc);
  churn.Start();

  Fig4Result r;
  r.session_min = session_min;
  uint64_t maint0 = tb.TotalMaintBytesOut();
  double t0 = tb.Now();

  // One lookup per second; consistency audited per 60-second window.
  const double window_s = 60.0;
  double elapsed = 0;
  size_t lookups_before_window = 0;
  while (elapsed < churn_s) {
    double chunk = std::min(window_s, churn_s - elapsed);
    for (int i = 0; i < static_cast<int>(chunk); ++i) {
      tb.IssueRandomLookup();
      tb.RunFor(1.0);
    }
    elapsed += chunk;
    // Window accounting: look at lookups issued in this window that have
    // already completed.
    size_t window_completed = 0;
    size_t window_consistent = 0;
    for (size_t i = lookups_before_window; i < tb.lookups().size(); ++i) {
      const auto& rec = tb.lookups()[i];
      if (rec.completed) {
        ++window_completed;
        window_consistent += rec.consistent ? 1 : 0;
      }
    }
    if (window_completed > 0) {
      r.window_consistency.Add(static_cast<double>(window_consistent) /
                               static_cast<double>(window_completed));
    } else {
      r.window_consistency.Add(0.0);
    }
    lookups_before_window = tb.lookups().size();
  }
  tb.RunFor(30.0);  // drain stragglers

  r.maint_bw_per_node = static_cast<double>(tb.TotalMaintBytesOut() - maint0) /
                        (tb.Now() - t0) / static_cast<double>(tb.num_live());
  r.deaths = churn.deaths();
  for (const auto& rec : tb.lookups()) {
    ++r.issued;
    if (rec.completed) {
      ++r.completed;
      r.consistent += rec.consistent ? 1 : 0;
      r.latency.Add(rec.latency_s);
    }
  }
  return r;
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  size_t n = quick ? 60 : 400;
  double churn_s = quick ? 300.0 : 1200.0;
  std::vector<double> sessions_min =
      quick ? std::vector<double>{2, 8, 32} : std::vector<double>{8, 16, 32, 64, 128};

  std::printf("=== Figure 4: %zu-node Chord under churn (P2/OverLog) ===\n", n);
  std::printf("churn: exponential sessions, constant population, %.0f min of churn\n\n",
              churn_s / 60.0);

  std::vector<Fig4Result> results;
  for (double s : sessions_min) {
    std::fprintf(stderr, "[fig4] running session mean %.0f min...\n", s);
    results.push_back(RunOne(n, s, churn_s, 1234 + static_cast<uint64_t>(s)));
  }

  std::printf("--- Fig 4(i): maintenance bandwidth under churn ---\n");
  std::printf("%s\n",
              FormatRow({"session min", "maint B/s/node", "deaths", "completed%"}).c_str());
  for (const Fig4Result& r : results) {
    char bw[32];
    char comp[32];
    std::snprintf(bw, sizeof(bw), "%.1f", r.maint_bw_per_node);
    std::snprintf(comp, sizeof(comp), "%.1f",
                  r.issued == 0 ? 0.0
                                : 100.0 * static_cast<double>(r.completed) /
                                      static_cast<double>(r.issued));
    std::printf("%s\n", FormatRow({std::to_string(static_cast<int>(r.session_min)), bw,
                                   std::to_string(r.deaths), comp})
                            .c_str());
  }

  std::printf("\n--- Fig 4(ii): lookup consistency under churn ---\n");
  std::printf("%s\n",
              FormatRow({"session min", "overall", "p10 window", "p50 window", "p90 window"})
                  .c_str());
  for (const Fig4Result& r : results) {
    char overall[32];
    char p10[32];
    char p50[32];
    char p90[32];
    std::snprintf(overall, sizeof(overall), "%.3f",
                  r.completed == 0 ? 0.0
                                   : static_cast<double>(r.consistent) /
                                         static_cast<double>(r.completed));
    std::snprintf(p10, sizeof(p10), "%.3f", r.window_consistency.Quantile(0.10));
    std::snprintf(p50, sizeof(p50), "%.3f", r.window_consistency.Quantile(0.50));
    std::snprintf(p90, sizeof(p90), "%.3f", r.window_consistency.Quantile(0.90));
    std::printf("%s\n", FormatRow({std::to_string(static_cast<int>(r.session_min)), overall,
                                   p10, p50, p90})
                            .c_str());
  }

  std::printf("\n--- Fig 4(iii): lookup latency under churn (seconds) ---\n");
  std::printf("%s\n",
              FormatRow({"session min", "p50", "p90", "p96", "frac<4s"}).c_str());
  for (const Fig4Result& r : results) {
    char p50[32];
    char p90[32];
    char p96[32];
    char f4[32];
    std::snprintf(p50, sizeof(p50), "%.3f", r.latency.Quantile(0.5));
    std::snprintf(p90, sizeof(p90), "%.3f", r.latency.Quantile(0.9));
    std::snprintf(p96, sizeof(p96), "%.3f", r.latency.Quantile(0.96));
    std::snprintf(f4, sizeof(f4), "%.3f", r.latency.FractionBelow(4.0));
    std::printf("%s\n", FormatRow({std::to_string(static_cast<int>(r.session_min)), p50, p90,
                                   p96, f4})
                            .c_str());
  }
  std::printf(
      "\npaper shape check: BW rises as sessions shorten; >=97%% consistency at\n"
      ">=64 min sessions, collapsing under high churn (8-16 min); latency\n"
      "degrades as churn increases.\n");
  return 0;
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) { return p2::Main(argc, argv); }
