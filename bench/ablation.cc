// Ablation benchmarks for design choices DESIGN.md calls out.
//
// A. Eager vs naive finger fixing. The paper presents both a naive
//    fix-finger loop (§4, rules F1-F3) and the optimized Appendix-B rules
//    where one lookup result eagerly populates every later finger it covers
//    (F4-F9). We measure finger-table completeness over time, lookup hops,
//    and the bandwidth the eager variant saves.
//
// B. Timer tuning. §1 positions P2 against "fine-grained timer tuning ...
//    of mature, efficient but painstaking overlay implementations": a
//    single knob trades maintenance bandwidth for failure-recovery speed.
//    We sweep the ping/stabilize/TTL family and measure both sides.
//
// Usage: ablation [--quick]
#include <cstdio>
#include <cstring>

#include "src/harness/churn.h"
#include "src/harness/metrics.h"
#include "src/harness/workload.h"

namespace p2 {
namespace {

ChordConfig ScaledTimers(double ping_s) {
  ChordConfig c;
  c.ping_period_s = ping_s;
  c.succ_lifetime_s = 2.1 * ping_s;
  c.stabilize_period_s = 3.0 * ping_s;
  c.finger_fix_period_s = 2.0 * ping_s;
  c.finger_lifetime_s = 36.0 * ping_s;
  return c;
}

void RunFingerAblation(size_t n, int lookups) {
  std::printf("--- Ablation A: eager (Appendix B) vs naive (§4) finger fixing ---\n");
  std::printf("%s\n", FormatRow({"variant", "fingers@60s", "fingers@300s", "mean hops",
                                 "maintB/s"},
                                13)
                          .c_str());
  for (bool eager : {true, false}) {
    TestbedConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 99;
    cfg.join_stagger_s = 1.0;
    cfg.chord = ScaledTimers(2.0);
    cfg.chord.eager_fingers = eager;
    ChordTestbed tb(cfg);
    tb.BuildAndSettle(1.0 * static_cast<double>(n) + 60.0);
    tb.RunFor(60.0);
    double fingers_60 = tb.MeanFingerRows();
    uint64_t maint0 = tb.TotalMaintBytesOut();
    tb.RunFor(240.0);
    double fingers_300 = tb.MeanFingerRows();
    double bw = static_cast<double>(tb.TotalMaintBytesOut() - maint0) / 240.0 /
                static_cast<double>(tb.num_live());
    for (int i = 0; i < lookups; ++i) {
      tb.IssueRandomLookup();
      tb.RunFor(0.5);
    }
    tb.RunFor(20.0);
    Cdf hops;
    for (const auto& rec : tb.lookups()) {
      if (rec.completed) {
        hops.Add(static_cast<double>(rec.hops));
      }
    }
    char f60[32];
    char f300[32];
    char hop[32];
    char bws[32];
    std::snprintf(f60, sizeof(f60), "%.1f", fingers_60);
    std::snprintf(f300, sizeof(f300), "%.1f", fingers_300);
    std::snprintf(hop, sizeof(hop), "%.2f", hops.Mean());
    std::snprintf(bws, sizeof(bws), "%.1f", bw);
    std::printf("%s\n",
                FormatRow({eager ? "eager" : "naive", f60, f300, hop, bws}, 13).c_str());
  }
  std::printf("expected: eager fills ~160 finger rows within a couple of fix periods;\n"
              "naive advances one index per period (160 periods per sweep).\n\n");
}

void RunTimerAblation(size_t n, double churn_s) {
  std::printf("--- Ablation B: the timer-tuning tradeoff (§1) ---\n");
  std::printf("%s\n", FormatRow({"ping (s)", "maintB/s/node", "consistency", "complete%"},
                                14)
                          .c_str());
  for (double ping : {1.0, 2.5, 5.0, 10.0}) {
    TestbedConfig cfg;
    cfg.num_nodes = n;
    cfg.seed = 7;
    cfg.join_stagger_s = 1.0;
    cfg.chord = ScaledTimers(ping);
    ChordTestbed tb(cfg);
    tb.BuildAndSettle(1.0 * static_cast<double>(n) + 12.0 * ping + 60.0);
    ChurnConfig cc;
    cc.session_mean_s = 16 * 60.0;
    cc.seed = 5;
    ChurnDriver churn(&tb, cc);
    churn.Start();
    uint64_t maint0 = tb.TotalMaintBytesOut();
    double t0 = tb.Now();
    for (int i = 0; i < static_cast<int>(churn_s); ++i) {
      tb.IssueRandomLookup();
      tb.RunFor(1.0);
    }
    tb.RunFor(30.0);
    double bw = static_cast<double>(tb.TotalMaintBytesOut() - maint0) / (tb.Now() - t0) /
                static_cast<double>(tb.num_live());
    size_t completed = 0;
    size_t consistent = 0;
    for (const auto& rec : tb.lookups()) {
      if (rec.completed) {
        ++completed;
        consistent += rec.consistent ? 1 : 0;
      }
    }
    char pg[32];
    char bws[32];
    char cons[32];
    char comp[32];
    std::snprintf(pg, sizeof(pg), "%.1f", ping);
    std::snprintf(bws, sizeof(bws), "%.1f", bw);
    std::snprintf(cons, sizeof(cons), "%.3f",
                  completed == 0 ? 0.0
                                 : static_cast<double>(consistent) /
                                       static_cast<double>(completed));
    std::snprintf(comp, sizeof(comp), "%.1f",
                  tb.lookups().empty() ? 0.0
                                       : 100.0 * static_cast<double>(completed) /
                                             static_cast<double>(tb.lookups().size()));
    std::printf("%s\n", FormatRow({pg, bws, cons, comp}, 14).c_str());
  }
  std::printf("expected: faster timers buy consistency under churn with linearly more\n"
              "maintenance bandwidth — the tuning curve hand-coded overlays sit on.\n");
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  std::printf("=== Ablations: design choices in the Chord specification ===\n\n");
  RunFingerAblation(quick ? 16 : 40, quick ? 40 : 120);
  RunTimerAblation(quick ? 16 : 40, quick ? 120.0 : 480.0);
  return 0;
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) { return p2::Main(argc, argv); }
