// E10: declarative (P2/OverLog) Chord vs hand-coded imperative Chord on
// identical workloads — the cost of declarativeness.
//
// The paper compares against the MIT implementation's published numbers;
// offline we run our own imperative comparator (src/baseline) on the same
// simulated testbed and wire format and report the same metrics side by
// side: topology quality, maintenance bytes, lookup hops/latency, and
// lookup consistency.
//
// Usage: baseline_compare [--quick]
#include <cstdio>
#include <cstring>

#include "src/harness/metrics.h"
#include "src/harness/workload.h"

namespace p2 {
namespace {

struct CompareResult {
  double ring_consistency = 0;
  double maint_bw = 0;
  double mean_hops = 0;
  double p50_latency = 0;
  double p90_latency = 0;
  double consistency = 0;
  double completed_frac = 0;
};

CompareResult RunOne(bool use_baseline, size_t n, int lookups, uint64_t seed) {
  TestbedConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.use_baseline = use_baseline;
  cfg.join_stagger_s = 3.0;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(3.0 * static_cast<double>(n) + 300.0);

  CompareResult r;
  r.ring_consistency = tb.RingConsistencyFraction();
  uint64_t maint0 = tb.TotalMaintBytesOut();
  double window = 120.0;
  tb.RunFor(window);
  r.maint_bw = static_cast<double>(tb.TotalMaintBytesOut() - maint0) / window /
               static_cast<double>(tb.num_live());

  for (int i = 0; i < lookups; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(0.5);
  }
  tb.RunFor(30.0);
  Cdf latency;
  Cdf hops;
  size_t completed = 0;
  size_t consistent = 0;
  for (const auto& rec : tb.lookups()) {
    if (rec.completed) {
      ++completed;
      consistent += rec.consistent ? 1 : 0;
      latency.Add(rec.latency_s);
      hops.Add(static_cast<double>(rec.hops));
    }
  }
  r.mean_hops = hops.Mean();
  r.p50_latency = latency.Quantile(0.5);
  r.p90_latency = latency.Quantile(0.9);
  r.consistency = completed == 0 ? 0
                                 : static_cast<double>(consistent) /
                                       static_cast<double>(completed);
  r.completed_frac = tb.lookups().empty()
                         ? 0
                         : static_cast<double>(completed) /
                               static_cast<double>(tb.lookups().size());
  return r;
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  size_t n = quick ? 32 : 100;
  int lookups = quick ? 100 : 300;

  std::printf("=== E10: P2 Chord (47 OverLog rules) vs hand-coded Chord (~600 LoC C++) ===\n");
  std::printf("N=%zu nodes, identical topology, wire format and workload\n\n", n);
  std::fprintf(stderr, "[compare] running P2 Chord...\n");
  CompareResult p2r = RunOne(false, n, lookups, 77);
  std::fprintf(stderr, "[compare] running hand-coded Chord...\n");
  CompareResult blr = RunOne(true, n, lookups, 77);

  auto row = [](const char* name, const CompareResult& r) {
    char ring[32];
    char bw[32];
    char hops[32];
    char p50[32];
    char p90[32];
    char cons[32];
    char comp[32];
    std::snprintf(ring, sizeof(ring), "%.3f", r.ring_consistency);
    std::snprintf(bw, sizeof(bw), "%.1f", r.maint_bw);
    std::snprintf(hops, sizeof(hops), "%.2f", r.mean_hops);
    std::snprintf(p50, sizeof(p50), "%.3f", r.p50_latency);
    std::snprintf(p90, sizeof(p90), "%.3f", r.p90_latency);
    std::snprintf(cons, sizeof(cons), "%.3f", r.consistency);
    std::snprintf(comp, sizeof(comp), "%.3f", r.completed_frac);
    std::printf("%s\n",
                FormatRow({name, ring, bw, hops, p50, p90, cons, comp}, 12).c_str());
  };
  std::printf("%s\n", FormatRow({"impl", "ring", "maintB/s", "hops", "lat p50", "lat p90",
                                 "consist", "complete"},
                                12)
                          .c_str());
  row("p2-overlog", p2r);
  row("hand-coded", blr);
  std::printf(
      "\npaper shape check: both maintain the same topology (ring~1, hops~log2N/2);\n"
      "the declarative implementation pays a modest constant factor in\n"
      "maintenance bytes, not an asymptotic one.\n");
  return 0;
}

}  // namespace
}  // namespace p2

int main(int argc, char** argv) { return p2::Main(argc, argv); }
