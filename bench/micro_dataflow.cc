// E8 micro-benchmarks: the cost of the runtime primitives the paper
// quantifies in §3.3 ("most [transitions] take about 50 machine
// instructions on an ia32 processor, or 75 if the callback is invoked").
//
// Measured here: element push/pull handoff, PEL dispatch, stream×table
// equijoin probes, table insertion, tuple marshaling, and end-to-end rule
// firing through a compiled OverLog chain.
#include <benchmark/benchmark.h>

#include "src/dataflow/basic_elements.h"
#include "src/dataflow/graph.h"
#include "src/dataflow/rel_elements.h"
#include "src/obs/registry.h"
#include "src/p2/node.h"
#include "src/runtime/marshal.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

TuplePtr BenchTuple() {
  return Tuple::Make("lookup", {Value::Addr("n0"), Value::Id(Uint160::HashOf("key")),
                                Value::Addr("n1"), Value::Id(Uint160(42))});
}

// --- Value representation ---

// Scalar copies are the fast path the 16-byte tagged union buys: two word
// stores, no dispatch, no refcount.
void BM_ValueCopyScalar(benchmark::State& state) {
  Value v = Value::Int(123456789);
  for (auto _ : state) {
    Value c = v;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ValueCopyScalar);

// Shared-payload copies bump a plain (non-atomic) refcount.
void BM_ValueCopyShared(benchmark::State& state) {
  Value v = Value::Id(Uint160::HashOf("node"));
  for (auto _ : state) {
    Value c = v;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ValueCopyShared);

// What ExtendElement/JoinElement do per tuple: copy the whole field vector.
void BM_TupleFieldsCopy(benchmark::State& state) {
  TuplePtr t = BenchTuple();
  for (auto _ : state) {
    std::vector<Value> fields = t->fields();
    benchmark::DoNotOptimize(fields);
  }
}
BENCHMARK(BM_TupleFieldsCopy);

// --- Element handoff ---

void BM_PushHandoff(benchmark::State& state) {
  Graph g;
  auto* dup = g.Add<DupElement>("dup");
  auto* sink = g.Add<DiscardElement>("sink");
  g.Connect(dup, 0, sink, 0);
  TuplePtr t = BenchTuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dup->Push(0, t, nullptr));
  }
}
BENCHMARK(BM_PushHandoff);

void BM_PushPullThroughQueue(benchmark::State& state) {
  Graph g;
  auto* q = g.Add<QueueElement>("q", 16);
  TuplePtr t = BenchTuple();
  for (auto _ : state) {
    q->Push(0, t, nullptr);
    benchmark::DoNotOptimize(q->Pull(0, nullptr));
  }
}
BENCHMARK(BM_PushPullThroughQueue);

// --- PEL ---

void BM_PelArithmetic(benchmark::State& state) {
  SimEventLoop loop;
  Rng rng(1);
  std::string addr = "n0";
  PelVm vm(PelEnv{&loop, &rng, &addr});
  // D := K - B - 1 (the Chord distance computation) on 160-bit ids.
  PelProgram prog;
  prog.Emit(PelOp::kPushField, 1);
  prog.Emit(PelOp::kPushField, 3);
  prog.Emit(PelOp::kSub);
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(1)));
  prog.Emit(PelOp::kSub);
  TuplePtr t = BenchTuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.Eval(prog, t.get()));
  }
}
BENCHMARK(BM_PelArithmetic);

void BM_PelRangeTest(benchmark::State& state) {
  SimEventLoop loop;
  Rng rng(1);
  std::string addr = "n0";
  PelVm vm(PelEnv{&loop, &rng, &addr});
  PelProgram prog;  // K in (N, S]
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Id(Uint160::HashOf("k"))));
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Id(Uint160::HashOf("n"))));
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Id(Uint160::HashOf("s"))));
  prog.Emit(PelOp::kInOC);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.EvalBool(prog, nullptr));
  }
}
BENCHMARK(BM_PelRangeTest);

// --- Tables and joins ---

void BM_TableInsertReplace(benchmark::State& state) {
  SimEventLoop loop;
  TableSpec spec;
  spec.name = "t";
  spec.key_positions = {0};
  Table table(spec, &loop);
  TuplePtr t = BenchTuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Insert(t));
  }
}
BENCHMARK(BM_TableInsertReplace);

void BM_JoinProbe(benchmark::State& state) {
  SimEventLoop loop;
  Rng rng(1);
  std::string addr = "n0";
  Graph g;
  TableSpec spec;
  spec.name = "finger";
  spec.key_positions = {1};
  Table table(spec, &loop);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    table.Insert(Tuple::Make(
        "finger", {Value::Addr("n0"), Value::Int(i),
                   Value::Id(Uint160::HashOf(std::to_string(i))), Value::Addr("nX")}));
  }
  PelProgram key;
  key.Emit(PelOp::kPushField, 0);
  std::vector<JoinKey> keys;
  keys.push_back(JoinKey{0, std::move(key)});
  auto* join =
      g.Add<JoinElement>("join", PelEnv{&loop, &rng, &addr}, &table, std::move(keys), "j");
  auto* sink = g.Add<DiscardElement>("sink");
  g.Connect(join, 0, sink, 0);
  TuplePtr ev = Tuple::Make("ev", {Value::Addr("n0")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(join->Push(0, ev, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinProbe)->Arg(16)->Arg(160);

void BM_TableIndexedLookup(benchmark::State& state) {
  SimEventLoop loop;
  TableSpec spec;
  spec.name = "member";
  spec.key_positions = {0};
  Table table(spec, &loop);
  table.AddIndex({1});
  const int64_t rows = state.range(0);
  for (int64_t i = 0; i < rows; ++i) {
    table.Insert(Tuple::Make(
        "member", {Value::Int(i), Value::Addr("n" + std::to_string(i % 16)),
                   Value::Id(Uint160::HashOf(std::to_string(i)))}));
  }
  std::vector<Value> probe{Value::Addr("n7")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.LookupByCols({1}, probe));
  }
}
BENCHMARK(BM_TableIndexedLookup)->Arg(256);

// --- Demultiplexer dispatch ---

void BM_DemuxDispatch(benchmark::State& state) {
  Graph g;
  auto* demux = g.Add<DemuxByName>("demux");
  std::vector<TuplePtr> tuples;
  for (int i = 0; i < 16; ++i) {
    std::string name = "relation" + std::to_string(i);
    auto* sink = g.Add<DiscardElement>("sink" + std::to_string(i));
    g.Connect(demux, demux->PortFor(name), sink, 0);
    tuples.push_back(Tuple::Make(name, {Value::Addr("n0"), Value::Int(i)}));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(demux->Push(0, tuples[i & 15], nullptr));
    ++i;
  }
}
BENCHMARK(BM_DemuxDispatch);

// Queue -> driver -> demux drain: the node input path the planner's
// fan-out strands sit behind.
void BM_QueueDemuxDrain(benchmark::State& state) {
  SimEventLoop loop;
  Graph g;
  auto* q = g.Add<QueueElement>("q", 8192);
  auto* driver = g.Add<TimedPullPush>("driver", &loop, 0.0);
  auto* demux = g.Add<DemuxByName>("demux");
  g.Connect(q, 0, driver, 0);
  g.Connect(driver, 0, demux, 0);
  std::vector<TuplePtr> tuples;
  for (int i = 0; i < 8; ++i) {
    std::string name = "relation" + std::to_string(i);
    auto* sink = g.Add<DiscardElement>("sink" + std::to_string(i));
    g.Connect(demux, demux->PortFor(name), sink, 0);
    tuples.push_back(Tuple::Make(name, {Value::Addr("n0"), Value::Int(i)}));
  }
  driver->Start();
  constexpr int kBurst = 512;
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      q->Push(0, tuples[i & 7], nullptr);
    }
    loop.RunUntil(loop.Now() + 0.001);
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_QueueDemuxDrain);

// --- Timers ---

// Schedule/cancel churn with many pending timers: the reliable stack's
// per-peer retransmit timers at 1k-node scale.
void BM_TimerScheduleCancel(benchmark::State& state) {
  SimEventLoop loop;
  const int64_t pending = state.range(0);
  std::vector<TimerId> ids;
  for (int64_t i = 0; i < pending; ++i) {
    ids.push_back(loop.ScheduleAfter(1e9 + static_cast<double>(i), []() {}));
  }
  int batch = 0;
  for (auto _ : state) {
    TimerId id = loop.ScheduleAfter(0.5, []() {});
    loop.Cancel(id);
    benchmark::DoNotOptimize(id);
    if (++batch == 256) {
      // Advance past the cancelled deadline so backends that reclaim
      // cancelled timers lazily pay their reclamation cost here.
      batch = 0;
      loop.RunUntil(loop.Now() + 1.0);
    }
  }
  for (TimerId id : ids) {
    loop.Cancel(id);
  }
}
BENCHMARK(BM_TimerScheduleCancel)->Arg(1024)->Arg(16384);

// --- Marshaling ---

void BM_MarshalTuple(benchmark::State& state) {
  TuplePtr t = BenchTuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MarshalTupleToBytes(*t));
  }
}
BENCHMARK(BM_MarshalTuple);

void BM_UnmarshalTuple(benchmark::State& state) {
  std::vector<uint8_t> bytes = MarshalTupleToBytes(*BenchTuple());
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnmarshalTupleFromBytes(bytes));
  }
}
BENCHMARK(BM_UnmarshalTuple);

// --- End-to-end compiled rule firing ---

void BM_CompiledRuleFire(benchmark::State& state) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  P2Node node(nc);
  std::string err;
  bool ok = node.Install(
      "materialize(kv, infinity, 1000, keys(2)).\n"
      "r out@X(X,V,D) :- ev@X(X,K,N), kv@X(X,K,V), D := K - N - 1, K in (N,K].\n",
      &err);
  if (!ok) {
    state.SkipWithError(err.c_str());
    return;
  }
  node.GetTable("kv")->Insert(
      Tuple::Make("kv", {Value::Addr("n0"), Value::Id(Uint160(7)), Value::Str("v")}));
  node.Start();
  loop.RunUntil(0.001);
  TuplePtr ev = Tuple::Make(
      "ev", {Value::Addr("n0"), Value::Id(Uint160(7)), Value::Id(Uint160(3))});
  for (auto _ : state) {
    node.Inject(ev);
    loop.RunUntil(loop.Now() + 0.001);  // drain input queue through the rule
  }
}
BENCHMARK(BM_CompiledRuleFire);

// --- Semi-naive delta paths ---

// One table-delta propagating through a compiled delta-insert chain:
// replace a row of `a`, the rule joins `b` and upserts the head. Arg 0
// runs the legacy planner, arg 1 the semi-naive one (the trigger predicate
// is first in the body, so both modes fire and the numbers isolate the
// planner's chain overhead rather than its coverage).
void BM_RuleFireDelta(benchmark::State& state) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  nc.planner_mode = state.range(0) == 0 ? PlannerMode::kLegacy : PlannerMode::kSemiNaive;
  P2Node node(nc);
  std::string err;
  bool ok = node.Install(
      "materialize(a, infinity, 1000, keys(2)).\n"
      "materialize(b, infinity, 1000, keys(2)).\n"
      "materialize(h, infinity, 1000, keys(2)).\n"
      "r1 h@X(X,K,V) :- a@X(X,K), b@X(X,K,V).\n",
      &err);
  if (!ok) {
    state.SkipWithError(err.c_str());
    return;
  }
  node.GetTable("b")->Insert(
      Tuple::Make("b", {Value::Addr("n0"), Value::Int(7), Value::Str("v")}));
  node.Start();
  TuplePtr row = Tuple::Make("a", {Value::Addr("n0"), Value::Int(7)});
  for (auto _ : state) {
    node.GetTable("a")->Insert(row);  // delta fires the chain synchronously
  }
}
BENCHMARK(BM_RuleFireDelta)->Arg(0)->Arg(1);

// One aggregate update over a table of `rows` live rows: replace a row
// with a fresh non-extremal value. The legacy watcher (arg1 = 0) rescans
// the whole table per delta; the incremental watcher (arg1 = 1) updates a
// per-group support multiset in O(log n).
void BM_AggIncremental(benchmark::State& state) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  nc.planner_mode = state.range(1) == 0 ? PlannerMode::kLegacy : PlannerMode::kSemiNaive;
  P2Node node(nc);
  std::string err;
  bool ok = node.Install(
      "materialize(dist, infinity, 100000, keys(2)).\n"
      "best@X(X,min<D>) :- dist@X(X,S,D).\n",
      &err);
  if (!ok) {
    state.SkipWithError(err.c_str());
    return;
  }
  Table* dist = node.GetTable("dist");
  const int64_t rows = state.range(0);
  for (int64_t i = 0; i < rows; ++i) {
    dist->Insert(Tuple::Make("dist", {Value::Addr("n0"), Value::Int(i), Value::Int(100 + i)}));
  }
  node.Start();
  int64_t v = 0;
  for (auto _ : state) {
    // Rotate one row's value above the minimum: every delta retracts the
    // old contribution and applies the new one without moving the min.
    dist->Insert(Tuple::Make(
        "dist", {Value::Addr("n0"), Value::Int(rows / 2), Value::Int(200 + (v++ & 63))}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggIncremental)->Args({64, 0})->Args({64, 1})->Args({1024, 0})->Args({1024, 1});

// One insert+delete round trip through a projected-support rule
// (`h :- b` drops b's second key column, so the head row is not
// reconstructible from the deletion — the shape PR6 could not retract).
// Arg 0 runs with support counting off: the delete is a plain table
// erase and the stale head row lingers until TTL. Arg 1 runs with
// counting on: the delete flows through the delta-remove chain, the
// support count drops to zero, and the head row is erased — the ns/op
// delta is the full counted-retraction bill.
void BM_CountedRetraction(benchmark::State& state) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  nc.counting = state.range(0) != 0;
  P2Node node(nc);
  std::string err;
  bool ok = node.Install(
      "materialize(b, infinity, 8192, keys(2,3)).\n"
      "materialize(h, infinity, 8192, keys(2)).\n"
      "r1 h@X(X,B) :- b@X(X,A,B).\n",
      &err);
  if (!ok) {
    state.SkipWithError(err.c_str());
    return;
  }
  node.Start();
  int64_t k = 0;
  for (auto _ : state) {
    ++k;
    node.GetTable("b")->Insert(
        Tuple::Make("b", {Value::Addr("n0"), Value::Int(k), Value::Int(k)}));
    node.GetTable("b")->DeleteByKey({Value::Int(k), Value::Int(k)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountedRetraction)->Arg(0)->Arg(1);

// Event-probe cost on a skewed two-join rule, static order vs after an
// adaptive swap. small's cap (16) gives it the lower static prior, so
// the frozen order probes it first; the data puts all 12 small rows on
// one key and 200 all-distinct big rows, inverting the real fanouts.
// Arg 0 measures the frozen (wrong) order; arg 1 enables --replan and
// lets the node swap to big-first before the timed loop.
void BM_SkewedJoinReplan(benchmark::State& state) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  nc.replan_interval_s = state.range(0) == 0 ? 0 : 0.5;
  P2Node node(nc);
  std::string err;
  bool ok = node.Install(
      "materialize(small, infinity, 16, keys(2,3)).\n"
      "materialize(big, infinity, 1024, keys(2,3)).\n"
      "r1 out@X(X,A,B,C) :- ev@X(X,A), small@X(X,A,B), big@X(X,A,C).\n",
      &err);
  if (!ok) {
    state.SkipWithError(err.c_str());
    return;
  }
  node.Start();
  for (int64_t b = 0; b < 12; ++b) {
    node.GetTable("small")->Insert(
        Tuple::Make("small", {Value::Addr("n0"), Value::Int(500), Value::Int(b)}));
  }
  for (int64_t a = 0; a < 200; ++a) {
    node.GetTable("big")->Insert(
        Tuple::Make("big", {Value::Addr("n0"), Value::Int(a), Value::Int(a * 10)}));
  }
  loop.RunUntil(2.0);  // with replan on, the swap lands here
  if (state.range(0) != 0 && node.ReplanSwaps() == 0) {
    state.SkipWithError("replan swap did not trigger");
    return;
  }
  // A=500 is small's hot key and absent from big: small-first expands
  // all 12 small rows and probes big 12 times for nothing; big-first
  // dies after one empty probe.
  TuplePtr ev = Tuple::Make("ev", {Value::Addr("n0"), Value::Int(500)});
  for (auto _ : state) {
    node.Inject(ev);
    loop.RunUntil(loop.Now() + 0.001);
  }
}
BENCHMARK(BM_SkewedJoinReplan)->Arg(0)->Arg(1);

// --- Observability primitives ---

// The metrics hot path: a registered counter handle is one relaxed
// load+store (no RMW), a few ns — cheap enough to leave on in production
// runs.
void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg(1);
  obs::Counter* c = reg.GetCounter(0, "p2_bench_total");
  for (auto _ : state) {
    c->Inc();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry reg(1);
  obs::LogHistogram* h = reg.GetHistogram(0, "p2_bench_ns");
  uint64_t v = 1;
  for (auto _ : state) {
    h->Observe(v);
    v = (v << 1) | (v >> 17);  // walk the buckets
  }
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_ObsHistogramObserve);

// Instrumented vs uninstrumented rule firing: BM_RuleFireDelta's chain with
// a Registry attached (arg = 1) or absent (arg = 0). The delta between the
// two args is the whole per-fire metrics bill — fire counter, table delta
// counters, element out counters, and the 1-in-16 latency sample.
void BM_RuleFireInstrumented(benchmark::State& state) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 1);
  auto transport = net.MakeTransport("n0", 0);
  obs::Registry reg(1);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = transport.get();
  nc.seed = 1;
  nc.metrics = state.range(0) == 0 ? nullptr : &reg;
  P2Node node(nc);
  std::string err;
  bool ok = node.Install(
      "materialize(a, infinity, 1000, keys(2)).\n"
      "materialize(b, infinity, 1000, keys(2)).\n"
      "materialize(h, infinity, 1000, keys(2)).\n"
      "r1 h@X(X,K,V) :- a@X(X,K), b@X(X,K,V).\n",
      &err);
  if (!ok) {
    state.SkipWithError(err.c_str());
    return;
  }
  node.GetTable("b")->Insert(
      Tuple::Make("b", {Value::Addr("n0"), Value::Int(7), Value::Str("v")}));
  node.Start();
  TuplePtr row = Tuple::Make("a", {Value::Addr("n0"), Value::Int(7)});
  for (auto _ : state) {
    node.GetTable("a")->Insert(row);
  }
}
BENCHMARK(BM_RuleFireInstrumented)->Arg(0)->Arg(1);

}  // namespace
}  // namespace p2
