// scale_sweep: the runtime-spine scaling gate.
//
// Runs simulated Chord at increasing fleet sizes — by default 64, 256 and
// 1024 nodes, with and without the reliable transport stack at 20%
// datagram loss — and reports, per run: convergence, virtual seconds
// simulated, simulator events executed, wall-clock seconds, and events/sec
// (the spine throughput number the interned-schema / hashed-index /
// timer-wheel work is gated on).
//
// Exit status: 0 iff every run that is *expected* to converge did. With
// loss > 0 the plain (non-reliable) runs are expected to degrade — they
// are reported for contrast but do not fail the sweep; with --loss 0 both
// flavors must converge. CI runs `scale_sweep --nodes 256` as a Release
// perf smoke: it fails on non-convergence and prints events/sec for trend
// tracking.
//
// With --json PATH the sweep additionally writes one machine-readable
// record per run (overlay, nodes, reliable, loss, convergence, events,
// events/sec, host_cores, speedup_vs_1shard, lookup consistency) — the
// perf-trajectory artifact CI uploads as BENCH_scale.json so throughput
// regressions are diffable across PRs instead of anecdotal. host_cores
// and speedup_vs_1shard (vs the same cell at --shards 1 earlier in the
// sweep; -1 when no baseline ran) make multi-shard numbers interpretable
// across 1-core dev containers and multi-core CI runners.
//
// The sweep also carries a shard dimension: --shards 1,8 runs every
// (nodes, reliable) cell once per shard count, reporting events/sec per
// cell, so the share-nothing sharding lever is diffable the same way the
// spine optimizations are. A fixed seed produces identical event counts at
// every shard count (conservative-window determinism) — the sweep prints
// the event total so a mismatch is immediately visible.
//
// --overlay accepts a comma list. chord cells report lookup consistency;
// pathvector cells run the post-convergence heal probe (kill the middle
// node, virtual seconds until every live node has dropped its stale
// routes and re-learned true distances) and report it as healing_s —
// the soft-state repair latency counting is meant to shrink. --planner
// and --counting select the planner flavor for every cell so the sweep
// can diff legacy vs semi-naive vs counting on the same workload.
//
// Every requested (overlay, nodes, mode, shards) cell must land in the
// JSON: the sweep counts rows against the requested grid and fails
// otherwise, so a silently-skipped shard count can't produce a stale
// artifact that still looks complete.
//
// Fault probes: --partition START:DUR:DOMAINS (repeatable) schedules a
// healing partition in every cell and the JSON gains partition_heal_s —
// virtual seconds from the heal until chord's ring re-converged (cells
// expected to converge are additionally gated on the ring recovering).
// --byzantine FRAC compiles that fraction of chord nodes as dishonest
// responders; those cells are detection probes, reported via
// wrong_lookup_rate and never convergence-gated.
//
//   scale_sweep [--overlay chord,pathvector] [--nodes 64,256,1024]
//               [--shards 1] [--loss 0.2] [--lookups 20] [--seed 1]
//               [--mode both|reliable|plain] [--planner semi-naive|legacy]
//               [--counting on|off] [--partition S:D:G] [--byzantine F]
//               [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/cli/scenario.h"

namespace {

std::vector<size_t> ParseSizeList(const char* arg, long min_value) {
  std::vector<size_t> out;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    long n = std::strtol(s.substr(pos, comma - pos).c_str(), nullptr, 10);
    if (n >= min_value) {
      out.push_back(static_cast<size_t>(n));
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<p2::OverlayKind> overlays{p2::OverlayKind::kChord};
  std::vector<size_t> node_counts{64, 256, 1024};
  std::vector<size_t> shard_counts{1};
  double loss = 0.2;
  int lookups = 20;
  uint64_t seed = 1;
  bool run_plain = true;
  bool run_reliable = true;
  p2::PlannerMode planner = p2::PlannerMode::kSemiNaive;
  bool counting = true;
  p2::FaultPlan faults;
  const char* json_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto need = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--overlay") == 0) {
      overlays.clear();
      std::string s(need("--overlay"));
      size_t pos = 0;
      while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
          comma = s.size();
        }
        std::string name = s.substr(pos, comma - pos);
        p2::OverlayKind kind;
        if (!name.empty()) {
          if (!p2::ParseOverlayKind(name, &kind)) {
            std::fprintf(stderr, "unknown overlay %s\n", name.c_str());
            return 2;
          }
          overlays.push_back(kind);
        }
        pos = comma + 1;
      }
    } else if (std::strcmp(arg, "--planner") == 0) {
      const char* p = need("--planner");
      if (std::strcmp(p, "legacy") == 0) {
        planner = p2::PlannerMode::kLegacy;
      } else if (std::strcmp(p, "semi-naive") == 0) {
        planner = p2::PlannerMode::kSemiNaive;
      } else {
        std::fprintf(stderr, "--planner expects semi-naive|legacy\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--counting") == 0) {
      const char* c = need("--counting");
      if (std::strcmp(c, "on") == 0) {
        counting = true;
      } else if (std::strcmp(c, "off") == 0) {
        counting = false;
      } else {
        std::fprintf(stderr, "--counting expects on|off\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--nodes") == 0) {
      node_counts = ParseSizeList(need("--nodes"), /*min_value=*/2);
    } else if (std::strcmp(arg, "--shards") == 0) {
      shard_counts = ParseSizeList(need("--shards"), /*min_value=*/1);
    } else if (std::strcmp(arg, "--loss") == 0) {
      loss = std::atof(need("--loss"));
    } else if (std::strcmp(arg, "--lookups") == 0) {
      lookups = std::atoi(need("--lookups"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(arg, "--mode") == 0) {
      const char* mode = need("--mode");
      run_plain = std::strcmp(mode, "reliable") != 0;
      run_reliable = std::strcmp(mode, "plain") != 0;
    } else if (std::strcmp(arg, "--partition") == 0) {
      p2::PartitionSpec part;
      if (!p2::ParsePartitionSpec(need("--partition"), &part)) {
        std::fprintf(stderr, "--partition expects START:DUR:DOMAINS\n");
        return 2;
      }
      faults.partitions.push_back(part);
    } else if (std::strcmp(arg, "--byzantine") == 0) {
      faults.byzantine_fraction = std::atof(need("--byzantine"));
      if (faults.byzantine_fraction < 0 || faults.byzantine_fraction > 1) {
        std::fprintf(stderr, "--byzantine must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = need("--json");
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    }
  }
  if (node_counts.empty()) {
    std::fprintf(stderr, "--nodes parsed to an empty list\n");
    return 2;
  }
  if (shard_counts.empty()) {
    std::fprintf(stderr, "--shards parsed to an empty list\n");
    return 2;
  }
  if (overlays.empty()) {
    std::fprintf(stderr, "--overlay parsed to an empty list\n");
    return 2;
  }

  std::printf("# scale sweep: loss=%.2f lookups=%d seed=%llu planner=%s counting=%s\n",
              loss, lookups, static_cast<unsigned long long>(seed),
              planner == p2::PlannerMode::kLegacy ? "legacy" : "semi-naive",
              counting ? "on" : "off");
  if (faults.byzantine_fraction > 0 &&
      (overlays.size() != 1 || overlays[0] != p2::OverlayKind::kChord)) {
    std::fprintf(stderr, "--byzantine probes need --overlay chord\n");
    return 2;
  }
  std::printf("%10s %7s %7s %9s %10s %9s %12s %8s %12s %7s %8s %9s %6s %s\n", "overlay",
              "nodes", "shards", "reliable", "converged", "virt_s", "events", "wall_s",
              "events/sec", "spdup", "heal_s", "part_heal", "wrong", "lookups");

  // Every row records the host's core count and its speedup over the same
  // cell at --shards 1, so the perf trajectory is interpretable across
  // 1-core dev containers and multi-core CI runners. -1 = no 1-shard
  // baseline ran earlier in this sweep.
  unsigned host_cores = std::thread::hardware_concurrency();
  std::map<std::tuple<p2::OverlayKind, size_t, int>, double> evps_1shard;

  bool gated_ok = true;
  std::string json = "[\n";
  size_t json_rows = 0;
  size_t cells_requested = 0;
  for (p2::OverlayKind overlay : overlays) {
    for (size_t n : node_counts) {
      for (int reliable = 0; reliable <= 1; ++reliable) {
        if ((reliable == 0 && !run_plain) || (reliable == 1 && !run_reliable)) {
          continue;
        }
        for (size_t shards : shard_counts) {
          ++cells_requested;
          p2::ScenarioConfig cfg;
          cfg.overlay = overlay;
          cfg.backend = p2::BackendKind::kSim;
          cfg.nodes = n;
          cfg.seed = seed;
          cfg.shards = shards;
          cfg.lookups = lookups;
          cfg.loss_rate = loss;
          cfg.reliable = reliable == 1;
          cfg.planner = planner;
          cfg.counting = counting;
          cfg.heal_probe = overlay == p2::OverlayKind::kPathVector;
          cfg.faults = faults;
          if (overlay != p2::OverlayKind::kChord) {
            cfg.faults.byzantine_fraction = 0;  // chord-only probe
          }
          p2::ScenarioReport report = p2::RunScenario(cfg);

          double evps = report.wall_s > 0
                            ? static_cast<double>(report.sim_events) / report.wall_s
                            : 0;
          auto cell_key = std::make_tuple(overlay, n, reliable);
          if (shards == 1) {
            evps_1shard[cell_key] = evps;
          }
          auto base = evps_1shard.find(cell_key);
          double speedup = 1.0;
          if (shards != 1) {
            speedup = (base != evps_1shard.end() && base->second > 0)
                          ? evps / base->second
                          : -1.0;
          }
          std::printf("%10s %7zu %7zu %9s %10s %9.0f %12llu %8.1f %12.0f %7.2f %8.2f "
                      "%9.2f %6.3f %zu/%zu\n",
                      p2::OverlayKindName(overlay), n, report.shards,
                      reliable ? "on" : "off", report.converged ? "yes" : "NO",
                      report.ran_for_s,
                      static_cast<unsigned long long>(report.sim_events), report.wall_s,
                      evps, speedup, report.healing_s, report.partition_heal_s,
                      report.wrong_lookup_rate, report.lookups_consistent,
                      report.lookups_issued);
          std::fflush(stdout);

          if (json_path != nullptr) {
            char row[768];
            std::snprintf(row, sizeof(row),
                          "  {\"overlay\": \"%s\", \"nodes\": %zu, \"shards\": %zu, "
                          "\"reliable\": %s, "
                          "\"loss\": %.3f, \"seed\": %llu, \"planner\": \"%s\", "
                          "\"counting\": %s, \"converged\": %s, "
                          "\"virtual_s\": %.1f, \"events\": %llu, \"wall_s\": %.2f, "
                          "\"events_per_sec\": %.0f, \"host_cores\": %u, "
                          "\"speedup_vs_1shard\": %.2f, \"healing_s\": %.2f, "
                          "\"partition_heal_s\": %.2f, \"wrong_lookup_rate\": %.4f, "
                          "\"byzantine\": %.3f, "
                          "\"lookups_issued\": %zu, \"lookups_consistent\": %zu}",
                          p2::OverlayKindName(overlay), n, report.shards,
                          reliable ? "true" : "false", loss,
                          static_cast<unsigned long long>(seed),
                          planner == p2::PlannerMode::kLegacy ? "legacy" : "semi-naive",
                          counting ? "true" : "false",
                          report.converged ? "true" : "false", report.ran_for_s,
                          static_cast<unsigned long long>(report.sim_events),
                          report.wall_s, evps, host_cores, speedup, report.healing_s,
                          report.partition_heal_s, report.wrong_lookup_rate,
                          cfg.faults.byzantine_fraction, report.lookups_issued,
                          report.lookups_consistent);
            if (json_rows > 0) {
              json += ",\n";
            }
            ++json_rows;
            json += row;
          }

          // Byzantine cells are detection probes: the wrong-answer rate is
          // the product, so dishonest answers failing the consistency gate
          // must not fail the sweep.
          bool expected_to_converge =
              (reliable == 1 || loss == 0) && cfg.faults.byzantine_fraction == 0;
          if (expected_to_converge && !report.converged) {
            gated_ok = false;
          }
          // A partitioned chord cell that is expected to converge must also
          // demonstrate the heal: the ring back at strength after the cut.
          if (expected_to_converge && overlay == p2::OverlayKind::kChord &&
              !cfg.faults.partitions.empty() && report.partition_heal_s < 0) {
            gated_ok = false;
          }
        }
      }
    }
  }
  if (json_path != nullptr && json_rows != cells_requested) {
    std::fprintf(stderr, "JSON incomplete: %zu rows for %zu requested cells\n",
                 json_rows, cells_requested);
    gated_ok = false;
  }
  if (json_path != nullptr) {
    json += "\n]\n";
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  std::printf(gated_ok ? "SWEEP OK\n" : "SWEEP FAILED\n");
  return gated_ok ? 0 : 1;
}
