#include "src/p2/node.h"

#include "src/net/wire.h"
#include "src/obs/registry.h"
#include "src/overlog/localizer.h"
#include "src/overlog/parser.h"
#include "src/overlog/planner.h"
#include "src/runtime/logging.h"

namespace p2 {

// Terminal element of every rule chain: routes head tuples by location
// specifier — remote tuples are marshaled and sent, local stream tuples
// loop back into the input queue, local table tuples are inserted.
class P2Node::RouteOutElement : public Element {
 public:
  explicit RouteOutElement(P2Node* node) : Element("route_out"), node_(node) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override {
    (void)port;
    (void)cb;
    node_->RouteTuple(t);
    return 1;
  }

 private:
  P2Node* node_;
};

P2Node::P2Node(P2NodeConfig config)
    : addr_(config.addr.empty() && config.transport != nullptr
                ? config.transport->local_addr()
                : config.addr),
      executor_(config.executor),
      transport_(config.transport),
      rng_(config.seed),
      planner_mode_(config.planner_mode),
      counting_(config.counting),
      replan_interval_s_(config.replan_interval_s),
      replan_delta_threshold_(config.replan_delta_threshold),
      metrics_(config.metrics),
      watches_(config.watches),
      sysstats_period_s_(config.sysstats_period_s) {
  P2_CHECK(executor_ != nullptr);
  P2_CHECK(transport_ != nullptr);
  if (metrics_ != nullptr) {
    obs_lane_ = executor_->shard_index();
    graph_.SetObs(metrics_, obs_lane_);
    obs_tuples_sent_ = metrics_->GetCounter(obs_lane_, "p2_node_tuples_sent_total");
    obs_tuples_from_net_ = metrics_->GetCounter(obs_lane_, "p2_node_tuples_from_net_total");
    obs_loopbacks_ = metrics_->GetCounter(obs_lane_, "p2_node_local_loopbacks_total");
    obs_bad_packets_ = metrics_->GetCounter(obs_lane_, "p2_node_bad_packets_total");
    replan_.BindObs(metrics_, obs_lane_);
  }
  input_queue_ = graph_.Add<QueueElement>("input_queue", config.input_queue_capacity);
  driver_ = graph_.Add<TimedPullPush>("driver", executor_, 0.0);
  demux_ = graph_.Add<DemuxByName>("demux");
  route_out_ = graph_.Add<RouteOutElement>(this);
  graph_.Connect(input_queue_, 0, driver_, 0);
  graph_.Connect(driver_, 0, demux_, 0);
  transport_->SetReceiver(
      [this](const std::string& from, const std::vector<uint8_t>& bytes) {
        OnPacket(from, bytes);
      });
}

P2Node::~P2Node() {
  Stop();
  // Detach from the transport: packets in flight to this address must not
  // reach a destroyed node (churn destroys nodes while datagrams fly).
  transport_->SetReceiver(nullptr);
}

bool P2Node::Install(const std::string& overlog_text, std::string* err) {
  P2_CHECK(!installed_);
  ProgramAst program;
  if (!ParseOverLog(overlog_text, &program, err)) {
    return false;
  }
  if (!LocalizeProgram(&program, err)) {
    return false;
  }
  if (sysstats_period_s_ > 0 && !program.IsMaterialized("sysstats") &&
      GetTable("sysstats") == nullptr) {
    // Not declared by the program: materialize it implicitly *before*
    // planning so rules that join sysstats see a table, not a stream.
    TableSpec spec;
    spec.name = "sysstats";
    spec.key_positions = {0, 1};
    spec.arity = 3;
    AddTable("sysstats", std::make_unique<Table>(spec, executor_));
  }
  if (!Planner::Install(program, this, err)) {
    return false;
  }
  installed_ = true;
  return true;
}

void P2Node::Start() {
  P2_CHECK(installed_);
  if (started_) {
    return;
  }
  started_ = true;
  driver_->Start();
  for (PeriodicSource* src : periodics_) {
    src->Start();
  }
  if (sysstats_period_s_ > 0) {
    RefreshSysstats();
  }
  if (replan_interval_s_ > 0 && replan_.entries() > 0) {
    replan_timer_ = executor_->ScheduleAfter(replan_interval_s_, [this]() { ReplanTick(); });
  }
}

void P2Node::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  for (PeriodicSource* src : periodics_) {
    src->Stop();
  }
  if (sysstats_timer_ != kInvalidTimer) {
    executor_->Cancel(sysstats_timer_);
    sysstats_timer_ = kInvalidTimer;
  }
  if (replan_timer_ != kInvalidTimer) {
    executor_->Cancel(replan_timer_);
    replan_timer_ = kInvalidTimer;
  }
}

void P2Node::ReplanTick() {
  replan_timer_ = kInvalidTimer;
  if (!started_) {
    return;
  }
  // Only re-cost when the tables actually moved since the last pass —
  // DistinctKeys polling is O(1) per probe, but a quiet node shouldn't pay
  // even that.
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    (void)name;
    total += table->delta_seq();
  }
  if (total - replan_last_deltas_ >= replan_delta_threshold_) {
    replan_last_deltas_ = total;
    replan_.Evaluate();
  }
  replan_timer_ = executor_->ScheduleAfter(replan_interval_s_, [this]() { ReplanTick(); });
}

const SupportCounts* P2Node::SupportCountsFor(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return nullptr;
  }
  auto found = support_counts_.find(it->second.get());
  return found == support_counts_.end() ? nullptr : found->second.get();
}

void P2Node::RefreshSysstats() {
  Table* table = GetTable("sysstats");
  if (table == nullptr) {
    return;
  }
  // Node-local, virtual-time-deterministic metrics only: the values must
  // not depend on shard count or wall-clock timing, so overlay behavior
  // built on sysstats stays reproducible.
  size_t table_rows = 0;
  for (const auto& [name, t] : tables_) {
    if (name != "sysstats") {
      table_rows += t->row_count();
    }
  }
  uint64_t rule_fires = 0;
  for (const auto& [id, driver] : rule_drivers_) {
    (void)id;
    rule_fires += driver->fires();
  }
  const std::pair<const char*, int64_t> stats[] = {
      {"tuples_sent", static_cast<int64_t>(stats_.tuples_sent)},
      {"tuples_from_net", static_cast<int64_t>(stats_.tuples_from_net)},
      {"local_loopbacks", static_cast<int64_t>(stats_.local_loopbacks)},
      {"rule_fires", static_cast<int64_t>(rule_fires)},
      {"table_rows", static_cast<int64_t>(table_rows)},
      {"memory_bytes", static_cast<int64_t>(ApproxMemoryBytes())},
  };
  for (const auto& [metric, value] : stats) {
    table->Insert(Tuple::Make(
        "sysstats", {Value::Addr(addr_), Value::Str(metric), Value::Int(value)}));
  }
  sysstats_timer_ = executor_->ScheduleAfter(sysstats_period_s_, [this]() {
    sysstats_timer_ = kInvalidTimer;
    if (started_) {
      RefreshSysstats();
    }
  });
}

void P2Node::Inject(const TuplePtr& t) {
  // Injected tuples obey their location specifier like any rule head: a
  // tuple addressed elsewhere is shipped, a local one enters the queue (or
  // its table). Applications therefore address tuples the same way rules
  // do.
  RouteTuple(t);
}

void P2Node::Subscribe(const std::string& name, TupleFn fn) {
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    it->second->AddDeltaListener(std::move(fn));
    return;
  }
  SchemaId schema = InternSchema(name);
  if (watchers_by_schema_.size() <= schema) {
    watchers_by_schema_.resize(schema + 1);
  }
  watchers_by_schema_[schema].push_back(std::move(fn));
}

void P2Node::AddTable(const std::string& name, std::unique_ptr<Table> table) {
  if (metrics_ != nullptr) {
    table->BindObs(metrics_, obs_lane_);
  }
  SchemaId schema = InternSchema(name);
  if (tables_by_schema_.size() <= schema) {
    tables_by_schema_.resize(schema + 1, nullptr);
  }
  tables_by_schema_[schema] = table.get();
  tables_.emplace(name, std::move(table));
}

Table* P2Node::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::unordered_map<std::string, uint64_t> P2Node::RuleFireCounts() const {
  std::unordered_map<std::string, uint64_t> out;
  for (const auto& [id, driver] : rule_drivers_) {
    out[id] += driver->fires();
  }
  return out;
}

size_t P2Node::ApproxMemoryBytes() const {
  size_t bytes = graph_.ApproxBytes();
  for (const auto& [name, table] : tables_) {
    (void)name;
    bytes += table->ApproxBytes();
  }
  return bytes;
}

void P2Node::DeliverLocal(const TuplePtr& t) {
  SchemaId schema = t->schema();
  if (schema < watchers_by_schema_.size()) {
    for (const TupleFn& fn : watchers_by_schema_[schema]) {
      fn(t);
    }
  }
  input_queue_->Push(0, t, nullptr);
}

void P2Node::RouteTuple(const TuplePtr& t) {
  if (t->size() == 0 || t->field(0).type() != ValueType::kAddr) {
    P2_LOG(LogLevel::kWarn, "%s: head tuple without address locspec: %s", addr_.c_str(),
           t->ToString().c_str());
    return;
  }
  const std::string& dest = t->field(0).AsAddr();
  if (dest == addr_) {
    ++stats_.local_loopbacks;
    if (obs_loopbacks_ != nullptr) {
      obs_loopbacks_->Inc();
    }
    if (Table* table = TableForSchema(t->schema())) {
      table->Insert(t);  // Synchronous store + delta propagation.
    } else {
      DeliverLocal(t);
    }
    return;
  }
  std::vector<uint8_t> frame = FrameTuple(*t);
  if (frame.empty()) {
    P2_LOG(LogLevel::kWarn, "%s: dropping unmarshalable tuple %s", addr_.c_str(),
           t->name().c_str());
    return;
  }
  ++stats_.tuples_sent;
  if (obs_tuples_sent_ != nullptr) {
    obs_tuples_sent_->Inc();
  }
  transport_->SendTo(dest, std::move(frame), IsLookupTraffic(t->name()));
}

void P2Node::OnPacket(const std::string& from, const std::vector<uint8_t>& bytes) {
  (void)from;
  std::optional<TuplePtr> t = UnframeTuple(bytes);
  if (!t.has_value()) {
    ++stats_.bad_packets;
    if (obs_bad_packets_ != nullptr) {
      obs_bad_packets_->Inc();
    }
    return;
  }
  ++stats_.tuples_from_net;
  if (obs_tuples_from_net_ != nullptr) {
    obs_tuples_from_net_->Inc();
  }
  DeliverLocal(*t);
}

}  // namespace p2
