// P2Node: one overlay participant (Figure 1 of the paper).
//
// A node owns the dataflow graph compiled from an OverLog program, the
// soft-state tables, the input queue feeding the demultiplexer, and the
// bridge to the network transport. Applications interact with it by
// installing a program, injecting tuples, and subscribing to named streams.
#ifndef P2_P2_NODE_H_
#define P2_P2_NODE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dataflow/basic_elements.h"
#include "src/dataflow/graph.h"
#include "src/dataflow/rel_elements.h"
#include "src/net/transport.h"
#include "src/overlog/planner.h"
#include "src/overlog/replan.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"
#include "src/table/table.h"

namespace p2 {

struct P2NodeConfig {
  std::string addr;                 // defaults to transport->local_addr()
  Executor* executor = nullptr;     // required
  Transport* transport = nullptr;   // required
  uint64_t seed = 1;                // per-node RNG stream
  size_t input_queue_capacity = 8192;
  // Rule compilation strategy; kLegacy reproduces the pre-semi-naive
  // planner for differential testing.
  PlannerMode planner_mode = PlannerMode::kSemiNaive;
  // Support-counted retractions (semi-naive mode only): every pure-table
  // rule gets a remove chain, with per-head-row derivation counts deciding
  // when the head is really gone. Off reproduces the PR 6 planner exactly
  // (remove chains only for provably single-derivation rules).
  bool counting = true;
  // When > 0, poll live table statistics at this virtual-time period and
  // swap pre-compiled alternate join orders when the cost order inverts.
  // 0 (default) disables the loop; plans stay frozen at install time.
  double replan_interval_s = 0;
  // Minimum table content deltas (summed over the node's tables) between
  // replan passes; quiet nodes skip the re-costing entirely.
  uint64_t replan_delta_threshold = 64;
  // Metrics registry; null disables all instrumentation (the planner then
  // builds exactly the uninstrumented graph). Lane = executor shard index.
  obs::Registry* metrics = nullptr;
  // Predicates to watch in addition to the program's own watch() clauses;
  // the planner splices tuple-logging taps for these (p2run --watch).
  std::vector<std::string> watches;
  // When > 0, maintain a sysstats(Addr, Metric, Value) table refreshed at
  // this virtual-time period so overlay rules can query their own runtime.
  double sysstats_period_s = 0;
};

struct NodeStats {
  uint64_t tuples_from_net = 0;
  uint64_t tuples_sent = 0;
  uint64_t local_loopbacks = 0;
  uint64_t bad_packets = 0;
};

class P2Node {
 public:
  explicit P2Node(P2NodeConfig config);
  ~P2Node();
  P2Node(const P2Node&) = delete;
  P2Node& operator=(const P2Node&) = delete;

  // Parses, localizes, plans and installs an OverLog program into this
  // node's dataflow graph. Must be called before Start. Returns false and
  // fills *err on parse/plan failure.
  bool Install(const std::string& overlog_text, std::string* err);

  // Begins execution: starts periodic sources and the input-queue driver.
  void Start();
  // Halts periodic sources (the node stops generating traffic; it still
  // reacts to nothing further since the caller usually destroys it next).
  void Stop();

  // Injects a tuple, routed by its location specifier (field 0): local
  // tuples enter the input queue (or their table, if materialized), remote
  // ones are sent. E.g. a DHT "lookup" request or the initial "join".
  void Inject(const TuplePtr& t);

  // Invokes `fn` for every tuple named `name` that this node sees locally:
  // stream events (local or arriving from the network) or, for materialized
  // names, table insertions.
  using TupleFn = std::function<void(const TuplePtr&)>;
  void Subscribe(const std::string& name, TupleFn fn);

  Table* GetTable(const std::string& name);
  const std::string& addr() const { return addr_; }
  Executor* executor() { return executor_; }
  Transport* transport() { return transport_; }
  Rng* rng() { return &rng_; }
  const NodeStats& stats() const { return stats_; }
  const Graph& graph() const { return graph_; }

  // Number of rules installed and per-rule firing counters (E7).
  size_t num_rules() const { return rule_drivers_.size(); }
  std::unordered_map<std::string, uint64_t> RuleFireCounts() const;

  // Human-readable dump of every rule's compiled plan — trigger deltas,
  // join order with fanout estimates, probed indices, head routing.
  // Deterministic for a given program and planner mode (`p2run --explain`
  // and the golden-plan tests rely on this).
  const std::string& PlanExplain() const { return plan_explain_; }

  // Adaptive replan introspection: total join-order swaps so far, and the
  // number of chains carrying alternate variants.
  uint64_t ReplanSwaps() const { return replan_.swaps(); }
  size_t ReplanEntries() const { return replan_.entries(); }
  // Support-count store for a counted head table (null when none). Tests
  // use this to assert counts track live supports.
  const SupportCounts* SupportCountsFor(const std::string& table) const;

  // Approximate working set: tables + dataflow graph (E9).
  size_t ApproxMemoryBytes() const;

 private:
  friend class Planner;
  friend class PlanBuilder;

  // Registers a table and its SchemaId dispatch slot (planner only).
  void AddTable(const std::string& name, std::unique_ptr<Table> table);
  Table* TableForSchema(SchemaId schema) const {
    return schema < tables_by_schema_.size() ? tables_by_schema_[schema] : nullptr;
  }

  // Delivers a tuple into local processing: watchers, then input queue.
  void DeliverLocal(const TuplePtr& t);
  // Routes a rule-head tuple by its location specifier (field 0).
  void RouteTuple(const TuplePtr& t);
  void OnPacket(const std::string& from, const std::vector<uint8_t>& bytes);
  // Upserts this node's rows in the sysstats table (virtual-time periodic).
  void RefreshSysstats();
  // One adaptive replan pass: re-cost variants when enough deltas accrued,
  // then re-arm the timer.
  void ReplanTick();

  class RouteOutElement;

  std::string addr_;
  Executor* executor_;
  Transport* transport_;
  Rng rng_;
  NodeStats stats_;
  PlannerMode planner_mode_ = PlannerMode::kSemiNaive;
  bool counting_ = true;
  double replan_interval_s_ = 0;
  uint64_t replan_delta_threshold_ = 64;
  std::string plan_explain_;

  Graph graph_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;  // ownership
  // SchemaId jump tables for the hot routing paths (RouteTuple /
  // DeliverLocal): no string hashing per tuple.
  std::vector<Table*> tables_by_schema_;
  std::vector<std::vector<TupleFn>> watchers_by_schema_;
  QueueElement* input_queue_ = nullptr;
  TimedPullPush* driver_ = nullptr;
  DemuxByName* demux_ = nullptr;
  Element* route_out_ = nullptr;  // RouteOutElement

  std::vector<PeriodicSource*> periodics_;
  std::unordered_map<std::string, DupElement*> event_dups_;
  std::vector<std::pair<std::string, RuleDriver*>> rule_drivers_;
  // Derivation counts per counted head table (counting planner).
  std::unordered_map<Table*, std::unique_ptr<SupportCounts>> support_counts_;
  ReplanManager replan_;
  TimerId replan_timer_ = kInvalidTimer;
  uint64_t replan_last_deltas_ = 0;
  bool started_ = false;
  bool installed_ = false;

  // Observability (all dormant when metrics_ is null).
  obs::Registry* metrics_ = nullptr;
  size_t obs_lane_ = 0;
  std::vector<std::string> watches_;  // config watches; planner adds program's
  double sysstats_period_s_ = 0;
  TimerId sysstats_timer_ = kInvalidTimer;
  obs::Counter* obs_tuples_sent_ = nullptr;
  obs::Counter* obs_tuples_from_net_ = nullptr;
  obs::Counter* obs_loopbacks_ = nullptr;
  obs::Counter* obs_bad_packets_ = nullptr;
};

}  // namespace p2

#endif  // P2_P2_NODE_H_
