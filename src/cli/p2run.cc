// p2run: the unified scenario driver.
//
// One command wires the whole P2 pipeline — OverLog program, planner,
// dataflow graph, network backend — for any bundled overlay:
//
//   p2run --overlay chord --nodes 16 --sim
//   p2run --overlay chord --nodes 64 --sim --churn 480 --duration 300
//   p2run --overlay gossip --nodes 8 --udp
//   p2run --overlay pathvector --nodes 10 --sim --seed 7
//
// Exit status 0 iff the overlay converged (see src/cli/scenario.h for the
// per-overlay convergence criteria), which makes p2run usable directly as
// a smoke test in scripts and CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/cli/scenario.h"
#include "src/runtime/logging.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --overlay <chord|gossip|narada|pathvector>   overlay to run (default chord)\n"
      "  --nodes <n>          number of nodes (default 8)\n"
      "  --sim                deterministic virtual-time simulator (default)\n"
      "  --udp                real UDP sockets on 127.0.0.1, one process\n"
      "  --churn <mean_s>     exponential mean session time; any overlay on\n"
      "                       --sim, gossip|narada|pathvector also on --udp\n"
      "  --duration <s>       measurement phase length (default per overlay)\n"
      "  --lookups <n>        chord: lookups to issue (default 20)\n"
      "  --loss <p>           datagram loss probability (default 0; sim drops in\n"
      "                       the fabric, udp via per-endpoint drop filter)\n"
      "  --reliable           layer the reliable transport stack (ACK/retry,\n"
      "                       RTT estimation, AIMD cwnd, bounded send queues)\n"
      "                       over every endpoint\n"
      "  --shards <n>         sim: worker threads executing the simulator's\n"
      "                       share-nothing shards (one per topology domain\n"
      "                       when > 1); same seed => identical per-node event\n"
      "                       order at any shard count (default 1)\n"
      "  --steal <on|off>     sim: work stealing — re-assign whole shards to\n"
      "                       workers at window barriers from the completed\n"
      "                       window's per-shard event counts (default on;\n"
      "                       results are bit-for-bit identical either way)\n"
      "  --port <base>        udp: first port to bind (default: kernel picks)\n"
      "  --seed <n>           RNG seed (default 1)\n"
      "  --planner <mode>     seminaive (default) or legacy rule compilation\n"
      "  --counting <on|off>  support-counted retractions (default on): every\n"
      "                       pure-table rule gets a remove chain, derived rows\n"
      "                       deleted when their last support retracts; off\n"
      "                       reproduces the PR 6 single-derivation gating\n"
      "  --replan-interval <s>  adaptively re-cost multi-join rules against live\n"
      "                       table statistics at this period and swap to a\n"
      "                       cheaper pre-compiled join order (default 0 = off)\n"
      "  --heal-probe         pathvector --sim: kill one node mid-run, only its\n"
      "                       neighbors react, and report the virtual seconds\n"
      "                       until every live node's routes match ground truth\n"
      "  --loss-asym <S:D:R>  sim: one-way loss — datagrams from domain S to\n"
      "                       domain D drop with probability R, the reverse\n"
      "                       direction untouched (repeatable)\n"
      "  --partition <S:D:G>  sim: full cut between domain group G (e.g. 0,\n"
      "                       0-4, 0,3,7) and the rest, forming S seconds into\n"
      "                       measurement and healing D seconds later; chord\n"
      "                       reports how long the ring takes to re-converge\n"
      "                       (repeatable)\n"
      "  --latency-spike <S:D:DOM:F>  sim: multiply the latency of datagrams\n"
      "                       to/from domain DOM by F (>= 1) during the window\n"
      "                       [S, S+D) of measurement time (repeatable)\n"
      "  --slow-nodes <F:X>   sim: each node is slow with probability F\n"
      "                       (deterministic per-slot choice); a slow node's\n"
      "                       timers run X times slower\n"
      "  --corrupt <rate>     sim: flip 1-3 random bytes of a datagram with\n"
      "                       this probability; the wire parsers must reject\n"
      "                       the damage (p2_corrupt_* counters) without crash\n"
      "  --byzantine <frac>   sim chord: this fraction of nodes answers every\n"
      "                       lookup with itself as successor; the report's\n"
      "                       wrong-lookup rate is the detection metric\n"
      "  --explain            print the overlay's compiled rule plans (triggers,\n"
      "                       join order, fanout estimates, indices) and exit\n"
      "  --watch <p1,p2,..>   tap the named predicates: log every tuple that\n"
      "                       reaches a rule head or arrives at a node, with\n"
      "                       virtual timestamp, node address and rule label\n"
      "  --trace-out <file>   write a Chrome trace_event JSON timeline of shard\n"
      "                       windows, barrier waits and control actions\n"
      "                       (chrome://tracing / Perfetto)\n"
      "  --stats-dump         print the Prometheus text exposition of every\n"
      "                       runtime metric at exit\n"
      "  --sysstats <s>       refresh each node's sysstats system table at this\n"
      "                       period so overlay rules can query their own runtime\n"
      "  --no-metrics         disable the metrics registry entirely (the\n"
      "                       uninstrumented path, for A/B overhead runs)\n"
      "  --verbose            info-level runtime logging\n",
      argv0);
}

bool NeedValue(int argc, char** argv, int i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s requires a value\n", argv[i]);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  p2::ScenarioConfig config;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else if (std::strcmp(arg, "--overlay") == 0) {
      if (!NeedValue(argc, argv, i) || !p2::ParseOverlayKind(argv[++i], &config.overlay)) {
        std::fprintf(stderr, "unknown overlay; expected chord|gossip|narada|pathvector\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--nodes") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 2 || n > 1000000) {
        std::fprintf(stderr, "--nodes must be in [2, 1000000], got %s\n", argv[i]);
        return 2;
      }
      config.nodes = static_cast<size_t>(n);
    } else if (std::strcmp(arg, "--sim") == 0) {
      config.backend = p2::BackendKind::kSim;
    } else if (std::strcmp(arg, "--udp") == 0) {
      config.backend = p2::BackendKind::kUdp;
    } else if (std::strcmp(arg, "--backend") == 0) {
      if (!NeedValue(argc, argv, i) || !p2::ParseBackendKind(argv[++i], &config.backend)) {
        std::fprintf(stderr, "unknown backend; expected sim|udp\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--churn") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.churn_session_mean_s = std::atof(argv[++i]);
      if (config.churn_session_mean_s < 0) {
        std::fprintf(stderr, "--churn must be >= 0, got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--duration") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.duration_s = std::atof(argv[++i]);
      if (config.duration_s < 0) {
        std::fprintf(stderr, "--duration must be >= 0, got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--lookups") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.lookups = std::atoi(argv[++i]);
      if (config.lookups < 0 || config.lookups > 1000000) {
        std::fprintf(stderr, "--lookups must be in [0, 1000000], got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--loss") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.loss_rate = std::atof(argv[++i]);
      if (config.loss_rate < 0 || config.loss_rate >= 1) {
        std::fprintf(stderr, "--loss must be in [0, 1), got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--reliable") == 0) {
      config.reliable = true;
    } else if (std::strcmp(arg, "--shards") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      long shards = std::strtol(argv[++i], nullptr, 10);
      if (shards < 1 || shards > 1024) {
        std::fprintf(stderr, "--shards must be in [1, 1024], got %s\n", argv[i]);
        return 2;
      }
      config.shards = static_cast<size_t>(shards);
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      long port = std::strtol(argv[++i], nullptr, 10);
      if (port < 1 || port > 65535) {
        std::fprintf(stderr, "--port must be in [1, 65535], got %s\n", argv[i]);
        return 2;
      }
      config.udp_base_port = static_cast<uint16_t>(port);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--planner") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      const char* mode = argv[++i];
      if (std::strcmp(mode, "seminaive") == 0 || std::strcmp(mode, "semi-naive") == 0) {
        config.planner = p2::PlannerMode::kSemiNaive;
      } else if (std::strcmp(mode, "legacy") == 0) {
        config.planner = p2::PlannerMode::kLegacy;
      } else {
        std::fprintf(stderr, "unknown planner mode; expected seminaive|legacy\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--counting") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      const char* v = argv[++i];
      if (std::strcmp(v, "on") == 0) {
        config.counting = true;
      } else if (std::strcmp(v, "off") == 0) {
        config.counting = false;
      } else {
        std::fprintf(stderr, "--counting expects on|off, got %s\n", v);
        return 2;
      }
    } else if (std::strcmp(arg, "--steal") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      const char* v = argv[++i];
      if (std::strcmp(v, "on") == 0) {
        config.steal = true;
      } else if (std::strcmp(v, "off") == 0) {
        config.steal = false;
      } else {
        std::fprintf(stderr, "--steal expects on|off, got %s\n", v);
        return 2;
      }
    } else if (std::strcmp(arg, "--replan-interval") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.replan_interval_s = std::atof(argv[++i]);
      if (config.replan_interval_s < 0) {
        std::fprintf(stderr, "--replan-interval must be >= 0, got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--heal-probe") == 0) {
      config.heal_probe = true;
    } else if (std::strcmp(arg, "--loss-asym") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      p2::AsymLossRule rule;
      if (!p2::ParseAsymLossSpec(argv[++i], &rule)) {
        std::fprintf(stderr, "--loss-asym expects SRC:DST:RATE (rate in [0,1]), got %s\n",
                     argv[i]);
        return 2;
      }
      config.faults.asym_loss.push_back(rule);
    } else if (std::strcmp(arg, "--partition") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      p2::PartitionSpec part;
      if (!p2::ParsePartitionSpec(argv[++i], &part)) {
        std::fprintf(stderr,
                     "--partition expects START:DUR:DOMAINS (e.g. 10:30:0 or 0:60:0-4), "
                     "got %s\n",
                     argv[i]);
        return 2;
      }
      config.faults.partitions.push_back(part);
    } else if (std::strcmp(arg, "--latency-spike") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      p2::LatencySpikeSpec spike;
      if (!p2::ParseLatencySpikeSpec(argv[++i], &spike)) {
        std::fprintf(stderr,
                     "--latency-spike expects START:DUR:DOMAIN:FACTOR (factor >= 1), "
                     "got %s\n",
                     argv[i]);
        return 2;
      }
      config.faults.latency_spikes.push_back(spike);
    } else if (std::strcmp(arg, "--slow-nodes") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      if (!p2::ParseSlowNodesSpec(argv[++i], &config.faults.slow_fraction,
                                  &config.faults.slow_factor)) {
        std::fprintf(stderr,
                     "--slow-nodes expects FRAC:FACTOR (frac in [0,1], factor >= 1), "
                     "got %s\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--corrupt") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.faults.corrupt_rate = std::atof(argv[++i]);
      if (config.faults.corrupt_rate < 0 || config.faults.corrupt_rate >= 1) {
        std::fprintf(stderr, "--corrupt must be in [0, 1), got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--byzantine") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.faults.byzantine_fraction = std::atof(argv[++i]);
      if (config.faults.byzantine_fraction < 0 || config.faults.byzantine_fraction > 1) {
        std::fprintf(stderr, "--byzantine must be in [0, 1], got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(arg, "--watch") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      // Comma-separated predicate names; repeated flags accumulate.
      std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) {
          config.watches.push_back(list.substr(start, end - start));
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.trace_out = argv[++i];
    } else if (std::strcmp(arg, "--stats-dump") == 0) {
      config.stats_dump = true;
    } else if (std::strcmp(arg, "--sysstats") == 0) {
      if (!NeedValue(argc, argv, i)) {
        return 2;
      }
      config.sysstats_period_s = std::atof(argv[++i]);
      if (config.sysstats_period_s < 0) {
        std::fprintf(stderr, "--sysstats must be >= 0, got %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--no-metrics") == 0) {
      config.metrics = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      config.verbose = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg);
      Usage(argv[0]);
      return 2;
    }
  }
  if (config.verbose) {
    p2::SetLogLevel(p2::LogLevel::kInfo);
  }
  if (config.stats_dump && !config.metrics) {
    std::fprintf(stderr, "--stats-dump needs the metrics registry; drop --no-metrics\n");
    return 2;
  }

  if (explain) {
    std::fputs(p2::ExplainOverlayPlan(config.overlay, config.planner, config.counting,
                                      config.replan_interval_s)
                   .c_str(),
               stdout);
    return 0;
  }

  std::printf("p2run: overlay=%s nodes=%zu backend=%s seed=%llu",
              p2::OverlayKindName(config.overlay), config.nodes,
              p2::BackendKindName(config.backend),
              static_cast<unsigned long long>(config.seed));
  if (config.churn_session_mean_s > 0) {
    std::printf(" churn=%.0fs", config.churn_session_mean_s);
  }
  if (config.loss_rate > 0) {
    std::printf(" loss=%.2f", config.loss_rate);
  }
  if (config.reliable) {
    std::printf(" reliable=on");
  }
  if (config.shards > 1) {
    std::printf(" shards=%zu%s", config.shards, config.steal ? "" : " steal=off");
  }
  if (!config.faults.asym_loss.empty()) {
    std::printf(" loss-asym=%zu", config.faults.asym_loss.size());
  }
  if (!config.faults.partitions.empty()) {
    std::printf(" partitions=%zu", config.faults.partitions.size());
  }
  if (!config.faults.latency_spikes.empty()) {
    std::printf(" spikes=%zu", config.faults.latency_spikes.size());
  }
  if (config.faults.slow_fraction > 0) {
    std::printf(" slow=%.2f:%.1fx", config.faults.slow_fraction,
                config.faults.slow_factor);
  }
  if (config.faults.corrupt_rate > 0) {
    std::printf(" corrupt=%.3f", config.faults.corrupt_rate);
  }
  if (config.faults.byzantine_fraction > 0) {
    std::printf(" byzantine=%.2f", config.faults.byzantine_fraction);
  }
  std::printf("\n");
  std::fflush(stdout);

  p2::ScenarioReport report = p2::RunScenario(config);

  std::printf("ran for %.1f %s seconds (seed=%llu)\n%s", report.ran_for_s,
              config.backend == p2::BackendKind::kSim ? "virtual" : "wall-clock",
              static_cast<unsigned long long>(config.seed), report.detail.c_str());
  if (report.send_failures.total() > 0) {
    std::printf("udp send failures: %llu (oversize %llu, transient %llu, short %llu, "
                "other %llu)\n",
                static_cast<unsigned long long>(report.send_failures.total()),
                static_cast<unsigned long long>(report.send_failures.oversize),
                static_cast<unsigned long long>(report.send_failures.transient),
                static_cast<unsigned long long>(report.send_failures.short_writes),
                static_cast<unsigned long long>(report.send_failures.other));
  }
  if (report.sim_events > 0 && report.wall_s > 0) {
    std::printf("sim: %llu events in %.1fs wall (%.0f events/sec, %zu shard%s)\n",
                static_cast<unsigned long long>(report.sim_events), report.wall_s,
                static_cast<double>(report.sim_events) / report.wall_s, report.shards,
                report.shards == 1 ? "" : "s");
  }
  if (!config.trace_out.empty()) {
    std::FILE* f = std::fopen(config.trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", config.trace_out.c_str());
      return 2;
    }
    std::fwrite(report.trace_json.data(), 1, report.trace_json.size(), f);
    std::fclose(f);
    std::printf("trace: %s (%zu bytes)\n", config.trace_out.c_str(),
                report.trace_json.size());
  }
  if (config.stats_dump) {
    std::printf("--- metrics ---\n%s", report.stats_text.c_str());
  }
  std::printf(report.converged ? "CONVERGED\n" : "DID NOT CONVERGE\n");
  return report.converged ? 0 : 1;
}
