// Scenario configuration layer behind the `p2run` driver.
//
// A scenario is one reproducible overlay deployment: an overlay kind
// (chord/gossip/narada/pathvector), a node count, an optional churn
// profile, and a backend — the deterministic virtual-time simulator or
// real UDP sockets on the loopback. RunScenario wires the whole pipeline
// (overlog -> planner -> dataflow -> net) for the chosen overlay, runs it,
// and reports whether the overlay converged plus per-overlay metrics.
//
// The examples/ binaries are thin wrappers over this layer: they build
// their fleets through ScenarioNet and add only their demo-specific rules
// or narration on top.
#ifndef P2_CLI_SCENARIO_H_
#define P2_CLI_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/faults.h"
#include "src/harness/metrics.h"
#include "src/net/stack/lossy.h"
#include "src/obs/channel_stats.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/net/stack/reliable_channel.h"
#include "src/net/transport.h"
#include "src/net/udp_loop.h"
#include "src/overlog/planner.h"
#include "src/runtime/executor.h"
#include "src/sim/network.h"
#include "src/sim/shard.h"

namespace p2 {

enum class OverlayKind { kChord, kGossip, kNarada, kPathVector };
enum class BackendKind { kSim, kUdp };

// "chord" / "gossip" / "narada" / "pathvector"; false on unknown names.
bool ParseOverlayKind(const std::string& name, OverlayKind* out);
// "sim" / "udp"; false on unknown names.
bool ParseBackendKind(const std::string& name, BackendKind* out);
const char* OverlayKindName(OverlayKind kind);
const char* BackendKindName(BackendKind kind);

struct ScenarioConfig {
  OverlayKind overlay = OverlayKind::kChord;
  BackendKind backend = BackendKind::kSim;
  size_t nodes = 8;
  uint64_t seed = 1;
  // Measurement phase length in seconds (virtual for --sim, wall-clock for
  // --udp). 0 picks an overlay/backend-specific default.
  double duration_s = 0;
  // Mean exponential node session time in seconds; 0 disables churn.
  // Churn is supported on the sim backend for chord, gossip and narada
  // (Bamboo methodology: dead nodes are replaced immediately, population
  // stays constant).
  double churn_session_mean_s = 0;
  // Chord only: number of lookups issued during the measurement phase.
  int lookups = 20;
  // Probability that any datagram is dropped. The sim backend drops in the
  // fabric; the udp backend drops outgoing datagrams at each endpoint
  // through a deterministic LossyTransport filter.
  double loss_rate = 0;
  // Layer a ReliableChannel (ACK/retry, RTT estimation, AIMD congestion
  // control, bounded send queues) over every endpoint.
  bool reliable = false;
  // Sim backend only: number of worker threads executing the simulator's
  // share-nothing shards (one per topology domain when > 1). 1 =
  // single-threaded. A fixed seed produces identical per-node event
  // orders at any shard count.
  size_t shards = 1;
  // Sim backend only: work stealing — re-assign whole shards to workers
  // at window barriers from the completed window's per-shard event
  // counts. Bit-for-bit identical results either way (p2run --steal).
  bool steal = true;
  // Udp backend only: first port to bind (node i gets base+i); 0 lets the
  // kernel pick free ports.
  uint16_t udp_base_port = 0;
  // Rule compilation strategy for every node in the fleet; kLegacy runs
  // the pre-semi-naive planner (single trigger per rule, source-order
  // joins, full-scan aggregates) for differential comparison.
  PlannerMode planner = PlannerMode::kSemiNaive;
  // Support-counted retractions (semi-naive only); off reproduces the PR 6
  // remove-chain gating exactly (p2run --counting off).
  bool counting = true;
  // > 0 enables adaptive join re-planning at this virtual-time period on
  // every node (p2run --replan-interval).
  double replan_interval_s = 0;
  // PathVector sim only: kill one transit node mid-measurement and report
  // how many virtual seconds the fleet takes to heal — every live node's
  // routes matching post-failure ground truth (p2run --heal-probe).
  bool heal_probe = false;
  bool verbose = false;
  // --- Observability ---
  // Metrics registry on/off; --no-metrics gives the fully uninstrumented
  // build path for A/B overhead measurement.
  bool metrics = true;
  // Predicates to tap tuple-by-tuple (p2run --watch pred1,pred2).
  std::vector<std::string> watches;
  // Non-empty: record shard windows/barriers/control actions and return
  // Chrome trace_event JSON in the report (p2run writes it to this path).
  std::string trace_out;
  // Produce the Prometheus text exposition in the report at exit.
  bool stats_dump = false;
  // When > 0, every node maintains a sysstats table at this period.
  double sysstats_period_s = 0;
  // --- Fault injection (sim backend only) ---
  // Asymmetric loss, healing partitions, latency spikes, slow nodes,
  // corruption, byzantine chord responders (p2run --loss-asym --partition
  // --latency-spike --slow-nodes --corrupt --byzantine). Timed windows
  // (partitions, spikes) are armed at measurement start: for chord that is
  // the end of the settle phase, for the other overlays t=0.
  FaultPlan faults;
};

struct ScenarioReport {
  bool converged = false;
  size_t nodes = 0;
  size_t shards = 1;     // simulator shards the run used (1 for --udp)
  double ran_for_s = 0;  // measurement phase actually driven
  // Simulator-backend throughput accounting (zero for --udp): events
  // executed over the whole scenario and the wall-clock seconds spent
  // driving them. bench/scale_sweep derives events/sec from these.
  uint64_t sim_events = 0;
  double wall_s = 0;
  // Chord metrics.
  size_t lookups_issued = 0;
  size_t lookups_completed = 0;
  size_t lookups_consistent = 0;
  double ring_consistency = 0;  // fraction of nodes agreeing with ground truth
  uint64_t churn_deaths = 0;
  // Gossip/Narada: mean membership view size; PathVector: mean number of
  // best routes per node.
  double mean_view_size = 0;
  // PathVector heal probe: virtual seconds from the kill until every live
  // node's best routes match the post-failure ground truth (stale routes
  // through the dead node withdrawn, detours settled). -1 when the probe
  // did not run or did not converge within its cap.
  double healing_s = -1;
  // Partition probe (chord sim with config.faults.partitions): virtual
  // seconds from the last scheduled heal until ring consistency recovered
  // to its pre-partition level (capped at 0.95). -1 when no partition ran
  // or the ring did not recover within the cap.
  double partition_heal_s = -1;
  // Chord: completed-but-wrong lookup fraction against the live ground
  // truth — the byzantine detection metric (0 when nothing completed).
  double wrong_lookup_rate = 0;
  // Reliable-transport counters summed over the fleet (all-zero unless the
  // scenario ran with reliable = true).
  bool reliable = false;
  ReliableChannelStats transport_stats;
  // Udp backend: ::sendto failures, explicitly merged across endpoints.
  SendFailureCounters send_failures;
  // Human-readable per-overlay summary (multi-line, ready to print).
  std::string detail;
  // Prometheus text exposition (config.metrics && config.stats_dump).
  std::string stats_text;
  // Chrome trace_event JSON (when config.trace_out is set); the caller
  // writes it to the requested path.
  std::string trace_json;
};

// Runs one scenario to completion. Deterministic for the sim backend given
// a fixed config (virtual time, seeded RNG); best-effort timing for udp.
ScenarioReport RunScenario(const ScenarioConfig& config);

// Compiled-plan dump for one overlay's bundled program: builds a single
// node on the simulator backend and returns its P2Node::PlanExplain() —
// per-rule triggers, join order with static and live fanout estimates,
// probed indices and head routing (plus alternate join orders when
// replan_interval_s > 0). Deterministic for a given overlay and
// configuration (`p2run --explain` and the golden-plan tests print
// exactly this; tables are empty at plan time so live == static priors).
std::string ExplainOverlayPlan(OverlayKind kind,
                               PlannerMode mode = PlannerMode::kSemiNaive,
                               bool counting = true,
                               double replan_interval_s = 0);

// ScenarioNet: the backend-owning node fabric that RunScenario and the
// examples build fleets on. Owns the executors — a (possibly sharded)
// virtual-time ShardedSim or a poll()-based UdpLoop — plus `nodes`
// transports addressed "n0".."nK" (sim) or "127.0.0.1:port" (udp).
class ScenarioNet {
 public:
  ScenarioNet(BackendKind backend, size_t nodes, uint64_t seed,
              double loss_rate = 0, uint16_t udp_base_port = 0,
              bool reliable = false, ReliableConfig reliable_config = ReliableConfig{},
              size_t shards = 1, FaultPlan faults = FaultPlan{}, bool steal = true);
  ~ScenarioNet();
  ScenarioNet(const ScenarioNet&) = delete;
  ScenarioNet& operator=(const ScenarioNet&) = delete;

  // False if any endpoint failed to come up (UDP bind failure).
  bool ok() const { return ok_; }

  BackendKind backend() const { return backend_; }
  size_t size() const { return addrs_.size(); }
  // Worker threads driving the fleet (what --shards requested, capped by
  // the shard count; 1 for udp).
  size_t shards() const;
  // Registry/trace lanes a fleet on this net needs: one per simulator
  // shard plus the coordinator (2 for udp: the loop plus a merge lane).
  size_t metrics_lanes() const;
  // The executor node i must run on (its shard's loop under sim, the one
  // UdpLoop under udp). Everything a node owns — its timers, its reliable
  // channel — must be scheduled here. When the fault plan marks slot i
  // slow, this is the slot's dilating wrapper (same shard underneath).
  Executor* executor(size_t i);
  // The fleet-control executor: churn drivers and other cross-node actions
  // schedule here so they run with every shard parked (the sharded engine's
  // control timeline; the UdpLoop under udp).
  Executor* control_executor();
  Transport* transport(size_t i);
  const std::string& addr(size_t i) const { return addrs_[i]; }

  // Advances the fleet by `seconds`: virtual time under sim (deterministic),
  // wall-clock under udp.
  void Run(double seconds);
  double Now() const;

  // Simulator events executed so far (0 for the udp backend).
  uint64_t SimEventsRun() const;

  // Simulates a crash of endpoint i: its socket/registration goes away and
  // datagrams addressed to it vanish. Destroy the node using the transport
  // first.
  void Kill(size_t i);

  // Recreates a killed endpoint at the same address/topology slot (churn
  // replacement). Under udp the original port is re-bound, so peers keep
  // addressing the revived node at the address they already know.
  void Revive(size_t i);

  // Non-null only when the fleet runs with reliable = true.
  ReliableChannel* channel(size_t i) { return channels_.empty() ? nullptr : channels_[i].get(); }
  // Summed reliable-transport counters (live endpoints + churned-out ones).
  ReliableChannelStats TotalReliableStats() const;
  // Merged ::sendto failure counters (udp backend; all-zero under sim).
  SendFailureCounters TotalSendFailures() const;
  // Fleet channel aggregation (retired endpoints + live source); register
  // `pool()->Collect` as a registry collector to export the counters.
  obs::ChannelStatsPool* channel_pool() { return &pool_; }

  // Metrics registry the fleet's nodes report into (may stay null). The
  // runner sets this before building nodes; churn rebuilds read it back.
  void set_metrics(obs::Registry* m) {
    metrics_ = m;
    if (injector_ != nullptr && m != nullptr) {
      injector_->BindObs(m);
    }
  }
  obs::Registry* metrics() { return metrics_; }

  // Non-null when the fleet runs with a non-empty fault plan (sim only).
  FaultInjector* faults() { return injector_.get(); }

  // Non-null only for the sim backend (loss injection, delivery counters).
  SimNetwork* sim_network() { return sim_net_.get(); }
  // Non-null only for the sim backend (events_run, shard access).
  ShardedSim* sim_engine() { return sim_engine_.get(); }

 private:
  // Builds the per-endpoint decorator stack (loss filter, reliable channel)
  // over the freshly created base transport for slot i.
  void BuildStack(size_t i);

  BackendKind backend_;
  bool ok_ = true;
  uint64_t seed_;
  double loss_rate_;
  bool reliable_;
  ReliableConfig reliable_config_;
  uint64_t revive_counter_ = 0;
  FaultPlan faults_;
  // Declared before the engines: shard threads consult the injector via
  // SimNetwork until they park for the last time.
  std::unique_ptr<FaultInjector> injector_;
  // Per-slot timer-dilation wrappers for slow nodes (null when not slow).
  std::vector<std::unique_ptr<DilatedExecutor>> dilated_;
  std::vector<std::string> addrs_;
  obs::ChannelStatsPool pool_;
  obs::Registry* metrics_ = nullptr;
  // Sim backend.
  std::unique_ptr<ShardedSim> sim_engine_;
  std::unique_ptr<SimNetwork> sim_net_;
  std::vector<std::unique_ptr<SimTransport>> sim_transports_;
  // Udp backend.
  std::unique_ptr<UdpLoop> udp_loop_;
  std::vector<std::unique_ptr<UdpTransport>> udp_transports_;
  // Optional decorators, outermost last (indexes parallel the transports).
  std::vector<std::unique_ptr<LossyTransport>> lossy_;
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
};

}  // namespace p2

#endif  // P2_CLI_SCENARIO_H_
