#include "src/cli/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "src/harness/churn.h"
#include "src/harness/workload.h"
#include "src/overlays/chord.h"
#include "src/overlays/gossip.h"
#include "src/overlays/narada.h"
#include "src/overlays/pathvector.h"
#include "src/runtime/logging.h"

namespace p2 {

bool ParseOverlayKind(const std::string& name, OverlayKind* out) {
  if (name == "chord") {
    *out = OverlayKind::kChord;
  } else if (name == "gossip") {
    *out = OverlayKind::kGossip;
  } else if (name == "narada") {
    *out = OverlayKind::kNarada;
  } else if (name == "pathvector") {
    *out = OverlayKind::kPathVector;
  } else {
    return false;
  }
  return true;
}

bool ParseBackendKind(const std::string& name, BackendKind* out) {
  if (name == "sim") {
    *out = BackendKind::kSim;
  } else if (name == "udp") {
    *out = BackendKind::kUdp;
  } else {
    return false;
  }
  return true;
}

const char* OverlayKindName(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::kChord:
      return "chord";
    case OverlayKind::kGossip:
      return "gossip";
    case OverlayKind::kNarada:
      return "narada";
    case OverlayKind::kPathVector:
      return "pathvector";
  }
  return "?";
}

const char* BackendKindName(BackendKind kind) {
  return kind == BackendKind::kSim ? "sim" : "udp";
}

// --- ScenarioNet -----------------------------------------------------------

ScenarioNet::ScenarioNet(BackendKind backend, size_t nodes, uint64_t seed,
                         double loss_rate, uint16_t udp_base_port,
                         bool reliable, ReliableConfig reliable_config, size_t shards,
                         FaultPlan faults, bool steal)
    : backend_(backend),
      seed_(seed),
      loss_rate_(loss_rate),
      reliable_(reliable),
      reliable_config_(reliable_config),
      faults_(std::move(faults)) {
  lossy_.resize(nodes);
  channels_.resize(nodes);
  dilated_.resize(nodes);
  // Live halves of the fleet channel aggregation; Kill() retires the dead.
  pool_.SetLiveSource(
      [this](ReliableChannelStats* total) {
        for (const auto& ch : channels_) {
          if (ch != nullptr) {
            total->MergeFrom(ch->Stats());
          }
        }
      },
      [this](SendFailureCounters* total) {
        for (const auto& t : udp_transports_) {
          if (t != nullptr) {
            total->MergeFrom(t->send_failures());
          }
        }
      });
  if (backend_ == BackendKind::kSim) {
    sim_engine_ = std::make_unique<ShardedSim>(shards);
    sim_engine_->SetStealing(steal);
    sim_net_ = std::make_unique<SimNetwork>(sim_engine_.get(), Topology(TopologyConfig{}), seed);
    sim_net_->set_loss_rate(loss_rate);
    if (faults_.any()) {
      injector_ = std::make_unique<FaultInjector>(faults_, seed ^ 0xFA17ULL);
      sim_net_->SetFaults(injector_.get());
      // Generic fleets measure from t=0, so timed windows anchor there (the
      // chord testbed instead arms after its settle phase).
      injector_->Arm(0.0);
      injector_->ScheduleTransitions(sim_engine_->control());
    }
    for (size_t i = 0; i < nodes; ++i) {
      std::string addr = "n" + std::to_string(i);
      sim_transports_.push_back(sim_net_->MakeTransport(addr, i));
      addrs_.push_back(std::move(addr));
      BuildStack(i);
    }
    return;
  }
  udp_loop_ = std::make_unique<UdpLoop>();
  for (size_t i = 0; i < nodes; ++i) {
    uint32_t wanted = udp_base_port == 0 ? 0 : udp_base_port + static_cast<uint32_t>(i);
    if (wanted > 65535) {
      // base+i would wrap uint16_t and silently bind the wrong port.
      ok_ = false;
      addrs_.push_back("");
      udp_transports_.push_back(nullptr);
      continue;
    }
    auto t = udp_loop_->MakeTransport(static_cast<uint16_t>(wanted));
    if (t == nullptr) {
      ok_ = false;
      addrs_.push_back("");
      udp_transports_.push_back(nullptr);
      continue;
    }
    addrs_.push_back(t->local_addr());
    udp_transports_.push_back(std::move(t));
    BuildStack(i);
  }
}

ScenarioNet::~ScenarioNet() {
  // Channels hold receiver hooks into the base transports; tear the stack
  // down outermost-first.
  channels_.clear();
  lossy_.clear();
}

void ScenarioNet::BuildStack(size_t i) {
  Transport* top = backend_ == BackendKind::kSim
                       ? static_cast<Transport*>(sim_transports_[i].get())
                       : static_cast<Transport*>(udp_transports_[i].get());
  if (top == nullptr) {
    return;
  }
  if (backend_ == BackendKind::kUdp && loss_rate_ > 0) {
    // The sim injects loss in the fabric; UDP endpoints get a deterministic
    // per-endpoint drop filter instead.
    lossy_[i] = std::make_unique<LossyTransport>(
        top, loss_rate_, seed_ ^ (0x1055ULL + 0x9E3779B97F4A7C15ULL * (i + 1)));
    top = lossy_[i].get();
  }
  if (reliable_) {
    // The epoch seed folds in the revive counter so a replacement endpoint
    // reusing an address announces a fresh stream incarnation. The channel
    // belongs to node i, so its timers arm on node i's shard executor.
    channels_[i] = std::make_unique<ReliableChannel>(
        top, executor(i), reliable_config_,
        seed_ + 0xC4A271ULL + i + revive_counter_ * 1000003ULL);
  }
}

size_t ScenarioNet::shards() const {
  return sim_engine_ != nullptr ? sim_engine_->num_workers() : 1;
}

size_t ScenarioNet::metrics_lanes() const {
  return sim_engine_ != nullptr ? sim_engine_->num_shards() + 1 : 2;
}

Executor* ScenarioNet::executor(size_t i) {
  if (backend_ != BackendKind::kSim) {
    return udp_loop_.get();
  }
  Executor* base = sim_engine_->shard(sim_net_->ShardOf(i));
  if (injector_ != nullptr && injector_->IsSlowNode(i)) {
    // One wrapper per slot, reused across churn revivals so the slot stays
    // slow for its whole life regardless of how often it is rebuilt.
    if (dilated_[i] == nullptr) {
      dilated_[i] = std::make_unique<DilatedExecutor>(base, faults_.slow_factor);
    }
    return dilated_[i].get();
  }
  return base;
}

Executor* ScenarioNet::control_executor() {
  return backend_ == BackendKind::kSim ? sim_engine_->control()
                                       : static_cast<Executor*>(udp_loop_.get());
}

Transport* ScenarioNet::transport(size_t i) {
  if (channels_[i] != nullptr) {
    return channels_[i].get();
  }
  if (lossy_[i] != nullptr) {
    return lossy_[i].get();
  }
  return backend_ == BackendKind::kSim
             ? static_cast<Transport*>(sim_transports_[i].get())
             : static_cast<Transport*>(udp_transports_[i].get());
}

void ScenarioNet::Run(double seconds) {
  if (backend_ == BackendKind::kSim) {
    sim_engine_->RunFor(seconds);
  } else {
    udp_loop_->RunFor(seconds);
  }
}

double ScenarioNet::Now() const {
  return backend_ == BackendKind::kSim ? sim_engine_->Now() : udp_loop_->Now();
}

uint64_t ScenarioNet::SimEventsRun() const {
  return sim_engine_ != nullptr ? sim_engine_->events_run() : 0;
}

void ScenarioNet::Kill(size_t i) {
  if (channels_[i] != nullptr) {
    pool_.Retire(channels_[i]->Stats());
  }
  channels_[i].reset();
  lossy_[i].reset();
  if (backend_ == BackendKind::kSim) {
    sim_transports_[i].reset();
  } else {
    if (udp_transports_[i] != nullptr) {
      pool_.RetireSendFailures(udp_transports_[i]->send_failures());
    }
    udp_transports_[i].reset();
  }
}

void ScenarioNet::Revive(size_t i) {
  ++revive_counter_;
  if (backend_ == BackendKind::kSim) {
    P2_CHECK(sim_transports_[i] == nullptr);
    sim_transports_[i] = sim_net_->MakeTransport(addrs_[i], i);
    BuildStack(i);
    return;
  }
  // UDP: re-bind the node's original port so the revived endpoint receives
  // at the address its peers already hold. Without this a replacement would
  // get a fresh kernel-assigned port and every datagram addressed to the
  // old endpoint would blackhole.
  P2_CHECK(udp_transports_[i] == nullptr);
  size_t colon = addrs_[i].rfind(':');
  P2_CHECK(colon != std::string::npos);
  int port = std::atoi(addrs_[i].c_str() + colon + 1);
  P2_CHECK(port > 0 && port <= 65535);
  auto t = udp_loop_->MakeTransport(static_cast<uint16_t>(port));
  if (t == nullptr) {
    // The port can linger in use briefly; the caller sees a dead slot
    // (transport(i) == nullptr) until the next revive attempt, rather than
    // a silently misbound one.
    P2_LOG(LogLevel::kWarn, "udp revive: re-bind of %s failed", addrs_[i].c_str());
    return;
  }
  udp_transports_[i] = std::move(t);
  BuildStack(i);
}

ReliableChannelStats ScenarioNet::TotalReliableStats() const {
  return pool_.TotalReliable();
}

SendFailureCounters ScenarioNet::TotalSendFailures() const {
  return pool_.TotalSendFailures();
}

// --- Per-overlay runners ---------------------------------------------------

namespace {

// Observability wiring every per-node runner shares: the fleet registry,
// the watch list and the sysstats refresh period ride the node config.
void WireNodeObs(const ScenarioConfig& config, ScenarioNet* net, P2NodeConfig* nc) {
  nc->metrics = net->metrics();
  nc->watches = config.watches;
  nc->sysstats_period_s = config.sysstats_period_s;
  nc->counting = config.counting;
  nc->replan_interval_s = config.replan_interval_s;
}

// Renders the registry exposition / trace JSON into the report at run end.
void FinishObsReport(const ScenarioConfig& config, obs::Registry* registry,
                     obs::TraceLog* trace, ScenarioReport* report) {
  if (registry != nullptr && config.stats_dump) {
    report->stats_text = registry->PrometheusText();
  }
  if (trace != nullptr) {
    report->trace_json = trace->ToChromeJson();
  }
}

// Appends the reliable-transport summary line when the stack was enabled.
void FinishTransportReport(const ScenarioConfig& config, const ReliableChannelStats& stats,
                           ScenarioReport* report, std::ostringstream* os) {
  report->reliable = config.reliable;
  report->transport_stats = stats;
  if (config.reliable) {
    *os << "transport: " << stats.Summary() << "\n";
  }
}

// Bamboo-style churn scaffolding shared by the gossip/narada runners: each
// death destroys the slot's node, revives its endpoint at the same
// address, and rebuilds a replacement. Inert when churn is disabled.
struct FleetChurn {
  std::unique_ptr<FunctionChurnTarget> target;
  std::unique_ptr<ChurnDriver> driver;

  uint64_t deaths() const { return driver ? driver->deaths() : 0; }
  explicit operator bool() const { return driver != nullptr; }
};

FleetChurn StartFleetChurn(const ScenarioConfig& config, ScenarioNet* net,
                           std::function<void(size_t)> destroy_node,
                           std::function<void(size_t, uint64_t)> rebuild_node) {
  FleetChurn churn;
  if (config.churn_session_mean_s <= 0) {
    return churn;
  }
  auto salt = std::make_shared<uint64_t>(0);
  // Churn callbacks destroy and rebuild nodes across the whole fleet, so
  // they run on the control timeline (shards parked at a barrier).
  churn.target = std::make_unique<FunctionChurnTarget>(
      net->control_executor(), net->size(),
      [net, salt, destroy = std::move(destroy_node),
       rebuild = std::move(rebuild_node)](size_t slot) {
        destroy(slot);
        net->Kill(slot);
        net->Revive(slot);
        if (net->transport(slot) == nullptr) {
          // UDP re-bind can transiently fail (port briefly held elsewhere).
          // Leave the slot dead; the next scheduled death retries Revive.
          return true;
        }
        rebuild(slot, ++*salt);
        return true;
      });
  ChurnConfig churn_cfg;
  churn_cfg.session_mean_s = config.churn_session_mean_s;
  churn_cfg.seed = config.seed ^ 0xC0FFEE;
  churn.driver = std::make_unique<ChurnDriver>(churn.target.get(), churn_cfg);
  churn.driver->Start();
  return churn;
}

// Full-view convergence rule: everything under no churn; 3/4 under churn,
// where recently replaced nodes are still re-learning the membership.
bool FullViewsConverged(size_t full_views, size_t nodes, bool churned) {
  return churned ? full_views * 4 >= nodes * 3 : full_views == nodes;
}

void AppendChurnDetail(const ScenarioConfig& config, const FleetChurn& churn,
                       ScenarioReport* report, std::ostringstream* os) {
  if (!churn) {
    return;
  }
  report->churn_deaths = churn.deaths();
  *os << "churn deaths: " << report->churn_deaths << " (mean session "
      << config.churn_session_mean_s << "s)\n";
}

// Chord on the deterministic simulator rides the evaluation harness: the
// transit-stub testbed provides staggered joins, lookup bookkeeping with
// ground-truth consistency, and (optionally) Bamboo-style churn.
ScenarioReport RunChordSim(const ScenarioConfig& config) {
  ScenarioReport report;
  report.nodes = config.nodes;
  auto wall_start = std::chrono::steady_clock::now();

  TestbedConfig cfg;
  cfg.num_nodes = config.nodes;
  cfg.seed = config.seed;
  cfg.shards = config.shards;
  cfg.steal = config.steal;
  cfg.loss_rate = config.loss_rate;
  cfg.reliable = config.reliable;
  // One registry/trace lane per shard plus the coordinator's. With more
  // than one worker the engine runs one shard per topology domain.
  size_t lanes = (config.shards > 1 ? cfg.topology.num_domains : 1) + 1;
  std::unique_ptr<obs::Registry> registry;
  if (config.metrics) {
    registry = std::make_unique<obs::Registry>(lanes);
  }
  std::unique_ptr<obs::TraceLog> trace;
  if (!config.trace_out.empty()) {
    trace = std::make_unique<obs::TraceLog>(lanes);
  }
  cfg.metrics = registry.get();
  cfg.trace = trace.get();
  cfg.watches = config.watches;
  cfg.sysstats_period_s = config.sysstats_period_s;
  cfg.planner = config.planner;
  cfg.counting = config.counting;
  cfg.replan_interval_s = config.replan_interval_s;
  cfg.faults = config.faults;
  if (config.nodes > 64) {
    // Scale profile: a freshly built large ring heals its successor
    // pointers about one step per stabilization round, so round length
    // dominates both convergence time and the event count spent on
    // pings/finger-fixing while waiting. The Appendix-B WAN timers stay in
    // place for small fleets (and for the fig3/fig4 harness runs).
    cfg.chord.stabilize_period_s = 3.0;
    cfg.chord.finger_fix_period_s = 6.0;
  }
  ChordTestbed tb(cfg);
  // The fig3 settle recipe: staggered joins plus a 300-virtual-second tail
  // so every node finishes stabilization before measurement starts (a
  // shorter tail leaves the last joiners' successor lists racing the first
  // lookups, which shows up as spurious inconsistency).
  double settle = cfg.join_stagger_s * static_cast<double>(config.nodes) + 300.0;
  tb.BuildAndSettle(settle);
  // Concurrent joins leave the young ring with successor pointers that
  // stabilization repairs roughly one position per round — a wave that
  // takes more rounds the bigger the fleet. Keep settling until the ring
  // is consistent; a healing ring improves every window, so a plateau
  // means this configuration (e.g. heavy loss without the reliable stack)
  // has reached whatever consistency it is going to reach.
  double extend_cap = 30.0 * static_cast<double>(config.nodes);
  double extended = 0;
  double best_ring = tb.RingConsistencyFraction();
  double stalled_for = 0;
  // "Progress" must be a healing wave, not noise: at least one node's
  // pointer (or half a percent of the fleet) fixed per window. A lossy
  // best-effort ring creeps slower than that forever — treat it as
  // plateaued rather than simulating the full cap.
  double min_progress =
      std::max(0.005, 1.0 / static_cast<double>(config.nodes));
  while (best_ring < 0.95 && extended < extend_cap && stalled_for < 300.0) {
    tb.RunFor(30.0);
    extended += 30.0;
    double ring = tb.RingConsistencyFraction();
    if (ring >= best_ring + min_progress) {
      best_ring = ring;
      stalled_for = 0;
    } else {
      best_ring = std::max(best_ring, ring);
      stalled_for += 30.0;
    }
  }

  // Fault timeline starts now: "--partition 10:30:0" forms 10 virtual
  // seconds into the measurement phase, against a settled ring. Untimed
  // axes (asymmetric loss, corruption, slow nodes, byzantine rules) were
  // live the whole time — they stress join/stabilization too.
  double pre_fault_ring = tb.RingConsistencyFraction();
  tb.ArmFaults();
  if (!config.faults.partitions.empty()) {
    // Drive straight through every scheduled window, then probe recovery:
    // virtual seconds from the last heal until ring consistency is back to
    // its pre-partition level. Partitioned minorities drop their severed
    // successors (succ TTL) and re-join through the landmark machinery
    // once the cut heals, so recovery takes real stabilization rounds.
    double transitions = config.faults.LastTransitionS();
    tb.RunFor(transitions);
    double heal_instant = tb.Now();
    double target = std::min(0.95, pre_fault_ring);
    double cap = 180.0 + static_cast<double>(config.nodes);
    while (tb.Now() - heal_instant < cap) {
      tb.RunFor(1.0);
      if (tb.RingConsistencyFraction() >= target) {
        report.partition_heal_s = tb.Now() - heal_instant;
        break;
      }
    }
  }

  ChurnConfig churn_cfg;
  churn_cfg.session_mean_s = config.churn_session_mean_s;
  churn_cfg.seed = config.seed ^ 0xC0FFEE;
  std::unique_ptr<ChurnDriver> churn;
  if (config.churn_session_mean_s > 0) {
    churn = std::make_unique<ChurnDriver>(&tb, churn_cfg);
    churn->Start();
  }

  double t0 = tb.Now();
  // One lookup per second, then a grace window for stragglers/retries.
  for (int i = 0; i < config.lookups; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  double duration = config.duration_s > 0 ? config.duration_s : 60.0;
  double grace = std::max(cfg.lookup_timeout_s + 1.0,
                          duration - static_cast<double>(config.lookups));
  tb.RunFor(grace);
  report.ran_for_s = tb.Now() - t0;

  report.lookups_issued = tb.lookups().size();
  for (const ChordTestbed::LookupRecord& rec : tb.lookups()) {
    report.lookups_completed += rec.completed ? 1 : 0;
    report.lookups_consistent += rec.consistent ? 1 : 0;
  }
  report.ring_consistency = tb.RingConsistencyFraction();
  report.churn_deaths = churn ? churn->deaths() : 0;
  report.wrong_lookup_rate =
      report.lookups_completed == 0
          ? 0
          : static_cast<double>(report.lookups_completed - report.lookups_consistent) /
                static_cast<double>(report.lookups_completed);

  // A static ring must answer everything consistently; under churn we accept
  // the usual evaluation slack (some lookups race dead nodes).
  bool static_ok = report.lookups_completed == report.lookups_issued &&
                   report.ring_consistency >= 0.9 &&
                   report.lookups_consistent * 10 >= report.lookups_completed * 9;
  bool churn_ok = report.lookups_completed * 4 >= report.lookups_issued * 3;
  report.converged = churn ? churn_ok : static_ok;

  std::ostringstream os;
  os << "lookups: " << report.lookups_completed << "/" << report.lookups_issued
     << " completed, " << report.lookups_consistent << " consistent\n"
     << "ring consistency: " << report.ring_consistency << "\n";
  if (churn) {
    os << "churn deaths: " << report.churn_deaths << " (mean session "
       << config.churn_session_mean_s << "s)\n";
  }
  if (!config.faults.partitions.empty()) {
    if (report.partition_heal_s >= 0) {
      os << "partition probe: ring recovered " << report.partition_heal_s
         << "s after the last heal\n";
    } else {
      os << "partition probe: ring NOT recovered after the last heal\n";
    }
  }
  if (config.faults.byzantine_fraction > 0) {
    os << "byzantine: " << tb.faults()->CountByzantine(config.nodes) << "/"
       << config.nodes << " nodes answer lookups dishonestly, wrong-lookup rate "
       << report.wrong_lookup_rate << "\n";
  }
  FinishTransportReport(config, tb.TotalReliableStats(), &report, &os);
  report.shards = tb.engine()->num_workers();
  report.sim_events = tb.EventsRun();
  report.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                wall_start)
                      .count();
  report.detail = os.str();
  FinishObsReport(config, registry.get(), trace.get(), &report);
  return report;
}

// Chord over real UDP sockets: one process, N loopback endpoints, snappy
// timers so a ring forms within seconds of wall-clock time.
ScenarioReport RunChordUdp(const ScenarioConfig& config, ScenarioNet* net) {
  ScenarioReport report;
  report.nodes = config.nodes;

  ChordConfig chord;
  chord.finger_fix_period_s = 2.0;
  chord.stabilize_period_s = 1.5;
  chord.ping_period_s = 0.8;
  chord.succ_lifetime_s = 1.7;

  std::vector<std::unique_ptr<ChordNode>> nodes;
  for (size_t i = 0; i < net->size(); ++i) {
    P2NodeConfig nc;
    nc.executor = net->executor(i);
    nc.transport = net->transport(i);
    nc.seed = config.seed + i;
    nc.planner_mode = config.planner;
    WireNodeObs(config, net, &nc);
    nodes.push_back(std::make_unique<ChordNode>(nc, chord,
                                                i == 0 ? "" : net->addr(0)));
    nodes.back()->Start();
  }

  double duration = config.duration_s > 0 ? config.duration_s : 15.0;
  double t0 = net->Now();
  net->Run(duration * 0.7);

  size_t completed = 0;
  for (int i = 0; i < config.lookups; ++i) {
    ChordNode* origin = nodes[static_cast<size_t>(i) % nodes.size()].get();
    Uint160 key = Uint160::HashOf("p2run-key-" + std::to_string(i));
    Uint160 ev = origin->Lookup(key);
    origin->OnLookupResult([ev, &completed](const ChordNode::LookupResult& r) {
      if (r.event_id == ev) {
        ++completed;
      }
    });
  }
  net->Run(duration * 0.3 + 2.0);
  report.ran_for_s = net->Now() - t0;

  // Ring consistency against the id-sorted ground truth.
  std::vector<std::pair<Uint160, std::string>> ring;
  for (auto& n : nodes) {
    ring.emplace_back(n->id(), n->addr());
  }
  std::sort(ring.begin(), ring.end());
  size_t agree = 0;
  for (auto& n : nodes) {
    auto best = n->BestSuccessor();
    if (!best.has_value()) {
      continue;
    }
    size_t pos = 0;
    while (pos < ring.size() && !(ring[pos].first == n->id())) {
      ++pos;
    }
    const auto& truth = ring[(pos + 1) % ring.size()];
    agree += best->second == truth.second ? 1 : 0;
  }
  report.lookups_issued = static_cast<size_t>(config.lookups);
  report.lookups_completed = completed;
  report.lookups_consistent = completed;  // no ground-truth audit over UDP
  report.ring_consistency =
      nodes.empty() ? 0
                    : static_cast<double>(agree) / static_cast<double>(nodes.size());
  report.converged = completed == report.lookups_issued && report.ring_consistency >= 0.75;

  std::ostringstream os;
  os << "lookups: " << completed << "/" << report.lookups_issued << " completed\n"
     << "ring consistency: " << report.ring_consistency << "\n";
  FinishTransportReport(config, net->TotalReliableStats(), &report, &os);
  report.detail = os.str();

  for (auto& n : nodes) {
    n->Stop();
  }
  return report;
}

ScenarioReport RunGossip(const ScenarioConfig& config, ScenarioNet* net) {
  ScenarioReport report;
  report.nodes = config.nodes;

  GossipConfig gc;
  gc.gossip_period_s = net->backend() == BackendKind::kSim ? 1.0 : 0.5;
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (size_t i = 0; i < net->size(); ++i) {
    P2NodeConfig nc;
    nc.executor = net->executor(i);
    nc.transport = net->transport(i);
    nc.seed = config.seed + i;
    nc.planner_mode = config.planner;
    WireNodeObs(config, net, &nc);
    // Chain seeding: node i only knows node i-1; convergence therefore
    // proves full transitive spread, not just one-hop pushes.
    std::vector<std::string> seeds;
    if (i > 0) {
      seeds.push_back(net->addr(i - 1));
    }
    nodes.push_back(std::make_unique<GossipNode>(nc, gc, seeds));
    nodes.back()->Start();
  }

  // Under churn the dead node's slot is revived at the same address and
  // rejoins through its ring predecessor.
  FleetChurn churn = StartFleetChurn(
      config, net,
      [&nodes](size_t slot) {
        if (nodes[slot] != nullptr) {
          nodes[slot]->Stop();
          nodes[slot].reset();
        }
      },
      [&](size_t slot, uint64_t salt) {
        P2NodeConfig nc;
        nc.executor = net->executor(slot);
        nc.transport = net->transport(slot);
        nc.seed = config.seed + 100003 * salt + slot;
        nc.planner_mode = config.planner;
        WireNodeObs(config, net, &nc);
        std::vector<std::string> seeds{
            net->addr((slot + net->size() - 1) % net->size())};
        nodes[slot] = std::make_unique<GossipNode>(nc, gc, seeds);
        nodes[slot]->Start();
      });

  double duration = config.duration_s > 0
                        ? config.duration_s
                        : (net->backend() == BackendKind::kSim ? 120.0 : 8.0);
  double t0 = net->Now();
  net->Run(duration);
  report.ran_for_s = net->Now() - t0;

  size_t full_views = 0;
  double view_sum = 0;
  for (auto& n : nodes) {
    if (n == nullptr) {
      continue;  // dead slot (failed udp re-bind): counts as a stale view
    }
    size_t view = n->Members().size();
    view_sum += static_cast<double>(view);
    full_views += view == net->size() ? 1 : 0;
  }
  report.mean_view_size = nodes.empty() ? 0 : view_sum / static_cast<double>(nodes.size());
  report.converged =
      FullViewsConverged(full_views, net->size(), static_cast<bool>(churn));

  std::ostringstream os;
  os << "full membership views: " << full_views << "/" << net->size()
     << " (mean view " << report.mean_view_size << ")\n";
  AppendChurnDetail(config, churn, &report, &os);
  FinishTransportReport(config, net->TotalReliableStats(), &report, &os);
  report.detail = os.str();

  for (auto& n : nodes) {
    if (n != nullptr) {
      n->Stop();
    }
  }
  return report;
}

ScenarioReport RunNarada(const ScenarioConfig& config, ScenarioNet* net) {
  ScenarioReport report;
  report.nodes = config.nodes;

  NaradaConfig narada;
  narada.refresh_period_s = 1.0;
  narada.probe_period_s = 0.5;
  narada.dead_after_s = 6.0;
  narada.latency_probe_period_s = 2.0;

  std::vector<std::unique_ptr<NaradaNode>> nodes;
  for (size_t i = 0; i < net->size(); ++i) {
    P2NodeConfig nc;
    nc.executor = net->executor(i);
    nc.transport = net->transport(i);
    nc.seed = config.seed + i;
    nc.planner_mode = config.planner;
    WireNodeObs(config, net, &nc);
    // Chain mesh: i <-> i+1; epidemic refresh must spread membership.
    std::vector<std::string> neighbors;
    if (i > 0) {
      neighbors.push_back(net->addr(i - 1));
    }
    if (i + 1 < net->size()) {
      neighbors.push_back(net->addr(i + 1));
    }
    nodes.push_back(std::make_unique<NaradaNode>(nc, narada, neighbors));
    nodes.back()->Start();
  }

  // Under churn the revived slot re-meshes with both chain neighbors.
  FleetChurn churn = StartFleetChurn(
      config, net,
      [&nodes](size_t slot) {
        if (nodes[slot] != nullptr) {
          nodes[slot]->Stop();
          nodes[slot].reset();
        }
      },
      [&](size_t slot, uint64_t salt) {
        P2NodeConfig nc;
        nc.executor = net->executor(slot);
        nc.transport = net->transport(slot);
        nc.seed = config.seed + 100003 * salt + slot;
        nc.planner_mode = config.planner;
        WireNodeObs(config, net, &nc);
        std::vector<std::string> neighbors{
            net->addr((slot + net->size() - 1) % net->size()),
            net->addr((slot + 1) % net->size())};
        nodes[slot] = std::make_unique<NaradaNode>(nc, narada, neighbors);
        nodes[slot]->Start();
      });

  double duration = config.duration_s > 0
                        ? config.duration_s
                        : (net->backend() == BackendKind::kSim
                               ? 30.0 + 2.0 * static_cast<double>(net->size())
                               : 10.0);
  double t0 = net->Now();
  net->Run(duration);
  report.ran_for_s = net->Now() - t0;

  size_t full_views = 0;
  double view_sum = 0;
  for (auto& n : nodes) {
    if (n == nullptr) {
      continue;  // dead slot: counts as a stale view
    }
    std::vector<NaradaMember> members = n->Members();
    size_t live = 0;
    for (const NaradaMember& m : members) {
      live += m.live ? 1 : 0;
    }
    view_sum += static_cast<double>(members.size());
    full_views += (members.size() >= net->size() && live >= net->size()) ? 1 : 0;
  }
  report.mean_view_size = nodes.empty() ? 0 : view_sum / static_cast<double>(nodes.size());
  report.converged =
      FullViewsConverged(full_views, net->size(), static_cast<bool>(churn));

  std::ostringstream os;
  os << "full live views: " << full_views << "/" << net->size() << " (mean view "
     << report.mean_view_size << ")\n";
  AppendChurnDetail(config, churn, &report, &os);
  FinishTransportReport(config, net->TotalReliableStats(), &report, &os);
  report.detail = os.str();

  for (auto& n : nodes) {
    if (n != nullptr) {
      n->Stop();
    }
  }
  return report;
}

ScenarioReport RunPathVector(const ScenarioConfig& config, ScenarioNet* net) {
  ScenarioReport report;
  report.nodes = config.nodes;

  PathVectorConfig pv;
  pv.advertise_period_s = net->backend() == BackendKind::kSim ? 1.0 : 0.5;
  pv.route_lifetime_s = pv.advertise_period_s * 3.5;

  // Bidirectional unit-cost ring: i <-> i+1 (mod n).
  auto links_for = [net](size_t i) {
    std::vector<std::pair<std::string, int64_t>> links;
    if (net->size() > 1) {
      links.emplace_back(net->addr((i + 1) % net->size()), 1);
      links.emplace_back(net->addr((i + net->size() - 1) % net->size()), 1);
    }
    return links;
  };

  std::vector<std::unique_ptr<PathVectorNode>> nodes;
  for (size_t i = 0; i < net->size(); ++i) {
    P2NodeConfig nc;
    nc.executor = net->executor(i);
    nc.transport = net->transport(i);
    nc.seed = config.seed + i;
    nc.planner_mode = config.planner;
    WireNodeObs(config, net, &nc);
    nodes.push_back(std::make_unique<PathVectorNode>(nc, pv, links_for(i)));
    nodes.back()->Start();
  }

  // Under churn the dead node's slot is revived at the same address and
  // relinked into the ring. Survivors withdraw every route through (or to)
  // the dead next-hop immediately — path-vector's explicit withdrawal —
  // so the fleet re-converges within advertisement rounds instead of
  // waiting a full route lifetime per wave of staleness.
  FleetChurn churn = StartFleetChurn(
      config, net,
      [&nodes, net](size_t slot) {
        if (nodes[slot] == nullptr) {
          return;  // slot already dead (an earlier udp re-bind failed)
        }
        std::string dead = net->addr(slot);
        nodes[slot]->Stop();
        nodes[slot].reset();
        for (auto& n : nodes) {
          if (n != nullptr) {
            n->WithdrawRoutesVia(dead);
          }
        }
      },
      [&](size_t slot, uint64_t salt) {
        P2NodeConfig nc;
        nc.executor = net->executor(slot);
        nc.transport = net->transport(slot);
        nc.seed = config.seed + 100003 * salt + slot;
        nc.planner_mode = config.planner;
        WireNodeObs(config, net, &nc);
        nodes[slot] = std::make_unique<PathVectorNode>(nc, pv, links_for(slot));
        nodes[slot]->Start();
      });

  // Path-vector needs ~diameter advertisement rounds to converge.
  double rounds = static_cast<double>(net->size()) / 2.0 + 8.0;
  double duration = config.duration_s > 0 ? config.duration_s
                                          : rounds * pv.advertise_period_s;
  double t0 = net->Now();
  net->Run(duration);
  report.ran_for_s = net->Now() - t0;

  size_t full_tables = 0;
  double routes_sum = 0;
  for (auto& n : nodes) {
    if (n == nullptr) {
      continue;  // dead slot: counts as an empty table
    }
    size_t best = n->BestRoutes().size();
    routes_sum += static_cast<double>(best);
    full_tables += best >= net->size() - 1 ? 1 : 0;
  }
  report.mean_view_size = nodes.empty() ? 0 : routes_sum / static_cast<double>(nodes.size());
  // Under churn, recently replaced nodes are still re-learning routes when
  // the run ends; hold the fleet to the same 3/4 bar as the view overlays.
  report.converged =
      FullViewsConverged(full_tables, net->size(), static_cast<bool>(churn));

  std::ostringstream os;
  os << "full routing tables: " << full_tables << "/" << net->size()
     << " (mean best routes " << report.mean_view_size << ")\n";

  // Healing probe (sim only, incompatible with churn's revival cycle):
  // kill one node for good, let only its two ring neighbors react — they
  // drop the link and delete their candidate routes over it, genuine
  // remove deltas through the table API — and measure the virtual time
  // until every live node's best routes match the post-cut ground truth
  // (the ring minus one node is a line; unit costs make truth exact).
  // Distant nodes are NOT told: stale routes must drain through the
  // planner's retraction chains (or, under --planner legacy, TTL decay),
  // which is exactly what the metric compares.
  if (config.heal_probe && net->backend() == BackendKind::kSim && !churn &&
      net->size() >= 4) {
    size_t n = net->size();
    size_t victim = n / 2;
    std::string dead = net->addr(victim);
    nodes[victim]->Stop();
    nodes[victim].reset();
    net->Kill(victim);
    for (size_t nb : {(victim + 1) % n, (victim + n - 1) % n}) {
      PathVectorNode* neighbor = nodes[nb].get();
      neighbor->RemoveLink(dead);
      Table* route = neighbor->node()->GetTable("route");
      Value hop = Value::Addr(dead);
      for (const TuplePtr& row : route->Scan()) {
        if (row->size() >= 4 && (row->field(1) == hop || row->field(2) == hop)) {
          route->DeleteByKey({row->field(1), row->field(2)});
        }
      }
    }
    // Ground truth: live slots laid out as a line victim+1 .. victim+n-1,
    // distance = |position difference|; the advertisement horizon hides
    // destinations at max_cost or beyond, so those pairs are skipped.
    auto line_pos = [&](size_t slot) { return (slot + n - victim - 1) % n; };
    auto healed = [&]() {
      for (size_t i = 0; i < n; ++i) {
        if (i == victim) {
          continue;
        }
        std::map<std::string, int64_t> best;
        for (const RouteEntry& r : nodes[i]->BestRoutes()) {
          if (r.dst == dead) {
            return false;  // stale route to the dead node
          }
          best[r.dst] = r.cost;
        }
        for (size_t j = 0; j < n; ++j) {
          if (j == victim || j == i) {
            continue;
          }
          int64_t truth = std::llabs(static_cast<int64_t>(line_pos(i)) -
                                     static_cast<int64_t>(line_pos(j)));
          if (truth >= pv.max_cost) {
            continue;  // beyond the horizon: never advertised
          }
          auto it = best.find(net->addr(j));
          if (it == best.end() || it->second != truth) {
            return false;
          }
        }
      }
      return true;
    };
    double kill_time = net->Now();
    double cap = 90.0 + static_cast<double>(n);
    while (net->Now() - kill_time < cap) {
      net->Run(0.25);
      if (healed()) {
        report.healing_s = net->Now() - kill_time;
        break;
      }
    }
    if (report.healing_s >= 0) {
      os << "heal probe: killed " << dead << ", fleet healed in " << report.healing_s
         << "s\n";
    } else {
      os << "heal probe: killed " << dead << ", NOT healed within " << cap << "s\n";
    }
  }

  AppendChurnDetail(config, churn, &report, &os);
  FinishTransportReport(config, net->TotalReliableStats(), &report, &os);
  report.detail = os.str();

  for (auto& n : nodes) {
    if (n != nullptr) {
      n->Stop();
    }
  }
  return report;
}

}  // namespace

ScenarioReport RunScenario(const ScenarioConfig& config) {
  ScenarioReport report;
  if (config.nodes < 2) {
    report.detail = "scenario needs at least 2 nodes\n";
    return report;
  }
  // Churn coverage: gossip/narada/pathvector churn on both backends (the
  // generic ChurnTarget path — under udp, Revive re-binds the port); chord
  // churn rides the sim testbed only.
  if (config.churn_session_mean_s > 0 && config.overlay == OverlayKind::kChord &&
      config.backend != BackendKind::kSim) {
    report.detail = "chord churn profiles need --sim\n";
    return report;
  }
  if (config.shards < 1) {
    report.detail = "--shards must be >= 1\n";
    return report;
  }
  if (config.shards > 1 && config.backend != BackendKind::kSim) {
    report.detail = "--shards applies to the simulator backend only (use --sim)\n";
    return report;
  }
  // Fault injection rides the deterministic fabric: the injector hooks
  // SimNetwork's send path and the timed windows hook the shard
  // coordinator's control timeline, neither of which exists under udp.
  if (config.faults.any() && config.backend != BackendKind::kSim) {
    report.detail = "fault injection flags (--loss-asym/--partition/--latency-spike/"
                    "--slow-nodes/--corrupt/--byzantine) need --sim\n";
    return report;
  }
  if (config.faults.byzantine_fraction > 0 && config.overlay != OverlayKind::kChord) {
    report.detail = "--byzantine applies to the chord overlay only\n";
    return report;
  }

  if (config.overlay == OverlayKind::kChord && config.backend == BackendKind::kSim) {
    return RunChordSim(config);
  }

  auto wall_start = std::chrono::steady_clock::now();
  // Registry/trace outlive the net (nodes and shard workers write into
  // them until teardown): declare them first so they destruct last.
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::TraceLog> trace;
  ScenarioNet net(config.backend, config.nodes, config.seed, config.loss_rate,
                  config.udp_base_port, config.reliable, ReliableConfig{},
                  config.shards, config.faults, config.steal);
  if (!net.ok()) {
    report.detail = "failed to bring up transports (UDP bind failure?)\n";
    return report;
  }
  size_t lanes = net.metrics_lanes();
  if (config.metrics) {
    registry = std::make_unique<obs::Registry>(lanes);
    registry->AddCollector(
        [pool = net.channel_pool()](obs::Snapshot* snap) { pool->Collect(snap); });
    net.set_metrics(registry.get());
  }
  if (!config.trace_out.empty()) {
    trace = std::make_unique<obs::TraceLog>(lanes);
  }
  if (net.sim_engine() != nullptr && (registry != nullptr || trace != nullptr)) {
    net.sim_engine()->SetObs(registry.get(), trace.get());
  }
  switch (config.overlay) {
    case OverlayKind::kChord:
      report = RunChordUdp(config, &net);
      break;
    case OverlayKind::kGossip:
      report = RunGossip(config, &net);
      break;
    case OverlayKind::kNarada:
      report = RunNarada(config, &net);
      break;
    case OverlayKind::kPathVector:
      report = RunPathVector(config, &net);
      break;
  }
  report.shards = net.shards();
  report.sim_events = net.SimEventsRun();
  report.send_failures = net.TotalSendFailures();
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  FinishObsReport(config, registry.get(), trace.get(), &report);
  return report;
}

std::string ExplainOverlayPlan(OverlayKind kind, PlannerMode mode, bool counting,
                               double replan_interval_s) {
  // One planning node plus a peer slot so seed-member/landmark/link
  // arguments have a real address to point at. Tables are empty at plan
  // time, so the fanout estimates come from the static spec priors and the
  // dump is identical on every run.
  ScenarioNet net(BackendKind::kSim, 2, /*seed=*/1);
  P2NodeConfig nc;
  nc.executor = net.executor(0);
  nc.transport = net.transport(0);
  nc.seed = 1;
  nc.planner_mode = mode;
  nc.counting = counting;
  nc.replan_interval_s = replan_interval_s;
  switch (kind) {
    case OverlayKind::kChord: {
      ChordNode node(nc, ChordConfig{}, /*landmark_addr=*/"");
      return node.node()->PlanExplain();
    }
    case OverlayKind::kGossip: {
      GossipNode node(nc, GossipConfig{}, {net.addr(1)});
      return node.node()->PlanExplain();
    }
    case OverlayKind::kNarada: {
      NaradaNode node(nc, NaradaConfig{}, {net.addr(1)});
      return node.node()->PlanExplain();
    }
    case OverlayKind::kPathVector: {
      PathVectorNode node(nc, PathVectorConfig{}, {{net.addr(1), 1}});
      return node.node()->PlanExplain();
    }
  }
  return "";
}

}  // namespace p2
