// 160-bit unsigned integers with mod-2^160 (ring) arithmetic.
//
// Chord identifies nodes and keys by 160-bit identifiers on a ring; all of
// the protocol's interval tests ("K in (N,S]") and distance computations
// ("D := K - B - 1") are performed modulo 2^160 with wrap-around. This class
// is the concrete identifier type used by the P2 Value system (ValueType::kId).
#ifndef P2_RUNTIME_UINT160_H_
#define P2_RUNTIME_UINT160_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace p2 {

// An unsigned 160-bit integer. Stored as three 64-bit limbs, little-endian
// limb order; the top limb keeps only its low 32 bits (the rest must be 0).
class Uint160 {
 public:
  constexpr Uint160() : limbs_{0, 0, 0} {}
  constexpr explicit Uint160(uint64_t low) : limbs_{low, 0, 0} {}
  constexpr Uint160(uint64_t hi32, uint64_t mid, uint64_t low) : limbs_{low, mid, hi32 & kTopMask} {}

  // 2^160 - 1, the maximum representable value.
  static Uint160 Max();
  // Deterministic 160-bit hash of a byte string (SplitMix64-based wide hash;
  // a stand-in for SHA-1 — see DESIGN.md substitutions).
  static Uint160 HashOf(std::string_view bytes);
  // Parses a hexadecimal string (with or without 0x prefix, up to 40 digits).
  // Returns false on malformed input.
  static bool FromHex(std::string_view hex, Uint160* out);

  // Arithmetic is mod 2^160 (wraps around the ring).
  Uint160 operator+(const Uint160& o) const;
  Uint160 operator-(const Uint160& o) const;
  // Left shift; shifts >= 160 yield 0.
  Uint160 operator<<(unsigned n) const;

  bool operator==(const Uint160& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const Uint160& o) const { return !(*this == o); }
  bool operator<(const Uint160& o) const;
  bool operator<=(const Uint160& o) const { return *this < o || *this == o; }
  bool operator>(const Uint160& o) const { return o < *this; }
  bool operator>=(const Uint160& o) const { return o <= *this; }

  // Ring-interval membership with Chord semantics. The interval is walked
  // clockwise from `lo` to `hi`. When lo == hi, an interval that excludes at
  // least one endpoint denotes the full ring minus the excluded point(s)
  // (this is what Chord's lookup rules rely on).
  //   InOO: x in (lo, hi)     InOC: x in (lo, hi]
  //   InCO: x in [lo, hi)     InCC: x in [lo, hi]
  bool InOO(const Uint160& lo, const Uint160& hi) const;
  bool InOC(const Uint160& lo, const Uint160& hi) const;
  bool InCO(const Uint160& lo, const Uint160& hi) const;
  bool InCC(const Uint160& lo, const Uint160& hi) const;

  // Clockwise distance from `from` to this (this - from, mod 2^160).
  Uint160 DistanceFrom(const Uint160& from) const { return *this - from; }

  bool IsZero() const { return limbs_[0] == 0 && limbs_[1] == 0 && limbs_[2] == 0; }

  // Lowercase hex, no leading zeros (at least one digit).
  std::string ToHex() const;
  // Low 64 bits (useful for compact logging and tests).
  uint64_t Low64() const { return limbs_[0]; }

  size_t HashValue() const;

  const std::array<uint64_t, 3>& limbs() const { return limbs_; }

 private:
  static constexpr uint64_t kTopMask = 0xFFFFFFFFu;
  std::array<uint64_t, 3> limbs_;  // [0]=low 64, [1]=mid 64, [2]=high 32.
};

}  // namespace p2

#endif  // P2_RUNTIME_UINT160_H_
