// Hierarchical timer wheel: O(1) schedule and cancel for the executor
// backends.
//
// Both event loops (the virtual-time simulator and the poll()-based UDP
// loop) used to keep timers in a binary heap, where schedule is O(log n)
// and cancel leaves a tombstone that is popped later. At 1k-node scale the
// reliable transport stack alone arms and cancels one retransmit and one
// delayed-ACK timer per live peer per round trip, so timer-queue churn
// grows with the fleet. The wheel replaces the heap: four levels of 256
// slots each (Varghese & Lauck's hashed hierarchical wheel), a bitmap per
// level to find the next occupied slot in a few word scans, and intrusive
// doubly-linked slot lists so cancellation unlinks in O(1).
//
// Timer nodes live in a generation-tagged pool: a TimerId encodes
// (generation, pool index), so schedule/cancel allocate nothing in steady
// state and id lookup is an array index — no per-timer heap traffic, and a
// stale cancel (after fire or double-cancel) is a generation mismatch, not
// a hash probe.
//
// Semantics are exactly those of the heap implementation:
//  - timers fire in (deadline, schedule-order) order — FIFO among equal
//    deadlines — even when two deadlines fall into the same wheel tick
//    (the due bucket is a tiny (at, seq) heap, so intra-tick order is by
//    exact deadline, not arrival);
//  - deadlines are exact doubles; the tick granularity only decides
//    bucketing, never the reported fire time;
//  - far-future timers beyond the wheel horizon (~2^32 ticks) are parked
//    in the top level and re-cascaded, so nothing is ever dropped.
#ifndef P2_RUNTIME_TIMER_WHEEL_H_
#define P2_RUNTIME_TIMER_WHEEL_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "src/runtime/executor.h"

namespace p2 {

class TimerWheel {
 public:
  // 1/1024 s ticks: finer than any protocol timer in the system, and a
  // power of two so tick arithmetic stays exact for typical deadlines.
  explicit TimerWheel(double tick_seconds = 1.0 / 1024.0);
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Registers `task` to fire at absolute time `at` (seconds). Returns a
  // generation-tagged id (never kInvalidTimer).
  TimerId Schedule(double at, Task task);

  // O(1). Returns true iff the timer was still pending.
  bool Cancel(TimerId id);

  // Live (scheduled, uncancelled, unfired) timers.
  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // Lower bound on the earliest pending deadline (exact once the next
  // timer's slot has been reached); +infinity when empty. Event loops use
  // it to size their poll timeout / next virtual-time jump.
  double NextDueHint();

  // Extracts the earliest timer with deadline <= `deadline`, honoring
  // (deadline, schedule-order). Returns false if none is due. The caller
  // runs the task, so handler re-entry into Schedule/Cancel is safe.
  bool PopDue(double deadline, double* at, Task* task);

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;  // 256 per level
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr int kBitmapWords = kSlots / 64;

  struct Node {
    double at = 0;
    uint64_t seq = 0;
    uint32_t index = 0;       // own position in the pool
    uint32_t generation = 1;  // bumped on every release; stale ids mismatch
    Task task;
    Node* prev = nullptr;
    Node* next = nullptr;
    int16_t level = -1;  // -1: in the due heap (or free)
    int16_t slot = -1;
    bool live = false;
    bool cancelled = false;  // in the due heap, awaiting lazy reclamation
  };

  Node* Alloc();
  // Returns the node to the free list and invalidates its id.
  void Release(Node* n);
  uint64_t TickOf(double at) const;
  void InsertIntoWheel(Node* n);
  void UnlinkFromSlot(Node* n);
  void PushReady(Node* n);
  void PurgeCancelledReady();
  // Empties `level`/`slot` and re-files every node relative to
  // current_tick_ (level 0 slots re-file straight into the due heap).
  void CascadeSlot(int level, int slot);
  // First occupied slot strictly after `from_pos` (circular). Returns the
  // distance in [1, kSlots], or 0 when the level is empty.
  int NextOccupiedDistance(int level, int from_pos) const;
  // Smallest tick at which any wheel slot needs attention (fire or
  // cascade); false when the wheel body is empty.
  bool NextCandidateTick(uint64_t* out) const;
  // Jumps the wheel to `tick`, cascading the upper-level slots that come
  // due there and promoting the level-0 slot into the due heap.
  void AdvanceTo(uint64_t tick);

  double tick_;
  double inv_tick_;
  uint64_t current_tick_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_ = 0;

  Node* slots_[kLevels][kSlots] = {};
  uint64_t bitmap_[kLevels][kBitmapWords] = {};
  size_t level_population_[kLevels] = {};  // fast skip of empty levels
  std::vector<Node*> ready_;               // (at, seq) min-heap: the due bucket
  std::deque<Node> pool_;                  // stable addresses; nodes recycled
  std::vector<uint32_t> free_;
};

}  // namespace p2

#endif  // P2_RUNTIME_TIMER_WHEEL_H_
