// Global schema (tuple-name) interning.
//
// Every tuple name — "lookup", "succ", "finger", ... — is interned once
// into a small dense integer SchemaId. All hot-path dispatch (demux jump
// tables, node-level table/watcher routing, tuple identity checks) works on
// SchemaIds; the string survives only at the edges (parser, wire format,
// logging). This is the rule-engine "constraint store indexing" move: name
// dispatch becomes an array index instead of a string hash + compare.
//
// The atom table is process-global and append-only: ids are dense
// (0..SchemaCount()-1), never reused, and the returned name references are
// stable for the process lifetime. Unlike per-node runtime state (which is
// confined to one simulator shard), the atom table is shared by every
// shard thread, so it is guarded by a shared_mutex: lookups take a shared
// lock (the steady state — all names are interned at plan time), interning
// a new spelling takes the exclusive lock.
#ifndef P2_RUNTIME_SCHEMA_H_
#define P2_RUNTIME_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace p2 {

using SchemaId = uint32_t;
inline constexpr SchemaId kInvalidSchema = 0xFFFFFFFFu;

// Returns the id for `name`, creating one on first sight.
SchemaId InternSchema(std::string_view name);

// Returns the id for `name` or kInvalidSchema if it was never interned.
// Never allocates: suitable for probing with untrusted names.
SchemaId FindSchema(std::string_view name);

// The interned spelling of `id`. `id` must come from InternSchema.
const std::string& SchemaName(SchemaId id);

// Number of distinct names interned so far (ids are 0..count-1). Dispatch
// tables sized by this value stay valid as new names only append.
size_t SchemaCount();

}  // namespace p2

#endif  // P2_RUNTIME_SCHEMA_H_
