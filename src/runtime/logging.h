// Minimal logging / fatal-error support for the P2 runtime.
#ifndef P2_RUNTIME_LOGGING_H_
#define P2_RUNTIME_LOGGING_H_

#include <cstdarg>

namespace p2 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Default: kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging to stderr with a level prefix.
void LogF(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

// Prints the message and aborts. Used for programming errors (type
// confusion, malformed plans) that indicate a bug, never for runtime input.
[[noreturn]] void FatalF(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace p2

#define P2_FATAL(...) ::p2::FatalF(__FILE__, __LINE__, __VA_ARGS__)
#define P2_LOG(level, ...) ::p2::LogF(level, __VA_ARGS__)
#define P2_CHECK(cond, ...)                \
  do {                                     \
    if (!(cond)) {                         \
      ::p2::FatalF(__FILE__, __LINE__,     \
                   "check failed: " #cond); \
    }                                      \
  } while (0)

#endif  // P2_RUNTIME_LOGGING_H_
