// The P2 concrete type system.
//
// A Value is the unit of information passed around the system (§3.1 of the
// paper): strings, integers, doubles, timestamps, 160-bit identifiers,
// network addresses, and lists. Values are immutable; heavyweight payloads
// (strings, lists) are shared via reference counting so copies are cheap.
#ifndef P2_RUNTIME_VALUE_H_
#define P2_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/runtime/uint160.h"

namespace p2 {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,     // int64
  kDouble = 3,  // also used for timestamps (seconds)
  kStr = 4,
  kId = 5,    // 160-bit ring identifier
  kAddr = 6,  // network address ("host:port" or simulator node name)
  kList = 7,
};

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t i) { return Value(Payload(i)); }
  static Value Double(double d) { return Value(Payload(d)); }
  static Value Str(std::string s);
  static Value Id(const Uint160& id) { return Value(Payload(id)); }
  static Value Addr(std::string a);
  static Value List(ValueList items);

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  // Typed accessors. Numeric accessors coerce between bool/int/double;
  // everything else requires an exact type match and aborts otherwise
  // (programming error — planner-generated code always type-checks first).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsStr() const;
  const Uint160& AsId() const;
  const std::string& AsAddr() const;
  const ValueList& AsList() const;

  // Total order over all values: by type rank, then within type; int and
  // double compare numerically against each other. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);
  // Equality short-circuits on type, then shared-payload identity and the
  // cached hash, before falling back to content comparison. Agrees with
  // Compare(a, b) == 0 on every input.
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const Value& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const Value& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const Value& o) const { return Compare(*this, o) >= 0; }

  // Arithmetic with P2 coercion rules:
  //  - if either operand is an Id, compute mod 2^160 on the ring;
  //  - else if either is a double, compute in double;
  //  - else integer arithmetic.
  // Shl ("<<") always yields an Id: its sole use in OverLog programs is
  // constructing ring offsets (1 << I), which must not truncate at 64 bits.
  static Value Add(const Value& a, const Value& b);
  static Value Sub(const Value& a, const Value& b);
  static Value Mul(const Value& a, const Value& b);
  static Value Div(const Value& a, const Value& b);
  static Value Mod(const Value& a, const Value& b);
  static Value Shl(const Value& a, const Value& b);

  // O(1): scalar hashes are computed inline; string/addr/list hashes are
  // computed once at construction and cached in the shared payload.
  size_t HashValue() const;
  std::string ToString() const;

 private:
  // Shared string payload with its hash precomputed at construction, so
  // hashing an Addr/Str value on every table probe costs a load, not a
  // string traversal.
  struct StrRep {
    explicit StrRep(std::string str);
    std::string s;
    size_t hash;
  };
  // Shared list payload; hash folded over the element hashes once.
  struct ListRep {
    explicit ListRep(ValueList list);
    ValueList items;
    size_t hash;
  };
  struct AddrTag {
    std::shared_ptr<const StrRep> s;
  };
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::shared_ptr<const StrRep>, Uint160, AddrTag,
                               std::shared_ptr<const ListRep>>;
  explicit Value(Payload p) : v_(std::move(p)) {}

  Payload v_;
};

// Hash functor for use in unordered containers keyed by Value vectors.
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const;
};
struct ValueVecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const;
};

}  // namespace p2

#endif  // P2_RUNTIME_VALUE_H_
