// The P2 concrete type system.
//
// A Value is the unit of information passed around the system (§3.1 of the
// paper): strings, integers, doubles, timestamps, 160-bit identifiers,
// network addresses, and lists. Values are immutable; heavyweight payloads
// (strings, identifiers, lists) are shared via reference counting so copies
// are cheap.
//
// Representation: a hand-rolled 16-byte tagged union — one byte of tag plus
// an 8-byte payload word. Scalars (null/bool/int/double) live inline and
// copy with two word stores, no branches on dispatch tables; Str/Addr/Id/
// List hold a pointer to an intrusively refcounted rep that also caches the
// payload's hash, so table probes cost a load instead of a traversal. The
// refcount is a plain integer, not an atomic: every Value is confined to
// one simulator shard (shards share nothing — cross-shard tuples travel as
// marshaled bytes), so a rep is only ever touched by the thread that owns
// its node, or handed off whole across a shard barrier.
#ifndef P2_RUNTIME_VALUE_H_
#define P2_RUNTIME_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/uint160.h"

namespace p2 {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,     // int64
  kDouble = 3,  // also used for timestamps (seconds)
  kStr = 4,
  kId = 5,    // 160-bit ring identifier
  kAddr = 6,  // network address ("host:port" or simulator node name)
  kList = 7,
};

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  Value() : tag_(ValueType::kNull) { u_.i = 0; }
  Value(const Value& o) : u_(o.u_), tag_(o.tag_) {
    if (IsHeap(tag_)) {
      ++u_.rep->refs;
    }
  }
  Value(Value&& o) noexcept : u_(o.u_), tag_(o.tag_) {
    o.tag_ = ValueType::kNull;
    o.u_.i = 0;
  }
  Value& operator=(const Value& o) {
    // Read the source into locals and retain its rep BEFORE Release(): `o`
    // may be *this, or live inside this value's own list payload, which
    // Release() can free.
    Payload u = o.u_;
    ValueType t = o.tag_;
    if (IsHeap(t)) {
      ++u.rep->refs;
    }
    Release();
    u_ = u;
    tag_ = t;
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      Release();
      tag_ = o.tag_;
      u_ = o.u_;
      o.tag_ = ValueType::kNull;
      o.u_.i = 0;
    }
    return *this;
  }
  ~Value() { Release(); }

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v(ValueType::kBool);
    v.u_.b = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v(ValueType::kInt);
    v.u_.i = i;
    return v;
  }
  static Value Double(double d) {
    Value v(ValueType::kDouble);
    v.u_.d = d;
    return v;
  }
  static Value Str(std::string s);
  static Value Id(const Uint160& id);
  static Value Addr(std::string a);
  static Value List(ValueList items);

  ValueType type() const { return tag_; }
  bool is_null() const { return tag_ == ValueType::kNull; }

  // Typed accessors. Numeric accessors coerce between bool/int/double;
  // everything else requires an exact type match and aborts otherwise
  // (programming error — planner-generated code always type-checks first).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsStr() const;
  const Uint160& AsId() const;
  const std::string& AsAddr() const;
  const ValueList& AsList() const;

  // Total order over all values: by type rank, then within type; int and
  // double compare numerically against each other. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);
  // Equality short-circuits on type, then shared-payload identity and the
  // cached hash, before falling back to content comparison. Agrees with
  // Compare(a, b) == 0 on every input.
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const Value& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const Value& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const Value& o) const { return Compare(*this, o) >= 0; }

  // Arithmetic with P2 coercion rules:
  //  - if either operand is an Id, compute mod 2^160 on the ring;
  //  - else if either is a double, compute in double;
  //  - else integer arithmetic, wrapping mod 2^64 (totality: PEL programs
  //    run on wire data, so no input may trap — division guards the
  //    INT64_MIN/-1 corner and double→int conversion saturates).
  // Shl ("<<") always yields an Id: its sole use in OverLog programs is
  // constructing ring offsets (1 << I), which must not truncate at 64 bits.
  static Value Add(const Value& a, const Value& b);
  static Value Sub(const Value& a, const Value& b);
  static Value Mul(const Value& a, const Value& b);
  static Value Div(const Value& a, const Value& b);
  static Value Mod(const Value& a, const Value& b);
  static Value Shl(const Value& a, const Value& b);

  // O(1): scalar hashes are computed inline; Str/Addr/Id/List hashes are
  // computed once at construction and cached in the shared rep.
  size_t HashValue() const;
  std::string ToString() const;

 private:
  // Intrusive refcount header shared by all heap payloads. The hash lives
  // here so every probe of a shared value is a single load.
  struct Rep {
    mutable uint32_t refs;
    size_t hash;
    Rep(uint32_t r, size_t h) : refs(r), hash(h) {}
  };
  struct StrRep;   // Str and Addr payloads
  struct IdRep;    // Uint160 payload (20 bytes — too big to inline)
  struct ListRep;  // ValueList payload

  union Payload {
    bool b;
    int64_t i;
    double d;
    const Rep* rep;
  };

  explicit Value(ValueType t) : tag_(t) { u_.i = 0; }

  static bool IsHeap(ValueType t) {
    return static_cast<uint8_t>(t) >= static_cast<uint8_t>(ValueType::kStr);
  }
  void Release() {
    if (IsHeap(tag_) && --u_.rep->refs == 0) {
      Destroy();
    }
  }
  void Destroy();  // deletes u_.rep through its concrete type

  const StrRep* str_rep() const;
  const IdRep* id_rep() const;
  const ListRep* list_rep() const;

  Payload u_;
  ValueType tag_;
};

static_assert(sizeof(Value) == 16, "Value must stay a 16-byte tagged union");

// Frees the calling thread's IdRep recycling pool. Simulator worker
// threads call this before exiting so per-thread pools don't outlive their
// thread as leaks; the pool is recreated lazily if the thread allocates
// another Id afterwards. The main thread never needs to call it.
void DrainThreadIdRepPool();

// Hash functor for use in unordered containers keyed by Value vectors.
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const;
};
struct ValueVecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const;
};

}  // namespace p2

#endif  // P2_RUNTIME_VALUE_H_
