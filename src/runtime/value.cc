#include "src/runtime/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/runtime/logging.h"

namespace p2 {
namespace {

// Coerces a numeric-ish value to an Id for ring arithmetic.
Uint160 ToId(const Value& v) {
  if (v.type() == ValueType::kId) {
    return v.AsId();
  }
  return Uint160(static_cast<uint64_t>(v.AsInt()));
}

bool IsNumeric(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt || t == ValueType::kDouble;
}

}  // namespace

Value::StrRep::StrRep(std::string str)
    : s(std::move(str)), hash(std::hash<std::string>()(s)) {}

Value::ListRep::ListRep(ValueList list) : items(std::move(list)) {
  size_t h = 0x51ED270Bu;
  for (const Value& v : items) {
    h = h * 1099511628211ull + v.HashValue();
  }
  hash = h;
}

Value Value::Str(std::string s) {
  return Value(Payload(std::make_shared<const StrRep>(std::move(s))));
}

Value Value::Addr(std::string a) {
  return Value(Payload(AddrTag{std::make_shared<const StrRep>(std::move(a))}));
}

Value Value::List(ValueList items) {
  return Value(Payload(std::make_shared<const ListRep>(std::move(items))));
}

bool Value::AsBool() const {
  switch (type()) {
    case ValueType::kBool:
      return std::get<bool>(v_);
    case ValueType::kInt:
      return std::get<int64_t>(v_) != 0;
    case ValueType::kDouble:
      return std::get<double>(v_) != 0.0;
    default:
      P2_FATAL("Value::AsBool on %s", ToString().c_str());
  }
}

int64_t Value::AsInt() const {
  switch (type()) {
    case ValueType::kBool:
      return std::get<bool>(v_) ? 1 : 0;
    case ValueType::kInt:
      return std::get<int64_t>(v_);
    case ValueType::kDouble:
      return static_cast<int64_t>(std::get<double>(v_));
    default:
      P2_FATAL("Value::AsInt on %s", ToString().c_str());
  }
}

double Value::AsDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return std::get<bool>(v_) ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(v_));
    case ValueType::kDouble:
      return std::get<double>(v_);
    default:
      P2_FATAL("Value::AsDouble on %s", ToString().c_str());
  }
}

const std::string& Value::AsStr() const {
  if (type() != ValueType::kStr) {
    P2_FATAL("Value::AsStr on %s", ToString().c_str());
  }
  return std::get<std::shared_ptr<const StrRep>>(v_)->s;
}

const Uint160& Value::AsId() const {
  if (type() != ValueType::kId) {
    P2_FATAL("Value::AsId on %s", ToString().c_str());
  }
  return std::get<Uint160>(v_);
}

const std::string& Value::AsAddr() const {
  if (type() != ValueType::kAddr) {
    P2_FATAL("Value::AsAddr on %s", ToString().c_str());
  }
  return std::get<AddrTag>(v_).s->s;
}

const ValueList& Value::AsList() const {
  if (type() != ValueType::kList) {
    P2_FATAL("Value::AsList on %s", ToString().c_str());
  }
  return std::get<std::shared_ptr<const ListRep>>(v_)->items;
}

int Value::Compare(const Value& a, const Value& b) {
  ValueType ta = a.type();
  ValueType tb = b.type();
  // Cross-type numeric comparison.
  if (IsNumeric(ta) && IsNumeric(tb) && ta != tb) {
    double da = a.AsDouble();
    double db = b.AsDouble();
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  if (ta != tb) {
    return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  }
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool x = std::get<bool>(a.v_);
      bool y = std::get<bool>(b.v_);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kInt: {
      int64_t x = std::get<int64_t>(a.v_);
      int64_t y = std::get<int64_t>(b.v_);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kDouble: {
      double x = std::get<double>(a.v_);
      double y = std::get<double>(b.v_);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kStr:
      return a.AsStr().compare(b.AsStr());
    case ValueType::kId: {
      const Uint160& x = a.AsId();
      const Uint160& y = b.AsId();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kAddr:
      return a.AsAddr().compare(b.AsAddr());
    case ValueType::kList: {
      const ValueList& x = a.AsList();
      const ValueList& y = b.AsList();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) {
          return c;
        }
      }
      return x.size() == y.size() ? 0 : (x.size() < y.size() ? -1 : 1);
    }
  }
  P2_FATAL("unreachable value type");
}

Value Value::Add(const Value& a, const Value& b) {
  if (a.type() == ValueType::kId || b.type() == ValueType::kId) {
    return Id(ToId(a) + ToId(b));
  }
  if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
    return Double(a.AsDouble() + b.AsDouble());
  }
  if (a.type() == ValueType::kStr && b.type() == ValueType::kStr) {
    return Str(a.AsStr() + b.AsStr());
  }
  return Int(a.AsInt() + b.AsInt());
}

Value Value::Sub(const Value& a, const Value& b) {
  if (a.type() == ValueType::kId || b.type() == ValueType::kId) {
    return Id(ToId(a) - ToId(b));
  }
  if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
    return Double(a.AsDouble() - b.AsDouble());
  }
  return Int(a.AsInt() - b.AsInt());
}

Value Value::Mul(const Value& a, const Value& b) {
  if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
    return Double(a.AsDouble() * b.AsDouble());
  }
  return Int(a.AsInt() * b.AsInt());
}

Value Value::Div(const Value& a, const Value& b) {
  if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
    double d = b.AsDouble();
    return Double(d == 0.0 ? 0.0 : a.AsDouble() / d);
  }
  int64_t d = b.AsInt();
  return Int(d == 0 ? 0 : a.AsInt() / d);
}

Value Value::Mod(const Value& a, const Value& b) {
  int64_t d = b.AsInt();
  return Int(d == 0 ? 0 : a.AsInt() % d);
}

Value Value::Shl(const Value& a, const Value& b) {
  int64_t n = b.AsInt();
  if (n < 0) {
    n = 0;
  }
  return Id(ToId(a) << static_cast<unsigned>(n));
}

size_t Value::HashValue() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
      return std::get<bool>(v_) ? 0x1234567u : 0x7654321u;
    case ValueType::kInt:
      return std::hash<int64_t>()(std::get<int64_t>(v_));
    case ValueType::kDouble:
      return std::hash<double>()(std::get<double>(v_));
    case ValueType::kStr:
      return std::get<std::shared_ptr<const StrRep>>(v_)->hash;
    case ValueType::kId:
      return AsId().HashValue();
    case ValueType::kAddr:
      return std::get<AddrTag>(v_).s->hash ^ 0xA5A5A5A5u;
    case ValueType::kList:
      return std::get<std::shared_ptr<const ListRep>>(v_)->hash;
  }
  return 0;
}

bool Value::operator==(const Value& o) const {
  ValueType t = type();
  if (t != o.type()) {
    // Only numeric types compare equal across types.
    return IsNumeric(t) && IsNumeric(o.type()) && AsDouble() == o.AsDouble();
  }
  switch (t) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return std::get<bool>(v_) == std::get<bool>(o.v_);
    case ValueType::kInt:
      return std::get<int64_t>(v_) == std::get<int64_t>(o.v_);
    case ValueType::kDouble:
      return std::get<double>(v_) == std::get<double>(o.v_);
    case ValueType::kStr: {
      const auto& a = std::get<std::shared_ptr<const StrRep>>(v_);
      const auto& b = std::get<std::shared_ptr<const StrRep>>(o.v_);
      return a == b || (a->hash == b->hash && a->s == b->s);
    }
    case ValueType::kId:
      return std::get<Uint160>(v_) == std::get<Uint160>(o.v_);
    case ValueType::kAddr: {
      const auto& a = std::get<AddrTag>(v_).s;
      const auto& b = std::get<AddrTag>(o.v_).s;
      return a == b || (a->hash == b->hash && a->s == b->s);
    }
    case ValueType::kList: {
      const auto& a = std::get<std::shared_ptr<const ListRep>>(v_);
      const auto& b = std::get<std::shared_ptr<const ListRep>>(o.v_);
      if (a == b) {
        return true;
      }
      // No hash short-circuit here: cross-type numeric equality (Int(1) ==
      // Double(1.0)) means Compare-equal lists can hash differently.
      if (a->items.size() != b->items.size()) {
        return false;
      }
      for (size_t i = 0; i < a->items.size(); ++i) {
        if (a->items[i] != b->items[i]) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return std::get<bool>(v_) ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kStr:
      return "\"" + AsStr() + "\"";
    case ValueType::kId:
      return "0x" + AsId().ToHex();
    case ValueType::kAddr:
      return AsAddr();
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : AsList()) {
        if (!first) {
          out += ", ";
        }
        first = false;
        out += v.ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

size_t ValueVecHash::operator()(const std::vector<Value>& vs) const {
  size_t h = 0xCBF29CE4u;
  for (const Value& v : vs) {
    h = h * 1099511628211ull + v.HashValue();
  }
  return h;
}

bool ValueVecEq::operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace p2
