#include "src/runtime/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "src/runtime/logging.h"

namespace p2 {

// Heap payload reps. All are born with refs == 1 (owned by the Value that
// created them) and carry their content hash, computed exactly once.
struct Value::StrRep : Value::Rep {
  explicit StrRep(std::string str)
      : Rep(1, std::hash<std::string>()(str)), s(std::move(str)) {}
  std::string s;
};

struct Value::IdRep : Value::Rep {
  explicit IdRep(const Uint160& v) : Rep(1, v.HashValue()), id(v) {}
  Uint160 id;
};

struct Value::ListRep : Value::Rep {
  explicit ListRep(ValueList list) : Rep(1, 0), items(std::move(list)) {
    size_t h = 0x51ED270Bu;
    for (const Value& v : items) {
      h = h * 1099511628211ull + v.HashValue();
    }
    hash = h;
  }
  ValueList items;
};

namespace {

// Coerces a numeric-ish value to an Id for ring arithmetic.
Uint160 ToId(const Value& v) {
  if (v.type() == ValueType::kId) {
    return v.AsId();
  }
  return Uint160(static_cast<uint64_t>(v.AsInt()));
}

bool IsNumeric(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt || t == ValueType::kDouble;
}

// Integer arithmetic wraps mod 2^64, explicitly: PEL is a ring language and
// its integer ops must be total (and sanitizer-clean) on every input, so the
// computation runs in unsigned space where wraparound is defined.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}
int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
}
int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
}

// IdRep recycling: ring arithmetic produces a fresh Id per result (Chord's
// distance computation "K - B - 1" runs on every lookup hop), and IdRep is
// fixed-size, so dead reps go through a freelist instead of the allocator.
// The pool is thread-local: each simulator shard thread recycles its own
// reps (shards share no Values, so a rep is always allocated and freed on
// the thread that owns its node — and even a rep that migrates with a
// control-thread handoff just lands in the freeing thread's pool, since
// pool entries are untyped fixed-size blocks). The main thread's pool is
// leaked on purpose (recreated lazily if touched again) so Values held by
// static-storage objects can release safely during exit; worker threads
// call DrainThreadIdRepPool before exiting so their pools don't leak.
constexpr size_t kIdRepPoolMax = 8192;

std::vector<void*>*& IdRepPoolSlot() {
  thread_local std::vector<void*>* pool = nullptr;
  return pool;
}

std::vector<void*>& IdRepPool() {
  std::vector<void*>*& slot = IdRepPoolSlot();
  if (slot == nullptr) {
    slot = new std::vector<void*>();
  }
  return *slot;
}

}  // namespace

void DrainThreadIdRepPool() {
  std::vector<void*>*& slot = IdRepPoolSlot();
  if (slot == nullptr) {
    return;
  }
  for (void* block : *slot) {
    ::operator delete(block);
  }
  delete slot;
  slot = nullptr;
}

const Value::StrRep* Value::str_rep() const {
  return static_cast<const StrRep*>(u_.rep);
}
const Value::IdRep* Value::id_rep() const {
  return static_cast<const IdRep*>(u_.rep);
}
const Value::ListRep* Value::list_rep() const {
  return static_cast<const ListRep*>(u_.rep);
}

void Value::Destroy() {
  switch (tag_) {
    case ValueType::kStr:
    case ValueType::kAddr:
      delete str_rep();
      break;
    case ValueType::kId: {
      const IdRep* r = id_rep();
      r->~IdRep();
      std::vector<void*>& pool = IdRepPool();
      if (pool.size() < kIdRepPoolMax) {
        pool.push_back(const_cast<IdRep*>(r));
      } else {
        ::operator delete(const_cast<IdRep*>(r));
      }
      break;
    }
    case ValueType::kList:
      delete list_rep();
      break;
    default:
      break;
  }
}

Value Value::Str(std::string s) {
  Value v(ValueType::kStr);
  v.u_.rep = new StrRep(std::move(s));
  return v;
}

Value Value::Id(const Uint160& id) {
  Value v(ValueType::kId);
  std::vector<void*>& pool = IdRepPool();
  void* mem;
  if (!pool.empty()) {
    mem = pool.back();
    pool.pop_back();
  } else {
    mem = ::operator new(sizeof(IdRep));
  }
  v.u_.rep = new (mem) IdRep(id);
  return v;
}

Value Value::Addr(std::string a) {
  Value v(ValueType::kAddr);
  v.u_.rep = new StrRep(std::move(a));
  return v;
}

Value Value::List(ValueList items) {
  Value v(ValueType::kList);
  v.u_.rep = new ListRep(std::move(items));
  return v;
}

bool Value::AsBool() const {
  switch (tag_) {
    case ValueType::kBool:
      return u_.b;
    case ValueType::kInt:
      return u_.i != 0;
    case ValueType::kDouble:
      return u_.d != 0.0;
    default:
      P2_FATAL("Value::AsBool on %s", ToString().c_str());
  }
}

int64_t Value::AsInt() const {
  switch (tag_) {
    case ValueType::kBool:
      return u_.b ? 1 : 0;
    case ValueType::kInt:
      return u_.i;
    case ValueType::kDouble: {
      // Saturating conversion: a double outside int64 range (or NaN) must
      // not hit the UB cast — PEL coercions are total.
      double d = u_.d;
      if (std::isnan(d)) {
        return 0;
      }
      if (d >= 9223372036854775808.0) {
        return INT64_MAX;
      }
      if (d <= -9223372036854775808.0) {
        return INT64_MIN;
      }
      return static_cast<int64_t>(d);
    }
    default:
      P2_FATAL("Value::AsInt on %s", ToString().c_str());
  }
}

double Value::AsDouble() const {
  switch (tag_) {
    case ValueType::kBool:
      return u_.b ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(u_.i);
    case ValueType::kDouble:
      return u_.d;
    default:
      P2_FATAL("Value::AsDouble on %s", ToString().c_str());
  }
}

const std::string& Value::AsStr() const {
  if (tag_ != ValueType::kStr) {
    P2_FATAL("Value::AsStr on %s", ToString().c_str());
  }
  return str_rep()->s;
}

const Uint160& Value::AsId() const {
  if (tag_ != ValueType::kId) {
    P2_FATAL("Value::AsId on %s", ToString().c_str());
  }
  return id_rep()->id;
}

const std::string& Value::AsAddr() const {
  if (tag_ != ValueType::kAddr) {
    P2_FATAL("Value::AsAddr on %s", ToString().c_str());
  }
  return str_rep()->s;
}

const ValueList& Value::AsList() const {
  if (tag_ != ValueType::kList) {
    P2_FATAL("Value::AsList on %s", ToString().c_str());
  }
  return list_rep()->items;
}

// Total order over doubles: NaN compares equal to itself and after every
// number. IEEE semantics (NaN != NaN, all comparisons false) would break
// strict weak ordering in tuple containers and let the fixpoint loop derive
// the "same" NaN tuple as new forever — and a bit-flipped frame from the
// corruption fault can smuggle a NaN into any double field.
static int CompareDoubleTotal(double x, double y) {
  bool nx = std::isnan(x);
  bool ny = std::isnan(y);
  if (nx || ny) {
    return nx == ny ? 0 : (nx ? 1 : -1);
  }
  return x == y ? 0 : (x < y ? -1 : 1);
}

int Value::Compare(const Value& a, const Value& b) {
  ValueType ta = a.tag_;
  ValueType tb = b.tag_;
  // Cross-type numeric comparison.
  if (IsNumeric(ta) && IsNumeric(tb) && ta != tb) {
    return CompareDoubleTotal(a.AsDouble(), b.AsDouble());
  }
  if (ta != tb) {
    return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  }
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool x = a.u_.b;
      bool y = b.u_.b;
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kInt: {
      int64_t x = a.u_.i;
      int64_t y = b.u_.i;
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kDouble:
      return CompareDoubleTotal(a.u_.d, b.u_.d);
    case ValueType::kStr:
    case ValueType::kAddr:
      return a.str_rep()->s.compare(b.str_rep()->s);
    case ValueType::kId: {
      const Uint160& x = a.AsId();
      const Uint160& y = b.AsId();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case ValueType::kList: {
      const ValueList& x = a.AsList();
      const ValueList& y = b.AsList();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) {
          return c;
        }
      }
      return x.size() == y.size() ? 0 : (x.size() < y.size() ? -1 : 1);
    }
  }
  P2_FATAL("unreachable value type");
}

Value Value::Add(const Value& a, const Value& b) {
  if (a.tag_ == ValueType::kId || b.tag_ == ValueType::kId) {
    return Id(ToId(a) + ToId(b));
  }
  if (a.tag_ == ValueType::kDouble || b.tag_ == ValueType::kDouble) {
    return Double(a.AsDouble() + b.AsDouble());
  }
  if (a.tag_ == ValueType::kStr && b.tag_ == ValueType::kStr) {
    return Str(a.AsStr() + b.AsStr());
  }
  return Int(WrapAdd(a.AsInt(), b.AsInt()));
}

Value Value::Sub(const Value& a, const Value& b) {
  if (a.tag_ == ValueType::kId || b.tag_ == ValueType::kId) {
    return Id(ToId(a) - ToId(b));
  }
  if (a.tag_ == ValueType::kDouble || b.tag_ == ValueType::kDouble) {
    return Double(a.AsDouble() - b.AsDouble());
  }
  return Int(WrapSub(a.AsInt(), b.AsInt()));
}

Value Value::Mul(const Value& a, const Value& b) {
  if (a.tag_ == ValueType::kDouble || b.tag_ == ValueType::kDouble) {
    return Double(a.AsDouble() * b.AsDouble());
  }
  return Int(WrapMul(a.AsInt(), b.AsInt()));
}

Value Value::Div(const Value& a, const Value& b) {
  if (a.tag_ == ValueType::kDouble || b.tag_ == ValueType::kDouble) {
    double d = b.AsDouble();
    return Double(d == 0.0 ? 0.0 : a.AsDouble() / d);
  }
  int64_t d = b.AsInt();
  if (d == 0) {
    return Int(0);
  }
  int64_t n = a.AsInt();
  if (d == -1) {
    return Int(WrapSub(0, n));  // INT64_MIN / -1 overflows; wrap like Sub
  }
  return Int(n / d);
}

Value Value::Mod(const Value& a, const Value& b) {
  int64_t d = b.AsInt();
  if (d == 0 || d == -1) {
    return Int(0);  // n % -1 == 0, but INT64_MIN % -1 traps in hardware
  }
  return Int(a.AsInt() % d);
}

Value Value::Shl(const Value& a, const Value& b) {
  int64_t n = b.AsInt();
  if (n < 0) {
    n = 0;
  }
  return Id(ToId(a) << static_cast<unsigned>(n));
}

size_t Value::HashValue() const {
  switch (tag_) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
      return u_.b ? 0x1234567u : 0x7654321u;
    case ValueType::kInt:
      return std::hash<int64_t>()(u_.i);
    case ValueType::kDouble:
      // All NaN payloads are Compare-equal, so they must share one hash.
      return std::isnan(u_.d) ? 0x7FF8DEADu : std::hash<double>()(u_.d);
    case ValueType::kStr:
    case ValueType::kId:
    case ValueType::kList:
      return u_.rep->hash;
    case ValueType::kAddr:
      return u_.rep->hash ^ 0xA5A5A5A5u;
  }
  return 0;
}

bool Value::operator==(const Value& o) const {
  ValueType t = tag_;
  if (t != o.tag_) {
    // Only numeric types compare equal across types.
    return IsNumeric(t) && IsNumeric(o.tag_) &&
           CompareDoubleTotal(AsDouble(), o.AsDouble()) == 0;
  }
  switch (t) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return u_.b == o.u_.b;
    case ValueType::kInt:
      return u_.i == o.u_.i;
    case ValueType::kDouble:
      return CompareDoubleTotal(u_.d, o.u_.d) == 0;
    case ValueType::kStr:
    case ValueType::kAddr: {
      const StrRep* a = str_rep();
      const StrRep* b = o.str_rep();
      return a == b || (a->hash == b->hash && a->s == b->s);
    }
    case ValueType::kId: {
      const IdRep* a = id_rep();
      const IdRep* b = o.id_rep();
      return a == b || (a->hash == b->hash && a->id == b->id);
    }
    case ValueType::kList: {
      const ListRep* a = list_rep();
      const ListRep* b = o.list_rep();
      if (a == b) {
        return true;
      }
      // No hash short-circuit here: cross-type numeric equality (Int(1) ==
      // Double(1.0)) means Compare-equal lists can hash differently.
      if (a->items.size() != b->items.size()) {
        return false;
      }
      for (size_t i = 0; i < a->items.size(); ++i) {
        if (a->items[i] != b->items[i]) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::string Value::ToString() const {
  switch (tag_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return u_.b ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(u_.i);
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", u_.d);
      return buf;
    }
    case ValueType::kStr:
      return "\"" + AsStr() + "\"";
    case ValueType::kId:
      return "0x" + AsId().ToHex();
    case ValueType::kAddr:
      return AsAddr();
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : AsList()) {
        if (!first) {
          out += ", ";
        }
        first = false;
        out += v.ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

size_t ValueVecHash::operator()(const std::vector<Value>& vs) const {
  size_t h = 0xCBF29CE4u;
  for (const Value& v : vs) {
    h = h * 1099511628211ull + v.HashValue();
  }
  return h;
}

bool ValueVecEq::operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace p2
