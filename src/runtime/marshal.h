// Byte-level (un)marshaling of Values and Tuples.
//
// P2's network stack serializes real bytes onto the wire; the evaluation's
// bandwidth figures are byte counts of these marshaled buffers. Encoding:
// little-endian fixed-width integers, length-prefixed strings, one type tag
// byte per value.
#ifndef P2_RUNTIME_MARSHAL_H_
#define P2_RUNTIME_MARSHAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/tuple.h"
#include "src/runtime/value.h"

namespace p2 {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutBytes(const void* data, size_t n);
  void PutString(const std::string& s);  // u32 length prefix

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<uint8_t>& buf) : data_(buf.data()), size_(buf.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetDouble(double* v);
  bool GetString(std::string* s);

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Value codec. Returns false from Unmarshal on malformed input (never
// aborts: wire data is untrusted). Nesting deeper than 32 lists is
// rejected — unbounded recursion on attacker bytes would exhaust the stack.
void MarshalValue(const Value& v, ByteWriter* w);
bool UnmarshalValue(ByteReader* r, Value* out);

// Tuple codec: name + field count (u16) + fields. Returns false — writing
// nothing — for tuples whose field count does not fit the u16 wire field
// (> 65535): truncating the count would silently corrupt the stream.
bool MarshalTuple(const Tuple& t, ByteWriter* w);
std::optional<TuplePtr> UnmarshalTuple(ByteReader* r);

// Convenience round-trips used by the network stack. MarshalTupleToBytes
// returns an empty buffer for unmarshalable (oversize) tuples.
std::vector<uint8_t> MarshalTupleToBytes(const Tuple& t);
std::optional<TuplePtr> UnmarshalTupleFromBytes(const std::vector<uint8_t>& bytes);

}  // namespace p2

#endif  // P2_RUNTIME_MARSHAL_H_
