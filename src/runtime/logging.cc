#include "src/runtime/logging.h"

#include <cstdio>
#include <cstdlib>

namespace p2 {
namespace {
LogLevel g_level = LogLevel::kWarn;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogF(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

void FatalF(const char* file, int line, const char* fmt, ...) {
  std::fprintf(stderr, "[FATAL] %s:%d: ", file, line);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace p2
