#include "src/runtime/marshal.h"

#include <cstring>

namespace p2 {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

bool ByteReader::GetU8(uint8_t* v) {
  if (pos_ + 1 > size_) {
    return false;
  }
  *v = data_[pos_++];
  return true;
}

bool ByteReader::GetU16(uint16_t* v) {
  uint8_t a;
  uint8_t b;
  if (!GetU8(&a) || !GetU8(&b)) {
    return false;
  }
  *v = static_cast<uint16_t>(a | (b << 8));
  return true;
}

bool ByteReader::GetU32(uint32_t* v) {
  if (pos_ + 4 > size_) {
    return false;
  }
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  }
  *v = r;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (pos_ + 8 > size_) {
    return false;
  }
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  }
  *v = r;
  return true;
}

bool ByteReader::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool ByteReader::GetString(std::string* s) {
  uint32_t n;
  // Cap the claimed length against the bytes actually remaining before any
  // allocation: a malicious 4 GB length must not reach assign/reserve.
  if (!GetU32(&n) || n > size_ - pos_) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

void MarshalValue(const Value& v, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      w->PutU64(static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case ValueType::kStr:
      w->PutString(v.AsStr());
      break;
    case ValueType::kId: {
      const auto& limbs = v.AsId().limbs();
      w->PutU64(limbs[0]);
      w->PutU64(limbs[1]);
      w->PutU32(static_cast<uint32_t>(limbs[2]));
      break;
    }
    case ValueType::kAddr:
      w->PutString(v.AsAddr());
      break;
    case ValueType::kList: {
      const ValueList& items = v.AsList();
      w->PutU32(static_cast<uint32_t>(items.size()));
      for (const Value& item : items) {
        MarshalValue(item, w);
      }
      break;
    }
  }
}

namespace {

// Lists nest values recursively; wire input is untrusted, so bound the
// depth — a 64 KB datagram of nested list tags would otherwise drive the
// decoder tens of thousands of frames deep and overflow the stack.
constexpr int kMaxUnmarshalDepth = 32;

bool UnmarshalValueAtDepth(ByteReader* r, Value* out, int depth) {
  if (depth > kMaxUnmarshalDepth) {
    return false;
  }
  uint8_t tag;
  if (!r->GetU8(&tag)) {
    return false;
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kBool: {
      uint8_t b;
      if (!r->GetU8(&b)) {
        return false;
      }
      *out = Value::Bool(b != 0);
      return true;
    }
    case ValueType::kInt: {
      uint64_t i;
      if (!r->GetU64(&i)) {
        return false;
      }
      *out = Value::Int(static_cast<int64_t>(i));
      return true;
    }
    case ValueType::kDouble: {
      double d;
      if (!r->GetDouble(&d)) {
        return false;
      }
      *out = Value::Double(d);
      return true;
    }
    case ValueType::kStr: {
      std::string s;
      if (!r->GetString(&s)) {
        return false;
      }
      *out = Value::Str(std::move(s));
      return true;
    }
    case ValueType::kId: {
      uint64_t low;
      uint64_t mid;
      uint32_t hi;
      if (!r->GetU64(&low) || !r->GetU64(&mid) || !r->GetU32(&hi)) {
        return false;
      }
      *out = Value::Id(Uint160(hi, mid, low));
      return true;
    }
    case ValueType::kAddr: {
      std::string s;
      if (!r->GetString(&s)) {
        return false;
      }
      *out = Value::Addr(std::move(s));
      return true;
    }
    case ValueType::kList: {
      uint32_t n;
      // Every marshaled value is at least one tag byte, so a count beyond
      // the remaining buffer is malformed — reject it before reserve.
      if (!r->GetU32(&n) || n > 1u << 20 || n > r->remaining()) {
        return false;
      }
      ValueList items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Value v;
        if (!UnmarshalValueAtDepth(r, &v, depth + 1)) {
          return false;
        }
        items.push_back(std::move(v));
      }
      *out = Value::List(std::move(items));
      return true;
    }
    default:
      // Unknown type tag: wire data is untrusted, reject explicitly rather
      // than relying on falling out of the switch.
      return false;
  }
}

}  // namespace

bool UnmarshalValue(ByteReader* r, Value* out) {
  return UnmarshalValueAtDepth(r, out, 0);
}

bool MarshalTuple(const Tuple& t, ByteWriter* w) {
  if (t.size() > 0xFFFF) {
    // The wire field count is a u16; a silent static_cast would corrupt the
    // stream (the receiver would stop short and misparse the rest).
    return false;
  }
  w->PutString(t.name());
  w->PutU16(static_cast<uint16_t>(t.size()));
  for (const Value& v : t.fields()) {
    MarshalValue(v, w);
  }
  return true;
}

std::optional<TuplePtr> UnmarshalTuple(ByteReader* r) {
  std::string name;
  uint16_t n;
  if (!r->GetString(&name) || !r->GetU16(&n) || n > r->remaining()) {
    return std::nullopt;
  }
  std::vector<Value> fields;
  fields.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    Value v;
    if (!UnmarshalValue(r, &v)) {
      return std::nullopt;
    }
    fields.push_back(std::move(v));
  }
  return Tuple::Make(std::move(name), std::move(fields));
}

std::vector<uint8_t> MarshalTupleToBytes(const Tuple& t) {
  ByteWriter w;
  if (!MarshalTuple(t, &w)) {
    return {};
  }
  return w.Take();
}

std::optional<TuplePtr> UnmarshalTupleFromBytes(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  return UnmarshalTuple(&r);
}

}  // namespace p2
