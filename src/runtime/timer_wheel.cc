#include "src/runtime/timer_wheel.h"

#include <algorithm>

#include "src/runtime/logging.h"

namespace p2 {
namespace {

// Min-heap comparator over (deadline, schedule order). Templated so it can
// apply to TimerWheel's private Node type via deduction.
struct TimerWheelReadyAfter {
  template <typename NodeT>
  bool operator()(const NodeT* a, const NodeT* b) const {
    if (a->at != b->at) {
      return a->at > b->at;
    }
    return a->seq > b->seq;
  }
};

}  // namespace

TimerWheel::TimerWheel(double tick_seconds) : tick_(tick_seconds), inv_tick_(1.0 / tick_seconds) {
  P2_CHECK(tick_seconds > 0);
}

TimerWheel::Node* TimerWheel::Alloc() {
  if (!free_.empty()) {
    Node* n = &pool_[free_.back()];
    free_.pop_back();
    return n;
  }
  pool_.emplace_back();
  Node* n = &pool_.back();
  n->index = static_cast<uint32_t>(pool_.size() - 1);
  return n;
}

void TimerWheel::Release(Node* n) {
  n->task = Task();  // drop the closure now, not at reuse time
  n->live = false;
  n->cancelled = false;
  n->prev = nullptr;
  n->next = nullptr;
  ++n->generation;  // stale TimerIds (fired / double cancel) stop matching
  free_.push_back(n->index);
}

uint64_t TimerWheel::TickOf(double at) const {
  if (!(at > 0)) {
    return 0;
  }
  double ticks = at * inv_tick_;
  // Clamp absurd deadlines (e.g. sentinel "never" timers) to the far
  // future instead of overflowing the conversion.
  if (ticks >= 9.0e18) {
    return static_cast<uint64_t>(9.0e18);
  }
  return static_cast<uint64_t>(ticks);
}

TimerId TimerWheel::Schedule(double at, Task task) {
  Node* n = Alloc();
  n->at = at;
  n->seq = next_seq_++;
  n->task = std::move(task);
  n->live = true;
  n->cancelled = false;
  ++live_;
  if (TickOf(at) <= current_tick_) {
    PushReady(n);
  } else {
    InsertIntoWheel(n);
  }
  return (static_cast<TimerId>(n->generation) << 32) | n->index;
}

void TimerWheel::PushReady(Node* n) {
  n->level = -1;
  n->slot = -1;
  ready_.push_back(n);
  std::push_heap(ready_.begin(), ready_.end(), TimerWheelReadyAfter());
}

void TimerWheel::InsertIntoWheel(Node* n) {
  uint64_t tick = TickOf(n->at);
  uint64_t delta = tick - current_tick_;
  int level = 0;
  while (level < kLevels - 1 && delta >= (1ull << (kSlotBits * (level + 1)))) {
    ++level;
  }
  // Beyond the top-level horizon: park in the farthest top slot; every
  // cascade re-files it until the real tick comes within range.
  uint64_t horizon = 1ull << (kSlotBits * kLevels);
  uint64_t eff_tick = delta >= horizon
                          ? current_tick_ + horizon - (1ull << (kSlotBits * (kLevels - 1)))
                          : tick;
  int slot = static_cast<int>((eff_tick >> (kSlotBits * level)) & kSlotMask);
  n->level = static_cast<int16_t>(level);
  n->slot = static_cast<int16_t>(slot);
  n->prev = nullptr;
  n->next = slots_[level][slot];
  if (n->next != nullptr) {
    n->next->prev = n;
  }
  slots_[level][slot] = n;
  bitmap_[level][slot >> 6] |= 1ull << (slot & 63);
  ++level_population_[level];
}

void TimerWheel::UnlinkFromSlot(Node* n) {
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    slots_[n->level][n->slot] = n->next;
    if (n->next == nullptr) {
      bitmap_[n->level][n->slot >> 6] &= ~(1ull << (n->slot & 63));
    }
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  }
  n->prev = nullptr;
  n->next = nullptr;
  --level_population_[n->level];
}

bool TimerWheel::Cancel(TimerId id) {
  uint32_t index = static_cast<uint32_t>(id & 0xFFFFFFFFu);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= pool_.size()) {
    return false;
  }
  Node* n = &pool_[index];
  if (n->generation != generation || !n->live) {
    return false;
  }
  --live_;
  if (n->level < 0) {
    // In the due heap: mark and let PopDue reclaim it lazily (heap
    // extraction from the middle is not O(1); the bucket is tiny anyway).
    n->live = false;
    n->cancelled = true;
    return true;
  }
  UnlinkFromSlot(n);
  Release(n);
  return true;
}

void TimerWheel::CascadeSlot(int level, int slot) {
  Node* n = slots_[level][slot];
  slots_[level][slot] = nullptr;
  bitmap_[level][slot >> 6] &= ~(1ull << (slot & 63));
  while (n != nullptr) {
    Node* next = n->next;
    n->prev = nullptr;
    n->next = nullptr;
    --level_population_[level];
    if (TickOf(n->at) <= current_tick_) {
      PushReady(n);
    } else {
      InsertIntoWheel(n);
    }
    n = next;
  }
}

int TimerWheel::NextOccupiedDistance(int level, int from_pos) const {
  if (level_population_[level] == 0) {
    return 0;
  }
  auto find_from = [this, level](int start) -> int {
    int w = start >> 6;
    uint64_t word = bitmap_[level][w] & (~0ull << (start & 63));
    for (;;) {
      if (word != 0) {
        return (w << 6) + __builtin_ctzll(word);
      }
      if (++w >= kBitmapWords) {
        return -1;
      }
      word = bitmap_[level][w];
    }
  };
  if (from_pos + 1 < kSlots) {
    int pos = find_from(from_pos + 1);
    if (pos >= 0) {
      return pos - from_pos;
    }
  }
  int pos = find_from(0);
  if (pos >= 0) {
    return pos + kSlots - from_pos;
  }
  return 0;
}

bool TimerWheel::NextCandidateTick(uint64_t* out) const {
  bool found = false;
  uint64_t best = 0;
  for (int level = 0; level < kLevels; ++level) {
    int shift = kSlotBits * level;
    int pos = static_cast<int>((current_tick_ >> shift) & kSlotMask);
    int dist = NextOccupiedDistance(level, pos);
    if (dist == 0) {
      continue;
    }
    // Level 0 slots name their exact fire tick; upper levels come due at
    // the aligned boundary where their slot cascades.
    uint64_t candidate =
        level == 0 ? current_tick_ + static_cast<uint64_t>(dist)
                   : ((current_tick_ >> shift) + static_cast<uint64_t>(dist)) << shift;
    if (!found || candidate < best) {
      found = true;
      best = candidate;
    }
  }
  if (found) {
    *out = best;
  }
  return found;
}

void TimerWheel::AdvanceTo(uint64_t tick) {
  current_tick_ = tick;
  // Cascade top-down: a tick that is (say) a level-2 boundary drops its
  // slot into level 1 first, whose own boundary slot then feeds level 0.
  for (int level = kLevels - 1; level >= 1; --level) {
    uint64_t span = 1ull << (kSlotBits * level);
    if ((tick & (span - 1)) == 0 && level_population_[level] > 0) {
      CascadeSlot(level, static_cast<int>((tick >> (kSlotBits * level)) & kSlotMask));
    }
  }
  int slot = static_cast<int>(tick & kSlotMask);
  if (slots_[0][slot] != nullptr) {
    CascadeSlot(0, slot);  // level-0 re-file lands everything in ready_
  }
}

void TimerWheel::PurgeCancelledReady() {
  while (!ready_.empty() && ready_.front()->cancelled) {
    std::pop_heap(ready_.begin(), ready_.end(), TimerWheelReadyAfter());
    Release(ready_.back());
    ready_.pop_back();
  }
}

double TimerWheel::NextDueHint() {
  PurgeCancelledReady();
  if (!ready_.empty()) {
    return ready_.front()->at;
  }
  uint64_t tick;
  if (live_ > 0 && NextCandidateTick(&tick)) {
    return static_cast<double>(tick) * tick_;
  }
  return std::numeric_limits<double>::infinity();
}

bool TimerWheel::PopDue(double deadline, double* at, Task* task) {
  for (;;) {
    PurgeCancelledReady();
    if (!ready_.empty()) {
      Node* n = ready_.front();
      if (n->at > deadline) {
        return false;
      }
      std::pop_heap(ready_.begin(), ready_.end(), TimerWheelReadyAfter());
      ready_.pop_back();
      --live_;
      *at = n->at;
      *task = std::move(n->task);
      Release(n);
      return true;
    }
    if (live_ == 0) {
      return false;
    }
    uint64_t tick;
    if (!NextCandidateTick(&tick)) {
      return false;  // unreachable while live_ > 0; defensive
    }
    // Entries in that slot fire no earlier than the slot's base time.
    if (static_cast<double>(tick) * tick_ > deadline) {
      return false;
    }
    AdvanceTo(tick);
  }
}

}  // namespace p2
