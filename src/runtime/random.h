// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the system (finger-fix coin flips, workload
// key choice, churn arrivals, topology assignment) draws from an explicit
// Rng instance so whole experiments are reproducible from a single seed.
#ifndef P2_RUNTIME_RANDOM_H_
#define P2_RUNTIME_RANDOM_H_

#include <cstdint>

#include "src/runtime/uint160.h"

namespace p2 {

// xoshiro256** — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // Bernoulli(p).
  bool CoinFlip(double p);
  // Exponential with the given mean (> 0).
  double NextExponential(double mean);
  // Uniform 160-bit identifier.
  Uint160 NextId();
  // Derives an independent child generator (for per-node streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace p2

#endif  // P2_RUNTIME_RANDOM_H_
