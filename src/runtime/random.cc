#include "src/runtime/random.h"

#include <cmath>

namespace p2 {
namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

bool Rng::CoinFlip(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u >= 1.0) {
    u = 0.9999999999999999;
  }
  return -mean * std::log1p(-u);
}

Uint160 Rng::NextId() {
  return Uint160(NextU64() & 0xFFFFFFFFull, NextU64(), NextU64());
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ull); }

}  // namespace p2
