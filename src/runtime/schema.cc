#include "src/runtime/schema.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/runtime/logging.h"

namespace p2 {
namespace {

struct AtomTable {
  // Guards the containers. Shard threads only ever hit the read paths in
  // steady state (every schema is interned at plan/install time on the
  // coordinator thread), so the shared lock is uncontended; the exclusive
  // lock is taken only on a first-sight intern.
  std::shared_mutex mu;
  // deque: references to stored names stay stable as the table grows.
  std::deque<std::string> names;
  // Keys view into `names`, so each spelling is stored exactly once.
  std::unordered_map<std::string_view, SchemaId> ids;
};

AtomTable& Atoms() {
  static AtomTable* table = new AtomTable();  // leaked: process lifetime
  return *table;
}

}  // namespace

SchemaId InternSchema(std::string_view name) {
  AtomTable& t = Atoms();
  {
    std::shared_lock<std::shared_mutex> lock(t.mu);
    auto it = t.ids.find(name);
    if (it != t.ids.end()) {
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(t.mu);
  auto it = t.ids.find(name);  // raced with another interner?
  if (it != t.ids.end()) {
    return it->second;
  }
  SchemaId id = static_cast<SchemaId>(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(std::string_view(t.names.back()), id);
  return id;
}

SchemaId FindSchema(std::string_view name) {
  AtomTable& t = Atoms();
  std::shared_lock<std::shared_mutex> lock(t.mu);
  auto it = t.ids.find(name);
  return it == t.ids.end() ? kInvalidSchema : it->second;
}

const std::string& SchemaName(SchemaId id) {
  AtomTable& t = Atoms();
  std::shared_lock<std::shared_mutex> lock(t.mu);
  P2_CHECK(id < t.names.size());
  return t.names[id];  // deque storage: stable after unlock
}

size_t SchemaCount() {
  AtomTable& t = Atoms();
  std::shared_lock<std::shared_mutex> lock(t.mu);
  return t.names.size();
}

}  // namespace p2
