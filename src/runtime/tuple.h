// Tuples: the unit of dataflow in P2.
//
// A tuple is an immutable named vector of Values. Tuples are created once
// and then shared by reference between dataflow elements (§3.3: "tuples in
// P2 are completely immutable once they are created ... reference-counted
// and passed between P2 elements by reference").
//
// The tuple name is interned into a SchemaId at construction: all dispatch
// (demux routing, table/watcher lookup, identity checks) compares small
// integers, and the whole-tuple hash is computed once and cached.
#ifndef P2_RUNTIME_TUPLE_H_
#define P2_RUNTIME_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/schema.h"
#include "src/runtime/value.h"

namespace p2 {

class Tuple;
using TuplePtr = std::shared_ptr<const Tuple>;

class Tuple {
 public:
  Tuple(std::string_view name, std::vector<Value> fields)
      : Tuple(InternSchema(name), std::move(fields)) {}
  Tuple(SchemaId schema, std::vector<Value> fields);

  static TuplePtr Make(std::string_view name, std::vector<Value> fields) {
    return std::make_shared<const Tuple>(name, std::move(fields));
  }
  static TuplePtr Make(SchemaId schema, std::vector<Value> fields) {
    return std::make_shared<const Tuple>(schema, std::move(fields));
  }

  SchemaId schema() const { return schema_; }
  const std::string& name() const { return SchemaName(schema_); }
  size_t size() const { return fields_.size(); }
  const Value& field(size_t i) const { return fields_[i]; }
  const std::vector<Value>& fields() const { return fields_; }

  // Hash over (schema, fields), folded once at construction.
  size_t hash() const { return hash_; }

  // By OverLog convention the first field of every tuple carries the
  // location specifier (the address the tuple lives at / is destined for).
  const Value& locspec() const { return fields_[0]; }

  // Projects the key columns (0-based positions) out of this tuple.
  std::vector<Value> KeyOf(const std::vector<size_t>& positions) const;

  // Content equality; short-circuits on schema and cached hash.
  bool SameAs(const Tuple& o) const;

  std::string ToString() const;

 private:
  SchemaId schema_;
  size_t hash_;
  std::vector<Value> fields_;
};

}  // namespace p2

#endif  // P2_RUNTIME_TUPLE_H_
