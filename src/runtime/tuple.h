// Tuples: the unit of dataflow in P2.
//
// A tuple is an immutable named vector of Values. Tuples are created once
// and then shared by reference between dataflow elements (§3.3: "tuples in
// P2 are completely immutable once they are created ... reference-counted
// and passed between P2 elements by reference").
#ifndef P2_RUNTIME_TUPLE_H_
#define P2_RUNTIME_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/value.h"

namespace p2 {

class Tuple;
using TuplePtr = std::shared_ptr<const Tuple>;

class Tuple {
 public:
  Tuple(std::string name, std::vector<Value> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  static TuplePtr Make(std::string name, std::vector<Value> fields) {
    return std::make_shared<const Tuple>(std::move(name), std::move(fields));
  }

  const std::string& name() const { return name_; }
  size_t size() const { return fields_.size(); }
  const Value& field(size_t i) const { return fields_[i]; }
  const std::vector<Value>& fields() const { return fields_; }

  // By OverLog convention the first field of every tuple carries the
  // location specifier (the address the tuple lives at / is destined for).
  const Value& locspec() const { return fields_[0]; }

  // Projects the key columns (0-based positions) out of this tuple.
  std::vector<Value> KeyOf(const std::vector<size_t>& positions) const;

  bool SameAs(const Tuple& o) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Value> fields_;
};

}  // namespace p2

#endif  // P2_RUNTIME_TUPLE_H_
