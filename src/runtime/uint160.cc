#include "src/runtime/uint160.h"

#include <cstring>

namespace p2 {
namespace {

constexpr uint64_t kTopMask = 0xFFFFFFFFu;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Uint160 Uint160::Max() { return Uint160(kTopMask, ~0ull, ~0ull); }

Uint160 Uint160::HashOf(std::string_view bytes) {
  // FNV-1a over the input to get a seed, then SplitMix64 expansion into
  // three limbs. Deterministic across platforms; uniform enough for ring IDs.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  uint64_t low = SplitMix64(h);
  uint64_t mid = SplitMix64(h ^ 0xA5A5A5A5A5A5A5A5ull);
  uint64_t hi = SplitMix64(h ^ 0x5A5A5A5A5A5A5A5Aull);
  return Uint160(hi & kTopMask, mid, low);
}

bool Uint160::FromHex(std::string_view hex, Uint160* out) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") {
    hex.remove_prefix(2);
  }
  if (hex.empty() || hex.size() > 40) {
    return false;
  }
  Uint160 v;
  for (char c : hex) {
    int d = HexDigit(c);
    if (d < 0) {
      return false;
    }
    v = v << 4;
    v = v + Uint160(static_cast<uint64_t>(d));
  }
  *out = v;
  return true;
}

Uint160 Uint160::operator+(const Uint160& o) const {
  Uint160 r;
  unsigned __int128 acc = 0;
  for (int i = 0; i < 3; ++i) {
    acc += limbs_[i];
    acc += o.limbs_[i];
    r.limbs_[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  r.limbs_[2] &= kTopMask;
  return r;
}

Uint160 Uint160::operator-(const Uint160& o) const {
  Uint160 r;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 3; ++i) {
    unsigned __int128 lhs = limbs_[i];
    unsigned __int128 rhs = static_cast<unsigned __int128>(o.limbs_[i]) + borrow;
    if (lhs >= rhs) {
      r.limbs_[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      r.limbs_[i] = static_cast<uint64_t>((static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  r.limbs_[2] &= kTopMask;
  return r;
}

Uint160 Uint160::operator<<(unsigned n) const {
  if (n >= 160) {
    return Uint160();
  }
  Uint160 r = *this;
  unsigned whole = n / 64;
  unsigned frac = n % 64;
  for (unsigned i = 0; i < whole; ++i) {
    r.limbs_[2] = r.limbs_[1];
    r.limbs_[1] = r.limbs_[0];
    r.limbs_[0] = 0;
  }
  if (frac != 0) {
    r.limbs_[2] = (r.limbs_[2] << frac) | (r.limbs_[1] >> (64 - frac));
    r.limbs_[1] = (r.limbs_[1] << frac) | (r.limbs_[0] >> (64 - frac));
    r.limbs_[0] <<= frac;
  }
  r.limbs_[2] &= kTopMask;
  return r;
}

bool Uint160::operator<(const Uint160& o) const {
  for (int i = 2; i >= 0; --i) {
    if (limbs_[i] != o.limbs_[i]) {
      return limbs_[i] < o.limbs_[i];
    }
  }
  return false;
}

bool Uint160::InOO(const Uint160& lo, const Uint160& hi) const {
  if (lo == hi) {
    return *this != lo;  // Full ring minus the single excluded point.
  }
  Uint160 span = hi - lo;
  Uint160 off = *this - lo;
  return !off.IsZero() && off < span;
}

bool Uint160::InOC(const Uint160& lo, const Uint160& hi) const {
  if (lo == hi) {
    return true;  // (x, x] wraps the whole ring back to x inclusive.
  }
  Uint160 span = hi - lo;
  Uint160 off = *this - lo;
  return !off.IsZero() && off <= span;
}

bool Uint160::InCO(const Uint160& lo, const Uint160& hi) const {
  if (lo == hi) {
    return true;
  }
  Uint160 span = hi - lo;
  Uint160 off = *this - lo;
  return off < span;
}

bool Uint160::InCC(const Uint160& lo, const Uint160& hi) const {
  if (lo == hi) {
    return *this == lo ? true : true;  // [x, x] wrapping covers the ring.
  }
  Uint160 span = hi - lo;
  Uint160 off = *this - lo;
  return off <= span;
}

std::string Uint160::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (int limb = 2; limb >= 0; --limb) {
    int top_nibble = (limb == 2) ? 7 : 15;
    for (int n = top_nibble; n >= 0; --n) {
      unsigned d = (limbs_[limb] >> (n * 4)) & 0xF;
      if (!started && d == 0) {
        continue;
      }
      started = true;
      out.push_back(kDigits[d]);
    }
  }
  if (!started) {
    out = "0";
  }
  return out;
}

size_t Uint160::HashValue() const {
  uint64_t h = SplitMix64(limbs_[0]);
  h ^= SplitMix64(limbs_[1] + 0x9E3779B97F4A7C15ull);
  h ^= SplitMix64(limbs_[2] + 0x2545F4914F6CDD1Dull);
  return static_cast<size_t>(h);
}

}  // namespace p2
