// Executor: the event-loop abstraction every P2 component is written
// against.
//
// P2 is single-threaded and event-driven with run-to-completion handlers
// (the paper used libasync from the SFS toolkit). We abstract the loop so
// the same node code runs both under the discrete-event simulator (virtual
// time, sub-second wall time for 500-node experiments) and under a real
// poll()-based UDP loop (wall-clock time, true multi-process deployment).
#ifndef P2_RUNTIME_EXECUTOR_H_
#define P2_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <functional>

namespace p2 {

using Task = std::function<void()>;
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Executor {
 public:
  virtual ~Executor() = default;

  // Current time in seconds (virtual or wall-clock depending on backend).
  virtual double Now() const = 0;

  // Shard affinity: which share-nothing simulator shard this executor
  // drives. Everything scheduled on one executor runs on that shard's
  // thread; components owned by one node must arm all their timers on the
  // node's own executor. Single-loop backends (UdpLoop, a standalone
  // SimEventLoop) are shard 0.
  virtual size_t shard_index() const { return 0; }

  // Runs `task` after `delay` seconds (>= 0). Returns a cancellable id.
  virtual TimerId ScheduleAfter(double delay, Task task) = 0;

  // Cancels a pending timer; no-op if already fired or invalid.
  virtual void Cancel(TimerId id) = 0;

  // Runs `task` as soon as the current handler completes (delay 0).
  TimerId Defer(Task task) { return ScheduleAfter(0.0, std::move(task)); }
};

}  // namespace p2

#endif  // P2_RUNTIME_EXECUTOR_H_
