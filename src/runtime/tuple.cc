#include "src/runtime/tuple.h"

namespace p2 {

std::vector<Value> Tuple::KeyOf(const std::vector<size_t>& positions) const {
  std::vector<Value> key;
  key.reserve(positions.size());
  for (size_t p : positions) {
    key.push_back(p < fields_.size() ? fields_[p] : Value::Null());
  }
  return key;
}

bool Tuple::SameAs(const Tuple& o) const {
  if (name_ != o.name_ || fields_.size() != o.fields_.size()) {
    return false;
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] != o.fields_[i]) {
      return false;
    }
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields_[i].ToString();
  }
  return out + ")";
}

}  // namespace p2
