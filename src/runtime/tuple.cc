#include "src/runtime/tuple.h"

namespace p2 {

Tuple::Tuple(SchemaId schema, std::vector<Value> fields)
    : schema_(schema), fields_(std::move(fields)) {
  size_t h = 0x9E3779B97F4A7C15ull ^ schema_;
  for (const Value& v : fields_) {
    h = h * 1099511628211ull + v.HashValue();
  }
  hash_ = h;
}

std::vector<Value> Tuple::KeyOf(const std::vector<size_t>& positions) const {
  std::vector<Value> key;
  key.reserve(positions.size());
  for (size_t p : positions) {
    key.push_back(p < fields_.size() ? fields_[p] : Value::Null());
  }
  return key;
}

bool Tuple::SameAs(const Tuple& o) const {
  if (this == &o) {
    return true;
  }
  // No hash short-circuit: cross-type numeric equality (Int(1) ==
  // Double(1.0)) means equal tuples can hash differently, and a refresh
  // spuriously flagged as "changed" would churn the table indices.
  if (schema_ != o.schema_ || fields_.size() != o.fields_.size()) {
    return false;
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] != o.fields_[i]) {
      return false;
    }
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = name() + "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields_[i].ToString();
  }
  return out + ")";
}

}  // namespace p2
