#include "src/dataflow/basic_elements.h"

#include "src/obs/registry.h"
#include "src/runtime/logging.h"

namespace p2 {

// --- QueueElement ---

int QueueElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  P2_CHECK(port == 0);
  // The tuple is always accepted (a rejected push would force upstream
  // state rollback, §3.3); the return value only signals congestion.
  if (q_.size() >= capacity_) {
    ++dropped_;
    if (obs_dropped_ != nullptr) {
      obs_dropped_->Inc();
    }
    q_.pop_front();  // Shed oldest under overload; overlays are soft state.
  }
  q_.push_back(t);
  if (blocked_puller_) {
    Callback cb2 = std::move(blocked_puller_);
    blocked_puller_ = nullptr;
    cb2();
  }
  if (q_.size() >= capacity_) {
    blocked_pusher_ = cb;
    return 0;
  }
  return 1;
}

TuplePtr QueueElement::Pull(int port, const Callback& cb) {
  P2_CHECK(port == 0);
  if (q_.empty()) {
    blocked_puller_ = cb;
    return nullptr;
  }
  TuplePtr t = q_.front();
  q_.pop_front();
  if (blocked_pusher_) {
    Callback cb2 = std::move(blocked_pusher_);
    blocked_pusher_ = nullptr;
    cb2();
  }
  return t;
}

// --- TimedPullPush ---

TimedPullPush::~TimedPullPush() {
  if (timer_ != kInvalidTimer) {
    executor_->Cancel(timer_);
  }
}

void TimedPullPush::Start() { Arm(period_); }

void TimedPullPush::Arm(double delay) {
  if (armed_) {
    return;
  }
  armed_ = true;
  timer_ = executor_->ScheduleAfter(delay, [this]() {
    armed_ = false;
    timer_ = kInvalidTimer;
    RunOnce();
  });
}

void TimedPullPush::RunOnce() {
  if (period_ > 0) {
    // Fixed-rate mode: move at most one tuple per period.
    TuplePtr t = PullIn(0, [this]() { Arm(period_); });
    if (t != nullptr) {
      PushOut(0, t);
      Arm(period_);
    }
    return;
  }
  // Continuous mode: drain a bounded batch, then yield to the loop so one
  // busy flow cannot starve timers. The batch goes downstream through one
  // PushMany so the demultiplexer can partition it per strand instead of
  // re-dispatching tuple by tuple.
  constexpr int kBatch = 64;
  batch_.clear();
  bool blocked = false;
  for (int i = 0; i < kBatch; ++i) {
    TuplePtr t = PullIn(0, [this]() { Arm(0); });
    if (t == nullptr) {
      blocked = true;  // Pull callback re-arms us once data returns.
      break;
    }
    batch_.push_back(std::move(t));
  }
  if (!batch_.empty()) {
    int ok = PushOutMany(0, batch_, [this]() { Arm(0); });
    batch_.clear();
    if (ok == 0) {
      return;  // Downstream congested; push callback re-arms us.
    }
  }
  if (!blocked) {
    Arm(0);
  }
}

// --- DemuxByName ---

int DemuxByName::PortFor(const std::string& tuple_name) {
  SchemaId schema = InternSchema(tuple_name);
  if (schema >= routes_.size()) {
    routes_.resize(schema + 1, -1);
  }
  if (routes_[schema] >= 0) {
    return routes_[schema];
  }
  int port = next_port_++;
  routes_[schema] = port;
  return port;
}

int DemuxByName::Push(int port, const TuplePtr& t, const Callback& cb) {
  P2_CHECK(port == 0);
  int out = RouteFor(t->schema());
  if (out >= 0) {
    return PushOut(out, t, cb);
  }
  if (default_port_ >= 0) {
    return PushOut(default_port_, t, cb);
  }
  ++unroutable_;
  if (obs_unroutable_ != nullptr) {
    obs_unroutable_->Inc();
  }
  return 1;
}

int DemuxByName::PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) {
  P2_CHECK(port == 0);
  if (batch_buckets_.size() < static_cast<size_t>(next_port_)) {
    batch_buckets_.resize(next_port_);
  }
  int signal = 1;
  for (const TuplePtr& t : ts) {
    int out = RouteFor(t->schema());
    if (out < 0) {
      if (default_port_ < 0) {
        ++unroutable_;
        if (obs_unroutable_ != nullptr) {
          obs_unroutable_->Inc();
        }
        continue;
      }
      out = default_port_;
      if (batch_buckets_.size() <= static_cast<size_t>(out)) {
        batch_buckets_.resize(out + 1);
      }
    }
    batch_buckets_[out].push_back(t);
  }
  for (size_t p = 0; p < batch_buckets_.size(); ++p) {
    std::vector<TuplePtr>& bucket = batch_buckets_[p];
    if (bucket.empty()) {
      continue;
    }
    switch (bucket.size()) {
      case 1:
        signal &= PushOut(static_cast<int>(p), bucket[0], cb);
        break;
      default:
        signal &= PushOutMany(static_cast<int>(p), bucket, cb);
        break;
    }
    bucket.clear();
  }
  return signal;
}

// --- DupElement ---

int DupElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  P2_CHECK(port == 0);
  (void)cb;
  int signal = 1;
  for (size_t i = 0; i < num_outputs(); ++i) {
    signal &= PushOut(static_cast<int>(i), t);
  }
  return signal;
}

int DupElement::PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) {
  P2_CHECK(port == 0);
  (void)cb;
  int signal = 1;
  for (size_t i = 0; i < num_outputs(); ++i) {
    signal &= PushOutMany(static_cast<int>(i), ts);
  }
  return signal;
}

// --- MuxElement ---

int MuxElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  return PushOut(0, t, cb);
}

int MuxElement::PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) {
  (void)port;
  return PushOutMany(0, ts, cb);
}

// --- CallbackSink ---

int CallbackSink::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)cb;
  fn_(t);
  return 1;
}

// --- PeriodicSource ---

PeriodicSource::PeriodicSource(std::string name, Executor* executor, Rng* rng,
                               std::string local_addr, double period, uint64_t count,
                               double initial_delay, std::vector<Value> extras)
    : Element(std::move(name)),
      executor_(executor),
      rng_(rng),
      local_addr_(std::move(local_addr)),
      period_(period),
      count_(count),
      initial_delay_(initial_delay),
      extras_(std::move(extras)) {}

PeriodicSource::~PeriodicSource() { Stop(); }

void PeriodicSource::Start() {
  // A small random phase avoids the synchronized-timer artifacts the paper
  // notes mature implementations tune by hand.
  double jitter = period_ > 0 ? rng_->NextDouble() * period_ * 0.1 : 0.0;
  timer_ = executor_->ScheduleAfter(initial_delay_ + jitter, [this]() { Fire(); });
}

void PeriodicSource::Stop() {
  if (timer_ != kInvalidTimer) {
    executor_->Cancel(timer_);
    timer_ = kInvalidTimer;
  }
}

void PeriodicSource::Fire() {
  timer_ = kInvalidTimer;
  ++fired_;
  std::vector<Value> fields;
  fields.push_back(Value::Addr(local_addr_));
  fields.push_back(Value::Id(rng_->NextId()));  // unique event identifier E
  fields.insert(fields.end(), extras_.begin(), extras_.end());
  PushOut(0, Tuple::Make("periodic", std::move(fields)));
  if (count_ == 0 || fired_ < count_) {
    timer_ = executor_->ScheduleAfter(period_ > 0 ? period_ : 0.0, [this]() { Fire(); });
  }
}

}  // namespace p2
