#include "src/dataflow/basic_elements.h"

#include "src/runtime/logging.h"

namespace p2 {

// --- QueueElement ---

int QueueElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  P2_CHECK(port == 0);
  // The tuple is always accepted (a rejected push would force upstream
  // state rollback, §3.3); the return value only signals congestion.
  if (q_.size() >= capacity_) {
    ++dropped_;
    q_.pop_front();  // Shed oldest under overload; overlays are soft state.
  }
  q_.push_back(t);
  if (blocked_puller_) {
    Callback cb2 = std::move(blocked_puller_);
    blocked_puller_ = nullptr;
    cb2();
  }
  if (q_.size() >= capacity_) {
    blocked_pusher_ = cb;
    return 0;
  }
  return 1;
}

TuplePtr QueueElement::Pull(int port, const Callback& cb) {
  P2_CHECK(port == 0);
  if (q_.empty()) {
    blocked_puller_ = cb;
    return nullptr;
  }
  TuplePtr t = q_.front();
  q_.pop_front();
  if (blocked_pusher_) {
    Callback cb2 = std::move(blocked_pusher_);
    blocked_pusher_ = nullptr;
    cb2();
  }
  return t;
}

// --- TimedPullPush ---

TimedPullPush::~TimedPullPush() {
  if (timer_ != kInvalidTimer) {
    executor_->Cancel(timer_);
  }
}

void TimedPullPush::Start() { Arm(period_); }

void TimedPullPush::Arm(double delay) {
  if (armed_) {
    return;
  }
  armed_ = true;
  timer_ = executor_->ScheduleAfter(delay, [this]() {
    armed_ = false;
    timer_ = kInvalidTimer;
    RunOnce();
  });
}

void TimedPullPush::RunOnce() {
  if (period_ > 0) {
    // Fixed-rate mode: move at most one tuple per period.
    TuplePtr t = PullIn(0, [this]() { Arm(period_); });
    if (t != nullptr) {
      PushOut(0, t);
      Arm(period_);
    }
    return;
  }
  // Continuous mode: drain a bounded batch, then yield to the loop so one
  // busy flow cannot starve timers.
  constexpr int kBatch = 64;
  for (int i = 0; i < kBatch; ++i) {
    TuplePtr t = PullIn(0, [this]() { Arm(0); });
    if (t == nullptr) {
      return;  // Blocked; pull callback re-arms us.
    }
    int ok = PushOut(0, t, [this]() { Arm(0); });
    if (ok == 0) {
      return;  // Downstream congested; push callback re-arms us.
    }
  }
  Arm(0);
}

// --- DemuxByName ---

int DemuxByName::PortFor(const std::string& tuple_name) {
  auto it = routes_.find(tuple_name);
  if (it != routes_.end()) {
    return it->second;
  }
  int port = next_port_++;
  routes_.emplace(tuple_name, port);
  return port;
}

int DemuxByName::Push(int port, const TuplePtr& t, const Callback& cb) {
  P2_CHECK(port == 0);
  auto it = routes_.find(t->name());
  if (it != routes_.end()) {
    return PushOut(it->second, t, cb);
  }
  if (default_port_ >= 0) {
    return PushOut(default_port_, t, cb);
  }
  ++unroutable_;
  return 1;
}

// --- DupElement ---

int DupElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  P2_CHECK(port == 0);
  (void)cb;
  int signal = 1;
  for (size_t i = 0; i < num_outputs(); ++i) {
    signal &= PushOut(static_cast<int>(i), t);
  }
  return signal;
}

// --- MuxElement ---

int MuxElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  return PushOut(0, t, cb);
}

// --- CallbackSink ---

int CallbackSink::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)cb;
  fn_(t);
  return 1;
}

// --- PeriodicSource ---

PeriodicSource::PeriodicSource(std::string name, Executor* executor, Rng* rng,
                               std::string local_addr, double period, uint64_t count,
                               double initial_delay, std::vector<Value> extras)
    : Element(std::move(name)),
      executor_(executor),
      rng_(rng),
      local_addr_(std::move(local_addr)),
      period_(period),
      count_(count),
      initial_delay_(initial_delay),
      extras_(std::move(extras)) {}

PeriodicSource::~PeriodicSource() { Stop(); }

void PeriodicSource::Start() {
  // A small random phase avoids the synchronized-timer artifacts the paper
  // notes mature implementations tune by hand.
  double jitter = period_ > 0 ? rng_->NextDouble() * period_ * 0.1 : 0.0;
  timer_ = executor_->ScheduleAfter(initial_delay_ + jitter, [this]() { Fire(); });
}

void PeriodicSource::Stop() {
  if (timer_ != kInvalidTimer) {
    executor_->Cancel(timer_);
    timer_ = kInvalidTimer;
  }
}

void PeriodicSource::Fire() {
  timer_ = kInvalidTimer;
  ++fired_;
  std::vector<Value> fields;
  fields.push_back(Value::Addr(local_addr_));
  fields.push_back(Value::Id(rng_->NextId()));  // unique event identifier E
  fields.insert(fields.end(), extras_.begin(), extras_.end());
  PushOut(0, Tuple::Make("periodic", std::move(fields)));
  if (count_ == 0 || fired_ < count_) {
    timer_ = executor_->ScheduleAfter(period_ > 0 ? period_ : 0.0, [this]() { Fire(); });
  }
}

}  // namespace p2
