#include "src/dataflow/rel_elements.h"

#include <chrono>

#include "src/obs/registry.h"
#include "src/runtime/logging.h"
#include "src/runtime/marshal.h"

namespace p2 {

// --- Aggregate arithmetic ---

Value AggInit(AggKind kind, const Value& first) {
  switch (kind) {
    case AggKind::kMin:
    case AggKind::kMax:
      return first;
    case AggKind::kCount:
      return Value::Int(1);
    case AggKind::kSum:
    case AggKind::kAvg:
      return first;
  }
  return first;
}

Value AggStep(AggKind kind, const Value& acc, const Value& next, int64_t count_so_far) {
  (void)count_so_far;
  switch (kind) {
    case AggKind::kMin:
      return Value::Compare(next, acc) < 0 ? next : acc;
    case AggKind::kMax:
      return Value::Compare(next, acc) > 0 ? next : acc;
    case AggKind::kCount:
      return Value::Add(acc, Value::Int(1));
    case AggKind::kSum:
    case AggKind::kAvg:
      return Value::Add(acc, next);
  }
  return acc;
}

Value AggFinal(AggKind kind, const Value& acc, int64_t count) {
  if (kind == AggKind::kAvg && count > 0) {
    return Value::Div(acc, Value::Int(count));
  }
  return acc;
}

// --- FilterElement ---

int FilterElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  if (!vm_.EvalBool(program_, t.get())) {
    return 1;
  }
  return PushOut(0, t, cb);
}

// --- ExtendElement ---

int ExtendElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  Value v = vm_.Eval(program_, t.get());
  std::vector<Value> fields = t->fields();
  fields.push_back(std::move(v));
  return PushOut(0, Tuple::Make(t->schema(), std::move(fields)), cb);
}

// --- ProjectElement ---

int ProjectElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  std::vector<Value> fields;
  fields.reserve(field_programs_.size());
  for (const PelProgram& p : field_programs_) {
    fields.push_back(vm_.Eval(p, t.get()));
  }
  return PushOut(0, Tuple::Make(out_schema_, std::move(fields)), cb);
}

// --- JoinElement ---

JoinElement::JoinElement(std::string name, PelEnv env, Table* table, std::vector<JoinKey> keys,
                         std::string out_name)
    : Element(std::move(name)),
      vm_(env),
      table_(table),
      keys_(std::move(keys)),
      out_schema_(InternSchema(out_name)) {
  for (const JoinKey& k : keys_) {
    k.expr.Lower();
    key_cols_.push_back(k.table_col);
  }
  if (!key_cols_.empty()) {
    table_->AddIndex(key_cols_);
  }
}

int JoinElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  std::vector<Value> key_vals;
  key_vals.reserve(keys_.size());
  for (const JoinKey& k : keys_) {
    key_vals.push_back(vm_.Eval(k.expr, t.get()));
  }
  std::vector<TuplePtr> matches = key_cols_.empty()
                                      ? table_->Scan()
                                      : table_->LookupByCols(key_cols_, key_vals);
  int signal = 1;
  for (const TuplePtr& row : matches) {
    std::vector<Value> fields;
    fields.reserve(t->size() + row->size());
    fields.insert(fields.end(), t->fields().begin(), t->fields().end());
    fields.insert(fields.end(), row->fields().begin(), row->fields().end());
    signal &= PushOut(0, Tuple::Make(out_schema_, std::move(fields)), cb);
  }
  return signal;
}

// --- AntiJoinElement ---

AntiJoinElement::AntiJoinElement(std::string name, PelEnv env, Table* table,
                                 std::vector<JoinKey> keys)
    : Element(std::move(name)), vm_(env), table_(table), keys_(std::move(keys)) {
  for (const JoinKey& k : keys_) {
    k.expr.Lower();
    key_cols_.push_back(k.table_col);
  }
  if (!key_cols_.empty()) {
    table_->AddIndex(key_cols_);
  }
}

int AntiJoinElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  std::vector<Value> key_vals;
  key_vals.reserve(keys_.size());
  for (const JoinKey& k : keys_) {
    key_vals.push_back(vm_.Eval(k.expr, t.get()));
  }
  bool any = key_cols_.empty() ? table_->size() > 0
                               : !table_->LookupByCols(key_cols_, key_vals).empty();
  if (any) {
    return 1;
  }
  return PushOut(0, t, cb);
}

// --- InsertElement / DeleteElement ---

int InsertElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)cb;
  table_->Insert(t);
  // Delta propagation happens through the table's listeners (so that every
  // writer of the table feeds the same delta stream); nothing to push here.
  return 1;
}

int DeleteElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)cb;
  table_->DeleteMatching(*t);
  return 1;
}

// --- SupportCountElement / CountedRetractElement ---

int SupportCountElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  // Only locally addressed heads are counted: a remotely addressed tuple is
  // stored (and counted, if at all) by the node it ships to, and remove
  // chains are local-only to match.
  if (counting_ && t->size() > 0 && t->field(0).type() == ValueType::kAddr &&
      t->field(0).AsAddr() == local_addr_) {
    counts_->Inc(*t);
  }
  return PushOut(0, t, cb);
}

int CountedRetractElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)cb;
  counts_->Dec(*t, retracting_);
  return 1;
}

// --- DedupElement ---

int DedupElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  ByteWriter w;
  if (!MarshalTuple(*t, &w)) {
    // No wire signature for an oversize tuple; pass it through undeduped.
    return PushOut(0, t, cb);
  }
  std::string key(reinterpret_cast<const char*>(w.buffer().data()), w.size());
  if (seen_.count(key) > 0) {
    return 1;
  }
  if (seen_.size() >= max_entries_) {
    // Ring eviction of the oldest remembered signatures.
    seen_.erase(order_[next_evict_]);
    order_[next_evict_] = key;
    next_evict_ = (next_evict_ + 1) % max_entries_;
  } else {
    order_.push_back(key);
  }
  seen_.insert(std::move(key));
  return PushOut(0, t, cb);
}

// --- AggWrapElement ---

AggWrapElement::AggWrapElement(std::string name, PelEnv env, AggKind kind, size_t agg_position,
                               std::string out_name, bool emit_empty,
                               std::vector<PelProgram> empty_field_programs)
    : Element(std::move(name)),
      vm_(env),
      kind_(kind),
      agg_position_(agg_position),
      out_schema_(InternSchema(out_name)),
      emit_empty_(emit_empty),
      empty_field_programs_(std::move(empty_field_programs)) {
  for (const PelProgram& p : empty_field_programs_) {
    p.Lower();
  }
}

void AggWrapElement::Begin(const TuplePtr& event) {
  current_event_ = event;
  best_ = nullptr;
  acc_ = Value::Null();
  count_ = 0;
}

int AggWrapElement::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)cb;
  P2_CHECK(agg_position_ < t->size());
  const Value& input = t->field(agg_position_);
  if (best_ == nullptr) {
    best_ = t;
    acc_ = AggInit(kind_, input);
    count_ = 1;
    return 1;
  }
  switch (kind_) {
    case AggKind::kMin:
      if (Value::Compare(input, best_->field(agg_position_)) < 0) {
        best_ = t;
      }
      break;
    case AggKind::kMax:
      if (Value::Compare(input, best_->field(agg_position_)) > 0) {
        best_ = t;
      }
      break;
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kAvg:
      acc_ = AggStep(kind_, acc_, input, count_);
      break;
  }
  ++count_;
  return 1;
}

void AggWrapElement::Flush() {
  if (best_ == nullptr) {
    if (emit_empty_ && !empty_field_programs_.empty() && current_event_ != nullptr) {
      std::vector<Value> fields;
      fields.reserve(empty_field_programs_.size() + 1);
      for (size_t i = 0; i < empty_field_programs_.size() + 1; ++i) {
        if (i == agg_position_) {
          fields.push_back(Value::Int(0));
        } else {
          size_t pi = i < agg_position_ ? i : i - 1;
          fields.push_back(vm_.Eval(empty_field_programs_[pi], current_event_.get()));
        }
      }
      PushOut(0, Tuple::Make(out_schema_, std::move(fields)));
    }
    current_event_ = nullptr;
    return;
  }
  std::vector<Value> fields = best_->fields();
  if (kind_ == AggKind::kCount || kind_ == AggKind::kSum || kind_ == AggKind::kAvg) {
    fields[agg_position_] = AggFinal(kind_, acc_, count_);
  }
  PushOut(0, Tuple::Make(out_schema_, std::move(fields)));
  best_ = nullptr;
  current_event_ = nullptr;
}

// --- RuleDriver ---

int RuleDriver::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  if (t->size() < min_arity_) {
    ++malformed_;
    if (obs_malformed_ != nullptr) {
      obs_malformed_->Inc();
    }
    return 1;
  }
  ++fires_;
  if (obs_fires_ != nullptr) {
    obs_fires_->Inc();
  }
  // Latency is sampled (every 16th fire) so the steady_clock reads stay off
  // the common path; the histogram is log-scale, so sampling loses little.
  const bool timed = obs_fire_ns_ != nullptr && (fires_ & 0xF) == 0;
  std::chrono::steady_clock::time_point t0;
  if (timed) {
    t0 = std::chrono::steady_clock::now();
  }
  int signal;
  if (agg_ != nullptr) {
    agg_->Begin(t);
    PushOut(0, t, cb);
    agg_->Flush();
    signal = 1;
  } else {
    signal = PushOut(0, t, cb);
  }
  if (timed) {
    obs_fire_ns_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return signal;
}

// --- TableAggWatcher ---

TableAggWatcher::TableAggWatcher(std::string name, Table* table, std::vector<size_t> group_cols,
                                 AggKind kind, size_t agg_col, std::string out_name, Mode mode)
    : Element(std::move(name)),
      table_(table),
      group_cols_(std::move(group_cols)),
      kind_(kind),
      agg_col_(agg_col),
      out_schema_(InternSchema(out_name)),
      mode_(mode) {}

void TableAggWatcher::Attach() {
  if (mode_ == Mode::kLegacyRecompute) {
    table_->AddDeltaListener([this](const TuplePtr&) { Recompute(); });
    table_->AddRemoveListener([this](const TuplePtr&) { Recompute(); });
    return;
  }
  // Seed running state from the live rows (Scan purges expired ones first),
  // then subscribe. In practice the planner attaches before any facts are
  // installed, so the table is empty here.
  for (const TuplePtr& row : table_->Scan()) {
    ApplyRow(row, +1);
  }
  table_->AddTypedListener([this](const TableDelta& d) { OnDelta(d); });
}

void TableAggWatcher::OnDelta(const TableDelta& d) {
  pending_.push_back(d);
  if (processing_) {
    return;  // the active invocation drains the queue in arrival order
  }
  processing_ = true;
  while (!pending_.empty()) {
    TableDelta next = std::move(pending_.front());
    pending_.pop_front();
    ProcessDelta(next);
  }
  processing_ = false;
}

void TableAggWatcher::ProcessDelta(const TableDelta& d) {
  switch (d.kind) {
    case TableDelta::Kind::kInsert:
      EmitGroup(ApplyRow(d.tuple, +1));
      break;
    case TableDelta::Kind::kRemove:
      EmitGroup(ApplyRow(d.tuple, -1));
      break;
    case TableDelta::Kind::kReplace: {
      if (d.old_tuple->SameAs(*d.tuple)) {
        return;  // TTL refresh of an identical row: no aggregate change
      }
      std::vector<Value> old_key = ApplyRow(d.old_tuple, -1);
      std::vector<Value> new_key = ApplyRow(d.tuple, +1);
      if (!(old_key == new_key)) {
        EmitGroup(old_key);
      }
      EmitGroup(new_key);
      break;
    }
  }
}

std::vector<Value> TableAggWatcher::ApplyRow(const TuplePtr& row, int sign) {
  std::vector<Value> key = row->KeyOf(group_cols_);
  Value input = agg_col_ < row->size() ? row->field(agg_col_) : Value::Null();
  Group& g = groups_[key];
  g.rows += sign;
  switch (kind_) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      if (sign > 0) {
        // A fresh group takes the first value as-is, so the accumulator
        // keeps the input's numeric type (int sums stay int).
        g.sum = g.rows == 1 ? input : Value::Add(g.sum, input);
      } else {
        g.sum = Value::Sub(g.sum, input);
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax: {
      auto it = g.support.try_emplace(input, 0).first;
      it->second += sign;
      if (it->second <= 0) {
        g.support.erase(it);
      }
      break;
    }
  }
  if (g.rows <= 0) {
    groups_.erase(key);
  }
  return key;
}

void TableAggWatcher::EmitGroup(const std::vector<Value>& key) {
  auto git = groups_.find(key);
  if (git == groups_.end()) {
    // Group vanished: for counts, report 0 so downstream thresholds reset;
    // extremal/sum aggregates have no meaningful "empty" output — just
    // forget them so a future row re-emits.
    auto prev = last_.find(key);
    if (prev == last_.end()) {
      return;
    }
    if (kind_ == AggKind::kCount) {
      std::vector<Value> fields = key;
      fields.push_back(Value::Int(0));
      PushOut(0, Tuple::Make(out_schema_, std::move(fields)));
    }
    last_.erase(prev);
    return;
  }
  const Group& g = git->second;
  Value v;
  switch (kind_) {
    case AggKind::kCount:
      v = Value::Int(g.rows);
      break;
    case AggKind::kSum:
      v = g.sum;
      break;
    case AggKind::kAvg:
      v = Value::Div(g.sum, Value::Int(g.rows));
      break;
    case AggKind::kMin:
      v = g.support.begin()->first;
      break;
    case AggKind::kMax:
      v = g.support.rbegin()->first;
      break;
  }
  auto prev = last_.find(key);
  if (prev != last_.end() && prev->second == v) {
    return;
  }
  last_[key] = v;
  std::vector<Value> fields = key;
  fields.push_back(v);
  PushOut(0, Tuple::Make(out_schema_, std::move(fields)));
}

void TableAggWatcher::Recompute() {
  if (recomputing_) {
    // Scan() purges expired rows, whose removal listeners land back here;
    // queue a re-run so the nested change is not lost.
    recompute_queued_ = true;
    return;
  }
  recomputing_ = true;
  do {
    recompute_queued_ = false;
    struct WatchAcc {
      Value value;
      int64_t count = 0;
    };
    std::unordered_map<std::vector<Value>, WatchAcc, ValueVecHash, ValueVecEq> fresh;
    for (const TuplePtr& row : table_->Scan()) {
      std::vector<Value> key = row->KeyOf(group_cols_);
      Value input = agg_col_ < row->size() ? row->field(agg_col_) : Value::Null();
      auto it = fresh.find(key);
      if (it == fresh.end()) {
        WatchAcc a;
        a.value = AggInit(kind_, input);
        a.count = 1;
        fresh.emplace(std::move(key), std::move(a));
      } else {
        it->second.value = AggStep(kind_, it->second.value, input, it->second.count);
        it->second.count += 1;
      }
    }
    // Groups that vanished entirely (all rows gone): for counts, report 0 so
    // downstream thresholds reset; extremal aggregates have no meaningful
    // "empty" output — just forget them so a future row re-emits.
    for (auto it = last_.begin(); it != last_.end();) {
      if (fresh.count(it->first) > 0) {
        ++it;
        continue;
      }
      if (kind_ == AggKind::kCount) {
        std::vector<Value> fields = it->first;
        fields.push_back(Value::Int(0));
        PushOut(0, Tuple::Make(out_schema_, std::move(fields)));
      }
      it = last_.erase(it);
    }
    for (auto& [key, acc] : fresh) {
      Value final_v = AggFinal(kind_, acc.value, acc.count);
      auto prev = last_.find(key);
      if (prev != last_.end() && prev->second == final_v) {
        continue;
      }
      last_[key] = final_v;
      std::vector<Value> fields = key;
      fields.push_back(final_v);
      PushOut(0, Tuple::Make(out_schema_, std::move(fields)));
    }
  } while (recompute_queued_);
  recomputing_ = false;
}

}  // namespace p2
