// Relational dataflow elements (§3.4): selections, projections, stream ×
// table equijoins, aggregation, table insert/delete bridges, and duplicate
// elimination. These are the operators the planner assembles rule chains
// from; most are parameterized by PEL programs.
#ifndef P2_DATAFLOW_REL_ELEMENTS_H_
#define P2_DATAFLOW_REL_ELEMENTS_H_

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/dataflow/element.h"
#include "src/pel/vm.h"
#include "src/table/support_counts.h"
#include "src/table/table.h"

namespace p2 {

// Drops tuples for which the PEL predicate evaluates false.
class FilterElement : public Element {
 public:
  FilterElement(std::string name, PelEnv env, PelProgram program)
      : Element(std::move(name)), vm_(env), program_(std::move(program)) {
    program_.Lower();  // compile to register form once, at plan time
  }
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  PelVm vm_;
  PelProgram program_;
};

// Appends the PEL program's result as a new trailing field (implements
// OverLog assignments, e.g. "D := S - N - 1").
class ExtendElement : public Element {
 public:
  ExtendElement(std::string name, PelEnv env, PelProgram program)
      : Element(std::move(name)), vm_(env), program_(std::move(program)) {
    program_.Lower();
  }
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  PelVm vm_;
  PelProgram program_;
};

// Builds the output tuple from one PEL program per field.
class ProjectElement : public Element {
 public:
  ProjectElement(std::string name, PelEnv env, std::string out_name,
                 std::vector<PelProgram> field_programs)
      : Element(std::move(name)),
        vm_(env),
        out_schema_(InternSchema(out_name)),
        field_programs_(std::move(field_programs)) {
    for (const PelProgram& p : field_programs_) {
      p.Lower();
    }
  }
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  PelVm vm_;
  SchemaId out_schema_;  // interned once; tuple construction skips the string
  std::vector<PelProgram> field_programs_;
};

// One equality constraint of a join: table column `table_col` must equal
// the value computed from the incoming tuple by `expr`.
struct JoinKey {
  size_t table_col;
  PelProgram expr;
};

// Stream × table equijoin (§2.5): for each tuple pushed in, finds all rows
// of `table` matching the key constraints (via a secondary index installed
// at plan time) and pushes one concatenated tuple (input fields then table
// fields) per match.
class JoinElement : public Element {
 public:
  JoinElement(std::string name, PelEnv env, Table* table, std::vector<JoinKey> keys,
              std::string out_name);
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  PelVm vm_;
  Table* table_;
  std::vector<JoinKey> keys_;
  std::vector<size_t> key_cols_;
  SchemaId out_schema_;
};

// Anti-join (OverLog "not"): passes the input through unchanged iff the
// table holds NO matching row.
class AntiJoinElement : public Element {
 public:
  AntiJoinElement(std::string name, PelEnv env, Table* table, std::vector<JoinKey> keys);
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  PelVm vm_;
  Table* table_;
  std::vector<JoinKey> keys_;
  std::vector<size_t> key_cols_;
};

// Inserts pushed tuples into a table. When the table content changes, the
// tuple continues downstream on port 0 as the table's delta stream.
class InsertElement : public Element {
 public:
  InsertElement(std::string name, Table* table) : Element(std::move(name)), table_(table) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  Table* table_;
};

// Deletes the row whose primary key matches the pushed (derived) tuple.
class DeleteElement : public Element {
 public:
  DeleteElement(std::string name, Table* table) : Element(std::move(name)), table_(table) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  Table* table_;
};

// Suppresses tuples identical to one seen recently (bounded memory).
class DedupElement : public Element {
 public:
  DedupElement(std::string name, size_t max_entries = 4096)
      : Element(std::move(name)), max_entries_(max_entries) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  size_t max_entries_;
  std::unordered_set<std::string> seen_;
  std::vector<std::string> order_;
  size_t next_evict_ = 0;
};

// Counting planner, derivation side: records one support for each locally
// addressed head tuple flowing to the router, then passes it through.
// `counting` is a per-push mode the planner's delta listener sets before
// driving the chain: a TTL refresh of an identical body row re-derives the
// head (the refresh must propagate) but is NOT a new support.
class SupportCountElement : public Element {
 public:
  SupportCountElement(std::string name, SupportCounts* counts, std::string local_addr)
      : Element(std::move(name)), counts_(counts), local_addr_(std::move(local_addr)) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

  void set_counting(bool on) { counting_ = on; }
  bool counting() const { return counting_; }

 private:
  SupportCounts* counts_;
  std::string local_addr_;
  bool counting_ = true;
};

// Counting planner, retraction side: terminal element of a counted remove
// chain. Decrements the support count of the re-derived head tuple;
// deletes the head row when the count reaches zero — unless `retracting`
// is false (the support merely expired), in which case the count drops but
// the row is left to age out by its own TTL.
class CountedRetractElement : public Element {
 public:
  CountedRetractElement(std::string name, SupportCounts* counts)
      : Element(std::move(name)), counts_(counts) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

  void set_retracting(bool on) { retracting_ = on; }
  bool retracting() const { return retracting_; }

 private:
  SupportCounts* counts_;
  bool retracting_ = true;
};

// Fans a rule's event stream into exactly one of N pre-compiled body
// variants (alternate join orders). The adaptive replan loop flips
// `active` when live table statistics invert the install-time cost order;
// tuples only ever flow down one branch, so a swap is a single int store,
// not a graph rebuild.
class VariantSwitchElement : public Element {
 public:
  explicit VariantSwitchElement(std::string name) : Element(std::move(name)) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override {
    (void)port;
    return PushOut(active_, t, cb);
  }

  void set_active(int branch) { active_ = branch; }
  int active() const { return active_; }

 private:
  int active_ = 0;
};

enum class AggKind { kMin, kMax, kCount, kSum, kAvg };

// Per-event aggregation ("AggWrap"). The rule driver brackets each event
// with Begin/Flush; candidate pre-head tuples pushed in between are reduced
// to a single output tuple. min/max have *selection* semantics: the output
// carries the fields of the winning candidate (this is what makes OverLog
// patterns like Narada's "pick the member with max<R>, R := f_rand()" and
// Chord's "forward to the finger with min<D>" work). count/sum/avg
// accumulate over all candidates, taking the non-aggregate fields from the
// first one. With `emit_empty` set (used for count<*>), an event yielding
// no candidates still emits one tuple with aggregate 0, its remaining
// fields computed from the event itself.
class AggWrapElement : public Element {
 public:
  AggWrapElement(std::string name, PelEnv env, AggKind kind, size_t agg_position,
                 std::string out_name, bool emit_empty,
                 std::vector<PelProgram> empty_field_programs);

  void Begin(const TuplePtr& event);
  int Push(int port, const TuplePtr& t, const Callback& cb) override;
  void Flush();

 private:
  PelVm vm_;
  AggKind kind_;
  size_t agg_position_;
  SchemaId out_schema_;
  bool emit_empty_;
  std::vector<PelProgram> empty_field_programs_;
  TuplePtr current_event_;
  TuplePtr best_;     // representative candidate (winner for min/max, first otherwise)
  Value acc_;         // accumulator for count/sum/avg
  int64_t count_ = 0;
};

// Chain entry point inserted by the planner at the head of every rule:
// brackets aggregate rules with Begin/Flush, counts rule firings, and
// drops events narrower than the rule's event predicate (wire data is
// untrusted — a well-framed tuple with a known name but the wrong arity
// must not reach field-indexing elements).
class RuleDriver : public Element {
 public:
  RuleDriver(std::string name, AggWrapElement* agg /* nullable */)
      : Element(std::move(name)), agg_(agg) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

  // The planner wires the aggregate bracket after the chain is built.
  void set_agg(AggWrapElement* agg) { agg_ = agg; }
  void set_min_arity(size_t n) { min_arity_ = n; }

  // Per-rule metric handles (Graph::ObserveElement): fire count, sampled
  // fire-to-output latency, malformed-input drops. All nullable.
  void set_obs(obs::Counter* fires, obs::LogHistogram* fire_ns, obs::Counter* malformed) {
    obs_fires_ = fires;
    obs_fire_ns_ = fire_ns;
    obs_malformed_ = malformed;
  }

  uint64_t fires() const { return fires_; }
  uint64_t malformed() const { return malformed_; }

 private:
  AggWrapElement* agg_;
  size_t min_arity_ = 0;
  uint64_t fires_ = 0;
  uint64_t malformed_ = 0;
  obs::Counter* obs_fires_ = nullptr;
  obs::LogHistogram* obs_fire_ns_ = nullptr;
  obs::Counter* obs_malformed_ = nullptr;
};

// Maintains an aggregate over a whole table (§3.4 "aggregation elements
// that maintain an up-to-date aggregate on a table and emit it whenever it
// changes"). Groups by `group_cols` of the table's rows and emits tuples
// (group fields..., aggregate) under `out_name` for groups whose aggregate
// changed.
//
// The default mode is incremental over the table's typed delta stream:
// count/sum/avg update in O(1) per delta; min/max keep a per-group ordered
// support multiset so retracting the current extremum finds its successor
// in O(log n) instead of rescanning the table. A key replacement carries
// the displaced row in the delta, so its contribution is retracted exactly
// — replacements never fire remove listeners, which is why the legacy
// full-scan mode (kept for differential testing) had to rescan.
class TableAggWatcher : public Element {
 public:
  enum class Mode { kIncremental, kLegacyRecompute };

  TableAggWatcher(std::string name, Table* table, std::vector<size_t> group_cols,
                  AggKind kind, size_t agg_col, std::string out_name,
                  Mode mode = Mode::kIncremental);

  // Subscribes to the table (inserts AND removals — aggregates must shrink
  // when rows are deleted, evicted or expire). Call once after wiring.
  // Incremental mode seeds its running state from the table's current rows
  // without emitting; like the legacy watcher, the first report happens on
  // the first post-attach delta.
  void Attach();

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return Value::Compare(a, b) < 0;
    }
  };
  struct Group {
    int64_t rows = 0;
    Value sum;  // kSum/kAvg running accumulator
    // kMin/kMax: aggregate value -> live multiplicity. Ordered so the
    // extremum is begin()/rbegin().
    std::map<Value, int64_t, ValueLess> support;
  };

  void OnDelta(const TableDelta& d);
  void ProcessDelta(const TableDelta& d);
  // Applies one row's contribution (sign = +1 insert / -1 retract) and
  // returns the group key it touched.
  std::vector<Value> ApplyRow(const TuplePtr& row, int sign);
  // Emits the group's aggregate if it changed since last reported; emits
  // (key..., 0) for a vanished count group, mirroring the legacy protocol.
  void EmitGroup(const std::vector<Value>& key);
  void Recompute();  // legacy full-scan mode

  Table* table_;
  std::vector<size_t> group_cols_;
  AggKind kind_;
  size_t agg_col_;
  SchemaId out_schema_;
  Mode mode_;
  // Incremental: deltas arriving while one is being processed (e.g. a
  // downstream rule writing back into this table) are queued and drained
  // in order by the active invocation.
  bool processing_ = false;
  std::deque<TableDelta> pending_;
  std::unordered_map<std::vector<Value>, Group, ValueVecHash, ValueVecEq> groups_;
  // Legacy: Scan() can purge rows and re-enter via the removal listener;
  // the nested request queues a re-run instead of being dropped.
  bool recomputing_ = false;
  bool recompute_queued_ = false;
  std::unordered_map<std::vector<Value>, Value, ValueVecHash, ValueVecEq> last_;
};

// Accumulates one aggregation step.
Value AggStep(AggKind kind, const Value& acc, const Value& next, int64_t count_so_far);
// Finalizes (only kAvg differs from the accumulator).
Value AggFinal(AggKind kind, const Value& acc, int64_t count);
// Initial accumulator for the first row.
Value AggInit(AggKind kind, const Value& first);

}  // namespace p2

#endif  // P2_DATAFLOW_REL_ELEMENTS_H_
