#include "src/dataflow/graph.h"

#include "src/dataflow/basic_elements.h"
#include "src/dataflow/rel_elements.h"
#include "src/obs/registry.h"

namespace p2 {

void Graph::Connect(Element* src, int out_port, Element* dst, int in_port) {
  src->BindOutput(out_port, dst, in_port);
  dst->BindInput(in_port, src, out_port);
  edges_.push_back(Edge{src, out_port, dst, in_port});
  ++num_edges_;
}

void Graph::SetObs(obs::Registry* registry, size_t lane) {
  obs_registry_ = registry;
  obs_lane_ = lane;
}

namespace {

// Element names are "<kind>:<detail>" or "<kind>#<n>"; the kind prefix is
// the metric label, so all joins (say) across all rules and nodes on a lane
// share one series.
std::string KindOf(const std::string& name) {
  size_t end = name.find_first_of(":#");
  return end == std::string::npos ? name : name.substr(0, end);
}

}  // namespace

void Graph::ObserveElement(Element* e) {
  const std::string kind = KindOf(e->name());
  e->set_obs_out(obs_registry_->GetCounter(
      obs_lane_, "p2_element_out_total{kind=\"" + kind + "\"}"));
  if (auto* q = dynamic_cast<QueueElement*>(e)) {
    q->set_obs_dropped(obs_registry_->GetCounter(
        obs_lane_, "p2_queue_dropped_total{kind=\"" + kind + "\"}"));
  } else if (auto* d = dynamic_cast<DemuxByName*>(e)) {
    d->set_obs_unroutable(obs_registry_->GetCounter(
        obs_lane_, "p2_demux_unroutable_total{kind=\"" + kind + "\"}"));
  } else if (auto* r = dynamic_cast<RuleDriver*>(e)) {
    // "rule:<label>" where <label> is the planner's base+pred chain label.
    std::string label = e->name();
    size_t colon = label.find(':');
    if (colon != std::string::npos) {
      label = label.substr(colon + 1);
    }
    r->set_obs(obs_registry_->GetCounter(obs_lane_,
                                         "p2_rule_fires_total{rule=\"" + label + "\"}"),
               obs_registry_->GetHistogram(obs_lane_,
                                           "p2_rule_fire_ns{rule=\"" + label + "\"}"),
               obs_registry_->GetCounter(
                   obs_lane_, "p2_rule_malformed_total{rule=\"" + label + "\"}"));
  }
}

std::string Graph::Dump() const {
  std::string out;
  for (const auto& el : elements_) {
    out += "element " + el->name() + "\n";
  }
  for (const Edge& e : edges_) {
    out += e.src->name() + "." + std::to_string(e.src_port) + " -> " + e.dst->name() + "." +
           std::to_string(e.dst_port) + "\n";
  }
  return out;
}

size_t Graph::ApproxBytes() const {
  size_t bytes = sizeof(Graph);
  for (const auto& el : elements_) {
    bytes += sizeof(Element) + el->name().size() +
             (el->num_inputs() + el->num_outputs()) * sizeof(Element::PortRef) + 64;
  }
  return bytes;
}

std::vector<std::string> Graph::ElementNames() const {
  std::vector<std::string> names;
  names.reserve(elements_.size());
  for (const auto& el : elements_) {
    names.push_back(el->name());
  }
  return names;
}

}  // namespace p2
