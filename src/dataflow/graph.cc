#include "src/dataflow/graph.h"

namespace p2 {

void Graph::Connect(Element* src, int out_port, Element* dst, int in_port) {
  src->BindOutput(out_port, dst, in_port);
  dst->BindInput(in_port, src, out_port);
  edges_.push_back(Edge{src, out_port, dst, in_port});
  ++num_edges_;
}

std::string Graph::Dump() const {
  std::string out;
  for (const auto& el : elements_) {
    out += "element " + el->name() + "\n";
  }
  for (const Edge& e : edges_) {
    out += e.src->name() + "." + std::to_string(e.src_port) + " -> " + e.dst->name() + "." +
           std::to_string(e.dst_port) + "\n";
  }
  return out;
}

size_t Graph::ApproxBytes() const {
  size_t bytes = sizeof(Graph);
  for (const auto& el : elements_) {
    bytes += sizeof(Element) + el->name().size() +
             (el->num_inputs() + el->num_outputs()) * sizeof(Element::PortRef) + 64;
  }
  return bytes;
}

std::vector<std::string> Graph::ElementNames() const {
  std::vector<std::string> names;
  names.reserve(elements_.size());
  for (const auto& el : elements_) {
    names.push_back(el->name());
  }
  return names;
}

}  // namespace p2
