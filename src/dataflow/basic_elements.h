// General-purpose "glue" elements (§3.4): queues, (de)multiplexers,
// duplicators, schedulers, sources and sinks.
#ifndef P2_DATAFLOW_BASIC_ELEMENTS_H_
#define P2_DATAFLOW_BASIC_ELEMENTS_H_

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dataflow/element.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"

namespace p2 {

// Bounded FIFO queue: push input (port 0), pull output (port 0). Blocks on
// both sides with callback signaling per the paper's design.
class QueueElement : public Element {
 public:
  QueueElement(std::string name, size_t capacity)
      : Element(std::move(name)), capacity_(capacity) {}

  int Push(int port, const TuplePtr& t, const Callback& cb) override;
  TuplePtr Pull(int port, const Callback& cb) override;

  size_t size() const { return q_.size(); }
  uint64_t dropped() const { return dropped_; }
  void set_obs_dropped(obs::Counter* c) { obs_dropped_ = c; }

 private:
  size_t capacity_;
  std::deque<TuplePtr> q_;
  Callback blocked_pusher_;
  Callback blocked_puller_;
  uint64_t dropped_ = 0;
  obs::Counter* obs_dropped_ = nullptr;
};

// Active scheduler: pulls its input and pushes downstream, `period` seconds
// apart (0 = drain continuously whenever tuples are available, via deferred
// tasks so handlers stay run-to-completion).
class TimedPullPush : public Element {
 public:
  TimedPullPush(std::string name, Executor* executor, double period)
      : Element(std::move(name)), executor_(executor), period_(period) {}
  ~TimedPullPush() override;

  // Begins scheduling. Must be called once after wiring.
  void Start();

 private:
  void RunOnce();
  void Arm(double delay);

  Executor* executor_;
  double period_;
  bool armed_ = false;
  TimerId timer_ = kInvalidTimer;
  std::vector<TuplePtr> batch_;  // continuous-mode drain buffer, reused
};

// Routes tuples to an output port chosen by tuple name. Dispatch is a
// SchemaId jump table (a flat vector indexed by the tuple's interned
// schema), not a string lookup. Unmatched tuples go to the default port if
// one was set, else are counted and dropped.
class DemuxByName : public Element {
 public:
  explicit DemuxByName(std::string name) : Element(std::move(name)) {}

  // Returns the output port allocated for `tuple_name` (idempotent).
  int PortFor(const std::string& tuple_name);
  void SetDefaultPort(int port) { default_port_ = port; }

  int Push(int port, const TuplePtr& t, const Callback& cb) override;
  // Batched dispatch: partitions the batch by output port, then forwards
  // one sub-batch per port so downstream fan-out strands amortize
  // signaling overhead.
  int PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) override;

  uint64_t unroutable() const { return unroutable_; }
  void set_obs_unroutable(obs::Counter* c) { obs_unroutable_ = c; }

 private:
  // Jump table indexed by SchemaId; -1 = no route.
  int RouteFor(SchemaId schema) const {
    return schema < routes_.size() ? routes_[schema] : -1;
  }

  std::vector<int> routes_;
  int next_port_ = 0;
  int default_port_ = -1;
  uint64_t unroutable_ = 0;
  obs::Counter* obs_unroutable_ = nullptr;
  // Per-port partition buffers reused across PushMany calls.
  std::vector<std::vector<TuplePtr>> batch_buckets_;
};

// Duplicates each input tuple to every connected output port.
class DupElement : public Element {
 public:
  explicit DupElement(std::string name) : Element(std::move(name)) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;
  int PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) override;
};

// Many push inputs, one push output.
class MuxElement : public Element {
 public:
  explicit MuxElement(std::string name) : Element(std::move(name)) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;
  int PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) override;
};

// Terminal sink invoking a C++ callback (used for watch directives, app
// subscriptions, and tests).
class CallbackSink : public Element {
 public:
  using TupleFn = std::function<void(const TuplePtr&)>;
  CallbackSink(std::string name, TupleFn fn) : Element(std::move(name)), fn_(std::move(fn)) {}
  int Push(int port, const TuplePtr& t, const Callback& cb) override;

 private:
  TupleFn fn_;
};

// Swallows everything (explicit drop).
class DiscardElement : public Element {
 public:
  explicit DiscardElement(std::string name) : Element(std::move(name)) {}
  int Push(int, const TuplePtr&, const Callback&) override { return 1; }
};

// Entry point for tuples originating outside the graph; external code calls
// Inject() which pushes downstream.
class InjectSource : public Element {
 public:
  explicit InjectSource(std::string name) : Element(std::move(name)) {}
  int Inject(const TuplePtr& t) { return PushOut(0, t); }
};

// Emits `periodic(<local addr>, <unique id>, extras...)` every `period`
// seconds, `count` times (0 = forever), with an initial delay. Implements
// the OverLog `periodic` built-in term; `extras` carries the literal
// arguments beyond the event id (period, repeat count) so the emitted
// tuple's arity matches the rule body's predicate.
class PeriodicSource : public Element {
 public:
  PeriodicSource(std::string name, Executor* executor, Rng* rng, std::string local_addr,
                 double period, uint64_t count, double initial_delay,
                 std::vector<Value> extras);
  ~PeriodicSource() override;

  void Start();
  void Stop();

 private:
  void Fire();

  Executor* executor_;
  Rng* rng_;
  std::string local_addr_;
  double period_;
  uint64_t count_;  // 0 = unbounded
  double initial_delay_;
  std::vector<Value> extras_;
  uint64_t fired_ = 0;
  TimerId timer_ = kInvalidTimer;
};

}  // namespace p2

#endif  // P2_DATAFLOW_BASIC_ELEMENTS_H_
