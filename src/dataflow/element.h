// Dataflow elements (§2.4, §3.3).
//
// P2 executes compiled OverLog as a graph of elements in the style of the
// Click modular router, except that edges carry reference-counted immutable
// tuples rather than packets. Handoff between elements is either push
// (source invokes destination) or pull (destination invokes source), chosen
// at graph-construction time.
//
// Signaling follows the paper's design: a push returns 1 when further
// pushes are welcome and 0 when the destination is congested, in which case
// the callback passed with the push is invoked once it is acceptable to
// push again. A pull returns nullptr when no tuple is available, and the
// callback is invoked when one may be. Push deliveries themselves always
// succeed (the tuple is accepted even when 0 is returned).
#ifndef P2_DATAFLOW_ELEMENT_H_
#define P2_DATAFLOW_ELEMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

namespace obs {
class Counter;
class LogHistogram;
}  // namespace obs

class Element {
 public:
  using Callback = std::function<void()>;

  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }

  // Receives `t` on input `port`. Default: fatal (element has no push
  // inputs). Returns 1 = keep pushing, 0 = wait for cb.
  virtual int Push(int port, const TuplePtr& t, const Callback& cb);

  // Batched push: receives `ts` in order on input `port`. Elements that can
  // amortize per-tuple dispatch (demux partitioning, fan-out duplication)
  // override this; the default delivers tuple-by-tuple. Returns the AND of
  // the per-tuple signals (0 = congested, wait for cb — the tuples are
  // still accepted, matching Push semantics).
  virtual int PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb);

  // Produces a tuple from output `port`, or nullptr if blocked (cb will be
  // invoked when a retry may succeed). Default: fatal.
  virtual TuplePtr Pull(int port, const Callback& cb);

  // --- Wiring (performed by Graph) ---
  struct PortRef {
    Element* element = nullptr;
    int port = 0;
  };
  void BindOutput(int out_port, Element* dst, int dst_port);
  void BindInput(int in_port, Element* src, int src_port);

  size_t num_outputs() const { return outputs_.size(); }
  size_t num_inputs() const { return inputs_.size(); }

  // Output-side tuple counter (per element kind), bound by
  // Graph::ObserveElement when metrics are enabled; PushOut/PushOutMany
  // bump it. Null (the default) costs one predictable branch.
  void set_obs_out(obs::Counter* c) { obs_out_ = c; }

 protected:
  // Forwards downstream from `out_port`; returns the destination's signal,
  // or 1 if the port is unconnected (tuple is dropped).
  int PushOut(int out_port, const TuplePtr& t, const Callback& cb = nullptr);
  // Batched forward; one virtual dispatch for the whole vector.
  int PushOutMany(int out_port, const std::vector<TuplePtr>& ts,
                  const Callback& cb = nullptr);
  // Pulls from the upstream bound to input `in_port`.
  TuplePtr PullIn(int in_port, const Callback& cb = nullptr);

  std::vector<PortRef> outputs_;
  std::vector<PortRef> inputs_;

 private:
  std::string name_;
  obs::Counter* obs_out_ = nullptr;
};

}  // namespace p2

#endif  // P2_DATAFLOW_ELEMENT_H_
