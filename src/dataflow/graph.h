// Graph: owner of a dataflow element network.
#ifndef P2_DATAFLOW_GRAPH_H_
#define P2_DATAFLOW_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dataflow/element.h"

namespace p2 {

namespace obs {
class Registry;
}  // namespace obs

// Owns elements and records the edges between their ports. The planner
// builds one Graph per P2 node.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // Enables instrumentation: every element added after this call (Add is
  // the single construction chokepoint) gets its output counter and, for
  // kinds with internal drop/fire state, kind-specific series bound into
  // `registry` on `lane`. Call before the planner runs.
  void SetObs(obs::Registry* registry, size_t lane);

  // Takes ownership; returns a non-owning handle for wiring.
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    elements_.push_back(std::move(owned));
    if (obs_registry_ != nullptr) {
      ObserveElement(raw);
    }
    return raw;
  }

  // Connects src.out_port -> dst.in_port (both directions recorded so push
  // and pull both traverse the edge).
  void Connect(Element* src, int out_port, Element* dst, int in_port);

  size_t num_elements() const { return elements_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Rough residency of the element network (E9 memory accounting).
  size_t ApproxBytes() const;

  // Element names, in creation order (for the spec_size experiment and
  // debugging dumps).
  std::vector<std::string> ElementNames() const;

  // Human-readable dump of the element graph, one edge per line
  // ("src.port -> dst.port") — the paper's §7 introspection support.
  std::string Dump() const;

 private:
  struct Edge {
    Element* src;
    int src_port;
    Element* dst;
    int dst_port;
  };

  // Binds metric handles onto a freshly-added element (out-of-line so the
  // templated Add stays free of registry details).
  void ObserveElement(Element* e);

  std::vector<std::unique_ptr<Element>> elements_;
  std::vector<Edge> edges_;
  size_t num_edges_ = 0;
  obs::Registry* obs_registry_ = nullptr;
  size_t obs_lane_ = 0;
};

}  // namespace p2

#endif  // P2_DATAFLOW_GRAPH_H_
