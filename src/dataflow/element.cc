#include "src/dataflow/element.h"

#include "src/obs/registry.h"
#include "src/runtime/logging.h"

namespace p2 {

int Element::Push(int port, const TuplePtr& t, const Callback& cb) {
  (void)port;
  (void)t;
  (void)cb;
  P2_FATAL("element '%s' has no push input", name_.c_str());
}

int Element::PushMany(int port, const std::vector<TuplePtr>& ts, const Callback& cb) {
  int signal = 1;
  for (const TuplePtr& t : ts) {
    signal &= Push(port, t, cb);
  }
  return signal;
}

TuplePtr Element::Pull(int port, const Callback& cb) {
  (void)port;
  (void)cb;
  P2_FATAL("element '%s' has no pull output", name_.c_str());
}

void Element::BindOutput(int out_port, Element* dst, int dst_port) {
  if (outputs_.size() <= static_cast<size_t>(out_port)) {
    outputs_.resize(out_port + 1);
  }
  outputs_[out_port] = PortRef{dst, dst_port};
}

void Element::BindInput(int in_port, Element* src, int src_port) {
  if (inputs_.size() <= static_cast<size_t>(in_port)) {
    inputs_.resize(in_port + 1);
  }
  inputs_[in_port] = PortRef{src, src_port};
}

int Element::PushOut(int out_port, const TuplePtr& t, const Callback& cb) {
  if (obs_out_ != nullptr) {
    obs_out_->Inc();
  }
  if (static_cast<size_t>(out_port) >= outputs_.size() ||
      outputs_[out_port].element == nullptr) {
    return 1;  // Unconnected output: drop.
  }
  PortRef& ref = outputs_[out_port];
  return ref.element->Push(ref.port, t, cb);
}

int Element::PushOutMany(int out_port, const std::vector<TuplePtr>& ts, const Callback& cb) {
  if (obs_out_ != nullptr) {
    obs_out_->Inc(ts.size());
  }
  if (static_cast<size_t>(out_port) >= outputs_.size() ||
      outputs_[out_port].element == nullptr) {
    return 1;  // Unconnected output: drop.
  }
  PortRef& ref = outputs_[out_port];
  return ref.element->PushMany(ref.port, ts, cb);
}

TuplePtr Element::PullIn(int in_port, const Callback& cb) {
  if (static_cast<size_t>(in_port) >= inputs_.size() || inputs_[in_port].element == nullptr) {
    return nullptr;
  }
  PortRef& ref = inputs_[in_port];
  return ref.element->Pull(ref.port, cb);
}

}  // namespace p2
