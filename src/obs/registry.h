// MetricsRegistry: the runtime's introspection spine (paper §7 — P2 exposes
// dataflow state for querying; here every layer feeds named counters,
// gauges and log-scale histograms).
//
// Concurrency model matches the sharded simulator's: each lane is written
// by exactly one thread (its shard's worker, or the coordinator for lane
// 0 / the control lane), so the hot path is a relaxed atomic load+store —
// no RMW contention, a few ns — and fleet-wide totals are produced by
// merge-on-read over all lanes. Handle registration is the cold path and
// takes a mutex; handles are stable pointers (deque storage) valid for the
// registry's lifetime.
//
// Metric names carry their labels Prometheus-style, e.g.
//   p2_rule_fires_total{rule="lookup+succ"}
// and identical names in different lanes (or bound by different nodes on
// the same shard) share one logical series: Snapshot() sums them. That
// bounds cardinality by label set, not by fleet size.
#ifndef P2_OBS_REGISTRY_H_
#define P2_OBS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace p2 {
namespace obs {

// Monotone counter. Single writer per instance; relaxed non-RMW update.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Signed up/down gauge. Deltas (not Set) so lanes merge by summation —
// e.g. per-shard row-count gauges add up to the fleet total.
class Gauge {
 public:
  void Add(int64_t d) {
    v_.store(v_.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log-scale histogram: 64 power-of-two buckets. Observe(v) lands in bucket
// floor(log2(v)) (v=0 counts in bucket 0), so one array covers nanoseconds
// through hours with constant cost: or, clz, two relaxed stores.
class LogHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t v) {
    size_t b = 63 - static_cast<size_t>(__builtin_clzll(v | 1));
    buckets_[b].store(buckets_[b].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    count_.store(count_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Merged view of a registry at one instant. Maps are ordered so renderings
// (and tests) are deterministic.
struct Snapshot {
  struct Hist {
    std::array<uint64_t, LogHistogram::kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Hist> histograms;
};

class Registry {
 public:
  // One lane per writer thread. The sharded sim uses shard lanes plus the
  // implicit rule that the coordinator only writes while shards are parked.
  explicit Registry(size_t lanes = 1);
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  size_t lanes() const { return lanes_.size(); }

  // Handle lookup-or-create. Cold path (mutex); the returned pointer is
  // stable and lock-free to update. `lane` clamps into range so callers can
  // pass Executor::shard_index() unchecked.
  Counter* GetCounter(size_t lane, const std::string& name);
  Gauge* GetGauge(size_t lane, const std::string& name);
  LogHistogram* GetHistogram(size_t lane, const std::string& name);

  // Collectors contribute externally-held series (e.g. the reliable-channel
  // pool) at snapshot time, on the snapshotting thread.
  using Collector = std::function<void(Snapshot*)>;
  void AddCollector(Collector fn);

  // Sums every lane (and runs collectors). Safe while writers run — values
  // are atomics — but exact only when they are parked (end of run, window
  // barriers).
  Snapshot TakeSnapshot() const;

  // Prometheus text exposition of TakeSnapshot(): `# TYPE` line per metric
  // family, series sorted by name, log-histograms as cumulative
  // `_bucket{le=...}` / `_sum` / `_count`.
  std::string PrometheusText() const;

 private:
  struct Lane {
    std::unordered_map<std::string, Counter*> counters;
    std::unordered_map<std::string, Gauge*> gauges;
    std::unordered_map<std::string, LogHistogram*> histograms;
    std::deque<Counter> counter_store;
    std::deque<Gauge> gauge_store;
    std::deque<LogHistogram> histogram_store;
  };

  mutable std::mutex mu_;
  std::vector<Lane> lanes_;
  std::vector<Collector> collectors_;
};

// Renders a snapshot (the shared core of Registry::PrometheusText, also
// used for collector-only snapshots in tests).
std::string RenderPrometheus(const Snapshot& snap);

}  // namespace obs
}  // namespace p2

#endif  // P2_OBS_REGISTRY_H_
