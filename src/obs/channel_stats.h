// ChannelStatsPool: one aggregation path for reliable-channel and
// send-failure counters across a fleet, including channels whose nodes have
// already been killed or churned out.
//
// Before this existed, every harness (ScenarioNet, ChordTestbed) kept its
// own `dead_*` accumulators and hand-rolled the live+dead merge loop. The
// pool owns the retired totals and takes a callback that folds in whatever
// is currently live, so "total fleet stats" is one call — and the same
// totals export into a metrics Registry snapshot as counters.
#ifndef P2_OBS_CHANNEL_STATS_H_
#define P2_OBS_CHANNEL_STATS_H_

#include <functional>
#include <mutex>

#include "src/harness/metrics.h"
#include "src/obs/registry.h"

namespace p2 {
namespace obs {

class ChannelStatsPool {
 public:
  // Folds a dying channel's final counters into the retired totals. Call
  // exactly once per channel, before destroying it.
  void Retire(const ReliableChannelStats& stats);
  void RetireSendFailures(const SendFailureCounters& failures);

  // The live-side halves of the totals: callbacks that MergeFrom every
  // currently-alive channel into the passed accumulator. Replaceable as the
  // owning harness's population structure changes.
  using LiveReliableFn = std::function<void(ReliableChannelStats*)>;
  using LiveFailuresFn = std::function<void(SendFailureCounters*)>;
  void SetLiveSource(LiveReliableFn reliable, LiveFailuresFn failures);

  // Retired + live, at this instant.
  ReliableChannelStats TotalReliable() const;
  SendFailureCounters TotalSendFailures() const;

  // Exports the totals into a snapshot as p2_channel_* / p2_send_fail_*
  // counters. Shaped as a Registry::Collector:
  //   registry.AddCollector([pool](Snapshot* s) { pool->Collect(s); });
  void Collect(Snapshot* snap) const;

 private:
  mutable std::mutex mu_;
  ReliableChannelStats retired_;
  SendFailureCounters retired_failures_;
  LiveReliableFn live_reliable_;
  LiveFailuresFn live_failures_;
};

}  // namespace obs
}  // namespace p2

#endif  // P2_OBS_CHANNEL_STATS_H_
