// OverLog `watch(pred)` support (paper §7: tuple-level tracing as a
// language feature, not a debugger bolted on).
//
// The planner splices a WatchTapElement onto every dataflow edge that
// produces a watched predicate (rule heads, table-aggregate outputs) and
// subscribes to its arrivals, so each tuple is logged with the node's
// virtual timestamp, its address, the tap point and the producing rule's
// chain label. Output goes through one process-wide sink: stderr by
// default, redirectable for golden tests and the CLI.
#ifndef P2_OBS_WATCH_H_
#define P2_OBS_WATCH_H_

#include <functional>
#include <string>

#include "src/dataflow/element.h"
#include "src/runtime/executor.h"

namespace p2 {
namespace obs {

using WatchSinkFn = std::function<void(const std::string& line)>;

// Replaces the process-wide watch sink; an empty function restores the
// stderr default. Single-threaded setup only (tests, CLI startup).
void SetWatchSink(WatchSinkFn fn);

// Sends one already-formatted line to the active sink.
void EmitWatch(const std::string& line);

// "watch t=<vt> node=<addr> point=<point> label=<label> <tuple>" — virtual
// time, so the line stream is deterministic for a fixed seed.
std::string FormatWatchLine(double vt, const std::string& node, const char* point,
                            const std::string& label, const Tuple& t);

}  // namespace obs

// Pass-through element logging every tuple that crosses it. The planner
// inserts one per watched rule-head edge, immediately before head routing.
class WatchTapElement : public Element {
 public:
  WatchTapElement(std::string name, Executor* executor, std::string node_addr,
                  const char* point, std::string label)
      : Element(std::move(name)),
        executor_(executor),
        node_addr_(std::move(node_addr)),
        point_(point),
        label_(std::move(label)) {}

  int Push(int port, const TuplePtr& t, const Callback& cb) override {
    (void)port;
    obs::EmitWatch(
        obs::FormatWatchLine(executor_->Now(), node_addr_, point_, label_, *t));
    return PushOut(0, t, cb);
  }

 private:
  Executor* executor_;
  std::string node_addr_;
  const char* point_;
  std::string label_;
};

}  // namespace p2

#endif  // P2_OBS_WATCH_H_
