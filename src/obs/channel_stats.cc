#include "src/obs/channel_stats.h"

namespace p2 {
namespace obs {

void ChannelStatsPool::Retire(const ReliableChannelStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.MergeFrom(stats);
}

void ChannelStatsPool::RetireSendFailures(const SendFailureCounters& failures) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_failures_.MergeFrom(failures);
}

void ChannelStatsPool::SetLiveSource(LiveReliableFn reliable, LiveFailuresFn failures) {
  std::lock_guard<std::mutex> lock(mu_);
  live_reliable_ = std::move(reliable);
  live_failures_ = std::move(failures);
}

ReliableChannelStats ChannelStatsPool::TotalReliable() const {
  ReliableChannelStats total;
  LiveReliableFn live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = retired_;
    live = live_reliable_;
  }
  if (live) {
    live(&total);
  }
  return total;
}

SendFailureCounters ChannelStatsPool::TotalSendFailures() const {
  SendFailureCounters total;
  LiveFailuresFn live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = retired_failures_;
    live = live_failures_;
  }
  if (live) {
    live(&total);
  }
  return total;
}

void ChannelStatsPool::Collect(Snapshot* snap) const {
  ReliableChannelStats r = TotalReliable();
  SendFailureCounters f = TotalSendFailures();
  auto& c = snap->counters;
  c["p2_channel_data_frames_sent_total"] += r.data_frames_sent;
  c["p2_channel_retransmits_total"] += r.retransmits;
  c["p2_channel_retransmit_bytes_total"] += r.retransmit_bytes;
  c["p2_channel_timeouts_total"] += r.timeouts;
  c["p2_channel_fast_retransmits_total"] += r.fast_retransmits;
  c["p2_channel_acks_sent_total"] += r.acks_sent;
  c["p2_channel_acks_received_total"] += r.acks_received;
  c["p2_channel_duplicates_received_total"] += r.duplicates_received;
  c["p2_channel_queue_drops_total"] += r.queue_drops;
  c["p2_channel_expired_total"] += r.expired;
  c["p2_channel_reorder_drops_total"] += r.reorder_drops;
  c["p2_channel_stream_resets_total"] += r.stream_resets;
  c["p2_send_fail_oversize_total"] += f.oversize;
  c["p2_send_fail_transient_total"] += f.transient;
  c["p2_send_fail_other_total"] += f.other;
  c["p2_send_fail_short_writes_total"] += f.short_writes;
  // High watermark is a max, not a sum — export as a gauge (max across
  // collectors would need per-key semantics; one pool per snapshot in
  // practice, so assignment is correct here).
  int64_t hwm = static_cast<int64_t>(r.queue_high_watermark);
  int64_t& slot = snap->gauges["p2_channel_queue_high_watermark"];
  if (hwm > slot) {
    slot = hwm;
  }
}

}  // namespace obs
}  // namespace p2
