// TraceLog: Chrome trace_event export of the sharded simulator's execution
// — shard windows, barrier waits, control-timeline actions — loadable in
// chrome://tracing / Perfetto (`p2run --trace-out f.json`).
//
// Same single-writer-per-lane discipline as the metrics registry: each
// shard thread appends complete 'X' (duration) events to its own bounded
// lane; the coordinator lane is the last one. Overflow drops the event and
// counts it, so tracing can stay on for arbitrarily long runs without
// unbounded memory.
#ifndef P2_OBS_TRACE_H_
#define P2_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace p2 {
namespace obs {

struct TraceEvent {
  const char* name = "";  // static strings only (no per-event allocation)
  double ts_us = 0;       // wall microseconds since TraceLog creation
  double dur_us = 0;
  double vt_begin = 0;    // virtual-time window the event covered
  double vt_end = 0;
  uint64_t arg = 0;       // name-specific payload (events run, queue depth...)
};

class TraceLog {
 public:
  explicit TraceLog(size_t lanes, size_t capacity_per_lane = 1 << 16);
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  size_t lanes() const { return lanes_.size(); }

  // Wall microseconds since construction, from the steady clock — the
  // timestamp base every event uses.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  // Appends to `lane` (clamped). Single writer per lane; drops and counts
  // when the lane is full.
  void Add(size_t lane, const TraceEvent& ev);

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Chrome trace_event JSON array: one complete event per record, pid 1,
  // tid = lane (shards), the coordinator lane last. Call with writers
  // parked (end of run).
  std::string ToChromeJson() const;

 private:
  std::chrono::steady_clock::time_point t0_;
  size_t capacity_;
  std::vector<std::vector<TraceEvent>> lanes_;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace obs
}  // namespace p2

#endif  // P2_OBS_TRACE_H_
