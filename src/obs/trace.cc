#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace p2 {
namespace obs {

TraceLog::TraceLog(size_t lanes, size_t capacity_per_lane)
    : t0_(std::chrono::steady_clock::now()),
      capacity_(capacity_per_lane),
      lanes_(lanes == 0 ? 1 : lanes) {
  for (auto& l : lanes_) {
    l.reserve(256);
  }
}

void TraceLog::Add(size_t lane, const TraceEvent& ev) {
  std::vector<TraceEvent>& l = lanes_[lane % lanes_.size()];
  if (l.size() >= capacity_) {
    dropped_.store(dropped_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    return;
  }
  l.push_back(ev);
}

std::string TraceLog::ToChromeJson() const {
  std::string out = "[\n";
  char buf[256];
  bool first = true;
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    for (const TraceEvent& ev : lanes_[lane]) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%zu,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"vt_begin\":%.6f,"
                    "\"vt_end\":%.6f,\"n\":%" PRIu64 "}}",
                    ev.name, lane, ev.ts_us, ev.dur_us, ev.vt_begin, ev.vt_end,
                    ev.arg);
      out += buf;
    }
  }
  out += "\n]\n";
  return out;
}

}  // namespace obs
}  // namespace p2
