#include "src/obs/watch.h"

#include <cstdio>

namespace p2 {
namespace obs {

namespace {
WatchSinkFn& SinkSlot() {
  static WatchSinkFn sink;
  return sink;
}
}  // namespace

void SetWatchSink(WatchSinkFn fn) { SinkSlot() = std::move(fn); }

void EmitWatch(const std::string& line) {
  WatchSinkFn& sink = SinkSlot();
  if (sink) {
    sink(line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

std::string FormatWatchLine(double vt, const std::string& node, const char* point,
                            const std::string& label, const Tuple& t) {
  char head[96];
  std::snprintf(head, sizeof(head), "watch t=%.6f ", vt);
  std::string out = head;
  out += "node=" + node + " point=";
  out += point;
  out += " label=" + label + " " + t.ToString();
  return out;
}

}  // namespace obs
}  // namespace p2
