#include "src/obs/registry.h"

#include <cinttypes>
#include <cstdio>
#include <set>

namespace p2 {
namespace obs {

Registry::Registry(size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {}

Counter* Registry::GetCounter(size_t lane, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Lane& l = lanes_[lane % lanes_.size()];
  auto it = l.counters.find(name);
  if (it != l.counters.end()) {
    return it->second;
  }
  l.counter_store.emplace_back();
  Counter* c = &l.counter_store.back();
  l.counters.emplace(name, c);
  return c;
}

Gauge* Registry::GetGauge(size_t lane, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Lane& l = lanes_[lane % lanes_.size()];
  auto it = l.gauges.find(name);
  if (it != l.gauges.end()) {
    return it->second;
  }
  l.gauge_store.emplace_back();
  Gauge* g = &l.gauge_store.back();
  l.gauges.emplace(name, g);
  return g;
}

LogHistogram* Registry::GetHistogram(size_t lane, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Lane& l = lanes_[lane % lanes_.size()];
  auto it = l.histograms.find(name);
  if (it != l.histograms.end()) {
    return it->second;
  }
  l.histogram_store.emplace_back();
  LogHistogram* h = &l.histogram_store.back();
  l.histograms.emplace(name, h);
  return h;
}

void Registry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snap;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Lane& l : lanes_) {
      for (const auto& [name, c] : l.counters) {
        snap.counters[name] += c->value();
      }
      for (const auto& [name, g] : l.gauges) {
        snap.gauges[name] += g->value();
      }
      for (const auto& [name, h] : l.histograms) {
        Snapshot::Hist& out = snap.histograms[name];
        for (size_t i = 0; i < LogHistogram::kBuckets; ++i) {
          out.buckets[i] += h->bucket(i);
        }
        out.count += h->count();
        out.sum += h->sum();
      }
    }
    collectors = collectors_;
  }
  for (const Collector& fn : collectors) {
    fn(&snap);
  }
  return snap;
}

namespace {

// Metric family = name up to the label block; TYPE lines are emitted once
// per family (series are sorted, so families are contiguous).
std::string FamilyOf(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void AppendSeries(std::string* out, const std::string& family, const char* type,
                  std::set<std::string>* emitted) {
  if (emitted->insert(family).second) {
    *out += "# TYPE " + family + " " + type + "\n";
  }
}

// Splices extra labels into a series name: name{a="b"} + le=... keeps the
// existing label block.
std::string WithLabel(const std::string& name, const std::string& label) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "{" + label + "}";
  }
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

// name{a="b"} + "_bucket" must become name_bucket{a="b"} — the suffix
// belongs to the family, before any label block.
std::string WithSuffix(const std::string& name, const char* suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + suffix;
  }
  std::string out = name;
  out.insert(brace, suffix);
  return out;
}

}  // namespace

std::string RenderPrometheus(const Snapshot& snap) {
  std::string out;
  char buf[64];
  std::set<std::string> emitted;
  for (const auto& [name, v] : snap.counters) {
    AppendSeries(&out, FamilyOf(name), "counter", &emitted);
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out += name + buf;
  }
  for (const auto& [name, v] : snap.gauges) {
    AppendSeries(&out, FamilyOf(name), "gauge", &emitted);
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", v);
    out += name + buf;
  }
  for (const auto& [name, h] : snap.histograms) {
    AppendSeries(&out, FamilyOf(name), "histogram", &emitted);
    // Cumulative buckets, non-empty ones only (64 mostly-zero lines per
    // series would drown the exposition); le is the bucket's inclusive
    // upper bound 2^(i+1)-1.
    uint64_t cum = 0;
    for (size_t i = 0; i < LogHistogram::kBuckets; ++i) {
      if (h.buckets[i] == 0) {
        continue;
      }
      cum += h.buckets[i];
      uint64_t le = i >= 63 ? UINT64_MAX : (uint64_t{2} << i) - 1;
      std::snprintf(buf, sizeof(buf), "le=\"%" PRIu64 "\"", le);
      std::string series = WithLabel(WithSuffix(name, "_bucket"), buf);
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cum);
      out += series + buf;
    }
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cum);
    out += WithLabel(WithSuffix(name, "_bucket"), "le=\"+Inf\"") + buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.sum);
    out += WithSuffix(name, "_sum") + buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
    out += WithSuffix(name, "_count") + buf;
  }
  return out;
}

std::string Registry::PrometheusText() const { return RenderPrometheus(TakeSnapshot()); }

}  // namespace obs
}  // namespace p2
