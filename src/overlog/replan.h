// Adaptive join re-planning from live table statistics.
//
// The planner freezes join orders at install time from static priors
// (tables are empty when plans are built). For every cost-ordered chain
// with at least two table joins it additionally lowers up to two alternate
// join orders behind a VariantSwitchElement — fully built element chains,
// like PEL programs lowered once at plan time — and registers the chain
// here with, per variant, the probe sequence (table, index handle,
// pk-coverage, static prior).
//
// Periodically (p2run --replan-interval, gated on a table-delta count
// threshold so quiet nodes pay nothing) the manager re-costs every variant
// under live DistinctKeys statistics with the same sequential cardinality
// model the planner uses, and flips the switch when another variant is
// cheaper by more than a hysteresis factor. Swaps are counted per node
// (p2_replan_swaps_total) and logged with both orders.
#ifndef P2_OVERLOG_REPLAN_H_
#define P2_OVERLOG_REPLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dataflow/rel_elements.h"
#include "src/table/table.h"

namespace p2 {

namespace obs {
class Counter;
class Registry;
}  // namespace obs

// One equality probe in a variant's join sequence, pre-resolved at plan
// time so the replan loop never compares column sets.
struct ReplanProbe {
  Table* table = nullptr;
  int index_handle = -1;  // Table::IndexHandle at plan time; -1 = unindexed
  bool pk_covered = false;
  double static_est = 1.0;
};

struct ReplanVariant {
  std::vector<ReplanProbe> probes;
  std::string order;  // predicate names in join order, for logs/explain
};

struct ReplanEntry {
  std::string label;  // the planner's chain label
  VariantSwitchElement* sw = nullptr;
  std::vector<ReplanVariant> variants;
};

class ReplanManager {
 public:
  void AddEntry(ReplanEntry entry) { entries_.push_back(std::move(entry)); }

  // Re-costs every registered chain and swaps switches where the live
  // statistics say another variant is cheaper (beyond hysteresis).
  // Returns the number of swaps performed this pass.
  size_t Evaluate();

  size_t entries() const { return entries_.size(); }
  uint64_t swaps() const { return swaps_; }

  void BindObs(obs::Registry* registry, size_t lane);

  // Estimated probe work for one variant under live statistics: the sum of
  // index probes weighted by the running candidate cardinality.
  static double VariantCost(const ReplanVariant& v);

  // A variant must beat the active one by this factor to trigger a swap —
  // estimates are coarse, and flapping between near-equal orders would
  // churn caches for nothing.
  static constexpr double kHysteresis = 1.25;

 private:
  std::vector<ReplanEntry> entries_;
  uint64_t swaps_ = 0;
  obs::Counter* obs_swaps_ = nullptr;
};

}  // namespace p2

#endif  // P2_OVERLOG_REPLAN_H_
