#include "src/overlog/replan.h"

#include <algorithm>

#include "src/obs/registry.h"
#include "src/runtime/logging.h"

namespace p2 {

void ReplanManager::BindObs(obs::Registry* registry, size_t lane) {
  obs_swaps_ = registry->GetCounter(lane, "p2_replan_swaps_total");
}

double ReplanManager::VariantCost(const ReplanVariant& v) {
  // Sequential cardinality model, same shape as the planner's greedy
  // ordering: each probe costs the current candidate count, and multiplies
  // it by the probe's live fanout.
  double candidates = 1.0;
  double cost = 0.0;
  for (const ReplanProbe& p : v.probes) {
    double fanout = p.table->LiveFanoutAt(p.index_handle, p.pk_covered, p.static_est);
    cost += candidates * std::max(fanout, 1.0);
    candidates *= std::max(fanout, 1e-6);
  }
  return cost;
}

size_t ReplanManager::Evaluate() {
  size_t pass_swaps = 0;
  for (ReplanEntry& entry : entries_) {
    if (entry.variants.size() < 2 || entry.sw == nullptr) {
      continue;
    }
    int active = entry.sw->active();
    int best = active;
    double active_cost = VariantCost(entry.variants[static_cast<size_t>(active)]);
    double best_cost = active_cost;
    for (size_t i = 0; i < entry.variants.size(); ++i) {
      double cost = VariantCost(entry.variants[i]);
      if (cost < best_cost) {
        best = static_cast<int>(i);
        best_cost = cost;
      }
    }
    if (best != active && active_cost > best_cost * kHysteresis) {
      P2_LOG(LogLevel::kInfo, "replan %s: swap variant %d -> %d [%s -> %s] cost %.1f -> %.1f",
             entry.label.c_str(), active, best,
             entry.variants[static_cast<size_t>(active)].order.c_str(),
             entry.variants[static_cast<size_t>(best)].order.c_str(), active_cost, best_cost);
      entry.sw->set_active(best);
      ++swaps_;
      ++pass_swaps;
      if (obs_swaps_ != nullptr) {
        obs_swaps_->Inc();
      }
    }
  }
  return pass_swaps;
}

}  // namespace p2
