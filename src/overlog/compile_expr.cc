#include "src/overlog/compile_expr.h"

#include "src/pel/builtins.h"

namespace p2 {

bool CompileExpr(const Expr& e, const VarEnv& env, PelProgram* prog, std::string* err) {
  switch (e.kind) {
    case ExprKind::kVar: {
      if (e.name == "_") {
        *err = "don't-care variable used in an expression";
        return false;
      }
      auto it = env.find(e.name);
      if (it == env.end()) {
        *err = "unbound variable '" + e.name + "'";
        return false;
      }
      prog->Emit(PelOp::kPushField, static_cast<uint32_t>(it->second));
      return true;
    }
    case ExprKind::kConst:
      prog->Emit(PelOp::kPushConst, prog->AddConst(e.value));
      return true;
    case ExprKind::kBinary: {
      if (!CompileExpr(*e.args[0], env, prog, err) ||
          !CompileExpr(*e.args[1], env, prog, err)) {
        return false;
      }
      static const std::unordered_map<std::string, PelOp> kOps = {
          {"+", PelOp::kAdd}, {"-", PelOp::kSub}, {"*", PelOp::kMul},
          {"/", PelOp::kDiv}, {"%", PelOp::kMod}, {"<<", PelOp::kShl},
          {"==", PelOp::kEq}, {"!=", PelOp::kNe}, {"<", PelOp::kLt},
          {"<=", PelOp::kLe}, {">", PelOp::kGt},  {">=", PelOp::kGe},
          {"&&", PelOp::kAnd}, {"||", PelOp::kOr},
      };
      auto it = kOps.find(e.name);
      if (it == kOps.end()) {
        *err = "unknown operator '" + e.name + "'";
        return false;
      }
      prog->Emit(it->second);
      return true;
    }
    case ExprKind::kUnary: {
      if (!CompileExpr(*e.args[0], env, prog, err)) {
        return false;
      }
      if (e.name == "-") {
        prog->Emit(PelOp::kNeg);
      } else if (e.name == "!") {
        prog->Emit(PelOp::kNot);
      } else {
        *err = "unknown unary operator '" + e.name + "'";
        return false;
      }
      return true;
    }
    case ExprKind::kCall: {
      const PelBuiltin* b = FindPelBuiltin(e.name);
      if (b == nullptr) {
        *err = "unknown builtin '" + e.name + "'";
        return false;
      }
      if (static_cast<int>(e.args.size()) != b->arity) {
        *err = "builtin '" + e.name + "' expects " + std::to_string(b->arity) + " args";
        return false;
      }
      for (const ExprPtr& a : e.args) {
        if (!CompileExpr(*a, env, prog, err)) {
          return false;
        }
      }
      prog->Emit(b->op);
      return true;
    }
    case ExprKind::kRange: {
      for (int i = 0; i < 3; ++i) {
        if (!CompileExpr(*e.args[i], env, prog, err)) {
          return false;
        }
      }
      PelOp op = e.lo_open ? (e.hi_open ? PelOp::kInOO : PelOp::kInOC)
                           : (e.hi_open ? PelOp::kInCO : PelOp::kInCC);
      prog->Emit(op);
      return true;
    }
    case ExprKind::kAgg:
      *err = "aggregate expression outside rule head";
      return false;
  }
  *err = "unhandled expression kind";
  return false;
}

void CollectVars(const Expr& e, std::vector<std::string>* out) {
  switch (e.kind) {
    case ExprKind::kVar:
      if (e.name != "_") {
        out->push_back(e.name);
      }
      return;
    case ExprKind::kAgg:
      if (e.agg_var != "*") {
        out->push_back(e.agg_var);
      }
      return;
    case ExprKind::kConst:
      return;
    default:
      for (const ExprPtr& a : e.args) {
        CollectVars(*a, out);
      }
  }
}

bool ExprBound(const Expr& e, const VarEnv& env) {
  std::vector<std::string> vars;
  CollectVars(e, &vars);
  for (const std::string& v : vars) {
    if (env.find(v) == env.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace p2
