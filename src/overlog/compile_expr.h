// Expression compiler: OverLog expression ASTs -> PEL byte code.
//
// Emission is in postfix stack form (the natural shape of an AST walk,
// with constants deduplicated into the program's pool); PelProgram::Lower
// then compiles it once into the register form the VM executes, fusing
// constant/field loads into the instructions that consume them. The
// dataflow elements trigger lowering at plan time, so no per-tuple work
// remains.
#ifndef P2_OVERLOG_COMPILE_EXPR_H_
#define P2_OVERLOG_COMPILE_EXPR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/overlog/ast.h"
#include "src/pel/program.h"

namespace p2 {

// Maps rule variables to field positions in the current intermediate tuple
// (the concatenation of the event's fields and all joined table rows).
using VarEnv = std::unordered_map<std::string, size_t>;

// Appends code evaluating `e` to `prog`. Fails (with message) on unbound
// variables, unknown builtins, arity mismatches, or aggregates (which are
// handled by the planner, not the expression compiler).
bool CompileExpr(const Expr& e, const VarEnv& env, PelProgram* prog, std::string* err);

// Collects variable names referenced by `e` (in first-appearance order,
// with duplicates).
void CollectVars(const Expr& e, std::vector<std::string>* out);

// True if every variable in `e` is bound in `env`.
bool ExprBound(const Expr& e, const VarEnv& env);

}  // namespace p2

#endif  // P2_OVERLOG_COMPILE_EXPR_H_
