#include "src/overlog/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <unordered_set>

#include "src/dataflow/basic_elements.h"
#include "src/dataflow/rel_elements.h"
#include "src/obs/watch.h"
#include "src/overlog/compile_expr.h"
#include "src/p2/node.h"
#include "src/runtime/logging.h"

namespace p2 {
namespace {

struct AggInfo {
  bool present = false;
  size_t head_position = 0;
  AggKind kind = AggKind::kMin;
  std::string var;  // "*" for count<*>
};

bool AggKindFromName(const std::string& name, AggKind* out) {
  if (name == "min") {
    *out = AggKind::kMin;
  } else if (name == "max") {
    *out = AggKind::kMax;
  } else if (name == "count") {
    *out = AggKind::kCount;
  } else if (name == "sum") {
    *out = AggKind::kSum;
  } else if (name == "avg") {
    *out = AggKind::kAvg;
  } else {
    return false;
  }
  return true;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

std::string ColsToString(const std::vector<size_t>& cols) {
  std::string out = "[";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += std::to_string(cols[i]);
  }
  return out + "]";
}

std::string EstToString(double est) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", est);
  return buf;
}

// How a rule variant is driven.
enum class TriggerKind { kPeriodic, kStream, kDeltaInsert, kDeltaRemove };

// True if evaluating `e` twice can give different results (randomness,
// wall-clock). Cost-based reordering changes how many times each body term
// is evaluated per event, which is only sound for pure expressions —
// e.g. gossip's "pick member with max<R>, R := f_rand()" needs one draw
// per joined row, exactly where the rule text puts the assignment.
bool ExprVolatile(const Expr& e) {
  if (e.kind == ExprKind::kCall &&
      (e.name == "f_rand" || e.name == "f_randInt" || e.name == "f_coinFlip" ||
       e.name == "f_now")) {
    return true;
  }
  for (const ExprPtr& a : e.args) {
    if (a != nullptr && ExprVolatile(*a)) {
      return true;
    }
  }
  return false;
}

bool BodyHasVolatileTerm(const RuleAst& rule) {
  for (const BodyTerm& term : rule.body) {
    if (std::holds_alternative<AssignAst>(term)) {
      if (ExprVolatile(*std::get<AssignAst>(term).expr)) {
        return true;
      }
    } else if (std::holds_alternative<ExprPtr>(term)) {
      if (ExprVolatile(*std::get<ExprPtr>(term))) {
        return true;
      }
    }
  }
  return false;
}

// A remove chain deletes the head tuple a retracted body row once derived.
// Without per-derivation support counting that is only sound when the head
// tuple uniquely determines the whole derivation — otherwise a head row
// with several supports dies when ANY one of them is retracted (e.g.
// Chord's pingNode(NI,SI) :- succ(NI,S,SI) projects away S, so one evicted
// succ row must NOT stop pings that other succ rows still justify). Safe
// iff every positive body-predicate argument is a constant or a variable
// that reappears in the head, and nothing in the body is volatile.
bool RemoveChainSafe(const RuleAst& rule) {
  if (BodyHasVolatileTerm(rule)) {
    return false;
  }
  std::unordered_set<std::string> head_vars;
  for (const ExprPtr& a : rule.head.args) {
    if (a->kind == ExprKind::kVar) {
      head_vars.insert(a->name);
    }
  }
  for (const BodyTerm& term : rule.body) {
    if (!std::holds_alternative<PredicateAst>(term)) {
      continue;
    }
    const PredicateAst& p = std::get<PredicateAst>(term);
    if (p.negated) {
      continue;  // anti-joins contribute no support row to retract
    }
    for (const ExprPtr& a : p.args) {
      if (a->kind == ExprKind::kConst) {
        continue;
      }
      if (a->kind == ExprKind::kVar && a->name != "_" && head_vars.count(a->name) > 0) {
        continue;
      }
      return false;
    }
  }
  return true;
}

}  // namespace

// Plans all the rules of one program into a node (friend of P2Node).
// Method-per-concern; the heavy lifting is PlanRuleVariant.
class PlanBuilder {
 public:
  PlanBuilder(const ProgramAst& program, P2Node* node)
      : program_(program),
        node_(node),
        graph_(node->graph_),
        semi_naive_(node->planner_mode_ == PlannerMode::kSemiNaive),
        counting_(semi_naive_ && node->counting_),
        replan_(semi_naive_ && node->replan_interval_s_ > 0) {}

  bool Run(std::string* err) {
    explain_ += std::string("plan mode=") + (semi_naive_ ? "semi-naive" : "legacy");
    if (semi_naive_) {
      explain_ += counting_ ? " counting=on" : " counting=off";
    }
    explain_ += "\n";
    // Watched predicates: the program's watch() clauses plus any requested
    // at node construction (p2run --watch). Rule plans splice head taps for
    // these as they are built, so collect the set first.
    for (const std::string& w : program_.watches) {
      watched_.insert(w);
    }
    for (const std::string& w : node_->watches_) {
      watched_.insert(w);
    }
    if (!CreateTables(err)) {
      return false;
    }
    if (counting_) {
      FindRecursiveTables();
    }
    for (const RuleAst& rule : program_.rules) {
      if (rule.IsFact()) {
        if (!InstallFact(rule, err)) {
          return false;
        }
        continue;
      }
      if (!PlanRule(rule, err)) {
        return false;
      }
    }
    // Arrival-side taps: every watched tuple this node sees locally —
    // stored into its table ("store") or delivered as a stream event
    // ("recv") — is logged, covering tuples that arrive off the wire and
    // were derived by some other node's rules.
    for (const std::string& w : watched_) {
      const char* point = node_->GetTable(w) != nullptr ? "store" : "recv";
      Executor* executor = node_->executor_;
      std::string addr = node_->addr_;
      node_->Subscribe(w, [executor, addr, point, w](const TuplePtr& t) {
        obs::EmitWatch(obs::FormatWatchLine(executor->Now(), addr, point, w, *t));
      });
    }
    node_->plan_explain_ += explain_;
    return true;
  }

 private:
  PelEnv MakePelEnv() {
    return PelEnv{node_->executor_, &node_->rng_, &node_->addr_};
  }

  std::string Gensym(const std::string& base) {
    return base + "#" + std::to_string(gensym_++);
  }

  // Marks every materialized table that can transitively derive itself
  // through rule dependencies (body table -> materialized head, over any
  // rule shape — pure-table, event-driven, or aggregate, since deltas
  // propagate through all of them). Counting excludes such heads: a
  // retraction that re-derives its own support would oscillate.
  void FindRecursiveTables() {
    std::map<std::string, std::set<std::string>> deps;  // body table -> heads
    for (const RuleAst& rule : program_.rules) {
      if (rule.IsFact() || !program_.IsMaterialized(rule.head.name)) {
        continue;
      }
      for (const BodyTerm& term : rule.body) {
        if (!std::holds_alternative<PredicateAst>(term)) {
          continue;
        }
        const PredicateAst& p = std::get<PredicateAst>(term);
        if (program_.IsMaterialized(p.name)) {
          deps[p.name].insert(rule.head.name);
        }
      }
    }
    for (const auto& [start, unused] : deps) {
      (void)unused;
      // DFS: does `start` reach itself?
      std::set<std::string> seen;
      std::vector<std::string> stack{start};
      bool cyclic = false;
      while (!stack.empty() && !cyclic) {
        std::string at = std::move(stack.back());
        stack.pop_back();
        auto it = deps.find(at);
        if (it == deps.end()) {
          continue;
        }
        for (const std::string& next : it->second) {
          if (next == start) {
            cyclic = true;
            break;
          }
          if (seen.insert(next).second) {
            stack.push_back(next);
          }
        }
      }
      if (cyclic) {
        recursive_tables_.insert(start);
      }
    }
  }

  // Infers each relation's arity from its (consistent) use across rule
  // heads and bodies, Datalog-style. Returns 0 for relations never used.
  bool InferArity(const std::string& name, size_t* arity, std::string* err) {
    *arity = 0;
    auto consider = [&](const PredicateAst& p) {
      if (p.name != name) {
        return true;
      }
      if (*arity == 0) {
        *arity = p.args.size();
      } else if (*arity != p.args.size()) {
        *err = "relation '" + name + "' used with inconsistent arity";
        return false;
      }
      return true;
    };
    for (const RuleAst& rule : program_.rules) {
      if (!consider(rule.head)) {
        return false;
      }
      for (const BodyTerm& term : rule.body) {
        if (std::holds_alternative<PredicateAst>(term) &&
            !consider(std::get<PredicateAst>(term))) {
          return false;
        }
      }
    }
    return true;
  }

  bool CreateTables(std::string* err) {
    for (const MaterializeAst& m : program_.materializations) {
      if (node_->tables_.count(m.name) > 0) {
        *err = "table '" + m.name + "' declared twice";
        return false;
      }
      TableSpec spec;
      spec.name = m.name;
      spec.lifetime_s = m.lifetime_s;
      spec.max_size = m.max_size;
      spec.key_positions = m.key_positions;
      if (!InferArity(m.name, &spec.arity, err)) {
        return false;
      }
      auto table = std::make_unique<Table>(spec, node_->executor_);
      Table* raw = table.get();
      node_->AddTable(m.name, std::move(table));
      // Tuples named after a table that arrive as events (from the network
      // or local loop-back) are stored: demux route -> insert element.
      auto* ins = graph_.Add<InsertElement>(Gensym("insert:" + m.name), raw);
      graph_.Connect(node_->demux_, node_->demux_->PortFor(m.name), ins, 0);
    }
    return true;
  }

  bool InstallFact(const RuleAst& rule, std::string* err) {
    Table* table = FindTable(rule.head.name);
    if (table == nullptr) {
      *err = "fact for non-materialized relation '" + rule.head.name + "'";
      return false;
    }
    std::vector<Value> fields;
    for (const ExprPtr& a : rule.head.args) {
      if (a->kind == ExprKind::kConst) {
        fields.push_back(a->value);
      } else if (a->kind == ExprKind::kVar && a->name == rule.head.locspec) {
        fields.push_back(Value::Addr(node_->addr_));
      } else {
        *err = "fact argument must be a constant or the location variable: " +
               RuleToString(rule);
        return false;
      }
    }
    table->Insert(Tuple::Make(rule.head.name, std::move(fields)));
    return true;
  }

  Table* FindTable(const std::string& name) {
    auto it = node_->tables_.find(name);
    return it == node_->tables_.end() ? nullptr : it->second.get();
  }

  // --- Rule planning ---

  struct Chain {
    RuleDriver* driver = nullptr;
    Element* tail = nullptr;
    // Output port of `tail` the next element attaches to. Almost always 0;
    // a variant switch fans one branch out of each of its ports.
    int tail_port = 0;
  };

  void Append(Chain* chain, Element* el) {
    graph_.Connect(chain->tail, chain->tail_port, el, 0);
    chain->tail = el;
    chain->tail_port = 0;
  }

  // Lazily creates the per-head-table derivation count store (counting
  // planner); shared by every counted rule deriving into `head`.
  SupportCounts* GetSupportCounts(Table* head) {
    std::unique_ptr<SupportCounts>& slot = node_->support_counts_[head];
    if (slot == nullptr) {
      slot = std::make_unique<SupportCounts>(head);
    }
    return slot.get();
  }

  // Compiles `expr` against `env` into a standalone program (stack form;
  // the receiving element lowers it to register code at construction, so
  // every program in the plan is register-compiled before the first tuple
  // flows).
  bool Compile(const Expr& expr, const VarEnv& env, PelProgram* prog, std::string* err) {
    return CompileExpr(expr, env, prog, err);
  }

  // Emits an equality filter: field `pos` == expr(env).
  bool AppendEqFilter(Chain* chain, size_t pos, const Expr& expr, const VarEnv& env,
                      std::string* err) {
    PelProgram prog;
    prog.Emit(PelOp::kPushField, static_cast<uint32_t>(pos));
    if (!Compile(expr, env, &prog, err)) {
      return false;
    }
    prog.Emit(PelOp::kEq);
    Append(chain, graph_.Add<FilterElement>(Gensym("eqfilter"), MakePelEnv(), std::move(prog)));
    return true;
  }

  // Binds the fields of an event predicate occupying positions
  // [0, arity) and appends equality filters for constants / repeated vars.
  bool BindEvent(const PredicateAst& pred, Chain* chain, VarEnv* env, std::string* err,
                 bool skip_constant_checks) {
    for (size_t i = 0; i < pred.args.size(); ++i) {
      const Expr& a = *pred.args[i];
      if (a.kind == ExprKind::kVar) {
        if (a.name == "_") {
          continue;
        }
        auto it = env->find(a.name);
        if (it == env->end()) {
          (*env)[a.name] = i;
        } else if (!AppendEqFilter(chain, i, a, *env, err)) {
          return false;
        }
      } else if (a.kind == ExprKind::kConst) {
        if (skip_constant_checks) {
          continue;  // periodic: generated fields match by construction
        }
        if (!AppendEqFilter(chain, i, a, *env, err)) {
          return false;
        }
      } else {
        *err = "unsupported event argument: " + ExprToString(a);
        return false;
      }
    }
    return true;
  }

  // Table columns an equality probe over `pred` can use given the bindings
  // in `env`: columns holding an already-bound variable or a constant /
  // bound expression. Mirrors the key set AppendTableTerm builds.
  std::vector<size_t> BoundCols(const PredicateAst& pred, const VarEnv& env) {
    std::vector<size_t> cols;
    for (size_t c = 0; c < pred.args.size(); ++c) {
      const Expr& a = *pred.args[c];
      if (a.kind == ExprKind::kVar) {
        if (a.name != "_" && env.count(a.name) > 0) {
          cols.push_back(c);
        }
      } else {
        cols.push_back(c);
      }
    }
    return cols;
  }

  // True when every non-variable argument of `pred` is computable from the
  // current bindings (a variable argument either probes or binds).
  bool PredArgsBound(const PredicateAst& pred, const VarEnv& env) {
    for (const ExprPtr& a : pred.args) {
      if (a->kind != ExprKind::kVar && !ExprBound(*a, env)) {
        return false;
      }
    }
    return true;
  }

  // Appends a join (or anti-join) against a table predicate. `width` is the
  // current intermediate tuple width and is updated.
  bool AppendTableTerm(const PredicateAst& pred, Chain* chain, VarEnv* env, size_t* width,
                       std::string* err) {
    Table* table = FindTable(pred.name);
    if (table == nullptr) {
      *err = "predicate '" + pred.name + "' joins a non-materialized relation";
      return false;
    }
    std::vector<JoinKey> keys;
    struct Pending {
      std::string var;
      size_t col;
    };
    std::vector<Pending> new_binds;
    std::vector<std::pair<size_t, size_t>> dup_checks;  // (col, earlier col)
    VarEnv local_new;  // vars first bound within this predicate
    for (size_t c = 0; c < pred.args.size(); ++c) {
      const Expr& a = *pred.args[c];
      if (a.kind == ExprKind::kVar) {
        if (a.name == "_") {
          continue;
        }
        if (env->count(a.name) > 0) {
          PelProgram prog;
          prog.Emit(PelOp::kPushField, static_cast<uint32_t>((*env)[a.name]));
          keys.push_back(JoinKey{c, std::move(prog)});
        } else if (local_new.count(a.name) > 0) {
          dup_checks.emplace_back(c, local_new[a.name]);
        } else {
          local_new[a.name] = c;
          new_binds.push_back(Pending{a.name, c});
        }
      } else {
        // Constant or bound expression: equality key.
        PelProgram prog;
        if (!Compile(a, *env, &prog, err)) {
          return false;
        }
        keys.push_back(JoinKey{c, std::move(prog)});
      }
    }
    std::vector<size_t> key_cols;
    key_cols.reserve(keys.size());
    for (const JoinKey& k : keys) {
      key_cols.push_back(k.table_col);
    }
    double est_static = table->EstimateFanoutStatic(key_cols);
    double est_live = table->EstimateFanout(key_cols);
    if (pred.negated) {
      if (!new_binds.empty()) {
        *err = "negated predicate '" + pred.name + "' binds new variables";
        return false;
      }
      explain_ += pad_ + "antijoin " + pred.name + " on " + ColsToString(key_cols) + "\n";
      Append(chain, graph_.Add<AntiJoinElement>(Gensym("antijoin:" + pred.name), MakePelEnv(),
                                                table, std::move(keys)));
      return true;  // width unchanged
    }
    explain_ += pad_ + "join " + pred.name + " on " + ColsToString(key_cols) +
                " est=" + EstToString(est_static) + " live=" + EstToString(est_live) + "\n";
    Append(chain, graph_.Add<JoinElement>(Gensym("join:" + pred.name), MakePelEnv(), table,
                                          std::move(keys), "j"));
    if (probe_sink_ != nullptr) {
      // The JoinElement just declared its index, so the handle resolves now
      // and stays valid (indices are append-only).
      probe_sink_->probes.push_back(ReplanProbe{table, table->IndexHandle(key_cols),
                                                table->PrimaryKeyCovered(key_cols),
                                                est_static});
      if (!probe_sink_->order.empty()) {
        probe_sink_->order += ",";
      }
      probe_sink_->order += pred.name;
    }
    size_t base = *width;
    for (const Pending& nb : new_binds) {
      (*env)[nb.var] = base + nb.col;
    }
    *width = base + pred.args.size();
    // Repeated fresh variables inside the same predicate: post-join check.
    for (const auto& [col, first_col] : dup_checks) {
      PelProgram prog;
      prog.Emit(PelOp::kPushField, static_cast<uint32_t>(base + col));
      prog.Emit(PelOp::kPushField, static_cast<uint32_t>(base + first_col));
      prog.Emit(PelOp::kEq);
      Append(chain,
             graph_.Add<FilterElement>(Gensym("dupfilter"), MakePelEnv(), std::move(prog)));
    }
    return true;
  }

  bool AppendAssign(const AssignAst& assign, Chain* chain, VarEnv* env, size_t* width,
                    std::string* err) {
    if (env->count(assign.var) > 0) {
      *err = "assignment to already-bound variable '" + assign.var + "'";
      return false;
    }
    PelProgram prog;
    if (!Compile(*assign.expr, *env, &prog, err)) {
      return false;
    }
    explain_ += pad_ + "assign " + assign.var + "\n";
    Append(chain, graph_.Add<ExtendElement>(Gensym("assign:" + assign.var), MakePelEnv(),
                                            std::move(prog)));
    (*env)[assign.var] = *width;
    *width += 1;
    return true;
  }

  bool AppendFilter(const ExprPtr& e, Chain* chain, const VarEnv& env, std::string* err) {
    PelProgram prog;
    if (!Compile(*e, env, &prog, err)) {
      return false;
    }
    explain_ += pad_ + "filter\n";
    Append(chain, graph_.Add<FilterElement>(Gensym("filter"), MakePelEnv(), std::move(prog)));
    return true;
  }

  bool FindAgg(const PredicateAst& head, AggInfo* info, std::string* err) {
    for (size_t i = 0; i < head.args.size(); ++i) {
      if (head.args[i]->kind != ExprKind::kAgg) {
        continue;
      }
      if (info->present) {
        *err = "multiple aggregates in one head";
        return false;
      }
      info->present = true;
      info->head_position = i;
      info->var = head.args[i]->agg_var;
      if (!AggKindFromName(head.args[i]->name, &info->kind)) {
        *err = "unknown aggregate '" + head.args[i]->name + "'";
        return false;
      }
    }
    return true;
  }

  // Attempts to plan a rule whose body is a single materialized predicate
  // and whose head aggregates over the whole table (the paper's
  // "aggregate element over a table", e.g. Chord N3 / S1). Returns true if
  // the pattern matched (with *planned set), false on hard error.
  bool TryTableAggWatcher(const RuleAst& rule, const AggInfo& agg, bool* planned,
                          std::string* err) {
    *planned = false;
    if (rule.body.size() != 1 || !std::holds_alternative<PredicateAst>(rule.body[0])) {
      return true;
    }
    const PredicateAst& pred = std::get<PredicateAst>(rule.body[0]);
    if (pred.negated || pred.name == "periodic") {
      return true;
    }
    Table* table = FindTable(pred.name);
    if (table == nullptr) {
      return true;  // stream-triggered: regular path
    }
    if (agg.head_position != rule.head.args.size() - 1) {
      *err = "table aggregate must be the last head field: " + RuleToString(rule);
      return false;
    }
    // Map head group variables and the aggregate variable to table columns.
    VarEnv cols;
    for (size_t c = 0; c < pred.args.size(); ++c) {
      const Expr& a = *pred.args[c];
      if (a.kind == ExprKind::kVar && a.name != "_" && cols.count(a.name) == 0) {
        cols[a.name] = c;
      }
    }
    std::vector<size_t> group_cols;
    for (size_t i = 0; i + 1 < rule.head.args.size(); ++i) {
      const Expr& h = *rule.head.args[i];
      if (h.kind != ExprKind::kVar || cols.count(h.name) == 0) {
        *err = "table-aggregate head field must be a body variable: " + RuleToString(rule);
        return false;
      }
      group_cols.push_back(cols[h.name]);
    }
    size_t agg_col = 0;
    if (agg.var != "*") {
      if (cols.count(agg.var) == 0) {
        *err = "aggregate variable '" + agg.var + "' not bound by body";
        return false;
      }
      agg_col = cols[agg.var];
    }
    std::string label = rule.id.empty() ? Gensym("rule") : rule.id;
    explain_ += "rule " + label + ": table-aggregate " + AggKindName(agg.kind) + "(" +
                pred.name + ") group=" + ColsToString(group_cols) + " col=" +
                std::to_string(agg_col) + " -> " + rule.head.name +
                (semi_naive_ ? " (incremental)" : " (full-scan)") + "\n";
    auto* watcher = graph_.Add<TableAggWatcher>(
        Gensym("tableagg:" + rule.head.name), table, std::move(group_cols), agg.kind, agg_col,
        rule.head.name,
        semi_naive_ ? TableAggWatcher::Mode::kIncremental
                    : TableAggWatcher::Mode::kLegacyRecompute);
    if (WatchTapElement* tap = MaybeHeadTap(rule.head.name, label)) {
      graph_.Connect(watcher, 0, tap, 0);
      graph_.Connect(tap, 0, node_->route_out_, 0);
    } else {
      graph_.Connect(watcher, 0, node_->route_out_, 0);
    }
    watcher->Attach();
    *planned = true;
    return true;
  }

  bool PlanRule(const RuleAst& rule, std::string* err) {
    AggInfo agg;
    if (!FindAgg(rule.head, &agg, err)) {
      return false;
    }
    if (agg.present) {
      bool planned = false;
      if (!TryTableAggWatcher(rule, agg, &planned, err)) {
        return false;
      }
      if (planned) {
        return true;
      }
    }

    // Choose the event predicate: `periodic` wins; else the unique stream
    // predicate; else the body is all-materialized and is delta-triggered.
    int event_idx = -1;
    std::vector<int> table_idxs;  // non-negated materialized body predicates
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (!std::holds_alternative<PredicateAst>(rule.body[i])) {
        continue;
      }
      const PredicateAst& p = std::get<PredicateAst>(rule.body[i]);
      if (p.negated) {
        continue;
      }
      if (p.name == "periodic") {
        event_idx = static_cast<int>(i);
        break;
      }
      if (FindTable(p.name) == nullptr) {
        if (event_idx >= 0) {
          *err = "rule " + rule.id + ": more than one stream predicate in body";
          return false;
        }
        event_idx = static_cast<int>(i);
      } else {
        table_idxs.push_back(static_cast<int>(i));
      }
    }
    std::string base_label = rule.id.empty() ? Gensym("rule") : rule.id;
    if (event_idx >= 0) {
      // Event (stream/periodic) rules keep a single trigger: events are
      // instantaneous, not stored, so there is nothing to re-join when a
      // table changes later.
      const PredicateAst& event = std::get<PredicateAst>(rule.body[event_idx]);
      TriggerKind trig = event.name == "periodic" ? TriggerKind::kPeriodic : TriggerKind::kStream;
      return PlanRuleVariant(rule, agg, event_idx, trig, base_label, /*counted=*/false, err);
    }
    if (table_idxs.empty()) {
      *err = "rule " + rule.id + ": no event predicate in body";
      return false;
    }
    if (!semi_naive_ || agg.present) {
      // Legacy mode (and per-event AggWrap rules, whose bracket semantics
      // are tied to a single triggering event): first table predicate.
      return PlanRuleVariant(rule, agg, table_idxs[0], TriggerKind::kDeltaInsert, base_label,
                             /*counted=*/false, err);
    }
    // Counting lifts the single-derivation restriction: with per-head-row
    // derivation counts a retracted support decrements and deletes only at
    // zero, so EVERY pure-table rule with a materialized head — including
    // projected-support shapes like Chord's pingNode :- succ — gets remove
    // chains. Volatile bodies stay uncounted (re-deriving the retracted
    // head is not reproducible), and so do heads in a table-dependency
    // cycle: counting is only sound for non-recursive strata — a cyclic
    // retract/re-derive (e.g. through an aggregate that feeds its own
    // support table) would oscillate forever. With counting off, remove
    // chains keep the PR 6 gate: only provably single-derivation rules
    // (RemoveChainSafe).
    bool counted = counting_ && !rule.delete_head && FindTable(rule.head.name) != nullptr &&
                   !BodyHasVolatileTerm(rule) && recursive_tables_.count(rule.head.name) == 0;
    bool remove_chains = counting_
                             ? counted
                             : !rule.delete_head && FindTable(rule.head.name) != nullptr &&
                                   RemoveChainSafe(rule);
    // Semi-naive: a row arriving in ANY body table can complete the join,
    // so each materialized predicate gets its own insert-delta chain.
    std::unordered_set<std::string> used_labels;
    for (size_t v = 0; v < table_idxs.size(); ++v) {
      const PredicateAst& p = std::get<PredicateAst>(rule.body[table_idxs[v]]);
      std::string label = v == 0 ? base_label : base_label + "+" + p.name;
      while (used_labels.count(label) > 0) {
        label += "'";
      }
      used_labels.insert(label);
      if (!PlanRuleVariant(rule, agg, table_idxs[v], TriggerKind::kDeltaInsert, label, counted,
                           err)) {
        return false;
      }
    }
    // Remove path: when the head is itself materialized, a retracted body
    // row un-derives head tuples. Each remove-delta chain re-joins the
    // remaining predicates against current state, projects the head tuple
    // and retracts it locally — retractions propagate as deltas instead of
    // waiting for soft-state expiry. Counted rules decrement the head's
    // support count (delete at zero); uncounted safe rules delete outright.
    if (remove_chains) {
      for (int idx : table_idxs) {
        const PredicateAst& p = std::get<PredicateAst>(rule.body[idx]);
        std::string label = base_label + "-" + p.name;
        while (used_labels.count(label) > 0) {
          label += "'";
        }
        used_labels.insert(label);
        if (!PlanRuleVariant(rule, agg, idx, TriggerKind::kDeltaRemove, label, counted, err)) {
          return false;
        }
      }
    }
    return true;
  }

  // Plans one delta/event variant of a rule: driver, body chain(s), head
  // projection, head routing, event wiring. With adaptive replanning
  // enabled, multi-join chains are lowered once per candidate join order
  // behind a VariantSwitchElement.
  bool PlanRuleVariant(const RuleAst& rule, const AggInfo& agg, int event_idx,
                       TriggerKind trig, const std::string& label, bool counted,
                       std::string* err) {
    const PredicateAst& event = std::get<PredicateAst>(rule.body[event_idx]);
    bool is_periodic = trig == TriggerKind::kPeriodic;
    switch (trig) {
      case TriggerKind::kPeriodic:
        explain_ += "rule " + label + ": trigger periodic\n";
        break;
      case TriggerKind::kStream:
        explain_ += "rule " + label + ": trigger stream(" + event.name + ")\n";
        break;
      case TriggerKind::kDeltaInsert:
        explain_ += "rule " + label + ": trigger delta-insert(" + event.name + ")\n";
        break;
      case TriggerKind::kDeltaRemove:
        explain_ += "rule " + label + ": trigger delta-remove(" + event.name + ")\n";
        break;
    }

    // 1. Create the rule driver and bind the event.
    auto* driver = graph_.Add<RuleDriver>("rule:" + label, nullptr);
    driver->set_min_arity(event.args.size());
    node_->rule_drivers_.emplace_back(label, driver);
    Chain chain{driver, driver};
    VarEnv env;
    size_t width = event.args.size();
    if (!BindEvent(event, &chain, &env, err, /*skip_constant_checks=*/is_periodic)) {
      return false;
    }
    counters_current_.clear();
    retractors_current_.clear();

    // 2. Remaining body terms.
    std::vector<const BodyTerm*> remaining;
    size_t positive_joins = 0;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (static_cast<int>(i) != event_idx) {
        remaining.push_back(&rule.body[i]);
        if (std::holds_alternative<PredicateAst>(rule.body[i]) &&
            !std::get<PredicateAst>(rule.body[i]).negated) {
          ++positive_joins;
        }
      }
    }
    bool cost_order = semi_naive_ && !BodyHasVolatileTerm(rule);
    if (semi_naive_ && !cost_order) {
      explain_ += "    order=source (volatile exprs)\n";
    }

    // With replanning on, a cost-ordered chain with a real ordering choice
    // (≥ 2 positive joins, no per-event aggregate bracket) is lowered once
    // per distinct candidate order behind a switch; otherwise the single
    // greedy chain is built inline.
    if (replan_ && cost_order && !agg.present && positive_joins >= 2) {
      if (!BuildOrderVariants(rule, agg, trig, label, counted, remaining, &chain, env, width,
                              err)) {
        return false;
      }
    } else {
      if (!(cost_order
                ? OrderBodyByCost(rule, &remaining, &chain, &env, &width, nullptr, err)
                : OrderBodyBySource(rule, &remaining, &chain, &env, &width, err))) {
        return false;
      }
      if (!FinishChainTail(rule, agg, &event, trig, label, counted, &chain, env, err)) {
        return false;
      }
    }

    // 5. Event source wiring.
    return WireEvent(rule, event, trig, is_periodic, counted, driver, err);
  }

  // Lowers every distinct candidate join order as its own fully built body
  // chain off one VariantSwitchElement, recording per-variant probe
  // sequences for the replan loop. Branch 0 is the greedy static order and
  // starts active.
  bool BuildOrderVariants(const RuleAst& rule, const AggInfo& agg, TriggerKind trig,
                          const std::string& label, bool counted,
                          const std::vector<const BodyTerm*>& remaining, Chain* chain,
                          const VarEnv& env, size_t width, std::string* err) {
    // Candidate orders: greedy, plus greedy-with-forced-first for every
    // other join that could legally run first. Deduplicate by the positive
    // join sequence; cap at kMaxOrderVariants fully lowered branches.
    std::vector<const PredicateAst*> greedy_seq;
    if (!SimulateOrder(remaining, env, nullptr, &greedy_seq)) {
      *err = "rule " + rule.id + ": cannot order body terms (unbound variables)";
      return false;
    }
    std::vector<const PredicateAst*> forces{nullptr};
    std::vector<std::vector<const PredicateAst*>> seqs{greedy_seq};
    for (const BodyTerm* term : remaining) {
      if (static_cast<int>(forces.size()) >= kMaxOrderVariants) {
        break;
      }
      if (!std::holds_alternative<PredicateAst>(*term)) {
        continue;
      }
      const PredicateAst* p = &std::get<PredicateAst>(*term);
      if (p->negated || p == greedy_seq.front()) {
        continue;
      }
      std::vector<const PredicateAst*> seq;
      if (!SimulateOrder(remaining, env, p, &seq)) {
        continue;  // can't run first (would leave variables unbound)
      }
      if (std::find(seqs.begin(), seqs.end(), seq) != seqs.end()) {
        continue;
      }
      forces.push_back(p);
      seqs.push_back(std::move(seq));
    }
    if (forces.size() < 2) {
      // No real alternative: build the single greedy chain inline.
      Chain single = *chain;
      VarEnv benv = env;
      size_t bwidth = width;
      std::vector<const BodyTerm*> terms = remaining;
      if (!OrderBodyByCost(rule, &terms, &single, &benv, &bwidth, nullptr, err)) {
        return false;
      }
      return FinishChainTail(rule, agg, nullptr, trig, label, counted, &single, benv, err);
    }
    auto* sw = graph_.Add<VariantSwitchElement>(Gensym("plansel:" + label));
    Append(chain, sw);
    ReplanEntry entry;
    entry.label = label;
    entry.sw = sw;
    for (size_t k = 0; k < forces.size(); ++k) {
      Chain branch{chain->driver, sw, static_cast<int>(k)};
      VarEnv benv = env;
      size_t bwidth = width;
      std::vector<const BodyTerm*> terms = remaining;
      if (k > 0) {
        explain_ += "    alt-plan " + std::to_string(k) + ":\n";
        pad_ = "      ";
      }
      ReplanVariant variant;
      probe_sink_ = &variant;
      bool ok = OrderBodyByCost(rule, &terms, &branch, &benv, &bwidth, forces[k], err) &&
                FinishChainTail(rule, agg, nullptr, trig, label, counted, &branch, benv, err);
      probe_sink_ = nullptr;
      pad_ = "    ";
      if (!ok) {
        return false;
      }
      entry.variants.push_back(std::move(variant));
    }
    node_->replan_.AddEntry(std::move(entry));
    return true;
  }

  // Mirrors OrderBodyByCost's selection logic without building elements:
  // computes the positive-join order that the builder would produce, with
  // `force_first` (when non-null) pinned as the first join. Returns false
  // when no legal order exists (or the forced join cannot run first).
  bool SimulateOrder(const std::vector<const BodyTerm*>& terms, VarEnv env,
                     const PredicateAst* force_first,
                     std::vector<const PredicateAst*>* join_seq) {
    std::vector<const BodyTerm*> remaining = terms;
    size_t next_pos = 10000;  // fake binding slots; only membership matters
    bool force_pending = force_first != nullptr;
    while (!remaining.empty()) {
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (size_t i = 0; i < remaining.size(); ++i) {
          const BodyTerm& term = *remaining[i];
          bool processable = false;
          if (std::holds_alternative<PredicateAst>(term)) {
            const PredicateAst& p = std::get<PredicateAst>(term);
            if (!p.negated) {
              continue;
            }
            processable = true;
            for (const ExprPtr& a : p.args) {
              if (a->kind == ExprKind::kVar && a->name != "_" && env.count(a->name) == 0) {
                processable = false;
                break;
              }
            }
          } else if (std::holds_alternative<AssignAst>(term)) {
            processable = ExprBound(*std::get<AssignAst>(term).expr, env);
          } else {
            processable = ExprBound(*std::get<ExprPtr>(term), env);
          }
          if (!processable) {
            continue;
          }
          if (std::holds_alternative<AssignAst>(term)) {
            env[std::get<AssignAst>(term).var] = next_pos++;
          }
          remaining.erase(remaining.begin() + i);
          progressed = true;
          break;
        }
      }
      if (remaining.empty()) {
        break;
      }
      int best = -1;
      if (force_pending) {
        for (size_t i = 0; i < remaining.size(); ++i) {
          if (std::holds_alternative<PredicateAst>(*remaining[i]) &&
              &std::get<PredicateAst>(*remaining[i]) == force_first) {
            best = static_cast<int>(i);
            break;
          }
        }
        if (best < 0 || !PredArgsBound(*force_first, env)) {
          return false;
        }
        force_pending = false;
      } else {
        double best_est = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < remaining.size(); ++i) {
          const BodyTerm& term = *remaining[i];
          if (!std::holds_alternative<PredicateAst>(term)) {
            continue;
          }
          const PredicateAst& p = std::get<PredicateAst>(term);
          if (p.negated || !PredArgsBound(p, env)) {
            continue;
          }
          Table* table = FindTable(p.name);
          double est = table == nullptr ? std::numeric_limits<double>::max()
                                        : table->EstimateFanout(BoundCols(p, env));
          if (est < best_est) {
            best_est = est;
            best = static_cast<int>(i);
          }
        }
      }
      if (best < 0) {
        return false;
      }
      const PredicateAst& p = *(&std::get<PredicateAst>(*remaining[best]));
      join_seq->push_back(&p);
      for (const ExprPtr& a : p.args) {
        if (a->kind == ExprKind::kVar && a->name != "_" && env.count(a->name) == 0) {
          env[a->name] = next_pos++;
        }
      }
      remaining.erase(remaining.begin() + best);
    }
    return true;
  }

  // Steps 3 + 4 of rule planning: head projection (+ aggregation bracket),
  // watch tap, head routing / retraction. Run once per body chain (so each
  // order variant carries its own tail).
  bool FinishChainTail(const RuleAst& rule, const AggInfo& agg, const PredicateAst* event,
                       TriggerKind trig, const std::string& label, bool counted, Chain* chain,
                       const VarEnv& env, std::string* err) {
    // 3. Head projection (+ aggregation).
    std::vector<PelProgram> head_programs;
    for (const ExprPtr& a : rule.head.args) {
      PelProgram prog;
      if (a->kind == ExprKind::kAgg) {
        if (a->agg_var == "*") {
          prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(1)));
        } else {
          auto it = env.find(a->agg_var);
          if (it == env.end()) {
            *err = "aggregate variable '" + a->agg_var + "' unbound in rule " + rule.id;
            return false;
          }
          prog.Emit(PelOp::kPushField, static_cast<uint32_t>(it->second));
        }
      } else if (!Compile(*a, env, &prog, err)) {
        *err = "rule " + rule.id + ": " + *err;
        return false;
      }
      head_programs.push_back(std::move(prog));
    }
    Append(chain, graph_.Add<ProjectElement>(Gensym("project:" + rule.head.name), MakePelEnv(),
                                             rule.head.name, std::move(head_programs)));

    if (agg.present) {
      P2_CHECK(event != nullptr);  // agg rules never build order variants
      // Empty-group emission (count<*> over zero matches) requires every
      // group field to be computable from the event alone.
      VarEnv event_env;
      for (size_t i = 0; i < event->args.size(); ++i) {
        const Expr& a = *event->args[i];
        if (a.kind == ExprKind::kVar && a.name != "_" && event_env.count(a.name) == 0) {
          event_env[a.name] = i;
        }
      }
      bool emit_empty = agg.kind == AggKind::kCount;
      std::vector<PelProgram> empty_programs;
      if (emit_empty) {
        for (size_t i = 0; i < rule.head.args.size(); ++i) {
          if (i == agg.head_position) {
            continue;
          }
          PelProgram prog;
          std::string dummy;
          if (!Compile(*rule.head.args[i], event_env, &prog, &dummy)) {
            emit_empty = false;
            empty_programs.clear();
            break;
          }
          empty_programs.push_back(std::move(prog));
        }
      }
      explain_ += pad_ + "aggwrap " + AggKindName(agg.kind) + "\n";
      auto* aggwrap = graph_.Add<AggWrapElement>(Gensym("aggwrap:" + rule.head.name),
                                                 MakePelEnv(), agg.kind, agg.head_position,
                                                 rule.head.name, emit_empty,
                                                 std::move(empty_programs));
      Append(chain, aggwrap);
      chain->driver->set_agg(aggwrap);
    }

    // 4. Head routing. A watched head gets its tap here — after projection,
    // before routing — so every derivation is logged exactly once with the
    // producing rule variant's label.
    if (WatchTapElement* tap = MaybeHeadTap(rule.head.name, label)) {
      Append(chain, tap);
    }
    if (trig == TriggerKind::kDeltaRemove) {
      Table* head_table = FindTable(rule.head.name);
      P2_CHECK(head_table != nullptr);  // caller builds remove variants only then
      // Retraction only un-derives rows stored on this node; a remote head
      // ages out by soft-state expiry as before (there is no wire delete).
      PelProgram prog;
      prog.Emit(PelOp::kPushField, 0);
      prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Addr(node_->addr_)));
      prog.Emit(PelOp::kEq);
      Append(chain,
             graph_.Add<FilterElement>(Gensym("localguard"), MakePelEnv(), std::move(prog)));
      if (counted) {
        auto* retractor = graph_.Add<CountedRetractElement>(
            Gensym("countretract:" + rule.head.name), GetSupportCounts(head_table));
        Append(chain, retractor);
        retractors_current_.push_back(retractor);
        explain_ += pad_ + "project " + rule.head.name + " -> retract-count (local)\n";
      } else {
        Append(chain,
               graph_.Add<DeleteElement>(Gensym("retract:" + rule.head.name), head_table));
        explain_ += pad_ + "project " + rule.head.name + " -> retract (local)\n";
      }
    } else if (rule.delete_head) {
      Table* table = FindTable(rule.head.name);
      if (table == nullptr) {
        *err = "delete head on non-materialized relation '" + rule.head.name + "'";
        return false;
      }
      Append(chain, graph_.Add<DeleteElement>(Gensym("delete:" + rule.head.name), table));
      explain_ += pad_ + "project " + rule.head.name + " -> delete\n";
    } else if (counted && trig == TriggerKind::kDeltaInsert) {
      Table* head_table = FindTable(rule.head.name);
      P2_CHECK(head_table != nullptr);  // counted implies materialized head
      auto* counter = graph_.Add<SupportCountElement>(Gensym("count:" + rule.head.name),
                                                      GetSupportCounts(head_table),
                                                      node_->addr_);
      Append(chain, counter);
      counters_current_.push_back(counter);
      graph_.Connect(chain->tail, chain->tail_port, node_->route_out_, 0);
      explain_ += pad_ + "project " + rule.head.name + " -> count+route\n";
    } else {
      graph_.Connect(chain->tail, chain->tail_port, node_->route_out_, 0);
      explain_ += pad_ + "project " + rule.head.name + " -> route\n";
    }
    return true;
  }

  // Step 5 of rule planning: connects the rule driver to its event source.
  // Runs once per rule variant, after every body chain is built, so the
  // counting listeners capture the full set of per-branch mode elements.
  bool WireEvent(const RuleAst& rule, const PredicateAst& event, TriggerKind trig,
                 bool is_periodic, bool counted, RuleDriver* driver, std::string* err) {
    if (is_periodic) {
      double period = 0;
      uint64_t count = 0;
      if (event.args.size() < 3 || event.args[2]->kind != ExprKind::kConst) {
        *err = "rule " + rule.id + ": periodic() needs a literal period";
        return false;
      }
      period = event.args[2]->value.AsDouble();
      if (event.args.size() >= 4) {
        if (event.args[3]->kind != ExprKind::kConst) {
          *err = "rule " + rule.id + ": periodic() repeat count must be literal";
          return false;
        }
        count = static_cast<uint64_t>(event.args[3]->value.AsInt());
      }
      std::vector<Value> extras;
      for (size_t i = 2; i < event.args.size(); ++i) {
        extras.push_back(event.args[i]->value);
      }
      auto* src = graph_.Add<PeriodicSource>(Gensym("periodic"), node_->executor_,
                                             &node_->rng_, node_->addr_, period, count,
                                             /*initial_delay=*/0.0, std::move(extras));
      graph_.Connect(src, 0, driver, 0);
      node_->periodics_.push_back(src);
    } else if (trig == TriggerKind::kDeltaInsert) {
      Table* table = FindTable(event.name);
      P2_CHECK(table != nullptr);
      if (counted) {
        // Counting listener: a genuinely new body row (insert, or replace
        // that changed content) derives NEW supports; a TTL refresh of an
        // identical row re-derives the head — the refresh must propagate —
        // without touching counts. The mode is save/restored around the
        // synchronous push so re-entrant deltas nest correctly.
        std::vector<SupportCountElement*> counters = std::move(counters_current_);
        counters_current_.clear();
        P2_CHECK(!counters.empty());
        table->AddTypedListener([driver, counters](const TableDelta& d) {
          if (d.kind == TableDelta::Kind::kRemove) {
            return;
          }
          bool fresh = d.kind == TableDelta::Kind::kInsert ||
                       (d.old_tuple != nullptr && !d.old_tuple->SameAs(*d.tuple));
          bool saved = counters.front()->counting();
          for (SupportCountElement* c : counters) {
            c->set_counting(fresh);
          }
          driver->Push(0, d.tuple, nullptr);
          for (SupportCountElement* c : counters) {
            c->set_counting(saved);
          }
        });
      } else {
        table->AddDeltaListener([driver](const TuplePtr& t) { driver->Push(0, t, nullptr); });
      }
    } else if (trig == TriggerKind::kDeltaRemove) {
      Table* table = FindTable(event.name);
      P2_CHECK(table != nullptr);
      if (counted) {
        // Counting remove listener. Three retraction sources: real removals
        // (delete/eviction) retract-and-delete-at-zero; a replace that
        // changed content retracts the OLD row's derivations (the insert
        // listener, attached earlier, already counted the new ones — inc
        // before dec, so a row passing through the same key never dips to
        // zero transiently); TTL expiry decrements WITHOUT deleting, so
        // counts track live supports exactly while expiry stays
        // non-retracting.
        std::vector<CountedRetractElement*> retractors = std::move(retractors_current_);
        retractors_current_.clear();
        P2_CHECK(!retractors.empty());
        table->AddTypedListener([driver, retractors](const TableDelta& d) {
          TuplePtr gone;
          bool retract = true;
          if (d.kind == TableDelta::Kind::kRemove) {
            gone = d.tuple;
            retract = d.cause != TableDelta::Cause::kExpiry;
          } else if (d.kind == TableDelta::Kind::kReplace && d.old_tuple != nullptr &&
                     !d.old_tuple->SameAs(*d.tuple)) {
            gone = d.old_tuple;
          } else {
            return;
          }
          bool saved = retractors.front()->retracting();
          for (CountedRetractElement* r : retractors) {
            r->set_retracting(retract);
          }
          driver->Push(0, gone, nullptr);
          for (CountedRetractElement* r : retractors) {
            r->set_retracting(saved);
          }
        });
      } else {
        // Only true retractions (deletes, evictions) propagate; TTL expiry
        // is the refresh cycle at work, and derived rows age out on their
        // own TTL as they always have.
        table->AddTypedListener([driver](const TableDelta& d) {
          if (d.kind == TableDelta::Kind::kRemove && d.cause != TableDelta::Cause::kExpiry) {
            driver->Push(0, d.tuple, nullptr);
          }
        });
      }
    } else {
      // Stream event: demux -> (shared per-name dup) -> driver.
      DupElement*& dup = node_->event_dups_[event.name];
      if (dup == nullptr) {
        dup = graph_.Add<DupElement>(Gensym("dup:" + event.name));
        graph_.Connect(node_->demux_, node_->demux_->PortFor(event.name), dup, 0);
      }
      graph_.Connect(dup, static_cast<int>(dup->num_outputs()), driver, 0);
    }
    return true;
  }

  // Legacy term ordering: first processable term wins, preserving source
  // order otherwise.
  bool OrderBodyBySource(const RuleAst& rule, std::vector<const BodyTerm*>* remaining,
                         Chain* chain, VarEnv* env, size_t* width, std::string* err) {
    while (!remaining->empty()) {
      bool progressed = false;
      for (size_t i = 0; i < remaining->size(); ++i) {
        const BodyTerm& term = *(*remaining)[i];
        bool processable = false;
        if (std::holds_alternative<PredicateAst>(term)) {
          const PredicateAst& p = std::get<PredicateAst>(term);
          if (p.negated) {
            processable = true;
            for (const ExprPtr& a : p.args) {
              if (a->kind == ExprKind::kVar && a->name != "_" && env->count(a->name) == 0) {
                processable = false;
                break;
              }
            }
          } else {
            processable = true;
          }
        } else if (std::holds_alternative<AssignAst>(term)) {
          processable = ExprBound(*std::get<AssignAst>(term).expr, *env);
        } else {
          processable = ExprBound(*std::get<ExprPtr>(term), *env);
        }
        if (!processable) {
          continue;
        }
        if (!ApplyTerm(term, chain, env, width, err)) {
          return false;
        }
        remaining->erase(remaining->begin() + i);
        progressed = true;
        break;
      }
      if (!progressed) {
        *err = "rule " + rule.id + ": cannot order body terms (unbound variables)";
        return false;
      }
    }
    return true;
  }

  // Cost-aware term ordering: selective cheap terms (filters, assignments,
  // anti-joins) apply as soon as their variables are bound; positive joins
  // are chosen greedily by estimated fanout so the narrowest probe runs
  // first and intermediate results stay small. `force_first`, when set,
  // overrides the FIRST join choice only (alternate-order lowering);
  // SimulateOrder has already validated it is processable.
  bool OrderBodyByCost(const RuleAst& rule, std::vector<const BodyTerm*>* remaining,
                       Chain* chain, VarEnv* env, size_t* width,
                       const PredicateAst* force_first, std::string* err) {
    while (!remaining->empty()) {
      // 1) Drain every currently-processable non-join term, source order.
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (size_t i = 0; i < remaining->size(); ++i) {
          const BodyTerm& term = *(*remaining)[i];
          bool processable = false;
          if (std::holds_alternative<PredicateAst>(term)) {
            const PredicateAst& p = std::get<PredicateAst>(term);
            if (!p.negated) {
              continue;  // positive join: cost-selected below
            }
            processable = true;
            for (const ExprPtr& a : p.args) {
              if (a->kind == ExprKind::kVar && a->name != "_" && env->count(a->name) == 0) {
                processable = false;
                break;
              }
            }
          } else if (std::holds_alternative<AssignAst>(term)) {
            processable = ExprBound(*std::get<AssignAst>(term).expr, *env);
          } else {
            processable = ExprBound(*std::get<ExprPtr>(term), *env);
          }
          if (!processable) {
            continue;
          }
          if (!ApplyTerm(term, chain, env, width, err)) {
            return false;
          }
          remaining->erase(remaining->begin() + i);
          progressed = true;
          break;
        }
      }
      if (remaining->empty()) {
        break;
      }
      // 2) Cheapest processable positive join next (ties: source order).
      int best = -1;
      double best_est = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < remaining->size(); ++i) {
        const BodyTerm& term = *(*remaining)[i];
        if (!std::holds_alternative<PredicateAst>(term)) {
          continue;
        }
        const PredicateAst& p = std::get<PredicateAst>(term);
        if (force_first != nullptr) {
          if (&p == force_first) {
            best = static_cast<int>(i);
            break;
          }
          continue;
        }
        if (p.negated || !PredArgsBound(p, *env)) {
          continue;
        }
        Table* table = FindTable(p.name);
        double est = table == nullptr ? std::numeric_limits<double>::max()
                                      : table->EstimateFanout(BoundCols(p, *env));
        if (est < best_est) {
          best_est = est;
          best = static_cast<int>(i);
        }
      }
      force_first = nullptr;
      if (best < 0) {
        *err = "rule " + rule.id + ": cannot order body terms (unbound variables)";
        return false;
      }
      if (!ApplyTerm(*(*remaining)[best], chain, env, width, err)) {
        return false;
      }
      remaining->erase(remaining->begin() + best);
    }
    return true;
  }

  bool ApplyTerm(const BodyTerm& term, Chain* chain, VarEnv* env, size_t* width,
                 std::string* err) {
    if (std::holds_alternative<PredicateAst>(term)) {
      return AppendTableTerm(std::get<PredicateAst>(term), chain, env, width, err);
    }
    if (std::holds_alternative<AssignAst>(term)) {
      return AppendAssign(std::get<AssignAst>(term), chain, env, width, err);
    }
    return AppendFilter(std::get<ExprPtr>(term), chain, *env, err);
  }

  // Builds a head-side tap for `pred` when it is watched, or returns null.
  // `label` is the producing rule's chain label, so watch output attributes
  // every tuple to the exact rule variant that derived it.
  WatchTapElement* MaybeHeadTap(const std::string& pred, const std::string& label) {
    if (watched_.count(pred) == 0) {
      return nullptr;
    }
    explain_ += "    watch tap on head " + pred + "\n";
    return graph_.Add<WatchTapElement>(Gensym("watch:" + pred), node_->executor_,
                                       node_->addr_, "head", label);
  }

  const ProgramAst& program_;
  P2Node* node_;
  Graph& graph_;
  const bool semi_naive_;
  // Support counting (tentpole 1): on by default under semi-naive; off
  // reproduces the PR 6 remove-chain gating bit-for-bit.
  const bool counting_;
  // Adaptive replanning (tentpole 2): lower alternate join orders when the
  // node is configured with a replan interval.
  const bool replan_;
  // Explain indentation: deepened to six spaces inside alt-plan branches.
  std::string pad_ = "    ";
  // When non-null, AppendTableTerm records each join's probe into this
  // variant (alternate-order lowering).
  ReplanVariant* probe_sink_ = nullptr;
  // Mode elements built by the CURRENT rule variant's chains; WireEvent
  // moves them into the event listeners' closures.
  std::vector<SupportCountElement*> counters_current_;
  std::vector<CountedRetractElement*> retractors_current_;
  // At most this many fully lowered join orders per chain: the greedy
  // static order plus up to two forced-first alternates.
  static constexpr int kMaxOrderVariants = 3;
  // Tables in a rule-dependency cycle: their rules fall back to TTL decay
  // instead of counted retraction (non-recursive strata only).
  std::set<std::string> recursive_tables_;
  std::string explain_;
  std::set<std::string> watched_;
  int gensym_ = 0;
};

bool Planner::Install(const ProgramAst& program, P2Node* node, std::string* err) {
  PlanBuilder builder(program, node);
  return builder.Run(err);
}

}  // namespace p2
