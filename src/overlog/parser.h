// OverLog recursive-descent parser.
#ifndef P2_OVERLOG_PARSER_H_
#define P2_OVERLOG_PARSER_H_

#include <string>

#include "src/overlog/ast.h"

namespace p2 {

// Parses an OverLog program. Returns false and sets *err (with a line
// number) on syntax errors.
bool ParseOverLog(const std::string& src, ProgramAst* out, std::string* err);

}  // namespace p2

#endif  // P2_OVERLOG_PARSER_H_
