// Localization rewrite (§3.5, §7).
//
// The paper's planner handles rules with collocated terms only; rules whose
// bodies span two nodes (like the Narada rule R4 in §2.3) must be rewritten
// into collocated rules connected by a shipped intermediate event. This
// module performs that rewrite automatically:
//
//   head@Y(...) :- event@X(...), tX1@X(...), ..., tY1@Y(...), ...
//
// becomes
//
//   <tmp>@Y(Y, shipped vars...) :- event@X(...), tX1@X(...), ...
//   head@Y(...)                 :- <tmp>@Y(Y, shipped vars...), tY1@Y(...), ...
//
// where the shipped variables are those bound on the X side and needed on
// the Y side. Filters whose variables are bound on the X side stay there
// (selection pushed before shipping); assignments move to the Y side.
#ifndef P2_OVERLOG_LOCALIZER_H_
#define P2_OVERLOG_LOCALIZER_H_

#include <string>

#include "src/overlog/ast.h"

namespace p2 {

// Rewrites every rule in `program` into collocated form. Returns false and
// sets *err for bodies spanning more than two locations or patterns the
// rewrite cannot express.
bool LocalizeProgram(ProgramAst* program, std::string* err);

}  // namespace p2

#endif  // P2_OVERLOG_LOCALIZER_H_
