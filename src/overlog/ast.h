// OverLog abstract syntax (§2.2, §2.3).
//
// An OverLog program is a list of statements:
//   materialize(name, lifetime, size, keys(k1, k2, ...)).
//   watch(name).
//   RuleId head :- body.          (rule; RuleId optional)
//   delete head :- body.          (deletion rule)
//   head.                         (fact)
// A head/body predicate is name@LocVar(arg, arg, ...). Body terms are
// predicates (possibly negated with "not"), assignments (Var := expr) and
// filter expressions (comparisons, ranges, boolean combinations).
#ifndef P2_OVERLOG_AST_H_
#define P2_OVERLOG_AST_H_

#include <limits>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/runtime/value.h"

namespace p2 {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kVar,     // variable reference (upper-case); "_" is the don't-care variable
  kConst,   // literal Value
  kBinary,  // op: + - * / % << == != < <= > >= && ||
  kUnary,   // op: - !
  kCall,    // built-in function call f_xxx(args)
  kRange,   // value in (lo, hi) with open/closed endpoints
  kAgg,     // aggregate in a rule head: min<V>, max<V>, count<*>, sum<V>, avg<V>
};

struct Expr {
  ExprKind kind;
  // kVar / kCall / kBinary / kUnary / kAgg discriminator payloads:
  std::string name;  // variable name, function name, operator, or agg kind
  Value value;       // kConst
  std::vector<ExprPtr> args;  // operands / call args; kRange: [value, lo, hi]
  bool lo_open = true;        // kRange endpoint openness
  bool hi_open = true;
  std::string agg_var;  // kAgg: inner variable name, or "*" for count<*>

  static ExprPtr Var(std::string n);
  static ExprPtr Const(Value v);
  static ExprPtr Binary(std::string op, ExprPtr l, ExprPtr r);
  static ExprPtr Unary(std::string op, ExprPtr e);
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args);
  static ExprPtr Range(ExprPtr v, ExprPtr lo, ExprPtr hi, bool lo_open, bool hi_open);
  static ExprPtr Agg(std::string kind, std::string var);
};

struct PredicateAst {
  std::string name;
  std::string locspec;  // variable after '@'; empty if unspecified
  std::vector<ExprPtr> args;
  bool negated = false;
};

struct AssignAst {
  std::string var;
  ExprPtr expr;
};

// A body term is a predicate, an assignment, or a filter expression.
using BodyTerm = std::variant<PredicateAst, AssignAst, ExprPtr>;

struct RuleAst {
  std::string id;  // may be empty
  PredicateAst head;
  bool delete_head = false;
  std::vector<BodyTerm> body;  // empty => fact
  bool IsFact() const { return body.empty(); }
};

struct MaterializeAst {
  std::string name;
  double lifetime_s = std::numeric_limits<double>::infinity();
  size_t max_size = std::numeric_limits<size_t>::max();
  std::vector<size_t> key_positions;  // 0-based (parser converts from 1-based)
};

struct ProgramAst {
  std::vector<MaterializeAst> materializations;
  std::vector<RuleAst> rules;
  std::vector<std::string> watches;

  bool IsMaterialized(const std::string& name) const {
    for (const MaterializeAst& m : materializations) {
      if (m.name == name) {
        return true;
      }
    }
    return false;
  }
};

// Pretty-printers (used by error messages and the spec_size bench).
std::string ExprToString(const Expr& e);
std::string PredicateToString(const PredicateAst& p);
std::string RuleToString(const RuleAst& r);

}  // namespace p2

#endif  // P2_OVERLOG_AST_H_
