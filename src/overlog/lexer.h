// OverLog lexer: hand-written replacement for the paper's flex scanner.
#ifndef P2_OVERLOG_LEXER_H_
#define P2_OVERLOG_LEXER_H_

#include <string>
#include <vector>

namespace p2 {

enum class TokKind {
  kIdent,     // lower-case identifier (predicate / function / keyword)
  kVariable,  // upper-case identifier or "_"
  kNumber,    // integer or double literal
  kHexId,     // 0x... 160-bit identifier literal
  kString,    // "..." literal
  kSymbol,    // punctuation / operator, text in `text`
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  double number = 0.0;
  bool is_integer = false;
  int line = 0;
};

// Tokenizes `src`. On lexical error, returns false and sets *err.
bool LexOverLog(const std::string& src, std::vector<Token>* out, std::string* err);

}  // namespace p2

#endif  // P2_OVERLOG_LEXER_H_
