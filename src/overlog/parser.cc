#include "src/overlog/parser.h"

#include <cmath>

#include "src/overlog/lexer.h"
#include "src/runtime/logging.h"

namespace p2 {

// --- Expr constructors & printers (AST helpers) ---

ExprPtr Expr::Var(std::string n) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->name = std::move(n);
  return e;
}

ExprPtr Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->value = std::move(v);
  return e;
}

ExprPtr Expr::Binary(std::string op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->name = std::move(op);
  e->args = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Unary(std::string op, ExprPtr x) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->name = std::move(op);
  e->args = {std::move(x)};
  return e;
}

ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(fn);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Range(ExprPtr v, ExprPtr lo, ExprPtr hi, bool lo_open, bool hi_open) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kRange;
  e->args = {std::move(v), std::move(lo), std::move(hi)};
  e->lo_open = lo_open;
  e->hi_open = hi_open;
  return e;
}

ExprPtr Expr::Agg(std::string kind, std::string var) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAgg;
  e->name = std::move(kind);
  e->agg_var = std::move(var);
  return e;
}

std::string ExprToString(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kVar:
      return e.name;
    case ExprKind::kConst:
      return e.value.ToString();
    case ExprKind::kBinary:
      return "(" + ExprToString(*e.args[0]) + " " + e.name + " " + ExprToString(*e.args[1]) +
             ")";
    case ExprKind::kUnary:
      return e.name + ExprToString(*e.args[0]);
    case ExprKind::kCall: {
      std::string s = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) {
          s += ", ";
        }
        s += ExprToString(*e.args[i]);
      }
      return s + ")";
    }
    case ExprKind::kRange:
      return ExprToString(*e.args[0]) + " in " + (e.lo_open ? "(" : "[") +
             ExprToString(*e.args[1]) + ", " + ExprToString(*e.args[2]) +
             (e.hi_open ? ")" : "]");
    case ExprKind::kAgg:
      return e.name + "<" + e.agg_var + ">";
  }
  return "?";
}

std::string PredicateToString(const PredicateAst& p) {
  std::string s = p.negated ? "not " : "";
  s += p.name;
  if (!p.locspec.empty()) {
    s += "@" + p.locspec;
  }
  s += "(";
  for (size_t i = 0; i < p.args.size(); ++i) {
    if (i > 0) {
      s += ", ";
    }
    s += ExprToString(*p.args[i]);
  }
  return s + ")";
}

std::string RuleToString(const RuleAst& r) {
  std::string s = r.id.empty() ? "" : r.id + " ";
  if (r.delete_head) {
    s += "delete ";
  }
  s += PredicateToString(r.head);
  if (!r.body.empty()) {
    s += " :- ";
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i > 0) {
        s += ", ";
      }
      if (std::holds_alternative<PredicateAst>(r.body[i])) {
        s += PredicateToString(std::get<PredicateAst>(r.body[i]));
      } else if (std::holds_alternative<AssignAst>(r.body[i])) {
        const AssignAst& a = std::get<AssignAst>(r.body[i]);
        s += a.var + " := " + ExprToString(*a.expr);
      } else {
        s += ExprToString(*std::get<ExprPtr>(r.body[i]));
      }
    }
  }
  return s + ".";
}

// --- Parser ---

namespace {

bool IsAggName(const std::string& s) {
  return s == "min" || s == "max" || s == "count" || s == "sum" || s == "avg";
}

class Parser {
 public:
  Parser(std::vector<Token> toks, ProgramAst* out) : toks_(std::move(toks)), out_(out) {}

  bool Run(std::string* err) {
    while (!At(TokKind::kEnd)) {
      if (!Statement()) {
        *err = err_;
        return false;
      }
    }
    return true;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool At(TokKind k) const { return Cur().kind == k; }
  bool AtSym(const char* s) const {
    return Cur().kind == TokKind::kSymbol && Cur().text == s;
  }
  bool AtIdent(const char* s) const {
    return Cur().kind == TokKind::kIdent && Cur().text == s;
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) {
      ++pos_;
    }
  }
  bool Fail(const std::string& msg) {
    err_ = "parse error at line " + std::to_string(Cur().line) + " near '" + Cur().text +
           "': " + msg;
    return false;
  }
  bool ExpectSym(const char* s) {
    if (!AtSym(s)) {
      return Fail(std::string("expected '") + s + "'");
    }
    Advance();
    return true;
  }

  bool Statement() {
    if (AtIdent("materialize")) {
      return Materialize();
    }
    if (AtIdent("watch")) {
      return Watch();
    }
    return RuleStatement();
  }

  bool Materialize() {
    Advance();  // materialize
    MaterializeAst m;
    if (!ExpectSym("(")) {
      return false;
    }
    if (!At(TokKind::kIdent)) {
      return Fail("expected table name");
    }
    m.name = Cur().text;
    Advance();
    if (!ExpectSym(",")) {
      return false;
    }
    double life = 0;
    if (!LifeOrSize(&life)) {
      return false;
    }
    m.lifetime_s = life;
    if (!ExpectSym(",")) {
      return false;
    }
    double size = 0;
    if (!LifeOrSize(&size)) {
      return false;
    }
    m.max_size = std::isfinite(size) ? static_cast<size_t>(size)
                                     : std::numeric_limits<size_t>::max();
    if (!ExpectSym(",")) {
      return false;
    }
    if (!AtIdent("keys")) {
      return Fail("expected keys(...)");
    }
    Advance();
    if (!ExpectSym("(")) {
      return false;
    }
    for (;;) {
      if (!At(TokKind::kNumber)) {
        return Fail("expected key position");
      }
      int pos = static_cast<int>(Cur().number);
      if (pos < 1) {
        return Fail("key positions are 1-based");
      }
      m.key_positions.push_back(static_cast<size_t>(pos - 1));
      Advance();
      if (AtSym(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (!ExpectSym(")") || !ExpectSym(")") || !ExpectSym(".")) {
      return false;
    }
    out_->materializations.push_back(std::move(m));
    return true;
  }

  bool LifeOrSize(double* out) {
    if (AtIdent("infinity")) {
      *out = std::numeric_limits<double>::infinity();
      Advance();
      return true;
    }
    if (At(TokKind::kNumber)) {
      *out = Cur().number;
      Advance();
      return true;
    }
    return Fail("expected number or 'infinity'");
  }

  bool Watch() {
    Advance();
    if (!ExpectSym("(")) {
      return false;
    }
    if (!At(TokKind::kIdent)) {
      return Fail("expected tuple name in watch()");
    }
    out_->watches.push_back(Cur().text);
    Advance();
    return ExpectSym(")") && ExpectSym(".");
  }

  bool RuleStatement() {
    RuleAst rule;
    // Optional rule identifier: any ident/variable token directly followed
    // by another identifier (the head name) or the 'delete' keyword.
    if ((At(TokKind::kIdent) || At(TokKind::kVariable)) && Cur().text != "delete" &&
        (Peek().kind == TokKind::kIdent)) {
      rule.id = Cur().text;
      Advance();
    }
    if (AtIdent("delete")) {
      rule.delete_head = true;
      Advance();
    }
    if (!ParsePredicate(&rule.head, /*allow_agg=*/true)) {
      return false;
    }
    if (AtSym(":-")) {
      Advance();
      for (;;) {
        BodyTerm term;
        if (!ParseBodyTerm(&term)) {
          return false;
        }
        rule.body.push_back(std::move(term));
        if (AtSym(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!ExpectSym(".")) {
      return false;
    }
    out_->rules.push_back(std::move(rule));
    return true;
  }

  bool ParsePredicate(PredicateAst* p, bool allow_agg) {
    if (!At(TokKind::kIdent)) {
      return Fail("expected predicate name");
    }
    p->name = Cur().text;
    Advance();
    if (AtSym("@")) {
      Advance();
      if (!At(TokKind::kVariable)) {
        return Fail("expected location variable after '@'");
      }
      p->locspec = Cur().text;
      Advance();
    }
    if (!ExpectSym("(")) {
      return false;
    }
    if (!AtSym(")")) {
      for (;;) {
        ExprPtr arg;
        if (allow_agg && At(TokKind::kIdent) && IsAggName(Cur().text) &&
            Peek().kind == TokKind::kSymbol && Peek().text == "<") {
          std::string agg = Cur().text;
          Advance();  // agg name
          Advance();  // '<'
          std::string var;
          if (At(TokKind::kVariable)) {
            var = Cur().text;
            Advance();
          } else if (AtSym("*")) {
            var = "*";
            Advance();
          } else {
            return Fail("expected variable or * in aggregate");
          }
          if (!ExpectSym(">")) {
            return false;
          }
          arg = Expr::Agg(agg, var);
        } else if (!ParseExpr(&arg)) {
          return false;
        }
        p->args.push_back(std::move(arg));
        if (AtSym(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    return ExpectSym(")");
  }

  bool ParseBodyTerm(BodyTerm* out) {
    if (AtIdent("not")) {
      Advance();
      PredicateAst p;
      if (!ParsePredicate(&p, /*allow_agg=*/false)) {
        return false;
      }
      p.negated = true;
      *out = std::move(p);
      return true;
    }
    // Predicate: lower-case name (not a builtin f_*) followed by '(' or '@'.
    if (At(TokKind::kIdent) && Cur().text.rfind("f_", 0) != 0 &&
        Peek().kind == TokKind::kSymbol && (Peek().text == "(" || Peek().text == "@")) {
      PredicateAst p;
      if (!ParsePredicate(&p, /*allow_agg=*/false)) {
        return false;
      }
      *out = std::move(p);
      return true;
    }
    // Assignment: Var := expr.
    if (At(TokKind::kVariable) && Peek().kind == TokKind::kSymbol && Peek().text == ":=") {
      AssignAst a;
      a.var = Cur().text;
      Advance();
      Advance();  // :=
      if (!ParseExpr(&a.expr)) {
        return false;
      }
      *out = std::move(a);
      return true;
    }
    // Otherwise: a filter expression.
    ExprPtr e;
    if (!ParseExpr(&e)) {
      return false;
    }
    *out = std::move(e);
    return true;
  }

  // Expression precedence (loosest to tightest):
  //   ||  <  &&  <  comparisons and 'in'  <  <<  <  + -  <  * / %  <  unary
  bool ParseExpr(ExprPtr* out) { return ParseOr(out); }

  bool ParseOr(ExprPtr* out) {
    if (!ParseAnd(out)) {
      return false;
    }
    while (AtSym("||")) {
      Advance();
      ExprPtr rhs;
      if (!ParseAnd(&rhs)) {
        return false;
      }
      *out = Expr::Binary("||", *out, rhs);
    }
    return true;
  }

  bool ParseAnd(ExprPtr* out) {
    if (!ParseCompare(out)) {
      return false;
    }
    while (AtSym("&&")) {
      Advance();
      ExprPtr rhs;
      if (!ParseCompare(&rhs)) {
        return false;
      }
      *out = Expr::Binary("&&", *out, rhs);
    }
    return true;
  }

  bool ParseCompare(ExprPtr* out) {
    if (!ParseShift(out)) {
      return false;
    }
    for (;;) {
      if (AtIdent("in")) {
        Advance();
        bool lo_open;
        if (AtSym("(")) {
          lo_open = true;
        } else if (AtSym("[")) {
          lo_open = false;
        } else {
          return Fail("expected '(' or '[' after 'in'");
        }
        Advance();
        ExprPtr lo;
        ExprPtr hi;
        if (!ParseShift(&lo) || !ExpectSym(",") || !ParseShift(&hi)) {
          return false;
        }
        bool hi_open;
        if (AtSym(")")) {
          hi_open = true;
        } else if (AtSym("]")) {
          hi_open = false;
        } else {
          return Fail("expected ')' or ']' closing range");
        }
        Advance();
        *out = Expr::Range(*out, lo, hi, lo_open, hi_open);
        continue;
      }
      static const char* kCmp[] = {"==", "!=", "<=", ">=", "<", ">"};
      bool found = false;
      for (const char* op : kCmp) {
        if (AtSym(op)) {
          Advance();
          ExprPtr rhs;
          if (!ParseShift(&rhs)) {
            return false;
          }
          *out = Expr::Binary(op, *out, rhs);
          found = true;
          break;
        }
      }
      if (!found) {
        return true;
      }
    }
  }

  bool ParseShift(ExprPtr* out) {
    if (!ParseAdd(out)) {
      return false;
    }
    while (AtSym("<<")) {
      Advance();
      ExprPtr rhs;
      if (!ParseAdd(&rhs)) {
        return false;
      }
      *out = Expr::Binary("<<", *out, rhs);
    }
    return true;
  }

  bool ParseAdd(ExprPtr* out) {
    if (!ParseMul(out)) {
      return false;
    }
    while (AtSym("+") || AtSym("-")) {
      std::string op = Cur().text;
      Advance();
      ExprPtr rhs;
      if (!ParseMul(&rhs)) {
        return false;
      }
      *out = Expr::Binary(op, *out, rhs);
    }
    return true;
  }

  bool ParseMul(ExprPtr* out) {
    if (!ParseUnary(out)) {
      return false;
    }
    while (AtSym("*") || AtSym("/") || AtSym("%")) {
      std::string op = Cur().text;
      Advance();
      ExprPtr rhs;
      if (!ParseUnary(&rhs)) {
        return false;
      }
      *out = Expr::Binary(op, *out, rhs);
    }
    return true;
  }

  bool ParseUnary(ExprPtr* out) {
    if (AtSym("-")) {
      Advance();
      ExprPtr x;
      if (!ParseUnary(&x)) {
        return false;
      }
      *out = Expr::Unary("-", x);
      return true;
    }
    if (AtSym("!")) {
      Advance();
      ExprPtr x;
      if (!ParseUnary(&x)) {
        return false;
      }
      *out = Expr::Unary("!", x);
      return true;
    }
    return ParsePrimary(out);
  }

  bool ParsePrimary(ExprPtr* out) {
    if (At(TokKind::kNumber)) {
      *out = Expr::Const(Cur().is_integer ? Value::Int(static_cast<int64_t>(Cur().number))
                                          : Value::Double(Cur().number));
      Advance();
      return true;
    }
    if (At(TokKind::kHexId)) {
      Uint160 id;
      if (!Uint160::FromHex(Cur().text, &id)) {
        return Fail("bad hex literal");
      }
      *out = Expr::Const(Value::Id(id));
      Advance();
      return true;
    }
    if (At(TokKind::kString)) {
      *out = Expr::Const(Value::Str(Cur().text));
      Advance();
      return true;
    }
    if (At(TokKind::kVariable)) {
      *out = Expr::Var(Cur().text);
      Advance();
      return true;
    }
    if (AtIdent("true") || AtIdent("false")) {
      *out = Expr::Const(Value::Bool(Cur().text == "true"));
      Advance();
      return true;
    }
    if (At(TokKind::kIdent)) {
      // Built-in call, optionally location-annotated: f_now@Y().
      std::string fn = Cur().text;
      Advance();
      if (AtSym("@")) {
        Advance();
        if (!At(TokKind::kVariable)) {
          return Fail("expected variable after '@'");
        }
        Advance();  // Location on builtins is evaluated locally post-rewrite.
      }
      if (!ExpectSym("(")) {
        return false;
      }
      std::vector<ExprPtr> args;
      if (!AtSym(")")) {
        for (;;) {
          ExprPtr a;
          if (!ParseExpr(&a)) {
            return false;
          }
          args.push_back(std::move(a));
          if (AtSym(",")) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (!ExpectSym(")")) {
        return false;
      }
      *out = Expr::Call(fn, std::move(args));
      return true;
    }
    if (AtSym("(")) {
      Advance();
      if (!ParseExpr(out)) {
        return false;
      }
      return ExpectSym(")");
    }
    return Fail("expected expression");
  }

  std::vector<Token> toks_;
  ProgramAst* out_;
  size_t pos_ = 0;
  std::string err_;
};

}  // namespace

bool ParseOverLog(const std::string& src, ProgramAst* out, std::string* err) {
  std::vector<Token> toks;
  if (!LexOverLog(src, &toks, err)) {
    return false;
  }
  Parser p(std::move(toks), out);
  return p.Run(err);
}

}  // namespace p2
