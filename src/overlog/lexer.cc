#include "src/overlog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace p2 {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool LexOverLog(const std::string& src, std::vector<Token>* out, std::string* err) {
  size_t i = 0;
  int line = 1;
  auto fail = [&](const std::string& msg) {
    *err = "lex error at line " + std::to_string(line) + ": " + msg;
    return false;
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: /* ... */, // ..., and # ...
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= src.size()) {
        return fail("unterminated comment");
      }
      i += 2;
      continue;
    }
    if ((c == '/' && i + 1 < src.size() && src[i + 1] == '/') || c == '#') {
      while (i < src.size() && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    // String literal.
    if (c == '"') {
      std::string s;
      ++i;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          ++i;
        }
        if (src[i] == '\n') {
          ++line;
        }
        s.push_back(src[i]);
        ++i;
      }
      if (i >= src.size()) {
        return fail("unterminated string");
      }
      ++i;
      out->push_back(Token{TokKind::kString, s, 0, false, line});
      continue;
    }
    // Hex identifier literal (0x...).
    if (c == '0' && i + 1 < src.size() && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
      size_t start = i;
      i += 2;
      while (i < src.size() && std::isxdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      out->push_back(Token{TokKind::kHexId, src.substr(start, i - start), 0, false, line});
      continue;
    }
    // Number (integer or double).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      // A '.' is part of the number only if followed by a digit ('.' also
      // terminates statements).
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_double = true;
        ++i;
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
          ++i;
        }
      }
      std::string text = src.substr(start, i - start);
      Token t{TokKind::kNumber, text, std::strtod(text.c_str(), nullptr), !is_double, line};
      out->push_back(t);
      continue;
    }
    // Identifier / variable.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < src.size() && IsIdentChar(src[i])) {
        ++i;
      }
      std::string text = src.substr(start, i - start);
      TokKind kind = (std::isupper(static_cast<unsigned char>(text[0])) || text[0] == '_')
                         ? TokKind::kVariable
                         : TokKind::kIdent;
      out->push_back(Token{kind, text, 0, false, line});
      continue;
    }
    // Multi-char symbols (longest match first).
    static const char* kTwoChar[] = {":-", ":=", "==", "!=", "<=", ">=", "<<", "&&", "||"};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (src.compare(i, 2, sym) == 0) {
        out->push_back(Token{TokKind::kSymbol, sym, 0, false, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    static const std::string kOneChar = "()[]{},.@<>+-*/%!=";
    if (kOneChar.find(c) != std::string::npos) {
      out->push_back(Token{TokKind::kSymbol, std::string(1, c), 0, false, line});
      ++i;
      continue;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
  out->push_back(Token{TokKind::kEnd, "", 0, false, line});
  return true;
}

}  // namespace p2
