// The P2 planner (§3.5): translates a parsed, localized OverLog program
// into tables, indices and a dataflow element graph inside a P2Node.
//
// Per rule, the planner emits one or more *variants*: a RuleDriver fed by
// an event source (periodic timer, stream demux port, or a table's delta
// stream), a sequence of equijoin / anti-join / filter / extend elements
// over the remaining body terms, a projection constructing the head tuple,
// optional per-event aggregation (AggWrap), and finally either a table
// delete, or the node's output router which sends remote tuples over the
// network and loops local ones back into the input queue.
//
// In the default semi-naive mode (kSemiNaive), a rule whose body is all
// materialized predicates is rewritten into per-delta variants: one
// insert-triggered chain per body predicate (any table gaining a row can
// complete a join, so each gets its own trigger), plus — when the head is
// itself materialized — one remove-triggered chain per body predicate that
// re-derives the head tuple from the retracted row and deletes it, so
// retractions propagate instead of waiting for soft-state expiry. Join
// order within each chain is chosen greedily by estimated fanout
// (Table::EstimateFanout) rather than rule-text order, and every probed
// index is declared at plan time. The legacy mode (kLegacy) reproduces the
// old planner exactly — single trigger on the first table predicate,
// text-order joins, full-scan table aggregates — and exists so the
// differential tests can compare the two evaluators.
#ifndef P2_OVERLOG_PLANNER_H_
#define P2_OVERLOG_PLANNER_H_

#include <string>

#include "src/overlog/ast.h"

namespace p2 {

class P2Node;

// How rules are compiled into dataflow chains. See file comment.
enum class PlannerMode {
  kSemiNaive,  // per-delta variants, cost-ordered joins, incremental aggs
  kLegacy,     // single trigger, text-order joins, full-scan aggs
};

class Planner {
 public:
  // Installs `program` into `node` (mode taken from the node's config). On
  // failure returns false with a diagnostic in *err; the node is then in
  // an unusable state.
  static bool Install(const ProgramAst& program, P2Node* node, std::string* err);
};

}  // namespace p2

#endif  // P2_OVERLOG_PLANNER_H_
