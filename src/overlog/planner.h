// The P2 planner (§3.5): translates a parsed, localized OverLog program
// into tables, indices and a dataflow element graph inside a P2Node.
//
// Per rule, the planner emits: a RuleDriver fed by the rule's event source
// (periodic timer, stream demux port, or table delta), a sequence of
// equijoin / anti-join / filter / extend elements following the body terms
// in dependency order, a projection constructing the head tuple, optional
// per-event aggregation (AggWrap), and finally either a table delete, or
// the node's output router which sends remote tuples over the network and
// loops local ones back into the input queue.
#ifndef P2_OVERLOG_PLANNER_H_
#define P2_OVERLOG_PLANNER_H_

#include <string>

#include "src/overlog/ast.h"

namespace p2 {

class P2Node;

class Planner {
 public:
  // Installs `program` into `node`. On failure returns false with a
  // diagnostic in *err; the node is then in an unusable state.
  static bool Install(const ProgramAst& program, P2Node* node, std::string* err);
};

}  // namespace p2

#endif  // P2_OVERLOG_PLANNER_H_
