#include "src/overlog/localizer.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/overlog/compile_expr.h"

namespace p2 {
namespace {

// Variables bound by a positive predicate occurrence.
void PredBoundVars(const PredicateAst& p, std::unordered_set<std::string>* out) {
  for (const ExprPtr& a : p.args) {
    if (a->kind == ExprKind::kVar && a->name != "_") {
      out->insert(a->name);
    }
  }
}

void TermVars(const BodyTerm& t, std::vector<std::string>* out) {
  if (std::holds_alternative<PredicateAst>(t)) {
    for (const ExprPtr& a : std::get<PredicateAst>(t).args) {
      CollectVars(*a, out);
    }
  } else if (std::holds_alternative<AssignAst>(t)) {
    CollectVars(*std::get<AssignAst>(t).expr, out);
  } else {
    CollectVars(*std::get<ExprPtr>(t), out);
  }
}

}  // namespace

bool LocalizeProgram(ProgramAst* program, std::string* err) {
  std::vector<RuleAst> rewritten;
  int tmp_counter = 0;
  for (RuleAst& rule : program->rules) {
    if (rule.IsFact()) {
      rewritten.push_back(std::move(rule));
      continue;
    }
    // Collect the distinct body location variables.
    std::vector<std::string> locs;
    for (const BodyTerm& t : rule.body) {
      if (!std::holds_alternative<PredicateAst>(t)) {
        continue;
      }
      const PredicateAst& p = std::get<PredicateAst>(t);
      if (p.locspec.empty()) {
        continue;  // Unannotated predicates are local to the rule's site.
      }
      if (std::find(locs.begin(), locs.end(), p.locspec) == locs.end()) {
        locs.push_back(p.locspec);
      }
    }
    if (locs.size() <= 1) {
      rewritten.push_back(std::move(rule));
      continue;
    }
    if (locs.size() > 2) {
      *err = "rule " + rule.id + ": bodies spanning more than two locations are unsupported";
      return false;
    }
    // Two locations: X carries the event, Y the rest. Identify X as the
    // location of the first stream (non-materialized) predicate, falling
    // back to the first predicate.
    std::string x_loc;
    for (const BodyTerm& t : rule.body) {
      if (!std::holds_alternative<PredicateAst>(t)) {
        continue;
      }
      const PredicateAst& p = std::get<PredicateAst>(t);
      if (!p.negated && !program->IsMaterialized(p.name) && !p.locspec.empty()) {
        x_loc = p.locspec;
        break;
      }
    }
    if (x_loc.empty()) {
      x_loc = locs[0];
    }
    std::string y_loc = (locs[0] == x_loc) ? locs[1] : locs[0];

    // Partition body terms. Predicates split by location. Filters stay on X
    // when fully bound there (selection pushdown); assignments and
    // remaining filters go to Y.
    std::vector<BodyTerm> x_terms;
    std::vector<BodyTerm> y_terms;
    std::unordered_set<std::string> bound_x;
    for (const BodyTerm& t : rule.body) {
      if (std::holds_alternative<PredicateAst>(t)) {
        const PredicateAst& p = std::get<PredicateAst>(t);
        if (p.locspec == y_loc) {
          y_terms.push_back(t);
        } else {
          x_terms.push_back(t);
          if (!p.negated) {
            PredBoundVars(p, &bound_x);
          }
        }
      }
    }
    for (const BodyTerm& t : rule.body) {
      if (std::holds_alternative<PredicateAst>(t)) {
        continue;
      }
      std::vector<std::string> vars;
      TermVars(t, &vars);
      bool all_x = true;
      for (const std::string& v : vars) {
        if (bound_x.count(v) == 0) {
          all_x = false;
          break;
        }
      }
      bool is_filter = std::holds_alternative<ExprPtr>(t);
      if (is_filter && all_x) {
        x_terms.push_back(t);
      } else {
        y_terms.push_back(t);
      }
    }

    // Shipped variables: bound on X and needed by the Y side or the head.
    std::vector<std::string> needed;
    for (const BodyTerm& t : y_terms) {
      TermVars(t, &needed);
    }
    for (const ExprPtr& a : rule.head.args) {
      CollectVars(*a, &needed);
    }
    std::vector<std::string> shipped;
    std::set<std::string> seen;
    // The destination location variable rides first (it becomes the tuple's
    // location specifier).
    if (bound_x.count(y_loc) == 0) {
      *err = "rule " + rule.id + ": destination location '" + y_loc +
             "' is not bound on the event side";
      return false;
    }
    shipped.push_back(y_loc);
    seen.insert(y_loc);
    for (const std::string& v : needed) {
      if (bound_x.count(v) > 0 && seen.insert(v).second) {
        shipped.push_back(v);
      }
    }

    std::string tmp_name =
        "loc$" + (rule.id.empty() ? std::to_string(tmp_counter) : rule.id) + "$ship";
    ++tmp_counter;

    // Rule 1 (at X): ship the needed bindings to Y.
    RuleAst ship;
    ship.id = rule.id + "@ship";
    ship.head.name = tmp_name;
    ship.head.locspec = y_loc;
    for (const std::string& v : shipped) {
      ship.head.args.push_back(Expr::Var(v));
    }
    ship.body = std::move(x_terms);
    rewritten.push_back(std::move(ship));

    // Rule 2 (at Y): receive and finish the rule.
    RuleAst recv;
    recv.id = rule.id + "@recv";
    recv.head = rule.head;
    recv.delete_head = rule.delete_head;
    PredicateAst trigger;
    trigger.name = tmp_name;
    trigger.locspec = y_loc;
    for (const std::string& v : shipped) {
      trigger.args.push_back(Expr::Var(v));
    }
    recv.body.push_back(std::move(trigger));
    for (BodyTerm& t : y_terms) {
      recv.body.push_back(std::move(t));
    }
    rewritten.push_back(std::move(recv));
  }
  program->rules = std::move(rewritten);
  return true;
}

}  // namespace p2
