#include "src/sim/shard.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/runtime/logging.h"
#include "src/runtime/value.h"

namespace p2 {

ShardedSim::ShardedSim(size_t num_shards)
    : window_(std::numeric_limits<double>::infinity()), control_(this) {
  if (num_shards < 1) {
    num_shards = 1;
  }
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto loop = std::make_unique<SimEventLoop>();
    loop->shard_index_ = i;
    shards_.push_back(std::move(loop));
  }
}

ShardedSim::~ShardedSim() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ShardedSim::SetObs(obs::Registry* registry, obs::TraceLog* trace) {
  obs_registry_ = registry;
  trace_ = trace;
  barrier_wait_.clear();
  if (registry != nullptr) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      barrier_wait_.push_back(registry->GetHistogram(
          i, "p2_shard_barrier_wait_ns{shard=\"" + std::to_string(i) + "\"}"));
      shards_[i]->BindObs(registry);
    }
  }
}

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

void ShardedSim::set_sync_window(double w) {
  P2_CHECK(w > 0);
  window_ = std::min(window_, w);
}

uint64_t ShardedSim::events_run() const {
  uint64_t total = control_events_run_;
  for (const auto& s : shards_) {
    total += s->events_run();
  }
  return total;
}

void ShardedSim::EnsureWorkers() {
  if (shards_.size() == 1 || !workers_.empty()) {
    return;
  }
  workers_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i]() { WorkerMain(i); });
  }
}

void ShardedSim::WorkerMain(size_t index) {
  uint64_t seen = 0;
  // Barrier wait = wall time from this worker finishing its window to the
  // coordinator waking it for the next one (park + straggler-drain time).
  bool have_window_end = false;
  std::chrono::steady_clock::time_point window_end_tp;
  const bool instrumented = obs_registry_ != nullptr || trace_ != nullptr;
  for (;;) {
    double end;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Fully parked: no window running, no straggler-drain touching our
      // heap. The coordinator waits for resting_ == num_shards before it
      // runs control tasks, which may push into any shard's heap directly.
      ++resting_;
      cv_done_.notify_all();
      cv_work_.wait(lock, [&]() { return stop_ || epoch_ != seen; });
      --resting_;
      if (stop_) {
        lock.unlock();
        // Recycled Id blocks parked in this thread's pool would otherwise
        // outlive the thread as a leak.
        DrainThreadIdRepPool();
        return;
      }
      seen = epoch_;
      end = target_;
      inclusive = inclusive_;
    }
    if (instrumented && have_window_end) {
      uint64_t wait_ns = ElapsedNs(window_end_tp, std::chrono::steady_clock::now());
      if (!barrier_wait_.empty()) {
        barrier_wait_[index]->Observe(wait_ns);
      }
      if (trace_ != nullptr) {
        double vt = shards_[index]->Now();
        double dur_us = static_cast<double>(wait_ns) / 1000.0;
        trace_->Add(index, obs::TraceEvent{"barrier", trace_->NowUs() - dur_us,
                                           dur_us, vt, vt, 0});
      }
    }
    double vt_begin = shards_[index]->Now();
    uint64_t ev0 = shards_[index]->events_run();
    double ts0 = trace_ != nullptr ? trace_->NowUs() : 0;
    shards_[index]->RunWindow(end, inclusive);
    if (instrumented) {
      window_end_tp = std::chrono::steady_clock::now();
      have_window_end = true;
      if (trace_ != nullptr) {
        trace_->Add(index,
                    obs::TraceEvent{"window", ts0, trace_->NowUs() - ts0, vt_begin, end,
                                    shards_[index]->events_run() - ev0});
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == shards_.size()) {
        // Wakes the coordinator and any peers in the straggler-drain loop.
        cv_done_.notify_all();
      }
    }
    // Straggler phase: peers still inside this window may flood our bounded
    // mailbox; keep folding it (owning thread) so their blocked pushes make
    // progress instead of deadlocking the barrier. Once every shard is done
    // no shard thread sends until the next epoch, so we park cleanly and the
    // next RunWindow's entry drain picks up the remainder.
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_ && epoch_ == seen && done_ != shards_.size()) {
      lock.unlock();
      shards_[index]->DrainMailbox();
      lock.lock();
      cv_done_.wait_for(lock, std::chrono::microseconds(200), [&]() {
        return stop_ || epoch_ != seen || done_ == shards_.size();
      });
    }
  }
}

void ShardedSim::RunShardsWindow(double end, bool inclusive) {
  if (shards_.size() == 1) {
    // Single shard: the "barrier wait" is the coordinator's gap between
    // window ends — control tasks plus loop overhead — so the metric is
    // meaningful (and nonzero) at any shard count.
    const bool instrumented = obs_registry_ != nullptr || trace_ != nullptr;
    if (instrumented && have_last_window_end_) {
      uint64_t wait_ns = ElapsedNs(last_window_end_, std::chrono::steady_clock::now());
      if (!barrier_wait_.empty()) {
        barrier_wait_[0]->Observe(wait_ns);
      }
      if (trace_ != nullptr) {
        double vt = shards_[0]->Now();
        double dur_us = static_cast<double>(wait_ns) / 1000.0;
        trace_->Add(0, obs::TraceEvent{"barrier", trace_->NowUs() - dur_us, dur_us,
                                       vt, vt, 0});
      }
    }
    double vt_begin = shards_[0]->Now();
    uint64_t ev0 = shards_[0]->events_run();
    double ts0 = trace_ != nullptr ? trace_->NowUs() : 0;
    shards_[0]->RunWindow(end, inclusive);
    if (instrumented) {
      last_window_end_ = std::chrono::steady_clock::now();
      have_last_window_end_ = true;
      if (trace_ != nullptr) {
        trace_->Add(0, obs::TraceEvent{"window", ts0, trace_->NowUs() - ts0, vt_begin,
                                       end, shards_[0]->events_run() - ev0});
      }
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ = end;
    inclusive_ = inclusive;
    done_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock,
                [&]() { return done_ == shards_.size() && resting_ == shards_.size(); });
  // Mailboxes may still hold messages mailed late in the window; each
  // shard folds its own at the top of its next RunWindow (the fold is
  // owner-thread-only by design), and conservative sync guarantees nothing
  // in them is due before that window starts.
}

void ShardedSim::RunDueControl() {
  double at;
  Task task;
  uint64_t ran = 0;
  double ts0 = trace_ != nullptr ? trace_->NowUs() : 0;
  while (control_.wheel_.PopDue(now_, &at, &task)) {
    ++control_events_run_;
    ++ran;
    task();
  }
  if (trace_ != nullptr && ran > 0) {
    // Coordinator actions get the lane past the shards' (tid = num_shards).
    trace_->Add(shards_.size(),
                obs::TraceEvent{"control", ts0, trace_->NowUs() - ts0, now_, now_, ran});
  }
}

void ShardedSim::RunUntil(double deadline) {
  if (deadline < now_) {
    return;
  }
  EnsureWorkers();
  for (;;) {
    // Control tasks due at the barrier run first — before shard events at
    // the same instant — on the coordinator thread, with every shard
    // parked. They may schedule more control work or touch any shard.
    RunDueControl();
    if (now_ >= deadline) {
      break;
    }
    double end = std::min(now_ + window_, deadline);
    double hint = control_.wheel_.NextDueHint();
    if (hint > now_ && hint < end) {
      end = hint;  // shrink the window so the control task fires on time
    }
    RunShardsWindow(end, /*inclusive=*/false);
    now_ = end;
  }
  // Events at exactly `deadline` run in a final inclusive pass, after any
  // control task scheduled for `deadline`.
  RunShardsWindow(deadline, /*inclusive=*/true);
}

}  // namespace p2
