#include "src/sim/shard.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "src/runtime/logging.h"
#include "src/runtime/value.h"

namespace p2 {

ShardedSim::ShardedSim(size_t num_shards)
    : window_(std::numeric_limits<double>::infinity()), control_(this) {
  if (num_shards < 1) {
    num_shards = 1;
  }
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto loop = std::make_unique<SimEventLoop>();
    loop->shard_index_ = i;
    shards_.push_back(std::move(loop));
  }
}

ShardedSim::~ShardedSim() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ShardedSim::set_sync_window(double w) {
  P2_CHECK(w > 0);
  window_ = std::min(window_, w);
}

uint64_t ShardedSim::events_run() const {
  uint64_t total = control_events_run_;
  for (const auto& s : shards_) {
    total += s->events_run();
  }
  return total;
}

void ShardedSim::EnsureWorkers() {
  if (shards_.size() == 1 || !workers_.empty()) {
    return;
  }
  workers_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i]() { WorkerMain(i); });
  }
}

void ShardedSim::WorkerMain(size_t index) {
  uint64_t seen = 0;
  for (;;) {
    double end;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Fully parked: no window running, no straggler-drain touching our
      // heap. The coordinator waits for resting_ == num_shards before it
      // runs control tasks, which may push into any shard's heap directly.
      ++resting_;
      cv_done_.notify_all();
      cv_work_.wait(lock, [&]() { return stop_ || epoch_ != seen; });
      --resting_;
      if (stop_) {
        lock.unlock();
        // Recycled Id blocks parked in this thread's pool would otherwise
        // outlive the thread as a leak.
        DrainThreadIdRepPool();
        return;
      }
      seen = epoch_;
      end = target_;
      inclusive = inclusive_;
    }
    shards_[index]->RunWindow(end, inclusive);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == shards_.size()) {
        // Wakes the coordinator and any peers in the straggler-drain loop.
        cv_done_.notify_all();
      }
    }
    // Straggler phase: peers still inside this window may flood our bounded
    // mailbox; keep folding it (owning thread) so their blocked pushes make
    // progress instead of deadlocking the barrier. Once every shard is done
    // no shard thread sends until the next epoch, so we park cleanly and the
    // next RunWindow's entry drain picks up the remainder.
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_ && epoch_ == seen && done_ != shards_.size()) {
      lock.unlock();
      shards_[index]->DrainMailbox();
      lock.lock();
      cv_done_.wait_for(lock, std::chrono::microseconds(200), [&]() {
        return stop_ || epoch_ != seen || done_ == shards_.size();
      });
    }
  }
}

void ShardedSim::RunShardsWindow(double end, bool inclusive) {
  if (shards_.size() == 1) {
    shards_[0]->RunWindow(end, inclusive);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ = end;
    inclusive_ = inclusive;
    done_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock,
                [&]() { return done_ == shards_.size() && resting_ == shards_.size(); });
  // Mailboxes may still hold messages mailed late in the window; each
  // shard folds its own at the top of its next RunWindow (the fold is
  // owner-thread-only by design), and conservative sync guarantees nothing
  // in them is due before that window starts.
}

void ShardedSim::RunDueControl() {
  double at;
  Task task;
  while (control_.wheel_.PopDue(now_, &at, &task)) {
    ++control_events_run_;
    task();
  }
}

void ShardedSim::RunUntil(double deadline) {
  if (deadline < now_) {
    return;
  }
  EnsureWorkers();
  for (;;) {
    // Control tasks due at the barrier run first — before shard events at
    // the same instant — on the coordinator thread, with every shard
    // parked. They may schedule more control work or touch any shard.
    RunDueControl();
    if (now_ >= deadline) {
      break;
    }
    double end = std::min(now_ + window_, deadline);
    double hint = control_.wheel_.NextDueHint();
    if (hint > now_ && hint < end) {
      end = hint;  // shrink the window so the control task fires on time
    }
    RunShardsWindow(end, /*inclusive=*/false);
    now_ = end;
  }
  // Events at exactly `deadline` run in a final inclusive pass, after any
  // control task scheduled for `deadline`.
  RunShardsWindow(deadline, /*inclusive=*/true);
}

}  // namespace p2
