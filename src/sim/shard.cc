#include "src/sim/shard.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/runtime/logging.h"
#include "src/runtime/value.h"

namespace p2 {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Spin budget before parking on a condvar (and before the coordinator
// parks waiting for stragglers). Windows are typically sub-millisecond of
// wall time, so ~100us of spinning catches the common case without
// burning a core for long. Spinning only pays when every worker has its
// own core: on an oversubscribed host a non-yielding spin just delays the
// runnable peer by a scheduler quantum per handoff, so the budget drops
// to zero there and threads park immediately.
constexpr int kSpinIters = 2500;

int SpinBudget(size_t active_workers) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  return active_workers <= hw ? kSpinIters : 0;
}

// Straggler-phase pacing: stay polite while peers finish their windows.
// When oversubscribed, skip the relax phase and hand the core over at
// once — the peer we are waiting on needs it.
void StragglerPause(uint32_t* attempt, bool oversubscribed) {
  uint32_t a = (*attempt)++;
  if (oversubscribed) {
    a += 64;
  }
  if (a < 64) {
    CpuRelax();
    return;
  }
  if (a < 128) {
    std::this_thread::yield();
    return;
  }
  uint32_t shift = std::min<uint32_t>(a - 128, 6);
  std::this_thread::sleep_for(std::chrono::microseconds(1u << shift));
}

}  // namespace

ShardedSim::ShardedSim(size_t num_shards)
    : window_(std::numeric_limits<double>::infinity()), control_(this) {
  if (num_shards < 1) {
    num_shards = 1;
  }
  requested_workers_ = num_shards;
  loops_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto loop = std::make_unique<SimEventLoop>();
    loop->shard_index_ = i;
    loops_.push_back(std::move(loop));
  }
  WirePeers();
}

ShardedSim::~ShardedSim() {
  stop_.store(true, std::memory_order_relaxed);
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ShardedSim::WirePeers() {
  std::vector<SimEventLoop*> peers;
  peers.reserve(loops_.size());
  for (auto& l : loops_) {
    peers.push_back(l.get());
  }
  for (auto& l : loops_) {
    l->SetPeers(peers);
  }
}

void ShardedSim::ConfigureLoops(size_t n) {
  if (n < 1) {
    n = 1;
  }
  P2_CHECK(workers_.empty());
  for (auto& l : loops_) {
    // Reshaping discards loops, so nothing may live on them yet.
    P2_CHECK(l->events_run() == 0 && l->pending() == 0 && l->Now() == 0.0);
  }
  loops_.clear();
  loops_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto loop = std::make_unique<SimEventLoop>();
    loop->shard_index_ = i;
    loops_.push_back(std::move(loop));
  }
  WirePeers();
  owner_.clear();
  plan_.clear();
  last_events_.clear();
  window_cost_.clear();
}

void ShardedSim::SetObs(obs::Registry* registry, obs::TraceLog* trace) {
  obs_registry_ = registry;
  trace_ = trace;
  barrier_wait_.clear();
  obs_steals_ = nullptr;
  obs_owner_moves_ = nullptr;
  obs_imbalance_ = nullptr;
  if (registry != nullptr) {
    for (size_t w = 0; w < num_workers(); ++w) {
      barrier_wait_.push_back(registry->GetHistogram(
          w, "p2_shard_barrier_wait_ns{shard=\"" + std::to_string(w) + "\"}"));
    }
    for (auto& l : loops_) {
      l->BindObs(registry);
    }
    const size_t coord = loops_.size();
    obs_steals_ = registry->GetCounter(coord, "p2_shard_steals_total");
    obs_owner_moves_ = registry->GetCounter(coord, "p2_domain_owner_moves_total");
    obs_imbalance_ = registry->GetGauge(coord, "p2_shard_window_imbalance_pct");
  }
}

void ShardedSim::set_sync_window(double w) {
  P2_CHECK(w > 0);
  window_ = std::min(window_, w);
}

uint64_t ShardedSim::events_run() const {
  uint64_t total = control_events_run_;
  for (const auto& s : loops_) {
    total += s->events_run();
  }
  return total;
}

void ShardedSim::EnsureWorkers() {
  const size_t active = num_workers();
  if (plan_.empty()) {
    owner_.resize(loops_.size());
    for (size_t l = 0; l < loops_.size(); ++l) {
      owner_[l] = l % active;
    }
    plan_.assign(active, {});
    for (size_t l = 0; l < loops_.size(); ++l) {
      plan_[owner_[l]].push_back(l);
    }
    last_events_.assign(loops_.size(), 0);
    window_cost_.assign(loops_.size(), 0);
  }
  spin_iters_ = SpinBudget(active);
  if (active <= 1 || !workers_.empty()) {
    return;
  }
  workers_.reserve(active - 1);
  for (size_t w = 1; w < active; ++w) {
    workers_.emplace_back([this, w]() { WorkerMain(w); });
  }
}

bool ShardedSim::AwaitEpoch(uint64_t seen) {
  for (int i = 0; i < spin_iters_; ++i) {
    if (stop_.load(std::memory_order_relaxed)) {
      return false;
    }
    if (epoch_.load(std::memory_order_acquire) != seen) {
      return true;
    }
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++sleepers_;
  cv_work_.wait(lock, [&]() {
    return stop_.load(std::memory_order_relaxed) ||
           epoch_.load(std::memory_order_acquire) != seen;
  });
  --sleepers_;
  return !stop_.load(std::memory_order_relaxed);
}

void ShardedSim::RunPlanned(size_t worker, double end, bool inclusive,
                            std::vector<SimEventLoop*>& mine,
                            std::chrono::steady_clock::time_point* window_end) {
  const size_t active = num_workers();
  mine.clear();
  for (size_t l : plan_[worker]) {
    mine.push_back(loops_[l].get());
  }
  // A flush blocked on a full peer mailbox drains every loop we own, which
  // is what makes cyclic backpressure between workers deadlock-free.
  SimEventLoop::BindWorkerLoops(mine.data(), mine.size());
  const bool instrumented = obs_registry_ != nullptr || trace_ != nullptr;
  double ts0 = trace_ != nullptr ? trace_->NowUs() : 0;
  double vt_begin = now_;
  uint64_t ev0 = 0;
  if (instrumented) {
    for (SimEventLoop* l : mine) {
      ev0 += l->events_run();
    }
  }
  for (SimEventLoop* l : mine) {
    l->RunWindow(end, inclusive);
    l->FlushOutbox();
  }
  if (instrumented) {
    uint64_t ev1 = 0;
    for (SimEventLoop* l : mine) {
      ev1 += l->events_run();
    }
    if (window_end != nullptr) {
      *window_end = std::chrono::steady_clock::now();
    }
    if (trace_ != nullptr) {
      trace_->Add(worker, obs::TraceEvent{"window", ts0, trace_->NowUs() - ts0,
                                          vt_begin, end, ev1 - ev0});
    }
  }
  done_.fetch_add(1, std::memory_order_acq_rel);
  // Straggler phase: peers still inside this window may flood our bounded
  // mailboxes; keep folding them (owner-thread-only by design) so their
  // blocked flushes make progress instead of deadlocking the barrier.
  // Once every worker is done no one sends until the next epoch, so the
  // next window's entry drain picks up the remainder.
  uint32_t attempt = 0;
  const bool oversub = spin_iters_ == 0;
  while (done_.load(std::memory_order_acquire) < active) {
    for (SimEventLoop* l : mine) {
      l->DrainMailbox();
    }
    StragglerPause(&attempt, oversub);
  }
  SimEventLoop::BindWorkerLoops(nullptr, 0);
}

void ShardedSim::WorkerMain(size_t worker) {
  uint64_t seen = 0;
  std::vector<SimEventLoop*> mine;
  // Barrier wait = wall time from this worker finishing its window's work
  // (run + flush) to the coordinator waking it for the next one
  // (straggler drain + park + coordinator overhead).
  bool have_window_end = false;
  std::chrono::steady_clock::time_point window_end_tp;
  const bool instrumented = obs_registry_ != nullptr || trace_ != nullptr;
  for (;;) {
    if (!AwaitEpoch(seen)) {
      // Recycled Id blocks parked in this thread's pool would otherwise
      // outlive the thread as a leak.
      DrainThreadIdRepPool();
      return;
    }
    seen = epoch_.load(std::memory_order_acquire);
    if (instrumented && have_window_end) {
      uint64_t wait_ns = ElapsedNs(window_end_tp, std::chrono::steady_clock::now());
      if (!barrier_wait_.empty()) {
        barrier_wait_[worker]->Observe(wait_ns);
      }
      if (trace_ != nullptr) {
        double vt = now_;
        double dur_us = static_cast<double>(wait_ns) / 1000.0;
        trace_->Add(worker, obs::TraceEvent{"barrier", trace_->NowUs() - dur_us,
                                            dur_us, vt, vt, 0});
      }
    }
    RunPlanned(worker, target_, inclusive_, mine,
               instrumented ? &window_end_tp : nullptr);
    have_window_end = instrumented;
    parked_.fetch_add(1, std::memory_order_acq_rel);
    // Lock-then-notify: the coordinator holds mu_ from its predicate check
    // until it sleeps, so this cannot slip into that gap and get lost.
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_done_.notify_all();
  }
}

void ShardedSim::Rebalance() {
  const size_t active = num_workers();
  const size_t n = loops_.size();
  uint64_t total = 0;
  for (size_t l = 0; l < n; ++l) {
    uint64_t now_events = loops_[l]->events_run();
    window_cost_[l] = now_events - last_events_[l];
    last_events_[l] = now_events;
    total += window_cost_[l];
  }
  if (total == 0) {
    return;  // First window, or an idle one: nothing to learn from.
  }
  std::vector<uint64_t> load(active, 0);
  for (size_t l = 0; l < n; ++l) {
    load[owner_[l]] += window_cost_[l];
  }
  uint64_t max_load = *std::max_element(load.begin(), load.end());
  if (obs_imbalance_ != nullptr) {
    // Gauge semantics are add-a-delta; hold the last window's value.
    int64_t pct = static_cast<int64_t>(max_load * active * 100 / total);
    obs_imbalance_->Add(pct - imbalance_last_);
    imbalance_last_ = pct;
  }
  if (!stealing_) {
    return;
  }
  // Hysteresis: replan only when the worst worker carried > 1.2x the
  // perfectly balanced share, so a settled plan is not churned by noise.
  if (max_load * active * 10 <= total * 12) {
    return;
  }
  // LPT over the completed window's costs: heaviest shard first onto the
  // least-loaded worker, ties keeping the current owner (then the lowest
  // worker id). Inputs are virtual-time state only, so the plan — like the
  // events it schedules — is a pure function of the seed.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (window_cost_[a] != window_cost_[b]) {
      return window_cost_[a] > window_cost_[b];
    }
    return a < b;
  });
  std::vector<uint64_t> new_load(active, 0);
  std::vector<size_t> new_owner(n, 0);
  for (size_t l : order) {
    size_t best = 0;
    for (size_t w = 1; w < active; ++w) {
      if (new_load[w] < new_load[best]) {
        best = w;
      }
    }
    if (new_load[owner_[l]] == new_load[best]) {
      best = owner_[l];
    }
    new_owner[l] = best;
    new_load[best] += window_cost_[l];
  }
  uint64_t moves = 0;
  uint64_t steals = 0;
  for (size_t l = 0; l < n; ++l) {
    if (new_owner[l] != owner_[l]) {
      ++moves;
      if (load[new_owner[l]] < load[owner_[l]]) {
        ++steals;  // The gaining worker was the less-loaded one: a steal.
      }
    }
  }
  if (moves == 0) {
    return;
  }
  owner_ = std::move(new_owner);
  for (auto& p : plan_) {
    p.clear();
  }
  for (size_t l = 0; l < n; ++l) {
    plan_[owner_[l]].push_back(l);
  }
  if (obs_owner_moves_ != nullptr) {
    obs_owner_moves_->Inc(moves);
  }
  if (obs_steals_ != nullptr && steals > 0) {
    obs_steals_->Inc(steals);
  }
}

void ShardedSim::RunShardsWindow(double end, bool inclusive) {
  const bool instrumented = obs_registry_ != nullptr || trace_ != nullptr;
  if (num_workers() == 1) {
    // Single worker: one shard, no barriers. The "barrier wait" is the
    // coordinator's gap between window ends — control tasks plus loop
    // overhead — so the metric is meaningful (and nonzero) at any count.
    if (instrumented && have_last_window_end_) {
      uint64_t wait_ns = ElapsedNs(last_window_end_, std::chrono::steady_clock::now());
      if (!barrier_wait_.empty()) {
        barrier_wait_[0]->Observe(wait_ns);
      }
      if (trace_ != nullptr) {
        double vt = loops_[0]->Now();
        double dur_us = static_cast<double>(wait_ns) / 1000.0;
        trace_->Add(0, obs::TraceEvent{"barrier", trace_->NowUs() - dur_us, dur_us,
                                       vt, vt, 0});
      }
    }
    double vt_begin = loops_[0]->Now();
    uint64_t ev0 = loops_[0]->events_run();
    double ts0 = trace_ != nullptr ? trace_->NowUs() : 0;
    loops_[0]->RunWindow(end, inclusive);
    if (instrumented) {
      last_window_end_ = std::chrono::steady_clock::now();
      have_last_window_end_ = true;
      if (trace_ != nullptr) {
        trace_->Add(0, obs::TraceEvent{"window", ts0, trace_->NowUs() - ts0, vt_begin,
                                       end, loops_[0]->events_run() - ev0});
      }
    }
    return;
  }
  const size_t active = num_workers();
  // Every worker is parked here, so ownership transfer is safe: the
  // release/acquire chain through parked_ (their last window) and epoch_
  // (this publish) orders all shard state for any new owner.
  Rebalance();
  if (instrumented && have_last_window_end_) {
    uint64_t wait_ns = ElapsedNs(last_window_end_, std::chrono::steady_clock::now());
    if (!barrier_wait_.empty()) {
      barrier_wait_[0]->Observe(wait_ns);
    }
    if (trace_ != nullptr) {
      double dur_us = static_cast<double>(wait_ns) / 1000.0;
      trace_->Add(0, obs::TraceEvent{"barrier", trace_->NowUs() - dur_us, dur_us,
                                     now_, now_, 0});
    }
  }
  done_.store(0, std::memory_order_relaxed);
  parked_.store(0, std::memory_order_relaxed);
  target_ = end;
  inclusive_ = inclusive;
  epoch_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sleepers_ > 0) {
      cv_work_.notify_all();
    }
  }
  // The coordinator is worker 0: it runs its own share of shards instead
  // of idling (and oversubscribing a core) while the others work.
  RunPlanned(0, end, inclusive, coord_mine_,
             instrumented ? &last_window_end_ : nullptr);
  have_last_window_end_ = instrumented;
  // Wait for every worker thread to clear its straggler phase before
  // touching any shard state (control tasks, rebalance, mailbox folds): a
  // straggler's relief-drain may still fold mailboxes until then.
  int spin = 0;
  while (parked_.load(std::memory_order_acquire) != active - 1) {
    if (++spin < spin_iters_) {
      CpuRelax();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&]() {
      return parked_.load(std::memory_order_acquire) == active - 1;
    });
    break;
  }
}

void ShardedSim::RunDueControl() {
  double at;
  Task task;
  uint64_t ran = 0;
  double ts0 = trace_ != nullptr ? trace_->NowUs() : 0;
  while (control_.wheel_.PopDue(now_, &at, &task)) {
    ++control_events_run_;
    ++ran;
    task();
  }
  if (trace_ != nullptr && ran > 0) {
    // Coordinator actions get the lane past the shards' (tid = num_shards).
    trace_->Add(loops_.size(),
                obs::TraceEvent{"control", ts0, trace_->NowUs() - ts0, now_, now_, ran});
  }
}

void ShardedSim::RunUntil(double deadline) {
  if (deadline < now_) {
    return;
  }
  EnsureWorkers();
  for (;;) {
    // Control tasks due at the barrier run first — before shard events at
    // the same instant — on the coordinator thread, with every worker
    // parked. They may schedule more control work or touch any shard.
    RunDueControl();
    if (now_ >= deadline) {
      break;
    }
    double end = std::min(now_ + window_, deadline);
    double hint = control_.wheel_.NextDueHint();
    if (hint > now_ && hint < end) {
      end = hint;  // shrink the window so the control task fires on time
    }
    RunShardsWindow(end, /*inclusive=*/false);
    now_ = end;
  }
  // Events at exactly `deadline` run in a final inclusive pass, after any
  // control task scheduled for `deadline`.
  RunShardsWindow(deadline, /*inclusive=*/true);
}

}  // namespace p2
