#include "src/sim/network.h"

#include "src/runtime/logging.h"

namespace p2 {

std::unique_ptr<SimTransport> SimNetwork::MakeTransport(const std::string& addr,
                                                        size_t topo_index) {
  P2_CHECK(endpoints_.find(addr) == endpoints_.end());
  auto t = std::unique_ptr<SimTransport>(new SimTransport(this, addr, topo_index));
  endpoints_[addr] = Endpoint{t.get(), topo_index};
  return t;
}

void SimNetwork::Unregister(const std::string& addr) { endpoints_.erase(addr); }

void SimNetwork::Send(SimTransport* from, const std::string& to, std::vector<uint8_t> bytes) {
  if (loss_rate_ > 0 && rng_.CoinFlip(loss_rate_)) {
    return;
  }
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    return;  // Destination dead or never existed: datagram vanishes.
  }
  size_t src = from->topo_index();
  size_t dst = it->second.topo_index;
  double latency = topology_.LatencyBetween(src, dst) +
                   topology_.SerializationDelay(src, dst, bytes.size() + kUdpIpHeaderBytes);
  double jitter = topology_.config().jitter_fraction;
  if (jitter > 0) {
    latency *= 1.0 + jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  std::string from_addr = from->local_addr();
  loop_->ScheduleAfter(latency, [this, from_addr, to, bytes = std::move(bytes)]() {
    auto it2 = endpoints_.find(to);
    if (it2 == endpoints_.end()) {
      return;  // Died in flight.
    }
    ++delivered_;
    it2->second.transport->Deliver(from_addr, bytes);
  });
}

SimTransport::~SimTransport() { net_->Unregister(addr_); }

void SimTransport::SendTo(const std::string& to, std::vector<uint8_t> bytes,
                          TrafficClass cls) {
  stats_.CountOut(bytes.size() + kUdpIpHeaderBytes, cls);
  net_->Send(this, to, std::move(bytes));
}

void SimTransport::Deliver(const std::string& from, const std::vector<uint8_t>& bytes) {
  stats_.bytes_in += bytes.size() + kUdpIpHeaderBytes;
  stats_.msgs_in += 1;
  if (receiver_) {
    receiver_(from, bytes);
  }
}

}  // namespace p2
