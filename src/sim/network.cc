#include "src/sim/network.h"

#include "src/harness/faults.h"
#include "src/runtime/logging.h"

namespace p2 {

SimNetwork::SimNetwork(ShardedSim* engine, Topology topology, uint64_t seed)
    : topology_(topology), rng_(seed) {
  if (engine->num_workers() > 1) {
    // One shard per domain: domains are the migration granule for the
    // engine's work stealing, and windows stay bounded by the minimum
    // cross-domain latency.
    engine->ConfigureLoops(topology_.config().num_domains);
    engine->set_sync_window(topology_.MinCrossDomainLatency());
  }
  for (size_t i = 0; i < engine->num_shards(); ++i) {
    loops_.push_back(engine->shard(i));
  }
  Init();
}

SimNetwork::SimNetwork(SimEventLoop* loop, Topology topology, uint64_t seed)
    : topology_(topology), rng_(seed) {
  loops_.push_back(loop);
  Init();
}

void SimNetwork::Init() {
  delivered_by_shard_.assign(loops_.size(), 0);
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->SetDeliverFn(
        [this, i](const SimDelivery& d) { Deliver(i, d); });
  }
}

size_t SimNetwork::ShardOf(size_t topo_index) const {
  return loops_.size() == 1 ? 0 : topology_.DomainOf(topo_index) % loops_.size();
}

std::unique_ptr<SimTransport> SimNetwork::MakeTransport(const std::string& addr,
                                                        size_t topo_index) {
  P2_CHECK(endpoints_.find(addr) == endpoints_.end());
  size_t shard = ShardOf(topo_index);
  // Ordinal and RNG seed are drawn in registration order, which the
  // coordinator drives deterministically — so an endpoint incarnation gets
  // the same identity and loss/jitter stream at any shard count.
  auto t = std::unique_ptr<SimTransport>(
      new SimTransport(this, addr, topo_index, shard, next_ordinal_++, rng_.NextU64()));
  endpoints_[addr] = Endpoint{t.get(), topo_index, shard};
  return t;
}

void SimNetwork::Unregister(const std::string& addr) { endpoints_.erase(addr); }

uint64_t SimNetwork::delivered() const {
  uint64_t total = 0;
  for (uint64_t d : delivered_by_shard_) {
    total += d;
  }
  return total;
}

void SimNetwork::Send(SimTransport* from, const std::string& to,
                      std::vector<uint8_t> bytes) {
  if (loss_rate_ > 0 && from->rng_.CoinFlip(loss_rate_)) {
    return;
  }
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    return;  // Destination dead or never existed: datagram vanishes.
  }
  size_t src = from->topo_index_;
  size_t dst = it->second.topo_index;
  double now = loops_[from->shard_]->Now();
  if (faults_ != nullptr) {
    // Fault decisions use the sender's own RNG stream and shard clock, so
    // they are as shard-count-invariant as the loss/jitter draws above.
    size_t sd = topology_.DomainOf(src);
    size_t dd = topology_.DomainOf(dst);
    if (faults_->DropOnSend(now, sd, dd, from->shard_, &from->rng_)) {
      return;
    }
    faults_->MaybeCorrupt(now, from->shard_, &from->rng_, &bytes);
  }
  double latency = topology_.LatencyBetween(src, dst) +
                   topology_.SerializationDelay(src, dst, bytes.size() + kUdpIpHeaderBytes);
  if (faults_ != nullptr) {
    // Spike factors are >= 1 (parser-enforced), so a spiked cross-shard
    // datagram still lands at or after the conservative sync window.
    latency *= faults_->LatencyFactor(now, topology_.DomainOf(src),
                                      topology_.DomainOf(dst), from->shard_);
  }
  double jitter = topology_.config().jitter_fraction;
  if (jitter > 0) {
    latency *= 1.0 + jitter * (2.0 * from->rng_.NextDouble() - 1.0);
  }
  SimDelivery d;
  d.at = now + latency;
  d.src = from->ordinal_;
  d.seq = from->send_seq_++;
  d.from = from->addr_;
  d.to = to;
  d.bytes = std::move(bytes);

  SimEventLoop* dst_loop = loops_[it->second.shard];
  SimEventLoop* running = SimEventLoop::Current();
  if (running == dst_loop || running == nullptr) {
    // Same shard, or the coordinator thread with every shard parked.
    dst_loop->EnqueueLocal(std::move(d));
    return;
  }
  // Cross-shard: stage into the sending shard's local outbox. The owning
  // worker flushes the whole batch into the destination mailbox at the
  // window boundary (or on overflow) — one lock round-trip per (source,
  // destination, window) instead of per datagram. Delivery order is
  // unaffected: destinations execute in (at, src, seq) heap order.
  running->StageRemote(it->second.shard, std::move(d));
}

void SimNetwork::Deliver(size_t shard, const SimDelivery& d) {
  auto it = endpoints_.find(d.to);
  if (it == endpoints_.end()) {
    return;  // Died in flight.
  }
  ++delivered_by_shard_[shard];
  it->second.transport->Deliver(d.from, d.bytes);
}

SimTransport::~SimTransport() { net_->Unregister(addr_); }

void SimTransport::SendTo(const std::string& to, std::vector<uint8_t> bytes,
                          TrafficClass cls) {
  stats_.CountOut(bytes.size() + kUdpIpHeaderBytes, cls);
  net_->Send(this, to, std::move(bytes));
}

void SimTransport::Deliver(const std::string& from, const std::vector<uint8_t>& bytes) {
  stats_.bytes_in += bytes.size() + kUdpIpHeaderBytes;
  stats_.msgs_in += 1;
  if (receiver_) {
    receiver_(from, bytes);
  }
}

}  // namespace p2
