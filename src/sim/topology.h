// Transit-stub network topology modelling the paper's Emulab setup (§5):
// 10 domain routers, stub nodes equally divided among domains,
// inter-domain latency 100 ms, intra-domain latency 2 ms, inter-domain
// router capacity 100 Mb/s, stub node capacity 10 Mb/s.
#ifndef P2_SIM_TOPOLOGY_H_
#define P2_SIM_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>

namespace p2 {

struct TopologyConfig {
  size_t num_domains = 10;
  double intra_domain_latency_s = 0.002;  // stub <-> its domain router
  double inter_domain_latency_s = 0.100;  // router <-> router
  double stub_capacity_bps = 10e6;        // 10 Mb/s access links
  double router_capacity_bps = 100e6;     // 100 Mb/s inter-domain links
  // Optional latency jitter fraction (uniform +/- jitter * latency) applied
  // by the network layer; 0 disables.
  double jitter_fraction = 0.0;
};

// Maps simulator node indices onto the transit-stub graph and answers
// end-to-end latency / bottleneck-capacity queries. Node i belongs to
// domain (i mod num_domains), matching the paper's equal division.
class Topology {
 public:
  explicit Topology(TopologyConfig config) : config_(config) {}

  size_t DomainOf(size_t node_index) const { return node_index % config_.num_domains; }

  // One-way propagation latency between two endpoints (seconds).
  // Same node: 0. Same domain: 2 * intra (stub->router->stub).
  // Cross domain: intra + inter + intra.
  double LatencyBetween(size_t a, size_t b) const;

  // Serialization delay for `bytes` across the path's links (seconds).
  double SerializationDelay(size_t a, size_t b, size_t bytes) const;

  // Smallest possible end-to-end latency between two nodes in *different*
  // domains: intra + inter + intra, shrunk by the worst-case downward
  // jitter. The sharded simulator partitions nodes so that distinct shards
  // never share a domain, making this the conservative-synchronization
  // window: any cross-shard datagram sent at time t arrives at or after
  // t + MinCrossDomainLatency().
  double MinCrossDomainLatency() const;

  const TopologyConfig& config() const { return config_; }

 private:
  TopologyConfig config_;
};

}  // namespace p2

#endif  // P2_SIM_TOPOLOGY_H_
