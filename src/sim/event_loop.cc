#include "src/sim/event_loop.h"

#include <algorithm>
#include <limits>

namespace p2 {

TimerId SimEventLoop::ScheduleAfter(double delay, Task task) {
  if (delay < 0) {
    delay = 0;
  }
  return wheel_.Schedule(now_ + delay, std::move(task));
}

void SimEventLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    wheel_.Cancel(id);
  }
}

void SimEventLoop::RunUntil(double deadline) {
  double at;
  Task task;
  while (wheel_.PopDue(deadline, &at, &task)) {
    now_ = std::max(now_, at);
    ++events_run_;
    task();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void SimEventLoop::RunAll() {
  double at;
  Task task;
  while (wheel_.PopDue(std::numeric_limits<double>::infinity(), &at, &task)) {
    now_ = std::max(now_, at);
    ++events_run_;
    task();
  }
}

}  // namespace p2
