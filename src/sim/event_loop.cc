#include "src/sim/event_loop.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/registry.h"

namespace p2 {

namespace {
thread_local SimEventLoop* tls_running_loop = nullptr;
}  // namespace

SimEventLoop* SimEventLoop::Current() { return tls_running_loop; }

TimerId SimEventLoop::ScheduleAfter(double delay, Task task) {
  if (delay < 0) {
    delay = 0;
  }
  return wheel_.Schedule(now_ + delay, std::move(task));
}

void SimEventLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    wheel_.Cancel(id);
  }
}

void SimEventLoop::EnqueueLocal(SimDelivery d) { msgs_.push(std::move(d)); }

bool SimEventLoop::TryEnqueueRemote(SimDelivery& d) {
  std::lock_guard<std::mutex> lock(mailbox_mu_);
  if (mailbox_.size() >= mailbox_capacity_) {
    return false;
  }
  mailbox_.push_back(std::move(d));
  return true;
}

void SimEventLoop::BindObs(obs::Registry* registry) {
  obs_mailbox_depth_ = registry->GetHistogram(
      shard_index_,
      "p2_shard_mailbox_depth{shard=\"" + std::to_string(shard_index_) + "\"}");
}

void SimEventLoop::DrainMailbox() {
  std::vector<SimDelivery> drained;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    drained.swap(mailbox_);
  }
  if (obs_mailbox_depth_ != nullptr && !drained.empty()) {
    obs_mailbox_depth_->Observe(drained.size());
  }
  for (SimDelivery& d : drained) {
    msgs_.push(std::move(d));
  }
}

size_t SimEventLoop::pending() const { return wheel_.size() + msgs_.size(); }

void SimEventLoop::RunWindow(double end, bool inclusive) {
  // Fold whatever the previous window's stragglers mailed us. Conservative
  // sync guarantees none of it is due before this window starts, and only
  // the owning thread ever folds, so the heap stays single-writer.
  DrainMailbox();
  // Strict "< end" on doubles: everything <= nextafter(end, -inf).
  double cap = inclusive
                   ? end
                   : std::nextafter(end, -std::numeric_limits<double>::infinity());
  SimEventLoop* prev = tls_running_loop;
  tls_running_loop = this;
  double at;
  Task task;
  for (;;) {
    // Timers before deliveries at equal instants (a fixed rule, so the
    // interleaving never depends on which shard hosts the sender).
    double msg_at =
        msgs_.empty() ? std::numeric_limits<double>::infinity() : msgs_.top().at;
    if (wheel_.PopDue(std::min(cap, msg_at), &at, &task)) {
      now_ = std::max(now_, at);
      ++events_run_;
      task();
      continue;
    }
    if (!msgs_.empty() && msg_at <= cap) {
      SimDelivery d = std::move(const_cast<SimDelivery&>(msgs_.top()));
      msgs_.pop();
      now_ = std::max(now_, d.at);
      ++events_run_;
      if (deliver_) {
        deliver_(d);
      }
      continue;
    }
    break;
  }
  tls_running_loop = prev;
  if (std::isfinite(end) && now_ < end) {
    now_ = end;
  }
}

void SimEventLoop::RunUntil(double deadline) { RunWindow(deadline, /*inclusive=*/true); }

void SimEventLoop::RunAll() {
  RunWindow(std::numeric_limits<double>::infinity(), /*inclusive=*/true);
}

}  // namespace p2
