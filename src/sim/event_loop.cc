#include "src/sim/event_loop.h"

#include "src/runtime/logging.h"

namespace p2 {

TimerId SimEventLoop::ScheduleAfter(double delay, Task task) {
  if (delay < 0) {
    delay = 0;
  }
  TimerId id = ++next_id_;
  heap_.push(Entry{now_ + delay, next_seq_++, id, std::move(task)});
  return id;
}

void SimEventLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    cancelled_.insert(id);
  }
}

void SimEventLoop::RunUntil(double deadline) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.at > deadline) {
      break;
    }
    if (cancelled_.erase(top.id) > 0) {
      heap_.pop();
      continue;
    }
    Entry e = std::move(const_cast<Entry&>(top));
    heap_.pop();
    now_ = e.at;
    ++events_run_;
    e.task();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void SimEventLoop::RunAll() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (cancelled_.erase(top.id) > 0) {
      heap_.pop();
      continue;
    }
    Entry e = std::move(const_cast<Entry&>(top));
    heap_.pop();
    now_ = e.at;
    ++events_run_;
    e.task();
  }
}

}  // namespace p2
