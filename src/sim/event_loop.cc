#include "src/sim/event_loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "src/obs/registry.h"

namespace p2 {

namespace {
thread_local SimEventLoop* tls_running_loop = nullptr;
// The loops the current worker thread owns this window (set by ShardedSim
// around window execution). A blocked flush drains all of them.
thread_local SimEventLoop* const* tls_worker_loops = nullptr;
thread_local size_t tls_worker_loop_count = 0;

// Bounded exponential backoff for a blocked cross-shard flush: yield first
// (the common case — the peer folds within microseconds), then sleep with
// doubling intervals capped at 256us so a stalled peer never burns a core.
void BackoffPause(uint32_t* attempt) {
  uint32_t a = (*attempt)++;
  if (a < 16) {
    std::this_thread::yield();
    return;
  }
  uint32_t shift = std::min<uint32_t>(a - 16, 8);
  std::this_thread::sleep_for(std::chrono::microseconds(1u << shift));
}
}  // namespace

SimEventLoop* SimEventLoop::Current() { return tls_running_loop; }

void SimEventLoop::BindWorkerLoops(SimEventLoop* const* loops, size_t n) {
  tls_worker_loops = loops;
  tls_worker_loop_count = n;
}

TimerId SimEventLoop::ScheduleAfter(double delay, Task task) {
  if (delay < 0) {
    delay = 0;
  }
  return wheel_.Schedule(now_ + delay, std::move(task));
}

void SimEventLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    wheel_.Cancel(id);
  }
}

void SimEventLoop::EnqueueLocal(SimDelivery d) { msgs_.push(std::move(d)); }

bool SimEventLoop::TryEnqueueRemote(SimDelivery& d) {
  std::lock_guard<std::mutex> lock(mailbox_mu_);
  if (mailbox_.size() >= mailbox_capacity_) {
    return false;
  }
  mailbox_.push_back(std::move(d));
  return true;
}

void SimEventLoop::SetPeers(std::vector<SimEventLoop*> peers) {
  peers_ = std::move(peers);
  outbox_.assign(peers_.size(), {});
}

void SimEventLoop::StageRemote(size_t dst, SimDelivery d) {
  std::vector<SimDelivery>& box = outbox_[dst];
  box.push_back(std::move(d));
  if (box.size() >= outbox_flush_threshold_) {
    FlushTo(dst);
  }
}

void SimEventLoop::FlushOutbox() {
  for (size_t dst = 0; dst < outbox_.size(); ++dst) {
    if (!outbox_[dst].empty()) {
      FlushTo(dst);
    }
  }
}

void SimEventLoop::FlushTo(size_t dst) {
  std::vector<SimDelivery>& batch = outbox_[dst];
  SimEventLoop* peer = peers_[dst];
  size_t off = 0;
  uint32_t attempt = 0;
  while (off < batch.size()) {
    off += peer->AcceptBatch(batch, off);
    if (off == batch.size()) {
      break;
    }
    // Full destination mailbox. Fold every loop this worker owns — a
    // blocked peer may be pushing toward any of them, not just the loop
    // running right now, and draining only the running loop can deadlock
    // two workers whose blocked flushes target each other's idle loops.
    if (obs_backpressure_ != nullptr) {
      obs_backpressure_->Inc();
    }
    if (tls_worker_loop_count > 0) {
      for (size_t i = 0; i < tls_worker_loop_count; ++i) {
        tls_worker_loops[i]->DrainMailbox();
      }
    } else if (tls_running_loop != nullptr) {
      tls_running_loop->DrainMailbox();
    }
    BackoffPause(&attempt);
  }
  batch.clear();
}

size_t SimEventLoop::AcceptBatch(std::vector<SimDelivery>& batch, size_t from) {
  std::lock_guard<std::mutex> lock(mailbox_mu_);
  size_t space =
      mailbox_.size() >= mailbox_capacity_ ? 0 : mailbox_capacity_ - mailbox_.size();
  size_t take = std::min(space, batch.size() - from);
  for (size_t i = 0; i < take; ++i) {
    mailbox_.push_back(std::move(batch[from + i]));
  }
  return take;
}

void SimEventLoop::BindObs(obs::Registry* registry) {
  obs_mailbox_depth_ = registry->GetHistogram(
      shard_index_,
      "p2_shard_mailbox_depth{shard=\"" + std::to_string(shard_index_) + "\"}");
  obs_backpressure_ =
      registry->GetCounter(shard_index_, "p2_mailbox_backpressure_total");
}

void SimEventLoop::DrainMailbox() {
  std::vector<SimDelivery> drained;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    drained.swap(mailbox_);
  }
  if (obs_mailbox_depth_ != nullptr && !drained.empty()) {
    obs_mailbox_depth_->Observe(drained.size());
  }
  for (SimDelivery& d : drained) {
    msgs_.push(std::move(d));
  }
}

size_t SimEventLoop::pending() const { return wheel_.size() + msgs_.size(); }

void SimEventLoop::RunWindow(double end, bool inclusive) {
  // Fold whatever the previous window's stragglers mailed us. Conservative
  // sync guarantees none of it is due before this window starts, and only
  // the owning thread ever folds, so the heap stays single-writer.
  DrainMailbox();
  // Strict "< end" on doubles: everything <= nextafter(end, -inf).
  double cap = inclusive
                   ? end
                   : std::nextafter(end, -std::numeric_limits<double>::infinity());
  SimEventLoop* prev = tls_running_loop;
  tls_running_loop = this;
  double at;
  Task task;
  for (;;) {
    // Timers before deliveries at equal instants (a fixed rule, so the
    // interleaving never depends on which shard hosts the sender).
    double msg_at =
        msgs_.empty() ? std::numeric_limits<double>::infinity() : msgs_.top().at;
    if (wheel_.PopDue(std::min(cap, msg_at), &at, &task)) {
      now_ = std::max(now_, at);
      ++events_run_;
      task();
      continue;
    }
    if (!msgs_.empty() && msg_at <= cap) {
      SimDelivery d = std::move(const_cast<SimDelivery&>(msgs_.top()));
      msgs_.pop();
      now_ = std::max(now_, d.at);
      ++events_run_;
      if (deliver_) {
        deliver_(d);
      }
      continue;
    }
    break;
  }
  tls_running_loop = prev;
  if (std::isfinite(end) && now_ < end) {
    now_ = end;
  }
}

void SimEventLoop::RunUntil(double deadline) { RunWindow(deadline, /*inclusive=*/true); }

void SimEventLoop::RunAll() {
  RunWindow(std::numeric_limits<double>::infinity(), /*inclusive=*/true);
}

}  // namespace p2
