// Discrete-event simulation loop with virtual time: the per-shard loop of
// the (optionally multi-threaded) simulator.
//
// The loop runs two event lanes:
//
//  - the timer wheel: everything scheduled through the Executor interface
//    (protocol timers, deferred work). Fires in (deadline, FIFO) order.
//  - the delivery lane: simulated datagrams, as already-marshaled bytes.
//    Fires in (deadline, source, sequence) order — a total order derived
//    from the *content* of the message stream, never from scheduling
//    accidents, so a fleet partitioned across N shards delivers each
//    node's datagrams in exactly the order the single-shard run would.
//
// At equal timestamps timers fire before deliveries. Cross-shard senders
// stage datagrams into per-destination outboxes local to the sending loop
// and flush them as one batch — one mailbox lock round-trip per (source,
// destination, window) instead of per datagram. The owner folds the
// mailbox into the delivery heap with DrainMailbox; conservative-window
// synchronization (see src/sim/shard.h) guarantees a message is always
// staged before its shard's clock reaches its delivery time, and the
// content-keyed heap order makes mailbox *arrival* order irrelevant.
#ifndef P2_SIM_EVENT_LOOP_H_
#define P2_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "src/runtime/executor.h"
#include "src/runtime/timer_wheel.h"

namespace p2 {

namespace obs {
class Counter;
class LogHistogram;
class Registry;
}  // namespace obs

// One simulated datagram in flight. `src` is the sending endpoint's unique
// incarnation ordinal and `seq` its per-endpoint send counter, which makes
// (at, src, seq) a deterministic total order over all deliveries.
struct SimDelivery {
  double at = 0;
  uint64_t src = 0;
  uint64_t seq = 0;
  std::string from;
  std::string to;
  std::vector<uint8_t> bytes;
};

// A virtual-time Executor. Time advances instantaneously to the next
// scheduled event; handlers run to completion. Timer events live on a
// hierarchical timer wheel, so schedule and cancel are O(1) regardless of
// how many are pending.
class SimEventLoop : public Executor {
 public:
  // Handles a due datagram (the simulated network's delivery upcall).
  using DeliverFn = std::function<void(const SimDelivery&)>;

  SimEventLoop() = default;
  SimEventLoop(const SimEventLoop&) = delete;
  SimEventLoop& operator=(const SimEventLoop&) = delete;

  double Now() const override { return now_; }
  TimerId ScheduleAfter(double delay, Task task) override;
  void Cancel(TimerId id) override;
  size_t shard_index() const override { return shard_index_; }

  // Runs events until the queue drains or `deadline` (virtual seconds) is
  // reached; time is left at `deadline` (or the last event time if later).
  // Events at exactly `deadline` do run.
  void RunUntil(double deadline);

  // Runs until both lanes are completely empty. Only safe for programs
  // without self-perpetuating timers.
  void RunAll();

  // Runs every event with time < `end` (<= `end` when `inclusive`), then
  // advances the clock to `end`. The sharded coordinator drives windows
  // through this; RunUntil is the single-loop convenience over it.
  void RunWindow(double end, bool inclusive);

  // --- Delivery lane -------------------------------------------------------

  void SetDeliverFn(DeliverFn fn) { deliver_ = std::move(fn); }

  // Queues a datagram from this loop's own thread — or from the
  // coordinator/main thread while every shard is parked at a barrier.
  void EnqueueLocal(SimDelivery d);

  // Bounded cross-thread push of a single datagram; returns false (leaving
  // `d` intact) when the mailbox is full. The batched staging path below is
  // what the simulated network uses; this survives for direct/unit use.
  bool TryEnqueueRemote(SimDelivery& d);

  // Folds the mailbox into the delivery heap. Called by the owning thread
  // (any time) or by the coordinator while the owner is parked.
  void DrainMailbox();

  void set_mailbox_capacity(size_t cap) { mailbox_capacity_ = cap; }

  // --- Batched cross-shard staging -----------------------------------------

  // Wires this loop to its peer set (index-aligned with shard ids). Called
  // by ShardedSim whenever the loop set is (re)built.
  void SetPeers(std::vector<SimEventLoop*> peers);

  // Stages a datagram bound for peer `dst`, flushing that outbox early if
  // it crosses the overflow threshold. Only the thread currently running
  // this loop may call it.
  void StageRemote(size_t dst, SimDelivery d);

  // Flushes every non-empty outbox into its destination mailbox, one lock
  // round-trip per destination. A full destination blocks the flush with
  // bounded exponential backoff; while blocked the caller folds every loop
  // its worker owns (see BindWorkerLoops), so cyclic backpressure between
  // workers always drains instead of deadlocking.
  void FlushOutbox();

  // Declares the loops the calling thread owns for the current window; a
  // blocked flush relieves pressure by draining all of them. Falls back to
  // the running loop when unset. Pass (nullptr, 0) to clear.
  static void BindWorkerLoops(SimEventLoop* const* loops, size_t n);

  void set_outbox_flush_threshold(size_t n) { outbox_flush_threshold_ = n; }

  // Binds the mailbox-depth histogram (sampled at every fold) and the
  // backpressure counter into this shard's registry lane. Called by
  // ShardedSim::SetObs.
  void BindObs(obs::Registry* registry);

  // The loop currently executing events on this thread; null on the
  // coordinator/main thread. The simulated network uses it to route sends
  // (local heap push vs. cross-shard staging).
  static SimEventLoop* Current();

  // Number of events executed so far — timer fires plus deliveries.
  uint64_t events_run() const { return events_run_; }
  size_t pending() const;

 private:
  friend class ShardedSim;

  struct DeliveryAfter {
    bool operator()(const SimDelivery& a, const SimDelivery& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      if (a.src != b.src) {
        return a.src > b.src;
      }
      return a.seq > b.seq;
    }
  };

  // Moves as many of batch[from..] into the mailbox as capacity allows
  // (one lock acquisition); returns how many were accepted.
  size_t AcceptBatch(std::vector<SimDelivery>& batch, size_t from);
  void FlushTo(size_t dst);

  double now_ = 0.0;
  uint64_t events_run_ = 0;
  size_t shard_index_ = 0;  // set by ShardedSim
  TimerWheel wheel_;
  DeliverFn deliver_;
  std::priority_queue<SimDelivery, std::vector<SimDelivery>, DeliveryAfter> msgs_;

  std::mutex mailbox_mu_;
  std::vector<SimDelivery> mailbox_;
  size_t mailbox_capacity_ = 1 << 15;

  // Staging outboxes, touched only by the thread running this loop.
  std::vector<SimEventLoop*> peers_;
  std::vector<std::vector<SimDelivery>> outbox_;  // indexed by shard id
  size_t outbox_flush_threshold_ = 1024;

  obs::LogHistogram* obs_mailbox_depth_ = nullptr;
  obs::Counter* obs_backpressure_ = nullptr;
};

}  // namespace p2

#endif  // P2_SIM_EVENT_LOOP_H_
