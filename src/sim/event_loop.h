// Discrete-event simulation loop with virtual time.
#ifndef P2_SIM_EVENT_LOOP_H_
#define P2_SIM_EVENT_LOOP_H_

#include <cstdint>

#include "src/runtime/executor.h"
#include "src/runtime/timer_wheel.h"

namespace p2 {

// A virtual-time Executor. Time advances instantaneously to the next
// scheduled event; handlers run to completion in timestamp order (FIFO
// among equal timestamps). Events live on a hierarchical timer wheel, so
// schedule and cancel are O(1) regardless of how many are pending.
class SimEventLoop : public Executor {
 public:
  SimEventLoop() = default;
  SimEventLoop(const SimEventLoop&) = delete;
  SimEventLoop& operator=(const SimEventLoop&) = delete;

  double Now() const override { return now_; }
  TimerId ScheduleAfter(double delay, Task task) override;
  void Cancel(TimerId id) override;

  // Runs events until the queue drains or `deadline` (virtual seconds) is
  // reached; time is left at min(deadline, last event time). Events at
  // exactly `deadline` do run.
  void RunUntil(double deadline);

  // Runs until the queue is completely empty. Only safe for programs
  // without self-perpetuating timers.
  void RunAll();

  // Number of events executed so far (for tests / benchmarks).
  uint64_t events_run() const { return events_run_; }
  size_t pending() const { return wheel_.size(); }

 private:
  double now_ = 0.0;
  uint64_t events_run_ = 0;
  TimerWheel wheel_;
};

}  // namespace p2

#endif  // P2_SIM_EVENT_LOOP_H_
