// ShardedSim: share-nothing multi-threaded discrete-event simulation.
//
// One simulation is split into N shards, each owning a partition of the
// fleet with its own event loop, timer wheel, per-endpoint RNG streams and
// metrics. Shards share no mutable runtime state: a tuple crossing shards
// travels as already-marshaled bytes (src/net/wire.*), exactly as it would
// cross a real network, through a bounded MPSC mailbox on the destination
// shard.
//
// Time advances under conservative window synchronization. The simulated
// topology places shard boundaries only between domains, so any cross-shard
// datagram experiences at least W = Topology::MinCrossDomainLatency() of
// latency. The coordinator therefore advances all shards in lockstep
// windows of at most W virtual seconds: during a window shards run in
// parallel and may only enqueue work for each other at or beyond the next
// barrier; at the barrier the coordinator folds every mailbox into its
// shard's delivery heap. Because deliveries are executed in the
// content-derived (time, source, sequence) order — not mailbox-arrival
// order — a fixed seed produces identical per-node event sequences for
// --shards 1 and --shards N.
//
// The coordinator also owns the *control timeline*: an executor whose
// tasks run on the coordinator thread at window barriers, while every
// shard is parked. Harness-level actions that touch cross-shard state —
// staggered joins, churn kills/replacements, bootstrap-snapshot refreshes
// — schedule here. A pending control task shrinks the next window so the
// task still fires at its exact virtual time (windows only ever shrink;
// they never stretch a control deadline to the next multiple of W).
#ifndef P2_SIM_SHARD_H_
#define P2_SIM_SHARD_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/executor.h"
#include "src/runtime/timer_wheel.h"
#include "src/sim/event_loop.h"

namespace p2 {

namespace obs {
class LogHistogram;
class Registry;
class TraceLog;
}  // namespace obs

class ShardedSim {
 public:
  // `num_shards` >= 1. With one shard everything runs inline on the
  // calling thread; with more, one worker thread per shard is spawned on
  // first use. The synchronization window defaults to +infinity (pure
  // timer workloads need no barriers) and is tightened by the simulated
  // network via set_sync_window.
  explicit ShardedSim(size_t num_shards);
  ~ShardedSim();
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  size_t num_shards() const { return shards_.size(); }
  SimEventLoop* shard(size_t i) { return shards_[i].get(); }

  // The control timeline (see file comment). Safe to call Now /
  // ScheduleAfter / Cancel from the coordinator thread between runs or
  // from control tasks themselves; never from shard threads.
  Executor* control() { return &control_; }

  // Barrier time: every shard's clock equals this between runs.
  double Now() const { return now_; }

  // Drives all shards (and the control timeline) to `deadline`. Events at
  // exactly `deadline` run; control tasks at a time t always run before
  // shard events at t. Blocks the calling thread until the barrier at
  // `deadline` is reached.
  void RunUntil(double deadline);
  void RunFor(double seconds) { RunUntil(now_ + seconds); }

  // Tightens the conservative window (keeps the minimum of all calls).
  void set_sync_window(double w);
  double sync_window() const { return window_; }

  // Events executed across all shards plus control tasks run. The total is
  // shard-count-invariant for a fixed seed — a useful determinism check.
  uint64_t events_run() const;

  // Enables shard instrumentation: per-shard barrier-wait histograms and
  // mailbox-depth sampling into `registry` (lane = shard index; the
  // coordinator writes lane num_shards), and — when `trace` is non-null —
  // window / barrier / control events into the trace log (tid = same lane
  // mapping). Either may be null. Call before the first RunUntil.
  void SetObs(obs::Registry* registry, obs::TraceLog* trace);

 private:
  class ControlTimeline : public Executor {
   public:
    explicit ControlTimeline(ShardedSim* owner) : owner_(owner) {}
    double Now() const override { return owner_->now_; }
    TimerId ScheduleAfter(double delay, Task task) override {
      if (delay < 0) {
        delay = 0;
      }
      return wheel_.Schedule(owner_->now_ + delay, std::move(task));
    }
    void Cancel(TimerId id) override {
      if (id != kInvalidTimer) {
        wheel_.Cancel(id);
      }
    }

   private:
    friend class ShardedSim;
    ShardedSim* owner_;
    TimerWheel wheel_;
  };

  void EnsureWorkers();
  void WorkerMain(size_t index);
  // Runs one parallel window on every shard, then folds all mailboxes.
  void RunShardsWindow(double end, bool inclusive);
  // Pops and runs every control task due at or before now_.
  void RunDueControl();

  double now_ = 0.0;
  double window_;
  uint64_t control_events_run_ = 0;
  std::vector<std::unique_ptr<SimEventLoop>> shards_;
  ControlTimeline control_;

  // Worker coordination (unused with a single shard).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  double target_ = 0;
  bool inclusive_ = false;
  size_t done_ = 0;
  size_t resting_ = 0;  // workers parked in the top-of-loop wait
  bool stop_ = false;

  // Observability (both null unless SetObs was called).
  obs::Registry* obs_registry_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  std::vector<obs::LogHistogram*> barrier_wait_;  // one per shard
  // Single-shard barrier analog: coordinator gap between window ends.
  bool have_last_window_end_ = false;
  std::chrono::steady_clock::time_point last_window_end_;
};

}  // namespace p2

#endif  // P2_SIM_SHARD_H_
