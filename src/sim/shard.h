// ShardedSim: share-nothing multi-threaded discrete-event simulation.
//
// The schedulable unit is a *shard*: one self-contained event loop (timer
// wheel, delivery heap, bounded MPSC mailbox, staging outboxes) owning a
// partition of the fleet. Shards share no mutable runtime state: a tuple
// crossing shards travels as already-marshaled bytes (src/net/wire.*),
// exactly as it would cross a real network.
//
// With one worker there is exactly one shard and everything runs inline on
// the calling thread. With N > 1 requested workers the simulated network
// reconfigures the engine to one shard per topology domain
// (ConfigureLoops) and min(N, shards) worker threads execute them —
// shard->worker ownership is per *window*, re-decided at every barrier by
// a deterministic load balancer (work stealing), so useful parallelism is
// not capped by a static shard = domain-mod-N map and a hot domain cannot
// idle the other workers.
//
// Time advances under conservative window synchronization. The simulated
// topology places shard boundaries only between domains, so any
// cross-shard datagram experiences at least W =
// Topology::MinCrossDomainLatency() of latency. The coordinator therefore
// advances all shards in lockstep windows of at most W virtual seconds:
// during a window workers run their shards in parallel and may only stage
// work for other shards at or beyond the next barrier; staged batches are
// flushed into destination mailboxes at the end of each shard's window and
// folded by the (possibly new) owner at the start of the next. Because
// deliveries are executed in the content-derived (time, source, sequence)
// order — not mailbox-arrival order — a fixed seed produces identical
// per-node event sequences for --shards 1 and --shards N, with stealing on
// or off.
//
// The coordinator doubles as worker 0 (no idle coordinator thread) and
// also owns the *control timeline*: an executor whose tasks run on the
// coordinator thread at window barriers, while every other worker is
// parked. Harness-level actions that touch cross-shard state — staggered
// joins, churn kills/replacements, bootstrap-snapshot refreshes — schedule
// here. A pending control task shrinks the next window so the task still
// fires at its exact virtual time (windows only ever shrink; they never
// stretch a control deadline to the next multiple of W).
#ifndef P2_SIM_SHARD_H_
#define P2_SIM_SHARD_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/executor.h"
#include "src/runtime/timer_wheel.h"
#include "src/sim/event_loop.h"

namespace p2 {

namespace obs {
class Counter;
class Gauge;
class LogHistogram;
class Registry;
class TraceLog;
}  // namespace obs

class ShardedSim {
 public:
  // `num_shards` is the requested worker count (>= 1). The constructor
  // starts with one loop per requested worker so a standalone engine can
  // be driven directly; a simulated network reshapes that to one loop per
  // topology domain via ConfigureLoops. The synchronization window
  // defaults to +infinity (pure timer workloads need no barriers) and is
  // tightened by the simulated network via set_sync_window.
  explicit ShardedSim(size_t num_shards);
  ~ShardedSim();
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  // Shards (= event loops). Registry lanes, trace tids and endpoint
  // placement key off this count.
  size_t num_shards() const { return loops_.size(); }
  SimEventLoop* shard(size_t i) { return loops_[i].get(); }

  // Worker threads that execute the shards: min(requested, num_shards).
  size_t num_workers() const {
    return std::min(requested_workers_, loops_.size());
  }

  // Rebuilds the shard set (the simulated network calls this before any
  // endpoints or events exist, to get one shard per topology domain). Only
  // legal while every shard is pristine and no worker has started.
  void ConfigureLoops(size_t n);

  // Work stealing: when on (default), the coordinator re-assigns whole
  // shards to workers at every barrier, balancing the completed window's
  // per-shard event counts (LPT with hysteresis). The decision is a pure
  // function of virtual-time state — never wall-clock — so results stay
  // bit-for-bit identical with stealing on or off, at any worker count.
  // Call before the first RunUntil.
  void SetStealing(bool on) { stealing_ = on; }
  bool stealing() const { return stealing_; }

  // The control timeline (see file comment). Safe to call Now /
  // ScheduleAfter / Cancel from the coordinator thread between runs or
  // from control tasks themselves; never from worker threads.
  Executor* control() { return &control_; }

  // Barrier time: every shard's clock equals this between runs.
  double Now() const { return now_; }

  // Drives all shards (and the control timeline) to `deadline`. Events at
  // exactly `deadline` run; control tasks at a time t always run before
  // shard events at t. Blocks the calling thread until the barrier at
  // `deadline` is reached.
  void RunUntil(double deadline);
  void RunFor(double seconds) { RunUntil(now_ + seconds); }

  // Tightens the conservative window (keeps the minimum of all calls).
  void set_sync_window(double w);
  double sync_window() const { return window_; }

  // Events executed across all shards plus control tasks run. The total is
  // shard-count-invariant for a fixed seed — a useful determinism check.
  uint64_t events_run() const;

  // Enables shard instrumentation: per-worker barrier-wait histograms
  // (lane = worker index), per-shard mailbox-depth sampling and
  // backpressure counts (lane = shard index), steal/owner-move counters
  // and the window imbalance gauge on the coordinator lane (num_shards),
  // and — when `trace` is non-null — window / barrier / control events
  // into the trace log (tid = worker, control on lane num_shards). Either
  // may be null. Call before the first RunUntil.
  void SetObs(obs::Registry* registry, obs::TraceLog* trace);

 private:
  class ControlTimeline : public Executor {
   public:
    explicit ControlTimeline(ShardedSim* owner) : owner_(owner) {}
    double Now() const override { return owner_->now_; }
    TimerId ScheduleAfter(double delay, Task task) override {
      if (delay < 0) {
        delay = 0;
      }
      return wheel_.Schedule(owner_->now_ + delay, std::move(task));
    }
    void Cancel(TimerId id) override {
      if (id != kInvalidTimer) {
        wheel_.Cancel(id);
      }
    }

   private:
    friend class ShardedSim;
    ShardedSim* owner_;
    TimerWheel wheel_;
  };

  void WirePeers();
  void EnsureWorkers();
  void WorkerMain(size_t worker);
  // Runs one parallel window on every shard, then waits for every worker
  // to park (so mailbox folds, control tasks and the next rebalance never
  // race a straggler).
  void RunShardsWindow(double end, bool inclusive);
  // Runs + flushes the shards `worker` owns this window, then participates
  // in the done_/straggler protocol. Shared by worker threads and the
  // coordinator acting as worker 0. Sets `*window_end` (when non-null)
  // right after the flushes, for barrier-wait attribution.
  void RunPlanned(size_t worker, double end, bool inclusive,
                  std::vector<SimEventLoop*>& mine,
                  std::chrono::steady_clock::time_point* window_end);
  // Worker-side spin-then-park until the epoch moves; false on stop.
  bool AwaitEpoch(uint64_t seen);
  // Re-decides shard->worker ownership from the completed window's
  // per-shard event counts. Coordinator-only, every worker parked.
  void Rebalance();
  // Pops and runs every control task due at or before now_.
  void RunDueControl();

  double now_ = 0.0;
  double window_;
  uint64_t control_events_run_ = 0;
  size_t requested_workers_;
  bool stealing_ = true;
  std::vector<std::unique_ptr<SimEventLoop>> loops_;
  ControlTimeline control_;

  // Ownership plan: written by the coordinator at barriers (all workers
  // parked), read by workers after the epoch acquire.
  std::vector<size_t> owner_;              // shard -> worker
  std::vector<std::vector<size_t>> plan_;  // worker -> shard ids
  std::vector<uint64_t> last_events_;      // per-shard events_run at last barrier
  std::vector<uint64_t> window_cost_;      // per-shard events in last window

  // Worker coordination (unused with a single worker). Workers
  // 1..num_workers()-1 are threads; the coordinator is worker 0.
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> done_{0};    // workers finished running + flushing
  std::atomic<size_t> parked_{0};  // workers past the straggler phase
  std::atomic<bool> stop_{false};
  // Pre-park spin budget, set by EnsureWorkers: a fixed ~100us when every
  // worker can have its own core, zero on an oversubscribed host (where
  // spinning only steals the runnable peer's quantum).
  int spin_iters_ = 0;
  double target_ = 0;  // published before the epoch release-increment
  bool inclusive_ = false;
  std::mutex mu_;
  std::condition_variable cv_work_;  // workers park here between windows
  std::condition_variable cv_done_;  // coordinator parks here for stragglers
  size_t sleepers_ = 0;              // workers asleep on cv_work_ (guarded by mu_)
  std::vector<SimEventLoop*> coord_mine_;  // worker 0's scratch loop set

  // Observability (all null unless SetObs was called).
  obs::Registry* obs_registry_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  std::vector<obs::LogHistogram*> barrier_wait_;  // one per worker
  obs::Counter* obs_steals_ = nullptr;
  obs::Counter* obs_owner_moves_ = nullptr;
  obs::Gauge* obs_imbalance_ = nullptr;
  int64_t imbalance_last_ = 0;
  // Coordinator barrier analog: gap between its window ends (control +
  // rebalance + straggler wait). Meaningful — and nonzero — at any count.
  bool have_last_window_end_ = false;
  std::chrono::steady_clock::time_point last_window_end_;
};

}  // namespace p2

#endif  // P2_SIM_SHARD_H_
