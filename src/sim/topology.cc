#include "src/sim/topology.h"

namespace p2 {

double Topology::LatencyBetween(size_t a, size_t b) const {
  if (a == b) {
    return 0.0;
  }
  if (DomainOf(a) == DomainOf(b)) {
    return 2.0 * config_.intra_domain_latency_s;
  }
  return 2.0 * config_.intra_domain_latency_s + config_.inter_domain_latency_s;
}

double Topology::MinCrossDomainLatency() const {
  double base = 2.0 * config_.intra_domain_latency_s + config_.inter_domain_latency_s;
  double jitter = config_.jitter_fraction;
  if (jitter > 0 && jitter < 1) {
    base *= 1.0 - jitter;
  }
  return base;
}

double Topology::SerializationDelay(size_t a, size_t b, size_t bytes) const {
  if (a == b) {
    return 0.0;
  }
  double bits = static_cast<double>(bytes) * 8.0;
  double delay = 2.0 * bits / config_.stub_capacity_bps;  // both access links
  if (DomainOf(a) != DomainOf(b)) {
    delay += bits / config_.router_capacity_bps;
  }
  return delay;
}

}  // namespace p2
