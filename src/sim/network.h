// Simulated datagram network over the transit-stub topology.
//
// The fabric spans every shard of a ShardedSim. When the engine runs more
// than one worker the fabric reshapes it to one shard per topology domain
// (the engine's work-stealing granule) and pins each endpoint to its
// domain's shard, so two endpoints on different shards are always in
// different domains and every cross-shard datagram experiences at least
// the inter-domain latency — the conservative synchronization window the
// coordinator advances by.
//
// Determinism is independent of the shard count:
//  - loss and jitter draw from a per-endpoint RNG stream, so the coin
//    flips a node's sends consume depend only on that node's own history,
//    never on how other nodes' events interleave globally;
//  - every datagram carries a (send-time, source-ordinal, sequence) key
//    and destinations execute deliveries in key order, so equal-time
//    arrivals tie-break identically whether the sender was co-resident or
//    three shards away.
#ifndef P2_SIM_NETWORK_H_
#define P2_SIM_NETWORK_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"
#include "src/runtime/random.h"
#include "src/sim/event_loop.h"
#include "src/sim/shard.h"
#include "src/sim/topology.h"

namespace p2 {

class FaultInjector;
class SimTransport;

// The shared fabric: owns the address registry and delivers datagrams with
// topology-derived latency (+ optional jitter and loss). Endpoints are
// SimTransport objects created via MakeTransport.
//
// Threading contract: MakeTransport / Unregister / set_loss_rate run on
// the coordinator thread (between runs or from control-timeline tasks)
// while every shard is parked; sends and deliveries run on shard threads
// and touch only registry reads, the sending endpoint's own RNG/sequence
// state, and the destination shard's delivery lane.
class SimNetwork {
 public:
  // Sharded fabric. When the engine has more than one worker this
  // reconfigures it to one shard per topology domain (ConfigureLoops — so
  // it must run before any endpoints or events exist) and tightens the
  // sync window to the topology's minimum cross-domain latency.
  SimNetwork(ShardedSim* engine, Topology topology, uint64_t seed);

  // Single-loop fabric (unit tests, single-threaded harnesses): the whole
  // fleet lives on `loop` as one shard.
  SimNetwork(SimEventLoop* loop, Topology topology, uint64_t seed);

  // Creates an endpoint bound to `addr`, placed at `topo_index` in the
  // topology (which also fixes its shard). Addresses must be unique among
  // live endpoints.
  std::unique_ptr<SimTransport> MakeTransport(const std::string& addr, size_t topo_index);

  // Probability that any datagram is silently dropped (default 0).
  void set_loss_rate(double p) { loss_rate_ = p; }

  // Optional fault injector (asymmetric loss, partitions, latency spikes,
  // corruption) consulted on every send. Not owned; must outlive the runs.
  // Set on the coordinator thread while shards are parked. The injector's
  // decisions draw only from the sender's RNG stream and shard clock, so
  // the fabric's shard-count determinism is preserved.
  void SetFaults(FaultInjector* faults) { faults_ = faults; }

  // Simulates a node crash: datagrams to `addr` vanish. Called by the
  // transport destructor as well.
  void Unregister(const std::string& addr);

  // Fabric-wide delivered-message counter: an explicit merge of the
  // per-shard counters (each written only by its own shard's thread).
  uint64_t delivered() const;

  size_t num_shards() const { return loops_.size(); }
  // The shard owning topology slot `topo_index`.
  size_t ShardOf(size_t topo_index) const;
  // The executor driving shard `i`.
  SimEventLoop* shard_loop(size_t i) { return loops_[i]; }

  const Topology& topology() const { return topology_; }

 private:
  friend class SimTransport;

  struct Endpoint {
    SimTransport* transport;
    size_t topo_index;
    size_t shard;
  };

  void Init();
  void Send(SimTransport* from, const std::string& to, std::vector<uint8_t> bytes);
  void Deliver(size_t shard, const SimDelivery& d);

  Topology topology_;
  Rng rng_;  // seeds per-endpoint streams, in registration order
  double loss_rate_ = 0.0;
  FaultInjector* faults_ = nullptr;
  uint64_t next_ordinal_ = 1;
  std::vector<SimEventLoop*> loops_;
  std::vector<uint64_t> delivered_by_shard_;
  std::unordered_map<std::string, Endpoint> endpoints_;
};

class SimTransport : public Transport {
 public:
  ~SimTransport() override;

  const std::string& local_addr() const override { return addr_; }
  using Transport::SendTo;
  void SendTo(const std::string& to, std::vector<uint8_t> bytes,
              TrafficClass cls) override;
  void SetReceiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  const TrafficStats& stats() const override { return stats_; }

  size_t topo_index() const { return topo_index_; }
  size_t shard() const { return shard_; }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* net, std::string addr, size_t topo_index, size_t shard,
               uint64_t ordinal, uint64_t rng_seed)
      : net_(net),
        addr_(std::move(addr)),
        topo_index_(topo_index),
        shard_(shard),
        ordinal_(ordinal),
        rng_(rng_seed) {}

  void Deliver(const std::string& from, const std::vector<uint8_t>& bytes);

  SimNetwork* net_;
  std::string addr_;
  size_t topo_index_;
  size_t shard_;
  uint64_t ordinal_;  // unique per endpoint incarnation: the delivery key
  uint64_t send_seq_ = 0;
  Rng rng_;  // this endpoint's private loss/jitter stream
  ReceiveFn receiver_;
  TrafficStats stats_;
};

}  // namespace p2

#endif  // P2_SIM_NETWORK_H_
