// Simulated datagram network over the transit-stub topology.
#ifndef P2_SIM_NETWORK_H_
#define P2_SIM_NETWORK_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"
#include "src/runtime/random.h"
#include "src/sim/event_loop.h"
#include "src/sim/topology.h"

namespace p2 {

class SimTransport;

// The shared fabric: owns the address registry and delivers datagrams with
// topology-derived latency (+ optional jitter and loss). Endpoints are
// SimTransport objects created via MakeTransport.
class SimNetwork {
 public:
  SimNetwork(SimEventLoop* loop, Topology topology, uint64_t seed)
      : loop_(loop), topology_(topology), rng_(seed) {}

  // Creates an endpoint bound to `addr`, placed at `topo_index` in the
  // topology. Addresses must be unique among live endpoints.
  std::unique_ptr<SimTransport> MakeTransport(const std::string& addr, size_t topo_index);

  // Probability that any datagram is silently dropped (default 0).
  void set_loss_rate(double p) { loss_rate_ = p; }

  // Simulates a node crash: datagrams to `addr` vanish. Called by the
  // transport destructor as well.
  void Unregister(const std::string& addr);

  // Fabric-wide delivered-message counter (for tests).
  uint64_t delivered() const { return delivered_; }

  SimEventLoop* loop() { return loop_; }
  const Topology& topology() const { return topology_; }

 private:
  friend class SimTransport;

  struct Endpoint {
    SimTransport* transport;
    size_t topo_index;
  };

  void Send(SimTransport* from, const std::string& to, std::vector<uint8_t> bytes);

  SimEventLoop* loop_;
  Topology topology_;
  Rng rng_;
  double loss_rate_ = 0.0;
  uint64_t delivered_ = 0;
  std::unordered_map<std::string, Endpoint> endpoints_;
};

class SimTransport : public Transport {
 public:
  ~SimTransport() override;

  const std::string& local_addr() const override { return addr_; }
  using Transport::SendTo;
  void SendTo(const std::string& to, std::vector<uint8_t> bytes,
              TrafficClass cls) override;
  void SetReceiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  const TrafficStats& stats() const override { return stats_; }

  size_t topo_index() const { return topo_index_; }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* net, std::string addr, size_t topo_index)
      : net_(net), addr_(std::move(addr)), topo_index_(topo_index) {}

  void Deliver(const std::string& from, const std::vector<uint8_t>& bytes);

  SimNetwork* net_;
  std::string addr_;
  size_t topo_index_;
  ReceiveFn receiver_;
  TrafficStats stats_;
};

}  // namespace p2

#endif  // P2_SIM_NETWORK_H_
