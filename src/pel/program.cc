#include "src/pel/program.h"

namespace p2 {
namespace {

const char* OpName(PelOp op) {
  switch (op) {
    case PelOp::kPushConst:
      return "push_const";
    case PelOp::kPushField:
      return "push_field";
    case PelOp::kAdd:
      return "add";
    case PelOp::kSub:
      return "sub";
    case PelOp::kMul:
      return "mul";
    case PelOp::kDiv:
      return "div";
    case PelOp::kMod:
      return "mod";
    case PelOp::kShl:
      return "shl";
    case PelOp::kEq:
      return "eq";
    case PelOp::kNe:
      return "ne";
    case PelOp::kLt:
      return "lt";
    case PelOp::kLe:
      return "le";
    case PelOp::kGt:
      return "gt";
    case PelOp::kGe:
      return "ge";
    case PelOp::kAnd:
      return "and";
    case PelOp::kOr:
      return "or";
    case PelOp::kNot:
      return "not";
    case PelOp::kNeg:
      return "neg";
    case PelOp::kInOO:
      return "in_oo";
    case PelOp::kInOC:
      return "in_oc";
    case PelOp::kInCO:
      return "in_co";
    case PelOp::kInCC:
      return "in_cc";
    case PelOp::kNow:
      return "now";
    case PelOp::kRand:
      return "rand";
    case PelOp::kRandInt:
      return "rand_int";
    case PelOp::kCoinFlip:
      return "coin_flip";
    case PelOp::kHash:
      return "hash";
    case PelOp::kLocalAddr:
      return "local_addr";
  }
  return "?";
}

bool HasArg(PelOp op) { return op == PelOp::kPushConst || op == PelOp::kPushField; }

}  // namespace

uint32_t PelProgram::AddConst(const Value& v) {
  for (uint32_t i = 0; i < consts_.size(); ++i) {
    if (consts_[i] == v && consts_[i].type() == v.type()) {
      return i;
    }
  }
  consts_.push_back(v);
  return static_cast<uint32_t>(consts_.size() - 1);
}

std::string PelProgram::Disassemble() const {
  std::string out;
  for (const PelInstr& ins : code_) {
    out += OpName(ins.op);
    if (HasArg(ins.op)) {
      out += " " + std::to_string(ins.arg);
      if (ins.op == PelOp::kPushConst && ins.arg < consts_.size()) {
        out += " (" + consts_[ins.arg].ToString() + ")";
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace p2
