#include "src/pel/program.h"

#include "src/runtime/logging.h"

namespace p2 {
namespace {

const char* OpName(PelOp op) {
  switch (op) {
    case PelOp::kPushConst:
      return "push_const";
    case PelOp::kPushField:
      return "push_field";
    case PelOp::kAdd:
      return "add";
    case PelOp::kSub:
      return "sub";
    case PelOp::kMul:
      return "mul";
    case PelOp::kDiv:
      return "div";
    case PelOp::kMod:
      return "mod";
    case PelOp::kShl:
      return "shl";
    case PelOp::kEq:
      return "eq";
    case PelOp::kNe:
      return "ne";
    case PelOp::kLt:
      return "lt";
    case PelOp::kLe:
      return "le";
    case PelOp::kGt:
      return "gt";
    case PelOp::kGe:
      return "ge";
    case PelOp::kAnd:
      return "and";
    case PelOp::kOr:
      return "or";
    case PelOp::kNot:
      return "not";
    case PelOp::kNeg:
      return "neg";
    case PelOp::kInOO:
      return "in_oo";
    case PelOp::kInOC:
      return "in_oc";
    case PelOp::kInCO:
      return "in_co";
    case PelOp::kInCC:
      return "in_cc";
    case PelOp::kNow:
      return "now";
    case PelOp::kRand:
      return "rand";
    case PelOp::kRandInt:
      return "rand_int";
    case PelOp::kCoinFlip:
      return "coin_flip";
    case PelOp::kHash:
      return "hash";
    case PelOp::kLocalAddr:
      return "local_addr";
    case PelOp::kMove:
      return "move";
  }
  return "?";
}

bool HasArg(PelOp op) { return op == PelOp::kPushConst || op == PelOp::kPushField; }

}  // namespace

uint32_t PelProgram::AddConst(const Value& v) {
  for (uint32_t i = 0; i < consts_.size(); ++i) {
    if (consts_[i] == v && consts_[i].type() == v.type()) {
      return i;
    }
  }
  consts_.push_back(v);
  return static_cast<uint32_t>(consts_.size() - 1);
}

// Lowers the postfix stack code to register form by symbolic execution:
// walk the stack program tracking, for each virtual stack slot, where its
// value actually lives (constant pool, input field, or register). Pushes
// materialize nothing; each operator becomes one register instruction whose
// operands read their sources in place. A slot that holds a computed result
// is always assigned the register equal to its stack depth, so the final
// result lands in register 0 and register pressure equals the expression's
// operand depth (tiny — rule expressions are shallow).
void PelProgram::Lower() const {
  reg_code_.clear();
  num_regs_ = 0;
  std::vector<PelSrc> stk;
  auto pop = [&stk]() {
    P2_CHECK(!stk.empty());
    PelSrc s = stk.back();
    stk.pop_back();
    return s;
  };
  auto emit = [this, &stk](PelOp op, PelSrc a = PelSrc{}, PelSrc b = PelSrc{},
                           PelSrc c = PelSrc{}) {
    size_t dst = stk.size();
    P2_CHECK(dst < 256);
    if (dst + 1 > num_regs_) {
      num_regs_ = static_cast<uint16_t>(dst + 1);
    }
    reg_code_.push_back(PelRegInstr{op, static_cast<uint8_t>(dst), a, b, c});
    stk.push_back(PelSrc{PelSrcKind::kReg, static_cast<uint16_t>(dst)});
  };
  for (const PelInstr& ins : code_) {
    switch (ins.op) {
      case PelOp::kPushConst:
        P2_CHECK(ins.arg < consts_.size() && ins.arg <= 0xFFFF);
        stk.push_back(PelSrc{PelSrcKind::kConst, static_cast<uint16_t>(ins.arg)});
        break;
      case PelOp::kPushField:
        P2_CHECK(ins.arg <= 0xFFFF);
        stk.push_back(PelSrc{PelSrcKind::kField, static_cast<uint16_t>(ins.arg)});
        break;
      case PelOp::kAdd:
      case PelOp::kSub:
      case PelOp::kMul:
      case PelOp::kDiv:
      case PelOp::kMod:
      case PelOp::kShl:
      case PelOp::kEq:
      case PelOp::kNe:
      case PelOp::kLt:
      case PelOp::kLe:
      case PelOp::kGt:
      case PelOp::kGe:
      case PelOp::kAnd:
      case PelOp::kOr: {
        PelSrc b = pop();
        PelSrc a = pop();
        emit(ins.op, a, b);
        break;
      }
      case PelOp::kNot:
      case PelOp::kNeg:
      case PelOp::kCoinFlip:
      case PelOp::kHash: {
        PelSrc a = pop();
        emit(ins.op, a);
        break;
      }
      case PelOp::kInOO:
      case PelOp::kInOC:
      case PelOp::kInCO:
      case PelOp::kInCC: {
        PelSrc hi = pop();
        PelSrc lo = pop();
        PelSrc x = pop();
        emit(ins.op, x, lo, hi);
        break;
      }
      case PelOp::kNow:
      case PelOp::kRand:
      case PelOp::kRandInt:
      case PelOp::kLocalAddr:
        emit(ins.op);
        break;
      case PelOp::kMove:
        P2_FATAL("kMove is register-form only");
    }
  }
  if (!code_.empty()) {
    P2_CHECK(stk.size() == 1);
    if (stk[0].kind != PelSrcKind::kReg) {
      // Lone push: materialize the result into register 0.
      reg_code_.push_back(PelRegInstr{PelOp::kMove, 0, stk[0], PelSrc{}, PelSrc{}});
      num_regs_ = 1;
    }
  }
  lowered_ = true;
}

std::string PelProgram::Disassemble() const {
  std::string out;
  for (const PelInstr& ins : code_) {
    out += OpName(ins.op);
    if (HasArg(ins.op)) {
      out += " " + std::to_string(ins.arg);
      if (ins.op == PelOp::kPushConst && ins.arg < consts_.size()) {
        out += " (" + consts_[ins.arg].ToString() + ")";
      }
    }
    out += "\n";
  }
  return out;
}

std::string PelProgram::DisassembleRegs() const {
  std::string out;
  auto operand = [this](const PelSrc& s) -> std::string {
    switch (s.kind) {
      case PelSrcKind::kNone:
        return "";
      case PelSrcKind::kReg:
        return "r" + std::to_string(s.index);
      case PelSrcKind::kConst: {
        std::string t = "c" + std::to_string(s.index);
        if (s.index < consts_.size()) {
          t += " (" + consts_[s.index].ToString() + ")";
        }
        return t;
      }
      case PelSrcKind::kField:
        return "f" + std::to_string(s.index);
    }
    return "?";
  };
  for (const PelRegInstr& ins : reg_code()) {
    out += "r" + std::to_string(ins.dst) + " = " + OpName(ins.op);
    for (const PelSrc* s : {&ins.a, &ins.b, &ins.c}) {
      if (s->kind != PelSrcKind::kNone) {
        out += " " + operand(*s);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace p2
