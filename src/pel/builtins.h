// Built-in OverLog function registry.
//
// OverLog rule bodies may call built-in functions (names beginning with
// "f_"); the planner compiles each call to the matching PEL opcode.
#ifndef P2_PEL_BUILTINS_H_
#define P2_PEL_BUILTINS_H_

#include <string>

#include "src/pel/program.h"

namespace p2 {

struct PelBuiltin {
  PelOp op;
  int arity;
};

// Returns the builtin descriptor for `name` ("f_now", "f_rand",
// "f_coinFlip", "f_sha1", "f_randInt", "f_localAddr"), or nullptr.
const PelBuiltin* FindPelBuiltin(const std::string& name);

}  // namespace p2

#endif  // P2_PEL_BUILTINS_H_
