// PEL — the P2 Expression Language (§3.1).
//
// PEL is a small byte-code language for manipulating Values and Tuples. It
// is not written by humans: the OverLog planner compiles rule expressions
// (selections, assignments, projections, range tests) into PEL programs,
// which parameterize generic dataflow elements (filter, project, aggwrap).
//
// Programs are authored in a stack-based postfix form (Emit/AddConst —
// convenient for the expression compiler and for tests), then lowered once
// into a register form that the VM (vm.h) actually executes: every
// instruction names its operands directly (register, constant-pool slot, or
// input-tuple field — "field-load fusion"), so the common rule expression
// runs in a third of the instructions with no per-op stack traffic. (The
// legacy stack interpreter that once served as the lowering's golden
// reference soaked through a release cycle and has been deleted; its
// randomized test programs remain as register-VM regression vectors in
// tests/pel_equiv_test.cc.)
#ifndef P2_PEL_PROGRAM_H_
#define P2_PEL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/value.h"

namespace p2 {

enum class PelOp : uint8_t {
  kPushConst,  // arg: constant pool index
  kPushField,  // arg: input tuple field index
  // Binary arithmetic (pops b, then a; pushes a OP b).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kShl,
  // Comparisons (same pop order; push bool).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Boolean logic.
  kAnd,
  kOr,
  kNot,
  // Unary minus.
  kNeg,
  // Ring-interval membership: pops hi, lo, x; pushes bool.
  kInOO,
  kInOC,
  kInCO,
  kInCC,
  // Builtins.
  kNow,        // pushes current time (double seconds)
  kRand,       // pushes uniform double in [0,1)
  kRandInt,    // pushes uniform int64 in [0, 2^62)
  kCoinFlip,   // pops p; pushes Bernoulli(p) bool
  kHash,       // pops v; pushes 160-bit Id hash of v's marshaled bytes
  kLocalAddr,  // pushes the executing node's address
  // Register-form only: copies operand a to the destination register.
  // Produced by lowering when the whole program is a lone push.
  kMove,
};

struct PelInstr {
  PelOp op;
  uint32_t arg = 0;
};

// A register-instruction operand: where to read the input from.
enum class PelSrcKind : uint8_t {
  kNone = 0,
  kReg,    // VM register file
  kConst,  // program constant pool
  kField,  // input tuple field
};

struct PelSrc {
  PelSrcKind kind = PelSrcKind::kNone;
  uint16_t index = 0;
};

// One register instruction: dst = op(a [, b [, c]]). Operands read
// constants and tuple fields in place, so a lowered program has exactly one
// instruction per operator in the source expression.
struct PelRegInstr {
  PelOp op;
  uint8_t dst;
  PelSrc a;
  PelSrc b;
  PelSrc c;
};

class PelProgram {
 public:
  // Adds a constant to the pool, returns its index (deduplicates).
  uint32_t AddConst(const Value& v);
  void Emit(PelOp op, uint32_t arg = 0) {
    code_.push_back(PelInstr{op, arg});
    lowered_ = false;
  }

  const std::vector<PelInstr>& code() const { return code_; }
  const std::vector<Value>& consts() const { return consts_; }
  bool empty() const { return code_.empty(); }

  // Register form. Lowering runs once (the planner calls Lower() at plan
  // time; hand-built programs lower lazily on first access) and is
  // invalidated by further Emit calls. Aborts on malformed stack code
  // (operand underflow / result count != 1) — planner bug, not user input.
  void Lower() const;
  const std::vector<PelRegInstr>& reg_code() const {
    if (!lowered_) {
      Lower();
    }
    return reg_code_;
  }
  // Number of VM registers the lowered program needs (= max operand depth).
  uint16_t num_regs() const {
    if (!lowered_) {
      Lower();
    }
    return num_regs_;
  }

  // Human-readable listing of the stack form (for tests and logging).
  std::string Disassemble() const;
  // Human-readable listing of the register form.
  std::string DisassembleRegs() const;

 private:
  std::vector<PelInstr> code_;
  std::vector<Value> consts_;
  // Lowered register form, derived from code_ (cached; see Lower()).
  mutable std::vector<PelRegInstr> reg_code_;
  mutable uint16_t num_regs_ = 0;
  mutable bool lowered_ = false;
};

}  // namespace p2

#endif  // P2_PEL_PROGRAM_H_
