// PEL — the P2 Expression Language (§3.1).
//
// PEL is a small stack-based postfix byte-code language for manipulating
// Values and Tuples. It is not written by humans: the OverLog planner
// compiles rule expressions (selections, assignments, projections, range
// tests) into PEL programs, which parameterize generic dataflow elements
// (filter, project, aggwrap). A simple virtual machine (vm.h) executes the
// byte code.
#ifndef P2_PEL_PROGRAM_H_
#define P2_PEL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/value.h"

namespace p2 {

enum class PelOp : uint8_t {
  kPushConst,  // arg: constant pool index
  kPushField,  // arg: input tuple field index
  // Binary arithmetic (pops b, then a; pushes a OP b).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kShl,
  // Comparisons (same pop order; push bool).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Boolean logic.
  kAnd,
  kOr,
  kNot,
  // Unary minus.
  kNeg,
  // Ring-interval membership: pops hi, lo, x; pushes bool.
  kInOO,
  kInOC,
  kInCO,
  kInCC,
  // Builtins.
  kNow,        // pushes current time (double seconds)
  kRand,       // pushes uniform double in [0,1)
  kRandInt,    // pushes uniform int64 in [0, 2^62)
  kCoinFlip,   // pops p; pushes Bernoulli(p) bool
  kHash,       // pops v; pushes 160-bit Id hash of v's marshaled bytes
  kLocalAddr,  // pushes the executing node's address
};

struct PelInstr {
  PelOp op;
  uint32_t arg = 0;
};

class PelProgram {
 public:
  // Adds a constant to the pool, returns its index (deduplicates).
  uint32_t AddConst(const Value& v);
  void Emit(PelOp op, uint32_t arg = 0) { code_.push_back(PelInstr{op, arg}); }

  const std::vector<PelInstr>& code() const { return code_; }
  const std::vector<Value>& consts() const { return consts_; }
  bool empty() const { return code_.empty(); }

  // Human-readable listing (for tests and the logging facility).
  std::string Disassemble() const;

 private:
  std::vector<PelInstr> code_;
  std::vector<Value> consts_;
};

}  // namespace p2

#endif  // P2_PEL_PROGRAM_H_
