#include "src/pel/vm.h"

#include "src/runtime/logging.h"
#include "src/runtime/marshal.h"

namespace p2 {
namespace {

// Shared by both engines: the ring-interval test over loosely-typed
// operands. Ranges are ring-interval tests on Ids; integers coerce. Any
// other operand type (e.g. the "-" null-predecessor string reaching
// "P in (P1, N)" through a non-short-circuiting "||") yields false rather
// than aborting.
bool RingInterval(PelOp op, const Value& x, const Value& lo, const Value& hi) {
  auto ring_ok = [](const Value& v) {
    return v.type() == ValueType::kId || v.type() == ValueType::kInt ||
           v.type() == ValueType::kBool;
  };
  if (!ring_ok(x) || !ring_ok(lo) || !ring_ok(hi)) {
    return false;
  }
  Uint160 xi = x.type() == ValueType::kId ? x.AsId()
                                          : Uint160(static_cast<uint64_t>(x.AsInt()));
  Uint160 li = lo.type() == ValueType::kId ? lo.AsId()
                                           : Uint160(static_cast<uint64_t>(lo.AsInt()));
  Uint160 hi2 = hi.type() == ValueType::kId ? hi.AsId()
                                            : Uint160(static_cast<uint64_t>(hi.AsInt()));
  switch (op) {
    case PelOp::kInOO:
      return xi.InOO(li, hi2);
    case PelOp::kInOC:
      return xi.InOC(li, hi2);
    case PelOp::kInCO:
      return xi.InCO(li, hi2);
    case PelOp::kInCC:
      return xi.InCC(li, hi2);
    default:
      P2_FATAL("not an interval op");
  }
}

Value HashToId(const Value& v) {
  ByteWriter w;
  MarshalValue(v, &w);
  return Value::Id(Uint160::HashOf(
      std::string_view(reinterpret_cast<const char*>(w.buffer().data()), w.size())));
}

}  // namespace

Value PelVm::Eval(const PelProgram& prog, const Tuple* input) {
  return EvalRegs(prog, input);
}

Value PelVm::EvalRegs(const PelProgram& prog, const Tuple* input) {
  const std::vector<PelRegInstr>& code = prog.reg_code();
  const uint16_t nregs = prog.num_regs();
  P2_CHECK(nregs >= 1);  // empty programs have no result
  if (regs_.size() < nregs) {
    regs_.resize(nregs);
  }
  const std::vector<Value>& consts = prog.consts();
  // Operand load: registers and constants are unchecked array reads (the
  // lowering validated indices); field reads bound-check against the input
  // because tuple arity off the wire is data, not code.
  auto ld = [&](const PelSrc& s) -> const Value& {
    switch (s.kind) {
      case PelSrcKind::kReg:
        return regs_[s.index];
      case PelSrcKind::kConst:
        return consts[s.index];
      case PelSrcKind::kField:
        P2_CHECK(input != nullptr && s.index < input->size());
        return input->field(s.index);
      case PelSrcKind::kNone:
        break;
    }
    P2_FATAL("operand with no source");
  };
  for (const PelRegInstr& ins : code) {
    Value& dst = regs_[ins.dst];
    switch (ins.op) {
      case PelOp::kMove:
        dst = ld(ins.a);
        break;
      case PelOp::kAdd:
        dst = Value::Add(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kSub:
        dst = Value::Sub(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kMul:
        dst = Value::Mul(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kDiv:
        dst = Value::Div(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kMod:
        dst = Value::Mod(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kShl:
        dst = Value::Shl(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kEq:
        dst = Value::Bool(ld(ins.a) == ld(ins.b));
        break;
      case PelOp::kNe:
        dst = Value::Bool(ld(ins.a) != ld(ins.b));
        break;
      case PelOp::kLt:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) < 0);
        break;
      case PelOp::kLe:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) <= 0);
        break;
      case PelOp::kGt:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) > 0);
        break;
      case PelOp::kGe:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) >= 0);
        break;
      case PelOp::kAnd:
        dst = Value::Bool(ld(ins.a).AsBool() && ld(ins.b).AsBool());
        break;
      case PelOp::kOr:
        dst = Value::Bool(ld(ins.a).AsBool() || ld(ins.b).AsBool());
        break;
      case PelOp::kNot:
        dst = Value::Bool(!ld(ins.a).AsBool());
        break;
      case PelOp::kNeg:
        dst = Value::Sub(Value::Int(0), ld(ins.a));
        break;
      case PelOp::kInOO:
      case PelOp::kInOC:
      case PelOp::kInCO:
      case PelOp::kInCC:
        dst = Value::Bool(RingInterval(ins.op, ld(ins.a), ld(ins.b), ld(ins.c)));
        break;
      case PelOp::kNow:
        P2_CHECK(env_.executor != nullptr);
        dst = Value::Double(env_.executor->Now());
        break;
      case PelOp::kRand:
        P2_CHECK(env_.rng != nullptr);
        dst = Value::Double(env_.rng->NextDouble());
        break;
      case PelOp::kRandInt:
        P2_CHECK(env_.rng != nullptr);
        dst = Value::Int(static_cast<int64_t>(env_.rng->NextU64() >> 2));
        break;
      case PelOp::kCoinFlip:
        P2_CHECK(env_.rng != nullptr);
        dst = Value::Bool(env_.rng->CoinFlip(ld(ins.a).AsDouble()));
        break;
      case PelOp::kHash:
        dst = HashToId(ld(ins.a));
        break;
      case PelOp::kLocalAddr:
        P2_CHECK(env_.local_addr != nullptr);
        dst = Value::Addr(*env_.local_addr);
        break;
      case PelOp::kPushConst:
      case PelOp::kPushField:
        P2_FATAL("stack op in register code");
    }
  }
  return regs_[0];
}

bool PelVm::EvalBool(const PelProgram& prog, const Tuple* input) {
  return Eval(prog, input).AsBool();
}

}  // namespace p2
