#include "src/pel/vm.h"

#include "src/runtime/logging.h"
#include "src/runtime/marshal.h"

namespace p2 {
namespace {

// Shared by both engines: the ring-interval test over loosely-typed
// operands. Ranges are ring-interval tests on Ids; integers coerce. Any
// other operand type (e.g. the "-" null-predecessor string reaching
// "P in (P1, N)" through a non-short-circuiting "||") yields false rather
// than aborting.
bool RingInterval(PelOp op, const Value& x, const Value& lo, const Value& hi) {
  auto ring_ok = [](const Value& v) {
    return v.type() == ValueType::kId || v.type() == ValueType::kInt ||
           v.type() == ValueType::kBool;
  };
  if (!ring_ok(x) || !ring_ok(lo) || !ring_ok(hi)) {
    return false;
  }
  Uint160 xi = x.type() == ValueType::kId ? x.AsId()
                                          : Uint160(static_cast<uint64_t>(x.AsInt()));
  Uint160 li = lo.type() == ValueType::kId ? lo.AsId()
                                           : Uint160(static_cast<uint64_t>(lo.AsInt()));
  Uint160 hi2 = hi.type() == ValueType::kId ? hi.AsId()
                                            : Uint160(static_cast<uint64_t>(hi.AsInt()));
  switch (op) {
    case PelOp::kInOO:
      return xi.InOO(li, hi2);
    case PelOp::kInOC:
      return xi.InOC(li, hi2);
    case PelOp::kInCO:
      return xi.InCO(li, hi2);
    case PelOp::kInCC:
      return xi.InCC(li, hi2);
    default:
      P2_FATAL("not an interval op");
  }
}

Value HashToId(const Value& v) {
  ByteWriter w;
  MarshalValue(v, &w);
  return Value::Id(Uint160::HashOf(
      std::string_view(reinterpret_cast<const char*>(w.buffer().data()), w.size())));
}

}  // namespace

Value PelVm::Eval(const PelProgram& prog, const Tuple* input) {
#ifdef P2_PEL_STACK_VM
  return EvalStack(prog, input);
#else
  return EvalRegs(prog, input);
#endif
}

Value PelVm::EvalRegs(const PelProgram& prog, const Tuple* input) {
  const std::vector<PelRegInstr>& code = prog.reg_code();
  const uint16_t nregs = prog.num_regs();
  P2_CHECK(nregs >= 1);  // empty programs have no result
  if (regs_.size() < nregs) {
    regs_.resize(nregs);
  }
  const std::vector<Value>& consts = prog.consts();
  // Operand load: registers and constants are unchecked array reads (the
  // lowering validated indices); field reads bound-check against the input
  // because tuple arity off the wire is data, not code.
  auto ld = [&](const PelSrc& s) -> const Value& {
    switch (s.kind) {
      case PelSrcKind::kReg:
        return regs_[s.index];
      case PelSrcKind::kConst:
        return consts[s.index];
      case PelSrcKind::kField:
        P2_CHECK(input != nullptr && s.index < input->size());
        return input->field(s.index);
      case PelSrcKind::kNone:
        break;
    }
    P2_FATAL("operand with no source");
  };
  for (const PelRegInstr& ins : code) {
    Value& dst = regs_[ins.dst];
    switch (ins.op) {
      case PelOp::kMove:
        dst = ld(ins.a);
        break;
      case PelOp::kAdd:
        dst = Value::Add(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kSub:
        dst = Value::Sub(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kMul:
        dst = Value::Mul(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kDiv:
        dst = Value::Div(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kMod:
        dst = Value::Mod(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kShl:
        dst = Value::Shl(ld(ins.a), ld(ins.b));
        break;
      case PelOp::kEq:
        dst = Value::Bool(ld(ins.a) == ld(ins.b));
        break;
      case PelOp::kNe:
        dst = Value::Bool(ld(ins.a) != ld(ins.b));
        break;
      case PelOp::kLt:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) < 0);
        break;
      case PelOp::kLe:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) <= 0);
        break;
      case PelOp::kGt:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) > 0);
        break;
      case PelOp::kGe:
        dst = Value::Bool(Value::Compare(ld(ins.a), ld(ins.b)) >= 0);
        break;
      case PelOp::kAnd:
        dst = Value::Bool(ld(ins.a).AsBool() && ld(ins.b).AsBool());
        break;
      case PelOp::kOr:
        dst = Value::Bool(ld(ins.a).AsBool() || ld(ins.b).AsBool());
        break;
      case PelOp::kNot:
        dst = Value::Bool(!ld(ins.a).AsBool());
        break;
      case PelOp::kNeg:
        dst = Value::Sub(Value::Int(0), ld(ins.a));
        break;
      case PelOp::kInOO:
      case PelOp::kInOC:
      case PelOp::kInCO:
      case PelOp::kInCC:
        dst = Value::Bool(RingInterval(ins.op, ld(ins.a), ld(ins.b), ld(ins.c)));
        break;
      case PelOp::kNow:
        P2_CHECK(env_.executor != nullptr);
        dst = Value::Double(env_.executor->Now());
        break;
      case PelOp::kRand:
        P2_CHECK(env_.rng != nullptr);
        dst = Value::Double(env_.rng->NextDouble());
        break;
      case PelOp::kRandInt:
        P2_CHECK(env_.rng != nullptr);
        dst = Value::Int(static_cast<int64_t>(env_.rng->NextU64() >> 2));
        break;
      case PelOp::kCoinFlip:
        P2_CHECK(env_.rng != nullptr);
        dst = Value::Bool(env_.rng->CoinFlip(ld(ins.a).AsDouble()));
        break;
      case PelOp::kHash:
        dst = HashToId(ld(ins.a));
        break;
      case PelOp::kLocalAddr:
        P2_CHECK(env_.local_addr != nullptr);
        dst = Value::Addr(*env_.local_addr);
        break;
      case PelOp::kPushConst:
      case PelOp::kPushField:
        P2_FATAL("stack op in register code");
    }
  }
  return regs_[0];
}

Value PelVm::EvalStack(const PelProgram& prog, const Tuple* input) {
  stack_.clear();
  const std::vector<Value>& consts = prog.consts();
  for (const PelInstr& ins : prog.code()) {
    switch (ins.op) {
      case PelOp::kPushConst:
        stack_.push_back(consts[ins.arg]);
        break;
      case PelOp::kPushField:
        P2_CHECK(input != nullptr);
        P2_CHECK(ins.arg < input->size());
        stack_.push_back(input->field(ins.arg));
        break;
      case PelOp::kAdd:
      case PelOp::kSub:
      case PelOp::kMul:
      case PelOp::kDiv:
      case PelOp::kMod:
      case PelOp::kShl:
      case PelOp::kEq:
      case PelOp::kNe:
      case PelOp::kLt:
      case PelOp::kLe:
      case PelOp::kGt:
      case PelOp::kGe:
      case PelOp::kAnd:
      case PelOp::kOr: {
        P2_CHECK(stack_.size() >= 2);
        Value b = std::move(stack_.back());
        stack_.pop_back();
        Value a = std::move(stack_.back());
        stack_.pop_back();
        Value r;
        switch (ins.op) {
          case PelOp::kAdd:
            r = Value::Add(a, b);
            break;
          case PelOp::kSub:
            r = Value::Sub(a, b);
            break;
          case PelOp::kMul:
            r = Value::Mul(a, b);
            break;
          case PelOp::kDiv:
            r = Value::Div(a, b);
            break;
          case PelOp::kMod:
            r = Value::Mod(a, b);
            break;
          case PelOp::kShl:
            r = Value::Shl(a, b);
            break;
          case PelOp::kEq:
            r = Value::Bool(a == b);
            break;
          case PelOp::kNe:
            r = Value::Bool(a != b);
            break;
          case PelOp::kLt:
            r = Value::Bool(Value::Compare(a, b) < 0);
            break;
          case PelOp::kLe:
            r = Value::Bool(Value::Compare(a, b) <= 0);
            break;
          case PelOp::kGt:
            r = Value::Bool(Value::Compare(a, b) > 0);
            break;
          case PelOp::kGe:
            r = Value::Bool(Value::Compare(a, b) >= 0);
            break;
          case PelOp::kAnd:
            r = Value::Bool(a.AsBool() && b.AsBool());
            break;
          case PelOp::kOr:
            r = Value::Bool(a.AsBool() || b.AsBool());
            break;
          default:
            P2_FATAL("unreachable");
        }
        stack_.push_back(std::move(r));
        break;
      }
      case PelOp::kNot: {
        P2_CHECK(!stack_.empty());
        Value a = std::move(stack_.back());
        stack_.pop_back();
        stack_.push_back(Value::Bool(!a.AsBool()));
        break;
      }
      case PelOp::kNeg: {
        P2_CHECK(!stack_.empty());
        Value a = std::move(stack_.back());
        stack_.pop_back();
        stack_.push_back(Value::Sub(Value::Int(0), a));
        break;
      }
      case PelOp::kInOO:
      case PelOp::kInOC:
      case PelOp::kInCO:
      case PelOp::kInCC: {
        P2_CHECK(stack_.size() >= 3);
        Value hi = std::move(stack_.back());
        stack_.pop_back();
        Value lo = std::move(stack_.back());
        stack_.pop_back();
        Value x = std::move(stack_.back());
        stack_.pop_back();
        stack_.push_back(Value::Bool(RingInterval(ins.op, x, lo, hi)));
        break;
      }
      case PelOp::kNow:
        P2_CHECK(env_.executor != nullptr);
        stack_.push_back(Value::Double(env_.executor->Now()));
        break;
      case PelOp::kRand:
        P2_CHECK(env_.rng != nullptr);
        stack_.push_back(Value::Double(env_.rng->NextDouble()));
        break;
      case PelOp::kRandInt:
        P2_CHECK(env_.rng != nullptr);
        stack_.push_back(Value::Int(static_cast<int64_t>(env_.rng->NextU64() >> 2)));
        break;
      case PelOp::kCoinFlip: {
        P2_CHECK(env_.rng != nullptr);
        P2_CHECK(!stack_.empty());
        Value p = std::move(stack_.back());
        stack_.pop_back();
        stack_.push_back(Value::Bool(env_.rng->CoinFlip(p.AsDouble())));
        break;
      }
      case PelOp::kHash: {
        P2_CHECK(!stack_.empty());
        Value v = std::move(stack_.back());
        stack_.pop_back();
        stack_.push_back(HashToId(v));
        break;
      }
      case PelOp::kLocalAddr:
        P2_CHECK(env_.local_addr != nullptr);
        stack_.push_back(Value::Addr(*env_.local_addr));
        break;
      case PelOp::kMove:
        P2_FATAL("kMove is register-form only");
    }
  }
  P2_CHECK(stack_.size() == 1);
  return std::move(stack_.back());
}

bool PelVm::EvalBool(const PelProgram& prog, const Tuple* input) {
  return Eval(prog, input).AsBool();
}

}  // namespace p2
