#include "src/pel/builtins.h"

#include <unordered_map>

namespace p2 {

const PelBuiltin* FindPelBuiltin(const std::string& name) {
  static const auto* kTable = new std::unordered_map<std::string, PelBuiltin>{
      {"f_now", {PelOp::kNow, 0}},
      {"f_rand", {PelOp::kRand, 0}},
      {"f_randInt", {PelOp::kRandInt, 0}},
      {"f_coinFlip", {PelOp::kCoinFlip, 1}},
      {"f_sha1", {PelOp::kHash, 1}},
      {"f_hash", {PelOp::kHash, 1}},
      {"f_localAddr", {PelOp::kLocalAddr, 0}},
  };
  auto it = kTable->find(name);
  return it == kTable->end() ? nullptr : &it->second;
}

}  // namespace p2
