// The PEL virtual machine: a simple but fast stack interpreter.
#ifndef P2_PEL_VM_H_
#define P2_PEL_VM_H_

#include <string>
#include <vector>

#include "src/pel/program.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"
#include "src/runtime/tuple.h"

namespace p2 {

// Per-node execution environment visible to PEL programs.
struct PelEnv {
  Executor* executor = nullptr;       // for kNow
  Rng* rng = nullptr;                 // for kRand / kCoinFlip
  const std::string* local_addr = nullptr;  // for kLocalAddr
};

class PelVm {
 public:
  explicit PelVm(PelEnv env) : env_(env) {}

  // Evaluates `prog` against `input` (may be null if the program reads no
  // fields) and returns the single value left on the stack. Aborts on
  // malformed programs (planner bug, not user input).
  Value Eval(const PelProgram& prog, const Tuple* input);

  // Evaluates a boolean-valued program; non-bool results coerce via AsBool.
  bool EvalBool(const PelProgram& prog, const Tuple* input);

 private:
  PelEnv env_;
  std::vector<Value> stack_;  // reused across calls to avoid reallocation
};

}  // namespace p2

#endif  // P2_PEL_VM_H_
