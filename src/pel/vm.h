// The PEL virtual machine.
//
// PelVm::Eval runs the lowered register form of a program: one flat
// dispatch loop over a preallocated register file, each instruction reading
// its operands (registers, pooled constants, input-tuple fields) in place.
// The original stack interpreter is retained as EvalStack — it is the
// golden reference the randomized equivalence test checks the lowering
// against, and configuring with -DP2_PEL_STACK_VM=ON routes Eval through it
// so the two execution engines can be A/B benchmarked. It will be removed
// once the register VM has soaked.
#ifndef P2_PEL_VM_H_
#define P2_PEL_VM_H_

#include <string>
#include <vector>

#include "src/pel/program.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"
#include "src/runtime/tuple.h"

namespace p2 {

// Per-node execution environment visible to PEL programs.
struct PelEnv {
  Executor* executor = nullptr;       // for kNow
  Rng* rng = nullptr;                 // for kRand / kCoinFlip
  const std::string* local_addr = nullptr;  // for kLocalAddr
};

class PelVm {
 public:
  explicit PelVm(PelEnv env) : env_(env) {}

  // Evaluates `prog` against `input` (may be null if the program reads no
  // fields) and returns its result. Aborts on malformed programs (planner
  // bug, not user input).
  Value Eval(const PelProgram& prog, const Tuple* input);

  // Evaluates a boolean-valued program; non-bool results coerce via AsBool.
  bool EvalBool(const PelProgram& prog, const Tuple* input);

  // Reference implementation: interprets the postfix stack form directly.
  // Kept only for golden-equivalence testing against Eval (and as the Eval
  // body under P2_PEL_STACK_VM).
  Value EvalStack(const PelProgram& prog, const Tuple* input);

 private:
  Value EvalRegs(const PelProgram& prog, const Tuple* input);

  PelEnv env_;
  std::vector<Value> regs_;   // register file, reused across calls
  std::vector<Value> stack_;  // stack-VM scratch, reused across calls
};

}  // namespace p2

#endif  // P2_PEL_VM_H_
