// The PEL virtual machine.
//
// PelVm::Eval runs the lowered register form of a program: one flat
// dispatch loop over a preallocated register file, each instruction reading
// its operands (registers, pooled constants, input-tuple fields) in place.
// (The original stack interpreter served as the golden reference while the
// register VM soaked and has since been deleted; the randomized programs
// from that era live on in tests/pel_equiv_test.cc as regression vectors.)
#ifndef P2_PEL_VM_H_
#define P2_PEL_VM_H_

#include <string>
#include <vector>

#include "src/pel/program.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"
#include "src/runtime/tuple.h"

namespace p2 {

// Per-node execution environment visible to PEL programs.
struct PelEnv {
  Executor* executor = nullptr;       // for kNow
  Rng* rng = nullptr;                 // for kRand / kCoinFlip
  const std::string* local_addr = nullptr;  // for kLocalAddr
};

class PelVm {
 public:
  explicit PelVm(PelEnv env) : env_(env) {}

  // Evaluates `prog` against `input` (may be null if the program reads no
  // fields) and returns its result. Aborts on malformed programs (planner
  // bug, not user input).
  Value Eval(const PelProgram& prog, const Tuple* input);

  // Evaluates a boolean-valued program; non-bool results coerce via AsBool.
  bool EvalBool(const PelProgram& prog, const Tuple* input);

 private:
  Value EvalRegs(const PelProgram& prog, const Tuple* input);

  PelEnv env_;
  std::vector<Value> regs_;  // register file, reused across calls
};

}  // namespace p2

#endif  // P2_PEL_VM_H_
