// Real-socket event loop: a poll()-based, single-threaded,
// run-to-completion Executor plus a UDP Transport.
//
// This is the stand-in for the paper's libasync runtime: the same P2 node
// code that runs under the simulator runs here against wall-clock time and
// real datagrams, enabling true multi-process local deployment (see
// examples/two_process_udp.cc).
#ifndef P2_NET_UDP_LOOP_H_
#define P2_NET_UDP_LOOP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/harness/metrics.h"
#include "src/net/transport.h"
#include "src/runtime/executor.h"
#include "src/runtime/timer_wheel.h"

namespace p2 {

class UdpTransport;

class UdpLoop : public Executor {
 public:
  UdpLoop();
  ~UdpLoop() override;

  double Now() const override;
  TimerId ScheduleAfter(double delay, Task task) override;
  void Cancel(TimerId id) override;

  // Creates a transport bound to 127.0.0.1:`port` (0 = kernel-assigned).
  // Returns nullptr on bind failure.
  std::unique_ptr<UdpTransport> MakeTransport(uint16_t port);

  // Runs the loop for `seconds` of wall-clock time (poll + timers).
  void RunFor(double seconds);
  // Requests RunFor to return at the next iteration.
  void Stop() { stopping_ = true; }

 private:
  friend class UdpTransport;
  void RegisterFd(int fd, UdpTransport* t);
  void UnregisterFd(int fd);
  void PollOnce(double max_wait_s);
  void RunDueTimers();

  double t0_;
  bool stopping_ = false;
  TimerWheel timers_;  // O(1) schedule/cancel, (deadline, FIFO) firing order
  std::unordered_map<int, UdpTransport*> fds_;
};

class UdpTransport : public Transport {
 public:
  ~UdpTransport() override;

  const std::string& local_addr() const override { return addr_; }
  using Transport::SendTo;
  void SendTo(const std::string& to, std::vector<uint8_t> bytes,
              TrafficClass cls) override;
  void SetReceiver(ReceiveFn fn) override { receiver_ = std::move(fn); }
  const TrafficStats& stats() const override { return stats_; }
  // ::sendto failures observed on this socket (not counted in stats()).
  const SendFailureCounters& send_failures() const { return send_failures_; }

 private:
  friend class UdpLoop;
  UdpTransport(UdpLoop* loop, int fd, std::string addr)
      : loop_(loop), fd_(fd), addr_(std::move(addr)) {}
  void OnReadable();

  UdpLoop* loop_;
  int fd_;
  std::string addr_;
  ReceiveFn receiver_;
  TrafficStats stats_;
  SendFailureCounters send_failures_;
};

}  // namespace p2

#endif  // P2_NET_UDP_LOOP_H_
