#include "src/net/udp_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/runtime/logging.h"

namespace p2 {
namespace {

double MonotonicSeconds() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

// Parses "a.b.c.d:port" into a sockaddr. Returns false on malformed input.
bool ParseAddr(const std::string& addr, sockaddr_in* out) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return false;
  }
  return true;
}

}  // namespace

UdpLoop::UdpLoop() : t0_(MonotonicSeconds()) {}

UdpLoop::~UdpLoop() = default;

double UdpLoop::Now() const { return MonotonicSeconds() - t0_; }

TimerId UdpLoop::ScheduleAfter(double delay, Task task) {
  if (delay < 0) {
    delay = 0;
  }
  return timers_.Schedule(Now() + delay, std::move(task));
}

void UdpLoop::Cancel(TimerId id) {
  if (id != kInvalidTimer) {
    timers_.Cancel(id);
  }
}

std::unique_ptr<UdpTransport> UdpLoop::MakeTransport(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "127.0.0.1:%u", static_cast<unsigned>(ntohs(sa.sin_port)));
  auto t = std::unique_ptr<UdpTransport>(new UdpTransport(this, fd, buf));
  RegisterFd(fd, t.get());
  return t;
}

void UdpLoop::RegisterFd(int fd, UdpTransport* t) { fds_[fd] = t; }
void UdpLoop::UnregisterFd(int fd) { fds_.erase(fd); }

void UdpLoop::RunDueTimers() {
  double at;
  Task task;
  // Now() advances as handlers run; re-evaluate the deadline per pop.
  while (timers_.PopDue(Now(), &at, &task)) {
    task();
  }
}

void UdpLoop::PollOnce(double max_wait_s) {
  double wait = max_wait_s;
  double hint = timers_.NextDueHint();
  if (hint - Now() < wait) {
    wait = hint - Now();
  }
  if (wait < 0) {
    wait = 0;
  }
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, t] : fds_) {
    (void)t;
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  int n = ::poll(pfds.data(), pfds.size(), static_cast<int>(wait * 1000));
  if (n > 0) {
    for (const pollfd& p : pfds) {
      if ((p.revents & POLLIN) != 0) {
        auto it = fds_.find(p.fd);
        if (it != fds_.end()) {
          it->second->OnReadable();
        }
      }
    }
  }
  RunDueTimers();
}

void UdpLoop::RunFor(double seconds) {
  stopping_ = false;
  double deadline = Now() + seconds;
  while (!stopping_ && Now() < deadline) {
    PollOnce(std::min(0.05, deadline - Now()));
  }
}

UdpTransport::~UdpTransport() {
  loop_->UnregisterFd(fd_);
  ::close(fd_);
}

void UdpTransport::SendTo(const std::string& to, std::vector<uint8_t> bytes,
                          TrafficClass cls) {
  sockaddr_in sa;
  if (!ParseAddr(to, &sa)) {
    P2_LOG(LogLevel::kWarn, "udp: bad destination address '%s'", to.c_str());
    return;
  }
  ssize_t sent =
      ::sendto(fd_, bytes.data(), bytes.size(), 0, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (sent < 0) {
    if (errno == EMSGSIZE) {
      ++send_failures_.oversize;
      P2_LOG(LogLevel::kDebug, "udp: sendto %s: %zu-byte datagram too large", to.c_str(),
             bytes.size());
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
               errno == EINTR || errno == ECONNREFUSED) {
      ++send_failures_.transient;
      P2_LOG(LogLevel::kDebug, "udp: sendto %s: transient failure: %s", to.c_str(),
             std::strerror(errno));
    } else {
      ++send_failures_.other;
      P2_LOG(LogLevel::kWarn, "udp: sendto %s failed: %s", to.c_str(),
             std::strerror(errno));
    }
    return;  // nothing reached the wire: keep it out of the bandwidth figures
  }
  if (static_cast<size_t>(sent) != bytes.size()) {
    ++send_failures_.short_writes;
    P2_LOG(LogLevel::kDebug, "udp: sendto %s: short write (%zd of %zu bytes)", to.c_str(),
           sent, bytes.size());
    return;  // a truncated datagram is garbage to the receiver: count it as lost
  }
  stats_.CountOut(bytes.size() + kUdpIpHeaderBytes, cls);
}

void UdpTransport::OnReadable() {
  for (;;) {
    uint8_t buf[65536];
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      return;
    }
    stats_.bytes_in += static_cast<uint64_t>(n) + kUdpIpHeaderBytes;
    stats_.msgs_in += 1;
    if (receiver_) {
      char host[64];
      inet_ntop(AF_INET, &from.sin_addr, host, sizeof(host));
      char addr[96];
      std::snprintf(addr, sizeof(addr), "%s:%u", host,
                    static_cast<unsigned>(ntohs(from.sin_port)));
      receiver_(addr, std::vector<uint8_t>(buf, buf + n));
    }
  }
}

}  // namespace p2
