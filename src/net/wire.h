// Wire format helpers for P2 datagrams.
//
// Each datagram carries exactly one tuple, framed with a magic/version
// prefix so malformed or foreign packets are rejected cheaply. The traffic
// classifier below implements the evaluation's split between lookup traffic
// and maintenance traffic (§5.1).
#ifndef P2_NET_WIRE_H_
#define P2_NET_WIRE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

// Serializes `t` into a framed datagram payload.
std::vector<uint8_t> FrameTuple(const Tuple& t);

// Parses a framed datagram; nullopt on bad magic/truncation (untrusted).
std::optional<TuplePtr> UnframeTuple(const std::vector<uint8_t>& bytes);

// The wire size a tuple would occupy, including the UDP/IP header estimate
// (used by benchmarks without actually sending).
size_t WireSizeOf(const Tuple& t);

// True for tuples belonging to the DHT lookup request/response plane; all
// other tuple names count as overlay maintenance traffic.
bool IsLookupTraffic(const std::string& tuple_name);

}  // namespace p2

#endif  // P2_NET_WIRE_H_
