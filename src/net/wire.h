// Wire format helpers for P2 datagrams.
//
// Each datagram carries exactly one tuple, framed with a magic/version
// prefix so malformed or foreign packets are rejected cheaply. The traffic
// classifier below implements the evaluation's split between lookup traffic
// and maintenance traffic (§5.1).
#ifndef P2_NET_WIRE_H_
#define P2_NET_WIRE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

// FNV-1a over the frame body. Plays the role of the UDP/Ethernet checksum
// the simulated wire does not have: random bit corruption must be detected
// and dropped at unmarshal, never decoded into a plausible tuple. (The
// byzantine fault axis covers adversarial well-formed data; this guards
// against *accidental* damage only, so a non-cryptographic hash is enough.)
inline uint32_t WireChecksum(const uint8_t* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 16777619u;
  }
  return h;
}

// Serializes `t` into a framed datagram payload:
//   u8  magic    0xD2
//   u8  version  0x02
//   u32 checksum WireChecksum of the marshaled tuple bytes
//   [marshaled tuple]
std::vector<uint8_t> FrameTuple(const Tuple& t);

// Parses a framed datagram; nullopt on bad magic/truncation/checksum
// (untrusted).
std::optional<TuplePtr> UnframeTuple(const std::vector<uint8_t>& bytes);

// The wire size a tuple would occupy, including the UDP/IP header estimate
// (used by benchmarks without actually sending).
size_t WireSizeOf(const Tuple& t);

// True for tuples belonging to the DHT lookup request/response plane; all
// other tuple names count as overlay maintenance traffic.
bool IsLookupTraffic(const std::string& tuple_name);

}  // namespace p2

#endif  // P2_NET_WIRE_H_
