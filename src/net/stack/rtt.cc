#include "src/net/stack/rtt.h"

#include <algorithm>
#include <cmath>

namespace p2 {

void RttEstimator::AddSample(double rtt_s) {
  if (rtt_s < 0) {
    rtt_s = 0;
  }
  if (samples_ == 0) {
    srtt_ = rtt_s;
    rttvar_ = rtt_s / 2.0;
  } else {
    // RFC 6298 order: RTTVAR first (uses the previous SRTT), then SRTT.
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - rtt_s);
    srtt_ = 0.875 * srtt_ + 0.125 * rtt_s;
  }
  ++samples_;
  backoff_ = 1.0;
}

double RttEstimator::Rto() const {
  double base = samples_ == 0 ? config_.initial_rto_s : srtt_ + 4.0 * rttvar_;
  return std::clamp(base * backoff_, config_.min_rto_s, config_.max_rto_s);
}

void RttEstimator::Backoff() {
  if (Rto() < config_.max_rto_s) {
    backoff_ *= 2.0;
  }
}

}  // namespace p2
