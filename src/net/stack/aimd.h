// AIMD congestion-control window, one per destination.
//
// TCP-style additive increase / multiplicative decrease over a window
// measured in outstanding frames: every ACKed frame grows the window by
// 1/window (~ +1 frame per RTT); every loss signal (RTO expiry or fast
// retransmit) halves it. The window bounds how many frames may be in
// flight to a destination; excess sends wait in the bounded SendQueue.
#ifndef P2_NET_STACK_AIMD_H_
#define P2_NET_STACK_AIMD_H_

#include <cstddef>
#include <cstdint>

namespace p2 {

struct AimdConfig {
  double initial_window = 4.0;
  double min_window = 1.0;
  double max_window = 64.0;
  double decrease_factor = 0.5;
};

class AimdWindow {
 public:
  explicit AimdWindow(AimdConfig config = AimdConfig{})
      : config_(config), window_(config.initial_window) {}

  // One frame was ACKed: additive increase.
  void OnAck();
  // Loss detected: multiplicative decrease.
  void OnLoss();

  // Whole frames currently allowed in flight (>= 1).
  size_t Allowance() const { return static_cast<size_t>(window_); }
  double window() const { return window_; }
  uint64_t losses() const { return losses_; }

 private:
  AimdConfig config_;
  double window_;
  uint64_t losses_ = 0;
};

}  // namespace p2

#endif  // P2_NET_STACK_AIMD_H_
