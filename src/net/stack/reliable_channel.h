// ReliableChannel: reliable delivery layered over any datagram Transport.
//
// The paper's insight applies to the transport too: retries, acks and
// congestion control are composable stages between the overlay rules and
// the raw socket. ReliableChannel is such a stage stack, itself a
// Transport, so it drops transparently between a P2 node and either
// backend (SimTransport or UdpTransport):
//
//   overlay tuples --> [SendQueue] -> [AIMD window] -> [RetryTx] -> inner
//   inner datagrams --> [AckRx / dedup] --> receiver (+ ACK piggyback)
//
// Per destination it keeps: a bounded SendQueue (backpressure + drop
// counters), an AIMD congestion window bounding frames in flight, a
// Jacobson/Karels RTT estimator driving the retransmit timer (Karn's rule:
// retransmitted frames never produce samples), and cumulative + selective
// ACK receive state. DATA frames piggyback ACKs of the reverse direction;
// a short delayed-ACK timer covers one-way flows. Delivery is exactly-once
// per frame within a stream incarnation but unordered, matching what the
// overlays already tolerate from plain UDP. Endpoint restarts (churn
// replacements reusing an address) are detected on both sides — stream-id
// changes reset receive state, cumulative-ACK regressions renumber the
// send stream — so a restart can redeliver frames that were in flight
// across the boundary, but never blackholes the connection.
//
// Frames that exhaust max_retries are dropped (counted as expired): the
// overlays' soft-state refresh makes indefinite retransmission to a dead
// peer pointless. Datagrams that do not parse as stack frames (e.g. from a
// best-effort peer) pass through to the receiver untouched.
#ifndef P2_NET_STACK_RELIABLE_CHANNEL_H_
#define P2_NET_STACK_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/harness/metrics.h"
#include "src/net/stack/aimd.h"
#include "src/net/stack/rtt.h"
#include "src/net/stack/send_queue.h"
#include "src/net/transport.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"

namespace p2 {

struct ReliableConfig {
  size_t send_queue_capacity = 256;  // frames queued past the window, per dest
  int max_retries = 10;              // per frame; beyond -> expired
  double ack_delay_s = 0.02;         // pure-ACK flush delay
  size_t reorder_window = 1024;      // out-of-order seqs tracked per peer
  RttConfig rtt;
  AimdConfig aimd;
};

class ReliableChannel : public Transport {
 public:
  // `inner` and `executor` must outlive the channel. `seed` derives the
  // channel's epoch, which lets peers distinguish a restarted endpoint
  // reusing an address from a continuation of the old stream.
  ReliableChannel(Transport* inner, Executor* executor,
                  ReliableConfig config = ReliableConfig{}, uint64_t seed = 1);
  ~ReliableChannel() override;
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  const std::string& local_addr() const override { return inner_->local_addr(); }

  using Transport::SendTo;
  void SendTo(const std::string& to, std::vector<uint8_t> bytes,
              TrafficClass cls) override;

  void SetReceiver(ReceiveFn fn) override { receiver_ = std::move(fn); }

  // Wire-level counters come from the inner transport, which sees every
  // frame this channel emits (first transmissions under the caller's
  // class, retransmits under kRetransmit, pure ACKs under kControl).
  const TrafficStats& stats() const override { return inner_->stats(); }

  // Reliability counters summed over all destinations.
  ReliableChannelStats Stats() const;

  uint32_t epoch() const { return epoch_; }

 private:
  struct InFlight {
    std::vector<uint8_t> payload;
    TrafficClass cls = TrafficClass::kMaintenance;
    double first_sent_at = 0;
    double last_sent_at = 0;
    int retries = 0;  // > 0 also means "RTT sample is ambiguous" (Karn)
    int nacks = 0;    // acks seen that acknowledged a later seq but not this
  };

  struct Peer {
    explicit Peer(const ReliableConfig& config)
        : queue(config.send_queue_capacity), cwnd(config.aimd), rtt(config.rtt) {}

    // --- send direction ---
    // Stream incarnation carried in our DATA frames to this peer; regenerated
    // by ResetSendStream when the peer demonstrably lost its receive state.
    uint32_t send_stream = 0;
    uint32_t next_seq = 1;
    uint32_t last_cum_seen = 0;
    // Consecutive acks whose cumulative value regressed below
    // last_cum_seen. One can be a stale reordered ack; two in a row means
    // the receiver restarted with empty state (its cum is pinned low and
    // every further ack regresses).
    int regressed_acks = 0;
    std::map<uint32_t, InFlight> in_flight;  // ordered: oldest = begin()
    SendQueue queue;
    AimdWindow cwnd;
    RttEstimator rtt;
    TimerId retx_timer = kInvalidTimer;
    // Time of the most recent retransmission to this peer. ACK information
    // regenerated after a retransmission may describe receptions that
    // happened long before, so frames sent earlier than this are Karn-
    // ambiguous for RTT sampling even if they themselves were never resent.
    double last_retx_at = -1;

    // --- receive direction ---
    bool recv_epoch_known = false;
    uint32_t recv_epoch = 0;
    uint32_t cum_recv = 0;           // highest contiguously received seq
    std::set<uint32_t> recv_ahead;   // received above cum_recv
    TimerId ack_timer = kInvalidTimer;

    // --- counters ---
    ReliableChannelStats counters;
  };

  // Minimal view of a decoded frame's data fields (avoids including
  // frame.h here; filled from a decoded StackFrame in the .cc).
  struct StackFrameView {
    uint32_t epoch;
    uint32_t seq;
    const std::vector<uint8_t>* payload;
  };

  Peer& GetPeer(const std::string& addr);
  uint32_t NextStreamId();
  // Starts a fresh stream incarnation to `peer`: new stream id, sequences
  // renumbered from 1, all unacked frames resent. Triggered when the
  // peer's cumulative ACK moves backwards — impossible within one receiver
  // incarnation, so the peer must have restarted (churn replacement
  // reusing the address) and lost its receive state for our old numbering.
  void ResetSendStream(const std::string& to, Peer& peer);
  void OnDatagram(const std::string& from, const std::vector<uint8_t>& bytes);
  void HandleAckInfo(const std::string& from, Peer& peer, uint32_t ack_epoch,
                     uint32_t cum_ack, uint32_t sack_bits);
  void HandleData(const std::string& from, Peer& peer, const StackFrameView& data);
  // Admits queued frames up to the congestion window.
  void DrainQueue(const std::string& to, Peer& peer);
  void TransmitData(const std::string& to, Peer& peer, uint32_t seq,
                    InFlight& frame, TrafficClass cls);
  void ArmRetxTimer(const std::string& to, Peer& peer);
  void OnRetxTimeout(const std::string& to);
  void ScheduleAck(const std::string& to, Peer& peer);
  void SendPureAck(const std::string& to, Peer& peer);
  // Fills the piggyback/ack fields for a frame headed to `peer` and
  // cancels any pending delayed-ACK timer (the frame carries the ack).
  void FillAckState(Peer& peer, bool* has_ack, uint32_t* ack_epoch,
                    uint32_t* cum_ack, uint32_t* sack_bits);

  Transport* inner_;
  Executor* executor_;
  ReliableConfig config_;
  Rng rng_;  // stream-id generation
  uint32_t epoch_;
  ReceiveFn receiver_;
  std::unordered_map<std::string, Peer> peers_;
};

}  // namespace p2

#endif  // P2_NET_STACK_RELIABLE_CHANNEL_H_
