// Frame header for the reliable transport stack.
//
// The stack multiplexes DATA and ACK frames over the existing datagram
// format: a reliable frame is a fixed 23-byte header followed (for DATA)
// by an opaque payload — normally a 0xD2-framed tuple (src/net/wire.h).
// The leading magic byte 0xD5 distinguishes stack frames from plain tuple
// datagrams, which lets a reliable endpoint keep accepting traffic from
// best-effort peers (the reverse needs the stack on both ends: a plain
// endpoint cannot parse 0xD5 frames). All parsing is bounds-checked: wire
// input is untrusted.
//
// Layout (little-endian, fixed width):
//   u8  magic      0xD5
//   u8  version    0x02
//   u32 checksum   WireChecksum over everything after this field
//   u8  flags      bit0 = carries data, bit1 = carries ack
//   u32 epoch      sender's channel incarnation (data stream id)
//   u32 seq        data sequence number; 0 when no data
//   u32 ack_epoch  incarnation of the peer stream being acked; 0 when none
//   u32 cum_ack    highest contiguously received seq of that stream
//   u32 sack_bits  selective acks: bit i => seq cum_ack+1+i also received
//   [payload]      only when bit0 set
//
// The checksum stands in for the UDP checksum the simulated wire lacks:
// a frame damaged by the corruption fault axis must fail DecodeStackFrame
// rather than resurface as plausible protocol state.
//
// DATA frames piggyback the current ACK state of the reverse direction
// (both flag bits set) so steady bidirectional traffic needs no pure ACKs.
#ifndef P2_NET_STACK_FRAME_H_
#define P2_NET_STACK_FRAME_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace p2 {

inline constexpr uint8_t kStackMagic = 0xD5;
inline constexpr uint8_t kStackVersion = 0x02;
inline constexpr uint8_t kStackFlagData = 0x01;
inline constexpr uint8_t kStackFlagAck = 0x02;
inline constexpr size_t kStackHeaderBytes = 3 + 6 * 4;

struct StackFrame {
  bool has_data = false;
  bool has_ack = false;
  uint32_t epoch = 0;
  uint32_t seq = 0;
  uint32_t ack_epoch = 0;
  uint32_t cum_ack = 0;
  uint32_t sack_bits = 0;
  std::vector<uint8_t> payload;
};

// Serializes `f` into a datagram. Payload bytes are appended only when
// has_data is set.
std::vector<uint8_t> EncodeStackFrame(const StackFrame& f);

// As above, but the DATA payload comes from `payload` rather than
// f.payload — the send hot path appends it straight into the datagram
// instead of copying it into a StackFrame first.
std::vector<uint8_t> EncodeStackFrame(const StackFrame& f,
                                      const std::vector<uint8_t>& payload);

// Strict parse: nullopt on bad magic/version, unknown flag bits, a frame
// with neither data nor ack, truncation, or a dataless frame with trailing
// bytes.
std::optional<StackFrame> DecodeStackFrame(const std::vector<uint8_t>& bytes);

// Cheap dispatch test: does this datagram start like a stack frame?
bool LooksLikeStackFrame(const std::vector<uint8_t>& bytes);

}  // namespace p2

#endif  // P2_NET_STACK_FRAME_H_
