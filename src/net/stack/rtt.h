// Jacobson/Karels round-trip-time estimation driving the retransmit timer.
//
// Standard SRTT/RTTVAR EWMA (alpha = 1/8, beta = 1/4) with RTO =
// SRTT + 4*RTTVAR clamped to [min_rto, max_rto], exponential backoff after
// a timeout, and Karn's rule enforced by the caller: samples from
// retransmitted frames are never fed in, because their ACK is ambiguous
// between the original send and the retransmission.
#ifndef P2_NET_STACK_RTT_H_
#define P2_NET_STACK_RTT_H_

#include <cstdint>

namespace p2 {

struct RttConfig {
  double initial_rto_s = 1.0;  // before the first valid sample
  double min_rto_s = 0.25;
  double max_rto_s = 3.0;
};

class RttEstimator {
 public:
  explicit RttEstimator(RttConfig config = RttConfig{}) : config_(config) {}

  // Feeds one valid (non-retransmitted, Karn) RTT sample. Also resets the
  // timeout backoff: a fresh unambiguous sample means the path is live.
  void AddSample(double rtt_s);

  // Current retransmission timeout, including any timeout backoff, clamped
  // to [min_rto, max_rto].
  double Rto() const;

  // Doubles the timeout after an RTO expiry (capped at max_rto).
  void Backoff();

  // Clears the timeout backoff without taking a sample. Used when an ACK
  // acknowledges new data: the path is alive even if the frames it covered
  // were Karn-ambiguous and produced no sample.
  void ResetBackoff() { backoff_ = 1.0; }

  bool has_sample() const { return samples_ > 0; }
  uint64_t samples() const { return samples_; }
  double srtt_s() const { return srtt_; }
  double rttvar_s() const { return rttvar_; }

 private:
  RttConfig config_;
  double srtt_ = 0;
  double rttvar_ = 0;
  double backoff_ = 1.0;
  uint64_t samples_ = 0;
};

}  // namespace p2

#endif  // P2_NET_STACK_RTT_H_
