#include "src/net/stack/aimd.h"

#include <algorithm>

namespace p2 {

void AimdWindow::OnAck() {
  window_ = std::min(config_.max_window, window_ + 1.0 / window_);
}

void AimdWindow::OnLoss() {
  window_ = std::max(config_.min_window, window_ * config_.decrease_factor);
  ++losses_;
}

}  // namespace p2
