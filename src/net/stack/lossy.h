// Deterministic datagram loss injection for any Transport.
//
// The simulator injects loss in the fabric (SimNetwork::set_loss_rate);
// the UDP backend has no fabric to inject into, so `--loss` wraps each
// endpoint in a LossyTransport that drops outgoing datagrams with the
// configured probability. Drops are drawn from a seeded Rng, so a given
// (seed, send sequence) is reproducible.
#ifndef P2_NET_STACK_LOSSY_H_
#define P2_NET_STACK_LOSSY_H_

#include <string>
#include <vector>

#include "src/net/transport.h"
#include "src/runtime/random.h"

namespace p2 {

class LossyTransport : public Transport {
 public:
  LossyTransport(Transport* inner, double loss_rate, uint64_t seed)
      : inner_(inner), loss_rate_(loss_rate), rng_(seed) {}

  const std::string& local_addr() const override { return inner_->local_addr(); }

  using Transport::SendTo;
  void SendTo(const std::string& to, std::vector<uint8_t> bytes,
              TrafficClass cls) override {
    if (loss_rate_ > 0 && rng_.CoinFlip(loss_rate_)) {
      ++dropped_;
      return;
    }
    inner_->SendTo(to, std::move(bytes), cls);
  }

  void SetReceiver(ReceiveFn fn) override { inner_->SetReceiver(std::move(fn)); }
  const TrafficStats& stats() const override { return inner_->stats(); }

  uint64_t dropped() const { return dropped_; }

 private:
  Transport* inner_;
  double loss_rate_;
  Rng rng_;
  uint64_t dropped_ = 0;
};

}  // namespace p2

#endif  // P2_NET_STACK_LOSSY_H_
