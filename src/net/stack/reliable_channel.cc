#include "src/net/stack/reliable_channel.h"

#include <algorithm>

#include "src/net/stack/frame.h"

namespace p2 {

ReliableChannel::ReliableChannel(Transport* inner, Executor* executor,
                                 ReliableConfig config, uint64_t seed)
    : inner_(inner), executor_(executor), config_(config), rng_(seed) {
  epoch_ = NextStreamId();
  inner_->SetReceiver([this](const std::string& from, const std::vector<uint8_t>& bytes) {
    OnDatagram(from, bytes);
  });
}

uint32_t ReliableChannel::NextStreamId() {
  uint32_t id = static_cast<uint32_t>(rng_.NextU64());
  return id == 0 ? 1 : id;
}

ReliableChannel::~ReliableChannel() {
  for (auto& [addr, peer] : peers_) {
    (void)addr;
    executor_->Cancel(peer.retx_timer);
    executor_->Cancel(peer.ack_timer);
  }
  // The inner transport may outlive this channel; its receiver must not
  // call back into a destroyed object.
  inner_->SetReceiver(ReceiveFn());
}

ReliableChannel::Peer& ReliableChannel::GetPeer(const std::string& addr) {
  auto it = peers_.find(addr);
  if (it == peers_.end()) {
    it = peers_.emplace(addr, Peer(config_)).first;
    it->second.send_stream = NextStreamId();
  }
  return it->second;
}

void ReliableChannel::SendTo(const std::string& to, std::vector<uint8_t> bytes,
                             TrafficClass cls) {
  Peer& peer = GetPeer(to);
  if (peer.in_flight.size() >= peer.cwnd.Allowance()) {
    peer.queue.Push(SendQueue::Item{std::move(bytes), cls});
    return;
  }
  double now = executor_->Now();
  uint32_t seq = peer.next_seq++;
  auto [it, inserted] =
      peer.in_flight.emplace(seq, InFlight{std::move(bytes), cls, now, now, 0});
  (void)inserted;
  TransmitData(to, peer, seq, it->second, cls);
  ArmRetxTimer(to, peer);
}

void ReliableChannel::TransmitData(const std::string& to, Peer& peer, uint32_t seq,
                                   InFlight& frame, TrafficClass cls) {
  StackFrame f;
  f.has_data = true;
  f.epoch = peer.send_stream;
  f.seq = seq;
  FillAckState(peer, &f.has_ack, &f.ack_epoch, &f.cum_ack, &f.sack_bits);
  frame.last_sent_at = executor_->Now();
  if (cls == TrafficClass::kRetransmit) {
    ++peer.counters.retransmits;
    peer.counters.retransmit_bytes += frame.payload.size();
    peer.last_retx_at = frame.last_sent_at;
  } else {
    ++peer.counters.data_frames_sent;
  }
  inner_->SendTo(to, EncodeStackFrame(f, frame.payload), cls);
}

void ReliableChannel::DrainQueue(const std::string& to, Peer& peer) {
  double now = executor_->Now();
  while (peer.in_flight.size() < peer.cwnd.Allowance()) {
    std::optional<SendQueue::Item> item = peer.queue.Pop();
    if (!item.has_value()) {
      break;
    }
    uint32_t seq = peer.next_seq++;
    TrafficClass cls = item->cls;
    auto [it, inserted] =
        peer.in_flight.emplace(seq, InFlight{std::move(item->payload), cls, now, now, 0});
    (void)inserted;
    TransmitData(to, peer, seq, it->second, cls);
  }
  ArmRetxTimer(to, peer);
}

void ReliableChannel::ArmRetxTimer(const std::string& to, Peer& peer) {
  if (peer.retx_timer != kInvalidTimer || peer.in_flight.empty()) {
    return;
  }
  double due = peer.in_flight.begin()->second.last_sent_at + peer.rtt.Rto();
  double delay = std::max(0.0, due - executor_->Now());
  peer.retx_timer = executor_->ScheduleAfter(delay, [this, to]() { OnRetxTimeout(to); });
}

void ReliableChannel::OnRetxTimeout(const std::string& to) {
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    return;
  }
  Peer& peer = it->second;
  peer.retx_timer = kInvalidTimer;
  if (peer.in_flight.empty()) {
    return;
  }
  auto oldest = peer.in_flight.begin();
  double due = oldest->second.last_sent_at + peer.rtt.Rto();
  double now = executor_->Now();
  if (due > now + 1e-9) {
    // Stale wakeup: an ACK advanced the window since this timer was armed.
    ArmRetxTimer(to, peer);
    return;
  }
  ++peer.counters.timeouts;
  peer.rtt.Backoff();
  peer.cwnd.OnLoss();
  if (oldest->second.retries >= config_.max_retries) {
    ++peer.counters.expired;
    peer.in_flight.erase(oldest);
    // Abandoning a sequence number would pin a live receiver's cumulative
    // ack forever (the hole can never fill, and the 32-bit SACK window
    // eventually slides past every new frame). Renumber the stream so the
    // remaining frames start over from 1; retry budgets carry over, so
    // frames to a genuinely dead peer still drain and expire.
    ResetSendStream(to, peer);
    return;
  }
  ++oldest->second.retries;
  TransmitData(to, peer, oldest->first, oldest->second, TrafficClass::kRetransmit);
  DrainQueue(to, peer);
  ArmRetxTimer(to, peer);
}

void ReliableChannel::OnDatagram(const std::string& from, const std::vector<uint8_t>& bytes) {
  if (!LooksLikeStackFrame(bytes)) {
    // Best-effort peer: hand the raw datagram straight up.
    if (receiver_) {
      receiver_(from, bytes);
    }
    return;
  }
  std::optional<StackFrame> f = DecodeStackFrame(bytes);
  if (!f.has_value()) {
    return;  // malformed stack frame: drop
  }
  Peer& peer = GetPeer(from);
  if (f->has_ack) {
    HandleAckInfo(from, peer, f->ack_epoch, f->cum_ack, f->sack_bits);
  }
  if (f->has_data) {
    StackFrameView view{f->epoch, f->seq, &f->payload};
    HandleData(from, peer, view);
  }
}

void ReliableChannel::HandleAckInfo(const std::string& from, Peer& peer,
                                    uint32_t ack_epoch, uint32_t cum_ack,
                                    uint32_t sack_bits) {
  if (ack_epoch != peer.send_stream) {
    return;  // stale: acks a previous stream incarnation
  }
  if (cum_ack < peer.last_cum_seen) {
    // A receiver's cumulative ACK never regresses within one incarnation.
    // A single regression can be a stale reordered ack; a second in a row
    // means the peer restarted (churn replacement reusing the address)
    // with no receive state for our numbering: start a fresh stream.
    if (++peer.regressed_acks >= 2) {
      peer.regressed_acks = 0;
      ResetSendStream(from, peer);
    }
    return;
  }
  peer.regressed_acks = 0;
  ++peer.counters.acks_received;
  double now = executor_->Now();
  // Highest sequence this ack proves received (cumulative or selective):
  // frames below it that remain in flight were skipped over, i.e. nacked.
  uint32_t highest_acked = cum_ack;
  for (uint32_t i = 0; i < 32; ++i) {
    if ((sack_bits & (1u << i)) != 0) {
      highest_acked = cum_ack + 1 + i;
    }
  }
  // Karn's rule, extended: a sample is unambiguous only if the frame was
  // never retransmitted AND was sent after the last retransmission to this
  // peer — ACK state regenerated by a retransmitted frame may describe a
  // reception that happened arbitrarily long ago.
  bool have_sample = false;
  double sample = 0;
  uint32_t sample_seq = 0;
  auto consider_sample = [&](uint32_t seq, const InFlight& frame) {
    if (frame.retries == 0 && frame.first_sent_at >= peer.last_retx_at &&
        seq >= sample_seq) {
      have_sample = true;
      sample = now - frame.first_sent_at;
      sample_seq = seq;
    }
  };
  bool progress = false;
  while (!peer.in_flight.empty() && peer.in_flight.begin()->first <= cum_ack) {
    auto it = peer.in_flight.begin();
    consider_sample(it->first, it->second);
    peer.in_flight.erase(it);
    peer.cwnd.OnAck();
    progress = true;
  }
  for (uint32_t i = 0; i < 32; ++i) {
    if ((sack_bits & (1u << i)) == 0) {
      continue;
    }
    uint32_t seq = cum_ack + 1 + i;
    auto it = peer.in_flight.find(seq);
    if (it == peer.in_flight.end()) {
      continue;
    }
    consider_sample(seq, it->second);
    peer.in_flight.erase(it);
    peer.cwnd.OnAck();
    progress = true;
  }
  if (have_sample) {
    peer.rtt.AddSample(sample);
    ++peer.counters.rtt_samples;
  } else if (progress) {
    peer.rtt.ResetBackoff();
  }
  // SACK-driven fast retransmit: every frame the peer skipped over twice
  // is presumed lost and resent now, without waiting for the RTO. One loss
  // signal per ack event, however many holes it fills.
  bool loss_signalled = false;
  for (auto& [seq, frame] : peer.in_flight) {
    if (seq >= highest_acked) {
      break;  // ordered map: nothing further was skipped
    }
    if (++frame.nacks < 2 || frame.retries >= config_.max_retries) {
      continue;
    }
    frame.nacks = 0;
    ++frame.retries;
    if (!loss_signalled) {
      loss_signalled = true;
      peer.cwnd.OnLoss();
    }
    ++peer.counters.fast_retransmits;
    TransmitData(from, peer, seq, frame, TrafficClass::kRetransmit);
  }
  peer.last_cum_seen = cum_ack;
  DrainQueue(from, peer);
}

void ReliableChannel::ResetSendStream(const std::string& to, Peer& peer) {
  ++peer.counters.stream_resets;
  peer.send_stream = NextStreamId();
  peer.last_cum_seen = 0;
  peer.regressed_acks = 0;
  double now = executor_->Now();
  // Unacked in-flight frames (in send order) go ahead of queued ones; all
  // of them renumber from 1 under the new stream id. The receiver sees the
  // id change and resets its receive state for us, so the new numbering is
  // unambiguous. Retry counts survive the renumbering: already-sent frames
  // stay Karn-ambiguous (>= 1) and keep their consumed budget, so a dead
  // destination cannot be retried forever through repeated resets.
  struct Pending {
    std::vector<uint8_t> payload;
    TrafficClass cls;
    int retries;
  };
  std::vector<Pending> pending;
  pending.reserve(peer.in_flight.size() + peer.queue.size());
  for (auto& [seq, frame] : peer.in_flight) {
    (void)seq;
    pending.push_back(
        Pending{std::move(frame.payload), frame.cls, std::max(1, frame.retries)});
  }
  peer.in_flight.clear();
  while (std::optional<SendQueue::Item> item = peer.queue.Pop()) {
    pending.push_back(Pending{std::move(item->payload), item->cls, 0});
  }
  peer.next_seq = 1;
  for (Pending& item : pending) {
    if (peer.in_flight.size() < peer.cwnd.Allowance()) {
      uint32_t seq = peer.next_seq++;
      auto [it, inserted] = peer.in_flight.emplace(
          seq, InFlight{std::move(item.payload), item.cls, now, now, item.retries});
      (void)inserted;
      TransmitData(to, peer, seq, it->second,
                   item.retries > 0 ? TrafficClass::kRetransmit : item.cls);
    } else {
      peer.queue.Push(SendQueue::Item{std::move(item.payload), item.cls});
    }
  }
  ArmRetxTimer(to, peer);
}

void ReliableChannel::HandleData(const std::string& from, Peer& peer,
                                 const StackFrameView& data) {
  if (data.seq == 0) {
    return;  // seq 0 is never assigned
  }
  if (!peer.recv_epoch_known || peer.recv_epoch != data.epoch) {
    // New incarnation of the sender (restart/churn replacement reusing the
    // address): its sequence space starts over.
    peer.recv_epoch_known = true;
    peer.recv_epoch = data.epoch;
    peer.cum_recv = 0;
    peer.recv_ahead.clear();
  }
  bool duplicate =
      data.seq <= peer.cum_recv || peer.recv_ahead.count(data.seq) > 0;
  if (duplicate) {
    // Our ACK was lost; re-ack so the sender stops retransmitting.
    ++peer.counters.duplicates_received;
    ScheduleAck(from, peer);
    return;
  }
  if (peer.recv_ahead.size() >= config_.reorder_window) {
    // Unbounded out-of-order state would let a hostile sender grow memory
    // forever; drop (no ack) and let the retransmit close the gap first.
    ++peer.counters.reorder_drops;
    return;
  }
  peer.recv_ahead.insert(data.seq);
  while (!peer.recv_ahead.empty() &&
         *peer.recv_ahead.begin() == peer.cum_recv + 1) {
    peer.recv_ahead.erase(peer.recv_ahead.begin());
    ++peer.cum_recv;
  }
  ScheduleAck(from, peer);
  if (receiver_) {
    receiver_(from, *data.payload);
  }
}

void ReliableChannel::ScheduleAck(const std::string& to, Peer& peer) {
  if (peer.ack_timer != kInvalidTimer) {
    return;
  }
  peer.ack_timer =
      executor_->ScheduleAfter(config_.ack_delay_s, [this, to]() {
        auto it = peers_.find(to);
        if (it == peers_.end()) {
          return;
        }
        it->second.ack_timer = kInvalidTimer;
        SendPureAck(to, it->second);
      });
}

void ReliableChannel::SendPureAck(const std::string& to, Peer& peer) {
  StackFrame f;
  f.epoch = epoch_;
  FillAckState(peer, &f.has_ack, &f.ack_epoch, &f.cum_ack, &f.sack_bits);
  if (!f.has_ack) {
    return;  // nothing ever received from this peer
  }
  ++peer.counters.acks_sent;
  inner_->SendTo(to, EncodeStackFrame(f), TrafficClass::kControl);
}

void ReliableChannel::FillAckState(Peer& peer, bool* has_ack, uint32_t* ack_epoch,
                                   uint32_t* cum_ack, uint32_t* sack_bits) {
  *has_ack = peer.recv_epoch_known;
  *ack_epoch = 0;
  *cum_ack = 0;
  *sack_bits = 0;
  if (!peer.recv_epoch_known) {
    return;
  }
  *ack_epoch = peer.recv_epoch;
  *cum_ack = peer.cum_recv;
  for (uint32_t seq : peer.recv_ahead) {
    if (seq > peer.cum_recv && seq <= peer.cum_recv + 32) {
      *sack_bits |= 1u << (seq - peer.cum_recv - 1);
    }
  }
  // This frame carries the ack state; a pending delayed ACK is redundant.
  if (peer.ack_timer != kInvalidTimer) {
    executor_->Cancel(peer.ack_timer);
    peer.ack_timer = kInvalidTimer;
  }
}

ReliableChannelStats ReliableChannel::Stats() const {
  ReliableChannelStats out;
  for (const auto& [addr, peer] : peers_) {
    (void)addr;
    ReliableChannelStats s = peer.counters;
    s.queue_drops = peer.queue.drops();
    s.queue_high_watermark = peer.queue.high_watermark();
    if (peer.next_seq > 1) {  // only destinations we actually sent to
      s.cwnd_sum = peer.cwnd.window();
      s.cwnd_count = 1;
      if (peer.rtt.has_sample()) {
        s.srtt_sum_s = peer.rtt.srtt_s();
        s.srtt_count = 1;
      }
    }
    out.MergeFrom(s);
  }
  return out;
}

}  // namespace p2
