#include "src/net/stack/frame.h"

#include "src/runtime/marshal.h"

namespace p2 {

std::vector<uint8_t> EncodeStackFrame(const StackFrame& f) {
  return EncodeStackFrame(f, f.payload);
}

std::vector<uint8_t> EncodeStackFrame(const StackFrame& f,
                                      const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutU8(kStackMagic);
  w.PutU8(kStackVersion);
  uint8_t flags = 0;
  if (f.has_data) {
    flags |= kStackFlagData;
  }
  if (f.has_ack) {
    flags |= kStackFlagAck;
  }
  w.PutU8(flags);
  w.PutU32(f.epoch);
  w.PutU32(f.seq);
  w.PutU32(f.ack_epoch);
  w.PutU32(f.cum_ack);
  w.PutU32(f.sack_bits);
  if (f.has_data && !payload.empty()) {
    w.PutBytes(payload.data(), payload.size());
  }
  return w.Take();
}

std::optional<StackFrame> DecodeStackFrame(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t magic;
  uint8_t version;
  uint8_t flags;
  StackFrame f;
  if (!r.GetU8(&magic) || !r.GetU8(&version) || !r.GetU8(&flags) ||
      magic != kStackMagic || version != kStackVersion) {
    return std::nullopt;
  }
  if ((flags & ~(kStackFlagData | kStackFlagAck)) != 0 || flags == 0) {
    return std::nullopt;
  }
  f.has_data = (flags & kStackFlagData) != 0;
  f.has_ack = (flags & kStackFlagAck) != 0;
  if (!r.GetU32(&f.epoch) || !r.GetU32(&f.seq) || !r.GetU32(&f.ack_epoch) ||
      !r.GetU32(&f.cum_ack) || !r.GetU32(&f.sack_bits)) {
    return std::nullopt;
  }
  if (f.has_data) {
    f.payload.assign(bytes.begin() + kStackHeaderBytes, bytes.end());
  } else if (r.remaining() != 0) {
    return std::nullopt;  // trailing garbage on a pure ACK
  }
  return f;
}

bool LooksLikeStackFrame(const std::vector<uint8_t>& bytes) {
  return !bytes.empty() && bytes[0] == kStackMagic;
}

}  // namespace p2
