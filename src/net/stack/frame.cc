#include "src/net/stack/frame.h"

#include "src/net/wire.h"
#include "src/runtime/marshal.h"

namespace p2 {

namespace {
// The checksum field sits right after magic+version; it covers every byte
// that follows it (flags, counters, payload).
constexpr size_t kChecksumOffset = 2;
constexpr size_t kChecksummedFrom = kChecksumOffset + 4;
}  // namespace

std::vector<uint8_t> EncodeStackFrame(const StackFrame& f) {
  return EncodeStackFrame(f, f.payload);
}

std::vector<uint8_t> EncodeStackFrame(const StackFrame& f,
                                      const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutU8(kStackMagic);
  w.PutU8(kStackVersion);
  w.PutU32(0);  // checksum placeholder, patched below
  uint8_t flags = 0;
  if (f.has_data) {
    flags |= kStackFlagData;
  }
  if (f.has_ack) {
    flags |= kStackFlagAck;
  }
  w.PutU8(flags);
  w.PutU32(f.epoch);
  w.PutU32(f.seq);
  w.PutU32(f.ack_epoch);
  w.PutU32(f.cum_ack);
  w.PutU32(f.sack_bits);
  if (f.has_data && !payload.empty()) {
    w.PutBytes(payload.data(), payload.size());
  }
  std::vector<uint8_t> bytes = w.Take();
  uint32_t sum = WireChecksum(bytes.data() + kChecksummedFrom,
                              bytes.size() - kChecksummedFrom);
  bytes[kChecksumOffset + 0] = static_cast<uint8_t>(sum);
  bytes[kChecksumOffset + 1] = static_cast<uint8_t>(sum >> 8);
  bytes[kChecksumOffset + 2] = static_cast<uint8_t>(sum >> 16);
  bytes[kChecksumOffset + 3] = static_cast<uint8_t>(sum >> 24);
  return bytes;
}

std::optional<StackFrame> DecodeStackFrame(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t magic;
  uint8_t version;
  uint32_t checksum;
  uint8_t flags;
  StackFrame f;
  if (!r.GetU8(&magic) || !r.GetU8(&version) || !r.GetU32(&checksum) ||
      !r.GetU8(&flags) || magic != kStackMagic || version != kStackVersion) {
    return std::nullopt;
  }
  if (checksum != WireChecksum(bytes.data() + kChecksummedFrom,
                               bytes.size() - kChecksummedFrom)) {
    return std::nullopt;
  }
  if ((flags & ~(kStackFlagData | kStackFlagAck)) != 0 || flags == 0) {
    return std::nullopt;
  }
  f.has_data = (flags & kStackFlagData) != 0;
  f.has_ack = (flags & kStackFlagAck) != 0;
  if (!r.GetU32(&f.epoch) || !r.GetU32(&f.seq) || !r.GetU32(&f.ack_epoch) ||
      !r.GetU32(&f.cum_ack) || !r.GetU32(&f.sack_bits)) {
    return std::nullopt;
  }
  if (f.has_data) {
    f.payload.assign(bytes.begin() + kStackHeaderBytes, bytes.end());
  } else if (r.remaining() != 0) {
    return std::nullopt;  // trailing garbage on a pure ACK
  }
  return f;
}

bool LooksLikeStackFrame(const std::vector<uint8_t>& bytes) {
  return !bytes.empty() && bytes[0] == kStackMagic;
}

}  // namespace p2
