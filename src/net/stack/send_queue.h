// Bounded per-destination send queue with backpressure accounting.
//
// Frames admitted past the congestion window wait here in FIFO order.
// The queue is hard-bounded: overflow drops the newest frame and counts
// it, so a dead or congested destination can never grow memory without
// bound (the failure mode the ROADMAP's "non-blocking send queueing"
// item calls out).
#ifndef P2_NET_STACK_SEND_QUEUE_H_
#define P2_NET_STACK_SEND_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "src/net/transport.h"

namespace p2 {

class SendQueue {
 public:
  struct Item {
    std::vector<uint8_t> payload;
    TrafficClass cls = TrafficClass::kMaintenance;
  };

  explicit SendQueue(size_t capacity) : capacity_(capacity) {}

  // False (and the drop counter ticks) when the queue is full.
  bool Push(Item item) {
    if (items_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    items_.push_back(std::move(item));
    high_watermark_ = std::max(high_watermark_, items_.size());
    return true;
  }

  std::optional<Item> Pop() {
    if (items_.empty()) {
      return std::nullopt;
    }
    Item item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  size_t capacity() const { return capacity_; }
  uint64_t drops() const { return drops_; }
  size_t high_watermark() const { return high_watermark_; }

 private:
  size_t capacity_;
  std::deque<Item> items_;
  uint64_t drops_ = 0;
  size_t high_watermark_ = 0;
};

}  // namespace p2

#endif  // P2_NET_STACK_SEND_QUEUE_H_
