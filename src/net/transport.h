// Datagram transport abstraction.
//
// A P2 node's network stack bottoms out in a Transport: an unreliable,
// unordered datagram channel addressed by string addresses. Two
// implementations exist: SimTransport (virtual-time simulator, used by the
// benchmarks) and UdpTransport (real sockets, used by the multi-process
// examples). Decorators in src/net/stack/ (ReliableChannel, LossyTransport)
// are also Transports, so the whole stack composes like the paper's staged
// dataflow pipelines.
#ifndef P2_NET_TRANSPORT_H_
#define P2_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace p2 {

// Classifies a send for the evaluation's bandwidth accounting. The paper
// separates "lookup" traffic (lookup/lookupResults tuples) from
// "maintenance" traffic; the reliable transport stack adds two classes of
// its own so its overhead never pollutes the paper's figures:
// retransmissions and pure control frames (ACKs).
enum class TrafficClass {
  kMaintenance,
  kLookup,
  kRetransmit,
  kControl,
};

// Cumulative traffic counters for one endpoint, split by traffic class.
// bytes_out/bytes_in cover everything that reached (or arrived from) the
// wire; the *_bytes_out fields split bytes_out by TrafficClass.
struct TrafficStats {
  uint64_t bytes_out = 0;
  uint64_t msgs_out = 0;
  uint64_t bytes_in = 0;
  uint64_t msgs_in = 0;
  uint64_t maint_bytes_out = 0;
  uint64_t lookup_bytes_out = 0;
  uint64_t retx_bytes_out = 0;     // retransmitted frames (reliable stack)
  uint64_t control_bytes_out = 0;  // pure ACK frames (reliable stack)

  // Accounts one outgoing datagram of `wire_bytes` under `cls`.
  void CountOut(size_t wire_bytes, TrafficClass cls) {
    bytes_out += wire_bytes;
    msgs_out += 1;
    switch (cls) {
      case TrafficClass::kMaintenance:
        maint_bytes_out += wire_bytes;
        break;
      case TrafficClass::kLookup:
        lookup_bytes_out += wire_bytes;
        break;
      case TrafficClass::kRetransmit:
        retx_bytes_out += wire_bytes;
        break;
      case TrafficClass::kControl:
        control_bytes_out += wire_bytes;
        break;
    }
  }
};

class Transport {
 public:
  using ReceiveFn =
      std::function<void(const std::string& from, const std::vector<uint8_t>& bytes)>;

  virtual ~Transport() = default;

  virtual const std::string& local_addr() const = 0;

  // Sends a datagram accounted under `cls`. Delivery is best-effort.
  virtual void SendTo(const std::string& to, std::vector<uint8_t> bytes,
                      TrafficClass cls) = 0;

  // Legacy classifier: true means lookup-plane, false maintenance.
  void SendTo(const std::string& to, std::vector<uint8_t> bytes,
              bool is_lookup_traffic) {
    SendTo(to, std::move(bytes),
           is_lookup_traffic ? TrafficClass::kLookup : TrafficClass::kMaintenance);
  }

  virtual void SetReceiver(ReceiveFn fn) = 0;

  virtual const TrafficStats& stats() const = 0;
};

// Estimated per-datagram UDP/IP header overhead counted toward bandwidth
// symmetrically on both the send and the receive side.
inline constexpr size_t kUdpIpHeaderBytes = 28;

}  // namespace p2

#endif  // P2_NET_TRANSPORT_H_
