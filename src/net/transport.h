// Datagram transport abstraction.
//
// A P2 node's network stack bottoms out in a Transport: an unreliable,
// unordered datagram channel addressed by string addresses. Two
// implementations exist: SimTransport (virtual-time simulator, used by the
// benchmarks) and UdpTransport (real sockets, used by the multi-process
// examples).
#ifndef P2_NET_TRANSPORT_H_
#define P2_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace p2 {

// Cumulative traffic counters for one endpoint, split by traffic class.
// The paper's evaluation separates "lookup" traffic (lookup/lookupResults
// tuples) from "maintenance" traffic (everything else).
struct TrafficStats {
  uint64_t bytes_out = 0;
  uint64_t msgs_out = 0;
  uint64_t bytes_in = 0;
  uint64_t msgs_in = 0;
  uint64_t maint_bytes_out = 0;
  uint64_t lookup_bytes_out = 0;
};

class Transport {
 public:
  using ReceiveFn =
      std::function<void(const std::string& from, const std::vector<uint8_t>& bytes)>;

  virtual ~Transport() = default;

  virtual const std::string& local_addr() const = 0;

  // Sends a datagram. `is_lookup_traffic` classifies the message for the
  // evaluation's bandwidth accounting. Delivery is best-effort.
  virtual void SendTo(const std::string& to, std::vector<uint8_t> bytes,
                      bool is_lookup_traffic) = 0;

  virtual void SetReceiver(ReceiveFn fn) = 0;

  virtual const TrafficStats& stats() const = 0;
};

// Estimated per-datagram UDP/IP header overhead counted toward bandwidth.
inline constexpr size_t kUdpIpHeaderBytes = 28;

}  // namespace p2

#endif  // P2_NET_TRANSPORT_H_
