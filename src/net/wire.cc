#include "src/net/wire.h"

#include "src/net/transport.h"
#include "src/runtime/marshal.h"

namespace p2 {

std::vector<uint8_t> FrameTuple(const Tuple& t) {
  ByteWriter body;
  if (!MarshalTuple(t, &body)) {
    return {};  // oversize tuple: callers drop the datagram
  }
  ByteWriter w;
  w.PutU8(0xD2);  // magic
  w.PutU8(0x02);  // version
  w.PutU32(WireChecksum(body.buffer().data(), body.size()));
  w.PutBytes(body.buffer().data(), body.size());
  return w.Take();
}

std::optional<TuplePtr> UnframeTuple(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  uint8_t magic;
  uint8_t version;
  uint32_t checksum;
  if (!r.GetU8(&magic) || !r.GetU8(&version) || !r.GetU32(&checksum) ||
      magic != 0xD2 || version != 0x02) {
    return std::nullopt;
  }
  if (checksum != WireChecksum(bytes.data() + (bytes.size() - r.remaining()),
                               r.remaining())) {
    return std::nullopt;
  }
  return UnmarshalTuple(&r);
}

size_t WireSizeOf(const Tuple& t) {
  return FrameTuple(t).size() + kUdpIpHeaderBytes;
}

bool IsLookupTraffic(const std::string& tuple_name) {
  return tuple_name == "lookup" || tuple_name == "lookupResults" ||
         tuple_name == "blookup" || tuple_name == "blookupRes";
}

}  // namespace p2
