// Chord over P2 (§4, Appendix B).
//
// ChordConfig parameterizes the OverLog program's timer periods and ring
// parameters; ChordProgramText() renders the full rule set (lookups, ring
// maintenance with multiple successors, finger maintenance with eager
// opportunistic population, joins, stabilization, successor eviction, and
// connectivity monitoring / failure detection). ChordNode wraps a P2Node
// running that program with a typed API (join, lookup, inspection).
#ifndef P2_OVERLAYS_CHORD_H_
#define P2_OVERLAYS_CHORD_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/p2/node.h"
#include "src/runtime/uint160.h"

namespace p2 {

// Defaults follow Appendix B. The timer relationship matters for failure
// recovery: ping_period < succ_lifetime < stabilize_period. Live successors
// are refreshed by ping responses (CM9) faster than they expire, while dead
// successors re-learned through stabilization gossip (SB6/SB7) expire again
// before the next gossip round can refresh them — that is how confirmed-dead
// state drains out of the ring.
struct ChordConfig {
  double finger_fix_period_s = 10.0;  // tFix
  double stabilize_period_s = 15.0;   // tStab
  double ping_period_s = 5.0;         // tPing
  double succ_lifetime_s = 10.0;      // successor soft-state TTL
  double finger_lifetime_s = 180.0;
  int max_successors = 4;     // eviction threshold (paper: 4)
  int num_fingers = 160;      // identifier bits
  // True (default): the Appendix-B optimized finger rules (F4-F9) that
  // eagerly populate every later finger covered by one lookup result.
  // False: the naive §4 variant — one finger per fix period, round-robin.
  // The ablation benchmark quantifies the difference.
  bool eager_fingers = true;
};

// Renders the Chord OverLog program for `config`.
std::string ChordProgramText(const ChordConfig& config);

// Number of rules in the rendered program (the paper's headline "47 rules"
// metric; computed by parsing, so it stays honest as the program evolves).
size_t ChordRuleCount(const ChordConfig& config);

// A Chord participant. Owns a P2Node; the caller owns executor/transport.
class ChordNode {
 public:
  struct LookupResult {
    Uint160 key;
    Uint160 successor_id;
    std::string successor_addr;
    Uint160 event_id;
  };
  using LookupFn = std::function<void(const LookupResult&)>;

  // `landmark_addr` empty => this node starts a fresh ring.
  //
  // `extra_program` is appended to the Chord OverLog program before
  // compilation — applications extend the overlay declaratively (§2.5
  // reuse), e.g. the DHT key-value rules in examples/chord_kv.cpp. Extra
  // rules may join any Chord table and define their own.
  ChordNode(P2NodeConfig node_config, const ChordConfig& chord_config,
            std::string landmark_addr, std::string extra_program = "");
  ~ChordNode();

  // Starts the node, injects the initial join event, and arms a join-retry
  // timer that re-issues the join while the node has no successors (join
  // lookups ride UDP and the landmark may not be ready yet).
  void Start();
  void Stop();

  // Issues a lookup for `key`; the result (if any) is delivered to the
  // callback installed with OnLookupResult. Returns the event id.
  Uint160 Lookup(const Uint160& key);
  void OnLookupResult(LookupFn fn);

  // Optional bootstrap re-resolution: when set, each join retry refreshes
  // the landmark table from this provider (deployments use a bootstrap
  // list; a dead or not-yet-joined landmark would otherwise wedge the node
  // forever). Returning an empty string keeps the current landmark.
  void SetLandmarkProvider(std::function<std::string()> fn) {
    landmark_provider_ = std::move(fn);
  }

  const Uint160& id() const { return id_; }
  const std::string& addr() const { return node_.addr(); }
  P2Node* node() { return &node_; }

  // Current best successor (id, addr), if stabilized.
  std::optional<std::pair<Uint160, std::string>> BestSuccessor();
  // All current successors.
  std::vector<std::pair<Uint160, std::string>> Successors();
  // Current predecessor, if known.
  std::optional<std::pair<Uint160, std::string>> Predecessor();
  // Finger table entries as (index, id, addr).
  std::vector<std::tuple<int64_t, Uint160, std::string>> Fingers();

 private:
  void InjectJoin();
  void ScheduleJoinRetry();

  P2Node node_;
  Uint160 id_;
  std::vector<LookupFn> lookup_fns_;
  std::function<std::string()> landmark_provider_;
  TimerId retry_timer_ = kInvalidTimer;
  double join_retry_s_ = 5.0;
};

}  // namespace p2

#endif  // P2_OVERLAYS_CHORD_H_
