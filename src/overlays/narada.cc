#include "src/overlays/narada.h"

#include "src/overlog/parser.h"
#include "src/runtime/logging.h"

namespace p2 {
namespace {

std::string Num(double v) {
  if (v == static_cast<int64_t>(v)) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void ReplaceAll(std::string* text, const std::string& from, const std::string& to) {
  size_t pos = 0;
  while ((pos = text->find(from, pos)) != std::string::npos) {
    text->replace(pos, from.size(), to);
    pos += to.size();
  }
}

// Appendix A, with one structural repair documented in DESIGN.md: the
// appendix's R5 applies its "X != Address" selection *after* the count
// aggregation, so a refresh about the local node itself would still emit a
// count-0 group and re-store the local entry (possibly marking the node
// dead from stale data). R5a filters self-refreshes before aggregating.
constexpr char kNaradaProgram[] = R"OLG(
/* ---- Base tables ---- */
materialize(member, %MLIFE%, infinity, keys(2)).
materialize(sequence, infinity, 1, keys(1)).
materialize(neighbor, %NLIFE%, infinity, keys(2)).
materialize(env, infinity, infinity, keys(2,3)).
materialize(latency, 120, infinity, keys(2)).

/* ---- Setup: bootstrap neighbors from the environment table, and the
        initial sequence number ---- */
E0 neighbor@X(X,Y) :- periodic@X(X,E,0,1), env@X(X,H,Y), H == "neighbor".
S0 sequence@X(X,Sequence) :- periodic@X(X,E,0,1), Sequence := 0.

/* ---- Membership refresh (epidemic propagation) ---- */
R1 refreshEvent@X(X) :- periodic@X(X,E,%TREFRESH%).
R2 refreshSequence@X(X,NewSequence) :- refreshEvent@X(X), sequence@X(X,Sequence),
   NewSequence := Sequence + 1.
R3 sequence@X(X,NewSequence) :- refreshSequence@X(X,NewSequence).
R4 refresh@Y(Y,X,NewSequence,Address,ASequence,ALive) :-
   refreshSequence@X(X,NewSequence), member@X(X,Address,ASequence,Time,ALive),
   neighbor@X(X,Y).
R5a refreshMsg@X(X,Y,YSeq,Address,ASeq,ALive) :- refresh@X(X,Y,YSeq,Address,ASeq,ALive),
    X != Address.
R5 membersFound@X(X,Address,ASeq,ALive,count<*>) :-
   refreshMsg@X(X,Y,YSeq,Address,ASeq,ALive), member@X(X,Address,MySeq,MyTime,MyLive).
R6 member@X(X,Address,ASequence,T,ALive) :- membersFound@X(X,Address,ASequence,ALive,C),
   C == 0, T := f_now().
R7 member@X(X,Address,ASequence,T,ALive) :- membersFound@X(X,Address,ASequence,ALive,C),
   C > 0, member@X(X,Address,MySequence,MyT,MyLive), MySequence < ASequence,
   T := f_now().
R8 member@X(X,Y,YSeq,T,YLive) :- refresh@X(X,Y,YSeq,A,AS,AL), T := f_now(), YLive := 1.

/* ---- Mutual neighbor links ---- */
N1 neighbor@X(X,Y) :- refresh@X(X,Y,YS,A,AS,L).

/* ---- Neighbor liveness ---- */
L1 neighborProbe@X(X) :- periodic@X(X,E,%TPROBE%).
L2 deadNeighbor@X(X,Y) :- neighborProbe@X(X), T := f_now(), neighbor@X(X,Y),
   member@X(X,Y,YS,YT,L), T - YT > %TDEAD%.
L3 delete neighbor@X(X,Y) :- deadNeighbor@X(X,Y).
L4 member@X(X,Neighbor,DeadSequence,T,Live) :- deadNeighbor@X(X,Neighbor),
   member@X(X,Neighbor,S,T1,L), Live := 0, DeadSequence := S + 1, T := f_now().

/* ---- Latency measurement (§2.3 P0-P3): ping a random member ---- */
P0 pingEvent@X(X,Y,E,max<R>) :- periodic@X(X,E,%TLAT%), member@X(X,Y,S,T,L),
   Y != X, R := f_rand().
P1 latPing@Y(Y,X,E,T) :- pingEvent@X(X,Y,E,R), T := f_now().
P2 latPong@X(X,Y,E,T) :- latPing@Y(Y,X,E,T).
P3 latency@X(X,Y,LAT) :- latPong@X(X,Y,E,T1), LAT := f_now() - T1.
)OLG";

}  // namespace

std::string NaradaProgramText(const NaradaConfig& config) {
  std::string text = kNaradaProgram;
  ReplaceAll(&text, "%TREFRESH%", Num(config.refresh_period_s));
  ReplaceAll(&text, "%TPROBE%", Num(config.probe_period_s));
  ReplaceAll(&text, "%TDEAD%", Num(config.dead_after_s));
  ReplaceAll(&text, "%TLAT%", Num(config.latency_probe_period_s));
  ReplaceAll(&text, "%MLIFE%", Num(config.member_lifetime_s));
  ReplaceAll(&text, "%NLIFE%", Num(config.neighbor_lifetime_s));
  return text;
}

size_t NaradaRuleCount(const NaradaConfig& config) {
  ProgramAst program;
  std::string err;
  if (!ParseOverLog(NaradaProgramText(config), &program, &err)) {
    P2_FATAL("narada program does not parse: %s", err.c_str());
  }
  size_t rules = 0;
  for (const RuleAst& r : program.rules) {
    if (!r.IsFact()) {
      ++rules;
    }
  }
  return rules;
}

NaradaNode::NaradaNode(P2NodeConfig node_config, const NaradaConfig& narada_config,
                       const std::vector<std::string>& initial_neighbors)
    : node_(std::move(node_config)) {
  std::string err;
  if (!node_.Install(NaradaProgramText(narada_config), &err)) {
    P2_FATAL("narada install failed: %s", err.c_str());
  }
  Value self = Value::Addr(node_.addr());
  for (const std::string& n : initial_neighbors) {
    node_.GetTable("env")->Insert(
        Tuple::Make("env", {self, Value::Str("neighbor"), Value::Addr(n)}));
  }
  // Seed the membership with the local node so refreshes advertise it.
  node_.GetTable("member")->Insert(Tuple::Make(
      "member", {self, self, Value::Int(0), Value::Double(0.0), Value::Int(1)}));
}

std::vector<NaradaMember> NaradaNode::Members() {
  std::vector<NaradaMember> out;
  for (const TuplePtr& row : node_.GetTable("member")->Scan()) {
    if (row->size() < 5 || row->field(1).type() != ValueType::kAddr) {
      continue;
    }
    NaradaMember m;
    m.addr = row->field(1).AsAddr();
    m.sequence = row->field(2).AsInt();
    m.inserted_at = row->field(3).AsDouble();
    m.live = row->field(4).AsInt() != 0;
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<std::string> NaradaNode::Neighbors() {
  std::vector<std::string> out;
  for (const TuplePtr& row : node_.GetTable("neighbor")->Scan()) {
    if (row->size() >= 2 && row->field(1).type() == ValueType::kAddr) {
      out.push_back(row->field(1).AsAddr());
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> NaradaNode::Latencies() {
  std::vector<std::pair<std::string, double>> out;
  for (const TuplePtr& row : node_.GetTable("latency")->Scan()) {
    if (row->size() >= 3 && row->field(1).type() == ValueType::kAddr) {
      out.emplace_back(row->field(1).AsAddr(), row->field(2).AsDouble());
    }
  }
  return out;
}

}  // namespace p2
