// Narada-style mesh over P2 (§2.3, Appendix A).
//
// Implements the mesh-maintenance half of Narada: epidemic membership
// refresh with monotone sequence numbers, mutual neighbor links, neighbor
// liveness probing with declared-dead propagation, and the §2.3 latency
// measurement rules (random member pinging). The delivery-tree half of
// Narada (DVMRP-style multicast) is out of scope for the paper as well.
#ifndef P2_OVERLAYS_NARADA_H_
#define P2_OVERLAYS_NARADA_H_

#include <string>
#include <vector>

#include "src/p2/node.h"

namespace p2 {

struct NaradaConfig {
  double refresh_period_s = 3.0;   // membership gossip period
  double probe_period_s = 1.0;     // neighbor liveness check period
  double dead_after_s = 20.0;      // silence threshold before declaring dead
  double latency_probe_period_s = 2.0;
  double member_lifetime_s = 120.0;
  double neighbor_lifetime_s = 120.0;
};

// Renders the Narada mesh OverLog program.
std::string NaradaProgramText(const NaradaConfig& config);
size_t NaradaRuleCount(const NaradaConfig& config);

struct NaradaMember {
  std::string addr;
  int64_t sequence = 0;
  double inserted_at = 0;
  bool live = false;
};

class NaradaNode {
 public:
  NaradaNode(P2NodeConfig node_config, const NaradaConfig& narada_config,
             const std::vector<std::string>& initial_neighbors);

  void Start() { node_.Start(); }
  void Stop() { node_.Stop(); }

  std::vector<NaradaMember> Members();
  std::vector<std::string> Neighbors();
  // Measured round-trip latencies: (member addr, seconds).
  std::vector<std::pair<std::string, double>> Latencies();

  const std::string& addr() const { return node_.addr(); }
  P2Node* node() { return &node_; }

 private:
  P2Node node_;
};

}  // namespace p2

#endif  // P2_OVERLAYS_NARADA_H_
