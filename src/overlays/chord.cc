#include "src/overlays/chord.h"

#include <cstring>

#include "src/overlog/parser.h"
#include "src/runtime/logging.h"

namespace p2 {
namespace {

// Renders a double without trailing zeros ("10", "0.5").
std::string Num(double v) {
  if (v == static_cast<int64_t>(v)) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void ReplaceAll(std::string* text, const std::string& from, const std::string& to) {
  size_t pos = 0;
  while ((pos = text->find(from, pos)) != std::string::npos) {
    text->replace(pos, from.size(), to);
    pos += to.size();
  }
}

// The full Chord specification (Appendix B of the paper), with three
// mechanical repairs documented in DESIGN.md / EXPERIMENTS.md:
//  * the OCR-garbled "K:=1I << I + N" is written as K := N + (1 << I);
//  * the appendix reuses rule id SB7 twice; the notify pair is SB8/SB9;
//  * the predecessor-timeout rule (appendix CM9) joins pendingPing on the
//    *current* ping event id, which can never match — here it matches any
//    older outstanding ping (E1 != E) and is ordered before the rule that
//    refreshes pendingPing.
constexpr char kChordProgram[] = R"OLG(
/* ---- Base tables ---- */
materialize(node, infinity, 1, keys(1)).
materialize(finger, %FLIFE%, %FNUM%, keys(2)).
materialize(bestSucc, infinity, 1, keys(1)).
materialize(succDist, %SLIFE%, 100, keys(2)).
materialize(succ, %SLIFE%, 100, keys(2)).
materialize(pred, infinity, 1, keys(1)).
materialize(succCount, infinity, 1, keys(1)).
materialize(join, 10, 5, keys(1)).
materialize(landmark, infinity, 1, keys(1)).
materialize(fFix, infinity, 160, keys(2)).
materialize(nextFingerFix, infinity, 1, keys(1)).
materialize(pingNode, %PINGLIFE%, 100, keys(2)).
materialize(pendingPing, %PINGLIFE%, 100, keys(2)).

/* ---- Lookups ---- */
L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
   bestSucc@NI(NI,S,SI), K in (N,S].
L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
   finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
L3 lookup@BI(min<BI>,K,R,E) :- node@NI(NI,N), bestLookupDist@NI(NI,K,R,E,D),
   finger@NI(NI,I,B,BI), D == K - B - 1, B in (N,K).

/* ---- Neighbor (successor) selection ---- */
N1 succEvent@NI(NI,S,SI) :- succ@NI(NI,S,SI).
N2 succDist@NI(NI,S,D) :- node@NI(NI,N), succEvent@NI(NI,S,SI), D := S - N - 1.
N3 bestSuccDist@NI(NI,min<D>) :- succDist@NI(NI,S,D).
N4 bestSucc@NI(NI,S,SI) :- succ@NI(NI,S,SI), bestSuccDist@NI(NI,D), node@NI(NI,N),
   D == S - N - 1.
N5 finger@NI(NI,0,S,SI) :- bestSucc@NI(NI,S,SI).

/* ---- Successor eviction ---- */
S1 succCount@NI(NI,count<*>) :- succ@NI(NI,S,SI).
S2 evictSucc@NI(NI) :- succCount@NI(NI,C), C > %MAXSUCC%.
S3 maxSuccDist@NI(NI,max<D>) :- succ@NI(NI,S,SI), node@NI(NI,N), evictSucc@NI(NI),
   D := S - N - 1.
S4 delete succ@NI(NI,S,SI) :- node@NI(NI,N), succ@NI(NI,S,SI), maxSuccDist@NI(NI,D),
   D == S - N - 1.

/* ---- Finger fixing ---- */
F0 nextFingerFix@NI(NI, 0).
F1 fFix@NI(NI,E,I) :- periodic@NI(NI,E,%TFIX%), nextFingerFix@NI(NI,I).
F2 fFixEvent@NI(NI,E,I) :- fFix@NI(NI,E,I).
F3 lookup@NI(NI,K,NI,E) :- fFixEvent@NI(NI,E,I), node@NI(NI,N), K := N + (1 << I).
%FINGER_RULES%

/* ---- Joins / churn handling ---- */
C1 joinEvent@NI(NI,E) :- join@NI(NI,E).
C2 joinReq@LI(LI,N,NI,E) :- joinEvent@NI(NI,E), node@NI(NI,N), landmark@NI(NI,LI),
   LI != "-".
C3 succ@NI(NI,N,NI) :- landmark@NI(NI,LI), joinEvent@NI(NI,E), node@NI(NI,N),
   LI == "-".
C4 lookup@LI(LI,N,NI,E) :- joinReq@LI(LI,N,NI,E).
C5 succ@NI(NI,S,SI) :- join@NI(NI,E), lookupResults@NI(NI,K,S,SI,E).

/* ---- Stabilization ---- */
SB0 pred@NI(NI,"-","-").
SB1 stabilize@NI(NI,E) :- periodic@NI(NI,E,%TSTAB%).
SB2 stabilizeRequest@SI(SI,NI) :- stabilize@NI(NI,E), bestSucc@NI(NI,S,SI).
SB3 sendPredecessor@PI1(PI1,P,PI) :- stabilizeRequest@NI(NI,PI1), pred@NI(NI,P,PI),
   PI != "-".
SB4 succ@NI(NI,P,PI) :- node@NI(NI,N), sendPredecessor@NI(NI,P,PI),
   bestSucc@NI(NI,S,SI), P in (N,S).
SB5 sendSuccessors@SI(SI,NI) :- stabilize@NI(NI,E), succ@NI(NI,S,SI).
SB6 returnSuccessor@PI(PI,S,SI) :- sendSuccessors@NI(NI,PI), succ@NI(NI,S,SI).
SB7 succ@NI(NI,S,SI) :- returnSuccessor@NI(NI,S,SI).
SB8 notifyPredecessor@SI(SI,N,NI) :- stabilize@NI(NI,E), node@NI(NI,N),
   succ@NI(NI,S,SI).
SB9 pred@NI(NI,P,PI) :- node@NI(NI,N), notifyPredecessor@NI(NI,P,PI),
   pred@NI(NI,P1,PI1), ((PI1 == "-") || (P in (P1,N))).

/* ---- Connectivity monitoring ---- */
CM0 pingEvent@NI(NI,E) :- periodic@NI(NI,E,%TPING%).
CM1 predTimeout@NI(NI,PI) :- pingEvent@NI(NI,E), pendingPing@NI(NI,PI,E1),
    pred@NI(NI,P,PI), E1 != E.
CM2 pred@NI(NI,"-","-") :- predTimeout@NI(NI,PI).
CM3 pendingPing@NI(NI,PI,E) :- pingEvent@NI(NI,E), pingNode@NI(NI,PI).
CM4 pingReq@PI(PI,NI,E) :- pendingPing@NI(NI,PI,E).
CM5 delete pendingPing@NI(NI,PI,E) :- pingResp@NI(NI,PI,E).
CM6 pingResp@RI(RI,NI,E) :- pingReq@NI(NI,RI,E).
CM7 pingNode@NI(NI,SI) :- succ@NI(NI,S,SI), SI != NI.
CM8 pingNode@NI(NI,PI) :- pred@NI(NI,P,PI), PI != NI, PI != "-".
CM9 succ@NI(NI,S,SI) :- succ@NI(NI,S,SI), pingResp@NI(NI,SI,E).
CM10 pred@NI(NI,P,PI) :- pred@NI(NI,P,PI), pingResp@NI(NI,PI,E).
)OLG";

// Appendix-B optimized finger fixing: each lookup result eagerly fills
// every later finger it covers, and nextFingerFix jumps past them.
constexpr char kEagerFingerRules[] = R"OLG(
F4 eagerFinger@NI(NI,I,B,BI) :- fFix@NI(NI,E,I), lookupResults@NI(NI,K,B,BI,E).
F5 finger@NI(NI,I,B,BI) :- eagerFinger@NI(NI,I,B,BI).
F6 eagerFinger@NI(NI,I,B,BI) :- node@NI(NI,N), eagerFinger@NI(NI,I1,B,BI),
   I := I1 + 1, K := N + (1 << I), K in (N,B), BI != NI.
F7 delete fFix@NI(NI,E,I1) :- eagerFinger@NI(NI,I,B,BI), fFix@NI(NI,E,I1),
   I > 0, I1 == I - 1.
F8 nextFingerFix@NI(NI,0) :- eagerFinger@NI(NI,I,B,BI),
   ((I == %LASTFINGER%) || (BI == NI)).
F9 nextFingerFix@NI(NI,I) :- node@NI(NI,N), eagerFinger@NI(NI,I1,B,BI),
   I := I1 + 1, K := N + (1 << I), K in (B,N), NI != BI.
)OLG";

// Naive §4-style finger fixing: exactly one finger per fix period,
// advancing round-robin (the ablation baseline).
constexpr char kNaiveFingerRules[] = R"OLG(
F4 finger@NI(NI,I,B,BI) :- fFix@NI(NI,E,I), lookupResults@NI(NI,K,B,BI,E).
F5 nextFingerFix@NI(NI,I) :- fFix@NI(NI,E,I1), lookupResults@NI(NI,K,B,BI,E),
   I := (I1 + 1) % %FNUM%.
F6 delete fFix@NI(NI,E,I) :- fFix@NI(NI,E,I), lookupResults@NI(NI,K,B,BI,E).
)OLG";

}  // namespace

std::string ChordProgramText(const ChordConfig& config) {
  std::string text = kChordProgram;
  size_t marker = text.find("%FINGER_RULES%");
  text.replace(marker, std::strlen("%FINGER_RULES%"),
               config.eager_fingers ? kEagerFingerRules : kNaiveFingerRules);
  ReplaceAll(&text, "%TFIX%", Num(config.finger_fix_period_s));
  ReplaceAll(&text, "%TSTAB%", Num(config.stabilize_period_s));
  ReplaceAll(&text, "%TPING%", Num(config.ping_period_s));
  ReplaceAll(&text, "%SLIFE%", Num(config.succ_lifetime_s));
  ReplaceAll(&text, "%FLIFE%", Num(config.finger_lifetime_s));
  ReplaceAll(&text, "%FNUM%", std::to_string(config.num_fingers));
  ReplaceAll(&text, "%LASTFINGER%", std::to_string(config.num_fingers - 1));
  ReplaceAll(&text, "%MAXSUCC%", std::to_string(config.max_successors));
  ReplaceAll(&text, "%PINGLIFE%", Num(config.ping_period_s * 2));
  return text;
}

size_t ChordRuleCount(const ChordConfig& config) {
  ProgramAst program;
  std::string err;
  if (!ParseOverLog(ChordProgramText(config), &program, &err)) {
    P2_FATAL("chord program does not parse: %s", err.c_str());
  }
  size_t rules = 0;
  for (const RuleAst& r : program.rules) {
    if (!r.IsFact()) {
      ++rules;
    }
  }
  return rules;
}

ChordNode::ChordNode(P2NodeConfig node_config, const ChordConfig& chord_config,
                     std::string landmark_addr, std::string extra_program)
    : node_(std::move(node_config)), id_(Uint160::HashOf(node_.addr())) {
  std::string err;
  if (!node_.Install(ChordProgramText(chord_config) + "\n" + extra_program, &err)) {
    P2_FATAL("chord install failed: %s", err.c_str());
  }
  // Per-node base facts, injected through the table API because OverLog
  // literals cannot express address constants.
  node_.GetTable("node")->Insert(
      Tuple::Make("node", {Value::Addr(node_.addr()), Value::Id(id_)}));
  Value landmark = landmark_addr.empty() || landmark_addr == "-"
                       ? Value::Str("-")
                       : Value::Addr(landmark_addr);
  node_.GetTable("landmark")->Insert(
      Tuple::Make("landmark", {Value::Addr(node_.addr()), landmark}));
  node_.Subscribe("lookupResults", [this](const TuplePtr& t) {
    if (t->size() < 5 || t->field(2).type() != ValueType::kId ||
        t->field(3).type() != ValueType::kAddr || t->field(1).type() != ValueType::kId ||
        t->field(4).type() != ValueType::kId) {
      return;
    }
    LookupResult r{t->field(1).AsId(), t->field(2).AsId(), t->field(3).AsAddr(),
                   t->field(4).AsId()};
    for (const LookupFn& fn : lookup_fns_) {
      fn(r);
    }
  });
}

ChordNode::~ChordNode() { Stop(); }

void ChordNode::Start() {
  node_.Start();
  InjectJoin();
  ScheduleJoinRetry();
}

void ChordNode::Stop() {
  if (retry_timer_ != kInvalidTimer) {
    node_.executor()->Cancel(retry_timer_);
    retry_timer_ = kInvalidTimer;
  }
  node_.Stop();
}

void ChordNode::InjectJoin() {
  node_.Inject(
      Tuple::Make("join", {Value::Addr(node_.addr()), Value::Id(node_.rng()->NextId())}));
}

void ChordNode::ScheduleJoinRetry() {
  retry_timer_ = node_.executor()->ScheduleAfter(join_retry_s_, [this]() {
    if (node_.GetTable("succ")->size() == 0) {
      if (landmark_provider_) {
        std::string fresh = landmark_provider_();
        if (!fresh.empty() && fresh != node_.addr()) {
          node_.GetTable("landmark")->Insert(Tuple::Make(
              "landmark", {Value::Addr(node_.addr()), Value::Addr(fresh)}));
        }
      }
      InjectJoin();
    }
    ScheduleJoinRetry();
  });
}

Uint160 ChordNode::Lookup(const Uint160& key) {
  Uint160 event = node_.rng()->NextId();
  node_.Inject(Tuple::Make("lookup", {Value::Addr(node_.addr()), Value::Id(key),
                                      Value::Addr(node_.addr()), Value::Id(event)}));
  return event;
}

void ChordNode::OnLookupResult(LookupFn fn) { lookup_fns_.push_back(std::move(fn)); }

std::optional<std::pair<Uint160, std::string>> ChordNode::BestSuccessor() {
  Table* t = node_.GetTable("bestSucc");
  for (const TuplePtr& row : t->Scan()) {
    if (row->size() >= 3 && row->field(1).type() == ValueType::kId &&
        row->field(2).type() == ValueType::kAddr) {
      return std::make_pair(row->field(1).AsId(), row->field(2).AsAddr());
    }
  }
  return std::nullopt;
}

std::vector<std::pair<Uint160, std::string>> ChordNode::Successors() {
  std::vector<std::pair<Uint160, std::string>> out;
  for (const TuplePtr& row : node_.GetTable("succ")->Scan()) {
    if (row->size() >= 3 && row->field(1).type() == ValueType::kId &&
        row->field(2).type() == ValueType::kAddr) {
      out.emplace_back(row->field(1).AsId(), row->field(2).AsAddr());
    }
  }
  return out;
}

std::optional<std::pair<Uint160, std::string>> ChordNode::Predecessor() {
  for (const TuplePtr& row : node_.GetTable("pred")->Scan()) {
    if (row->size() >= 3 && row->field(1).type() == ValueType::kId &&
        row->field(2).type() == ValueType::kAddr) {
      return std::make_pair(row->field(1).AsId(), row->field(2).AsAddr());
    }
  }
  return std::nullopt;
}

std::vector<std::tuple<int64_t, Uint160, std::string>> ChordNode::Fingers() {
  std::vector<std::tuple<int64_t, Uint160, std::string>> out;
  for (const TuplePtr& row : node_.GetTable("finger")->Scan()) {
    if (row->size() >= 4 && row->field(1).type() == ValueType::kInt &&
        row->field(2).type() == ValueType::kId && row->field(3).type() == ValueType::kAddr) {
      out.emplace_back(row->field(1).AsInt(), row->field(2).AsId(), row->field(3).AsAddr());
    }
  }
  return out;
}

}  // namespace p2
