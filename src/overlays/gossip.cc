#include "src/overlays/gossip.h"

#include "src/overlog/parser.h"
#include "src/runtime/logging.h"

namespace p2 {
namespace {

std::string Num(double v) {
  if (v == static_cast<int64_t>(v)) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

constexpr char kGossipProgram[] = R"OLG(
materialize(gmember, infinity, infinity, keys(2)).

/* Pick a uniformly random member (argmax of an i.i.d. uniform draw). */
G1 gossipEvent@X(X,E) :- periodic@X(X,E,%TGOSSIP%).
G2 gossipTarget@X(X,Y,max<R>) :- gossipEvent@X(X,E), gmember@X(X,Y), Y != X,
   R := f_rand().

/* Push the full local view to the chosen target. */
G3 gossipMsg@Y(Y,X,A) :- gossipTarget@X(X,Y,R), gmember@X(X,A).

/* Receivers merge the payload and learn the sender. */
G4 gmember@X(X,A) :- gossipMsg@X(X,Y,A).
G5 gmember@X(X,Y) :- gossipMsg@X(X,Y,A).
)OLG";

}  // namespace

std::string GossipProgramText(const GossipConfig& config) {
  std::string text = kGossipProgram;
  size_t pos = text.find("%TGOSSIP%");
  text.replace(pos, 9, Num(config.gossip_period_s));
  return text;
}

size_t GossipRuleCount(const GossipConfig& config) {
  ProgramAst program;
  std::string err;
  if (!ParseOverLog(GossipProgramText(config), &program, &err)) {
    P2_FATAL("gossip program does not parse: %s", err.c_str());
  }
  size_t rules = 0;
  for (const RuleAst& r : program.rules) {
    if (!r.IsFact()) {
      ++rules;
    }
  }
  return rules;
}

GossipNode::GossipNode(P2NodeConfig node_config, const GossipConfig& gossip_config,
                       const std::vector<std::string>& seed_members)
    : node_(std::move(node_config)) {
  std::string err;
  if (!node_.Install(GossipProgramText(gossip_config), &err)) {
    P2_FATAL("gossip install failed: %s", err.c_str());
  }
  Value self = Value::Addr(node_.addr());
  node_.GetTable("gmember")->Insert(Tuple::Make("gmember", {self, self}));
  for (const std::string& m : seed_members) {
    node_.GetTable("gmember")->Insert(Tuple::Make("gmember", {self, Value::Addr(m)}));
  }
}

std::vector<std::string> GossipNode::Members() {
  std::vector<std::string> out;
  for (const TuplePtr& row : node_.GetTable("gmember")->Scan()) {
    if (row->size() >= 2 && row->field(1).type() == ValueType::kAddr) {
      out.push_back(row->field(1).AsAddr());
    }
  }
  return out;
}

}  // namespace p2
