// Path-vector routing over P2 — one of the paper's §7 "breadth" items
// ("link-state- and path-vector-based overlays").
//
// Every node holds a `plink(X, Y, C)` table of directed links with costs.
// Periodically it advertises its best routes to each neighbor, offset by
// the link cost; receivers keep the advertisements as candidate routes
// (soft state, so withdrawn paths age out) and a table aggregate derives
// the minimum-cost route per destination. The overlay converges to
// all-pairs shortest paths, RIP-style, with a hop-cost horizon against
// count-to-infinity.
#ifndef P2_OVERLAYS_PATHVECTOR_H_
#define P2_OVERLAYS_PATHVECTOR_H_

#include <string>
#include <vector>

#include "src/p2/node.h"

namespace p2 {

struct PathVectorConfig {
  double advertise_period_s = 2.0;
  double route_lifetime_s = 7.0;  // > 2 advertise periods
  int64_t max_cost = 64;          // advertisement horizon
};

std::string PathVectorProgramText(const PathVectorConfig& config);
size_t PathVectorRuleCount(const PathVectorConfig& config);

struct RouteEntry {
  std::string dst;
  std::string next_hop;
  int64_t cost = 0;
};

class PathVectorNode {
 public:
  PathVectorNode(P2NodeConfig node_config, const PathVectorConfig& config,
                 const std::vector<std::pair<std::string, int64_t>>& links);

  void Start() { node_.Start(); }
  void Stop() { node_.Stop(); }

  // Adds / removes a directed link at runtime.
  void AddLink(const std::string& to, int64_t cost);
  void RemoveLink(const std::string& to);

  // Withdraws every candidate and best route whose next hop is `next_hop`
  // (and any route to it as a destination). Called by the churn harness
  // when a neighbor dies: soft-state TTLs would eventually age the routes
  // out, but explicit withdrawal re-converges the fleet within one
  // advertisement round instead of one route lifetime.
  void WithdrawRoutesVia(const std::string& next_hop);

  // Current best route per destination.
  std::vector<RouteEntry> BestRoutes();
  // All candidate routes (per destination and next hop).
  std::vector<RouteEntry> Routes();

  const std::string& addr() const { return node_.addr(); }
  P2Node* node() { return &node_; }

 private:
  P2Node node_;
};

}  // namespace p2

#endif  // P2_OVERLAYS_PATHVECTOR_H_
