#include "src/overlays/pathvector.h"

#include "src/overlog/parser.h"
#include "src/runtime/logging.h"

namespace p2 {
namespace {

std::string Num(double v) {
  if (v == static_cast<int64_t>(v)) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void ReplaceAll(std::string* text, const std::string& from, const std::string& to) {
  size_t pos = 0;
  while ((pos = text->find(from, pos)) != std::string::npos) {
    text->replace(pos, from.size(), to);
    pos += to.size();
  }
}

constexpr char kPathVectorProgram[] = R"OLG(
materialize(plink, infinity, 64, keys(2)).
materialize(route, %RLIFE%, 1024, keys(2,3)).
materialize(bestRouteCost, infinity, 256, keys(2)).
materialize(bestRoute, %RLIFE%, 256, keys(2)).

/* Advertisement clock. */
PV1 advEvent@X(X,E) :- periodic@X(X,E,%TADV%).

/* Direct links are routes (re-derived every period to refresh TTL). */
PV2 route@X(X,Y,Y,C) :- advEvent@X(X,E), plink@X(X,Y,C).

/* Path-vector exchange: push my best routes to every neighbor, cost
   offset by the link; the neighbor keeps them as candidates via PV4. */
PV3 adv@Y(Y,X,D,C) :- advEvent@X(X,E), plink@X(X,Y,C1), bestRoute@X(X,D,N,C0),
    C := C0 + C1, C < %MAXCOST%, D != Y.
PV4 route@X(X,D,NH,C) :- adv@X(X,NH,D,C), D != X.

/* Min-cost selection: a table aggregate maintains the per-destination
   minimum cost, and every route refresh re-derives the winning
   (destination, next hop) pair — so bestRoute stays alive exactly as long
   as a route at the minimum cost keeps being advertised, and ages out with
   it (soft state all the way down). */
PV5 bestRouteCost@X(X,D,min<C>) :- route@X(X,D,NH,C).
PV6 bestRoute@X(X,D,NH,C) :- route@X(X,D,NH,C), bestRouteCost@X(X,D,C).
)OLG";

}  // namespace

std::string PathVectorProgramText(const PathVectorConfig& config) {
  std::string text = kPathVectorProgram;
  ReplaceAll(&text, "%TADV%", Num(config.advertise_period_s));
  ReplaceAll(&text, "%RLIFE%", Num(config.route_lifetime_s));
  ReplaceAll(&text, "%MAXCOST%", std::to_string(config.max_cost));
  return text;
}

size_t PathVectorRuleCount(const PathVectorConfig& config) {
  ProgramAst program;
  std::string err;
  if (!ParseOverLog(PathVectorProgramText(config), &program, &err)) {
    P2_FATAL("path-vector program does not parse: %s", err.c_str());
  }
  size_t rules = 0;
  for (const RuleAst& r : program.rules) {
    if (!r.IsFact()) {
      ++rules;
    }
  }
  return rules;
}

PathVectorNode::PathVectorNode(P2NodeConfig node_config, const PathVectorConfig& config,
                               const std::vector<std::pair<std::string, int64_t>>& links)
    : node_(std::move(node_config)) {
  std::string err;
  if (!node_.Install(PathVectorProgramText(config), &err)) {
    P2_FATAL("path-vector install failed: %s", err.c_str());
  }
  for (const auto& [to, cost] : links) {
    AddLink(to, cost);
  }
}

void PathVectorNode::AddLink(const std::string& to, int64_t cost) {
  node_.GetTable("plink")->Insert(Tuple::Make(
      "plink", {Value::Addr(node_.addr()), Value::Addr(to), Value::Int(cost)}));
}

void PathVectorNode::RemoveLink(const std::string& to) {
  node_.GetTable("plink")->DeleteByKey({Value::Addr(to)});
}

void PathVectorNode::WithdrawRoutesVia(const std::string& next_hop) {
  Value hop = Value::Addr(next_hop);
  // route is keyed on (destination, next hop); bestRoute on destination.
  Table* route = node_.GetTable("route");
  for (const TuplePtr& row : route->Scan()) {
    if (row->size() >= 4 && (row->field(2) == hop || row->field(1) == hop)) {
      route->DeleteByKey({row->field(1), row->field(2)});
    }
  }
  Table* best = node_.GetTable("bestRoute");
  for (const TuplePtr& row : best->Scan()) {
    if (row->size() >= 4 && (row->field(2) == hop || row->field(1) == hop)) {
      best->DeleteByKey({row->field(1)});
    }
  }
}

std::vector<RouteEntry> PathVectorNode::BestRoutes() {
  std::vector<RouteEntry> out;
  for (const TuplePtr& row : node_.GetTable("bestRoute")->Scan()) {
    if (row->size() >= 4 && row->field(1).type() == ValueType::kAddr &&
        row->field(2).type() == ValueType::kAddr) {
      out.push_back(RouteEntry{row->field(1).AsAddr(), row->field(2).AsAddr(),
                               row->field(3).AsInt()});
    }
  }
  return out;
}

std::vector<RouteEntry> PathVectorNode::Routes() {
  std::vector<RouteEntry> out;
  for (const TuplePtr& row : node_.GetTable("route")->Scan()) {
    if (row->size() >= 4 && row->field(1).type() == ValueType::kAddr &&
        row->field(2).type() == ValueType::kAddr) {
      out.push_back(RouteEntry{row->field(1).AsAddr(), row->field(2).AsAddr(),
                               row->field(3).AsInt()});
    }
  }
  return out;
}

}  // namespace p2
