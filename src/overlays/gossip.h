// Epidemic membership gossip over P2.
//
// One of the paper's "breadth" follow-ups (§7): a minimal anti-entropy
// overlay in five OverLog rules. Every period, each node picks a uniformly
// random known member (via the max<R>, R := f_rand() idiom) and pushes its
// full membership view to it; receivers merge both the payload and the
// sender. Membership converges to the transitive closure of the seed graph.
#ifndef P2_OVERLAYS_GOSSIP_H_
#define P2_OVERLAYS_GOSSIP_H_

#include <string>
#include <vector>

#include "src/p2/node.h"

namespace p2 {

struct GossipConfig {
  double gossip_period_s = 2.0;
};

std::string GossipProgramText(const GossipConfig& config);
size_t GossipRuleCount(const GossipConfig& config);

class GossipNode {
 public:
  GossipNode(P2NodeConfig node_config, const GossipConfig& gossip_config,
             const std::vector<std::string>& seed_members);

  void Start() { node_.Start(); }
  void Stop() { node_.Stop(); }

  std::vector<std::string> Members();
  const std::string& addr() const { return node_.addr(); }
  P2Node* node() { return &node_; }

 private:
  P2Node node_;
};

}  // namespace p2

#endif  // P2_OVERLAYS_GOSSIP_H_
