// Soft-state tables (§2.1, §3.2).
//
// A Table stores tuples subject to a lifetime (expiry) and a maximum size,
// with a primary key and optional secondary indices. Insertion replaces the
// row with the same primary key; when the table overflows, the oldest row
// is evicted (FIFO). Expiry is enforced two ways: lazily at the start of
// every public operation (the row list is kept in refresh/insertion order,
// so the sweep works from the front), and eagerly through a single
// executor timer armed for the oldest row's deadline — so removal
// listeners (table aggregates, delta-triggered rules) observe expiry when
// it happens, not when the table is next touched. The timer is O(1) to
// (re)arm on the executor's timer wheel and there is at most one per
// table, so timer pressure does not scale with row count.
//
// All index structures are hash-based over the Values' cached hashes:
// primary lookups, secondary probes and refreshes are O(1) per row.
// LookupByCols auto-materializes a secondary index for any column set it
// is asked to scan for repeatedly.
//
// Tables are node-local; partitioning across nodes is expressed by OverLog
// location specifiers, not by the table layer.
#ifndef P2_TABLE_TABLE_H_
#define P2_TABLE_TABLE_H_

#include <functional>
#include <limits>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/executor.h"
#include "src/runtime/tuple.h"

namespace p2 {

namespace obs {
class Counter;
class Gauge;
class Registry;
}  // namespace obs

struct TableSpec {
  std::string name;
  // Soft-state lifetime in seconds; infinity() means "never expires".
  double lifetime_s = std::numeric_limits<double>::infinity();
  // Maximum number of rows; oldest evicted beyond this.
  size_t max_size = std::numeric_limits<size_t>::max();
  // 0-based field positions forming the primary key. Empty means "whole
  // tuple is the key".
  std::vector<size_t> key_positions;
  // Expected tuple arity; 0 disables the check. The planner infers this
  // from the relation's use in rules so that malformed tuples arriving off
  // the wire cannot plant short rows that later crash field-indexing
  // operators.
  size_t arity = 0;
};

// One element of a table's typed delta stream. A replacement (insertion
// over an existing primary key, including a TTL refresh of an identical
// row) carries both the new tuple and the row it displaced, so incremental
// consumers — semi-naive rule chains, incremental aggregates — can retract
// the old contribution and add the new one without rescanning the table.
// Removals carry why the row left: rule-driven deletes and capacity
// evictions are real retractions that semi-naive remove chains propagate;
// TTL expiry is the soft-state refresh cycle at work, and derived state
// ages out on its own TTL instead.
struct TableDelta {
  enum class Kind { kInsert, kReplace, kRemove };
  enum class Cause { kInsert, kDelete, kEviction, kExpiry };
  Kind kind;
  Cause cause;         // kRemove: why; kInsert/kReplace: Cause::kInsert
  TuplePtr tuple;      // the inserted / removed row
  TuplePtr old_tuple;  // kReplace only: the row that was displaced
};

class Table {
 public:
  // Listener invoked after every insertion, including TTL refreshes of an
  // identical row (refreshes must propagate so that downstream soft state
  // derived from this table is refreshed too).
  using DeltaFn = std::function<void(const TuplePtr&)>;
  // Listener invoked after a row leaves the table for good: explicit
  // delete, TTL expiry, or FIFO eviction — but NOT replacement by key
  // (that is an update, reported through the insert delta). Table
  // aggregates need this to shrink (e.g. Chord's succCount must drop after
  // successor eviction or the eviction rule never re-fires).
  using RemoveFn = std::function<void(const TuplePtr&)>;
  // Listener on the typed delta stream (inserts, replacements with the old
  // row, removals). The planner's semi-naive chains and the incremental
  // aggregate watchers subscribe here.
  using TypedDeltaFn = std::function<void(const TableDelta&)>;

  Table(TableSpec spec, Executor* executor);
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return spec_.name; }
  const TableSpec& spec() const { return spec_; }

  // Inserts or replaces by primary key. Returns true iff content changed.
  bool Insert(const TuplePtr& t);

  // Removes the row whose primary key matches `key`. Returns true if a row
  // was removed.
  bool DeleteByKey(const std::vector<Value>& key);
  // Convenience: extracts the key from a derived tuple and deletes.
  bool DeleteMatching(const Tuple& derived);

  // Declares a secondary index over `cols` (0-based). Idempotent.
  void AddIndex(const std::vector<size_t>& cols);
  bool HasIndex(const std::vector<size_t>& cols) const;

  // All rows whose `cols` fields equal `vals`. Uses a secondary index when
  // one exists, otherwise scans — and materializes an index automatically
  // once the same column set has been scanned kAutoIndexScans times.
  // Purges expired rows first.
  std::vector<TuplePtr> LookupByCols(const std::vector<size_t>& cols,
                                     const std::vector<Value>& vals);

  // All live rows, oldest first.
  std::vector<TuplePtr> Scan();

  // Row with exactly this primary key, or nullptr.
  TuplePtr FindByKey(const std::vector<Value>& key);

  size_t size();

  // All listeners — insert-only, remove-only, and typed — share ONE
  // registration-ordered list, so relative firing order between (say) an
  // aggregate watcher and a rule driver is exactly attach order. Plans
  // depend on this: a watcher attached before a rule sees each delta
  // first, so the rule's joins probe the watcher's already-updated output
  // table.

  // Registers a content-change listener (insert deltas, incl. replaces).
  void AddDeltaListener(DeltaFn fn) {
    typed_listeners_.push_back([fn = std::move(fn)](const TableDelta& d) {
      if (d.kind != TableDelta::Kind::kRemove) {
        fn(d.tuple);
      }
    });
  }
  // Registers a removal listener (deletes, expiry, eviction).
  void AddRemoveListener(RemoveFn fn) {
    typed_listeners_.push_back([fn = std::move(fn)](const TableDelta& d) {
      if (d.kind == TableDelta::Kind::kRemove) {
        fn(d.tuple);
      }
    });
  }
  // Registers a typed delta listener (insert / replace-with-old / remove).
  void AddTypedListener(TypedDeltaFn fn) { typed_listeners_.push_back(std::move(fn)); }

  // --- Statistics for the planner's cost model ---

  // Live row count without purging (const; planner-safe).
  size_t row_count() const { return rows_.size(); }
  // Monotonic count of content deltas (inserts, replaces, removals) this
  // table has emitted. The adaptive replan loop polls it to decide whether
  // enough has changed since the last pass to be worth re-costing joins.
  uint64_t delta_seq() const { return delta_seq_; }
  // Distinct keys currently held by the index over `cols`, or 0 when no
  // such index exists. Maintained incrementally per index (bucket
  // creation/destruction), so polling is O(#indices), not O(rows).
  size_t DistinctKeys(const std::vector<size_t>& cols) const;
  // Stable handle for the index over `cols` (-1 when absent). Indices are
  // only ever appended, so a handle resolved at plan time stays valid; the
  // replan loop uses it to poll DistinctKeysAt without comparing column
  // sets on every pass.
  int IndexHandle(const std::vector<size_t>& cols) const;
  size_t DistinctKeysAt(int handle) const;
  // Live mean bucket size for the index at `handle`, falling back to
  // `static_est` when the table is empty or the handle is invalid.
  // `pk_covered` probes pin one row regardless of statistics.
  double LiveFanoutAt(int handle, bool pk_covered, double static_est) const;
  // Estimated number of rows matching an equality probe over `bound_cols`.
  // Uses live index cardinality when available; otherwise a static prior
  // from the table spec, so plan-time estimates (tables usually empty at
  // plan time) are deterministic:
  //   - bound columns covering the primary key  -> 1 row,
  //   - some bound columns                      -> sqrt(capacity),
  //   - no bound columns (full scan)            -> capacity,
  // where capacity = min(max_size, kFanoutCap).
  double EstimateFanout(const std::vector<size_t>& bound_cols) const;
  // The prior-only estimate: never consults live index statistics. This is
  // the install-time column `--explain` prints as est=; EstimateFanout is
  // the live-refined value (live=). Identical on empty tables.
  double EstimateFanoutStatic(const std::vector<size_t>& bound_cols) const;
  // True iff an equality probe over `bound_cols` covers the primary key.
  bool PrimaryKeyCovered(const std::vector<size_t>& bound_cols) const;

  // Cap on the static capacity prior (unbounded tables assume this many
  // rows for costing purposes).
  static constexpr size_t kFanoutCap = 1024;

  // Approximate resident bytes (rows + index overhead) for the memory
  // footprint experiment (E9).
  size_t ApproxBytes() const;

  // Purges expired rows now (also runs implicitly before every query and
  // on the expiry timer).
  void PurgeExpired();

  // Binds per-table metric series (inserts/replaces/deletes/evictions/
  // expiries/delta events as counters, live rows as a gauge) labeled
  // table="<name>". Called by P2Node::AddTable when metrics are enabled.
  void BindObs(obs::Registry* registry, size_t lane);

  // Scans of one column set before LookupByCols materializes an index.
  static constexpr int kAutoIndexScans = 3;

 private:
  struct Row {
    TuplePtr tuple;
    double expires_at;
  };
  using RowList = std::list<Row>;
  using KeyMap =
      std::unordered_map<std::vector<Value>, RowList::iterator, ValueVecHash, ValueVecEq>;

  std::vector<Value> PrimaryKeyOf(const Tuple& t) const;
  void EraseRow(RowList::iterator it, bool notify_removal, TableDelta::Cause cause);
  void IndexInsert(RowList::iterator it);
  void IndexErase(RowList::iterator it);
  // Re-arms the single expiry timer for the current oldest row.
  void ArmExpiryTimer();

  TableSpec spec_;
  Executor* executor_;
  RowList rows_;  // insertion/refresh order: front = oldest
  KeyMap primary_;
  struct SecondaryIndex {
    std::vector<size_t> cols;
    // Key -> all matching rows. One bucket per distinct key means a probe
    // pays one hash + one key comparison however many rows match, and the
    // match count is known up front (CHR-style constraint-store indexing).
    std::unordered_map<std::vector<Value>, std::vector<RowList::iterator>, ValueVecHash,
                       ValueVecEq>
        map;
    // Bucket count, maintained incrementally on bucket creation/erase so
    // DistinctKeys never touches the map shape.
    size_t distinct = 0;
  };
  // Flat: tables carry at most a handful of indices, and probing a vector
  // by column-set equality beats a map keyed on stringified signatures.
  std::vector<SecondaryIndex> secondary_;
  // Unindexed column sets seen by LookupByCols, with scan counts.
  struct ScanStat {
    std::vector<size_t> cols;
    int scans = 0;
  };
  std::vector<ScanStat> scan_stats_;
  std::vector<TypedDeltaFn> typed_listeners_;
  uint64_t delta_seq_ = 0;
  TimerId expiry_timer_ = kInvalidTimer;
  double expiry_armed_at_ = std::numeric_limits<double>::infinity();

  // Metric handles (all nullable; bound together by BindObs).
  obs::Counter* obs_inserts_ = nullptr;
  obs::Counter* obs_replaces_ = nullptr;
  obs::Counter* obs_deletes_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_expiries_ = nullptr;
  obs::Counter* obs_deltas_ = nullptr;  // typed delta events emitted
  obs::Gauge* obs_rows_ = nullptr;
};

}  // namespace p2

#endif  // P2_TABLE_TABLE_H_
