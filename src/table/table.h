// Soft-state tables (§2.1, §3.2).
//
// A Table stores tuples subject to a lifetime (expiry) and a maximum size,
// with a primary key and optional secondary indices. Insertion replaces the
// row with the same primary key; when the table overflows, the oldest row
// is evicted (FIFO). Expiry is enforced lazily: expired rows are purged at
// the start of every public operation (the list is kept in
// refresh/insertion order, so expiry sweeps from the front).
//
// Tables are node-local; partitioning across nodes is expressed by OverLog
// location specifiers, not by the table layer.
#ifndef P2_TABLE_TABLE_H_
#define P2_TABLE_TABLE_H_

#include <functional>
#include <limits>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/executor.h"
#include "src/runtime/tuple.h"

namespace p2 {

struct TableSpec {
  std::string name;
  // Soft-state lifetime in seconds; infinity() means "never expires".
  double lifetime_s = std::numeric_limits<double>::infinity();
  // Maximum number of rows; oldest evicted beyond this.
  size_t max_size = std::numeric_limits<size_t>::max();
  // 0-based field positions forming the primary key. Empty means "whole
  // tuple is the key".
  std::vector<size_t> key_positions;
  // Expected tuple arity; 0 disables the check. The planner infers this
  // from the relation's use in rules so that malformed tuples arriving off
  // the wire cannot plant short rows that later crash field-indexing
  // operators.
  size_t arity = 0;
};

class Table {
 public:
  // Listener invoked after every insertion, including TTL refreshes of an
  // identical row (refreshes must propagate so that downstream soft state
  // derived from this table is refreshed too).
  using DeltaFn = std::function<void(const TuplePtr&)>;
  // Listener invoked after a row leaves the table for good: explicit
  // delete, TTL expiry, or FIFO eviction — but NOT replacement by key
  // (that is an update, reported through the insert delta). Table
  // aggregates need this to shrink (e.g. Chord's succCount must drop after
  // successor eviction or the eviction rule never re-fires).
  using RemoveFn = std::function<void(const TuplePtr&)>;

  Table(TableSpec spec, Executor* executor);

  const std::string& name() const { return spec_.name; }
  const TableSpec& spec() const { return spec_; }

  // Inserts or replaces by primary key. Returns true iff content changed.
  bool Insert(const TuplePtr& t);

  // Removes the row whose primary key matches `key`. Returns true if a row
  // was removed.
  bool DeleteByKey(const std::vector<Value>& key);
  // Convenience: extracts the key from a derived tuple and deletes.
  bool DeleteMatching(const Tuple& derived);

  // Declares a secondary index over `cols` (0-based). Idempotent.
  void AddIndex(const std::vector<size_t>& cols);
  bool HasIndex(const std::vector<size_t>& cols) const;

  // All rows whose `cols` fields equal `vals`. Uses a secondary index when
  // one exists, otherwise scans. Purges expired rows first.
  std::vector<TuplePtr> LookupByCols(const std::vector<size_t>& cols,
                                     const std::vector<Value>& vals);

  // All live rows, oldest first.
  std::vector<TuplePtr> Scan();

  // Row with exactly this primary key, or nullptr.
  TuplePtr FindByKey(const std::vector<Value>& key);

  size_t size();

  // Registers a content-change listener (insert deltas).
  void AddDeltaListener(DeltaFn fn) { listeners_.push_back(std::move(fn)); }
  // Registers a removal listener (deletes, expiry, eviction).
  void AddRemoveListener(RemoveFn fn) { remove_listeners_.push_back(std::move(fn)); }

  // Approximate resident bytes (rows + index overhead) for the memory
  // footprint experiment (E9).
  size_t ApproxBytes() const;

  // Purges expired rows now (also runs implicitly before every query).
  void PurgeExpired();

 private:
  struct Row {
    TuplePtr tuple;
    double expires_at;
  };
  using RowList = std::list<Row>;
  using KeyMap =
      std::unordered_map<std::vector<Value>, RowList::iterator, ValueVecHash, ValueVecEq>;

  std::vector<Value> PrimaryKeyOf(const Tuple& t) const;
  void EraseRow(RowList::iterator it, bool notify_removal);
  void IndexInsert(RowList::iterator it);
  void IndexErase(RowList::iterator it);
  static std::string ColsKey(const std::vector<size_t>& cols);

  TableSpec spec_;
  Executor* executor_;
  RowList rows_;  // insertion/refresh order: front = oldest
  KeyMap primary_;
  struct SecondaryIndex {
    std::vector<size_t> cols;
    std::unordered_multimap<std::vector<Value>, RowList::iterator, ValueVecHash, ValueVecEq> map;
  };
  std::map<std::string, SecondaryIndex> secondary_;
  std::vector<DeltaFn> listeners_;
  std::vector<RemoveFn> remove_listeners_;
};

}  // namespace p2

#endif  // P2_TABLE_TABLE_H_
