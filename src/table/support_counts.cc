#include "src/table/support_counts.h"

#include "src/table/table.h"

namespace p2 {

SupportCounts::SupportCounts(Table* head) : head_(head) {
  // Erase the count whenever the row leaves the table — counted deletes
  // (already erased below), rule deletes, evictions and head-row expiry
  // all reset the row's derivation history along with the row.
  head_->AddTypedListener([this](const TableDelta& d) {
    if (d.kind == TableDelta::Kind::kRemove) {
      counts_.erase(KeyOf(*d.tuple));
    }
  });
}

std::vector<Value> SupportCounts::KeyOf(const Tuple& t) const {
  const std::vector<size_t>& key = head_->spec().key_positions;
  if (key.empty()) {
    return t.fields();
  }
  return t.KeyOf(key);
}

void SupportCounts::Inc(const Tuple& head_row) { ++counts_[KeyOf(head_row)]; }

void SupportCounts::Dec(const Tuple& head_row, bool retract) {
  std::vector<Value> key = KeyOf(head_row);
  auto it = counts_.find(key);
  if (it == counts_.end()) {
    // Untracked: the row predates counting (e.g. arrived off the wire) or
    // already aged out. Nothing to retract; soft state decays by TTL.
    return;
  }
  if (it->second > 1) {
    --it->second;
    return;
  }
  // Last support gone. Erase the entry first: DeleteByKey re-enters the
  // cleanup listener, which would otherwise look the key up again.
  counts_.erase(it);
  if (retract) {
    head_->DeleteByKey(key);
  }
}

uint64_t SupportCounts::Count(const Tuple& head_row) const {
  auto it = counts_.find(KeyOf(head_row));
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace p2
