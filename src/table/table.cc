#include "src/table/table.h"

#include <algorithm>
#include <cmath>

#include "src/obs/registry.h"
#include "src/runtime/logging.h"

namespace p2 {

Table::Table(TableSpec spec, Executor* executor) : spec_(std::move(spec)), executor_(executor) {
  P2_CHECK(executor_ != nullptr);
}

Table::~Table() {
  if (expiry_timer_ != kInvalidTimer) {
    executor_->Cancel(expiry_timer_);
  }
}

void Table::BindObs(obs::Registry* registry, size_t lane) {
  const std::string label = "{table=\"" + spec_.name + "\"}";
  obs_inserts_ = registry->GetCounter(lane, "p2_table_inserts_total" + label);
  obs_replaces_ = registry->GetCounter(lane, "p2_table_replaces_total" + label);
  obs_deletes_ = registry->GetCounter(lane, "p2_table_deletes_total" + label);
  obs_evictions_ = registry->GetCounter(lane, "p2_table_evictions_total" + label);
  obs_expiries_ = registry->GetCounter(lane, "p2_table_expiries_total" + label);
  obs_deltas_ = registry->GetCounter(lane, "p2_table_deltas_total" + label);
  obs_rows_ = registry->GetGauge(lane, "p2_table_rows" + label);
  if (!rows_.empty()) {
    obs_rows_->Add(static_cast<int64_t>(rows_.size()));  // bound mid-life
  }
}

std::vector<Value> Table::PrimaryKeyOf(const Tuple& t) const {
  if (spec_.key_positions.empty()) {
    return t.fields();
  }
  return t.KeyOf(spec_.key_positions);
}

void Table::PurgeExpired() {
  if (!std::isfinite(spec_.lifetime_s)) {
    return;
  }
  double now = executor_->Now();
  while (!rows_.empty() && rows_.front().expires_at <= now) {
    EraseRow(rows_.begin(), /*notify_removal=*/true, TableDelta::Cause::kExpiry);
  }
}

void Table::ArmExpiryTimer() {
  if (!std::isfinite(spec_.lifetime_s)) {
    return;
  }
  if (rows_.empty()) {
    if (expiry_timer_ != kInvalidTimer) {
      executor_->Cancel(expiry_timer_);
      expiry_timer_ = kInvalidTimer;
      expiry_armed_at_ = std::numeric_limits<double>::infinity();
    }
    return;
  }
  double due = rows_.front().expires_at;
  if (expiry_timer_ != kInvalidTimer && due >= expiry_armed_at_) {
    return;  // the armed timer fires no later than needed
  }
  if (expiry_timer_ != kInvalidTimer) {
    executor_->Cancel(expiry_timer_);
  }
  expiry_armed_at_ = due;
  expiry_timer_ = executor_->ScheduleAfter(
      std::max(0.0, due - executor_->Now()), [this]() {
        expiry_timer_ = kInvalidTimer;
        expiry_armed_at_ = std::numeric_limits<double>::infinity();
        PurgeExpired();
        ArmExpiryTimer();
      });
}

void Table::EraseRow(RowList::iterator it, bool notify_removal, TableDelta::Cause cause) {
  TuplePtr gone = it->tuple;
  IndexErase(it);
  primary_.erase(PrimaryKeyOf(*gone));
  rows_.erase(it);
  ++delta_seq_;
  if (obs_rows_ != nullptr) {
    obs_rows_->Add(-1);
    obs::Counter* by_cause = cause == TableDelta::Cause::kDelete     ? obs_deletes_
                             : cause == TableDelta::Cause::kEviction ? obs_evictions_
                                                                     : obs_expiries_;
    by_cause->Inc();
  }
  if (notify_removal && !typed_listeners_.empty()) {
    if (obs_deltas_ != nullptr) {
      obs_deltas_->Inc();
    }
    TableDelta d{TableDelta::Kind::kRemove, cause, gone, nullptr};
    for (const TypedDeltaFn& fn : typed_listeners_) {
      fn(d);
    }
  }
}

void Table::IndexInsert(RowList::iterator it) {
  for (SecondaryIndex& idx : secondary_) {
    auto [bucket, fresh] = idx.map.try_emplace(it->tuple->KeyOf(idx.cols));
    if (fresh) {
      ++idx.distinct;
    }
    bucket->second.push_back(it);
  }
}

void Table::IndexErase(RowList::iterator it) {
  for (SecondaryIndex& idx : secondary_) {
    auto bucket = idx.map.find(it->tuple->KeyOf(idx.cols));
    if (bucket == idx.map.end()) {
      continue;
    }
    std::vector<RowList::iterator>& rows = bucket->second;
    for (auto i = rows.begin(); i != rows.end(); ++i) {
      if (*i == it) {
        rows.erase(i);
        break;
      }
    }
    if (rows.empty()) {
      idx.map.erase(bucket);
      --idx.distinct;
    }
  }
}

bool Table::Insert(const TuplePtr& t) {
  P2_CHECK(t != nullptr);
  if (spec_.arity != 0 && t->size() != spec_.arity) {
    P2_LOG(LogLevel::kDebug, "table %s: dropping tuple with arity %zu (want %zu)",
           spec_.name.c_str(), t->size(), spec_.arity);
    return false;
  }
  PurgeExpired();
  double expires = std::isfinite(spec_.lifetime_s)
                       ? executor_->Now() + spec_.lifetime_s
                       : std::numeric_limits<double>::infinity();
  std::vector<Value> key = PrimaryKeyOf(*t);
  auto found = primary_.find(key);
  bool changed = true;
  TuplePtr displaced;  // the old row when this insert replaces by key
  if (found != primary_.end()) {
    // Refresh: splice the row to the back (newest) in place. The list node
    // survives, so the primary entry and every secondary-index entry
    // pointing at it stay valid — no hash-map churn on the refresh path.
    RowList::iterator it = found->second;
    changed = !it->tuple->SameAs(*t);
    displaced = it->tuple;
    rows_.splice(rows_.end(), rows_, it);
    if (changed) {
      // Non-key fields may differ: secondary entries are keyed on them.
      IndexErase(it);
      it->tuple = t;
      IndexInsert(it);
    } else {
      it->tuple = t;
    }
    it->expires_at = expires;
  } else {
    rows_.push_back(Row{t, expires});
    auto it = std::prev(rows_.end());
    primary_.emplace(std::move(key), it);
    IndexInsert(it);
    if (obs_rows_ != nullptr) {
      obs_rows_->Add(1);
    }
    // FIFO eviction beyond capacity.
    while (rows_.size() > spec_.max_size) {
      EraseRow(rows_.begin(), /*notify_removal=*/true, TableDelta::Cause::kEviction);
    }
  }
  if (obs_inserts_ != nullptr) {
    (displaced == nullptr ? obs_inserts_ : obs_replaces_)->Inc();
  }
  ++delta_seq_;
  ArmExpiryTimer();
  // Listeners fire on every insertion, including TTL refreshes of identical
  // rows. Refresh visibility matters: e.g. Chord's ping-response rule
  // re-inserts successors, which must re-derive pingNode entries before
  // their own soft state expires. Rule sets must avoid self-triggering
  // insertion cycles (the planner's delta events are the only consumers).
  if (!typed_listeners_.empty()) {
    if (obs_deltas_ != nullptr) {
      obs_deltas_->Inc();
    }
    TableDelta d{displaced == nullptr ? TableDelta::Kind::kInsert : TableDelta::Kind::kReplace,
                 TableDelta::Cause::kInsert, t, displaced};
    for (const TypedDeltaFn& fn : typed_listeners_) {
      fn(d);
    }
  }
  return changed;
}

bool Table::DeleteByKey(const std::vector<Value>& key) {
  PurgeExpired();
  auto found = primary_.find(key);
  if (found == primary_.end()) {
    return false;
  }
  EraseRow(found->second, /*notify_removal=*/true, TableDelta::Cause::kDelete);
  return true;
}

bool Table::DeleteMatching(const Tuple& derived) {
  return DeleteByKey(PrimaryKeyOf(derived));
}

void Table::AddIndex(const std::vector<size_t>& cols) {
  if (HasIndex(cols)) {
    return;
  }
  SecondaryIndex idx;
  idx.cols = cols;
  for (auto it = rows_.begin(); it != rows_.end(); ++it) {
    idx.map[it->tuple->KeyOf(cols)].push_back(it);
  }
  idx.distinct = idx.map.size();
  secondary_.push_back(std::move(idx));
  // Any scan statistics for this column set are moot now.
  scan_stats_.erase(
      std::remove_if(scan_stats_.begin(), scan_stats_.end(),
                     [&cols](const ScanStat& s) { return s.cols == cols; }),
      scan_stats_.end());
}

size_t Table::DistinctKeys(const std::vector<size_t>& cols) const {
  for (const SecondaryIndex& idx : secondary_) {
    if (idx.cols == cols) {
      return idx.distinct;
    }
  }
  return 0;
}

int Table::IndexHandle(const std::vector<size_t>& cols) const {
  for (size_t i = 0; i < secondary_.size(); ++i) {
    if (secondary_[i].cols == cols) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t Table::DistinctKeysAt(int handle) const {
  if (handle < 0 || static_cast<size_t>(handle) >= secondary_.size()) {
    return 0;
  }
  return secondary_[static_cast<size_t>(handle)].distinct;
}

double Table::LiveFanoutAt(int handle, bool pk_covered, double static_est) const {
  if (pk_covered) {
    return 1.0;
  }
  if (rows_.empty()) {
    return static_est;
  }
  if (handle < 0) {
    // Unbound probe: a full scan costs every live row.
    return std::max(static_est, static_cast<double>(rows_.size()));
  }
  size_t distinct = DistinctKeysAt(handle);
  if (distinct == 0) {
    return static_est;
  }
  return static_cast<double>(rows_.size()) / static_cast<double>(distinct);
}

bool Table::PrimaryKeyCovered(const std::vector<size_t>& bound_cols) const {
  // Bound columns covering the primary key pin at most one row. An empty
  // key_positions means "whole tuple is the key": covered only when every
  // column is bound, which we can't know without the arity — treat a
  // declared arity as the column count.
  const std::vector<size_t>& key = spec_.key_positions;
  if (key.empty()) {
    return spec_.arity != 0 && bound_cols.size() >= spec_.arity;
  }
  for (size_t k : key) {
    if (std::find(bound_cols.begin(), bound_cols.end(), k) == bound_cols.end()) {
      return false;
    }
  }
  return true;
}

double Table::EstimateFanoutStatic(const std::vector<size_t>& bound_cols) const {
  if (PrimaryKeyCovered(bound_cols)) {
    return 1.0;
  }
  // Static prior from the spec (deterministic at plan time).
  double cap = static_cast<double>(std::min(spec_.max_size, kFanoutCap));
  if (bound_cols.empty()) {
    return cap;
  }
  return std::sqrt(cap);
}

double Table::EstimateFanout(const std::vector<size_t>& bound_cols) const {
  if (PrimaryKeyCovered(bound_cols)) {
    return 1.0;
  }
  // Live refinement: an existing index over exactly these columns gives the
  // true mean bucket size.
  if (!rows_.empty() && !bound_cols.empty()) {
    size_t distinct = DistinctKeys(bound_cols);
    if (distinct > 0) {
      return static_cast<double>(rows_.size()) / static_cast<double>(distinct);
    }
  }
  double cap = static_cast<double>(std::min(spec_.max_size, kFanoutCap));
  if (bound_cols.empty()) {
    return std::max(cap, static_cast<double>(rows_.size()));
  }
  return std::sqrt(cap);
}

bool Table::HasIndex(const std::vector<size_t>& cols) const {
  for (const SecondaryIndex& idx : secondary_) {
    if (idx.cols == cols) {
      return true;
    }
  }
  return false;
}

std::vector<TuplePtr> Table::LookupByCols(const std::vector<size_t>& cols,
                                          const std::vector<Value>& vals) {
  PurgeExpired();
  std::vector<TuplePtr> out;
  for (const SecondaryIndex& idx : secondary_) {
    if (idx.cols != cols) {
      continue;
    }
    auto bucket = idx.map.find(vals);
    if (bucket == idx.map.end()) {
      return out;
    }
    out.reserve(bucket->second.size());
    for (RowList::iterator row : bucket->second) {
      out.push_back(row->tuple);
    }
    return out;
  }
  // No index: scan, and materialize an index for column sets probed often
  // (repeated scans are the signature of a join the planner could not
  // pre-index, e.g. app-level lookups or late-bound key expressions).
  auto stat = std::find_if(scan_stats_.begin(), scan_stats_.end(),
                           [&cols](const ScanStat& s) { return s.cols == cols; });
  if (stat == scan_stats_.end()) {
    scan_stats_.push_back(ScanStat{cols, 0});
    stat = std::prev(scan_stats_.end());
  }
  if (++stat->scans >= kAutoIndexScans) {
    AddIndex(cols);
    return LookupByCols(cols, vals);
  }
  for (const Row& row : rows_) {
    bool match = true;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] >= row.tuple->size() || row.tuple->field(cols[i]) != vals[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      out.push_back(row.tuple);
    }
  }
  return out;
}

std::vector<TuplePtr> Table::Scan() {
  PurgeExpired();
  std::vector<TuplePtr> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    out.push_back(row.tuple);
  }
  return out;
}

TuplePtr Table::FindByKey(const std::vector<Value>& key) {
  PurgeExpired();
  auto found = primary_.find(key);
  return found == primary_.end() ? nullptr : found->second->tuple;
}

size_t Table::size() {
  PurgeExpired();
  return rows_.size();
}

size_t Table::ApproxBytes() const {
  // Rough per-row accounting: tuple header + per-field Value + index entries.
  size_t bytes = sizeof(Table);
  for (const Row& row : rows_) {
    bytes += sizeof(Row) + sizeof(Tuple) + row.tuple->size() * (sizeof(Value) + 16);
  }
  bytes += primary_.size() * 48;
  for (const SecondaryIndex& idx : secondary_) {
    bytes += idx.map.size() * 48;
  }
  return bytes;
}

}  // namespace p2
