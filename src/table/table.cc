#include "src/table/table.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace p2 {

Table::Table(TableSpec spec, Executor* executor) : spec_(std::move(spec)), executor_(executor) {
  P2_CHECK(executor_ != nullptr);
}

std::vector<Value> Table::PrimaryKeyOf(const Tuple& t) const {
  if (spec_.key_positions.empty()) {
    return t.fields();
  }
  return t.KeyOf(spec_.key_positions);
}

std::string Table::ColsKey(const std::vector<size_t>& cols) {
  std::string k;
  for (size_t c : cols) {
    k += std::to_string(c);
    k.push_back(',');
  }
  return k;
}

void Table::PurgeExpired() {
  if (!std::isfinite(spec_.lifetime_s)) {
    return;
  }
  double now = executor_->Now();
  while (!rows_.empty() && rows_.front().expires_at <= now) {
    EraseRow(rows_.begin(), /*notify_removal=*/true);
  }
}

void Table::EraseRow(RowList::iterator it, bool notify_removal) {
  TuplePtr gone = it->tuple;
  IndexErase(it);
  primary_.erase(PrimaryKeyOf(*gone));
  rows_.erase(it);
  if (notify_removal) {
    for (const RemoveFn& fn : remove_listeners_) {
      fn(gone);
    }
  }
}

void Table::IndexInsert(RowList::iterator it) {
  for (auto& [name, idx] : secondary_) {
    (void)name;
    idx.map.emplace(it->tuple->KeyOf(idx.cols), it);
  }
}

void Table::IndexErase(RowList::iterator it) {
  for (auto& [name, idx] : secondary_) {
    (void)name;
    auto range = idx.map.equal_range(it->tuple->KeyOf(idx.cols));
    for (auto i = range.first; i != range.second; ++i) {
      if (i->second == it) {
        idx.map.erase(i);
        break;
      }
    }
  }
}

bool Table::Insert(const TuplePtr& t) {
  P2_CHECK(t != nullptr);
  if (spec_.arity != 0 && t->size() != spec_.arity) {
    P2_LOG(LogLevel::kDebug, "table %s: dropping tuple with arity %zu (want %zu)",
           spec_.name.c_str(), t->size(), spec_.arity);
    return false;
  }
  PurgeExpired();
  double expires = std::isfinite(spec_.lifetime_s)
                       ? executor_->Now() + spec_.lifetime_s
                       : std::numeric_limits<double>::infinity();
  std::vector<Value> key = PrimaryKeyOf(*t);
  auto found = primary_.find(key);
  bool changed = true;
  if (found != primary_.end()) {
    changed = !found->second->tuple->SameAs(*t);
    // Refresh: move to the back (newest), update content + expiry. This is
    // a replacement, not a removal — removal listeners stay silent.
    EraseRow(found->second, /*notify_removal=*/false);
  }
  rows_.push_back(Row{t, expires});
  auto it = std::prev(rows_.end());
  primary_.emplace(std::move(key), it);
  IndexInsert(it);
  // FIFO eviction beyond capacity.
  while (rows_.size() > spec_.max_size) {
    EraseRow(rows_.begin(), /*notify_removal=*/true);
  }
  // Listeners fire on every insertion, including TTL refreshes of identical
  // rows. Refresh visibility matters: e.g. Chord's ping-response rule
  // re-inserts successors, which must re-derive pingNode entries before
  // their own soft state expires. Rule sets must avoid self-triggering
  // insertion cycles (the planner's delta events are the only consumers).
  for (const DeltaFn& fn : listeners_) {
    fn(t);
  }
  return changed;
}

bool Table::DeleteByKey(const std::vector<Value>& key) {
  PurgeExpired();
  auto found = primary_.find(key);
  if (found == primary_.end()) {
    return false;
  }
  EraseRow(found->second, /*notify_removal=*/true);
  return true;
}

bool Table::DeleteMatching(const Tuple& derived) {
  return DeleteByKey(PrimaryKeyOf(derived));
}

void Table::AddIndex(const std::vector<size_t>& cols) {
  std::string key = ColsKey(cols);
  if (secondary_.count(key) > 0) {
    return;
  }
  SecondaryIndex idx;
  idx.cols = cols;
  for (auto it = rows_.begin(); it != rows_.end(); ++it) {
    idx.map.emplace(it->tuple->KeyOf(cols), it);
  }
  secondary_.emplace(std::move(key), std::move(idx));
}

bool Table::HasIndex(const std::vector<size_t>& cols) const {
  return secondary_.count(ColsKey(cols)) > 0;
}

std::vector<TuplePtr> Table::LookupByCols(const std::vector<size_t>& cols,
                                          const std::vector<Value>& vals) {
  PurgeExpired();
  std::vector<TuplePtr> out;
  auto idx_it = secondary_.find(ColsKey(cols));
  if (idx_it != secondary_.end()) {
    auto range = idx_it->second.map.equal_range(vals);
    for (auto i = range.first; i != range.second; ++i) {
      out.push_back(i->second->tuple);
    }
    return out;
  }
  // No index: scan.
  for (const Row& row : rows_) {
    bool match = true;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] >= row.tuple->size() || row.tuple->field(cols[i]) != vals[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      out.push_back(row.tuple);
    }
  }
  return out;
}

std::vector<TuplePtr> Table::Scan() {
  PurgeExpired();
  std::vector<TuplePtr> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) {
    out.push_back(row.tuple);
  }
  return out;
}

TuplePtr Table::FindByKey(const std::vector<Value>& key) {
  PurgeExpired();
  auto found = primary_.find(key);
  return found == primary_.end() ? nullptr : found->second->tuple;
}

size_t Table::size() {
  PurgeExpired();
  return rows_.size();
}

size_t Table::ApproxBytes() const {
  // Rough per-row accounting: tuple header + per-field Value + index entries.
  size_t bytes = sizeof(Table);
  for (const Row& row : rows_) {
    bytes += sizeof(Row) + sizeof(Tuple) + row.tuple->size() * (sizeof(Value) + 16);
  }
  bytes += primary_.size() * 48;
  for (const auto& [name, idx] : secondary_) {
    (void)name;
    bytes += idx.map.size() * 48;
  }
  return bytes;
}

}  // namespace p2
