// Per-head-row derivation counts for the counting planner (the classic
// counting algorithm from the incremental-datalog literature).
//
// Every counted rule chain that derives a row into a head table increments
// the count for that row's primary key; every counted remove chain
// decrements it. The head row is deleted only when its count reaches zero,
// so a row with several live supports — e.g. Chord's pingNode derived from
// multiple succ entries — survives the retraction of any one of them.
// Counts are keyed by head primary key, shared across every rule deriving
// the same head, exactly like the table's own replace-by-key semantics.
//
// TTL expiry of a *support* decrements in "non-retracting" mode: the count
// stays exact (a later re-insert of the support re-increments from the
// true value) but expiry never deletes the head row — derived soft state
// ages out on its own TTL, preserving the planner's expiry contract.
// Removal of the head row itself (any cause) drops the count entry.
#ifndef P2_TABLE_SUPPORT_COUNTS_H_
#define P2_TABLE_SUPPORT_COUNTS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/runtime/tuple.h"

namespace p2 {

class Table;

class SupportCounts {
 public:
  // Registers a cleanup listener on `head`: any removal of a head row
  // erases its count entry, so counts can never outlive rows.
  explicit SupportCounts(Table* head);

  SupportCounts(const SupportCounts&) = delete;
  SupportCounts& operator=(const SupportCounts&) = delete;

  // A counted derivation of `head_row` happened.
  void Inc(const Tuple& head_row);

  // A counted derivation of `head_row` was retracted. Decrements; when
  // `retract` is true and the count reaches zero, deletes the head row.
  // With `retract` false (support expiry) the count still drops — keeping
  // it equal to the number of live supports — but the row is left to age
  // out by TTL.
  void Dec(const Tuple& head_row, bool retract);

  // Current count for a row's key (0 when untracked). Test/debug surface.
  uint64_t Count(const Tuple& head_row) const;
  size_t entries() const { return counts_.size(); }

 private:
  std::vector<Value> KeyOf(const Tuple& t) const;

  Table* head_;
  std::unordered_map<std::vector<Value>, uint64_t, ValueVecHash, ValueVecEq> counts_;
};

}  // namespace p2

#endif  // P2_TABLE_SUPPORT_COUNTS_H_
