// Hand-coded Chord: the imperative comparator (DESIGN.md E10).
//
// The paper compares P2 Chord against the hand-tuned MIT implementation's
// published numbers; offline we build the equivalent comparator ourselves —
// a classic event-driven Chord written directly against Executor/Transport
// with explicit state machines, using the same tuple wire format so byte
// counts are directly comparable with the declarative implementation.
#ifndef P2_BASELINE_CHORD_BASELINE_H_
#define P2_BASELINE_CHORD_BASELINE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"
#include "src/runtime/tuple.h"
#include "src/runtime/uint160.h"

namespace p2 {

struct BaselineChordConfig {
  double stabilize_period_s = 15.0;
  double finger_fix_period_s = 10.0;
  double ping_period_s = 5.0;
  double join_retry_s = 5.0;
  int max_successors = 4;
  int num_fingers = 160;
  int ping_strikes = 2;  // missed pongs before a peer is declared dead
};

class BaselineChordNode {
 public:
  struct LookupResult {
    Uint160 key;
    Uint160 successor_id;
    std::string successor_addr;
    Uint160 event_id;
  };
  using LookupFn = std::function<void(const LookupResult&)>;

  BaselineChordNode(Executor* executor, Transport* transport, uint64_t seed,
                    const BaselineChordConfig& config, std::string landmark_addr);
  ~BaselineChordNode();
  BaselineChordNode(const BaselineChordNode&) = delete;
  BaselineChordNode& operator=(const BaselineChordNode&) = delete;

  void Start();
  void Stop();

  // Bootstrap re-resolution for join retries (see ChordNode's equivalent).
  void SetLandmarkProvider(std::function<std::string()> fn) {
    landmark_provider_ = std::move(fn);
  }

  Uint160 Lookup(const Uint160& key);
  // Re-issues a lookup under an existing event id (workload retries).
  void RetryLookup(const Uint160& key, const Uint160& event);
  void OnLookupResult(LookupFn fn) { lookup_fns_.push_back(std::move(fn)); }
  // Invoked with the event id every time a lookup (original or forwarded)
  // arrives at this node; the harness counts hops with it.
  void OnLookupSeen(std::function<void(const Uint160&)> fn) {
    lookup_seen_ = std::move(fn);
  }

  const Uint160& id() const { return id_; }
  const std::string& addr() const { return addr_; }

  std::optional<std::pair<Uint160, std::string>> BestSuccessor() const;
  std::vector<std::pair<Uint160, std::string>> Successors() const;
  std::optional<std::pair<Uint160, std::string>> Predecessor() const;

 private:
  struct Peer {
    Uint160 id;
    std::string addr;
  };

  void OnPacket(const std::string& from, const std::vector<uint8_t>& bytes);
  void HandleLookup(const Tuple& t);
  void HandleLookupRes(const Tuple& t);
  void HandleStabReq(const Tuple& t);
  void HandleStabResp(const Tuple& t);
  void HandleNotify(const Tuple& t);
  void HandlePing(const Tuple& t);
  void HandlePong(const Tuple& t);

  void Send(const std::string& to, const TuplePtr& t);
  void AddSuccessor(const Peer& p);
  void RemovePeer(const std::string& peer_addr);
  // Closest node preceding `key` among fingers and successors, if any.
  std::optional<Peer> ClosestPreceding(const Uint160& key) const;
  void DoJoin();
  void DoStabilize();
  void DoFixFinger();
  void DoPing();
  void ArmTimers();
  void ArmOne(size_t slot, double delay, double period, void (BaselineChordNode::*fn)());

  Executor* executor_;
  Transport* transport_;
  Rng rng_;
  BaselineChordConfig config_;
  std::string addr_;
  Uint160 id_;
  std::string landmark_;

  std::vector<Peer> succs_;  // sorted by clockwise distance from id_
  std::optional<Peer> pred_;
  std::vector<std::optional<Peer>> fingers_;
  int next_finger_ = 0;
  std::unordered_map<std::string, int> ping_strikes_;
  // Finger-fix lookups in flight: event id (low 64 bits) -> finger index.
  std::unordered_map<uint64_t, int> fix_pending_;
  std::vector<LookupFn> lookup_fns_;
  std::function<void(const Uint160&)> lookup_seen_;
  std::function<std::string()> landmark_provider_;
  std::vector<TimerId> timers_;
  bool running_ = false;
};

}  // namespace p2

#endif  // P2_BASELINE_CHORD_BASELINE_H_
