#include "src/baseline/chord_baseline.h"

#include <algorithm>

#include "src/net/wire.h"
#include "src/runtime/logging.h"

namespace p2 {
namespace {

Value Av(const std::string& a) { return Value::Addr(a); }
Value Iv(const Uint160& i) { return Value::Id(i); }

}  // namespace

BaselineChordNode::BaselineChordNode(Executor* executor, Transport* transport, uint64_t seed,
                                     const BaselineChordConfig& config,
                                     std::string landmark_addr)
    : executor_(executor),
      transport_(transport),
      rng_(seed),
      config_(config),
      addr_(transport->local_addr()),
      id_(Uint160::HashOf(addr_)),
      landmark_(std::move(landmark_addr)) {
  fingers_.resize(config_.num_fingers);
  transport_->SetReceiver(
      [this](const std::string& from, const std::vector<uint8_t>& bytes) {
        OnPacket(from, bytes);
      });
}

BaselineChordNode::~BaselineChordNode() {
  Stop();
  transport_->SetReceiver(nullptr);
}

void BaselineChordNode::Start() {
  running_ = true;
  if (landmark_.empty() || landmark_ == "-") {
    AddSuccessor(Peer{id_, addr_});  // fresh ring: own successor
  } else {
    DoJoin();
  }
  ArmTimers();
}

void BaselineChordNode::Stop() {
  running_ = false;
  for (TimerId t : timers_) {
    executor_->Cancel(t);
  }
  timers_.clear();
}

void BaselineChordNode::ArmOne(size_t slot, double delay, double period,
                               void (BaselineChordNode::*fn)()) {
  timers_[slot] = executor_->ScheduleAfter(delay, [this, slot, period, fn]() {
    if (!running_) {
      return;
    }
    (this->*fn)();
    ArmOne(slot, period, period, fn);
  });
}

void BaselineChordNode::ArmTimers() {
  timers_.assign(4, kInvalidTimer);
  // Small random phases desynchronize timers the way any careful
  // implementation does.
  ArmOne(0, config_.stabilize_period_s * (0.1 + rng_.NextDouble() * 0.1),
         config_.stabilize_period_s, &BaselineChordNode::DoStabilize);
  ArmOne(1, config_.finger_fix_period_s * (0.1 + rng_.NextDouble() * 0.1),
         config_.finger_fix_period_s, &BaselineChordNode::DoFixFinger);
  ArmOne(2, config_.ping_period_s * (0.1 + rng_.NextDouble() * 0.1),
         config_.ping_period_s, &BaselineChordNode::DoPing);
  ArmOne(3, config_.join_retry_s, config_.join_retry_s, &BaselineChordNode::DoJoin);
}

void BaselineChordNode::Send(const std::string& to, const TuplePtr& t) {
  std::vector<uint8_t> frame = FrameTuple(*t);
  if (frame.empty()) {
    return;  // oversize tuple, cannot be framed
  }
  if (to == addr_) {
    // Local delivery: dispatch synchronously through the same handler (no
    // deferred task — the node may be destroyed by churn before it runs).
    OnPacket(addr_, frame);
    return;
  }
  transport_->SendTo(to, std::move(frame), IsLookupTraffic(t->name()));
}

void BaselineChordNode::OnPacket(const std::string& from, const std::vector<uint8_t>& bytes) {
  (void)from;
  std::optional<TuplePtr> parsed = UnframeTuple(bytes);
  if (!parsed.has_value()) {
    return;
  }
  const Tuple& t = **parsed;
  const std::string& name = t.name();
  if (name == "blookup") {
    HandleLookup(t);
  } else if (name == "blookupRes") {
    HandleLookupRes(t);
  } else if (name == "bstabReq") {
    HandleStabReq(t);
  } else if (name == "bstabResp") {
    HandleStabResp(t);
  } else if (name == "bnotify") {
    HandleNotify(t);
  } else if (name == "bping") {
    HandlePing(t);
  } else if (name == "bpong") {
    HandlePong(t);
  }
}

// blookup(dest, K, R, E)
void BaselineChordNode::HandleLookup(const Tuple& t) {
  if (t.size() < 4) {
    return;
  }
  Uint160 key = t.field(1).AsId();
  const std::string& requester = t.field(2).AsAddr();
  Uint160 event = t.field(3).AsId();
  if (lookup_seen_) {
    lookup_seen_(event);
  }
  if (!succs_.empty() && key.InOC(id_, succs_.front().id)) {
    Send(requester, Tuple::Make("blookupRes", {Av(requester), Iv(key),
                                               Iv(succs_.front().id),
                                               Av(succs_.front().addr), Iv(event)}));
    return;
  }
  std::optional<Peer> next = ClosestPreceding(key);
  if (!next.has_value() && !succs_.empty()) {
    next = succs_.front();
  }
  if (!next.has_value() || next->addr == addr_) {
    return;  // Cannot make progress; drop (caller retries).
  }
  Send(next->addr,
       Tuple::Make("blookup", {Av(next->addr), Iv(key), Av(requester), Iv(event)}));
}

// blookupRes(dest, K, S, SI, E)
void BaselineChordNode::HandleLookupRes(const Tuple& t) {
  if (t.size() < 5) {
    return;
  }
  LookupResult r{t.field(1).AsId(), t.field(2).AsId(), t.field(3).AsAddr(),
                 t.field(4).AsId()};
  auto fix = fix_pending_.find(r.event_id.Low64());
  if (fix != fix_pending_.end()) {
    int index = fix->second;
    fix_pending_.erase(fix);
    if (index == -1) {
      AddSuccessor(Peer{r.successor_id, r.successor_addr});  // join result
    } else {
      fingers_[index] = Peer{r.successor_id, r.successor_addr};
      // Opportunistic eager population: this successor also serves every
      // later finger whose target still precedes it (mirrors P2's F6).
      for (int i = index + 1; i < config_.num_fingers; ++i) {
        Uint160 target = id_ + (Uint160(1) << static_cast<unsigned>(i));
        if (!target.InOO(id_, r.successor_id)) {
          break;
        }
        fingers_[i] = Peer{r.successor_id, r.successor_addr};
      }
    }
    return;
  }
  for (const LookupFn& fn : lookup_fns_) {
    fn(r);
  }
}

// bstabReq(dest, replyTo)
void BaselineChordNode::HandleStabReq(const Tuple& t) {
  if (t.size() < 2) {
    return;
  }
  const std::string& reply_to = t.field(1).AsAddr();
  ValueList succ_list;
  for (const Peer& s : succs_) {
    succ_list.push_back(Value::List({Iv(s.id), Av(s.addr)}));
  }
  Value pred_id = pred_.has_value() ? Iv(pred_->id) : Value::Str("-");
  Value pred_addr = pred_.has_value() ? Av(pred_->addr) : Value::Str("-");
  Send(reply_to, Tuple::Make("bstabResp", {Av(reply_to), pred_id, pred_addr,
                                           Value::List(std::move(succ_list))}));
}

// bstabResp(dest, P, PI, succlist)
void BaselineChordNode::HandleStabResp(const Tuple& t) {
  if (t.size() < 4) {
    return;
  }
  if (t.field(1).type() == ValueType::kId && t.field(2).type() == ValueType::kAddr &&
      !succs_.empty()) {
    Uint160 p = t.field(1).AsId();
    if (p.InOO(id_, succs_.front().id)) {
      AddSuccessor(Peer{p, t.field(2).AsAddr()});
    }
  }
  if (t.field(3).type() == ValueType::kList) {
    for (const Value& entry : t.field(3).AsList()) {
      if (entry.type() != ValueType::kList || entry.AsList().size() < 2) {
        continue;
      }
      const ValueList& pair = entry.AsList();
      if (pair[0].type() == ValueType::kId && pair[1].type() == ValueType::kAddr) {
        AddSuccessor(Peer{pair[0].AsId(), pair[1].AsAddr()});
      }
    }
  }
  // Notify our (possibly new) best successor of our existence.
  if (!succs_.empty() && succs_.front().addr != addr_) {
    Send(succs_.front().addr,
         Tuple::Make("bnotify", {Av(succs_.front().addr), Iv(id_), Av(addr_)}));
  }
}

// bnotify(dest, N, NI)
void BaselineChordNode::HandleNotify(const Tuple& t) {
  if (t.size() < 3) {
    return;
  }
  Uint160 n = t.field(1).AsId();
  const std::string& ni = t.field(2).AsAddr();
  if (!pred_.has_value() || n.InOO(pred_->id, id_)) {
    pred_ = Peer{n, ni};
  }
}

// bping(dest, replyTo, E)
void BaselineChordNode::HandlePing(const Tuple& t) {
  if (t.size() < 3) {
    return;
  }
  const std::string& reply_to = t.field(1).AsAddr();
  Send(reply_to, Tuple::Make("bpong", {Av(reply_to), Av(addr_), t.field(2)}));
}

// bpong(dest, from, E)
void BaselineChordNode::HandlePong(const Tuple& t) {
  if (t.size() < 3) {
    return;
  }
  ping_strikes_.erase(t.field(1).AsAddr());
}

void BaselineChordNode::AddSuccessor(const Peer& p) {
  for (const Peer& s : succs_) {
    if (s.addr == p.addr) {
      return;
    }
  }
  succs_.push_back(p);
  std::sort(succs_.begin(), succs_.end(), [this](const Peer& a, const Peer& b) {
    return (a.id - id_ - Uint160(1)) < (b.id - id_ - Uint160(1));
  });
  if (succs_.size() > static_cast<size_t>(config_.max_successors)) {
    succs_.resize(config_.max_successors);
  }
}

void BaselineChordNode::RemovePeer(const std::string& peer_addr) {
  succs_.erase(std::remove_if(succs_.begin(), succs_.end(),
                              [&](const Peer& s) { return s.addr == peer_addr; }),
               succs_.end());
  if (pred_.has_value() && pred_->addr == peer_addr) {
    pred_.reset();
  }
  for (auto& f : fingers_) {
    if (f.has_value() && f->addr == peer_addr) {
      f.reset();
    }
  }
  ping_strikes_.erase(peer_addr);
}

std::optional<BaselineChordNode::Peer> BaselineChordNode::ClosestPreceding(
    const Uint160& key) const {
  std::optional<Peer> best;
  auto consider = [&](const Peer& p) {
    if (p.addr == addr_ || !p.id.InOO(id_, key)) {
      return;
    }
    if (!best.has_value() ||
        (key - p.id - Uint160(1)) < (key - best->id - Uint160(1))) {
      best = p;
    }
  };
  for (const auto& f : fingers_) {
    if (f.has_value()) {
      consider(*f);
    }
  }
  for (const Peer& s : succs_) {
    consider(s);
  }
  return best;
}

void BaselineChordNode::DoJoin() {
  if (!succs_.empty()) {
    return;
  }
  if (landmark_provider_) {
    std::string fresh = landmark_provider_();
    if (!fresh.empty() && fresh != addr_) {
      landmark_ = fresh;
    }
  }
  if (landmark_.empty() || landmark_ == "-") {
    return;
  }
  Uint160 event = rng_.NextId();
  fix_pending_[event.Low64()] = -1;  // join marker
  Send(landmark_, Tuple::Make("blookup", {Av(landmark_), Iv(id_), Av(addr_), Iv(event)}));
}

void BaselineChordNode::DoStabilize() {
  if (succs_.empty()) {
    return;
  }
  // Note: stabilizing with ourselves is intentional, not an error. A fresh
  // ring's founder has itself as successor; asking itself for its
  // predecessor (set by the first joiner's notify) and adopting it via the
  // degenerate interval (n, n) is how the founder leaves the self-ring.
  Send(succs_.front().addr,
       Tuple::Make("bstabReq", {Av(succs_.front().addr), Av(addr_)}));
}

void BaselineChordNode::DoFixFinger() {
  if (succs_.empty()) {
    return;
  }
  int index = next_finger_;
  next_finger_ = (next_finger_ + 1) % config_.num_fingers;
  Uint160 target = id_ + (Uint160(1) << static_cast<unsigned>(index));
  Uint160 event = rng_.NextId();
  fix_pending_[event.Low64()] = index;
  Send(addr_, Tuple::Make("blookup", {Av(addr_), Iv(target), Av(addr_), Iv(event)}));
}

void BaselineChordNode::DoPing() {
  auto ping = [&](const std::string& peer) {
    if (peer == addr_) {
      return;
    }
    int strikes = ++ping_strikes_[peer];
    if (strikes > config_.ping_strikes) {
      RemovePeer(peer);
      return;
    }
    Send(peer, Tuple::Make("bping", {Av(peer), Av(addr_), Iv(rng_.NextId())}));
  };
  std::vector<std::string> peers;
  for (const Peer& s : succs_) {
    peers.push_back(s.addr);
  }
  if (pred_.has_value()) {
    peers.push_back(pred_->addr);
  }
  for (const std::string& p : peers) {
    ping(p);
  }
}

Uint160 BaselineChordNode::Lookup(const Uint160& key) {
  Uint160 event = rng_.NextId();
  RetryLookup(key, event);
  return event;
}

void BaselineChordNode::RetryLookup(const Uint160& key, const Uint160& event) {
  Send(addr_, Tuple::Make("blookup", {Av(addr_), Iv(key), Av(addr_), Iv(event)}));
}

std::optional<std::pair<Uint160, std::string>> BaselineChordNode::BestSuccessor() const {
  if (succs_.empty()) {
    return std::nullopt;
  }
  return std::make_pair(succs_.front().id, succs_.front().addr);
}

std::vector<std::pair<Uint160, std::string>> BaselineChordNode::Successors() const {
  std::vector<std::pair<Uint160, std::string>> out;
  for (const Peer& s : succs_) {
    out.emplace_back(s.id, s.addr);
  }
  return out;
}

std::optional<std::pair<Uint160, std::string>> BaselineChordNode::Predecessor() const {
  if (!pred_.has_value()) {
    return std::nullopt;
  }
  return std::make_pair(pred_->id, pred_->addr);
}

}  // namespace p2
