#include "src/harness/churn.h"

namespace p2 {

void ChurnDriver::Start() {
  for (size_t i = 0; i < target_->churn_slots(); ++i) {
    ScheduleDeath(i);
  }
}

void ChurnDriver::ScheduleDeath(size_t slot) {
  double lifetime = rng_.NextExponential(config_.session_mean_s);
  target_->churn_executor()->ScheduleAfter(lifetime, [this, slot]() {
    if (target_->ChurnReplace(slot)) {
      ++deaths_;
    }
    ScheduleDeath(slot);
  });
}

}  // namespace p2
