#include "src/harness/churn.h"

namespace p2 {

void ChurnDriver::Start() {
  for (size_t i = 0; i < testbed_->num_slots(); ++i) {
    ScheduleDeath(i);
  }
}

void ChurnDriver::ScheduleDeath(size_t slot) {
  double lifetime = rng_.NextExponential(config_.session_mean_s);
  testbed_->loop()->ScheduleAfter(lifetime, [this, slot]() {
    if (testbed_->ReplaceNode(slot)) {
      ++deaths_;
    }
    ScheduleDeath(slot);
  });
}

}  // namespace p2
