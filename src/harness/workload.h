// ChordTestbed: the simulated Emulab deployment (§5).
//
// Builds N Chord participants (declarative P2 Chord or the hand-coded
// baseline) on the transit-stub topology, staggers their joins, issues
// uniform lookup workloads, and measures what the paper's evaluation
// measures: hop counts, lookup latency, lookup consistency against a live
// ground truth, and per-node maintenance bandwidth.
//
// The testbed runs on a ShardedSim: with config.shards > 1 the fleet is
// partitioned across share-nothing shard threads (one event loop, timer
// wheel and RNG lane per shard) under conservative time-window
// synchronization, and a fixed seed produces the same per-node event
// sequences at any shard count. Fleet-level actions — staggered joins,
// churn replacement, bootstrap-snapshot refresh — run as control-timeline
// tasks on the coordinator thread while shards are parked; measurement
// hooks that fire on shard threads (lookup completions, hop counting)
// write only per-shard state that is merged on the coordinator when read.
#ifndef P2_HARNESS_WORKLOAD_H_
#define P2_HARNESS_WORKLOAD_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baseline/chord_baseline.h"
#include "src/harness/churn.h"
#include "src/harness/faults.h"
#include "src/net/stack/reliable_channel.h"
#include "src/obs/channel_stats.h"
#include "src/overlays/chord.h"
#include "src/sim/network.h"
#include "src/sim/shard.h"

namespace p2 {

struct TestbedConfig {
  size_t num_nodes = 100;
  uint64_t seed = 42;
  bool use_baseline = false;  // false: P2 OverLog Chord; true: hand-coded
  // Requested simulator worker threads (1 = single-threaded). With more
  // than one, the engine runs one share-nothing shard per topology domain
  // and min(shards, domains) workers execute them; a domain is never
  // split across shards.
  size_t shards = 1;
  // Work stealing: re-assign whole shards to workers at window barriers,
  // balancing the completed window's per-shard event counts. Results are
  // bit-for-bit identical either way (the plan is pure virtual-time
  // state); off pins the static shard = id-mod-workers map.
  bool steal = true;
  ChordConfig chord;
  BaselineChordConfig baseline;
  TopologyConfig topology;
  double loss_rate = 0;          // probability any datagram is dropped
  double join_stagger_s = 0.25;  // delay between consecutive joins
  double lookup_timeout_s = 20.0;
  // Workload-level lookup retries (standard DHT-evaluation methodology:
  // re-issue unanswered lookups until the timeout). 0 disables.
  double lookup_retry_s = 4.0;
  int lookup_max_retries = 4;
  // Cadence of the control-timeline refresh of the bootstrap snapshot the
  // per-node landmark providers draw from.
  double bootstrap_refresh_s = 5.0;
  // Layer a ReliableChannel (ACK/retry, RTT estimation, AIMD congestion
  // control) between every node and its SimTransport.
  bool reliable = false;
  ReliableConfig reliable_config;
  // Planner configuration for every P2 node the testbed builds (ignored by
  // the baseline). `counting` toggles support-counted retractions;
  // `replan_interval_s` > 0 enables the adaptive join-order loop.
  PlannerMode planner = PlannerMode::kSemiNaive;
  bool counting = true;
  double replan_interval_s = 0;
  // Observability (all optional). The registry/trace need one lane per
  // shard plus the coordinator — with shards > 1 that is
  // topology.num_domains + 1 lanes, else 2; watches and the sysstats
  // period are passed through to every P2 node the testbed builds.
  obs::Registry* metrics = nullptr;
  obs::TraceLog* trace = nullptr;
  std::vector<std::string> watches;
  double sysstats_period_s = 0;
  // Fault plan evaluated on the fabric's send path (asymmetric loss,
  // partitions, spikes, corruption), at node construction (slow-node
  // dilation, byzantine responder rules) and — for the timed windows — via
  // ArmFaults() once the ring has settled.
  FaultPlan faults;
};

class ChordTestbed : public ChurnTarget {
 public:
  struct LookupRecord {
    Uint160 key;
    Uint160 event;
    std::string origin;   // issuing node's address
    size_t origin_slot = 0;
    double issued_at = 0;
    bool completed = false;
    double latency_s = 0;
    int hops = 0;
    int retries = 0;
    bool consistent = false;
    std::string result_addr;
  };

  explicit ChordTestbed(TestbedConfig config);
  ~ChordTestbed();

  // Creates all nodes with staggered joins, then runs the simulation until
  // `settle_deadline_s` of virtual time has elapsed.
  void BuildAndSettle(double settle_deadline_s);

  void RunFor(double seconds);
  // Fixes the fault plan's time base at the current virtual time and
  // schedules its partition/spike transitions on the control timeline.
  // Call once, after settle, so "--partition 10:30:0" means "10s into
  // measurement"; no-op without a fault plan.
  void ArmFaults();
  // Non-null when config.faults was non-empty.
  FaultInjector* faults() { return injector_.get(); }
  ShardedSim* engine() { return &engine_; }
  double Now() const { return engine_.Now(); }
  // Events executed across every shard (plus control tasks).
  uint64_t EventsRun() const { return engine_.events_run(); }

  // Issues one lookup for a uniformly random key from a random live node.
  void IssueRandomLookup();
  // Lookup history with hop counts finalized (merged across shards).
  // Coordinator thread only, between runs.
  const std::vector<LookupRecord>& lookups();
  // Drops lookup history (e.g. after warm-up).
  void ClearLookups();

  // The live node whose identifier is the clockwise successor of `key`
  // (ground truth for consistency checking).
  std::string GroundTruthSuccessor(const Uint160& key) const;

  // Fraction of live nodes whose best successor matches ground truth.
  double RingConsistencyFraction() const;
  // Fraction of live nodes with at least one successor (joined).
  double JoinedFraction() const;

  size_t num_live() const { return live_count_; }
  // Sum of maintenance / lookup bytes sent by live nodes.
  uint64_t TotalMaintBytesOut() const;
  uint64_t TotalLookupBytesOut() const;
  // Mean approximate working set of live P2 nodes (bytes); 0 for baseline.
  double MeanNodeMemoryBytes() const;
  // Mean number of resolved finger-table rows per live P2 node (0 for the
  // baseline flavor; used by the finger-fixing ablation).
  double MeanFingerRows() const;

  // Summed reliable-transport counters across live and churned-out nodes;
  // all-zero when config.reliable is off.
  ReliableChannelStats TotalReliableStats() const;

  // Per-slot state snapshots for the shard-determinism harness: the best
  // successor address (empty if none) and datagrams delivered to the
  // slot's current endpoint, indexed by slot.
  std::vector<std::string> BestSuccessorByNode();
  std::vector<uint64_t> DeliveredByNode() const;

  // --- Churn support ---
  // Kills the node in `slot` (transport unregistered; peers see silence)
  // and immediately replaces it with a fresh node that joins through a
  // random live landmark. Returns false if the slot was the only live node.
  bool ReplaceNode(size_t slot);
  size_t num_slots() const { return slots_.size(); }
  uint64_t KilledBytesMaint() const { return dead_maint_bytes_; }

  // ChurnTarget implementation (the generic ChurnDriver interface). Churn
  // runs on the control timeline: replacements mutate cross-shard state,
  // so they execute at window barriers with every shard parked.
  Executor* churn_executor() override { return engine_.control(); }
  size_t churn_slots() const override { return slots_.size(); }
  bool ChurnReplace(size_t slot) override { return ReplaceNode(slot); }

 private:
  struct Slot {
    std::string addr;
    Uint160 id;
    size_t topo_index = 0;
    size_t shard = 0;
    std::unique_ptr<Rng> boot_rng;  // landmark-provider stream (shard thread)
    // Slow-node timer dilation. Declared before (so destroyed after) the
    // channel and nodes, which hold it as their executor; kept across churn
    // replacements so the slot stays slow for life.
    std::unique_ptr<DilatedExecutor> dilated;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;  // only when config.reliable
    std::unique_ptr<ChordNode> p2;
    std::unique_ptr<BaselineChordNode> baseline;
    bool alive = false;
  };

  void MakeNode(size_t slot, const std::string& landmark);
  void HookMeasurement(size_t slot);
  void ScheduleLookupRetry(size_t record_index);
  // Landmark re-resolution for join retries. Runs on the caller's shard
  // thread: draws from the slot's own RNG stream over the bootstrap
  // snapshot (refreshed only at control barriers), so it is both race-free
  // and shard-count-invariant.
  std::string SnapshotBootstrap(size_t slot);
  // Control timeline: re-scans which live nodes have joined the ring.
  void RefreshJoinedSnapshot();
  void ScheduleBootstrapRefresh();
  void OnLookupResult(size_t shard, const Uint160& key, const std::string& result_addr,
                      const Uint160& event);
  std::string NextAddr();

  TestbedConfig config_;
  ShardedSim engine_;
  SimNetwork network_;
  std::unique_ptr<FaultInjector> injector_;  // non-null iff config.faults.any()
  // Per-shard p2_lookup_wrong_total handles (byzantine detection metric);
  // empty without a registry.
  std::vector<obs::Counter*> wrong_lookup_;
  Rng rng_;
  Rng boot_seed_rng_;  // seeds per-slot landmark-provider streams
  std::vector<Slot> slots_;
  size_t live_count_ = 0;
  uint64_t addr_counter_ = 0;
  uint64_t dead_maint_bytes_ = 0;
  uint64_t dead_lookup_bytes_ = 0;
  // Fleet reliable-channel aggregation (retired channels + live source).
  obs::ChannelStatsPool channel_pool_;
  bool refresh_scheduled_ = false;

  // Bootstrap snapshot: written by control tasks at barriers, read by
  // landmark providers on shard threads.
  std::vector<std::string> snap_joined_;
  std::vector<std::string> snap_live_;

  std::vector<LookupRecord> lookups_;
  bool hops_finalized_ = true;
  // Per-shard measurement lanes: each map is written only by its shard's
  // thread (hooks) or by the coordinator while shards are parked.
  // event id low64 -> record index (issued from a node on that shard).
  std::vector<std::unordered_map<uint64_t, size_t>> pending_;
  // event id low64 -> virtual times the lookup tuple arrived at nodes on
  // that shard. Arrival *times* (not bare counts) so the merge can
  // reproduce the single-loop semantics exactly: a record's hop count is
  // the number of arrivals at or before its completion, which freezes the
  // figure against straggling retry copies that keep hopping afterwards.
  std::vector<std::unordered_map<uint64_t, std::vector<double>>> hop_arrivals_;
};

}  // namespace p2

#endif  // P2_HARNESS_WORKLOAD_H_
