// ChordTestbed: the simulated Emulab deployment (§5).
//
// Builds N Chord participants (declarative P2 Chord or the hand-coded
// baseline) on the transit-stub topology, staggers their joins, issues
// uniform lookup workloads, and measures what the paper's evaluation
// measures: hop counts, lookup latency, lookup consistency against a live
// ground truth, and per-node maintenance bandwidth.
#ifndef P2_HARNESS_WORKLOAD_H_
#define P2_HARNESS_WORKLOAD_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baseline/chord_baseline.h"
#include "src/harness/churn.h"
#include "src/net/stack/reliable_channel.h"
#include "src/overlays/chord.h"
#include "src/sim/network.h"

namespace p2 {

struct TestbedConfig {
  size_t num_nodes = 100;
  uint64_t seed = 42;
  bool use_baseline = false;  // false: P2 OverLog Chord; true: hand-coded
  ChordConfig chord;
  BaselineChordConfig baseline;
  TopologyConfig topology;
  double loss_rate = 0;          // probability any datagram is dropped
  double join_stagger_s = 0.25;  // delay between consecutive joins
  double lookup_timeout_s = 20.0;
  // Workload-level lookup retries (standard DHT-evaluation methodology:
  // re-issue unanswered lookups until the timeout). 0 disables.
  double lookup_retry_s = 4.0;
  int lookup_max_retries = 4;
  // Layer a ReliableChannel (ACK/retry, RTT estimation, AIMD congestion
  // control) between every node and its SimTransport.
  bool reliable = false;
  ReliableConfig reliable_config;
};

class ChordTestbed : public ChurnTarget {
 public:
  struct LookupRecord {
    Uint160 key;
    Uint160 event;
    std::string origin;  // issuing node's address
    double issued_at = 0;
    bool completed = false;
    double latency_s = 0;
    int hops = 0;
    int retries = 0;
    bool consistent = false;
    std::string result_addr;
  };

  explicit ChordTestbed(TestbedConfig config);
  ~ChordTestbed();

  // Creates all nodes with staggered joins, then runs the simulation until
  // `settle_deadline_s` of virtual time has elapsed.
  void BuildAndSettle(double settle_deadline_s);

  void RunFor(double seconds);
  SimEventLoop* loop() { return &loop_; }
  double Now() const { return loop_.Now(); }

  // Issues one lookup for a uniformly random key from a random live node.
  void IssueRandomLookup();
  const std::vector<LookupRecord>& lookups() const { return lookups_; }
  // Drops lookup history (e.g. after warm-up).
  void ClearLookups() { lookups_.clear(); }

  // The live node whose identifier is the clockwise successor of `key`
  // (ground truth for consistency checking).
  std::string GroundTruthSuccessor(const Uint160& key) const;

  // Fraction of live nodes whose best successor matches ground truth.
  double RingConsistencyFraction() const;
  // Fraction of live nodes with at least one successor (joined).
  double JoinedFraction() const;

  size_t num_live() const { return live_count_; }
  // Sum of maintenance / lookup bytes sent by live nodes.
  uint64_t TotalMaintBytesOut() const;
  uint64_t TotalLookupBytesOut() const;
  // Mean approximate working set of live P2 nodes (bytes); 0 for baseline.
  double MeanNodeMemoryBytes() const;
  // Mean number of resolved finger-table rows per live P2 node (0 for the
  // baseline flavor; used by the finger-fixing ablation).
  double MeanFingerRows() const;

  // Summed reliable-transport counters across live and churned-out nodes;
  // all-zero when config.reliable is off.
  ReliableChannelStats TotalReliableStats() const;

  // --- Churn support ---
  // Kills the node in `slot` (transport unregistered; peers see silence)
  // and immediately replaces it with a fresh node that joins through a
  // random live landmark. Returns false if the slot was the only live node.
  bool ReplaceNode(size_t slot);
  size_t num_slots() const { return slots_.size(); }
  uint64_t KilledBytesMaint() const { return dead_maint_bytes_; }

  // ChurnTarget implementation (the generic ChurnDriver interface).
  Executor* churn_executor() override { return &loop_; }
  size_t churn_slots() const override { return slots_.size(); }
  bool ChurnReplace(size_t slot) override { return ReplaceNode(slot); }

 private:
  struct Slot {
    std::string addr;
    Uint160 id;
    size_t topo_index = 0;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;  // only when config.reliable
    std::unique_ptr<ChordNode> p2;
    std::unique_ptr<BaselineChordNode> baseline;
    bool alive = false;
  };

  void MakeNode(size_t slot, const std::string& landmark);
  void HookMeasurement(size_t slot);
  void ScheduleLookupRetry(size_t record_index);
  // A random live, preferably already-joined node other than `exclude`
  // (bootstrap re-resolution for join retries).
  std::string RandomBootstrap(const std::string& exclude);
  void OnLookupResult(const Uint160& key, const std::string& result_addr,
                      const Uint160& event);
  std::string NextAddr();

  TestbedConfig config_;
  SimEventLoop loop_;
  SimNetwork network_;
  Rng rng_;
  std::vector<Slot> slots_;
  size_t live_count_ = 0;
  uint64_t addr_counter_ = 0;
  uint64_t dead_maint_bytes_ = 0;
  uint64_t dead_lookup_bytes_ = 0;
  ReliableChannelStats dead_reliable_stats_;

  std::vector<LookupRecord> lookups_;
  std::unordered_map<uint64_t, size_t> pending_;  // event id low64 -> index
  std::unordered_map<uint64_t, int> hop_counts_;  // event id low64 -> arrivals
};

}  // namespace p2

#endif  // P2_HARNESS_WORKLOAD_H_
