// Composable fault injection for the scenario harness.
//
// A FaultPlan describes adversity beyond uniform i.i.d. loss: one-way loss
// between domain pairs, partitions that form and heal at scheduled virtual
// times, per-domain latency spikes, slow nodes (a per-node dilation factor
// on every timer delay), random byte corruption upstream of the wire
// parsers, and a byzantine fraction of chord responders. The FaultInjector
// evaluates the plan on the simulator's send path.
//
// Determinism contract (the same one SimNetwork documents): every random
// decision draws from the *sender's* per-endpoint RNG stream, and every
// timed decision is a pure function of the sender shard's virtual clock —
// so a fixed seed yields identical per-node event sequences at any
// --shards count. Timed windows are half-open [start, start+duration): a
// datagram sent at exactly the heal instant is delivered. Partition and
// spike transitions are additionally scheduled on the shard coordinator's
// control timeline (every shard parked) for logging and the
// p2_fault_partition_active gauge, so the timeline of the run and the
// timeline of the fault plan cannot drift apart.
#ifndef P2_HARNESS_FAULTS_H_
#define P2_HARNESS_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/runtime/executor.h"
#include "src/runtime/random.h"

namespace p2 {

// One-way loss: datagrams from src_domain to dst_domain drop with `rate`;
// the reverse direction is untouched. Flag syntax "SRC:DST:RATE".
struct AsymLossRule {
  size_t src_domain = 0;
  size_t dst_domain = 0;
  double rate = 0;
};

// Full cut between `domains` and the rest of the topology (both
// directions) for virtual time [start, start+duration), then heals.
// Traffic within the group, and within the complement, is untouched.
// Flag syntax "START:DUR:DOMAINS" where DOMAINS is e.g. "0", "0-4", "0,3,7".
struct PartitionSpec {
  double start = 0;
  double duration = 0;
  std::vector<size_t> domains;

  bool Contains(size_t domain) const;
};

// Latency multiplier on any datagram to or from `domain` during
// [start, start+duration). Factor >= 1 so the sharded simulator's
// conservative cross-domain window stays valid. Flag syntax
// "START:DUR:DOMAIN:FACTOR".
struct LatencySpikeSpec {
  double start = 0;
  double duration = 0;
  size_t domain = 0;
  double factor = 1;
};

struct FaultPlan {
  std::vector<AsymLossRule> asym_loss;
  std::vector<PartitionSpec> partitions;
  std::vector<LatencySpikeSpec> latency_spikes;
  // Each node slot is slow with probability slow_fraction (deterministic
  // per-slot hash); a slow node's timer delays are multiplied by
  // slow_factor (>= 1). Flag syntax "FRAC:FACTOR".
  double slow_fraction = 0;
  double slow_factor = 1;
  // Probability any datagram gets 1-3 random byte flips before delivery.
  double corrupt_rate = 0;
  // Fraction of chord nodes compiled with the byzantine responder rule
  // (they answer every lookup they see with themselves as successor).
  double byzantine_fraction = 0;

  bool any() const;
  // True when the plan has time-scheduled windows (partitions / spikes)
  // that need Arm() to fix their time base.
  bool timed() const { return !partitions.empty() || !latency_spikes.empty(); }
  // Latest transition instant (relative to the arm base): the virtual time
  // by which every partition has healed and every spike has passed.
  double LastTransitionS() const;
};

// Flag-string parsers; false (with untouched *out) on malformed specs.
bool ParseAsymLossSpec(const std::string& spec, AsymLossRule* out);
bool ParsePartitionSpec(const std::string& spec, PartitionSpec* out);
bool ParseLatencySpikeSpec(const std::string& spec, LatencySpikeSpec* out);
// "FRAC:FACTOR", FRAC in [0,1], FACTOR >= 1.
bool ParseSlowNodesSpec(const std::string& spec, double* fraction, double* factor);

// Evaluates a FaultPlan on the simulator send path. Thread contract
// matches SimNetwork: BindObs/Arm run on the coordinator with shards
// parked; DropOnSend/MaybeCorrupt/LatencyFactor run on the sender's shard
// thread and touch only that shard's counter lane and the sender's RNG.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, uint64_t seed);

  // Creates per-lane fault counters (lane = sender shard; the last lane
  // belongs to the coordinator). Null registry keeps counting off.
  void BindObs(obs::Registry* registry);

  // Fixes the time base for the plan's timed windows: a partition with
  // start=10 forms at virtual time base+10. Until Arm() runs, partitions
  // and spikes are inactive (untimed axes — asymmetric loss, corruption —
  // are live from the first send). The chord testbed arms after settle so
  // partition schedules are relative to measurement start.
  void Arm(double base_time);
  bool armed() const { return armed_; }
  double base_time() const { return base_time_; }

  // Schedules a one-shot control-timeline task at every partition/spike
  // transition after the arm base: logs the transition and maintains the
  // p2_fault_partition_active gauge. Call after Arm().
  void ScheduleTransitions(Executor* control);

  // True => drop the datagram (asymmetric loss, then partitions). RNG is
  // drawn once per matching asymmetric rule, never for partitions, so the
  // sender's stream consumption is a pure function of its own sends.
  bool DropOnSend(double now, size_t src_domain, size_t dst_domain, size_t lane,
                  Rng* rng);

  // With probability corrupt_rate, flips 1-3 random bytes of `bytes` in
  // place and classifies the damage: p2_corrupt_dropped_total counts
  // corrupted datagrams the bounds-checked wire parsers will reject,
  // p2_corrupt_passed_total those that still parse (garbage field values —
  // the receiver's type checks are their last line of defense).
  void MaybeCorrupt(double now, size_t lane, Rng* rng, std::vector<uint8_t>* bytes);

  // Product of the factors of every spike active at `now` that touches
  // either endpoint's domain (>= 1).
  double LatencyFactor(double now, size_t src_domain, size_t dst_domain, size_t lane);

  // True when any partition window is active at `now`.
  bool PartitionActive(double now) const;
  // True when an active partition puts the two domains on opposite sides.
  bool PartitionSevers(double now, size_t domain_a, size_t domain_b) const;

  // Deterministic per-slot selections: a pure hash of (seed, slot), so the
  // same slots are picked at any shard count and across revivals.
  bool IsSlowNode(size_t slot) const;
  bool IsByzantineNode(size_t slot) const;
  size_t CountByzantine(size_t num_slots) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  uint64_t seed_;
  bool armed_ = false;
  double base_time_ = 0;
  obs::Gauge* partition_gauge_ = nullptr;  // coordinator lane
  // Per-lane counter handles (empty until BindObs with a registry).
  std::vector<obs::Counter*> asym_dropped_;
  std::vector<obs::Counter*> partition_dropped_;
  std::vector<obs::Counter*> spike_delayed_;
  std::vector<obs::Counter*> corrupt_injected_;
  std::vector<obs::Counter*> corrupt_dropped_;
  std::vector<obs::Counter*> corrupt_passed_;
};

// Executor decorator for slow nodes: every ScheduleAfter delay is
// multiplied by `factor`, dilating the node's virtual time (timers,
// retransmits, periodics) without touching its shard affinity.
class DilatedExecutor : public Executor {
 public:
  DilatedExecutor(Executor* inner, double factor) : inner_(inner), factor_(factor) {}

  double Now() const override { return inner_->Now(); }
  size_t shard_index() const override { return inner_->shard_index(); }
  TimerId ScheduleAfter(double delay, Task task) override {
    return inner_->ScheduleAfter(delay * factor_, std::move(task));
  }
  void Cancel(TimerId id) override { inner_->Cancel(id); }

  double factor() const { return factor_; }

 private:
  Executor* inner_;
  double factor_;
};

// OverLog rule appended to a byzantine chord node's program: it answers
// every lookup it sees — its own finger fixes included — with itself as
// the successor, racing the honest L1-L3 chain. The node still runs the
// full maintenance program, so the attack corrupts answers (and, through
// eager finger rules, other nodes' fingers) rather than its own liveness.
std::string ByzantineChordRules();

}  // namespace p2

#endif  // P2_HARNESS_FAULTS_H_
