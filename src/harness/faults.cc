#include "src/harness/faults.h"

#include <algorithm>
#include <cstdlib>

#include "src/net/stack/frame.h"
#include "src/net/wire.h"
#include "src/runtime/logging.h"

namespace p2 {

namespace {

// splitmix64 finalizer: per-slot selection must be a pure hash, not a
// stream, so slot k's fate is independent of how many slots exist.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool HashSelect(uint64_t seed, uint64_t salt, size_t slot, double fraction) {
  if (fraction <= 0) {
    return false;
  }
  if (fraction >= 1) {
    return true;
  }
  uint64_t h = Mix64(seed ^ salt ^ (static_cast<uint64_t>(slot) + 1) * 0xD6E8FEB86659FD93ULL);
  return static_cast<double>(h) / 18446744073709551616.0 < fraction;
}

// Splits "a:b:c" on ':'. Returns false when the field count mismatches.
bool SplitColon(const std::string& spec, size_t want, std::vector<std::string>* out) {
  out->clear();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t colon = spec.find(':', start);
    size_t end = colon == std::string::npos ? spec.size() : colon;
    out->push_back(spec.substr(start, end - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }
  return out->size() == want;
}

bool ParseNonNegDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDomainIndex(const std::string& s, size_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < 0 || v > 4096) {
    return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

// Domain set: comma list of indices or inclusive ranges, e.g. "0-2,5".
bool ParseDomainSet(const std::string& s, std::vector<size_t>* out) {
  out->clear();
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    size_t end = comma == std::string::npos ? s.size() : comma;
    std::string item = s.substr(start, end - start);
    size_t dash = item.find('-');
    if (dash == std::string::npos) {
      size_t d;
      if (!ParseDomainIndex(item, &d)) {
        return false;
      }
      out->push_back(d);
    } else {
      size_t lo, hi;
      if (!ParseDomainIndex(item.substr(0, dash), &lo) ||
          !ParseDomainIndex(item.substr(dash + 1), &hi) || hi < lo) {
        return false;
      }
      for (size_t d = lo; d <= hi; ++d) {
        out->push_back(d);
      }
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return !out->empty();
}

// Does the (possibly corrupted) datagram still survive the receive-side
// parse chain? Mirrors P2Node::OnPacket / ReliableChannel: 0xD5 frames go
// through the strict stack decoder (and their DATA payload through the
// tuple unframer); everything else is parsed as a plain framed tuple.
bool StillParses(const std::vector<uint8_t>& bytes) {
  if (LooksLikeStackFrame(bytes)) {
    std::optional<StackFrame> f = DecodeStackFrame(bytes);
    if (!f.has_value()) {
      return false;
    }
    if (!f->has_data) {
      return true;  // pure ACK: header fields damaged but well-formed
    }
    return UnframeTuple(f->payload).has_value();
  }
  return UnframeTuple(bytes).has_value();
}

}  // namespace

bool PartitionSpec::Contains(size_t domain) const {
  return std::find(domains.begin(), domains.end(), domain) != domains.end();
}

bool FaultPlan::any() const {
  return !asym_loss.empty() || !partitions.empty() || !latency_spikes.empty() ||
         (slow_fraction > 0 && slow_factor > 1) || corrupt_rate > 0 ||
         byzantine_fraction > 0;
}

double FaultPlan::LastTransitionS() const {
  double last = 0;
  for (const PartitionSpec& p : partitions) {
    last = std::max(last, p.start + p.duration);
  }
  for (const LatencySpikeSpec& s : latency_spikes) {
    last = std::max(last, s.start + s.duration);
  }
  return last;
}

bool ParseAsymLossSpec(const std::string& spec, AsymLossRule* out) {
  std::vector<std::string> f;
  AsymLossRule r;
  if (!SplitColon(spec, 3, &f) || !ParseDomainIndex(f[0], &r.src_domain) ||
      !ParseDomainIndex(f[1], &r.dst_domain) || !ParseNonNegDouble(f[2], &r.rate) ||
      r.rate > 1) {
    return false;
  }
  *out = r;
  return true;
}

bool ParsePartitionSpec(const std::string& spec, PartitionSpec* out) {
  std::vector<std::string> f;
  PartitionSpec p;
  if (!SplitColon(spec, 3, &f) || !ParseNonNegDouble(f[0], &p.start) ||
      !ParseNonNegDouble(f[1], &p.duration) || p.duration <= 0 ||
      !ParseDomainSet(f[2], &p.domains)) {
    return false;
  }
  *out = p;
  return true;
}

bool ParseLatencySpikeSpec(const std::string& spec, LatencySpikeSpec* out) {
  std::vector<std::string> f;
  LatencySpikeSpec s;
  if (!SplitColon(spec, 4, &f) || !ParseNonNegDouble(f[0], &s.start) ||
      !ParseNonNegDouble(f[1], &s.duration) || s.duration <= 0 ||
      !ParseDomainIndex(f[2], &s.domain) || !ParseNonNegDouble(f[3], &s.factor) ||
      s.factor < 1) {
    return false;
  }
  *out = s;
  return true;
}

bool ParseSlowNodesSpec(const std::string& spec, double* fraction, double* factor) {
  std::vector<std::string> f;
  double frac, fac;
  if (!SplitColon(spec, 2, &f) || !ParseNonNegDouble(f[0], &frac) || frac > 1 ||
      !ParseNonNegDouble(f[1], &fac) || fac < 1) {
    return false;
  }
  *fraction = frac;
  *factor = fac;
  return true;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

void FaultInjector::BindObs(obs::Registry* registry) {
  if (registry == nullptr) {
    return;
  }
  size_t lanes = registry->lanes();
  for (size_t lane = 0; lane < lanes; ++lane) {
    asym_dropped_.push_back(registry->GetCounter(lane, "p2_fault_asym_dropped_total"));
    partition_dropped_.push_back(
        registry->GetCounter(lane, "p2_fault_partition_dropped_total"));
    spike_delayed_.push_back(registry->GetCounter(lane, "p2_fault_spike_delayed_total"));
    corrupt_injected_.push_back(registry->GetCounter(lane, "p2_corrupt_injected_total"));
    corrupt_dropped_.push_back(registry->GetCounter(lane, "p2_corrupt_dropped_total"));
    corrupt_passed_.push_back(registry->GetCounter(lane, "p2_corrupt_passed_total"));
  }
  partition_gauge_ = registry->GetGauge(lanes - 1, "p2_fault_partition_active");
}

void FaultInjector::Arm(double base_time) {
  armed_ = true;
  base_time_ = base_time;
}

void FaultInjector::ScheduleTransitions(Executor* control) {
  if (!armed_ || control == nullptr) {
    return;
  }
  for (const PartitionSpec& p : plan_.partitions) {
    control->ScheduleAfter(p.start, [this, p]() {
      P2_LOG(LogLevel::kInfo, "fault: partition of %zu domain(s) formed (heals in %.1fs)",
             p.domains.size(), p.duration);
      if (partition_gauge_ != nullptr) {
        partition_gauge_->Add(1);
      }
    });
    control->ScheduleAfter(p.start + p.duration, [this]() {
      P2_LOG(LogLevel::kInfo, "fault: partition healed");
      if (partition_gauge_ != nullptr) {
        partition_gauge_->Add(-1);
      }
    });
  }
  for (const LatencySpikeSpec& s : plan_.latency_spikes) {
    control->ScheduleAfter(s.start, [s]() {
      P2_LOG(LogLevel::kInfo, "fault: latency spike x%.1f on domain %zu for %.1fs",
             s.factor, s.domain, s.duration);
    });
  }
}

bool FaultInjector::PartitionActive(double now) const {
  if (!armed_) {
    return false;
  }
  double t = now - base_time_;
  for (const PartitionSpec& p : plan_.partitions) {
    if (t >= p.start && t < p.start + p.duration) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::PartitionSevers(double now, size_t domain_a, size_t domain_b) const {
  if (!armed_) {
    return false;
  }
  double t = now - base_time_;
  for (const PartitionSpec& p : plan_.partitions) {
    if (t >= p.start && t < p.start + p.duration &&
        p.Contains(domain_a) != p.Contains(domain_b)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::DropOnSend(double now, size_t src_domain, size_t dst_domain,
                               size_t lane, Rng* rng) {
  // Asymmetric loss first: the coin flip happens for every matching rule
  // regardless of the partition state, so the sender's RNG consumption
  // never depends on the (time-deterministic) partition windows.
  bool drop = false;
  for (const AsymLossRule& r : plan_.asym_loss) {
    if (r.src_domain == src_domain && r.dst_domain == dst_domain &&
        rng->CoinFlip(r.rate)) {
      drop = true;
    }
  }
  if (drop) {
    if (lane < asym_dropped_.size()) {
      asym_dropped_[lane]->Inc();
    }
    return true;
  }
  if (PartitionSevers(now, src_domain, dst_domain)) {
    if (lane < partition_dropped_.size()) {
      partition_dropped_[lane]->Inc();
    }
    return true;
  }
  return false;
}

void FaultInjector::MaybeCorrupt(double now, size_t lane, Rng* rng,
                                 std::vector<uint8_t>* bytes) {
  (void)now;
  if (plan_.corrupt_rate <= 0 || bytes->empty() || !rng->CoinFlip(plan_.corrupt_rate)) {
    return;
  }
  size_t flips = 1 + static_cast<size_t>(rng->NextBelow(3));
  for (size_t i = 0; i < flips; ++i) {
    size_t pos = static_cast<size_t>(rng->NextBelow(bytes->size()));
    uint8_t bit = static_cast<uint8_t>(1u << rng->NextBelow(8));
    (*bytes)[pos] ^= bit;
  }
  if (lane < corrupt_injected_.size()) {
    corrupt_injected_[lane]->Inc();
    if (StillParses(*bytes)) {
      corrupt_passed_[lane]->Inc();
    } else {
      corrupt_dropped_[lane]->Inc();
    }
  }
}

double FaultInjector::LatencyFactor(double now, size_t src_domain, size_t dst_domain,
                                    size_t lane) {
  if (!armed_ || plan_.latency_spikes.empty()) {
    return 1.0;
  }
  double t = now - base_time_;
  double factor = 1.0;
  for (const LatencySpikeSpec& s : plan_.latency_spikes) {
    if (t >= s.start && t < s.start + s.duration &&
        (s.domain == src_domain || s.domain == dst_domain)) {
      factor *= s.factor;
    }
  }
  if (factor > 1.0 && lane < spike_delayed_.size()) {
    spike_delayed_[lane]->Inc();
  }
  return factor;
}

bool FaultInjector::IsSlowNode(size_t slot) const {
  return plan_.slow_factor > 1 &&
         HashSelect(seed_, /*salt=*/0x510BULL, slot, plan_.slow_fraction);
}

bool FaultInjector::IsByzantineNode(size_t slot) const {
  return HashSelect(seed_, /*salt=*/0xBAD0ULL, slot, plan_.byzantine_fraction);
}

size_t FaultInjector::CountByzantine(size_t num_slots) const {
  size_t n = 0;
  for (size_t i = 0; i < num_slots; ++i) {
    n += IsByzantineNode(i) ? 1 : 0;
  }
  return n;
}

std::string ByzantineChordRules() {
  // Shape-matches L1 minus the ownership check: the node claims every key.
  return "BYZ1 lookupResults@R(R,K,N,NI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E).\n";
}

}  // namespace p2
