#include "src/harness/workload.h"

#include <algorithm>

#include "src/runtime/logging.h"

namespace p2 {

ChordTestbed::ChordTestbed(TestbedConfig config)
    : config_(config),
      engine_(config.shards),
      network_(&engine_, Topology(config.topology), config.seed ^ 0x5EED),
      rng_(config.seed),
      boot_seed_rng_(config.seed ^ 0xB007) {
  engine_.SetStealing(config.steal);
  network_.set_loss_rate(config.loss_rate);
  if (config.faults.any()) {
    injector_ = std::make_unique<FaultInjector>(config.faults, config.seed ^ 0xFA17ULL);
    network_.SetFaults(injector_.get());
    injector_->BindObs(config.metrics);
  }
  pending_.resize(engine_.num_shards());
  hop_arrivals_.resize(engine_.num_shards());
  if (config.metrics != nullptr) {
    for (size_t s = 0; s < engine_.num_shards(); ++s) {
      wrong_lookup_.push_back(config.metrics->GetCounter(s, "p2_lookup_wrong_total"));
    }
  }
  engine_.SetObs(config.metrics, config.trace);
  channel_pool_.SetLiveSource(
      [this](ReliableChannelStats* total) {
        for (const Slot& s : slots_) {
          if (s.alive && s.channel != nullptr) {
            total->MergeFrom(s.channel->Stats());
          }
        }
      },
      nullptr);
  if (config.metrics != nullptr) {
    config.metrics->AddCollector(
        [this](obs::Snapshot* snap) { channel_pool_.Collect(snap); });
  }
}

ChordTestbed::~ChordTestbed() {
  // Nodes reference channels which reference transports; destroy outermost
  // layers first, slot by slot. (engine_ outlives slots_ by member order,
  // so timer cancellation during teardown still has its wheels.)
  for (Slot& s : slots_) {
    s.p2.reset();
    s.baseline.reset();
    s.channel.reset();
    s.transport.reset();
  }
}

std::string ChordTestbed::NextAddr() { return "n" + std::to_string(addr_counter_++); }

void ChordTestbed::MakeNode(size_t slot, const std::string& landmark) {
  Slot& s = slots_[slot];
  s.addr = NextAddr();
  s.id = Uint160::HashOf(s.addr);
  s.shard = network_.ShardOf(s.topo_index);
  // Drawn from a separate stream so the node-seed sequence rng_ produces is
  // unchanged by the bootstrap machinery (keeps seeded experiments stable).
  s.boot_rng = std::make_unique<Rng>(boot_seed_rng_.NextU64());
  s.transport = network_.MakeTransport(s.addr, s.topo_index);
  Executor* executor = engine_.shard(s.shard);
  if (injector_ != nullptr && injector_->IsSlowNode(slot)) {
    // The wrapper survives churn replacements, so a slow slot's replacement
    // inherits the same dilation (the hash picks slots, not incarnations).
    if (s.dilated == nullptr) {
      s.dilated = std::make_unique<DilatedExecutor>(executor, config_.faults.slow_factor);
    }
    executor = s.dilated.get();
  }
  Transport* endpoint = s.transport.get();
  if (config_.reliable) {
    s.channel = std::make_unique<ReliableChannel>(s.transport.get(), executor,
                                                  config_.reliable_config,
                                                  rng_.NextU64());
    endpoint = s.channel.get();
  }
  if (config_.use_baseline) {
    s.baseline = std::make_unique<BaselineChordNode>(executor, endpoint,
                                                     rng_.NextU64(), config_.baseline,
                                                     landmark);
  } else {
    P2NodeConfig nc;
    nc.addr = s.addr;
    nc.executor = executor;
    nc.transport = endpoint;
    nc.seed = rng_.NextU64();
    nc.metrics = config_.metrics;
    nc.watches = config_.watches;
    nc.sysstats_period_s = config_.sysstats_period_s;
    nc.planner_mode = config_.planner;
    nc.counting = config_.counting;
    nc.replan_interval_s = config_.replan_interval_s;
    std::string extra;
    if (injector_ != nullptr && injector_->IsByzantineNode(slot)) {
      extra = ByzantineChordRules();
    }
    s.p2 = std::make_unique<ChordNode>(nc, config_.chord, landmark, extra);
  }
  s.alive = true;
  ++live_count_;
  // Join retries call the provider from the node's shard thread; it reads
  // only the barrier-refreshed snapshot and the slot's private stream.
  auto provider = [this, slot]() { return SnapshotBootstrap(slot); };
  if (config_.use_baseline) {
    s.baseline->SetLandmarkProvider(provider);
  } else {
    s.p2->SetLandmarkProvider(provider);
  }
  snap_live_.push_back(s.addr);
  HookMeasurement(slot);
}

std::string ChordTestbed::SnapshotBootstrap(size_t slot) {
  const std::string& self = slots_[slot].addr;
  Rng* rng = slots_[slot].boot_rng.get();
  auto pick = [&](const std::vector<std::string>& pool) -> std::string {
    if (pool.empty()) {
      return "";
    }
    size_t start = static_cast<size_t>(rng->NextBelow(pool.size()));
    for (size_t k = 0; k < pool.size(); ++k) {
      const std::string& candidate = pool[(start + k) % pool.size()];
      if (candidate != self) {
        return candidate;
      }
    }
    return "";
  };
  std::string chosen = pick(snap_joined_);
  if (chosen.empty()) {
    chosen = pick(snap_live_);
  }
  return chosen;
}

void ChordTestbed::RefreshJoinedSnapshot() {
  snap_joined_.clear();
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    bool has_succ = config_.use_baseline ? !s.baseline->Successors().empty()
                                         : !s.p2->Successors().empty();
    if (has_succ) {
      snap_joined_.push_back(s.addr);
    }
  }
}

void ChordTestbed::ScheduleBootstrapRefresh() {
  engine_.control()->ScheduleAfter(config_.bootstrap_refresh_s, [this]() {
    RefreshJoinedSnapshot();
    ScheduleBootstrapRefresh();
  });
}

void ChordTestbed::HookMeasurement(size_t slot) {
  Slot& s = slots_[slot];
  size_t shard = s.shard;
  auto on_result = [this, shard](const Uint160& key, const std::string& addr,
                                 const Uint160& ev) {
    OnLookupResult(shard, key, addr, ev);
  };
  if (config_.use_baseline) {
    s.baseline->OnLookupResult([on_result](const BaselineChordNode::LookupResult& r) {
      on_result(r.key, r.successor_addr, r.event_id);
    });
    s.baseline->OnLookupSeen([this, shard](const Uint160& event) {
      hop_arrivals_[shard][event.Low64()].push_back(engine_.shard(shard)->Now());
    });
  } else {
    s.p2->OnLookupResult([on_result](const ChordNode::LookupResult& r) {
      on_result(r.key, r.successor_addr, r.event_id);
    });
    s.p2->node()->Subscribe("lookup", [this, shard](const TuplePtr& t) {
      if (t->size() >= 4 && t->field(3).type() == ValueType::kId) {
        hop_arrivals_[shard][t->field(3).AsId().Low64()].push_back(
            engine_.shard(shard)->Now());
      }
    });
  }
}

void ChordTestbed::BuildAndSettle(double settle_deadline_s) {
  slots_.resize(config_.num_nodes);
  for (size_t i = 0; i < config_.num_nodes; ++i) {
    slots_[i].topo_index = i;
  }
  // The first node forms the ring; the rest join through it, staggered.
  // Joins create nodes and mutate fleet-wide state, so they run as control
  // tasks: at window barriers, on the coordinator thread.
  MakeNode(0, "");
  if (config_.use_baseline) {
    slots_[0].baseline->Start();
  } else {
    slots_[0].p2->Start();
  }
  const std::string landmark = slots_[0].addr;
  for (size_t i = 1; i < config_.num_nodes; ++i) {
    double at = config_.join_stagger_s * static_cast<double>(i);
    engine_.control()->ScheduleAfter(at, [this, i, landmark]() {
      MakeNode(i, landmark);
      if (config_.use_baseline) {
        slots_[i].baseline->Start();
      } else {
        slots_[i].p2->Start();
      }
    });
  }
  if (!refresh_scheduled_) {
    refresh_scheduled_ = true;
    ScheduleBootstrapRefresh();
  }
  RunFor(settle_deadline_s);
}

void ChordTestbed::RunFor(double seconds) { engine_.RunFor(seconds); }

void ChordTestbed::ArmFaults() {
  if (injector_ == nullptr) {
    return;
  }
  injector_->Arm(engine_.Now());
  injector_->ScheduleTransitions(engine_.control());
}

void ChordTestbed::IssueRandomLookup() {
  // Pick a random live node.
  std::vector<size_t> live;
  live.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    return;
  }
  size_t slot = live[rng_.NextBelow(live.size())];
  Uint160 key = rng_.NextId();
  Uint160 event;
  if (config_.use_baseline) {
    event = slots_[slot].baseline->Lookup(key);
  } else {
    event = slots_[slot].p2->Lookup(key);
  }
  LookupRecord rec;
  rec.key = key;
  rec.event = event;
  rec.origin = slots_[slot].addr;
  rec.origin_slot = slot;
  rec.issued_at = engine_.Now();
  pending_[slots_[slot].shard][event.Low64()] = lookups_.size();
  lookups_.push_back(rec);
  hops_finalized_ = false;
  if (config_.lookup_retry_s > 0 && config_.lookup_max_retries > 0) {
    ScheduleLookupRetry(lookups_.size() - 1);
  }
}

void ChordTestbed::ScheduleLookupRetry(size_t record_index) {
  // The retry fires on the issuing node's shard: it touches only that
  // record, that node, and slot fields that change at barriers alone.
  size_t slot = lookups_[record_index].origin_slot;
  engine_.shard(slots_[slot].shard)->ScheduleAfter(config_.lookup_retry_s, [this,
                                                                            record_index,
                                                                            slot]() {
    LookupRecord& rec = lookups_[record_index];
    if (rec.completed || rec.retries >= config_.lookup_max_retries) {
      return;
    }
    // Re-issue from the original node if it is still alive (a dead issuer
    // could never receive the answer anyway; a churn replacement reuses the
    // slot but not the address).
    Slot& s = slots_[slot];
    if (!s.alive || s.addr != rec.origin) {
      return;
    }
    ++rec.retries;
    if (config_.use_baseline) {
      s.baseline->RetryLookup(rec.key, rec.event);
    } else {
      s.p2->node()->Inject(Tuple::Make(
          "lookup", {Value::Addr(s.addr), Value::Id(rec.key), Value::Addr(s.addr),
                     Value::Id(rec.event)}));
    }
    ScheduleLookupRetry(record_index);
  });
}

void ChordTestbed::OnLookupResult(size_t shard, const Uint160& key,
                                  const std::string& result_addr, const Uint160& event) {
  auto& pending = pending_[shard];
  auto it = pending.find(event.Low64());
  if (it == pending.end()) {
    return;  // finger-fix or join lookup, not workload
  }
  LookupRecord& rec = lookups_[it->second];
  pending.erase(it);
  if (rec.completed) {
    return;
  }
  rec.completed = true;
  rec.latency_s = engine_.shard(shard)->Now() - rec.issued_at;
  rec.result_addr = result_addr;
  rec.consistent = result_addr == GroundTruthSuccessor(key);
  if (!rec.consistent && shard < wrong_lookup_.size()) {
    wrong_lookup_[shard]->Inc();
  }
}

const std::vector<ChordTestbed::LookupRecord>& ChordTestbed::lookups() {
  if (!hops_finalized_) {
    // Merge the per-shard arrival logs: a lookup hops through nodes on
    // many shards, each of which logged the arrivals it saw. Only
    // arrivals at or before the record's completion count — a retry copy
    // still hopping after the answer landed never did in the single-loop
    // harness either.
    for (LookupRecord& rec : lookups_) {
      if (!rec.completed) {
        continue;  // rec.hops stays 0, as before
      }
      double completed_at = rec.issued_at + rec.latency_s;
      int total = 0;
      uint64_t key = rec.event.Low64();
      for (const auto& arrivals : hop_arrivals_) {
        auto it = arrivals.find(key);
        if (it == arrivals.end()) {
          continue;
        }
        for (double at : it->second) {
          total += at <= completed_at ? 1 : 0;
        }
      }
      // The first arrival is the injection at the requester itself.
      rec.hops = std::max(0, total - 1);
    }
    hops_finalized_ = true;
  }
  return lookups_;
}

void ChordTestbed::ClearLookups() {
  lookups_.clear();
  for (auto& p : pending_) {
    p.clear();
  }
  for (auto& h : hop_arrivals_) {
    h.clear();
  }
  hops_finalized_ = true;
}

std::string ChordTestbed::GroundTruthSuccessor(const Uint160& key) const {
  const Slot* best = nullptr;
  Uint160 best_dist;
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    Uint160 dist = s.id - key;  // clockwise distance; 0 when id == key
    if (best == nullptr || dist < best_dist) {
      best = &s;
      best_dist = dist;
    }
  }
  return best == nullptr ? "" : best->addr;
}

double ChordTestbed::RingConsistencyFraction() const {
  size_t ok = 0;
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    ++n;
    std::optional<std::pair<Uint160, std::string>> best =
        config_.use_baseline ? s.baseline->BestSuccessor() : s.p2->BestSuccessor();
    if (!best.has_value()) {
      continue;
    }
    if (best->second == GroundTruthSuccessor(s.id + Uint160(1))) {
      ++ok;
    }
  }
  return n == 0 ? 0 : static_cast<double>(ok) / static_cast<double>(n);
}

double ChordTestbed::JoinedFraction() const {
  size_t joined = 0;
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    ++n;
    bool has = config_.use_baseline ? !s.baseline->Successors().empty()
                                    : !s.p2->Successors().empty();
    if (has) {
      ++joined;
    }
  }
  return n == 0 ? 0 : static_cast<double>(joined) / static_cast<double>(n);
}

uint64_t ChordTestbed::TotalMaintBytesOut() const {
  uint64_t total = dead_maint_bytes_;
  for (const Slot& s : slots_) {
    if (s.alive) {
      total += s.transport->stats().maint_bytes_out;
    }
  }
  return total;
}

uint64_t ChordTestbed::TotalLookupBytesOut() const {
  uint64_t total = dead_lookup_bytes_;
  for (const Slot& s : slots_) {
    if (s.alive) {
      total += s.transport->stats().lookup_bytes_out;
    }
  }
  return total;
}

double ChordTestbed::MeanNodeMemoryBytes() const {
  if (config_.use_baseline) {
    return 0;
  }
  double total = 0;
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.alive && s.p2 != nullptr) {
      total += static_cast<double>(s.p2->node()->ApproxMemoryBytes());
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

double ChordTestbed::MeanFingerRows() const {
  if (config_.use_baseline) {
    return 0;
  }
  double total = 0;
  size_t live = 0;
  for (const Slot& s : slots_) {
    if (s.alive && s.p2 != nullptr) {
      total += static_cast<double>(s.p2->Fingers().size());
      ++live;
    }
  }
  return live == 0 ? 0 : total / static_cast<double>(live);
}

ReliableChannelStats ChordTestbed::TotalReliableStats() const {
  return channel_pool_.TotalReliable();
}

std::vector<std::string> ChordTestbed::BestSuccessorByNode() {
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    if (!s.alive) {
      out.push_back("");
      continue;
    }
    std::optional<std::pair<Uint160, std::string>> best =
        config_.use_baseline ? s.baseline->BestSuccessor() : s.p2->BestSuccessor();
    out.push_back(best.has_value() ? best->second : "");
  }
  return out;
}

std::vector<uint64_t> ChordTestbed::DeliveredByNode() const {
  std::vector<uint64_t> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    out.push_back(s.alive ? s.transport->stats().msgs_in : 0);
  }
  return out;
}

bool ChordTestbed::ReplaceNode(size_t slot) {
  if (live_count_ <= 1 || slot >= slots_.size() || !slots_[slot].alive) {
    return false;
  }
  Slot& s = slots_[slot];
  // Account the dead node's traffic so cumulative totals stay monotone.
  dead_maint_bytes_ += s.transport->stats().maint_bytes_out;
  dead_lookup_bytes_ += s.transport->stats().lookup_bytes_out;
  if (s.channel != nullptr) {
    channel_pool_.Retire(s.channel->Stats());
  }
  s.p2.reset();
  s.baseline.reset();
  s.channel.reset();
  s.transport.reset();
  s.alive = false;
  --live_count_;
  // Prune the dead address from the bootstrap snapshots so join retries
  // stop resolving to it before the next periodic refresh.
  auto prune = [](std::vector<std::string>* v, const std::string& addr) {
    v->erase(std::remove(v->begin(), v->end(), addr), v->end());
  };
  prune(&snap_live_, s.addr);
  prune(&snap_joined_, s.addr);
  // Pick a random live landmark for the replacement.
  std::vector<size_t> live;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) {
      live.push_back(i);
    }
  }
  const std::string landmark = slots_[live[rng_.NextBelow(live.size())]].addr;
  MakeNode(slot, landmark);
  if (config_.use_baseline) {
    s.baseline->Start();
  } else {
    s.p2->Start();
  }
  return true;
}

}  // namespace p2
