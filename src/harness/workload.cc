#include "src/harness/workload.h"

#include "src/runtime/logging.h"

namespace p2 {

ChordTestbed::ChordTestbed(TestbedConfig config)
    : config_(config),
      network_(&loop_, Topology(config.topology), config.seed ^ 0x5EED),
      rng_(config.seed) {
  network_.set_loss_rate(config.loss_rate);
}

ChordTestbed::~ChordTestbed() {
  // Nodes reference channels which reference transports; destroy outermost
  // layers first, slot by slot.
  for (Slot& s : slots_) {
    s.p2.reset();
    s.baseline.reset();
    s.channel.reset();
    s.transport.reset();
  }
}

std::string ChordTestbed::NextAddr() { return "n" + std::to_string(addr_counter_++); }

void ChordTestbed::MakeNode(size_t slot, const std::string& landmark) {
  Slot& s = slots_[slot];
  s.addr = NextAddr();
  s.id = Uint160::HashOf(s.addr);
  s.transport = network_.MakeTransport(s.addr, s.topo_index);
  Transport* endpoint = s.transport.get();
  if (config_.reliable) {
    s.channel = std::make_unique<ReliableChannel>(s.transport.get(), &loop_,
                                                  config_.reliable_config,
                                                  rng_.NextU64());
    endpoint = s.channel.get();
  }
  if (config_.use_baseline) {
    s.baseline = std::make_unique<BaselineChordNode>(&loop_, endpoint,
                                                     rng_.NextU64(), config_.baseline,
                                                     landmark);
  } else {
    P2NodeConfig nc;
    nc.addr = s.addr;
    nc.executor = &loop_;
    nc.transport = endpoint;
    nc.seed = rng_.NextU64();
    s.p2 = std::make_unique<ChordNode>(nc, config_.chord, landmark);
  }
  s.alive = true;
  ++live_count_;
  std::string self = s.addr;
  auto provider = [this, self]() { return RandomBootstrap(self); };
  if (config_.use_baseline) {
    s.baseline->SetLandmarkProvider(provider);
  } else {
    s.p2->SetLandmarkProvider(provider);
  }
  HookMeasurement(slot);
}

std::string ChordTestbed::RandomBootstrap(const std::string& exclude) {
  std::vector<size_t> joined;
  std::vector<size_t> live;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.alive || s.addr == exclude) {
      continue;
    }
    live.push_back(i);
    bool has_succ = config_.use_baseline ? !s.baseline->Successors().empty()
                                         : !s.p2->Successors().empty();
    if (has_succ) {
      joined.push_back(i);
    }
  }
  const std::vector<size_t>& pool = joined.empty() ? live : joined;
  if (pool.empty()) {
    return "";
  }
  return slots_[pool[rng_.NextBelow(pool.size())]].addr;
}

void ChordTestbed::HookMeasurement(size_t slot) {
  Slot& s = slots_[slot];
  auto on_result = [this](const Uint160& key, const std::string& addr, const Uint160& ev) {
    OnLookupResult(key, addr, ev);
  };
  if (config_.use_baseline) {
    s.baseline->OnLookupResult([on_result](const BaselineChordNode::LookupResult& r) {
      on_result(r.key, r.successor_addr, r.event_id);
    });
    s.baseline->OnLookupSeen(
        [this](const Uint160& event) { hop_counts_[event.Low64()] += 1; });
  } else {
    s.p2->OnLookupResult([on_result](const ChordNode::LookupResult& r) {
      on_result(r.key, r.successor_addr, r.event_id);
    });
    s.p2->node()->Subscribe("lookup", [this](const TuplePtr& t) {
      if (t->size() >= 4 && t->field(3).type() == ValueType::kId) {
        hop_counts_[t->field(3).AsId().Low64()] += 1;
      }
    });
  }
}

void ChordTestbed::BuildAndSettle(double settle_deadline_s) {
  slots_.resize(config_.num_nodes);
  for (size_t i = 0; i < config_.num_nodes; ++i) {
    slots_[i].topo_index = i;
  }
  // The first node forms the ring; the rest join through it, staggered.
  MakeNode(0, "");
  if (config_.use_baseline) {
    slots_[0].baseline->Start();
  } else {
    slots_[0].p2->Start();
  }
  const std::string landmark = slots_[0].addr;
  for (size_t i = 1; i < config_.num_nodes; ++i) {
    double at = config_.join_stagger_s * static_cast<double>(i);
    loop_.ScheduleAfter(at, [this, i, landmark]() {
      MakeNode(i, landmark);
      if (config_.use_baseline) {
        slots_[i].baseline->Start();
      } else {
        slots_[i].p2->Start();
      }
    });
  }
  RunFor(settle_deadline_s);
}

void ChordTestbed::RunFor(double seconds) { loop_.RunUntil(loop_.Now() + seconds); }

void ChordTestbed::IssueRandomLookup() {
  // Pick a random live node.
  std::vector<size_t> live;
  live.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) {
      live.push_back(i);
    }
  }
  if (live.empty()) {
    return;
  }
  size_t slot = live[rng_.NextBelow(live.size())];
  Uint160 key = rng_.NextId();
  Uint160 event;
  if (config_.use_baseline) {
    event = slots_[slot].baseline->Lookup(key);
  } else {
    event = slots_[slot].p2->Lookup(key);
  }
  LookupRecord rec;
  rec.key = key;
  rec.event = event;
  rec.origin = slots_[slot].addr;
  rec.issued_at = loop_.Now();
  pending_[event.Low64()] = lookups_.size();
  lookups_.push_back(rec);
  if (config_.lookup_retry_s > 0 && config_.lookup_max_retries > 0) {
    ScheduleLookupRetry(lookups_.size() - 1);
  }
}

void ChordTestbed::ScheduleLookupRetry(size_t record_index) {
  loop_.ScheduleAfter(config_.lookup_retry_s, [this, record_index]() {
    LookupRecord& rec = lookups_[record_index];
    if (rec.completed || rec.retries >= config_.lookup_max_retries) {
      return;
    }
    // Re-issue from the original node if it is still alive (a dead issuer
    // could never receive the answer anyway).
    for (Slot& s : slots_) {
      if (!s.alive || s.addr != rec.origin) {
        continue;
      }
      ++rec.retries;
      if (config_.use_baseline) {
        s.baseline->RetryLookup(rec.key, rec.event);
      } else {
        s.p2->node()->Inject(Tuple::Make(
            "lookup", {Value::Addr(s.addr), Value::Id(rec.key), Value::Addr(s.addr),
                       Value::Id(rec.event)}));
      }
      ScheduleLookupRetry(record_index);
      return;
    }
  });
}

void ChordTestbed::OnLookupResult(const Uint160& key, const std::string& result_addr,
                                  const Uint160& event) {
  auto it = pending_.find(event.Low64());
  if (it == pending_.end()) {
    return;  // finger-fix or join lookup, not workload
  }
  LookupRecord& rec = lookups_[it->second];
  pending_.erase(it);
  if (rec.completed) {
    return;
  }
  rec.completed = true;
  rec.latency_s = loop_.Now() - rec.issued_at;
  rec.result_addr = result_addr;
  auto hops = hop_counts_.find(event.Low64());
  // The first arrival is the injection at the requester itself.
  rec.hops = hops == hop_counts_.end() ? 0 : std::max(0, hops->second - 1);
  rec.consistent = result_addr == GroundTruthSuccessor(key);
  (void)key;
}

std::string ChordTestbed::GroundTruthSuccessor(const Uint160& key) const {
  const Slot* best = nullptr;
  Uint160 best_dist;
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    Uint160 dist = s.id - key;  // clockwise distance; 0 when id == key
    if (best == nullptr || dist < best_dist) {
      best = &s;
      best_dist = dist;
    }
  }
  return best == nullptr ? "" : best->addr;
}

double ChordTestbed::RingConsistencyFraction() const {
  size_t ok = 0;
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    ++n;
    std::optional<std::pair<Uint160, std::string>> best =
        config_.use_baseline ? s.baseline->BestSuccessor() : s.p2->BestSuccessor();
    if (!best.has_value()) {
      continue;
    }
    if (best->second == GroundTruthSuccessor(s.id + Uint160(1))) {
      ++ok;
    }
  }
  return n == 0 ? 0 : static_cast<double>(ok) / static_cast<double>(n);
}

double ChordTestbed::JoinedFraction() const {
  size_t joined = 0;
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (!s.alive) {
      continue;
    }
    ++n;
    bool has = config_.use_baseline ? !s.baseline->Successors().empty()
                                    : !s.p2->Successors().empty();
    if (has) {
      ++joined;
    }
  }
  return n == 0 ? 0 : static_cast<double>(joined) / static_cast<double>(n);
}

uint64_t ChordTestbed::TotalMaintBytesOut() const {
  uint64_t total = dead_maint_bytes_;
  for (const Slot& s : slots_) {
    if (s.alive) {
      total += s.transport->stats().maint_bytes_out;
    }
  }
  return total;
}

uint64_t ChordTestbed::TotalLookupBytesOut() const {
  uint64_t total = dead_lookup_bytes_;
  for (const Slot& s : slots_) {
    if (s.alive) {
      total += s.transport->stats().lookup_bytes_out;
    }
  }
  return total;
}

double ChordTestbed::MeanNodeMemoryBytes() const {
  if (config_.use_baseline) {
    return 0;
  }
  double total = 0;
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.alive && s.p2 != nullptr) {
      total += static_cast<double>(s.p2->node()->ApproxMemoryBytes());
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

double ChordTestbed::MeanFingerRows() const {
  if (config_.use_baseline) {
    return 0;
  }
  double total = 0;
  size_t live = 0;
  for (const Slot& s : slots_) {
    if (s.alive && s.p2 != nullptr) {
      total += static_cast<double>(s.p2->Fingers().size());
      ++live;
    }
  }
  return live == 0 ? 0 : total / static_cast<double>(live);
}

ReliableChannelStats ChordTestbed::TotalReliableStats() const {
  ReliableChannelStats total = dead_reliable_stats_;
  for (const Slot& s : slots_) {
    if (s.alive && s.channel != nullptr) {
      total.MergeFrom(s.channel->Stats());
    }
  }
  return total;
}

bool ChordTestbed::ReplaceNode(size_t slot) {
  if (live_count_ <= 1 || slot >= slots_.size() || !slots_[slot].alive) {
    return false;
  }
  Slot& s = slots_[slot];
  // Account the dead node's traffic so cumulative totals stay monotone.
  dead_maint_bytes_ += s.transport->stats().maint_bytes_out;
  dead_lookup_bytes_ += s.transport->stats().lookup_bytes_out;
  if (s.channel != nullptr) {
    dead_reliable_stats_.MergeFrom(s.channel->Stats());
  }
  s.p2.reset();
  s.baseline.reset();
  s.channel.reset();
  s.transport.reset();
  s.alive = false;
  --live_count_;
  // Pick a random live landmark for the replacement.
  std::vector<size_t> live;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive) {
      live.push_back(i);
    }
  }
  const std::string landmark = slots_[live[rng_.NextBelow(live.size())]].addr;
  MakeNode(slot, landmark);
  if (config_.use_baseline) {
    s.baseline->Start();
  } else {
    s.p2->Start();
  }
  return true;
}

}  // namespace p2
