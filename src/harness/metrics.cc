#include "src/harness/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace p2 {

void Cdf::Sort() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::Mean() const {
  if (values_.empty()) {
    return 0;
  }
  double s = 0;
  for (double v : values_) {
    s += v;
  }
  return s / static_cast<double>(values_.size());
}

double Cdf::Quantile(double q) const {
  if (values_.empty()) {
    return 0;
  }
  Sort();
  // Clamp q into [0,1]: q < 0 would turn into a huge size_t below and q > 1
  // would index past the end. A single sample is every quantile of itself.
  if (!(q > 0)) {
    return values_.front();
  }
  if (q >= 1) {
    return values_.back();
  }
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1 - frac) + values_[hi] * frac;
}

double Cdf::FractionBelow(double x) const {
  if (values_.empty()) {
    return 0;
  }
  Sort();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Cdf::Points(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || points == 0) {
    return out;
  }
  Sort();
  for (size_t i = 0; i < points; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(points - 1 == 0 ? 1 : points - 1);
    out.emplace_back(Quantile(q), q);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    // Degenerate shapes must not poison Add: zero buckets would divide by
    // zero here and underflow counts_.size()-1 there, and hi <= lo would
    // make every pos NaN or negative. Clamp to one bucket of unit width.
    : lo_(lo),
      width_(hi > lo && buckets > 0 ? (hi - lo) / static_cast<double>(buckets) : 1.0),
      counts_(buckets > 0 ? buckets : 1, 0) {}

void Histogram::Add(double v) {
  double pos = (v - lo_) / width_;
  size_t b;
  if (!(pos >= 0)) {
    b = 0;  // below range — or NaN, which every comparison rejects
  } else if (pos >= static_cast<double>(counts_.size())) {
    b = counts_.size() - 1;  // above range: clamp into the last bucket
  } else {
    b = static_cast<size_t>(pos);
  }
  counts_[b] += 1;
  total_ += 1;
  sum_ += v;
}

std::vector<std::pair<double, double>> Histogram::Frequencies() const {
  std::vector<std::pair<double, double>> out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double freq = total_ == 0 ? 0
                              : static_cast<double>(counts_[i]) / static_cast<double>(total_);
    out.emplace_back(lo_ + width_ * static_cast<double>(i), freq);
  }
  return out;
}

double RateSampler::Sample(double now_s, double cumulative_bytes) {
  if (!primed_) {
    primed_ = true;
    last_t_ = now_s;
    last_v_ = cumulative_bytes;
    return 0;
  }
  double dt = now_s - last_t_;
  double dv = cumulative_bytes - last_v_;
  last_t_ = now_s;
  last_v_ = cumulative_bytes;
  return dt <= 0 ? 0 : dv / dt;
}

void ReliableChannelStats::MergeFrom(const ReliableChannelStats& o) {
  data_frames_sent += o.data_frames_sent;
  retransmits += o.retransmits;
  retransmit_bytes += o.retransmit_bytes;
  timeouts += o.timeouts;
  fast_retransmits += o.fast_retransmits;
  acks_sent += o.acks_sent;
  acks_received += o.acks_received;
  duplicates_received += o.duplicates_received;
  queue_drops += o.queue_drops;
  queue_high_watermark = std::max(queue_high_watermark, o.queue_high_watermark);
  expired += o.expired;
  reorder_drops += o.reorder_drops;
  stream_resets += o.stream_resets;
  rtt_samples += o.rtt_samples;
  srtt_sum_s += o.srtt_sum_s;
  srtt_count += o.srtt_count;
  cwnd_sum += o.cwnd_sum;
  cwnd_count += o.cwnd_count;
}

std::string ReliableChannelStats::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "data %llu retx %llu (timeouts %llu, fast %llu) srtt %.0fms "
                "cwnd %.1f qdrops %llu qmax %llu expired %llu dups %llu "
                "resets %llu",
                static_cast<unsigned long long>(data_frames_sent),
                static_cast<unsigned long long>(retransmits),
                static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(fast_retransmits),
                MeanSrttS() * 1000.0, MeanCwnd(),
                static_cast<unsigned long long>(queue_drops),
                static_cast<unsigned long long>(queue_high_watermark),
                static_cast<unsigned long long>(expired),
                static_cast<unsigned long long>(duplicates_received),
                static_cast<unsigned long long>(stream_resets));
  return buf;
}

std::string FormatRow(const std::vector<std::string>& cells, size_t width) {
  std::string out;
  for (const std::string& c : cells) {
    std::string cell = c;
    if (cell.size() < width) {
      cell.append(width - cell.size(), ' ');
    }
    out += cell;
  }
  return out;
}

}  // namespace p2
