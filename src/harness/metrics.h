// Measurement utilities for the evaluation harness: empirical CDFs,
// bucketed histograms, and windowed bandwidth sampling.
#ifndef P2_HARNESS_METRICS_H_
#define P2_HARNESS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p2 {

// Collects samples and answers distribution queries (Figures 3(iii),
// 4(ii), 4(iii) are CDFs of this kind).
class Cdf {
 public:
  void Add(double v) { values_.push_back(v); }
  size_t count() const { return values_.size(); }
  double Mean() const;
  // q in [0,1]; empty CDF returns 0.
  double Quantile(double q) const;
  // Fraction of samples <= x.
  double FractionBelow(double x) const;
  // `points` evenly spaced (value, cumulative fraction) pairs for printing.
  std::vector<std::pair<double, double>> Points(size_t points) const;

 private:
  void Sort() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

// Fixed-width bucket histogram (Figure 3(i) hop-count frequencies).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);
  void Add(double v);
  size_t total() const { return total_; }
  double Mean() const { return total_ == 0 ? 0 : sum_ / static_cast<double>(total_); }
  // (bucket lower edge, frequency) pairs; frequencies sum to 1.
  std::vector<std::pair<double, double>> Frequencies() const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0;
};

// Differencing sampler for cumulative byte counters: feed absolute totals,
// get per-window rates.
class RateSampler {
 public:
  // Returns bytes/second since the previous sample (0 on the first call).
  double Sample(double now_s, double cumulative_bytes);

 private:
  bool primed_ = false;
  double last_t_ = 0;
  double last_v_ = 0;
};

// Datagram send-failure counters, fed by the UDP transport's ::sendto
// result checking. Failed sends never reach the wire, so they are counted
// here instead of in TrafficStats' bandwidth figures.
// Each instance is written by exactly one endpoint on one event-loop
// thread; fleet-level totals are produced by an explicit MergeFrom pass,
// never by sharing a counter between writers.
struct SendFailureCounters {
  uint64_t oversize = 0;      // EMSGSIZE: datagram too large for the stack
  uint64_t transient = 0;     // EAGAIN/EWOULDBLOCK/ENOBUFS/EINTR/ECONNREFUSED
  uint64_t other = 0;         // unexpected errno values
  uint64_t short_writes = 0;  // kernel accepted fewer bytes than the datagram
  uint64_t total() const { return oversize + transient + other + short_writes; }
  void MergeFrom(const SendFailureCounters& o) {
    oversize += o.oversize;
    transient += o.transient;
    other += o.other;
    short_writes += o.short_writes;
  }
};

// Cumulative counters for one ReliableChannel (src/net/stack/), summed
// over its per-destination state. Mergeable so the harness can aggregate a
// whole fleet (including channels of already-churned-out nodes).
struct ReliableChannelStats {
  uint64_t data_frames_sent = 0;     // first transmissions
  uint64_t retransmits = 0;          // RTO + fast retransmissions
  uint64_t retransmit_bytes = 0;     // payload bytes retransmitted
  uint64_t timeouts = 0;             // RTO expirations
  uint64_t fast_retransmits = 0;     // dup-ACK-triggered resends
  uint64_t acks_sent = 0;            // pure ACK frames (piggybacks excluded)
  uint64_t acks_received = 0;        // frames carrying ack information
  uint64_t duplicates_received = 0;  // already-seen DATA frames
  uint64_t queue_drops = 0;          // bounded send-queue overflow
  uint64_t queue_high_watermark = 0; // max across per-destination queues
  uint64_t expired = 0;              // frames dropped after max_retries
  uint64_t reorder_drops = 0;        // receive reorder window overflow
  uint64_t stream_resets = 0;        // send-stream renumbers (peer restarts)
  uint64_t rtt_samples = 0;
  // Sums over destinations with at least one state update; read them
  // through MeanSrttS/MeanCwnd.
  double srtt_sum_s = 0;
  uint64_t srtt_count = 0;
  double cwnd_sum = 0;
  uint64_t cwnd_count = 0;

  double MeanSrttS() const {
    return srtt_count == 0 ? 0 : srtt_sum_s / static_cast<double>(srtt_count);
  }
  double MeanCwnd() const {
    return cwnd_count == 0 ? 0 : cwnd_sum / static_cast<double>(cwnd_count);
  }
  void MergeFrom(const ReliableChannelStats& o);
  // One-line human-readable rendering for scenario summaries.
  std::string Summary() const;
};

// Renders a fixed-width ASCII table row (benchmark output helper).
std::string FormatRow(const std::vector<std::string>& cells, size_t width = 14);

}  // namespace p2

#endif  // P2_HARNESS_METRICS_H_
