// Churn driver (§5.2), following the Bamboo methodology the paper cites:
// node session times are exponentially distributed around a configured
// mean; when a session ends the node is destroyed and immediately replaced
// by a fresh node, keeping the population constant.
//
// The driver churns anything that exposes kill/replace slots through the
// ChurnTarget interface: the ChordTestbed implements it directly, and the
// scenario layer adapts gossip/narada fleets via FunctionChurnTarget.
#ifndef P2_HARNESS_CHURN_H_
#define P2_HARNESS_CHURN_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/runtime/executor.h"
#include "src/runtime/random.h"

namespace p2 {

// Anything with a fixed set of node slots that can be killed and replaced.
class ChurnTarget {
 public:
  virtual ~ChurnTarget() = default;

  // The loop death events are scheduled on.
  virtual Executor* churn_executor() = 0;
  // Number of churnable slots (population size).
  virtual size_t churn_slots() const = 0;
  // Kills the node in `slot` and replaces it with a fresh one. Returns
  // false if the slot could not be churned (e.g. last live node).
  virtual bool ChurnReplace(size_t slot) = 0;
};

// Adapter for fleets that are not ChurnTargets themselves: the scenario
// runners wrap their node vectors in one of these.
class FunctionChurnTarget : public ChurnTarget {
 public:
  FunctionChurnTarget(Executor* executor, size_t slots,
                      std::function<bool(size_t)> replace)
      : executor_(executor), slots_(slots), replace_(std::move(replace)) {}

  Executor* churn_executor() override { return executor_; }
  size_t churn_slots() const override { return slots_; }
  bool ChurnReplace(size_t slot) override { return replace_(slot); }

 private:
  Executor* executor_;
  size_t slots_;
  std::function<bool(size_t)> replace_;
};

struct ChurnConfig {
  double session_mean_s = 3840;  // 64 minutes
  uint64_t seed = 7;
};

class ChurnDriver {
 public:
  ChurnDriver(ChurnTarget* target, ChurnConfig config)
      : target_(target), config_(config), rng_(config.seed) {}

  // Schedules an exponential death time for every current slot. Replacement
  // nodes get their own death scheduled automatically, so churn continues
  // until the target stops running.
  void Start();

  uint64_t deaths() const { return deaths_; }

 private:
  void ScheduleDeath(size_t slot);

  ChurnTarget* target_;
  ChurnConfig config_;
  Rng rng_;
  uint64_t deaths_ = 0;
};

}  // namespace p2

#endif  // P2_HARNESS_CHURN_H_
