// Churn driver (§5.2), following the Bamboo methodology the paper cites:
// node session times are exponentially distributed around a configured
// mean; when a session ends the node is destroyed and immediately replaced
// by a fresh node joining through a random live landmark, keeping the
// population constant.
#ifndef P2_HARNESS_CHURN_H_
#define P2_HARNESS_CHURN_H_

#include "src/harness/workload.h"

namespace p2 {

struct ChurnConfig {
  double session_mean_s = 3840;  // 64 minutes
  uint64_t seed = 7;
};

class ChurnDriver {
 public:
  ChurnDriver(ChordTestbed* testbed, ChurnConfig config)
      : testbed_(testbed), config_(config), rng_(config.seed) {}

  // Schedules an exponential death time for every current slot. Replacement
  // nodes get their own death scheduled automatically, so churn continues
  // until the testbed stops running.
  void Start();

  uint64_t deaths() const { return deaths_; }

 private:
  void ScheduleDeath(size_t slot);

  ChordTestbed* testbed_;
  ChurnConfig config_;
  Rng rng_;
  uint64_t deaths_ = 0;
};

}  // namespace p2

#endif  // P2_HARNESS_CHURN_H_
