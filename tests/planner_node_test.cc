#include <gtest/gtest.h>

#include "src/net/wire.h"
#include "src/p2/node.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

// Two P2 nodes on a simulated network.
class PlannerNodeTest : public ::testing::Test {
 protected:
  PlannerNodeTest() : net_(&loop_, Topology(TopologyConfig{}), 99) {
    t1_ = net_.MakeTransport("n1", 0);
    t2_ = net_.MakeTransport("n2", 1);
  }

  std::unique_ptr<P2Node> MakeNode(Transport* t, uint64_t seed) {
    P2NodeConfig c;
    c.executor = &loop_;
    c.transport = t;
    c.seed = seed;
    return std::make_unique<P2Node>(c);
  }

  // Installs `program` into a fresh node on transport `t`; aborts test on
  // failure.
  std::unique_ptr<P2Node> Install(Transport* t, const std::string& program, uint64_t seed) {
    auto node = MakeNode(t, seed);
    std::string err;
    EXPECT_TRUE(node->Install(program, &err)) << err;
    return node;
  }

  SimEventLoop loop_;
  SimNetwork net_;
  std::unique_ptr<SimTransport> t1_;
  std::unique_ptr<SimTransport> t2_;
};

TEST_F(PlannerNodeTest, PeriodicRuleEmitsStream) {
  auto n = Install(t1_.get(), "r1 tick@X(X) :- periodic@X(X, E, 1).", 1);
  int ticks = 0;
  n->Subscribe("tick", [&](const TuplePtr& t) {
    EXPECT_EQ(t->field(0).AsAddr(), "n1");
    ++ticks;
  });
  n->Start();
  loop_.RunUntil(5.5);
  EXPECT_GE(ticks, 4);
  EXPECT_LE(ticks, 6);
}

TEST_F(PlannerNodeTest, PeriodicWithCountFiresOnce) {
  auto n = Install(t1_.get(), "s0 boot@X(X) :- periodic@X(X, E, 0, 1).", 1);
  int boots = 0;
  n->Subscribe("boot", [&](const TuplePtr&) { ++boots; });
  n->Start();
  loop_.RunUntil(10.0);
  EXPECT_EQ(boots, 1);
}

TEST_F(PlannerNodeTest, RemoteSendRoundTrip) {
  const std::string program =
      "p1 pong@Y(Y,X) :- ping@X(X,Y).\n"
      "p2 ack@X(X,Y) :- pong@Y(Y,X).\n";
  auto n1 = Install(t1_.get(), program, 1);
  auto n2 = Install(t2_.get(), program, 2);
  int pongs_at_n2 = 0;
  int acks_at_n1 = 0;
  n2->Subscribe("pong", [&](const TuplePtr&) { ++pongs_at_n2; });
  n1->Subscribe("ack", [&](const TuplePtr& t) {
    EXPECT_EQ(t->field(0).AsAddr(), "n1");  // ack(X, Y) with X = original sender
    EXPECT_EQ(t->field(1).AsAddr(), "n2");
    ++acks_at_n1;
  });
  n1->Start();
  n2->Start();
  n1->Inject(Tuple::Make("ping", {Value::Addr("n1"), Value::Addr("n2")}));
  loop_.RunUntil(2.0);
  EXPECT_EQ(pongs_at_n2, 1);
  // p2 at n2 fires on pong and sends ack back to n1... but ack's head
  // locspec X binds from pong's second field = original sender.
  EXPECT_EQ(acks_at_n1, 1);
  EXPECT_GE(n1->stats().tuples_sent, 1u);
  EXPECT_GE(n2->stats().tuples_from_net, 1u);
}

TEST_F(PlannerNodeTest, JoinAgainstTable) {
  const std::string program =
      "materialize(kv, infinity, 100, keys(2)).\n"
      "r out@X(X,V) :- ev@X(X,K), kv@X(X,K,V).\n";
  auto n = Install(t1_.get(), program, 1);
  n->GetTable("kv")->Insert(
      Tuple::Make("kv", {Value::Addr("n1"), Value::Int(1), Value::Str("one")}));
  n->GetTable("kv")->Insert(
      Tuple::Make("kv", {Value::Addr("n1"), Value::Int(2), Value::Str("two")}));
  std::vector<std::string> outs;
  n->Subscribe("out", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsStr()); });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(2)}));
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(9)}));  // no match
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], "two");
}

TEST_F(PlannerNodeTest, ConstantsInEventActAsFilters) {
  auto n = Install(t1_.get(), "r out@X(X) :- ev@X(X, 5).", 1);
  int outs = 0;
  n->Subscribe("out", [&](const TuplePtr&) { ++outs; });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(5)}));
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(6)}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(outs, 1);
}

TEST_F(PlannerNodeTest, RepeatedVariablesInEventUnify) {
  auto n = Install(t1_.get(), "r out@X(X,A) :- ev@X(X,A,A).", 1);
  int outs = 0;
  n->Subscribe("out", [&](const TuplePtr&) { ++outs; });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(1), Value::Int(1)}));
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(1), Value::Int(2)}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(outs, 1);
}

TEST_F(PlannerNodeTest, NegationAsAntiJoin) {
  const std::string program =
      "materialize(seen, infinity, 100, keys(2)).\n"
      "r fresh@X(X,K) :- ev@X(X,K), not seen@X(X,K).\n";
  auto n = Install(t1_.get(), program, 1);
  n->GetTable("seen")->Insert(Tuple::Make("seen", {Value::Addr("n1"), Value::Int(1)}));
  std::vector<int64_t> outs;
  n->Subscribe("fresh", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsInt()); });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(1)}));
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(2)}));
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], 2);
}

TEST_F(PlannerNodeTest, AssignmentsFiltersAndRanges) {
  // Binds K := N + (1 << I) and requires K in (N, S].
  const std::string program =
      "r out@X(X,K) :- ev@X(X,N,S,I), K := N + (1 << I), K in (N,S].\n";
  auto n = Install(t1_.get(), program, 1);
  std::vector<Uint160> outs;
  n->Subscribe("out", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsId()); });
  n->Start();
  // N=100, S=200, I=5 -> K=132, in (100,200]: fires.
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Id(Uint160(100)),
                               Value::Id(Uint160(200)), Value::Int(5)}));
  // I=7 -> K=228, outside: dropped.
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Id(Uint160(100)),
                               Value::Id(Uint160(200)), Value::Int(7)}));
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], Uint160(132));
}

TEST_F(PlannerNodeTest, DeleteRuleRemovesRow) {
  const std::string program =
      "materialize(kv, infinity, 100, keys(2)).\n"
      "d delete kv@X(X,K) :- drop@X(X,K).\n";
  auto n = Install(t1_.get(), program, 1);
  n->GetTable("kv")->Insert(Tuple::Make("kv", {Value::Addr("n1"), Value::Int(1)}));
  n->Start();
  n->Inject(Tuple::Make("drop", {Value::Addr("n1"), Value::Int(1)}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("kv")->size(), 0u);
}

TEST_F(PlannerNodeTest, PerEventMinAggregateSelectsWinner) {
  const std::string program =
      "materialize(dist, infinity, 100, keys(2)).\n"
      "r best@X(X,B,min<D>) :- ev@X(X), dist@X(X,B,D).\n";
  auto n = Install(t1_.get(), program, 1);
  auto row = [](const char* b, int64_t d) {
    return Tuple::Make("dist", {Value::Addr("n1"), Value::Str(b), Value::Int(d)});
  };
  n->GetTable("dist")->Insert(row("b1", 30));
  n->GetTable("dist")->Insert(row("b2", 10));
  n->GetTable("dist")->Insert(row("b3", 20));
  std::vector<TuplePtr> outs;
  n->Subscribe("best", [&](const TuplePtr& t) { outs.push_back(t); });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1")}));
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 1u);  // one aggregate result per event
  EXPECT_EQ(outs[0]->field(1).AsStr(), "b2");  // argmin semantics
  EXPECT_EQ(outs[0]->field(2).AsInt(), 10);
}

TEST_F(PlannerNodeTest, CountEmitsZeroForEmptyMatch) {
  const std::string program =
      "materialize(m, infinity, 100, keys(2)).\n"
      "r found@X(X,K,count<*>) :- ev@X(X,K), m@X(X,K).\n";
  auto n = Install(t1_.get(), program, 1);
  n->GetTable("m")->Insert(Tuple::Make("m", {Value::Addr("n1"), Value::Int(7)}));
  std::vector<std::pair<int64_t, int64_t>> outs;
  n->Subscribe("found", [&](const TuplePtr& t) {
    outs.emplace_back(t->field(1).AsInt(), t->field(2).AsInt());
  });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(7)}));
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(8)}));
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], (std::pair<int64_t, int64_t>(7, 1)));
  EXPECT_EQ(outs[1], (std::pair<int64_t, int64_t>(8, 0)));
}

TEST_F(PlannerNodeTest, TableAggregateWatcher) {
  const std::string program =
      "materialize(dist, infinity, 100, keys(2)).\n"
      "n3 best@X(X,min<D>) :- dist@X(X,S,D).\n";
  auto n = Install(t1_.get(), program, 1);
  std::vector<int64_t> outs;
  n->Subscribe("best", [&](const TuplePtr& t) { outs.push_back(t->field(1).AsInt()); });
  n->Start();
  auto row = [](int64_t s, int64_t d) {
    return Tuple::Make("dist", {Value::Addr("n1"), Value::Int(s), Value::Int(d)});
  };
  n->GetTable("dist")->Insert(row(1, 50));
  n->GetTable("dist")->Insert(row(2, 20));
  n->GetTable("dist")->Insert(row(3, 90));  // min unchanged: no emission
  loop_.RunUntil(1.0);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], 50);
  EXPECT_EQ(outs[1], 20);
}

TEST_F(PlannerNodeTest, MaterializedHeadInsertsAndCascades) {
  const std::string program =
      "materialize(kv, infinity, 100, keys(2)).\n"
      "r1 kv@X(X,K,V) :- ev@X(X,K,V).\n"
      "r2 seen@X(X,K) :- kv@X(X,K,V).\n";  // delta-triggered
  auto n = Install(t1_.get(), program, 1);
  int seen = 0;
  n->Subscribe("seen", [&](const TuplePtr&) { ++seen; });
  n->Start();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(1), Value::Str("v")}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("kv")->size(), 1u);
  EXPECT_EQ(seen, 1);
}

TEST_F(PlannerNodeTest, RemoteMaterializedHeadStoredAtDestination) {
  const std::string program =
      "materialize(kv, infinity, 100, keys(2)).\n"
      "r1 kv@Y(Y,K,V) :- ev@X(X,Y,K,V).\n";
  auto n1 = Install(t1_.get(), program, 1);
  auto n2 = Install(t2_.get(), program, 2);
  n1->Start();
  n2->Start();
  n1->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Addr("n2"), Value::Int(1),
                                Value::Str("v")}));
  loop_.RunUntil(2.0);
  EXPECT_EQ(n1->GetTable("kv")->size(), 0u);
  EXPECT_EQ(n2->GetTable("kv")->size(), 1u);
}

TEST_F(PlannerNodeTest, FactsInstalledAtInstallTime) {
  const std::string program =
      "materialize(nfx, infinity, 1, keys(1)).\n"
      "f0 nfx@NI(NI, 0).\n";
  auto n = Install(t1_.get(), program, 1);
  Table* t = n->GetTable("nfx");
  ASSERT_EQ(t->size(), 1u);
  TuplePtr row = t->Scan()[0];
  EXPECT_EQ(row->field(0).AsAddr(), "n1");
  EXPECT_EQ(row->field(1).AsInt(), 0);
}

TEST_F(PlannerNodeTest, RuleFireCountsTracked) {
  auto n = Install(t1_.get(), "r1 tick@X(X) :- periodic@X(X,E,1).", 1);
  n->Start();
  loop_.RunUntil(4.5);
  auto counts = n->RuleFireCounts();
  ASSERT_TRUE(counts.count("r1") > 0);
  EXPECT_GE(counts["r1"], 3u);
  EXPECT_EQ(n->num_rules(), 1u);
  EXPECT_GT(n->ApproxMemoryBytes(), 0u);
}

TEST_F(PlannerNodeTest, InstallErrors) {
  struct Case {
    const char* program;
    const char* fragment;
  };
  const Case cases[] = {
      {"r h@X(X) :- a@X(X), b@X(X).", "more than one stream"},
      {"r h@X(X,Z) :- ev@X(X).", "unbound"},
      {"r h@X(X) :- ev@X(X), V := f_bogus().", "unknown builtin"},
      {"f0 stream@NI(NI, 0).", "non-materialized"},
      {"materialize(t, infinity, 1, keys(1)).\n"
       "materialize(t, infinity, 1, keys(1)).",
       "declared twice"},
      {"d delete s@X(X) :- ev@X(X).", "non-materialized"},
  };
  for (const Case& c : cases) {
    auto n = MakeNode(t1_.get(), 1);
    std::string err;
    EXPECT_FALSE(n->Install(c.program, &err)) << c.program;
    EXPECT_NE(err.find(c.fragment), std::string::npos)
        << "program: " << c.program << "\nerr: " << err;
  }
}

TEST_F(PlannerNodeTest, LocalizedMultiNodeRuleRunsEndToEnd) {
  // The §2.3 Narada rule R4 pattern: event + tables at X, a negated check
  // and an assignment at Y, head at Y. The localizer splits it into a ship
  // rule and a receive rule; this verifies the pair works over the network.
  const std::string program =
      "materialize(member, infinity, 100, keys(2)).\n"
      "materialize(neighbor, infinity, 100, keys(2)).\n"
      "R4 member@Y(Y, A, S, T) :- refreshSeq@X(X, S), member@X(X, A, _, _), "
      "neighbor@X(X, Y), not member@Y(Y, A, _, _), T := f_now@Y().\n";
  auto n1 = Install(t1_.get(), program, 1);
  auto n2 = Install(t2_.get(), program, 2);
  // n1 knows member "m9" and has n2 as neighbor; n2 does not know "m9".
  n1->GetTable("member")->Insert(Tuple::Make(
      "member", {Value::Addr("n1"), Value::Addr("m9"), Value::Int(3), Value::Double(0)}));
  n1->GetTable("neighbor")->Insert(
      Tuple::Make("neighbor", {Value::Addr("n1"), Value::Addr("n2")}));
  n1->Start();
  n2->Start();
  n1->Inject(Tuple::Make("refreshSeq", {Value::Addr("n1"), Value::Int(7)}));
  loop_.RunUntil(2.0);
  // n2 learned the member, stamped with n2's local clock.
  TuplePtr learned = n2->GetTable("member")->FindByKey({Value::Addr("m9")});
  ASSERT_NE(learned, nullptr);
  EXPECT_EQ(learned->field(2).AsInt(), 7);  // S rides from the refresh event
  EXPECT_GT(learned->field(3).AsDouble(), 0.0);
  // The negation holds on re-derivation: a second refresh does not
  // overwrite n2's now-existing entry (no delta beyond the first).
  double t_first = learned->field(3).AsDouble();
  n1->Inject(Tuple::Make("refreshSeq", {Value::Addr("n1"), Value::Int(8)}));
  loop_.RunUntil(4.0);
  TuplePtr again = n2->GetTable("member")->FindByKey({Value::Addr("m9")});
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->field(3).AsDouble(), t_first);
}

TEST_F(PlannerNodeTest, WatchDirectiveLogsWithoutCrashing) {
  auto n = Install(t1_.get(),
                   "watch(tick).\n"
                   "r1 tick@X(X) :- periodic@X(X,E,1).",
                   1);
  n->Start();
  loop_.RunUntil(3.5);  // watch output goes to the log; nothing to assert
  EXPECT_GE(n->RuleFireCounts()["r1"], 2u);
}

TEST_F(PlannerNodeTest, ArityInferenceRejectsInconsistentUse) {
  auto n = MakeNode(t1_.get(), 1);
  std::string err;
  EXPECT_FALSE(n->Install("materialize(t, infinity, 10, keys(1)).\n"
                          "r1 t@X(X,K) :- ev@X(X,K).\n"
                          "r2 out@X(X) :- t@X(X,K,V).\n",
                          &err));
  EXPECT_NE(err.find("inconsistent arity"), std::string::npos);
}

TEST_F(PlannerNodeTest, WrongArityWireTuplesAreDropped) {
  const std::string program =
      "materialize(kv, infinity, 100, keys(2)).\n"
      "r1 out@X(X,V) :- ev@X(X,K), kv@X(X,K,V).\n";
  auto n = Install(t1_.get(), program, 1);
  n->Start();
  // A short "kv" tuple arriving off the wire must not plant a malformed
  // row (which would crash the join's field indexing later).
  t2_->SendTo("n1", FrameTuple(Tuple("kv", {Value::Addr("n1")})), false);
  // A short "ev" event must be dropped by the rule driver.
  t2_->SendTo("n1", FrameTuple(Tuple("ev", {Value::Addr("n1")})), false);
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->GetTable("kv")->size(), 0u);
  // The node still works.
  n->GetTable("kv")->Insert(
      Tuple::Make("kv", {Value::Addr("n1"), Value::Int(1), Value::Str("v")}));
  int outs = 0;
  n->Subscribe("out", [&](const TuplePtr&) { ++outs; });
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(1)}));
  loop_.RunUntil(2.0);
  EXPECT_EQ(outs, 1);
}

TEST_F(PlannerNodeTest, InjectRoutesByLocationSpecifier) {
  const std::string program = "r1 got@X(X,V) :- msg@X(X,V).\n";
  auto n1 = Install(t1_.get(), program, 1);
  auto n2 = Install(t2_.get(), program, 2);
  int at_n2 = 0;
  n2->Subscribe("got", [&](const TuplePtr&) { ++at_n2; });
  n1->Start();
  n2->Start();
  // Injected at n1 but addressed to n2: ships across the network.
  n1->Inject(Tuple::Make("msg", {Value::Addr("n2"), Value::Int(5)}));
  loop_.RunUntil(1.0);
  EXPECT_EQ(at_n2, 1);
}

TEST_F(PlannerNodeTest, BadPacketsCounted) {
  auto n = Install(t1_.get(), "r1 tick@X(X) :- periodic@X(X,E,1).", 1);
  n->Start();
  t2_->SendTo("n1", {0xDE, 0xAD}, false);
  loop_.RunUntil(1.0);
  EXPECT_EQ(n->stats().bad_packets, 1u);
}

}  // namespace
}  // namespace p2
