#include "src/runtime/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace p2 {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) {
    seen[rng.NextBelow(10)] += 1;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(seen[i], 300) << "bucket " << i;  // ~500 expected
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CoinFlipRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.CoinFlip(0.3)) {
      ++heads;
    }
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
  Rng r2(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r2.CoinFlip(0.0));
  }
}

TEST(Rng, ExponentialHasConfiguredMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextExponential(60.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 60.0, 2.5);
}

TEST(Rng, NextIdFillsAllLimbs) {
  Rng rng(19);
  bool mid_nonzero = false;
  bool hi_nonzero = false;
  for (int i = 0; i < 50; ++i) {
    Uint160 id = rng.NextId();
    mid_nonzero |= id.limbs()[1] != 0;
    hi_nonzero |= id.limbs()[2] != 0;
  }
  EXPECT_TRUE(mid_nonzero);
  EXPECT_TRUE(hi_nonzero);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  Rng b(23);
  Rng child_b = b.Fork();
  // Forks are deterministic...
  EXPECT_EQ(child.NextU64(), child_b.NextU64());
  // ...and differ from the parent stream.
  EXPECT_NE(a.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace p2
