// Golden tests over the bundled Chord OverLog program: structural
// properties of the specification itself and of the plan it compiles to,
// independent of protocol dynamics.
#include <gtest/gtest.h>

#include "src/overlays/chord.h"
#include "src/overlays/narada.h"
#include "src/overlog/localizer.h"
#include "src/overlog/parser.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

ProgramAst ParseChord(const ChordConfig& cfg) {
  ProgramAst ast;
  std::string err;
  EXPECT_TRUE(ParseOverLog(ChordProgramText(cfg), &ast, &err)) << err;
  return ast;
}

TEST(ChordProgram, DeclaresThePaperTables) {
  ProgramAst ast = ParseChord(ChordConfig{});
  const char* expected[] = {"node",      "finger",   "bestSucc",      "succDist",
                            "succ",      "pred",     "succCount",     "join",
                            "landmark",  "fFix",     "nextFingerFix", "pingNode",
                            "pendingPing"};
  for (const char* name : expected) {
    EXPECT_TRUE(ast.IsMaterialized(name)) << name;
  }
  EXPECT_EQ(ast.materializations.size(), 13u);
}

TEST(ChordProgram, KeyRulesPresentWithExpectedShape) {
  ProgramAst ast = ParseChord(ChordConfig{});
  auto find = [&](const std::string& id) -> const RuleAst* {
    for (const RuleAst& r : ast.rules) {
      if (r.id == id) {
        return &r;
      }
    }
    return nullptr;
  };
  // L1: answers lookups via the best successor.
  const RuleAst* l1 = find("L1");
  ASSERT_NE(l1, nullptr);
  EXPECT_EQ(l1->head.name, "lookupResults");
  EXPECT_EQ(l1->head.locspec, "R");  // replies go to the requester
  // L3: forwards through the minimal-distance finger.
  const RuleAst* l3 = find("L3");
  ASSERT_NE(l3, nullptr);
  EXPECT_EQ(l3->head.name, "lookup");
  EXPECT_EQ(l3->head.args[0]->kind, ExprKind::kAgg);
  EXPECT_EQ(l3->head.args[0]->name, "min");
  // S4: successor eviction is a deletion rule.
  const RuleAst* s4 = find("S4");
  ASSERT_NE(s4, nullptr);
  EXPECT_TRUE(s4->delete_head);
  EXPECT_EQ(s4->head.name, "succ");
  // SB0/F0 are facts.
  EXPECT_TRUE(find("SB0")->IsFact());
  EXPECT_TRUE(find("F0")->IsFact());
  // The timer parameters were substituted (no %...% left anywhere).
  EXPECT_EQ(ChordProgramText(ChordConfig{}).find('%'), std::string::npos);
}

TEST(ChordProgram, AllRulesAreCollocated) {
  // The full Chord spec never needs the localizer: every body is
  // single-location (heads may be remote).
  ProgramAst ast = ParseChord(ChordConfig{});
  size_t before = ast.rules.size();
  std::string err;
  ASSERT_TRUE(LocalizeProgram(&ast, &err)) << err;
  EXPECT_EQ(ast.rules.size(), before);  // no rewrites happened
}

TEST(ChordProgram, NaiveFingerVariantParsesAndIsSmaller) {
  ChordConfig eager;
  ChordConfig naive;
  naive.eager_fingers = false;
  EXPECT_LT(ChordRuleCount(naive), ChordRuleCount(eager));
  ProgramAst ast = ParseChord(naive);
  for (const RuleAst& r : ast.rules) {
    EXPECT_NE(r.id, "F9");  // the eager-advance rules are absent
    EXPECT_NE(r.id, "F8");
  }
}

TEST(ChordProgram, NaiveFingerVariantStillFormsARing) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 61);
  ChordConfig cfg;
  cfg.finger_fix_period_s = 1.0;
  cfg.stabilize_period_s = 2.5;
  cfg.ping_period_s = 0.8;
  cfg.succ_lifetime_s = 1.7;
  cfg.eager_fingers = false;
  std::vector<std::unique_ptr<SimTransport>> ts;
  std::vector<std::unique_ptr<ChordNode>> ns;
  for (size_t i = 0; i < 4; ++i) {
    ts.push_back(net.MakeTransport("n" + std::to_string(i), i));
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = ts[i].get();
    nc.seed = 70 + i;
    ns.push_back(std::make_unique<ChordNode>(nc, cfg, i == 0 ? "" : "n0"));
    ns[i]->Start();
    loop.RunUntil(loop.Now() + 2.0);
  }
  loop.RunUntil(60.0);
  for (auto& n : ns) {
    EXPECT_TRUE(n->BestSuccessor().has_value()) << n->addr();
  }
  // Lookups still resolve (successor routing suffices on a small ring).
  bool answered = false;
  ns[1]->OnLookupResult([&](const ChordNode::LookupResult&) { answered = true; });
  ns[1]->Lookup(Uint160::HashOf("k"));
  loop.RunUntil(70.0);
  EXPECT_TRUE(answered);
}

TEST(ChordProgram, CompiledPlanRoutesEveryEvent) {
  // Compile one node and verify the demux has routes for the protocol's
  // wire-visible event names (a misspelled rule would silently drop them).
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 62);
  auto t = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = t.get();
  nc.seed = 1;
  ChordNode node(nc, ChordConfig{}, "");
  std::string dump = node.node()->graph().Dump();
  for (const char* stream :
       {"rule:L1", "rule:L2", "rule:L3", "rule:C4", "rule:SB3", "rule:SB6", "rule:CM6",
        "insert:succ", "insert:pred", "insert:finger", "dup:lookup", "dup:lookupResults"}) {
    EXPECT_NE(dump.find(stream), std::string::npos) << stream;
  }
}

TEST(NaradaProgram, StructureChecks) {
  ProgramAst ast;
  std::string err;
  ASSERT_TRUE(ParseOverLog(NaradaProgramText(NaradaConfig{}), &ast, &err)) << err;
  EXPECT_TRUE(ast.IsMaterialized("member"));
  EXPECT_TRUE(ast.IsMaterialized("sequence"));
  // R5 counts matching members; R6/R7 branch on the count.
  bool has_count = false;
  for (const RuleAst& r : ast.rules) {
    for (const ExprPtr& a : r.head.args) {
      has_count |= a->kind == ExprKind::kAgg && a->name == "count";
    }
  }
  EXPECT_TRUE(has_count);
}

}  // namespace
}  // namespace p2
