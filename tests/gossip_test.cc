#include <gtest/gtest.h>

#include "src/overlays/gossip.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

TEST(GossipProgram, ParsesAndCountsRules) {
  EXPECT_EQ(GossipRuleCount(GossipConfig{}), 5u);
}

TEST(Gossip, MembershipConvergesFromChainSeeds) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 17);
  const size_t n = 12;
  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (size_t i = 0; i < n; ++i) {
    transports.push_back(net.MakeTransport("g" + std::to_string(i), i));
  }
  GossipConfig gc;
  gc.gossip_period_s = 1.0;
  for (size_t i = 0; i < n; ++i) {
    P2NodeConfig c;
    c.executor = &loop;
    c.transport = transports[i].get();
    c.seed = 1000 + i;
    // Chain seeding: node i only knows node i-1.
    std::vector<std::string> seeds;
    if (i > 0) {
      seeds.push_back("g" + std::to_string(i - 1));
    }
    nodes.push_back(std::make_unique<GossipNode>(c, gc, seeds));
  }
  for (auto& node : nodes) {
    node->Start();
  }
  loop.RunUntil(120.0);
  for (auto& node : nodes) {
    EXPECT_EQ(node->Members().size(), n) << node->addr();
  }
}

TEST(Gossip, IsolatedNodeLearnsNothing) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 18);
  auto t = net.MakeTransport("g0", 0);
  P2NodeConfig c;
  c.executor = &loop;
  c.transport = t.get();
  c.seed = 1;
  GossipNode node(c, GossipConfig{}, {});
  node.Start();
  loop.RunUntil(30.0);
  EXPECT_EQ(node.Members().size(), 1u);  // only itself
}

}  // namespace
}  // namespace p2
