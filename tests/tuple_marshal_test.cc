#include <gtest/gtest.h>

#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/runtime/marshal.h"
#include "src/runtime/tuple.h"

namespace p2 {
namespace {

TuplePtr SampleTuple() {
  return Tuple::Make("lookup", {Value::Addr("n3"), Value::Id(Uint160::HashOf("key")),
                                Value::Addr("n1"), Value::Id(Uint160(77)),
                                Value::Double(1.25), Value::Str("s"), Value::Int(-9),
                                Value::Bool(true), Value::Null(),
                                Value::List({Value::Int(1), Value::Str("x")})});
}

TEST(Tuple, FieldAccessAndLocspec) {
  TuplePtr t = SampleTuple();
  EXPECT_EQ(t->name(), "lookup");
  EXPECT_EQ(t->size(), 10u);
  EXPECT_EQ(t->locspec().AsAddr(), "n3");
  EXPECT_EQ(t->field(6).AsInt(), -9);
}

TEST(Tuple, KeyOfProjectsPositions) {
  TuplePtr t = Tuple::Make("r", {Value::Int(10), Value::Int(20), Value::Int(30)});
  std::vector<Value> key = t->KeyOf({2, 0});
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].AsInt(), 30);
  EXPECT_EQ(key[1].AsInt(), 10);
  // Out-of-range positions become null rather than crashing.
  EXPECT_TRUE(t->KeyOf({5})[0].is_null());
}

TEST(Tuple, SameAs) {
  TuplePtr a = Tuple::Make("r", {Value::Int(1)});
  TuplePtr b = Tuple::Make("r", {Value::Int(1)});
  TuplePtr c = Tuple::Make("r", {Value::Int(2)});
  TuplePtr d = Tuple::Make("s", {Value::Int(1)});
  EXPECT_TRUE(a->SameAs(*b));
  EXPECT_FALSE(a->SameAs(*c));
  EXPECT_FALSE(a->SameAs(*d));
}

TEST(Marshal, ValueRoundTripAllTypes) {
  TuplePtr t = SampleTuple();
  for (const Value& v : t->fields()) {
    ByteWriter w;
    MarshalValue(v, &w);
    ByteReader r(w.buffer());
    Value out;
    ASSERT_TRUE(UnmarshalValue(&r, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(out.type(), v.type());
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Marshal, TupleRoundTrip) {
  TuplePtr t = SampleTuple();
  std::vector<uint8_t> bytes = MarshalTupleToBytes(*t);
  std::optional<TuplePtr> back = UnmarshalTupleFromBytes(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE((*back)->SameAs(*t));
}

TEST(Marshal, TruncatedInputFailsCleanly) {
  std::vector<uint8_t> bytes = MarshalTupleToBytes(*SampleTuple());
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(UnmarshalTupleFromBytes(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(Marshal, GarbageTagFails) {
  std::vector<uint8_t> bytes = {0xFF, 0x00, 0x01};
  ByteReader r(bytes);
  Value v;
  EXPECT_FALSE(UnmarshalValue(&r, &v));
}

TEST(Wire, FrameRoundTrip) {
  TuplePtr t = SampleTuple();
  std::vector<uint8_t> framed = FrameTuple(*t);
  std::optional<TuplePtr> back = UnframeTuple(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE((*back)->SameAs(*t));
}

TEST(Wire, BadMagicRejected) {
  std::vector<uint8_t> framed = FrameTuple(*SampleTuple());
  framed[0] ^= 0x01;
  EXPECT_FALSE(UnframeTuple(framed).has_value());
  framed[0] ^= 0x01;
  framed[1] = 0x7F;  // wrong version
  EXPECT_FALSE(UnframeTuple(framed).has_value());
}

TEST(Wire, WireSizeIncludesHeaders) {
  TuplePtr t = Tuple::Make("x", {Value::Int(1)});
  EXPECT_EQ(WireSizeOf(*t), FrameTuple(*t).size() + kUdpIpHeaderBytes);
}

TEST(Wire, LookupTrafficClassifier) {
  EXPECT_TRUE(IsLookupTraffic("lookup"));
  EXPECT_TRUE(IsLookupTraffic("lookupResults"));
  EXPECT_TRUE(IsLookupTraffic("blookup"));
  EXPECT_FALSE(IsLookupTraffic("stabilize"));
  EXPECT_FALSE(IsLookupTraffic("pingReq"));
}

TEST(ByteIo, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(-2.5);
  w.PutString("hello");
  ByteReader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(d, -2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace p2
