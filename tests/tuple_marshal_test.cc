#include <gtest/gtest.h>

#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/runtime/marshal.h"
#include "src/runtime/tuple.h"

namespace p2 {
namespace {

TuplePtr SampleTuple() {
  return Tuple::Make("lookup", {Value::Addr("n3"), Value::Id(Uint160::HashOf("key")),
                                Value::Addr("n1"), Value::Id(Uint160(77)),
                                Value::Double(1.25), Value::Str("s"), Value::Int(-9),
                                Value::Bool(true), Value::Null(),
                                Value::List({Value::Int(1), Value::Str("x")})});
}

TEST(Tuple, FieldAccessAndLocspec) {
  TuplePtr t = SampleTuple();
  EXPECT_EQ(t->name(), "lookup");
  EXPECT_EQ(t->size(), 10u);
  EXPECT_EQ(t->locspec().AsAddr(), "n3");
  EXPECT_EQ(t->field(6).AsInt(), -9);
}

TEST(Tuple, KeyOfProjectsPositions) {
  TuplePtr t = Tuple::Make("r", {Value::Int(10), Value::Int(20), Value::Int(30)});
  std::vector<Value> key = t->KeyOf({2, 0});
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].AsInt(), 30);
  EXPECT_EQ(key[1].AsInt(), 10);
  // Out-of-range positions become null rather than crashing.
  EXPECT_TRUE(t->KeyOf({5})[0].is_null());
}

TEST(Tuple, SameAs) {
  TuplePtr a = Tuple::Make("r", {Value::Int(1)});
  TuplePtr b = Tuple::Make("r", {Value::Int(1)});
  TuplePtr c = Tuple::Make("r", {Value::Int(2)});
  TuplePtr d = Tuple::Make("s", {Value::Int(1)});
  EXPECT_TRUE(a->SameAs(*b));
  EXPECT_FALSE(a->SameAs(*c));
  EXPECT_FALSE(a->SameAs(*d));
}

TEST(Marshal, ValueRoundTripAllTypes) {
  TuplePtr t = SampleTuple();
  for (const Value& v : t->fields()) {
    ByteWriter w;
    MarshalValue(v, &w);
    ByteReader r(w.buffer());
    Value out;
    ASSERT_TRUE(UnmarshalValue(&r, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(out.type(), v.type());
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Marshal, TupleRoundTrip) {
  TuplePtr t = SampleTuple();
  std::vector<uint8_t> bytes = MarshalTupleToBytes(*t);
  std::optional<TuplePtr> back = UnmarshalTupleFromBytes(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE((*back)->SameAs(*t));
}

TEST(Marshal, TruncatedInputFailsCleanly) {
  std::vector<uint8_t> bytes = MarshalTupleToBytes(*SampleTuple());
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(UnmarshalTupleFromBytes(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(Marshal, GarbageTagFails) {
  std::vector<uint8_t> bytes = {0xFF, 0x00, 0x01};
  ByteReader r(bytes);
  Value v;
  EXPECT_FALSE(UnmarshalValue(&r, &v));
}

TEST(Wire, FrameRoundTrip) {
  TuplePtr t = SampleTuple();
  std::vector<uint8_t> framed = FrameTuple(*t);
  std::optional<TuplePtr> back = UnframeTuple(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE((*back)->SameAs(*t));
}

TEST(Wire, BadMagicRejected) {
  std::vector<uint8_t> framed = FrameTuple(*SampleTuple());
  framed[0] ^= 0x01;
  EXPECT_FALSE(UnframeTuple(framed).has_value());
  framed[0] ^= 0x01;
  framed[1] = 0x7F;  // wrong version
  EXPECT_FALSE(UnframeTuple(framed).has_value());
}

TEST(Wire, WireSizeIncludesHeaders) {
  TuplePtr t = Tuple::Make("x", {Value::Int(1)});
  EXPECT_EQ(WireSizeOf(*t), FrameTuple(*t).size() + kUdpIpHeaderBytes);
}

TEST(Wire, LookupTrafficClassifier) {
  EXPECT_TRUE(IsLookupTraffic("lookup"));
  EXPECT_TRUE(IsLookupTraffic("lookupResults"));
  EXPECT_TRUE(IsLookupTraffic("blookup"));
  EXPECT_FALSE(IsLookupTraffic("stabilize"));
  EXPECT_FALSE(IsLookupTraffic("pingReq"));
}

TEST(ByteIo, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(-2.5);
  w.PutString("hello");
  ByteReader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(d, -2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Marshal, OversizeTupleRejected) {
  // The wire field count is a u16: 65536 fields must be rejected outright,
  // not silently truncated to 0.
  std::vector<Value> fields(65536, Value::Int(1));
  Tuple big("big", std::move(fields));
  ByteWriter w;
  EXPECT_FALSE(MarshalTuple(big, &w));
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(MarshalTupleToBytes(big).empty());
  EXPECT_TRUE(FrameTuple(big).empty());

  std::vector<Value> max_fields(65535, Value::Int(1));
  Tuple at_limit("max", std::move(max_fields));
  std::optional<TuplePtr> back = UnmarshalTupleFromBytes(MarshalTupleToBytes(at_limit));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)->size(), 65535u);
}

TEST(Marshal, HugeClaimedLengthsRejectedBeforeAllocation) {
  // A string claiming 4 GB of payload with 2 bytes behind it.
  std::vector<uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x41, 0x42};
  ByteReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.GetString(&s));

  // A list claiming 2^19 elements backed by nothing.
  std::vector<uint8_t> list_bytes = {7 /* kList tag */, 0x00, 0x00, 0x08, 0x00};
  ByteReader lr(list_bytes);
  Value v;
  EXPECT_FALSE(UnmarshalValue(&lr, &v));

  // A tuple header claiming 60000 fields backed by nothing.
  ByteWriter w;
  w.PutString("t");
  w.PutU16(60000);
  ByteReader tr(w.buffer());
  EXPECT_FALSE(UnmarshalTuple(&tr).has_value());
}

TEST(Marshal, NestingDepthBounded) {
  // Moderate nesting survives the round trip...
  Value v = Value::Int(7);
  for (int i = 0; i < 16; ++i) {
    v = Value::List({v});
  }
  ByteWriter w;
  MarshalValue(v, &w);
  ByteReader r(w.buffer());
  Value out;
  ASSERT_TRUE(UnmarshalValue(&r, &out));
  EXPECT_EQ(out, v);

  // ...but a datagram that is nothing but nested list tags (5 bytes per
  // level, ~13k levels in a max-size UDP payload) must be rejected instead
  // of recursing the stack away.
  std::vector<uint8_t> bomb;
  for (int i = 0; i < 13000; ++i) {
    bomb.push_back(7);  // kList
    bomb.push_back(1);  // one element
    bomb.push_back(0);
    bomb.push_back(0);
    bomb.push_back(0);
  }
  bomb.push_back(0);  // innermost: kNull
  ByteReader br(bomb);
  Value bv;
  EXPECT_FALSE(UnmarshalValue(&br, &bv));
}

TEST(Marshal, UnknownValueTagsRejected) {
  // Every tag beyond the last defined ValueType must fail explicitly.
  for (int tag = 8; tag < 256; ++tag) {
    std::vector<uint8_t> bytes = {static_cast<uint8_t>(tag), 0x01, 0x02, 0x03};
    ByteReader r(bytes);
    Value v;
    EXPECT_FALSE(UnmarshalValue(&r, &v)) << "tag=" << tag;
  }
}

// Fuzz-style robustness: UnmarshalTupleFromBytes must never crash, hang, or
// over-read on truncated, bit-flipped, or fully random buffers — wire data
// is untrusted. Seeded xorshift keeps the case set reproducible.
TEST(Marshal, FuzzedBuffersFailCleanly) {
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  // Purely random buffers of many sizes.
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> buf(next() % 64);
    for (uint8_t& b : buf) {
      b = static_cast<uint8_t>(next());
    }
    UnmarshalTupleFromBytes(buf);  // must simply not blow up
  }

  // Valid buffers with a single mutation: truncation + one byte corrupted.
  std::vector<uint8_t> valid = MarshalTupleToBytes(*SampleTuple());
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> buf(valid.begin(),
                             valid.begin() + static_cast<long>(next() % (valid.size() + 1)));
    if (!buf.empty()) {
      buf[next() % buf.size()] ^= static_cast<uint8_t>(1u << (next() % 8));
    }
    std::optional<TuplePtr> t = UnmarshalTupleFromBytes(buf);
    if (t.has_value()) {
      // Decoding may still succeed (the flip hit a value payload); whatever
      // comes back must be a usable tuple.
      (*t)->ToString();
    }
  }
}

}  // namespace
}  // namespace p2
