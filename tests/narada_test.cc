#include <gtest/gtest.h>

#include "src/overlays/narada.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

NaradaConfig FastNarada() {
  NaradaConfig c;
  c.refresh_period_s = 1.0;
  c.probe_period_s = 0.5;
  c.dead_after_s = 6.0;
  c.latency_probe_period_s = 1.0;
  c.member_lifetime_s = 60.0;
  c.neighbor_lifetime_s = 60.0;
  return c;
}

struct Mesh {
  explicit Mesh(size_t n, uint64_t seed = 5)
      : net(&loop, Topology(TopologyConfig{}), seed) {
    for (size_t i = 0; i < n; ++i) {
      transports.push_back(net.MakeTransport("m" + std::to_string(i), i));
    }
  }

  NaradaNode* Add(size_t i, std::vector<std::string> neighbors) {
    P2NodeConfig c;
    c.executor = &loop;
    c.transport = transports[i].get();
    c.seed = 100 + i;
    nodes.push_back(std::make_unique<NaradaNode>(c, FastNarada(), neighbors));
    return nodes.back().get();
  }

  SimEventLoop loop;
  SimNetwork net;
  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<NaradaNode>> nodes;
};

TEST(NaradaProgram, ParsesAndCountsRules) {
  size_t rules = NaradaRuleCount(FastNarada());
  // Paper: "a Narada-style mesh in 16 rules"; ours adds the R5a repair and
  // the latency-probe rules from §2.3.
  EXPECT_GE(rules, 16u);
  EXPECT_LE(rules, 22u);
}

TEST(NaradaMesh, MembershipPropagatesAlongChain) {
  // Chain topology: 0 - 1 - 2 - 3. Everyone should learn everyone through
  // epidemic refreshes even without direct links.
  Mesh mesh(4);
  mesh.Add(0, {"m1"});
  mesh.Add(1, {"m0", "m2"});
  mesh.Add(2, {"m1", "m3"});
  mesh.Add(3, {"m2"});
  for (auto& n : mesh.nodes) {
    n->Start();
  }
  mesh.loop.RunUntil(30.0);
  for (auto& n : mesh.nodes) {
    std::vector<NaradaMember> members = n->Members();
    EXPECT_GE(members.size(), 4u) << n->addr();
    size_t live = 0;
    for (const NaradaMember& m : members) {
      live += m.live ? 1 : 0;
    }
    EXPECT_GE(live, 4u) << n->addr();
  }
}

TEST(NaradaMesh, SequenceNumbersAdvance) {
  Mesh mesh(2);
  mesh.Add(0, {"m1"});
  mesh.Add(1, {"m0"});
  mesh.nodes[0]->Start();
  mesh.nodes[1]->Start();
  mesh.loop.RunUntil(20.0);
  // Node 1's view of node 0 should carry an advanced sequence number.
  int64_t seq = -1;
  for (const NaradaMember& m : mesh.nodes[1]->Members()) {
    if (m.addr == "m0") {
      seq = m.sequence;
    }
  }
  EXPECT_GE(seq, 10);  // ~1 refresh/second for 20 seconds
}

TEST(NaradaMesh, NeighborLinksAreMutual) {
  Mesh mesh(2);
  mesh.Add(0, {"m1"});
  mesh.Add(1, {});  // m1 starts without knowing m0
  mesh.nodes[0]->Start();
  mesh.nodes[1]->Start();
  mesh.loop.RunUntil(10.0);
  // Rule N1: refreshes create the reverse link.
  std::vector<std::string> nbrs = mesh.nodes[1]->Neighbors();
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), "m0"), nbrs.end());
}

TEST(NaradaMesh, DeadNeighborDetectedAndPropagated) {
  Mesh mesh(3);
  mesh.Add(0, {"m1"});
  mesh.Add(1, {"m0", "m2"});
  mesh.Add(2, {"m1"});
  for (auto& n : mesh.nodes) {
    n->Start();
  }
  mesh.loop.RunUntil(15.0);
  // Kill node 2: silence for > dead_after_s gets it declared dead at m1,
  // and the death news (live = 0) propagates to m0.
  mesh.nodes[2]->Stop();
  mesh.nodes[2].reset();
  mesh.transports[2].reset();
  mesh.loop.RunUntil(45.0);
  bool m0_sees_dead = false;
  for (const NaradaMember& m : mesh.nodes[0]->Members()) {
    if (m.addr == "m2" && !m.live) {
      m0_sees_dead = true;
    }
  }
  EXPECT_TRUE(m0_sees_dead);
  // m1 dropped the neighbor link.
  std::vector<std::string> nbrs = mesh.nodes[1]->Neighbors();
  EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), "m2"), nbrs.end());
}

TEST(NaradaMesh, LatencyProbesMeasureTopology) {
  Mesh mesh(2);
  mesh.Add(0, {"m1"});
  mesh.Add(1, {"m0"});
  mesh.nodes[0]->Start();
  mesh.nodes[1]->Start();
  mesh.loop.RunUntil(30.0);
  std::vector<std::pair<std::string, double>> lats = mesh.nodes[0]->Latencies();
  ASSERT_FALSE(lats.empty());
  for (const auto& [peer, rtt] : lats) {
    EXPECT_EQ(peer, "m1");
    // Nodes 0 and 1 sit in different domains: RTT ~ 2 * 104 ms.
    EXPECT_GT(rtt, 0.15);
    EXPECT_LT(rtt, 0.5);
  }
}

}  // namespace
}  // namespace p2
