#include <gtest/gtest.h>

#include "src/overlays/pathvector.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

PathVectorConfig FastPv() {
  PathVectorConfig c;
  c.advertise_period_s = 1.0;
  c.route_lifetime_s = 3.5;
  return c;
}

struct PvNet {
  explicit PvNet(size_t n) : net(&loop, Topology(TopologyConfig{}), 51) {
    for (size_t i = 0; i < n; ++i) {
      transports.push_back(net.MakeTransport("r" + std::to_string(i), i));
    }
  }

  PathVectorNode* Add(size_t i, std::vector<std::pair<std::string, int64_t>> links) {
    P2NodeConfig c;
    c.executor = &loop;
    c.transport = transports[i].get();
    c.seed = 300 + i;
    nodes.push_back(std::make_unique<PathVectorNode>(c, FastPv(), links));
    nodes.back()->Start();
    return nodes.back().get();
  }

  int64_t CostTo(size_t from, const std::string& dst) {
    for (const RouteEntry& r : nodes[from]->BestRoutes()) {
      if (r.dst == dst) {
        return r.cost;
      }
    }
    return -1;
  }
  std::string NextHopTo(size_t from, const std::string& dst) {
    for (const RouteEntry& r : nodes[from]->BestRoutes()) {
      if (r.dst == dst) {
        return r.next_hop;
      }
    }
    return "";
  }

  SimEventLoop loop;
  SimNetwork net;
  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<PathVectorNode>> nodes;
};

TEST(PathVectorProgram, ParsesAndCounts) {
  EXPECT_EQ(PathVectorRuleCount(PathVectorConfig{}), 6u);
}

TEST(PathVector, LineTopologyConvergesToShortestPaths) {
  // r0 -1- r1 -1- r2 -1- r3 (bidirectional unit links).
  PvNet pv(4);
  pv.Add(0, {{"r1", 1}});
  pv.Add(1, {{"r0", 1}, {"r2", 1}});
  pv.Add(2, {{"r1", 1}, {"r3", 1}});
  pv.Add(3, {{"r2", 1}});
  pv.loop.RunUntil(20.0);
  EXPECT_EQ(pv.CostTo(0, "r1"), 1);
  EXPECT_EQ(pv.CostTo(0, "r2"), 2);
  EXPECT_EQ(pv.CostTo(0, "r3"), 3);
  EXPECT_EQ(pv.NextHopTo(0, "r3"), "r1");
  EXPECT_EQ(pv.CostTo(3, "r0"), 3);
}

TEST(PathVector, PrefersCheaperMultiHopOverExpensiveDirect) {
  // Direct r0->r2 costs 10; the detour via r1 costs 2.
  PvNet pv(3);
  pv.Add(0, {{"r1", 1}, {"r2", 10}});
  pv.Add(1, {{"r0", 1}, {"r2", 1}});
  pv.Add(2, {{"r1", 1}, {"r0", 10}});
  pv.loop.RunUntil(20.0);
  EXPECT_EQ(pv.CostTo(0, "r2"), 2);
  EXPECT_EQ(pv.NextHopTo(0, "r2"), "r1");
}

TEST(PathVector, ReroutesAfterLinkFailure) {
  // Triangle: r0-r1 (1), r1-r2 (1), r0-r2 (5). Best r0->r2 is via r1.
  PvNet pv(3);
  pv.Add(0, {{"r1", 1}, {"r2", 5}});
  pv.Add(1, {{"r0", 1}, {"r2", 1}});
  pv.Add(2, {{"r1", 1}, {"r0", 5}});
  pv.loop.RunUntil(20.0);
  ASSERT_EQ(pv.CostTo(0, "r2"), 2);
  // The r0-r1 link dies (both directions). Routes through it age out and
  // the expensive direct link takes over.
  pv.nodes[0]->RemoveLink("r1");
  pv.nodes[1]->RemoveLink("r0");
  pv.loop.RunUntil(60.0);
  EXPECT_EQ(pv.CostTo(0, "r2"), 5);
  EXPECT_EQ(pv.NextHopTo(0, "r2"), "r2");
}

TEST(PathVector, HorizonBoundsCountToInfinity) {
  // Partition: r2 disappears entirely; r0/r1 must drop the route rather
  // than counting up forever (max_cost horizon + soft-state expiry).
  PvNet pv(3);
  pv.Add(0, {{"r1", 1}});
  pv.Add(1, {{"r0", 1}, {"r2", 1}});
  pv.Add(2, {{"r1", 1}});
  pv.loop.RunUntil(20.0);
  ASSERT_EQ(pv.CostTo(0, "r2"), 2);
  pv.nodes[1]->RemoveLink("r2");
  pv.nodes[2]->Stop();
  pv.loop.RunUntil(120.0);
  EXPECT_EQ(pv.CostTo(0, "r2"), -1);  // no best route survives
}

TEST(PathVector, GraphDumpListsRuleChains) {
  PvNet pv(1);
  PathVectorNode* n = pv.Add(0, {});
  std::string dump = n->node()->graph().Dump();
  EXPECT_NE(dump.find("rule:PV3"), std::string::npos);
  EXPECT_NE(dump.find("->"), std::string::npos);
  EXPECT_NE(dump.find("element input_queue"), std::string::npos);
}

}  // namespace
}  // namespace p2
