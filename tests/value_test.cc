#include "src/runtime/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

namespace p2 {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(Value, NumericAccessorsCoerce) {
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Int(42).AsDouble(), 42.0);
  EXPECT_EQ(Value::Double(3.7).AsInt(), 3);
  EXPECT_TRUE(Value::Int(1).AsBool());
  EXPECT_FALSE(Value::Double(0.0).AsBool());
}

TEST(Value, StringAndAddrAreDistinctTypes) {
  Value s = Value::Str("a:1");
  Value a = Value::Addr("a:1");
  EXPECT_EQ(s.type(), ValueType::kStr);
  EXPECT_EQ(a.type(), ValueType::kAddr);
  EXPECT_NE(s, a);
  EXPECT_EQ(s.AsStr(), "a:1");
  EXPECT_EQ(a.AsAddr(), "a:1");
}

TEST(Value, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Str("abc"), Value::Str("abc"));
  EXPECT_LT(Value::Str("abc"), Value::Str("abd"));
  EXPECT_LT(Value::Id(Uint160(1)), Value::Id(Uint160(2)));
  EXPECT_LT(Value::Addr("a"), Value::Addr("b"));
}

TEST(Value, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_GT(Value::Double(3.0), Value::Int(2));
}

TEST(Value, CrossTypeNonNumericOrdersByTypeRank) {
  // Str (rank 4) sorts before Id (rank 5), before Addr (rank 6).
  EXPECT_LT(Value::Str("zzz"), Value::Id(Uint160(0)));
  EXPECT_LT(Value::Id(Uint160::Max()), Value::Addr("a"));
  EXPECT_NE(Value::Str("-"), Value::Addr("-"));
}

TEST(Value, IntegerArithmetic) {
  EXPECT_EQ(Value::Add(Value::Int(2), Value::Int(3)).AsInt(), 5);
  EXPECT_EQ(Value::Sub(Value::Int(2), Value::Int(3)).AsInt(), -1);
  EXPECT_EQ(Value::Mul(Value::Int(4), Value::Int(3)).AsInt(), 12);
  EXPECT_EQ(Value::Div(Value::Int(7), Value::Int(2)).AsInt(), 3);
  EXPECT_EQ(Value::Mod(Value::Int(7), Value::Int(3)).AsInt(), 1);
}

TEST(Value, DivisionByZeroYieldsZeroNotCrash) {
  EXPECT_EQ(Value::Div(Value::Int(7), Value::Int(0)).AsInt(), 0);
  EXPECT_EQ(Value::Mod(Value::Int(7), Value::Int(0)).AsInt(), 0);
  EXPECT_EQ(Value::Div(Value::Double(1.0), Value::Double(0.0)).AsDouble(), 0.0);
}

TEST(Value, DoublePromotion) {
  Value r = Value::Add(Value::Int(1), Value::Double(0.5));
  EXPECT_EQ(r.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r.AsDouble(), 1.5);
}

TEST(Value, IdArithmeticWrapsOnRing) {
  Value max = Value::Id(Uint160::Max());
  Value r = Value::Add(max, Value::Int(1));
  EXPECT_EQ(r.type(), ValueType::kId);
  EXPECT_TRUE(r.AsId().IsZero());
  // Chord's distance idiom: K - B - 1.
  Value d = Value::Sub(Value::Sub(Value::Id(Uint160(5)), Value::Id(Uint160(5))), Value::Int(1));
  EXPECT_EQ(d.AsId(), Uint160::Max());
}

TEST(Value, ShlAlwaysYieldsId) {
  Value r = Value::Shl(Value::Int(1), Value::Int(100));
  ASSERT_EQ(r.type(), ValueType::kId);
  EXPECT_EQ(r.AsId(), Uint160(1) << 100);
  EXPECT_TRUE(Value::Shl(Value::Int(1), Value::Int(200)).AsId().IsZero());
}

TEST(Value, StringConcatenationViaAdd) {
  EXPECT_EQ(Value::Add(Value::Str("ab"), Value::Str("cd")).AsStr(), "abcd");
}

TEST(Value, ListConstructionAndComparison) {
  Value l1 = Value::List({Value::Int(1), Value::Str("x")});
  Value l2 = Value::List({Value::Int(1), Value::Str("x")});
  Value l3 = Value::List({Value::Int(1), Value::Str("y")});
  Value l4 = Value::List({Value::Int(1)});
  EXPECT_EQ(l1, l2);
  EXPECT_LT(l1, l3);
  EXPECT_LT(l4, l1);  // prefix sorts first
  EXPECT_EQ(l1.AsList().size(), 2u);
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Addr("n1").ToString(), "n1");
  EXPECT_EQ(Value::Id(Uint160(255)).ToString(), "0xff");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Str("abc").HashValue(), Value::Str("abc").HashValue());
  EXPECT_EQ(Value::Int(5).HashValue(), Value::Int(5).HashValue());
  EXPECT_NE(Value::Str("n1").HashValue(), Value::Addr("n1").HashValue());
}

// --- Coercion edges ---

TEST(Value, IdModRingWraparound) {
  // Crossing 2^160 in either direction must wrap, from every operand mix.
  EXPECT_TRUE(Value::Add(Value::Id(Uint160::Max()), Value::Id(Uint160(1))).AsId().IsZero());
  EXPECT_EQ(Value::Add(Value::Id(Uint160::Max()), Value::Int(2)).AsId(), Uint160(1));
  EXPECT_EQ(Value::Sub(Value::Id(Uint160()), Value::Int(1)).AsId(), Uint160::Max());
  EXPECT_EQ(Value::Sub(Value::Int(0), Value::Id(Uint160(1))).AsId(), Uint160::Max());
  // Bool coerces onto the ring like an int.
  EXPECT_TRUE(Value::Add(Value::Id(Uint160::Max()), Value::Bool(true)).AsId().IsZero());
  // A negative int coerces through uint64, not sign-extended to 160 bits.
  EXPECT_EQ(Value::Add(Value::Id(Uint160(0)), Value::Int(-1)).AsId(),
            Uint160(UINT64_MAX));
}

TEST(Value, ShlProducesIdsBeyond64Bits) {
  // 1 << I is how OverLog builds finger offsets; it must not truncate.
  Value r64 = Value::Shl(Value::Int(1), Value::Int(64));
  ASSERT_EQ(r64.type(), ValueType::kId);
  EXPECT_EQ(r64.AsId(), Uint160(0, 1, 0));
  Value r159 = Value::Shl(Value::Int(1), Value::Int(159));
  EXPECT_EQ(r159.AsId(), Uint160(0x80000000ull, 0, 0));
  // Id operands shift on the ring too, and out-of-range shifts vanish.
  EXPECT_EQ(Value::Shl(Value::Id(Uint160(3)), Value::Int(1)).AsId(), Uint160(6));
  EXPECT_TRUE(Value::Shl(Value::Int(1), Value::Int(160)).AsId().IsZero());
  EXPECT_EQ(Value::Shl(Value::Int(5), Value::Int(-3)).AsId(), Uint160(5));  // clamps to 0
}

TEST(Value, IntegerArithmeticWrapsTotal) {
  // Ring semantics: extremes wrap mod 2^64 instead of trapping.
  EXPECT_EQ(Value::Add(Value::Int(INT64_MAX), Value::Int(1)).AsInt(), INT64_MIN);
  EXPECT_EQ(Value::Sub(Value::Int(INT64_MIN), Value::Int(1)).AsInt(), INT64_MAX);
  EXPECT_EQ(Value::Mul(Value::Int(INT64_MIN), Value::Int(-1)).AsInt(), INT64_MIN);
  EXPECT_EQ(Value::Div(Value::Int(INT64_MIN), Value::Int(-1)).AsInt(), INT64_MIN);
  EXPECT_EQ(Value::Mod(Value::Int(INT64_MIN), Value::Int(-1)).AsInt(), 0);
  EXPECT_EQ(Value::Mod(Value::Int(7), Value::Int(-1)).AsInt(), 0);
}

TEST(Value, DoubleToIntConversionSaturates) {
  EXPECT_EQ(Value::Double(1e300).AsInt(), INT64_MAX);
  EXPECT_EQ(Value::Double(-1e300).AsInt(), INT64_MIN);
  EXPECT_EQ(Value::Double(std::nan("")).AsInt(), 0);
  EXPECT_EQ(Value::Double(1e6).AsInt(), 1000000);
}

TEST(Value, CrossTypeCompareTotality) {
  // Int/double comparisons are numeric in both argument orders, and
  // equality agrees with Compare == 0 in every mix.
  EXPECT_EQ(Value::Compare(Value::Bool(true), Value::Int(1)), 0);
  EXPECT_EQ(Value::Compare(Value::Bool(false), Value::Double(0.0)), 0);
  EXPECT_EQ(Value::Compare(Value::Double(2.5), Value::Int(2)), 1);
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.5)), -1);
  EXPECT_TRUE(Value::Int(1) == Value::Double(1.0));
  EXPECT_TRUE(Value::Bool(true) == Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Str("1"));
  // Antisymmetry on a sample grid of numeric values.
  const Value vals[] = {Value::Bool(false), Value::Bool(true), Value::Int(-3),
                        Value::Int(0),      Value::Int(2),     Value::Double(-3.0),
                        Value::Double(0.5), Value::Double(2.0)};
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      EXPECT_EQ(Value::Compare(a, b), -Value::Compare(b, a))
          << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(a == b, Value::Compare(a, b) == 0)
          << a.ToString() << " vs " << b.ToString();
    }
  }
  // Very large int64s survive the cross-type path (both map to the same
  // double; Compare treats them equal — pinned so a change is deliberate).
  EXPECT_EQ(Value::Compare(Value::Int(INT64_MAX), Value::Double(9.2233720368547758e18)), 0);
}

TEST(Value, SharedRepCopySemantics) {
  // Copies of heap-backed values share one rep; content survives the
  // original's destruction (refcount, not borrowing).
  Value copy;
  {
    Value s = Value::Str("shared-payload");
    copy = s;
    EXPECT_EQ(&copy.AsStr(), &s.AsStr());
  }
  EXPECT_EQ(copy.AsStr(), "shared-payload");
  // Moved-from values are null, not dangling.
  Value id = Value::Id(Uint160(7));
  Value stolen = std::move(id);
  EXPECT_TRUE(id.is_null());  // NOLINT(bugprone-use-after-move): pinned semantics
  EXPECT_EQ(stolen.AsId(), Uint160(7));
}

TEST(Value, AssignFromOwnListElement) {
  // The source of an assignment may live inside the destination's own
  // payload; releasing the old payload first would free it under us.
  Value v = Value::List({Value::Str("inner"), Value::Int(2)});
  v = v.AsList()[0];
  EXPECT_EQ(v.AsStr(), "inner");
  Value self = Value::Id(Uint160(9));
  Value& alias = self;  // sidesteps clang's -Wself-assign-overloaded
  self = alias;
  EXPECT_EQ(self.AsId(), Uint160(9));
}

TEST(ValueVec, HashAndEqFunctors) {
  std::vector<Value> a = {Value::Int(1), Value::Str("x")};
  std::vector<Value> b = {Value::Int(1), Value::Str("x")};
  std::vector<Value> c = {Value::Int(2), Value::Str("x")};
  ValueVecHash h;
  ValueVecEq eq;
  EXPECT_EQ(h(a), h(b));
  EXPECT_TRUE(eq(a, b));
  EXPECT_FALSE(eq(a, c));
  EXPECT_FALSE(eq(a, {Value::Int(1)}));
}

}  // namespace
}  // namespace p2
