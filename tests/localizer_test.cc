#include "src/overlog/localizer.h"

#include <gtest/gtest.h>

#include "src/overlog/parser.h"

namespace p2 {
namespace {

ProgramAst ParseAndLocalize(const std::string& src, bool expect_ok = true) {
  ProgramAst p;
  std::string err;
  EXPECT_TRUE(ParseOverLog(src, &p, &err)) << err;
  bool ok = LocalizeProgram(&p, &err);
  EXPECT_EQ(ok, expect_ok) << err;
  return p;
}

TEST(Localizer, CollocatedRuleUnchanged) {
  ProgramAst p = ParseAndLocalize(
      "materialize(t, infinity, 10, keys(1)).\n"
      "r1 h@X(X,Y) :- ev@X(X,Y), t@X(X,Y).");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].id, "r1");
  EXPECT_EQ(p.rules[0].body.size(), 2u);
}

TEST(Localizer, RemoteHeadOnlyUnchanged) {
  // A head at another node is fine (that's just a send); only split bodies
  // need rewriting.
  ProgramAst p = ParseAndLocalize("r h@Y(Y,X) :- ev@X(X), n@X(X,Y).");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].head.locspec, "Y");
}

TEST(Localizer, TwoSiteBodySplitsIntoShipAndRecv) {
  // The paper's R4 (§2.3): event and two tables at X, a negated probe at Y,
  // head at Y with an assignment that must run at Y.
  ProgramAst p = ParseAndLocalize(
      "materialize(member, 120, infinity, keys(2)).\n"
      "materialize(neighbor, 120, infinity, keys(2)).\n"
      "R4 member@Y(Y, A, ASeqX, TimeY, ALiveX) :- refreshSeq@X(X, S), "
      "member@X(X, A, ASeqX, _, ALiveX), neighbor@X(X, Y), "
      "not member@Y(Y, A, _, _, _), TimeY := f_now@Y().");
  ASSERT_EQ(p.rules.size(), 2u);
  const RuleAst& ship = p.rules[0];
  const RuleAst& recv = p.rules[1];
  EXPECT_EQ(ship.id, "R4@ship");
  EXPECT_EQ(recv.id, "R4@recv");
  // Ship rule: at X, head is the intermediate event destined to Y.
  EXPECT_EQ(ship.head.locspec, "Y");
  EXPECT_EQ(ship.head.args[0]->name, "Y");
  // It carries Y plus everything the receive side needs (A, ASeqX, ALiveX).
  EXPECT_EQ(ship.head.args.size(), 4u);
  // Ship body holds the X-side terms only.
  ASSERT_EQ(ship.body.size(), 3u);
  for (const BodyTerm& t : ship.body) {
    EXPECT_TRUE(std::holds_alternative<PredicateAst>(t));
    EXPECT_EQ(std::get<PredicateAst>(t).locspec, "X");
  }
  // Receive rule: original head, triggered by the shipped event, with the
  // negation and the assignment now local to Y.
  EXPECT_EQ(recv.head.name, "member");
  EXPECT_EQ(recv.head.locspec, "Y");
  ASSERT_EQ(recv.body.size(), 3u);
  EXPECT_EQ(std::get<PredicateAst>(recv.body[0]).name, ship.head.name);
  EXPECT_TRUE(std::get<PredicateAst>(recv.body[1]).negated);
  EXPECT_TRUE(std::holds_alternative<AssignAst>(recv.body[2]));
}

TEST(Localizer, XSideFiltersStayOnShipSide) {
  ProgramAst p = ParseAndLocalize(
      "materialize(t, infinity, 10, keys(1)).\n"
      "materialize(u, infinity, 10, keys(1)).\n"
      "r h@Y(Y,V) :- ev@X(X,Y,V), t@X(X,Y), V > 10, u@Y(Y,V).");
  ASSERT_EQ(p.rules.size(), 2u);
  const RuleAst& ship = p.rules[0];
  // V > 10 is evaluable at X: selection pushed before shipping.
  bool has_filter = false;
  for (const BodyTerm& t : ship.body) {
    has_filter |= std::holds_alternative<ExprPtr>(t);
  }
  EXPECT_TRUE(has_filter);
}

TEST(Localizer, ThreeSitesRejected) {
  ProgramAst p;
  std::string err;
  ASSERT_TRUE(ParseOverLog("r h@X(X) :- a@X(X,Y,Z), b@Y(Y), c@Z(Z).", &p, &err));
  EXPECT_FALSE(LocalizeProgram(&p, &err));
  EXPECT_NE(err.find("more than two locations"), std::string::npos);
}

TEST(Localizer, UnboundDestinationRejected) {
  ProgramAst p;
  std::string err;
  ASSERT_TRUE(ParseOverLog("r h@Y(Y) :- ev@X(X), b@Y(Y).", &p, &err));
  // Y never appears in an X-side predicate: nothing binds the destination.
  EXPECT_FALSE(LocalizeProgram(&p, &err));
  EXPECT_NE(err.find("not bound"), std::string::npos);
}

TEST(Localizer, FactsPassThrough) {
  ProgramAst p = ParseAndLocalize(
      "materialize(pred, infinity, 1, keys(1)).\n"
      "SB0 pred@NI(NI, \"-\", \"-\").");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_TRUE(p.rules[0].IsFact());
}

}  // namespace
}  // namespace p2
