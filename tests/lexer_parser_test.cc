#include <gtest/gtest.h>

#include "src/overlog/lexer.h"
#include "src/overlog/parser.h"

namespace p2 {
namespace {

TEST(Lexer, TokenKinds) {
  std::vector<Token> toks;
  std::string err;
  ASSERT_TRUE(LexOverLog("rule Var _x 12 3.5 0xff \"str\" :- := == << @", &toks, &err));
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokKind::kVariable);
  EXPECT_EQ(toks[2].kind, TokKind::kVariable);  // underscore-prefixed
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_TRUE(toks[3].is_integer);
  EXPECT_EQ(toks[4].kind, TokKind::kNumber);
  EXPECT_FALSE(toks[4].is_integer);
  EXPECT_EQ(toks[5].kind, TokKind::kHexId);
  EXPECT_EQ(toks[6].kind, TokKind::kString);
  EXPECT_EQ(toks[6].text, "str");
  EXPECT_EQ(toks[7].text, ":-");
  EXPECT_EQ(toks[8].text, ":=");
  EXPECT_EQ(toks[9].text, "==");
  EXPECT_EQ(toks[10].text, "<<");
  EXPECT_EQ(toks[11].text, "@");
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(Lexer, CommentsAndLines) {
  std::vector<Token> toks;
  std::string err;
  ASSERT_TRUE(LexOverLog("/* block\ncomment */ a // line\n# hash\nb", &toks, &err));
  ASSERT_EQ(toks.size(), 3u);  // a, b, end
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 4);
}

TEST(Lexer, DotEndsStatementButNotDecimals) {
  std::vector<Token> toks;
  std::string err;
  ASSERT_TRUE(LexOverLog("f(1.5).", &toks, &err));
  // f ( 1.5 ) . end
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[2].number, 1.5);
  EXPECT_EQ(toks[4].text, ".");
}

TEST(Lexer, Errors) {
  std::vector<Token> toks;
  std::string err;
  EXPECT_FALSE(LexOverLog("\"unterminated", &toks, &err));
  EXPECT_NE(err.find("unterminated string"), std::string::npos);
  toks.clear();
  EXPECT_FALSE(LexOverLog("/* no end", &toks, &err));
  toks.clear();
  EXPECT_FALSE(LexOverLog("a $ b", &toks, &err));
  EXPECT_NE(err.find("unexpected character"), std::string::npos);
}

ProgramAst MustParse(const std::string& src) {
  ProgramAst p;
  std::string err;
  EXPECT_TRUE(ParseOverLog(src, &p, &err)) << err;
  return p;
}

TEST(Parser, Materialize) {
  ProgramAst p = MustParse("materialize(neighbor, 120, infinity, keys(2)).");
  ASSERT_EQ(p.materializations.size(), 1u);
  const MaterializeAst& m = p.materializations[0];
  EXPECT_EQ(m.name, "neighbor");
  EXPECT_DOUBLE_EQ(m.lifetime_s, 120);
  EXPECT_EQ(m.max_size, std::numeric_limits<size_t>::max());
  ASSERT_EQ(m.key_positions.size(), 1u);
  EXPECT_EQ(m.key_positions[0], 1u);  // 1-based "2" -> 0-based 1
  EXPECT_TRUE(p.IsMaterialized("neighbor"));
  EXPECT_FALSE(p.IsMaterialized("other"));
}

TEST(Parser, MaterializeMultiKey) {
  ProgramAst p = MustParse("materialize(env, infinity, 64, keys(2,3)).");
  EXPECT_EQ(p.materializations[0].max_size, 64u);
  EXPECT_EQ(p.materializations[0].key_positions, (std::vector<size_t>{1, 2}));
}

TEST(Parser, SimpleRuleWithId) {
  ProgramAst p = MustParse("R1 refreshEvent@X(X) :- periodic@X(X, E, 3).");
  ASSERT_EQ(p.rules.size(), 1u);
  const RuleAst& r = p.rules[0];
  EXPECT_EQ(r.id, "R1");
  EXPECT_EQ(r.head.name, "refreshEvent");
  EXPECT_EQ(r.head.locspec, "X");
  ASSERT_EQ(r.body.size(), 1u);
  const PredicateAst& b = std::get<PredicateAst>(r.body[0]);
  EXPECT_EQ(b.name, "periodic");
  ASSERT_EQ(b.args.size(), 3u);
  EXPECT_EQ(b.args[2]->kind, ExprKind::kConst);
}

TEST(Parser, RuleWithoutId) {
  ProgramAst p = MustParse("lookupResults@R(R,K) :- lookup@NI(NI,K,R).");
  EXPECT_EQ(p.rules[0].id, "");
  EXPECT_EQ(p.rules[0].head.name, "lookupResults");
}

TEST(Parser, DeleteRuleWithAndWithoutId) {
  ProgramAst p = MustParse(
      "L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).\n"
      "delete succ@NI(NI,S) :- evict@NI(NI,S).");
  EXPECT_EQ(p.rules[0].id, "L3");
  EXPECT_TRUE(p.rules[0].delete_head);
  EXPECT_EQ(p.rules[1].id, "");
  EXPECT_TRUE(p.rules[1].delete_head);
}

TEST(Parser, Fact) {
  ProgramAst p = MustParse("SB0 pred@NI(NI, \"-\", \"-\").");
  EXPECT_TRUE(p.rules[0].IsFact());
  EXPECT_EQ(p.rules[0].head.args.size(), 3u);
}

TEST(Parser, AggregatesInHead) {
  ProgramAst p = MustParse(
      "L2 bestLookupDist@NI(NI,K,E,min<D>) :- lookup@NI(NI,K,E).\n"
      "S1 succCount@NI(NI,count<*>) :- succ@NI(NI,S).\n"
      "P0 pick@X(X,Y,max<R>) :- ev@X(X), m@X(X,Y), R := f_rand().");
  const RuleAst& l2 = p.rules[0];
  EXPECT_EQ(l2.head.args[3]->kind, ExprKind::kAgg);
  EXPECT_EQ(l2.head.args[3]->name, "min");
  EXPECT_EQ(l2.head.args[3]->agg_var, "D");
  EXPECT_EQ(p.rules[1].head.args[1]->agg_var, "*");
  EXPECT_EQ(p.rules[2].head.args[2]->name, "max");
}

TEST(Parser, AssignmentsAndFilters) {
  ProgramAst p = MustParse(
      "R2 out@X(X,N) :- ev@X(X), seq@X(X,S), N := S + 1, S < 100, f_now() - S > 20.");
  const RuleAst& r = p.rules[0];
  ASSERT_EQ(r.body.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<AssignAst>(r.body[2]));
  const AssignAst& a = std::get<AssignAst>(r.body[2]);
  EXPECT_EQ(a.var, "N");
  EXPECT_TRUE(std::holds_alternative<ExprPtr>(r.body[3]));
  EXPECT_TRUE(std::holds_alternative<ExprPtr>(r.body[4]));
}

TEST(Parser, NegatedPredicate) {
  ProgramAst p = MustParse("r m@Y(Y,A) :- ev@X(X,Y,A), not m@Y(Y,A,_,_).");
  const PredicateAst& n = std::get<PredicateAst>(p.rules[0].body[1]);
  EXPECT_TRUE(n.negated);
  EXPECT_EQ(n.args.size(), 4u);
  EXPECT_EQ(n.args[2]->name, "_");
}

TEST(Parser, RangeExpressions) {
  ProgramAst p = MustParse(
      "L1 res@R(R,K) :- node@NI(NI,N), lookup@NI(NI,K,R), succ@NI(NI,S), K in (N,S].");
  const ExprPtr& f = std::get<ExprPtr>(p.rules[0].body[3]);
  ASSERT_EQ(f->kind, ExprKind::kRange);
  EXPECT_TRUE(f->lo_open);
  EXPECT_FALSE(f->hi_open);
}

TEST(Parser, ShiftAndParenthesizedExpr) {
  ProgramAst p = MustParse("F3 l@NI(NI,K) :- f@NI(NI,I), node@NI(NI,N), K := N + (1 << I).");
  const AssignAst& a = std::get<AssignAst>(p.rules[0].body[2]);
  ASSERT_EQ(a.expr->kind, ExprKind::kBinary);
  EXPECT_EQ(a.expr->name, "+");
  EXPECT_EQ(a.expr->args[1]->name, "<<");
}

TEST(Parser, OrFilterWithParens) {
  ProgramAst p = MustParse("F8 n@NI(NI,0) :- e@NI(NI,I,BI), ((I == 159) || (BI == NI)).");
  const ExprPtr& f = std::get<ExprPtr>(p.rules[0].body[1]);
  EXPECT_EQ(f->name, "||");
}

TEST(Parser, LocationAnnotatedBuiltin) {
  ProgramAst p = MustParse("r6 m@Y(Y,T) :- ev@X(X,Y), T := f_now@Y().");
  const AssignAst& a = std::get<AssignAst>(p.rules[0].body[1]);
  EXPECT_EQ(a.expr->kind, ExprKind::kCall);
  EXPECT_EQ(a.expr->name, "f_now");
}

TEST(Parser, Watch) {
  ProgramAst p = MustParse("watch(lookupResults).");
  ASSERT_EQ(p.watches.size(), 1u);
  EXPECT_EQ(p.watches[0], "lookupResults");
}

TEST(Parser, HexIdLiteral) {
  ProgramAst p = MustParse("f node@NI(NI, 0xdeadbeef) :- e@NI(NI).");
  const ExprPtr& arg = p.rules[0].head.args[1];
  ASSERT_EQ(arg->kind, ExprKind::kConst);
  EXPECT_EQ(arg->value.AsId().Low64(), 0xdeadbeefull);
}

TEST(Parser, SyntaxErrorsReportLine) {
  ProgramAst p;
  std::string err;
  EXPECT_FALSE(ParseOverLog("a@X(X :- b@X(X).", &p, &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
  err.clear();
  EXPECT_FALSE(ParseOverLog("materialize(t, bogus, 1, keys(1)).", &p, &err));
  EXPECT_NE(err.find("expected number or 'infinity'"), std::string::npos);
  err.clear();
  EXPECT_FALSE(ParseOverLog("r h@X(X) :- b@X(X)", &p, &err));  // missing '.'
}

TEST(Parser, PrintersRoundTripReadably) {
  ProgramAst p = MustParse(
      "L2 d@NI(NI,K,min<D>) :- lookup@NI(NI,K), finger@NI(NI,B), D := K - B - 1, "
      "B in (N,K).");
  std::string s = RuleToString(p.rules[0]);
  EXPECT_NE(s.find("L2"), std::string::npos);
  EXPECT_NE(s.find("min<D>"), std::string::npos);
  EXPECT_NE(s.find("in ("), std::string::npos);
  // The printed rule re-parses.
  ProgramAst again = MustParse(s);
  EXPECT_EQ(again.rules[0].head.name, "d");
}

}  // namespace
}  // namespace p2
