#include <gtest/gtest.h>

#include "src/dataflow/basic_elements.h"
#include "src/dataflow/graph.h"
#include "src/dataflow/rel_elements.h"
#include "src/sim/event_loop.h"

namespace p2 {
namespace {

TuplePtr T(const std::string& name, std::vector<Value> fields) {
  return Tuple::Make(name, std::move(fields));
}

class ElementsTest : public ::testing::Test {
 protected:
  ElementsTest() : rng_(1), addr_("n0") {}
  PelEnv Env() { return PelEnv{&loop_, &rng_, &addr_}; }

  // Terminal collector.
  CallbackSink* Sink(std::vector<TuplePtr>* out) {
    return graph_.Add<CallbackSink>("sink", [out](const TuplePtr& t) { out->push_back(t); });
  }

  SimEventLoop loop_;
  Rng rng_;
  std::string addr_;
  Graph graph_;
};

TEST_F(ElementsTest, QueueFifoAndBlockingSignals) {
  auto* q = graph_.Add<QueueElement>("q", 2);
  bool puller_woken = false;
  EXPECT_EQ(q->Pull(0, [&]() { puller_woken = true; }), nullptr);
  // Push wakes the blocked puller.
  EXPECT_EQ(q->Push(0, T("a", {}), nullptr), 1);
  EXPECT_TRUE(puller_woken);
  // Fill to capacity: push returns 0 (congested) but accepts the tuple.
  bool pusher_woken = false;
  EXPECT_EQ(q->Push(0, T("b", {}), [&]() { pusher_woken = true; }), 0);
  EXPECT_EQ(q->size(), 2u);
  // Draining wakes the blocked pusher; FIFO order.
  TuplePtr first = q->Pull(0, nullptr);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name(), "a");
  EXPECT_TRUE(pusher_woken);
  EXPECT_EQ(q->Pull(0, nullptr)->name(), "b");
}

TEST_F(ElementsTest, QueueShedsOldestWhenOverCapacity) {
  auto* q = graph_.Add<QueueElement>("q", 1);
  q->Push(0, T("a", {}), nullptr);
  q->Push(0, T("b", {}), nullptr);
  EXPECT_EQ(q->dropped(), 1u);
  EXPECT_EQ(q->Pull(0, nullptr)->name(), "b");
}

TEST_F(ElementsTest, TimedPullPushDrainsQueue) {
  auto* q = graph_.Add<QueueElement>("q", 100);
  auto* driver = graph_.Add<TimedPullPush>("drv", &loop_, 0.0);
  std::vector<TuplePtr> out;
  graph_.Connect(q, 0, driver, 0);
  graph_.Connect(driver, 0, Sink(&out), 0);
  for (int i = 0; i < 5; ++i) {
    q->Push(0, T("t", {Value::Int(i)}), nullptr);
  }
  driver->Start();
  loop_.RunUntil(1.0);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0]->field(0).AsInt(), 0);
  EXPECT_EQ(out[4]->field(0).AsInt(), 4);
  // Tuples arriving later re-wake the driver through the pull callback.
  q->Push(0, T("t", {Value::Int(9)}), nullptr);
  loop_.RunUntil(2.0);
  EXPECT_EQ(out.size(), 6u);
}

TEST_F(ElementsTest, TimedPullPushRateLimited) {
  auto* q = graph_.Add<QueueElement>("q", 100);
  auto* driver = graph_.Add<TimedPullPush>("drv", &loop_, 1.0);
  std::vector<TuplePtr> out;
  graph_.Connect(q, 0, driver, 0);
  graph_.Connect(driver, 0, Sink(&out), 0);
  for (int i = 0; i < 10; ++i) {
    q->Push(0, T("t", {}), nullptr);
  }
  driver->Start();
  loop_.RunUntil(3.5);  // ticks at 1,2,3
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(ElementsTest, DemuxRoutesByName) {
  auto* demux = graph_.Add<DemuxByName>("demux");
  std::vector<TuplePtr> a;
  std::vector<TuplePtr> b;
  graph_.Connect(demux, demux->PortFor("alpha"), Sink(&a), 0);
  graph_.Connect(demux, demux->PortFor("beta"), Sink(&b), 0);
  demux->Push(0, T("alpha", {}), nullptr);
  demux->Push(0, T("beta", {}), nullptr);
  demux->Push(0, T("gamma", {}), nullptr);  // unroutable
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(demux->unroutable(), 1u);
  EXPECT_EQ(demux->PortFor("alpha"), demux->PortFor("alpha"));  // idempotent
}

TEST_F(ElementsTest, DemuxPushManyPartitionsByPortInOrder) {
  auto* demux = graph_.Add<DemuxByName>("demux");
  std::vector<TuplePtr> a;
  std::vector<TuplePtr> b;
  std::vector<TuplePtr> fallback;
  graph_.Connect(demux, demux->PortFor("alpha"), Sink(&a), 0);
  graph_.Connect(demux, demux->PortFor("beta"), Sink(&b), 0);
  int dflt = demux->PortFor("other");
  demux->SetDefaultPort(dflt);
  graph_.Connect(demux, dflt, Sink(&fallback), 0);
  std::vector<TuplePtr> batch{T("alpha", {Value::Int(1)}), T("beta", {Value::Int(2)}),
                              T("alpha", {Value::Int(3)}), T("gamma", {Value::Int(4)}),
                              T("beta", {Value::Int(5)})};
  EXPECT_EQ(demux->PushMany(0, batch, nullptr), 1);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0]->field(0).AsInt(), 1);  // intra-name order preserved
  EXPECT_EQ(a[1]->field(0).AsInt(), 3);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0]->field(0).AsInt(), 2);
  EXPECT_EQ(b[1]->field(0).AsInt(), 5);
  ASSERT_EQ(fallback.size(), 1u);  // unknown name takes the default port
  EXPECT_EQ(fallback[0]->field(0).AsInt(), 4);
  EXPECT_EQ(demux->unroutable(), 0u);
}

TEST_F(ElementsTest, DupFansOutToAllOutputs) {
  auto* dup = graph_.Add<DupElement>("dup");
  std::vector<TuplePtr> a;
  std::vector<TuplePtr> b;
  graph_.Connect(dup, 0, Sink(&a), 0);
  graph_.Connect(dup, 1, Sink(&b), 0);
  dup->Push(0, T("t", {}), nullptr);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].get(), b[0].get());  // same shared tuple, no copy
}

TEST_F(ElementsTest, PeriodicSourceEmitsWithExtras) {
  auto* src = graph_.Add<PeriodicSource>("p", &loop_, &rng_, "n0", 2.0, 3, 0.0,
                                         std::vector<Value>{Value::Int(2), Value::Int(3)});
  std::vector<TuplePtr> out;
  graph_.Connect(src, 0, Sink(&out), 0);
  src->Start();
  loop_.RunUntil(100.0);
  ASSERT_EQ(out.size(), 3u);  // count = 3
  const TuplePtr& t = out[0];
  EXPECT_EQ(t->name(), "periodic");
  ASSERT_EQ(t->size(), 4u);
  EXPECT_EQ(t->field(0).AsAddr(), "n0");
  EXPECT_EQ(t->field(1).type(), ValueType::kId);
  EXPECT_EQ(t->field(2).AsInt(), 2);
  EXPECT_EQ(t->field(3).AsInt(), 3);
  // Event ids are unique.
  EXPECT_NE(out[0]->field(1), out[1]->field(1));
}

TEST_F(ElementsTest, PeriodicSourceStopCancels) {
  auto* src = graph_.Add<PeriodicSource>("p", &loop_, &rng_, "n0", 1.0, 0, 0.0,
                                         std::vector<Value>{});
  std::vector<TuplePtr> out;
  graph_.Connect(src, 0, Sink(&out), 0);
  src->Start();
  loop_.RunUntil(3.5);
  size_t seen = out.size();
  EXPECT_GE(seen, 3u);
  src->Stop();
  loop_.RunUntil(10.0);
  EXPECT_EQ(out.size(), seen);
}

TEST_F(ElementsTest, FilterDropsFalse) {
  PelProgram prog;  // field0 > 5
  prog.Emit(PelOp::kPushField, 0);
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(5)));
  prog.Emit(PelOp::kGt);
  auto* f = graph_.Add<FilterElement>("f", Env(), std::move(prog));
  std::vector<TuplePtr> out;
  graph_.Connect(f, 0, Sink(&out), 0);
  f->Push(0, T("t", {Value::Int(3)}), nullptr);
  f->Push(0, T("t", {Value::Int(7)}), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->field(0).AsInt(), 7);
}

TEST_F(ElementsTest, ExtendAppendsComputedField) {
  PelProgram prog;  // field0 + 1
  prog.Emit(PelOp::kPushField, 0);
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(1)));
  prog.Emit(PelOp::kAdd);
  auto* e = graph_.Add<ExtendElement>("e", Env(), std::move(prog));
  std::vector<TuplePtr> out;
  graph_.Connect(e, 0, Sink(&out), 0);
  e->Push(0, T("t", {Value::Int(41)}), nullptr);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0]->size(), 2u);
  EXPECT_EQ(out[0]->field(1).AsInt(), 42);
}

TEST_F(ElementsTest, ProjectBuildsHeadTuple) {
  std::vector<PelProgram> programs(2);
  programs[0].Emit(PelOp::kPushField, 1);
  programs[1].Emit(PelOp::kPushConst, programs[1].AddConst(Value::Str("k")));
  auto* p = graph_.Add<ProjectElement>("p", Env(), "head", std::move(programs));
  std::vector<TuplePtr> out;
  graph_.Connect(p, 0, Sink(&out), 0);
  p->Push(0, T("t", {Value::Int(1), Value::Int(2)}), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->name(), "head");
  EXPECT_EQ(out[0]->field(0).AsInt(), 2);
  EXPECT_EQ(out[0]->field(1).AsStr(), "k");
}

TEST_F(ElementsTest, JoinEmitsConcatenatedMatches) {
  TableSpec spec;
  spec.name = "nbr";
  spec.key_positions = {0, 1};
  Table table(spec, &loop_);
  table.Insert(T("nbr", {Value::Int(1), Value::Str("a")}));
  table.Insert(T("nbr", {Value::Int(1), Value::Str("b")}));
  table.Insert(T("nbr", {Value::Int(2), Value::Str("c")}));
  PelProgram key;  // event field 0 == table col 0
  key.Emit(PelOp::kPushField, 0);
  std::vector<JoinKey> keys;
  keys.push_back(JoinKey{0, std::move(key)});
  auto* join = graph_.Add<JoinElement>("join", Env(), &table, std::move(keys), "j");
  std::vector<TuplePtr> out;
  graph_.Connect(join, 0, Sink(&out), 0);
  join->Push(0, T("ev", {Value::Int(1), Value::Int(99)}), nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->name(), "j");
  EXPECT_EQ(out[0]->size(), 4u);  // 2 event + 2 table fields
  EXPECT_EQ(out[0]->field(1).AsInt(), 99);
  // Match order is index order (unspecified); compare as a set.
  std::vector<std::string> matched = {out[0]->field(3).AsStr(), out[1]->field(3).AsStr()};
  std::sort(matched.begin(), matched.end());
  EXPECT_EQ(matched, (std::vector<std::string>{"a", "b"}));
  // The join installed a secondary index for its key columns.
  EXPECT_TRUE(table.HasIndex({0}));
}

TEST_F(ElementsTest, AntiJoinPassesOnlyWhenNoMatch) {
  TableSpec spec;
  spec.name = "t";
  spec.key_positions = {0};
  Table table(spec, &loop_);
  table.Insert(T("t", {Value::Int(1)}));
  PelProgram key;
  key.Emit(PelOp::kPushField, 0);
  std::vector<JoinKey> keys;
  keys.push_back(JoinKey{0, std::move(key)});
  auto* aj = graph_.Add<AntiJoinElement>("aj", Env(), &table, std::move(keys));
  std::vector<TuplePtr> out;
  graph_.Connect(aj, 0, Sink(&out), 0);
  aj->Push(0, T("ev", {Value::Int(1)}), nullptr);  // match exists: blocked
  aj->Push(0, T("ev", {Value::Int(2)}), nullptr);  // no match: passes
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->field(0).AsInt(), 2);
}

TEST_F(ElementsTest, AggWrapMinSelectsWinningTuple) {
  auto* agg = graph_.Add<AggWrapElement>("agg", Env(), AggKind::kMin, 1, "out", false,
                                         std::vector<PelProgram>{});
  std::vector<TuplePtr> out;
  graph_.Connect(agg, 0, Sink(&out), 0);
  agg->Begin(T("ev", {}));
  agg->Push(0, T("pre", {Value::Str("b"), Value::Int(5)}), nullptr);
  agg->Push(0, T("pre", {Value::Str("a"), Value::Int(3)}), nullptr);
  agg->Push(0, T("pre", {Value::Str("c"), Value::Int(9)}), nullptr);
  agg->Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->name(), "out");
  // min selection carries the winner's other fields.
  EXPECT_EQ(out[0]->field(0).AsStr(), "a");
  EXPECT_EQ(out[0]->field(1).AsInt(), 3);
}

TEST_F(ElementsTest, AggWrapCountAndEmptyEmission) {
  std::vector<PelProgram> empty_programs(1);
  empty_programs[0].Emit(PelOp::kPushField, 0);  // group field from event
  auto* agg = graph_.Add<AggWrapElement>("agg", Env(), AggKind::kCount, 1, "out", true,
                                         std::move(empty_programs));
  std::vector<TuplePtr> out;
  graph_.Connect(agg, 0, Sink(&out), 0);
  // Two candidates -> count 2.
  agg->Begin(T("ev", {Value::Str("g")}));
  agg->Push(0, T("pre", {Value::Str("g"), Value::Int(1)}), nullptr);
  agg->Push(0, T("pre", {Value::Str("g"), Value::Int(1)}), nullptr);
  agg->Flush();
  // No candidates -> count 0 via the event-derived fields.
  agg->Begin(T("ev", {Value::Str("h")}));
  agg->Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->field(1).AsInt(), 2);
  EXPECT_EQ(out[1]->field(0).AsStr(), "h");
  EXPECT_EQ(out[1]->field(1).AsInt(), 0);
}

TEST_F(ElementsTest, AggWrapSumAccumulates) {
  auto* agg = graph_.Add<AggWrapElement>("agg", Env(), AggKind::kSum, 0, "out", false,
                                         std::vector<PelProgram>{});
  std::vector<TuplePtr> out;
  graph_.Connect(agg, 0, Sink(&out), 0);
  agg->Begin(T("ev", {}));
  for (int i = 1; i <= 4; ++i) {
    agg->Push(0, T("pre", {Value::Int(i)}), nullptr);
  }
  agg->Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->field(0).AsInt(), 10);
}

TEST_F(ElementsTest, RuleDriverBracketsAggregate) {
  auto* agg = graph_.Add<AggWrapElement>("agg", Env(), AggKind::kMax, 0, "out", false,
                                         std::vector<PelProgram>{});
  auto* driver = graph_.Add<RuleDriver>("rule:x", nullptr);
  driver->set_agg(agg);
  // driver -> agg directly: the "chain" degenerates to identity.
  graph_.Connect(driver, 0, agg, 0);
  std::vector<TuplePtr> out;
  graph_.Connect(agg, 0, Sink(&out), 0);
  driver->Push(0, T("pre", {Value::Int(5)}), nullptr);
  EXPECT_EQ(driver->fires(), 1u);
  ASSERT_EQ(out.size(), 1u);  // flushed at end of event
  EXPECT_EQ(out[0]->field(0).AsInt(), 5);
}

TEST_F(ElementsTest, InsertAndDeleteElements) {
  TableSpec spec;
  spec.name = "t";
  spec.key_positions = {0};
  Table table(spec, &loop_);
  auto* ins = graph_.Add<InsertElement>("ins", &table);
  auto* del = graph_.Add<DeleteElement>("del", &table);
  ins->Push(0, T("t", {Value::Int(1), Value::Int(2)}), nullptr);
  EXPECT_EQ(table.size(), 1u);
  del->Push(0, T("t", {Value::Int(1), Value::Int(999)}), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST_F(ElementsTest, DedupSuppressesRepeats) {
  auto* dd = graph_.Add<DedupElement>("dd", 100);
  std::vector<TuplePtr> out;
  graph_.Connect(dd, 0, Sink(&out), 0);
  dd->Push(0, T("t", {Value::Int(1)}), nullptr);
  dd->Push(0, T("t", {Value::Int(1)}), nullptr);
  dd->Push(0, T("t", {Value::Int(2)}), nullptr);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(ElementsTest, TableAggWatcherEmitsOnChange) {
  TableSpec spec;
  spec.name = "succDist";
  spec.key_positions = {1};
  Table table(spec, &loop_);
  auto* watcher = graph_.Add<TableAggWatcher>("w", &table, std::vector<size_t>{0},
                                              AggKind::kMin, 2, "bestSuccDist");
  std::vector<TuplePtr> out;
  graph_.Connect(watcher, 0, Sink(&out), 0);
  watcher->Attach();
  auto row = [](int64_t s, int64_t d) {
    return Tuple::Make("succDist", {Value::Str("n0"), Value::Int(s), Value::Int(d)});
  };
  table.Insert(row(1, 50));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->name(), "bestSuccDist");
  EXPECT_EQ(out[0]->field(1).AsInt(), 50);
  table.Insert(row(2, 80));  // min unchanged: no emission
  EXPECT_EQ(out.size(), 1u);
  table.Insert(row(3, 10));  // new min
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1]->field(1).AsInt(), 10);
}

TEST_F(ElementsTest, GraphBookkeeping) {
  Graph g;
  auto* a = g.Add<DupElement>("a");
  auto* b = g.Add<DiscardElement>("b");
  g.Connect(a, 0, b, 0);
  EXPECT_EQ(g.num_elements(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_GT(g.ApproxBytes(), 0u);
  std::vector<std::string> names = g.ElementNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
}

}  // namespace
}  // namespace p2
