#include <gtest/gtest.h>

#include "src/harness/churn.h"
#include "src/harness/metrics.h"
#include "src/harness/workload.h"

namespace p2 {
namespace {

TEST(Cdf, QuantilesAndFractions) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(static_cast<double>(i));
  }
  EXPECT_EQ(cdf.count(), 100u);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 50.5);
  EXPECT_NEAR(cdf.Quantile(0.5), 50.5, 1.0);
  EXPECT_NEAR(cdf.Quantile(0.95), 95.0, 1.5);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(50.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(1000.0), 1.0);
  auto pts = cdf.Points(5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_LE(pts.front().first, pts.back().first);
}

TEST(Cdf, EmptyIsSafe) {
  Cdf cdf;
  EXPECT_EQ(cdf.Quantile(0.5), 0.0);
  EXPECT_EQ(cdf.FractionBelow(1.0), 0.0);
  EXPECT_TRUE(cdf.Points(3).empty());
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(-5);   // clamps to first bucket
  h.Add(100);  // clamps to last bucket
  EXPECT_EQ(h.total(), 5u);
  auto freqs = h.Frequencies();
  ASSERT_EQ(freqs.size(), 10u);
  EXPECT_DOUBLE_EQ(freqs[0].second, 0.4);  // 0.5 and -5
  EXPECT_DOUBLE_EQ(freqs[1].second, 0.4);  // 1.5, 1.7
  EXPECT_DOUBLE_EQ(freqs[9].second, 0.2);  // 100
  double sum = 0;
  for (auto& [edge, f] : freqs) {
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RateSampler, ComputesWindowedRates) {
  RateSampler s;
  EXPECT_EQ(s.Sample(0.0, 0.0), 0.0);  // priming
  EXPECT_DOUBLE_EQ(s.Sample(10.0, 500.0), 50.0);
  EXPECT_DOUBLE_EQ(s.Sample(20.0, 500.0), 0.0);
}

TEST(FormatRow, PadsCells) {
  std::string row = FormatRow({"a", "bb"}, 4);
  EXPECT_EQ(row, "a   bb  ");
}

TEST(Testbed, GroundTruthSuccessorIsClockwiseFirst) {
  TestbedConfig cfg;
  cfg.num_nodes = 6;
  cfg.seed = 11;
  cfg.chord.finger_fix_period_s = 2.0;
  cfg.chord.stabilize_period_s = 2.0;
  cfg.chord.ping_period_s = 2.0;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(40.0);
  // The ground-truth successor of (node id + 1) is the next node on the
  // ring; verify antisymmetry: every node is the ground truth of the key
  // just past its predecessor.
  for (size_t i = 0; i < 6; ++i) {
    Uint160 id = Uint160::HashOf("n" + std::to_string(i));
    EXPECT_EQ(tb.GroundTruthSuccessor(id), "n" + std::to_string(i));
  }
}

TEST(Testbed, ChurnDriverKeepsPopulationConstant) {
  TestbedConfig cfg;
  cfg.num_nodes = 6;
  cfg.seed = 13;
  cfg.chord.finger_fix_period_s = 2.0;
  cfg.chord.stabilize_period_s = 2.0;
  cfg.chord.ping_period_s = 2.0;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(40.0);
  ChurnConfig cc;
  cc.session_mean_s = 30.0;  // aggressive: several deaths in 2 minutes
  cc.seed = 99;
  ChurnDriver churn(&tb, cc);
  churn.Start();
  tb.RunFor(120.0);
  EXPECT_EQ(tb.num_live(), 6u);
  EXPECT_GT(churn.deaths(), 5u);
  // Bandwidth accounting stays monotone across deaths.
  uint64_t bytes1 = tb.TotalMaintBytesOut();
  tb.RunFor(10.0);
  EXPECT_GE(tb.TotalMaintBytesOut(), bytes1);
}

}  // namespace
}  // namespace p2
