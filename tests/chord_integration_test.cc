#include <gtest/gtest.h>

#include "src/harness/workload.h"
#include "src/overlays/chord.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

// Fast timers so rings converge in little virtual time, preserving the
// required ordering ping < succ TTL < stabilize (see ChordConfig docs).
ChordConfig FastChord() {
  ChordConfig c;
  c.finger_fix_period_s = 2.0;
  c.stabilize_period_s = 2.5;
  c.ping_period_s = 0.8;
  c.succ_lifetime_s = 1.7;
  c.finger_lifetime_s = 60.0;
  return c;
}

TEST(ChordProgram, ParsesAndCountsRules) {
  size_t rules = ChordRuleCount(FastChord());
  // The paper reports 47 rules for the full spec; ours lands in the same
  // ballpark (facts excluded from the count).
  EXPECT_GE(rules, 40u);
  EXPECT_LE(rules, 52u);
}

TEST(ChordSingleNode, FormsSelfRing) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 3);
  auto t = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = t.get();
  nc.seed = 1;
  ChordNode node(nc, FastChord(), "");
  node.Start();
  loop.RunUntil(10.0);
  auto best = node.BestSuccessor();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->second, "n0");  // own successor
  EXPECT_EQ(best->first, node.id());
  // A lookup on a singleton ring answers with the node itself.
  bool answered = false;
  node.OnLookupResult([&](const ChordNode::LookupResult& r) {
    EXPECT_EQ(r.successor_addr, "n0");
    answered = true;
  });
  node.Lookup(Uint160::HashOf("some key"));
  loop.RunUntil(12.0);
  EXPECT_TRUE(answered);
}

TEST(ChordTwoNodes, JoinEstablishesMutualRing) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 3);
  auto t0 = net.MakeTransport("n0", 0);
  auto t1 = net.MakeTransport("n1", 1);
  P2NodeConfig c0;
  c0.executor = &loop;
  c0.transport = t0.get();
  c0.seed = 1;
  P2NodeConfig c1;
  c1.executor = &loop;
  c1.transport = t1.get();
  c1.seed = 2;
  ChordNode a(c0, FastChord(), "");
  ChordNode b(c1, FastChord(), "n0");
  a.Start();
  loop.RunUntil(3.0);
  b.Start();
  loop.RunUntil(40.0);
  auto best_a = a.BestSuccessor();
  auto best_b = b.BestSuccessor();
  ASSERT_TRUE(best_a.has_value());
  ASSERT_TRUE(best_b.has_value());
  // In a two-node ring each node's best successor is the other.
  EXPECT_EQ(best_a->second, "n1");
  EXPECT_EQ(best_b->second, "n0");
  // Predecessors converge too.
  auto pred_a = a.Predecessor();
  ASSERT_TRUE(pred_a.has_value());
  EXPECT_EQ(pred_a->second, "n1");
}

class ChordRingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChordRingTest, RingConvergesAndLookupsAreConsistent) {
  TestbedConfig cfg;
  cfg.num_nodes = GetParam();
  cfg.seed = 42 + GetParam();
  cfg.chord = FastChord();
  cfg.join_stagger_s = 0.5;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(/*settle_deadline_s=*/0.5 * GetParam() + 60.0);
  EXPECT_EQ(tb.num_live(), GetParam());
  EXPECT_EQ(tb.JoinedFraction(), 1.0);
  EXPECT_GE(tb.RingConsistencyFraction(), 0.9);

  for (int i = 0; i < 30; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  tb.RunFor(20.0);
  size_t completed = 0;
  size_t consistent = 0;
  for (const auto& rec : tb.lookups()) {
    if (rec.completed) {
      ++completed;
      consistent += rec.consistent ? 1 : 0;
      EXPECT_LT(rec.latency_s, 10.0);
      EXPECT_LE(rec.hops, 12);
    }
  }
  EXPECT_GE(completed, 27u);  // allow a couple of in-flight stragglers
  EXPECT_GE(static_cast<double>(consistent), 0.9 * static_cast<double>(completed));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordRingTest, ::testing::Values(4u, 8u, 16u));

TEST(ChordMaintenance, IdleTrafficIsBounded) {
  TestbedConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 7;
  cfg.chord = FastChord();
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(60.0);
  uint64_t before = tb.TotalMaintBytesOut();
  tb.RunFor(60.0);
  uint64_t after = tb.TotalMaintBytesOut();
  double per_node_bw =
      static_cast<double>(after - before) / 60.0 / static_cast<double>(tb.num_live());
  // With 2-second timers the fast-config maintenance runs hotter than the
  // paper's (10/15s) deployment; it must still be modest.
  EXPECT_GT(per_node_bw, 10.0);
  EXPECT_LT(per_node_bw, 10000.0);
}

TEST(ChordChurn, NodeDeathHealsRing) {
  TestbedConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 21;
  cfg.chord = FastChord();
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(80.0);
  ASSERT_GE(tb.RingConsistencyFraction(), 0.9);
  // Kill-and-replace three nodes.
  tb.ReplaceNode(2);
  tb.RunFor(5.0);
  tb.ReplaceNode(5);
  tb.RunFor(5.0);
  tb.ReplaceNode(7);
  // Give the ring time to stabilize: successors expire, pings fail over.
  tb.RunFor(120.0);
  EXPECT_EQ(tb.num_live(), 8u);
  EXPECT_GE(tb.JoinedFraction(), 0.99);
  EXPECT_GE(tb.RingConsistencyFraction(), 0.74);
  // Lookups still complete.
  for (int i = 0; i < 10; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  tb.RunFor(20.0);
  size_t completed = 0;
  for (const auto& rec : tb.lookups()) {
    completed += rec.completed ? 1 : 0;
  }
  EXPECT_GE(completed, 8u);
}

TEST(ChordMemory, WorkingSetWithinPaperBallpark) {
  TestbedConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = 3;
  cfg.chord = FastChord();
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(60.0);
  double mem = tb.MeanNodeMemoryBytes();
  EXPECT_GT(mem, 10.0 * 1024);        // a real dataflow lives here
  EXPECT_LT(mem, 4.0 * 1024 * 1024);  // paper: ~800 kB working set
}

}  // namespace
}  // namespace p2
