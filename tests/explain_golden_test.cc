// Golden-plan tests: the compiled plan for each bundled overlay is pinned
// byte-for-byte against tests/goldens/plan_<overlay>.txt. A diff here
// means the planner changed its output — trigger selection, join order,
// fanout estimates, index choice or head routing. If the change is
// intentional, regenerate with:
//
//   for o in chord gossip narada pathvector; do
//     build/p2run --overlay $o --explain > tests/goldens/plan_$o.txt
//   done
//
// The dumps are deterministic: plans are built against empty tables, so
// every fanout estimate comes from the static spec priors.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/cli/scenario.h"

namespace p2 {
namespace {

std::string ReadGolden(const std::string& overlay) {
  std::string path = std::string(P2_SOURCE_DIR) + "/tests/goldens/plan_" + overlay + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ExplainGoldenTest : public ::testing::TestWithParam<OverlayKind> {};

TEST_P(ExplainGoldenTest, PlanMatchesGolden) {
  OverlayKind kind = GetParam();
  EXPECT_EQ(ExplainOverlayPlan(kind), ReadGolden(OverlayKindName(kind)));
}

TEST_P(ExplainGoldenTest, DumpIsDeterministic) {
  OverlayKind kind = GetParam();
  EXPECT_EQ(ExplainOverlayPlan(kind), ExplainOverlayPlan(kind));
}

INSTANTIATE_TEST_SUITE_P(AllOverlays, ExplainGoldenTest,
                         ::testing::Values(OverlayKind::kChord, OverlayKind::kGossip,
                                           OverlayKind::kNarada, OverlayKind::kPathVector),
                         [](const ::testing::TestParamInfo<OverlayKind>& info) {
                           return std::string(OverlayKindName(info.param));
                         });

TEST(ExplainLegacyTest, LegacyModeDumpsLegacyPlans) {
  std::string dump = ExplainOverlayPlan(OverlayKind::kPathVector, PlannerMode::kLegacy);
  EXPECT_NE(dump.find("plan mode=legacy"), std::string::npos);
  EXPECT_EQ(dump.find("delta-remove"), std::string::npos);
  EXPECT_NE(dump.find("(full-scan)"), std::string::npos);
}

}  // namespace
}  // namespace p2
