#include <gtest/gtest.h>

#include "src/sim/network.h"

namespace p2 {
namespace {

TEST(Topology, IntraDomainLatency) {
  Topology topo(TopologyConfig{});
  // Nodes 0 and 10 share domain 0 (i mod 10).
  EXPECT_DOUBLE_EQ(topo.LatencyBetween(0, 10), 0.004);
  EXPECT_DOUBLE_EQ(topo.LatencyBetween(0, 0), 0.0);
}

TEST(Topology, InterDomainLatency) {
  Topology topo(TopologyConfig{});
  // Nodes 0 and 1 are in different domains: 2ms + 100ms + 2ms.
  EXPECT_DOUBLE_EQ(topo.LatencyBetween(0, 1), 0.104);
  EXPECT_DOUBLE_EQ(topo.LatencyBetween(1, 0), 0.104);
}

TEST(Topology, SerializationDelayScalesWithSize) {
  Topology topo(TopologyConfig{});
  // 1000 bytes over two 10 Mb/s access links = 2 * 8000/10e6 = 1.6 ms,
  // plus 8000/100e6 = 0.08 ms on the inter-domain link.
  double intra = topo.SerializationDelay(0, 10, 1000);
  double inter = topo.SerializationDelay(0, 1, 1000);
  EXPECT_NEAR(intra, 0.0016, 1e-9);
  EXPECT_NEAR(inter, 0.00168, 1e-9);
  EXPECT_DOUBLE_EQ(topo.SerializationDelay(3, 3, 1000), 0.0);
}

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : net_(&loop_, Topology(TopologyConfig{}), 1) {}
  SimEventLoop loop_;
  SimNetwork net_;
};

TEST_F(SimNetworkTest, DeliversWithTopologyLatency) {
  auto a = net_.MakeTransport("a", 0);
  auto b = net_.MakeTransport("b", 1);  // different domain
  double delivered_at = -1;
  b->SetReceiver([&](const std::string& from, const std::vector<uint8_t>& bytes) {
    EXPECT_EQ(from, "a");
    EXPECT_EQ(bytes.size(), 3u);
    delivered_at = loop_.Now();
  });
  a->SendTo("b", {1, 2, 3}, false);
  loop_.RunAll();
  // 104 ms propagation + serialization of 3+28 bytes.
  EXPECT_GT(delivered_at, 0.104);
  EXPECT_LT(delivered_at, 0.106);
}

TEST_F(SimNetworkTest, CountsBytesWithHeaderOverhead) {
  auto a = net_.MakeTransport("a", 0);
  auto b = net_.MakeTransport("b", 1);
  a->SendTo("b", std::vector<uint8_t>(100, 0), false);
  a->SendTo("b", std::vector<uint8_t>(50, 0), true);
  loop_.RunAll();
  EXPECT_EQ(a->stats().msgs_out, 2u);
  EXPECT_EQ(a->stats().bytes_out, 100u + 50u + 2 * kUdpIpHeaderBytes);
  EXPECT_EQ(a->stats().maint_bytes_out, 100u + kUdpIpHeaderBytes);
  EXPECT_EQ(a->stats().lookup_bytes_out, 50u + kUdpIpHeaderBytes);
  EXPECT_EQ(b->stats().msgs_in, 2u);
  EXPECT_EQ(b->stats().bytes_in, a->stats().bytes_out);
}

TEST_F(SimNetworkTest, SendToDeadNodeVanishes) {
  auto a = net_.MakeTransport("a", 0);
  {
    auto b = net_.MakeTransport("b", 1);
    b->SetReceiver([](const std::string&, const std::vector<uint8_t>&) {
      FAIL() << "delivered to dead node";
    });
  }  // b destroyed: unregistered
  a->SendTo("b", {1}, false);
  loop_.RunAll();
  EXPECT_EQ(net_.delivered(), 0u);
  // Sender still counted the attempt (it cannot know).
  EXPECT_EQ(a->stats().msgs_out, 1u);
}

TEST_F(SimNetworkTest, NodeDyingInFlightDropsPacket) {
  auto a = net_.MakeTransport("a", 0);
  auto b = net_.MakeTransport("b", 1);
  int got = 0;
  b->SetReceiver([&](const std::string&, const std::vector<uint8_t>&) { ++got; });
  a->SendTo("b", {1}, false);
  loop_.ScheduleAfter(0.01, [&]() { b.reset(); });  // dies before 104ms delivery
  loop_.RunAll();
  EXPECT_EQ(got, 0);
}

TEST_F(SimNetworkTest, LossRateDropsApproximately) {
  auto a = net_.MakeTransport("a", 0);
  auto b = net_.MakeTransport("b", 10);  // same domain: fast
  int got = 0;
  b->SetReceiver([&](const std::string&, const std::vector<uint8_t>&) { ++got; });
  net_.set_loss_rate(0.5);
  for (int i = 0; i < 1000; ++i) {
    a->SendTo("b", {1}, false);
  }
  loop_.RunAll();
  EXPECT_GT(got, 400);
  EXPECT_LT(got, 600);
}

TEST_F(SimNetworkTest, AddressReuseAfterDeath) {
  auto a = net_.MakeTransport("a", 0);
  a.reset();
  auto a2 = net_.MakeTransport("a", 5);
  EXPECT_EQ(a2->local_addr(), "a");
}

}  // namespace
}  // namespace p2
