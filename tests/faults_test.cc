// Fault-injection layer: every axis — asymmetric loss, healing partitions,
// latency spikes, slow nodes, corruption, byzantine responders — behaves
// as specified at the fabric level, and every axis preserves shard-count
// determinism (the same seed produces identical per-node outcomes at
// --shards 1 and --shards 4).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cli/scenario.h"
#include "src/harness/faults.h"
#include "src/harness/workload.h"
#include "src/net/stack/frame.h"
#include "src/net/wire.h"
#include "src/obs/registry.h"
#include "src/overlays/gossip.h"
#include "src/runtime/tuple.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

TEST(FaultParsers, AcceptAndReject) {
  AsymLossRule rule;
  EXPECT_TRUE(ParseAsymLossSpec("0:3:0.25", &rule));
  EXPECT_EQ(rule.src_domain, 0u);
  EXPECT_EQ(rule.dst_domain, 3u);
  EXPECT_DOUBLE_EQ(rule.rate, 0.25);
  EXPECT_FALSE(ParseAsymLossSpec("0:3", &rule));
  EXPECT_FALSE(ParseAsymLossSpec("0:3:1.5", &rule));
  EXPECT_FALSE(ParseAsymLossSpec("a:3:0.5", &rule));

  PartitionSpec part;
  EXPECT_TRUE(ParsePartitionSpec("10:30:0", &part));
  EXPECT_DOUBLE_EQ(part.start, 10);
  EXPECT_DOUBLE_EQ(part.duration, 30);
  EXPECT_EQ(part.domains, std::vector<size_t>({0}));
  EXPECT_TRUE(ParsePartitionSpec("0:5:0-2,7", &part));
  EXPECT_EQ(part.domains, std::vector<size_t>({0, 1, 2, 7}));
  EXPECT_FALSE(ParsePartitionSpec("10:0:0", &part));   // zero duration
  EXPECT_FALSE(ParsePartitionSpec("10:30:", &part));   // empty set
  EXPECT_FALSE(ParsePartitionSpec("10:30:2-1", &part));  // inverted range

  LatencySpikeSpec spike;
  EXPECT_TRUE(ParseLatencySpikeSpec("5:20:1:3.5", &spike));
  EXPECT_DOUBLE_EQ(spike.factor, 3.5);
  EXPECT_FALSE(ParseLatencySpikeSpec("5:20:1:0.5", &spike));  // factor < 1
  EXPECT_FALSE(ParseLatencySpikeSpec("5:20:1", &spike));

  double frac = 0, factor = 0;
  EXPECT_TRUE(ParseSlowNodesSpec("0.25:4", &frac, &factor));
  EXPECT_DOUBLE_EQ(frac, 0.25);
  EXPECT_DOUBLE_EQ(factor, 4);
  EXPECT_FALSE(ParseSlowNodesSpec("1.5:4", &frac, &factor));
  EXPECT_FALSE(ParseSlowNodesSpec("0.25:0.5", &frac, &factor));
}

TEST(FaultInjectorTest, PerSlotSelectionsAreDeterministicHashes) {
  FaultPlan plan;
  plan.slow_fraction = 0.5;
  plan.slow_factor = 4;
  plan.byzantine_fraction = 0.5;
  FaultInjector a(plan, 99);
  FaultInjector b(plan, 99);
  size_t slow = 0, byz = 0;
  for (size_t slot = 0; slot < 1000; ++slot) {
    EXPECT_EQ(a.IsSlowNode(slot), b.IsSlowNode(slot));
    EXPECT_EQ(a.IsByzantineNode(slot), b.IsByzantineNode(slot));
    slow += a.IsSlowNode(slot) ? 1 : 0;
    byz += a.IsByzantineNode(slot) ? 1 : 0;
  }
  // A 0.5 fraction over 1000 slots lands near 500 (pure-hash binomial).
  EXPECT_GT(slow, 400u);
  EXPECT_LT(slow, 600u);
  EXPECT_GT(byz, 400u);
  EXPECT_LT(byz, 600u);
  EXPECT_EQ(a.CountByzantine(1000), byz);

  // Degenerate fractions are exact.
  FaultPlan none;
  none.slow_factor = 4;
  FaultInjector zero(none, 99);
  FaultPlan all;
  all.slow_fraction = 1;
  all.slow_factor = 4;
  all.byzantine_fraction = 1;
  FaultInjector one(all, 99);
  for (size_t slot = 0; slot < 64; ++slot) {
    EXPECT_FALSE(zero.IsSlowNode(slot));
    EXPECT_FALSE(zero.IsByzantineNode(slot));
    EXPECT_TRUE(one.IsSlowNode(slot));
    EXPECT_TRUE(one.IsByzantineNode(slot));
  }
}

// Minimal two-endpoint fabric: topo slots 0 and 1 sit in domains 0 and 1
// of the default transit-stub topology.
struct TwoNodeFabric {
  SimEventLoop loop;
  SimNetwork net;
  std::unique_ptr<SimTransport> a;
  std::unique_ptr<SimTransport> b;
  size_t a_got = 0;
  size_t b_got = 0;
  double b_last_arrival = -1;

  explicit TwoNodeFabric(uint64_t seed = 7)
      : net(&loop, Topology(TopologyConfig{}), seed) {
    a = net.MakeTransport("a", 0);
    b = net.MakeTransport("b", 1);
    a->SetReceiver([this](const std::string&, const std::vector<uint8_t>&) { ++a_got; });
    b->SetReceiver([this](const std::string&, const std::vector<uint8_t>&) {
      ++b_got;
      b_last_arrival = loop.Now();
    });
  }
};

std::vector<uint8_t> TestPayload() {
  return FrameTuple(*Tuple::Make("probe", {Value::Addr("a"), Value::Addr("b")}));
}

TEST(FaultInjectorTest, OneWayLossIsActuallyAsymmetric) {
  FaultPlan plan;
  plan.asym_loss.push_back({/*src_domain=*/0, /*dst_domain=*/1, /*rate=*/1.0});
  FaultInjector inj(plan, 3);
  TwoNodeFabric f;
  f.net.SetFaults(&inj);
  for (int i = 0; i < 50; ++i) {
    f.a->SendTo("b", TestPayload(), TrafficClass::kMaintenance);
    f.b->SendTo("a", TestPayload(), TrafficClass::kMaintenance);
  }
  f.loop.RunUntil(10.0);
  EXPECT_EQ(f.b_got, 0u);   // a -> b: every datagram dropped
  EXPECT_EQ(f.a_got, 50u);  // b -> a: untouched
}

TEST(FaultInjectorTest, PartitionHealsAtTheExactVirtualSecond) {
  FaultPlan plan;
  PartitionSpec part;
  part.start = 5;
  part.duration = 10;
  part.domains = {0};
  plan.partitions.push_back(part);
  FaultInjector inj(plan, 3);
  inj.Arm(0.0);
  TwoNodeFabric f;
  f.net.SetFaults(&inj);
  // The window is half-open [5, 15): the send at 4.999 and the send at
  // exactly 15.0 get through, everything in between is cut.
  for (double at : {4.999, 5.0, 9.0, 14.999, 15.0, 16.0}) {
    f.loop.ScheduleAfter(at, [&f]() {
      f.a->SendTo("b", TestPayload(), TrafficClass::kMaintenance);
    });
  }
  f.loop.RunUntil(20.0);
  EXPECT_EQ(f.b_got, 3u);
  EXPECT_TRUE(inj.PartitionActive(5.0));
  EXPECT_FALSE(inj.PartitionActive(15.0));
  EXPECT_TRUE(inj.PartitionSevers(6.0, 0, 1));
  EXPECT_FALSE(inj.PartitionSevers(6.0, 1, 2));  // both outside the group
}

TEST(FaultInjectorTest, LatencySpikeMultipliesDelay) {
  double plain_arrival;
  {
    TwoNodeFabric f;
    f.a->SendTo("b", TestPayload(), TrafficClass::kMaintenance);
    f.loop.RunUntil(5.0);
    ASSERT_EQ(f.b_got, 1u);
    plain_arrival = f.b_last_arrival;
  }
  FaultPlan plan;
  LatencySpikeSpec spike;
  spike.start = 0;
  spike.duration = 100;
  spike.domain = 0;
  spike.factor = 3;
  plan.latency_spikes.push_back(spike);
  FaultInjector inj(plan, 3);
  inj.Arm(0.0);
  TwoNodeFabric f;
  f.net.SetFaults(&inj);
  f.a->SendTo("b", TestPayload(), TrafficClass::kMaintenance);
  f.loop.RunUntil(5.0);
  ASSERT_EQ(f.b_got, 1u);
  EXPECT_NEAR(f.b_last_arrival, 3.0 * plain_arrival, 1e-9);
}

TEST(FaultInjectorTest, CorruptionFuzzNeverCrashesTheParsers) {
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  FaultInjector inj(plan, 11);
  Rng rng(1234);
  std::vector<uint8_t> tuple_frame = TestPayload();
  // A DATA stack frame wrapping the tuple, plus a bare ACK frame: the
  // corruption path exercises both the strict stack decoder and the plain
  // tuple unframer.
  StackFrame data;
  data.has_data = true;
  data.epoch = 1;
  data.seq = 1;
  std::vector<uint8_t> stack_frame = EncodeStackFrame(data, tuple_frame);
  StackFrame ack;
  ack.has_ack = true;
  ack.ack_epoch = 1;
  ack.cum_ack = 3;
  std::vector<uint8_t> ack_frame = EncodeStackFrame(ack);
  for (int i = 0; i < 10000; ++i) {
    std::vector<uint8_t> bytes;
    switch (i % 3) {
      case 0: bytes = tuple_frame; break;
      case 1: bytes = stack_frame; break;
      default: bytes = ack_frame; break;
    }
    inj.MaybeCorrupt(0.0, /*lane=*/0, &rng, &bytes);
    // The receive chain must classify the damage without crashing: either
    // a clean reject (nullopt) or a structurally valid parse.
    if (LooksLikeStackFrame(bytes)) {
      std::optional<StackFrame> f = DecodeStackFrame(bytes);
      if (f.has_value() && f->has_data) {
        (void)UnframeTuple(f->payload);
      }
    } else {
      (void)UnframeTuple(bytes);
    }
  }
}

TEST(FaultInjectorTest, CorruptionCountersClassifyEveryHit) {
  obs::Registry registry(2);
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  FaultInjector inj(plan, 11);
  inj.BindObs(&registry);
  TwoNodeFabric f;
  f.net.SetFaults(&inj);
  size_t parse_failures = 0;
  f.b->SetReceiver([&](const std::string&, const std::vector<uint8_t>& bytes) {
    ++f.b_got;
    parse_failures += UnframeTuple(bytes).has_value() ? 0 : 1;
  });
  for (int i = 0; i < 300; ++i) {
    f.a->SendTo("b", TestPayload(), TrafficClass::kMaintenance);
  }
  f.loop.RunUntil(30.0);
  obs::Snapshot snap = registry.TakeSnapshot();
  uint64_t injected = snap.counters["p2_corrupt_injected_total"];
  uint64_t dropped = snap.counters["p2_corrupt_dropped_total"];
  uint64_t passed = snap.counters["p2_corrupt_passed_total"];
  EXPECT_EQ(injected, 300u);
  EXPECT_EQ(injected, dropped + passed);
  // The frame checksum plays UDP's role: every bit-flipped frame must fail
  // unmarshal (a 32-bit FNV collision is the only escape, and this run is
  // deterministic), so nothing corrupted ever reaches the dataflow.
  EXPECT_EQ(dropped, 300u);
  EXPECT_EQ(passed, 0u);
  // The fabric still delivers damaged datagrams; the classification must
  // agree with what the receiver's parser actually rejects.
  EXPECT_EQ(f.b_got, 300u);
  EXPECT_EQ(parse_failures, dropped);
}

TEST(FaultInjectorTest, DilatedExecutorStretchesTimerDelays) {
  SimEventLoop loop;
  DilatedExecutor slow(&loop, 4.0);
  double fired_at = -1;
  slow.ScheduleAfter(1.0, [&]() { fired_at = loop.Now(); });
  loop.RunUntil(10.0);
  EXPECT_NEAR(fired_at, 4.0, 1e-12);
  // Cancellation passes through to the inner loop.
  bool fired = false;
  TimerId id = slow.ScheduleAfter(1.0, [&]() { fired = true; });
  slow.Cancel(id);
  loop.RunUntil(20.0);
  EXPECT_FALSE(fired);
}

TEST(FaultsChord, ByzantineFractionIsDetected) {
  auto run = [](double byzantine) {
    obs::Registry registry(2);
    TestbedConfig cfg;
    cfg.num_nodes = 16;
    cfg.seed = 4242;
    cfg.metrics = &registry;
    cfg.chord.finger_fix_period_s = 2.0;
    cfg.chord.stabilize_period_s = 2.5;
    cfg.chord.ping_period_s = 0.8;
    cfg.chord.succ_lifetime_s = 1.7;
    cfg.faults.byzantine_fraction = byzantine;
    ChordTestbed tb(cfg);
    tb.BuildAndSettle(0.25 * 16 + 90.0);
    for (int i = 0; i < 20; ++i) {
      tb.IssueRandomLookup();
      tb.RunFor(1.0);
    }
    tb.RunFor(25.0);
    size_t completed = 0, consistent = 0;
    for (const auto& rec : tb.lookups()) {
      completed += rec.completed ? 1 : 0;
      consistent += rec.consistent ? 1 : 0;
    }
    uint64_t wrong_metric =
        registry.TakeSnapshot().counters["p2_lookup_wrong_total"];
    return std::make_tuple(completed, consistent, wrong_metric,
                           tb.faults() != nullptr ? tb.faults()->CountByzantine(16)
                                                  : 0);
  };

  auto [hc, hcons, hwrong, hbyz] = run(0.0);
  EXPECT_EQ(hbyz, 0u);
  EXPECT_GE(hc, 18u);       // honest settled ring answers its lookups
  EXPECT_EQ(hcons, hc);     // ... all consistently
  EXPECT_EQ(hwrong, 0u);

  auto [bc, bcons, bwrong, bbyz] = run(0.25);
  EXPECT_GT(bbyz, 0u);
  EXPECT_LT(bcons, bc);  // dishonest answers detected against ground truth
  // The metric is exactly the number of completed-but-wrong lookups.
  EXPECT_EQ(bwrong, static_cast<uint64_t>(bc - bcons));
}

// One chord run under a given fault plan, summarized by per-node state.
struct FaultedChordResult {
  std::vector<std::string> successors;
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
  size_t completed = 0;
  size_t consistent = 0;
};

FaultedChordResult RunFaultedChord(const FaultPlan& plan, size_t shards) {
  TestbedConfig cfg;
  cfg.num_nodes = 16;
  cfg.seed = 4242;
  cfg.shards = shards;
  // Work stealing stays on (the default): every fault axis below must be
  // invariant not just to the shard count but to domains migrating
  // between workers mid-run.
  cfg.steal = true;
  cfg.chord.finger_fix_period_s = 2.0;
  cfg.chord.stabilize_period_s = 2.5;
  cfg.chord.ping_period_s = 0.8;
  cfg.chord.succ_lifetime_s = 1.7;
  cfg.faults = plan;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(0.25 * 16 + 60.0);
  tb.ArmFaults();
  for (int i = 0; i < 6; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  tb.RunFor(40.0);
  FaultedChordResult r;
  r.successors = tb.BestSuccessorByNode();
  r.delivered = tb.DeliveredByNode();
  r.events = tb.EventsRun();
  for (const auto& rec : tb.lookups()) {
    r.completed += rec.completed ? 1 : 0;
    r.consistent += rec.consistent ? 1 : 0;
  }
  return r;
}

// The determinism pin for every axis: identical per-node outcomes at
// shards 1 and 4 — fault decisions draw only from sender streams and
// shard clocks, so the shard count stays a pure performance lever.
TEST(FaultsDeterminism, EveryAxisIsShardCountInvariant) {
  std::vector<std::pair<std::string, FaultPlan>> axes;
  {
    FaultPlan p;
    p.asym_loss.push_back({0, 1, 0.5});
    axes.emplace_back("asym-loss", p);
  }
  {
    FaultPlan p;
    PartitionSpec part;
    part.start = 5;
    part.duration = 20;
    part.domains = {0};
    p.partitions.push_back(part);
    axes.emplace_back("partition", p);
  }
  {
    FaultPlan p;
    LatencySpikeSpec spike;
    spike.start = 2;
    spike.duration = 30;
    spike.domain = 1;
    spike.factor = 3;
    p.latency_spikes.push_back(spike);
    axes.emplace_back("latency-spike", p);
  }
  {
    FaultPlan p;
    p.slow_fraction = 0.3;
    p.slow_factor = 4;
    axes.emplace_back("slow-nodes", p);
  }
  {
    FaultPlan p;
    p.corrupt_rate = 0.05;
    axes.emplace_back("corrupt", p);
  }
  {
    FaultPlan p;
    p.byzantine_fraction = 0.25;
    axes.emplace_back("byzantine", p);
  }
  for (const auto& [name, plan] : axes) {
    SCOPED_TRACE(name);
    FaultedChordResult one = RunFaultedChord(plan, 1);
    FaultedChordResult four = RunFaultedChord(plan, 4);
    EXPECT_EQ(one.successors, four.successors);
    EXPECT_EQ(one.delivered, four.delivered);
    EXPECT_EQ(one.events, four.events);
    EXPECT_EQ(one.completed, four.completed);
    EXPECT_EQ(one.consistent, four.consistent);
  }
}

// Satellite: ScenarioNet::Kill/Revive under an active partition. The kill
// and the revive+rebuild run on the control timeline at fixed virtual
// times, the partition forms and heals around them, and the whole dance
// must be identical at 1 and 4 shards (the churn-under-faults path that
// previously only had UDP smoke coverage).
struct GossipKillReviveResult {
  std::vector<size_t> views;
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
};

GossipKillReviveResult RunGossipKillReviveUnderPartition(size_t shards) {
  constexpr size_t kNodes = 10;
  constexpr size_t kVictim = 3;
  FaultPlan plan;
  PartitionSpec part;
  part.start = 20;
  part.duration = 20;
  part.domains = {0};
  plan.partitions.push_back(part);
  ScenarioNet net(BackendKind::kSim, kNodes, 77, /*loss_rate=*/0,
                  /*udp_base_port=*/0, /*reliable=*/false, ReliableConfig{}, shards,
                  plan);
  GossipConfig gc;
  gc.gossip_period_s = 1.0;
  std::vector<std::unique_ptr<GossipNode>> nodes;
  auto build = [&](size_t i, uint64_t salt) {
    P2NodeConfig nc;
    nc.executor = net.executor(i);
    nc.transport = net.transport(i);
    nc.seed = 77 + 1000 * salt + i;
    std::vector<std::string> seeds;
    if (i > 0) {
      seeds.push_back(net.addr(i - 1));
    }
    nodes[i] = std::make_unique<GossipNode>(nc, gc, seeds);
    nodes[i]->Start();
  };
  nodes.resize(kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    build(i, 0);
  }
  // Kill mid-partition-approach, revive while the cut is active: the
  // rebuilt node re-joins through its chain predecessor once it heals.
  net.control_executor()->ScheduleAfter(25.0, [&]() {
    nodes[kVictim]->Stop();
    nodes[kVictim].reset();
    net.Kill(kVictim);
  });
  net.control_executor()->ScheduleAfter(35.0, [&]() {
    net.Revive(kVictim);
    build(kVictim, 1);
  });
  net.Run(120.0);
  GossipKillReviveResult r;
  for (size_t i = 0; i < kNodes; ++i) {
    r.views.push_back(nodes[i]->Members().size());
    r.delivered.push_back(net.transport(i)->stats().msgs_in);
  }
  r.events = net.SimEventsRun();
  for (auto& n : nodes) {
    n->Stop();
  }
  return r;
}

TEST(FaultsDeterminism, KillReviveUnderPartitionIsShardCountInvariant) {
  GossipKillReviveResult one = RunGossipKillReviveUnderPartition(1);
  GossipKillReviveResult four = RunGossipKillReviveUnderPartition(4);
  EXPECT_EQ(one.views, four.views);
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.events, four.events);
  // The revived node came back and re-learned the membership.
  EXPECT_EQ(one.views[3], 10u);
}

}  // namespace
}  // namespace p2
