// Failure-injection tests: packet loss, garbage traffic, abrupt node
// destruction with in-flight work, and queue overload.
#include <gtest/gtest.h>

#include "src/net/wire.h"
#include "src/overlays/chord.h"
#include "src/overlays/gossip.h"
#include "src/p2/node.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

ChordConfig FastChord() {
  ChordConfig c;
  c.finger_fix_period_s = 2.0;
  c.stabilize_period_s = 2.5;
  c.ping_period_s = 0.8;
  c.succ_lifetime_s = 1.7;
  c.finger_lifetime_s = 60.0;
  return c;
}

TEST(FailureInjection, ChordRingSurvivesPacketLoss) {
  // 5% loss on every datagram, from the very beginning — joins,
  // stabilization, pings and lookups are all affected.
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 31);
  net.set_loss_rate(0.05);
  std::vector<std::unique_ptr<SimTransport>> ts;
  std::vector<std::unique_ptr<ChordNode>> ns;
  Rng rng(31);
  for (size_t i = 0; i < 8; ++i) {
    ts.push_back(net.MakeTransport("n" + std::to_string(i), i));
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = ts[i].get();
    nc.seed = rng.NextU64();
    ns.push_back(std::make_unique<ChordNode>(nc, FastChord(), i == 0 ? "" : "n0"));
    ns[i]->Start();
    loop.RunUntil(loop.Now() + 2.0);
  }
  loop.RunUntil(120.0);
  // Despite losses, everyone joins and holds a live successor (retries,
  // soft-state refresh, and periodic re-derivation provide the healing).
  for (auto& n : ns) {
    EXPECT_FALSE(n->Successors().empty()) << n->addr();
    EXPECT_TRUE(n->BestSuccessor().has_value()) << n->addr();
  }
}

TEST(FailureInjection, GarbageAndMalformedPacketsIgnored) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 5);
  auto tn = net.MakeTransport("node", 0);
  auto ta = net.MakeTransport("attacker", 1);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = tn.get();
  nc.seed = 1;
  ChordNode node(nc, FastChord(), "");
  node.Start();
  loop.RunUntil(10.0);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> junk;
    for (uint64_t n = rng.NextBelow(64); n > 0; --n) {
      junk.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    ta->SendTo("node", std::move(junk), false);
  }
  // Also well-framed tuples with absurd names/arities.
  ta->SendTo("node", FrameTuple(Tuple("lookup", {})), true);
  ta->SendTo("node", FrameTuple(Tuple("nosuchrule", {Value::Int(1)})), false);
  loop.RunUntil(30.0);
  // The node is unharmed and still a functioning self-ring.
  ASSERT_TRUE(node.BestSuccessor().has_value());
  EXPECT_EQ(node.BestSuccessor()->second, "node");
  EXPECT_GT(node.node()->stats().bad_packets, 100u);
}

TEST(FailureInjection, DestroyNodeWithTrafficInFlight) {
  // Stress the lifetime discipline: kill nodes at random moments while the
  // network is busy; pending timers/datagrams must not touch freed nodes.
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 77);
  std::vector<std::unique_ptr<SimTransport>> ts(6);
  std::vector<std::unique_ptr<ChordNode>> ns(6);
  Rng rng(77);
  for (size_t i = 0; i < 6; ++i) {
    ts[i] = net.MakeTransport("n" + std::to_string(i), i);
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = ts[i].get();
    nc.seed = rng.NextU64();
    ns[i] = std::make_unique<ChordNode>(nc, FastChord(), i == 0 ? "" : "n0");
    ns[i]->Start();
  }
  loop.RunUntil(30.0);
  // Kill three nodes at staggered (non-quiescent) instants.
  loop.ScheduleAfter(0.05, [&]() {
    ns[2].reset();
    ts[2].reset();
  });
  loop.ScheduleAfter(0.07, [&]() {
    ns[4].reset();
    ts[4].reset();
  });
  loop.ScheduleAfter(1.3, [&]() {
    ns[5].reset();
    ts[5].reset();
  });
  loop.RunUntil(90.0);
  // Survivors keep functioning (no crash is the main assertion).
  for (size_t i : {0u, 1u, 3u}) {
    EXPECT_FALSE(ns[i]->Successors().empty()) << "n" << i;
  }
}

TEST(FailureInjection, InputQueueOverloadShedsOldest) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 3);
  auto t = net.MakeTransport("n0", 0);
  P2NodeConfig nc;
  nc.executor = &loop;
  nc.transport = t.get();
  nc.seed = 1;
  nc.input_queue_capacity = 16;
  P2Node node(nc);
  std::string err;
  ASSERT_TRUE(node.Install("r out@X(X,K) :- ev@X(X,K).", &err)) << err;
  int outs = 0;
  node.Subscribe("out", [&](const TuplePtr&) { ++outs; });
  node.Start();
  // Flood far beyond capacity before the driver gets to run.
  for (int i = 0; i < 1000; ++i) {
    node.Inject(Tuple::Make("ev", {Value::Addr("n0"), Value::Int(i)}));
  }
  loop.RunUntil(5.0);
  // The queue shed load instead of growing unboundedly; survivors flowed.
  EXPECT_GT(outs, 0);
  EXPECT_LT(outs, 1000);
}

TEST(FailureInjection, GossipPartitionsHealOnReconnect) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 41);
  GossipConfig gc;
  gc.gossip_period_s = 0.5;
  std::vector<std::unique_ptr<SimTransport>> ts;
  std::vector<std::unique_ptr<GossipNode>> ns;
  for (size_t i = 0; i < 4; ++i) {
    ts.push_back(net.MakeTransport("g" + std::to_string(i), i));
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = ts[i].get();
    nc.seed = 10 + i;
    // Two islands: {g0,g1} and {g2,g3}.
    std::vector<std::string> seeds;
    seeds.push_back(i < 2 ? "g0" : "g2");
    ns.push_back(std::make_unique<GossipNode>(nc, gc, seeds));
    ns.back()->Start();
  }
  loop.RunUntil(10.0);
  EXPECT_EQ(ns[0]->Members().size(), 2u);
  EXPECT_EQ(ns[3]->Members().size(), 2u);
  // Bridge the islands with a single fact on one node.
  ns[0]->node()->GetTable("gmember")->Insert(
      Tuple::Make("gmember", {Value::Addr("g0"), Value::Addr("g2")}));
  loop.RunUntil(60.0);
  for (auto& n : ns) {
    EXPECT_EQ(n->Members().size(), 4u) << n->addr();
  }
}

}  // namespace
}  // namespace p2
