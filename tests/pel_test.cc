#include <gtest/gtest.h>

#include "src/pel/builtins.h"
#include "src/pel/vm.h"
#include "src/sim/event_loop.h"

namespace p2 {
namespace {

class PelTest : public ::testing::Test {
 protected:
  PelTest() : rng_(1), addr_("n0"), vm_(PelEnv{&loop_, &rng_, &addr_}) {}

  Value Run(const PelProgram& p, const Tuple* in = nullptr) { return vm_.Eval(p, in); }

  SimEventLoop loop_;
  Rng rng_;
  std::string addr_;
  PelVm vm_;
};

TEST_F(PelTest, PushConstAndFields) {
  PelProgram p;
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(7)));
  EXPECT_EQ(Run(p).AsInt(), 7);

  Tuple t("r", {Value::Int(10), Value::Str("x")});
  PelProgram q;
  q.Emit(PelOp::kPushField, 1);
  EXPECT_EQ(Run(q, &t).AsStr(), "x");
}

TEST_F(PelTest, ConstPoolDeduplicates) {
  PelProgram p;
  uint32_t a = p.AddConst(Value::Int(7));
  uint32_t b = p.AddConst(Value::Int(7));
  uint32_t c = p.AddConst(Value::Int(8));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_F(PelTest, ArithmeticOps) {
  struct Case {
    PelOp op;
    int64_t a, b, want;
  };
  for (const Case& c : std::vector<Case>{{PelOp::kAdd, 5, 3, 8},
                                         {PelOp::kSub, 5, 3, 2},
                                         {PelOp::kMul, 5, 3, 15},
                                         {PelOp::kDiv, 7, 2, 3},
                                         {PelOp::kMod, 7, 3, 1}}) {
    PelProgram p;
    p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(c.a)));
    p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(c.b)));
    p.Emit(c.op);
    EXPECT_EQ(Run(p).AsInt(), c.want);
  }
}

TEST_F(PelTest, ComparisonsAndLogic) {
  PelProgram p;
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(2)));
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(3)));
  p.Emit(PelOp::kLt);
  p.Emit(PelOp::kNot);
  EXPECT_FALSE(Run(p).AsBool());

  PelProgram q;
  q.Emit(PelOp::kPushConst, q.AddConst(Value::Bool(true)));
  q.Emit(PelOp::kPushConst, q.AddConst(Value::Bool(false)));
  q.Emit(PelOp::kOr);
  EXPECT_TRUE(Run(q).AsBool());
}

TEST_F(PelTest, RingRangeOps) {
  // 15 in (10, 20] -> true; 10 in (10,20] -> false; 20 in (10,20] -> true.
  auto in_range = [&](int64_t x, int64_t lo, int64_t hi, PelOp op) {
    PelProgram p;
    p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(x))));
    p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(lo))));
    p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(hi))));
    p.Emit(op);
    return Run(p).AsBool();
  };
  EXPECT_TRUE(in_range(15, 10, 20, PelOp::kInOC));
  EXPECT_FALSE(in_range(10, 10, 20, PelOp::kInOC));
  EXPECT_TRUE(in_range(20, 10, 20, PelOp::kInOC));
  EXPECT_FALSE(in_range(20, 10, 20, PelOp::kInOO));
  EXPECT_TRUE(in_range(10, 10, 20, PelOp::kInCO));
  EXPECT_TRUE(in_range(10, 10, 20, PelOp::kInCC));
  // Wrap-around: 2 in (max-1, 5).
  PelProgram p;
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(2))));
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160::Max())));
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(5))));
  p.Emit(PelOp::kInOO);
  EXPECT_TRUE(Run(p).AsBool());
}

TEST_F(PelTest, RangeWithNonRingOperandIsFalseNotFatal) {
  // SB9's "(PI1 == \"-\") || (P in (P1, N))" evaluates both sides; the
  // range test must tolerate the "-" string.
  PelProgram p;
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(3))));
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Str("-")));
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Id(Uint160(9))));
  p.Emit(PelOp::kInOO);
  EXPECT_FALSE(Run(p).AsBool());
}

TEST_F(PelTest, NowReflectsExecutorTime) {
  loop_.RunUntil(12.5);
  PelProgram p;
  p.Emit(PelOp::kNow);
  EXPECT_DOUBLE_EQ(Run(p).AsDouble(), 12.5);
}

TEST_F(PelTest, RandAndCoinFlip) {
  PelProgram p;
  p.Emit(PelOp::kRand);
  for (int i = 0; i < 100; ++i) {
    double v = Run(p).AsDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  PelProgram q;
  q.Emit(PelOp::kPushConst, q.AddConst(Value::Double(1.0)));
  q.Emit(PelOp::kCoinFlip);
  EXPECT_TRUE(Run(q).AsBool());
}

TEST_F(PelTest, HashProducesStableId) {
  PelProgram p;
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Str("abc")));
  p.Emit(PelOp::kHash);
  Value a = Run(p);
  Value b = Run(p);
  ASSERT_EQ(a.type(), ValueType::kId);
  EXPECT_EQ(a, b);
}

TEST_F(PelTest, LocalAddr) {
  PelProgram p;
  p.Emit(PelOp::kLocalAddr);
  EXPECT_EQ(Run(p).AsAddr(), "n0");
}

TEST_F(PelTest, ShlBuildsRingOffsets) {
  // K := N + (1 << I), the finger-target idiom.
  Tuple t("f", {Value::Id(Uint160(100)), Value::Int(70)});
  PelProgram p;
  p.Emit(PelOp::kPushField, 0);
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(1)));
  p.Emit(PelOp::kPushField, 1);
  p.Emit(PelOp::kShl);
  p.Emit(PelOp::kAdd);
  Value k = Run(p, &t);
  EXPECT_EQ(k.AsId(), Uint160(100) + (Uint160(1) << 70));
}

TEST(PelBuiltins, RegistryLookups) {
  ASSERT_NE(FindPelBuiltin("f_now"), nullptr);
  EXPECT_EQ(FindPelBuiltin("f_now")->arity, 0);
  ASSERT_NE(FindPelBuiltin("f_coinFlip"), nullptr);
  EXPECT_EQ(FindPelBuiltin("f_coinFlip")->arity, 1);
  ASSERT_NE(FindPelBuiltin("f_sha1"), nullptr);
  EXPECT_EQ(FindPelBuiltin("nosuch"), nullptr);
}

TEST(PelProgram, DisassembleListsOps) {
  PelProgram p;
  p.Emit(PelOp::kPushConst, p.AddConst(Value::Int(1)));
  p.Emit(PelOp::kPushField, 2);
  p.Emit(PelOp::kAdd);
  std::string text = p.Disassemble();
  EXPECT_NE(text.find("push_const 0 (1)"), std::string::npos);
  EXPECT_NE(text.find("push_field 2"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
}

}  // namespace
}  // namespace p2
