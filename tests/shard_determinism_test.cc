// Shard-count determinism: the whole point of conservative-window
// synchronization plus content-keyed delivery ordering is that sharding is
// a pure performance lever. For a fixed seed, --shards 1, 4 and 8 — with
// work stealing on or off — must produce the same simulation: same
// per-node event sequences, hence same converged routing tables, same
// per-node delivered-datagram counts, and the same fleet-wide event
// totals. Verified for a heavyweight overlay (declarative Chord with loss
// and workload lookups), a lightweight one (gossip membership), and a
// deliberately imbalanced fleet where domains demonstrably migrate
// between workers (p2_shard_steals_total > 0) without changing results.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cli/scenario.h"
#include "src/harness/workload.h"
#include "src/obs/registry.h"
#include "src/overlays/gossip.h"
#include "src/sim/network.h"
#include "src/sim/shard.h"

namespace p2 {
namespace {

struct ChordRunResult {
  std::vector<std::string> successors;
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
  size_t completed = 0;
  size_t consistent = 0;
  std::vector<int> hops;

  bool operator==(const ChordRunResult& o) const {
    return successors == o.successors && delivered == o.delivered &&
           events == o.events && completed == o.completed &&
           consistent == o.consistent && hops == o.hops;
  }
};

ChordRunResult RunChord(size_t shards, bool steal) {
  TestbedConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = 4242;
  cfg.shards = shards;
  cfg.steal = steal;
  cfg.loss_rate = 0.1;
  cfg.chord.finger_fix_period_s = 2.0;
  cfg.chord.stabilize_period_s = 2.5;
  cfg.chord.ping_period_s = 0.8;
  cfg.chord.succ_lifetime_s = 1.7;
  cfg.chord.finger_lifetime_s = 60.0;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(0.25 * 24 + 90.0);
  for (int i = 0; i < 8; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  tb.RunFor(25.0);
  ChordRunResult r;
  r.successors = tb.BestSuccessorByNode();
  r.delivered = tb.DeliveredByNode();
  r.events = tb.EventsRun();
  for (const auto& rec : tb.lookups()) {
    r.completed += rec.completed ? 1 : 0;
    r.consistent += rec.consistent ? 1 : 0;
    r.hops.push_back(rec.hops);
  }
  return r;
}

TEST(ShardDeterminism, ChordIdenticalAcrossShardCountsAndStealModes) {
  ChordRunResult one = RunChord(1, /*steal=*/true);
  ChordRunResult four = RunChord(4, /*steal=*/true);
  // Converged routing tables: every node's best successor matches.
  EXPECT_EQ(one.successors, four.successors);
  // Per-node delivered-event counts match endpoint for endpoint.
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.events, four.events);
  EXPECT_EQ(one.completed, four.completed);
  EXPECT_EQ(one.consistent, four.consistent);
  EXPECT_EQ(one.hops, four.hops);
  // Stealing is a pure scheduling decision: turning it off, or running
  // more workers than a 4-way split, changes nothing observable.
  ChordRunResult four_static = RunChord(4, /*steal=*/false);
  EXPECT_TRUE(four == four_static);
  ChordRunResult eight = RunChord(8, /*steal=*/true);
  EXPECT_TRUE(one == eight);
  // And the run did something: a settled 24-ring answers its lookups.
  EXPECT_GE(one.completed, 6u);
}

struct GossipRunResult {
  std::vector<size_t> view_sizes;
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
};

GossipRunResult RunGossipFleet(size_t shards) {
  constexpr size_t kNodes = 16;
  ScenarioNet net(BackendKind::kSim, kNodes, 77, /*loss_rate=*/0.05,
                  /*udp_base_port=*/0, /*reliable=*/false, ReliableConfig{}, shards);
  GossipConfig gc;
  gc.gossip_period_s = 1.0;
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    P2NodeConfig nc;
    nc.executor = net.executor(i);
    nc.transport = net.transport(i);
    nc.seed = 77 + i;
    std::vector<std::string> seeds;
    if (i > 0) {
      seeds.push_back(net.addr(i - 1));
    }
    nodes.push_back(std::make_unique<GossipNode>(nc, gc, seeds));
    nodes.back()->Start();
  }
  net.Run(90.0);
  GossipRunResult r;
  for (size_t i = 0; i < kNodes; ++i) {
    r.view_sizes.push_back(nodes[i]->Members().size());
    r.delivered.push_back(net.transport(i)->stats().msgs_in);
  }
  r.events = net.SimEventsRun();
  for (auto& n : nodes) {
    n->Stop();
  }
  return r;
}

TEST(ShardDeterminism, GossipIdenticalAcrossShardCounts) {
  GossipRunResult one = RunGossipFleet(1);
  GossipRunResult four = RunGossipFleet(4);
  EXPECT_EQ(one.view_sizes, four.view_sizes);
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.events, four.events);
  // The fleet actually converged: full views everywhere.
  for (size_t view : one.view_sizes) {
    EXPECT_EQ(view, 16u);
  }
}

// A deliberately imbalanced fleet: most endpoints — and nearly all the
// traffic — live in topology domain 0, so the shard = id-mod-workers map
// pins almost the whole load on one worker. The balancer must migrate
// domains off it (steals observed via the registry) while the simulation
// stays bit-for-bit identical to the 1-shard and steal-off runs.
struct HotDomainResult {
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
  uint64_t steals = 0;
  uint64_t owner_moves = 0;
};

HotDomainResult RunHotDomainFleet(size_t shards, bool steal) {
  constexpr size_t kDomains = 10;  // stock TopologyConfig
  constexpr size_t kHot = 12;      // endpoints in domain 0
  ShardedSim sim(shards);
  sim.SetStealing(steal);
  SimNetwork net(&sim, Topology(TopologyConfig{}), /*seed=*/99);
  obs::Registry registry(sim.num_shards() + 1);
  sim.SetObs(&registry, nullptr);

  // Hot endpoints at topo indices 0, 10, 20, ... (all domain 0); three
  // cold ones in domains 1..3.
  std::vector<std::unique_ptr<SimTransport>> eps;
  std::vector<size_t> topo;
  for (size_t i = 0; i < kHot; ++i) {
    topo.push_back(i * kDomains);
  }
  topo.push_back(1);
  topo.push_back(2);
  topo.push_back(3);
  for (size_t i = 0; i < topo.size(); ++i) {
    eps.push_back(net.MakeTransport("e" + std::to_string(i), topo[i]));
    eps.back()->SetReceiver([](const std::string&, const std::vector<uint8_t>&) {});
  }

  // Chatty intra-domain-0 ring (every 50ms) plus a slow cold ring, driven
  // by self-rescheduling timers so every window has work to balance.
  std::vector<uint8_t> payload{1, 2, 3, 4};
  for (size_t i = 0; i < topo.size(); ++i) {
    bool hot = i < kHot;
    size_t next = hot ? (i + 1) % kHot : kHot + (i - kHot + 1) % 3;
    double period = hot ? 0.05 : 1.0;
    Executor* ex = sim.shard(net.ShardOf(topo[i]));
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&eps, &payload, ex, tick, i, next, period]() {
      eps[i]->SendTo(eps[next]->local_addr(), payload, TrafficClass::kMaintenance);
      ex->ScheduleAfter(period, [tick]() { (*tick)(); });
    };
    ex->ScheduleAfter(period, [tick]() { (*tick)(); });
  }
  sim.RunUntil(60.0);

  HotDomainResult r;
  for (auto& e : eps) {
    r.delivered.push_back(e->stats().msgs_in);
  }
  r.events = sim.events_run();
  obs::Snapshot snap = registry.TakeSnapshot();
  r.steals = snap.counters["p2_shard_steals_total"];
  r.owner_moves = snap.counters["p2_domain_owner_moves_total"];
  return r;
}

TEST(ShardDeterminism, HotDomainMigratesWithoutChangingResults) {
  HotDomainResult one = RunHotDomainFleet(1, /*steal=*/true);
  HotDomainResult stolen = RunHotDomainFleet(4, /*steal=*/true);
  HotDomainResult pinned = RunHotDomainFleet(4, /*steal=*/false);

  // Same simulation in all three schedules.
  EXPECT_EQ(one.delivered, stolen.delivered);
  EXPECT_EQ(one.delivered, pinned.delivered);
  EXPECT_EQ(one.events, stolen.events);
  EXPECT_EQ(one.events, pinned.events);

  // The imbalance actually triggered migration — and only with stealing.
  EXPECT_GT(stolen.steals, 0u);
  EXPECT_GT(stolen.owner_moves, 0u);
  EXPECT_EQ(pinned.steals, 0u);
  EXPECT_EQ(pinned.owner_moves, 0u);
  EXPECT_EQ(one.steals, 0u);  // one worker: nothing to steal from

  // The workload was genuinely lopsided: the hot ring dominates traffic.
  uint64_t hot_msgs = 0;
  uint64_t cold_msgs = 0;
  for (size_t i = 0; i < one.delivered.size(); ++i) {
    (i < 12 ? hot_msgs : cold_msgs) += one.delivered[i];
  }
  EXPECT_GT(hot_msgs, 10 * cold_msgs);
}

}  // namespace
}  // namespace p2
