// Shard-count determinism: the whole point of conservative-window
// synchronization plus content-keyed delivery ordering is that sharding is
// a pure performance lever. For a fixed seed, --shards 1 and --shards 4
// must produce the same simulation — same per-node event sequences, hence
// same converged routing tables, same per-node delivered-datagram counts,
// and the same fleet-wide event totals — for both a heavyweight overlay
// (declarative Chord with loss and workload lookups) and a lightweight one
// (gossip membership).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cli/scenario.h"
#include "src/harness/workload.h"
#include "src/overlays/gossip.h"

namespace p2 {
namespace {

struct ChordRunResult {
  std::vector<std::string> successors;
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
  size_t completed = 0;
  size_t consistent = 0;
  std::vector<int> hops;
};

ChordRunResult RunChord(size_t shards) {
  TestbedConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = 4242;
  cfg.shards = shards;
  cfg.loss_rate = 0.1;
  cfg.chord.finger_fix_period_s = 2.0;
  cfg.chord.stabilize_period_s = 2.5;
  cfg.chord.ping_period_s = 0.8;
  cfg.chord.succ_lifetime_s = 1.7;
  cfg.chord.finger_lifetime_s = 60.0;
  ChordTestbed tb(cfg);
  tb.BuildAndSettle(0.25 * 24 + 90.0);
  for (int i = 0; i < 8; ++i) {
    tb.IssueRandomLookup();
    tb.RunFor(1.0);
  }
  tb.RunFor(25.0);
  ChordRunResult r;
  r.successors = tb.BestSuccessorByNode();
  r.delivered = tb.DeliveredByNode();
  r.events = tb.EventsRun();
  for (const auto& rec : tb.lookups()) {
    r.completed += rec.completed ? 1 : 0;
    r.consistent += rec.consistent ? 1 : 0;
    r.hops.push_back(rec.hops);
  }
  return r;
}

TEST(ShardDeterminism, ChordIdenticalAcrossShardCounts) {
  ChordRunResult one = RunChord(1);
  ChordRunResult four = RunChord(4);
  // Converged routing tables: every node's best successor matches.
  EXPECT_EQ(one.successors, four.successors);
  // Per-node delivered-event counts match endpoint for endpoint.
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.events, four.events);
  EXPECT_EQ(one.completed, four.completed);
  EXPECT_EQ(one.consistent, four.consistent);
  EXPECT_EQ(one.hops, four.hops);
  // And the run did something: a settled 24-ring answers its lookups.
  EXPECT_GE(one.completed, 6u);
}

struct GossipRunResult {
  std::vector<size_t> view_sizes;
  std::vector<uint64_t> delivered;
  uint64_t events = 0;
};

GossipRunResult RunGossipFleet(size_t shards) {
  constexpr size_t kNodes = 16;
  ScenarioNet net(BackendKind::kSim, kNodes, 77, /*loss_rate=*/0.05,
                  /*udp_base_port=*/0, /*reliable=*/false, ReliableConfig{}, shards);
  GossipConfig gc;
  gc.gossip_period_s = 1.0;
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    P2NodeConfig nc;
    nc.executor = net.executor(i);
    nc.transport = net.transport(i);
    nc.seed = 77 + i;
    std::vector<std::string> seeds;
    if (i > 0) {
      seeds.push_back(net.addr(i - 1));
    }
    nodes.push_back(std::make_unique<GossipNode>(nc, gc, seeds));
    nodes.back()->Start();
  }
  net.Run(90.0);
  GossipRunResult r;
  for (size_t i = 0; i < kNodes; ++i) {
    r.view_sizes.push_back(nodes[i]->Members().size());
    r.delivered.push_back(net.transport(i)->stats().msgs_in);
  }
  r.events = net.SimEventsRun();
  for (auto& n : nodes) {
    n->Stop();
  }
  return r;
}

TEST(ShardDeterminism, GossipIdenticalAcrossShardCounts) {
  GossipRunResult one = RunGossipFleet(1);
  GossipRunResult four = RunGossipFleet(4);
  EXPECT_EQ(one.view_sizes, four.view_sizes);
  EXPECT_EQ(one.delivered, four.delivered);
  EXPECT_EQ(one.events, four.events);
  // The fleet actually converged: full views everywhere.
  for (size_t view : one.view_sizes) {
    EXPECT_EQ(view, 16u);
  }
}

}  // namespace
}  // namespace p2
