// Smoke tests for the p2run scenario layer: one per overlay on the
// deterministic sim backend, small populations, asserting convergence —
// exactly what `p2run --overlay <x> --nodes <n> --sim` checks, minus the
// process boundary.
#include "src/cli/scenario.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(ScenarioParse, Names) {
  OverlayKind overlay;
  EXPECT_TRUE(ParseOverlayKind("chord", &overlay));
  EXPECT_EQ(overlay, OverlayKind::kChord);
  EXPECT_TRUE(ParseOverlayKind("pathvector", &overlay));
  EXPECT_EQ(overlay, OverlayKind::kPathVector);
  EXPECT_FALSE(ParseOverlayKind("kademlia", &overlay));
  BackendKind backend;
  EXPECT_TRUE(ParseBackendKind("udp", &backend));
  EXPECT_EQ(backend, BackendKind::kUdp);
  EXPECT_FALSE(ParseBackendKind("tcp", &backend));
  EXPECT_STREQ(OverlayKindName(OverlayKind::kNarada), "narada");
  EXPECT_STREQ(BackendKindName(BackendKind::kSim), "sim");
}

TEST(ScenarioSmoke, ChordSimLookupsConverge) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 16;
  cfg.seed = 1;
  cfg.lookups = 10;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_EQ(report.lookups_completed, report.lookups_issued);
  EXPECT_GE(report.ring_consistency, 0.9);
}

TEST(ScenarioSmoke, ChordSimChurnStaysAvailable) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 12;
  cfg.seed = 3;
  cfg.lookups = 10;
  cfg.churn_session_mean_s = 480;
  cfg.duration_s = 90;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
}

TEST(ScenarioSmoke, GossipSimMembershipConverges) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kGossip;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 10;
  cfg.seed = 2;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_DOUBLE_EQ(report.mean_view_size, 10.0);
}

TEST(ScenarioSmoke, NaradaSimMeshConverges) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kNarada;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 6;
  cfg.seed = 5;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
}

TEST(ScenarioSmoke, PathVectorSimRoutesConverge) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kPathVector;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 4;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_DOUBLE_EQ(report.mean_view_size, 7.0);
}

TEST(ScenarioSmoke, DeterministicAcrossRuns) {
  // Same config, same virtual-time outcome: the sim backend must be exactly
  // reproducible (this is what makes p2run usable for regression checks).
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 9;
  cfg.lookups = 5;
  ScenarioReport a = RunScenario(cfg);
  ScenarioReport b = RunScenario(cfg);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.lookups_completed, b.lookups_completed);
  EXPECT_EQ(a.lookups_consistent, b.lookups_consistent);
  EXPECT_DOUBLE_EQ(a.ring_consistency, b.ring_consistency);
  EXPECT_DOUBLE_EQ(a.ran_for_s, b.ran_for_s);
}

TEST(ScenarioConfigErrors, Rejected) {
  ScenarioConfig cfg;
  cfg.nodes = 1;
  EXPECT_FALSE(RunScenario(cfg).converged);

  // Chord churn still needs the sim testbed.
  ScenarioConfig chord_churn_on_udp;
  chord_churn_on_udp.overlay = OverlayKind::kChord;
  chord_churn_on_udp.backend = BackendKind::kUdp;
  chord_churn_on_udp.nodes = 4;
  chord_churn_on_udp.churn_session_mean_s = 60;
  EXPECT_FALSE(RunScenario(chord_churn_on_udp).converged);
}

TEST(ScenarioChurn, PathVectorSimChurnWithdrawsAndReconverges) {
  // A dead next-hop's routes are withdrawn on kill, so the fleet re-learns
  // paths through the revived replacement within advertisement rounds.
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kPathVector;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 1;
  cfg.churn_session_mean_s = 60;
  cfg.duration_s = 120;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_GT(report.churn_deaths, 0u);
}

TEST(ScenarioNetSmoke, UdpReviveRebindsOriginalPort) {
  // The deterministic core of udp churn support: after Kill + Revive the
  // endpoint is bound to its original port, so datagrams addressed to the
  // address peers already hold still arrive.
  ScenarioNet net(BackendKind::kUdp, 2, 1);
  ASSERT_TRUE(net.ok());
  std::string addr1 = net.addr(1);
  net.Kill(1);
  EXPECT_EQ(net.transport(1), nullptr);
  net.Revive(1);
  ASSERT_NE(net.transport(1), nullptr);
  EXPECT_EQ(net.transport(1)->local_addr(), addr1);
  bool received = false;
  net.transport(1)->SetReceiver(
      [&received](const std::string&, const std::vector<uint8_t>&) { received = true; });
  net.transport(0)->SendTo(addr1, {0xAB, 0xCD}, TrafficClass::kMaintenance);
  net.Run(0.3);
  EXPECT_TRUE(received);
}

TEST(ScenarioChurn, GossipUdpChurnRevivesAndReconverges) {
  // End-to-end wall-clock flavor of the same property: the fleet keeps (or
  // regains) full membership views across kill/revive cycles. Session mean
  // and duration are sized so zero deaths is a <0.1% outcome.
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kGossip;
  cfg.backend = BackendKind::kUdp;
  cfg.nodes = 4;
  cfg.seed = 3;
  cfg.churn_session_mean_s = 5;
  cfg.duration_s = 9;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_GT(report.churn_deaths, 0u);
}

TEST(ScenarioChurn, GossipSimChurnStaysAvailable) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kGossip;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 2;
  cfg.churn_session_mean_s = 300;
  cfg.duration_s = 120;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
}

TEST(ScenarioChurn, NaradaSimChurnStaysAvailable) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kNarada;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 6;
  cfg.seed = 5;
  cfg.churn_session_mean_s = 300;
  cfg.duration_s = 60;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
}

// The tentpole acceptance scenario: with 20% datagram loss, chord lookups
// converge when the reliable stack is on and demonstrably degrade when it
// is off (the sim is deterministic, so both outcomes are stable).
TEST(ScenarioReliable, ChordSimWithLossConvergesOnlyWithReliableStack) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 16;
  cfg.seed = 1;
  cfg.lookups = 10;
  cfg.loss_rate = 0.2;

  cfg.reliable = true;
  ScenarioReport with_stack = RunScenario(cfg);
  EXPECT_TRUE(with_stack.converged) << with_stack.detail;
  EXPECT_TRUE(with_stack.reliable);
  EXPECT_GT(with_stack.transport_stats.retransmits, 0u);
  EXPECT_GT(with_stack.transport_stats.rtt_samples, 0u);
  EXPECT_GT(with_stack.transport_stats.MeanCwnd(), 0.0);

  cfg.reliable = false;
  ScenarioReport without_stack = RunScenario(cfg);
  EXPECT_EQ(without_stack.transport_stats.retransmits, 0u);
  // Degradation: strictly worse lookup consistency or outright failure.
  bool degraded = !without_stack.converged ||
                  without_stack.lookups_consistent < with_stack.lookups_consistent;
  EXPECT_TRUE(degraded) << "plain UDP at 20% loss should degrade\n"
                        << without_stack.detail;
}

TEST(ScenarioReliable, GossipChurnWithReliableStackStaysHealthy) {
  // Churn replacements reuse addresses; continuing peers must renumber
  // their streams (stream_resets > 0) instead of blackholing — expired
  // frames and queue drops stay near zero.
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kGossip;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 1;
  cfg.churn_session_mean_s = 100;
  cfg.duration_s = 300;
  cfg.reliable = true;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_GT(report.churn_deaths, 0u);
  EXPECT_GT(report.transport_stats.stream_resets, 0u);
  EXPECT_EQ(report.transport_stats.queue_drops, 0u) << report.detail;
  EXPECT_LT(report.transport_stats.expired, 20u) << report.detail;
}

TEST(ScenarioReliable, GossipSimReliableConverges) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kGossip;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 2;
  cfg.loss_rate = 0.2;
  cfg.reliable = true;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_GT(report.transport_stats.data_frames_sent, 0u);
  EXPECT_GT(report.transport_stats.retransmits, 0u);
}

TEST(ScenarioNetSmoke, SimFleetBasics) {
  ScenarioNet net(BackendKind::kSim, 3, 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.addr(0), "n0");
  EXPECT_NE(net.sim_network(), nullptr);
  std::string got;
  net.transport(1)->SetReceiver(
      [&](const std::string& from, const std::vector<uint8_t>&) { got = from; });
  net.transport(0)->SendTo(net.addr(1), {42}, false);
  net.Run(1.0);
  EXPECT_EQ(got, "n0");
  // Killed endpoints silently eat traffic, like a crashed node.
  net.Kill(1);
  net.transport(0)->SendTo("n1", {42}, false);
  net.Run(1.0);
}

}  // namespace
}  // namespace p2
