// Smoke tests for the p2run scenario layer: one per overlay on the
// deterministic sim backend, small populations, asserting convergence —
// exactly what `p2run --overlay <x> --nodes <n> --sim` checks, minus the
// process boundary.
#include "src/cli/scenario.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(ScenarioParse, Names) {
  OverlayKind overlay;
  EXPECT_TRUE(ParseOverlayKind("chord", &overlay));
  EXPECT_EQ(overlay, OverlayKind::kChord);
  EXPECT_TRUE(ParseOverlayKind("pathvector", &overlay));
  EXPECT_EQ(overlay, OverlayKind::kPathVector);
  EXPECT_FALSE(ParseOverlayKind("kademlia", &overlay));
  BackendKind backend;
  EXPECT_TRUE(ParseBackendKind("udp", &backend));
  EXPECT_EQ(backend, BackendKind::kUdp);
  EXPECT_FALSE(ParseBackendKind("tcp", &backend));
  EXPECT_STREQ(OverlayKindName(OverlayKind::kNarada), "narada");
  EXPECT_STREQ(BackendKindName(BackendKind::kSim), "sim");
}

TEST(ScenarioSmoke, ChordSimLookupsConverge) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 16;
  cfg.seed = 1;
  cfg.lookups = 10;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_EQ(report.lookups_completed, report.lookups_issued);
  EXPECT_GE(report.ring_consistency, 0.9);
}

TEST(ScenarioSmoke, ChordSimChurnStaysAvailable) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 12;
  cfg.seed = 3;
  cfg.lookups = 10;
  cfg.churn_session_mean_s = 480;
  cfg.duration_s = 90;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
}

TEST(ScenarioSmoke, GossipSimMembershipConverges) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kGossip;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 10;
  cfg.seed = 2;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_DOUBLE_EQ(report.mean_view_size, 10.0);
}

TEST(ScenarioSmoke, NaradaSimMeshConverges) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kNarada;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 6;
  cfg.seed = 5;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
}

TEST(ScenarioSmoke, PathVectorSimRoutesConverge) {
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kPathVector;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 4;
  ScenarioReport report = RunScenario(cfg);
  EXPECT_TRUE(report.converged) << report.detail;
  EXPECT_DOUBLE_EQ(report.mean_view_size, 7.0);
}

TEST(ScenarioSmoke, DeterministicAcrossRuns) {
  // Same config, same virtual-time outcome: the sim backend must be exactly
  // reproducible (this is what makes p2run usable for regression checks).
  ScenarioConfig cfg;
  cfg.overlay = OverlayKind::kChord;
  cfg.backend = BackendKind::kSim;
  cfg.nodes = 8;
  cfg.seed = 9;
  cfg.lookups = 5;
  ScenarioReport a = RunScenario(cfg);
  ScenarioReport b = RunScenario(cfg);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.lookups_completed, b.lookups_completed);
  EXPECT_EQ(a.lookups_consistent, b.lookups_consistent);
  EXPECT_DOUBLE_EQ(a.ring_consistency, b.ring_consistency);
  EXPECT_DOUBLE_EQ(a.ran_for_s, b.ran_for_s);
}

TEST(ScenarioConfigErrors, Rejected) {
  ScenarioConfig cfg;
  cfg.nodes = 1;
  EXPECT_FALSE(RunScenario(cfg).converged);

  ScenarioConfig churn_on_gossip;
  churn_on_gossip.overlay = OverlayKind::kGossip;
  churn_on_gossip.nodes = 4;
  churn_on_gossip.churn_session_mean_s = 60;
  EXPECT_FALSE(RunScenario(churn_on_gossip).converged);
}

TEST(ScenarioNetSmoke, SimFleetBasics) {
  ScenarioNet net(BackendKind::kSim, 3, 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.addr(0), "n0");
  EXPECT_NE(net.sim_network(), nullptr);
  std::string got;
  net.transport(1)->SetReceiver(
      [&](const std::string& from, const std::vector<uint8_t>&) { got = from; });
  net.transport(0)->SendTo(net.addr(1), {42}, false);
  net.Run(1.0);
  EXPECT_EQ(got, "n0");
  // Killed endpoints silently eat traffic, like a crashed node.
  net.Kill(1);
  net.transport(0)->SendTo("n1", {42}, false);
  net.Run(1.0);
}

}  // namespace
}  // namespace p2
