// Adaptive join re-planning tests.
//
// The planner freezes join orders from static priors (table caps) at
// install time. With --replan-interval the node also lowers alternate
// orders behind a switch element and periodically re-costs them against
// live DistinctKeys statistics. These tests build a two-join rule whose
// static priors point one way and whose live data is skewed the other way,
// and pin that (a) the replan loop swaps to the cheaper order, (b) results
// stay correct after the swap, and (c) the machinery is fully inert at the
// default interval of 0.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/p2/node.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

// small's cap (16) gives it the lower static prior (sqrt(16)=4 vs
// sqrt(1024)=32), so the greedy install-time order probes it first. The
// drive then loads small with ONE hot key and big with all-distinct keys,
// inverting the real fanouts.
constexpr char kSkewProgram[] =
    "materialize(small, infinity, 16, keys(2,3)).\n"
    "materialize(big, infinity, 1024, keys(2,3)).\n"
    "r1 out@X(X,A,B,C) :- ev@X(X,A), small@X(X,A,B), big@X(X,A,C).\n";

class ReplanTest : public ::testing::Test {
 protected:
  ReplanTest() : net_(&loop_, Topology(TopologyConfig{}), 17) {
    transport_ = net_.MakeTransport("n1", 0);
  }

  std::unique_ptr<P2Node> Make(double replan_interval_s) {
    P2NodeConfig c;
    c.executor = &loop_;
    c.transport = transport_.get();
    c.seed = 1;
    c.replan_interval_s = replan_interval_s;
    auto node = std::make_unique<P2Node>(c);
    std::string err;
    EXPECT_TRUE(node->Install(kSkewProgram, &err)) << err;
    return node;
  }

  void LoadSkew(P2Node* n) {
    // 12 small rows, all key A=1: live fanout 12 on the (X,A) probe.
    for (int64_t b = 0; b < 12; ++b) {
      n->GetTable("small")->Insert(
          Tuple::Make("small", {Value::Addr("n1"), Value::Int(1), Value::Int(b)}));
    }
    // 200 big rows, all-distinct keys: live fanout ~1.
    for (int64_t a = 0; a < 200; ++a) {
      n->GetTable("big")->Insert(
          Tuple::Make("big", {Value::Addr("n1"), Value::Int(a), Value::Int(a * 10)}));
    }
  }

  SimEventLoop loop_;
  SimNetwork net_;
  std::unique_ptr<SimTransport> transport_;
};

TEST_F(ReplanTest, AlternateOrdersAreLoweredBehindASwitch) {
  auto n = Make(/*replan_interval_s=*/0.5);
  EXPECT_GE(n->ReplanEntries(), 1u);
  EXPECT_NE(n->PlanExplain().find("alt-plan 1:"), std::string::npos);
}

TEST_F(ReplanTest, DefaultIntervalBuildsNoVariants) {
  auto n = Make(/*replan_interval_s=*/0);
  EXPECT_EQ(n->ReplanEntries(), 0u);
  EXPECT_EQ(n->PlanExplain().find("alt-plan"), std::string::npos);
  EXPECT_EQ(n->ReplanSwaps(), 0u);
}

TEST_F(ReplanTest, SkewedStatisticsTriggerASwap) {
  auto n = Make(/*replan_interval_s=*/0.5);
  n->Start();
  EXPECT_EQ(n->ReplanSwaps(), 0u);
  LoadSkew(n.get());
  // Static order probes small first (cost 12 + 12*1 = 24); the alternate
  // big-first order costs 1 + 1*12 = 13 — past the 1.25x hysteresis.
  loop_.RunUntil(2.0);
  EXPECT_GE(n->ReplanSwaps(), 1u);
}

TEST_F(ReplanTest, ResultsStayCorrectAfterTheSwap) {
  auto n = Make(/*replan_interval_s=*/0.5);
  std::vector<std::string> outs;
  n->Subscribe("out", [&outs](const TuplePtr& t) { outs.push_back(t->ToString()); });
  n->Start();
  LoadSkew(n.get());
  loop_.RunUntil(2.0);
  ASSERT_GE(n->ReplanSwaps(), 1u);
  // A=1 matches all 12 small rows and exactly one big row.
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(1)}));
  loop_.RunUntil(3.0);
  EXPECT_EQ(outs.size(), 12u);
  // A=5: one small miss (all small rows have A=1) — no output.
  outs.clear();
  n->Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(5)}));
  loop_.RunUntil(4.0);
  EXPECT_EQ(outs.size(), 0u);
}

TEST_F(ReplanTest, QuietNodeBelowDeltaThresholdNeverSwaps) {
  P2NodeConfig c;
  c.executor = &loop_;
  c.transport = transport_.get();
  c.seed = 1;
  c.replan_interval_s = 0.5;
  c.replan_delta_threshold = 1u << 20;  // effectively unreachable
  auto n = std::make_unique<P2Node>(c);
  std::string err;
  ASSERT_TRUE(n->Install(kSkewProgram, &err)) << err;
  n->Start();
  LoadSkew(n.get());
  loop_.RunUntil(2.0);
  EXPECT_EQ(n->ReplanSwaps(), 0u);
}

}  // namespace
}  // namespace p2
