// Register-VM regression vectors.
//
// The randomized program generator here originally drove a golden
// equivalence test between the register VM and the legacy stack
// interpreter; the stack engine soaked and was deleted, and the same
// thousands of well-typed programs (type-tracked so no P2_FATAL coercion
// path fires) now pin the register VM directly: every program must lower,
// evaluate without tripping an abort or a sanitizer, evaluate
// *deterministically* (two identically seeded environments produce
// identical results, including through the stochastic builtins), and
// produce values whose Compare/Hash self-consistency holds. A few
// deterministic lowering shape checks pin the field-load fusion.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/pel/vm.h"
#include "src/sim/event_loop.h"

namespace p2 {
namespace {

// --- Lowering shape ---

TEST(PelLowering, FusesFieldAndConstLoads) {
  // D := K - B - 1, the Chord distance computation: five stack ops must
  // lower to exactly two register instructions reading fields/consts
  // in place.
  PelProgram prog;
  prog.Emit(PelOp::kPushField, 1);
  prog.Emit(PelOp::kPushField, 3);
  prog.Emit(PelOp::kSub);
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(1)));
  prog.Emit(PelOp::kSub);
  ASSERT_EQ(prog.reg_code().size(), 2u);
  EXPECT_EQ(prog.num_regs(), 1);
  const PelRegInstr& i0 = prog.reg_code()[0];
  EXPECT_EQ(i0.op, PelOp::kSub);
  EXPECT_EQ(i0.a.kind, PelSrcKind::kField);
  EXPECT_EQ(i0.a.index, 1);
  EXPECT_EQ(i0.b.kind, PelSrcKind::kField);
  EXPECT_EQ(i0.b.index, 3);
  const PelRegInstr& i1 = prog.reg_code()[1];
  EXPECT_EQ(i1.op, PelOp::kSub);
  EXPECT_EQ(i1.a.kind, PelSrcKind::kReg);
  EXPECT_EQ(i1.b.kind, PelSrcKind::kConst);
}

TEST(PelLowering, LonePushMaterializesIntoRegisterZero) {
  PelProgram prog;
  prog.Emit(PelOp::kPushField, 2);
  ASSERT_EQ(prog.reg_code().size(), 1u);
  EXPECT_EQ(prog.reg_code()[0].op, PelOp::kMove);
  EXPECT_EQ(prog.num_regs(), 1);

  PelVm vm(PelEnv{});
  TuplePtr t = Tuple::Make("t", {Value::Int(0), Value::Int(1), Value::Str("x")});
  EXPECT_EQ(vm.Eval(prog, t.get()), Value::Str("x"));
}

TEST(PelLowering, RangeTestUsesThreeOperands) {
  PelProgram prog;  // K in (N, S]
  prog.Emit(PelOp::kPushField, 0);
  prog.Emit(PelOp::kPushField, 1);
  prog.Emit(PelOp::kPushField, 2);
  prog.Emit(PelOp::kInOC);
  ASSERT_EQ(prog.reg_code().size(), 1u);
  EXPECT_EQ(prog.reg_code()[0].c.kind, PelSrcKind::kField);
  EXPECT_EQ(prog.reg_code()[0].c.index, 2);
}

TEST(PelLowering, EmitAfterLoweringInvalidatesCache) {
  PelProgram prog;
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(7)));
  ASSERT_EQ(prog.reg_code().size(), 1u);  // lowers the lone push
  prog.Emit(PelOp::kPushConst, prog.AddConst(Value::Int(1)));
  prog.Emit(PelOp::kAdd);
  PelVm vm(PelEnv{});
  EXPECT_EQ(vm.Eval(prog, nullptr).AsInt(), 8);
}

// --- Randomized equivalence ---

// Coarse PEL type lattice used to keep generated programs on defined
// coercion paths (numeric accessors abort on Str/Addr/List by design).
enum class Ty { kBool, kInt, kDouble, kStr, kId, kAddr, kList };

bool IsNum(Ty t) { return t == Ty::kBool || t == Ty::kInt || t == Ty::kDouble; }
bool IsRingArith(Ty t) { return IsNum(t) || t == Ty::kId; }

struct GenState {
  std::mt19937_64 prng;
  PelProgram prog;
  std::vector<Ty> stack;
  const std::vector<Ty>* field_types;

  explicit GenState(uint64_t seed, const std::vector<Ty>* fields)
      : prng(seed), field_types(fields) {}

  size_t Pick(size_t n) { return std::uniform_int_distribution<size_t>(0, n - 1)(prng); }

  Value RandomConst(Ty t) {
    switch (t) {
      case Ty::kBool:
        return Value::Bool(Pick(2) == 0);
      case Ty::kInt: {
        // Mix of small, negative, and extreme magnitudes.
        static const int64_t kEdges[] = {0, 1, -1, 7, -42, 1 << 20, INT64_MAX, INT64_MIN};
        return Value::Int(kEdges[Pick(8)]);
      }
      case Ty::kDouble: {
        static const double kEdges[] = {0.0, 0.5, -1.25, 3.14159, 1e18, -7.0};
        return Value::Double(kEdges[Pick(6)]);
      }
      case Ty::kStr:
        return Value::Str(std::string(1 + Pick(4), static_cast<char>('a' + Pick(26))));
      case Ty::kId: {
        static const Uint160 kEdges[] = {Uint160(), Uint160(1), Uint160::Max(),
                                         Uint160::HashOf("x"), Uint160(5, 6, 7)};
        return Value::Id(kEdges[Pick(5)]);
      }
      case Ty::kAddr:
        return Value::Addr("n" + std::to_string(Pick(16)));
      case Ty::kList:
        return Value::List({Value::Int(static_cast<int64_t>(Pick(3))),
                            Value::Str(Pick(2) == 0 ? "p" : "q")});
    }
    return Value::Null();
  }

  void PushLeaf() {
    // Bias towards fields: field fusion is what the lowering optimizes.
    if (!field_types->empty() && Pick(2) == 0) {
      size_t i = Pick(field_types->size());
      prog.Emit(PelOp::kPushField, static_cast<uint32_t>(i));
      stack.push_back((*field_types)[i]);
      return;
    }
    Ty t = static_cast<Ty>(Pick(7));
    prog.Emit(PelOp::kPushConst, prog.AddConst(RandomConst(t)));
    stack.push_back(t);
  }

  // Attempts one random operation legal for the current stack types;
  // returns false if it chose to push a leaf instead.
  void Step() {
    size_t depth = stack.size();
    // Candidate ops, filtered by operand types.
    std::vector<int> ops;
    if (depth >= 2) {
      Ty b = stack[depth - 1];
      Ty a = stack[depth - 2];
      if ((IsRingArith(a) && IsRingArith(b)) || (a == Ty::kStr && b == Ty::kStr)) {
        ops.push_back(static_cast<int>(PelOp::kAdd));
      }
      if (IsRingArith(a) && IsRingArith(b)) {
        ops.push_back(static_cast<int>(PelOp::kSub));
      }
      if (IsNum(a) && IsNum(b)) {
        for (PelOp op : {PelOp::kMul, PelOp::kDiv, PelOp::kMod, PelOp::kAnd, PelOp::kOr}) {
          ops.push_back(static_cast<int>(op));
        }
      }
      if (IsRingArith(a) && IsNum(b)) {
        ops.push_back(static_cast<int>(PelOp::kShl));
      }
      for (PelOp op : {PelOp::kEq, PelOp::kNe, PelOp::kLt, PelOp::kLe, PelOp::kGt,
                       PelOp::kGe}) {
        ops.push_back(static_cast<int>(op));
      }
    }
    if (depth >= 1) {
      Ty a = stack[depth - 1];
      if (IsNum(a)) {
        ops.push_back(static_cast<int>(PelOp::kNot));
        ops.push_back(static_cast<int>(PelOp::kCoinFlip));
      }
      if (IsRingArith(a)) {
        ops.push_back(static_cast<int>(PelOp::kNeg));
      }
      ops.push_back(static_cast<int>(PelOp::kHash));
    }
    if (depth >= 3) {
      for (PelOp op : {PelOp::kInOO, PelOp::kInOC, PelOp::kInCO, PelOp::kInCC}) {
        ops.push_back(static_cast<int>(op));
      }
    }
    for (PelOp op : {PelOp::kNow, PelOp::kRand, PelOp::kRandInt, PelOp::kLocalAddr}) {
      ops.push_back(static_cast<int>(op));
    }
    // Grow with leaves more often than we shrink, until deep enough.
    if (depth < 2 || (depth < 5 && Pick(3) == 0)) {
      PushLeaf();
      return;
    }
    PelOp op = static_cast<PelOp>(ops[Pick(ops.size())]);
    prog.Emit(op);
    ApplyTypes(op);
  }

  void ApplyTypes(PelOp op) {
    auto pop = [this]() {
      Ty t = stack.back();
      stack.pop_back();
      return t;
    };
    switch (op) {
      case PelOp::kAdd:
      case PelOp::kSub: {
        Ty b = pop();
        Ty a = pop();
        if (a == Ty::kId || b == Ty::kId) {
          stack.push_back(Ty::kId);
        } else if (a == Ty::kDouble || b == Ty::kDouble) {
          stack.push_back(Ty::kDouble);
        } else if (a == Ty::kStr) {
          stack.push_back(Ty::kStr);
        } else {
          stack.push_back(Ty::kInt);
        }
        break;
      }
      case PelOp::kMul:
      case PelOp::kDiv: {
        Ty b = pop();
        Ty a = pop();
        stack.push_back(a == Ty::kDouble || b == Ty::kDouble ? Ty::kDouble : Ty::kInt);
        break;
      }
      case PelOp::kMod:
        pop();
        pop();
        stack.push_back(Ty::kInt);
        break;
      case PelOp::kShl:
        pop();
        pop();
        stack.push_back(Ty::kId);
        break;
      case PelOp::kEq:
      case PelOp::kNe:
      case PelOp::kLt:
      case PelOp::kLe:
      case PelOp::kGt:
      case PelOp::kGe:
      case PelOp::kAnd:
      case PelOp::kOr:
        pop();
        pop();
        stack.push_back(Ty::kBool);
        break;
      case PelOp::kNot:
      case PelOp::kCoinFlip:
        pop();
        stack.push_back(Ty::kBool);
        break;
      case PelOp::kNeg: {
        Ty a = pop();
        stack.push_back(a == Ty::kId ? Ty::kId : (a == Ty::kDouble ? Ty::kDouble : Ty::kInt));
        break;
      }
      case PelOp::kInOO:
      case PelOp::kInOC:
      case PelOp::kInCO:
      case PelOp::kInCC:
        pop();
        pop();
        pop();
        stack.push_back(Ty::kBool);
        break;
      case PelOp::kHash:
        pop();
        stack.push_back(Ty::kId);
        break;
      case PelOp::kNow:
      case PelOp::kRand:
        stack.push_back(Ty::kDouble);
        break;
      case PelOp::kRandInt:
        stack.push_back(Ty::kInt);
        break;
      case PelOp::kLocalAddr:
        stack.push_back(Ty::kAddr);
        break;
      case PelOp::kPushConst:
      case PelOp::kPushField:
      case PelOp::kMove:
        FAIL() << "generator applied a non-operator";
    }
  }

  // Reduce the stack to one entry with comparisons (legal on any types).
  void Finish() {
    while (stack.size() > 1) {
      prog.Emit(PelOp::kEq);
      ApplyTypes(PelOp::kEq);
    }
  }
};

TEST(PelRegression, RandomProgramsEvaluateDeterministically) {
  SimEventLoop loop;
  std::string addr = "n3:1234";

  std::vector<Ty> field_types = {Ty::kAddr, Ty::kId, Ty::kInt, Ty::kDouble,
                                 Ty::kStr,  Ty::kBool, Ty::kList};
  TuplePtr input = Tuple::Make(
      "in", {Value::Addr("n3:1234"), Value::Id(Uint160::HashOf("key")), Value::Int(-17),
             Value::Double(2.5), Value::Str("s"), Value::Bool(true),
             Value::List({Value::Int(1), Value::Int(2)})});

  constexpr int kPrograms = 4000;
  for (int i = 0; i < kPrograms; ++i) {
    GenState gen(0x5EED0000u + static_cast<uint64_t>(i), &field_types);
    int steps = 3 + static_cast<int>(gen.Pick(20));
    for (int s = 0; s < steps; ++s) {
      gen.Step();
    }
    gen.Finish();

    // Identically seeded stochastic environments must draw identical
    // streams: the register VM evaluates the op sequence eagerly, so two
    // fresh VMs over the same program agree value-for-value.
    Rng rng_a(42 + i);
    Rng rng_b(42 + i);
    PelVm vm_a(PelEnv{&loop, &rng_a, &addr});
    PelVm vm_b(PelEnv{&loop, &rng_b, &addr});
    Value a = vm_a.Eval(gen.prog, input.get());
    Value b = vm_b.Eval(gen.prog, input.get());

    ASSERT_EQ(a.type(), b.type())
        << "program " << i << ":\n"
        << gen.prog.Disassemble() << "-- lowered --\n"
        << gen.prog.DisassembleRegs() << "a=" << a.ToString() << " b=" << b.ToString();
    ASSERT_EQ(Value::Compare(a, b), 0)
        << "program " << i << ":\n"
        << gen.prog.Disassemble() << "-- lowered --\n"
        << gen.prog.DisassembleRegs() << "a=" << a.ToString() << " b=" << b.ToString();
    ASSERT_EQ(a.HashValue(), b.HashValue()) << "program " << i;
    // Compare must see a value as equal to its own copy.
    Value copy = a;
    ASSERT_EQ(Value::Compare(a, copy), 0) << "program " << i;
  }
}

// Programs that read no input at all must evaluate the same way.
TEST(PelRegression, NoInputPrograms) {
  SimEventLoop loop;
  std::string addr = "n0";
  std::vector<Ty> no_fields;
  for (int i = 0; i < 500; ++i) {
    GenState gen(0xF00D + static_cast<uint64_t>(i), &no_fields);
    int steps = 2 + static_cast<int>(gen.Pick(10));
    for (int s = 0; s < steps; ++s) {
      gen.Step();
    }
    gen.Finish();
    Rng rng_a(7 + i);
    Rng rng_b(7 + i);
    PelVm vm_a(PelEnv{&loop, &rng_a, &addr});
    PelVm vm_b(PelEnv{&loop, &rng_b, &addr});
    Value a = vm_a.Eval(gen.prog, nullptr);
    Value b = vm_b.Eval(gen.prog, nullptr);
    ASSERT_EQ(a.type(), b.type()) << gen.prog.Disassemble();
    ASSERT_EQ(Value::Compare(a, b), 0) << gen.prog.Disassemble();
  }
}

}  // namespace
}  // namespace p2
