// OverLog watch(pred) taps: tuple-level tracing spliced into the dataflow
// (paper §7). The tap output for a small fixed-seed gossip run is pinned
// byte-for-byte against tests/goldens/watch_gossip.txt — virtual time and
// seeded RNG make the line stream deterministic. On a deliberate
// planner/tap change, rerun the test and copy its "actual watch output"
// dump over the golden.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/watch.h"
#include "src/overlays/gossip.h"
#include "src/p2/node.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

std::string ReadGolden(const std::string& name) {
  std::string path = std::string(P2_SOURCE_DIR) + "/tests/goldens/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Two gossip nodes, chain-seeded, gmember watched on both. Returns every
// watch line emitted in the first `run_s` virtual seconds.
std::string RunWatchedGossip(double run_s) {
  std::string captured;
  obs::SetWatchSink([&captured](const std::string& line) {
    captured += line;
    captured += '\n';
  });
  {
    SimEventLoop loop;
    SimNetwork net(&loop, Topology(TopologyConfig{}), /*seed=*/7);
    auto t0 = net.MakeTransport("n0", 0);
    auto t1 = net.MakeTransport("n1", 1);
    GossipConfig gc;
    gc.gossip_period_s = 1.0;
    auto make = [&](Transport* t, uint64_t seed,
                    const std::vector<std::string>& seeds) {
      P2NodeConfig nc;
      nc.executor = &loop;
      nc.transport = t;
      nc.seed = seed;
      nc.watches = {"gmember"};
      return std::make_unique<GossipNode>(nc, gc, seeds);
    };
    auto n0 = make(t0.get(), 1, {});
    auto n1 = make(t1.get(), 2, {"n0"});
    n0->Start();
    n1->Start();
    loop.RunUntil(run_s);
    n0->Stop();
    n1->Stop();
  }
  obs::SetWatchSink(nullptr);
  return captured;
}

TEST(WatchTap, GoldenGossipRun) {
  std::string actual = RunWatchedGossip(2.5);
  EXPECT_GT(actual.size(), 0u);
  std::string expected = ReadGolden("watch_gossip.txt");
  if (actual != expected) {
    // Dump the actual stream so a deliberate change can be re-pinned
    // without re-deriving it.
    std::fprintf(stderr, "--- actual watch output ---\n%s--- end ---\n", actual.c_str());
  }
  EXPECT_EQ(actual, expected);
}

TEST(WatchTap, DeterministicAcrossRuns) {
  EXPECT_EQ(RunWatchedGossip(2.5), RunWatchedGossip(2.5));
}

TEST(WatchTap, UnwatchedRunEmitsNothing) {
  std::string captured;
  obs::SetWatchSink([&captured](const std::string& line) {
    captured += line;
    captured += '\n';
  });
  {
    SimEventLoop loop;
    SimNetwork net(&loop, Topology(TopologyConfig{}), /*seed=*/7);
    auto t0 = net.MakeTransport("n0", 0);
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = t0.get();
    nc.seed = 1;
    GossipNode n0(nc, GossipConfig{}, {});
    n0.Start();
    loop.RunUntil(2.0);
    n0.Stop();
  }
  obs::SetWatchSink(nullptr);
  EXPECT_EQ(captured, "");
}

// The program-level `watch(pred).` declaration reaches the same taps as
// the config-level list.
TEST(WatchTap, ProgramWatchDeclarationInstallsTaps) {
  std::string captured;
  obs::SetWatchSink([&captured](const std::string& line) {
    captured += line;
    captured += '\n';
  });
  {
    SimEventLoop loop;
    SimNetwork net(&loop, Topology(TopologyConfig{}), /*seed=*/7);
    auto t0 = net.MakeTransport("n0", 0);
    P2NodeConfig nc;
    nc.executor = &loop;
    nc.transport = t0.get();
    nc.seed = 1;
    P2Node node(nc);
    std::string err;
    ASSERT_TRUE(node.Install("watch(tick).\n"
                             "r1 tick@X(X) :- periodic@X(X, E, 1).",
                             &err))
        << err;
    node.Start();
    loop.RunUntil(2.5);
    node.Stop();
  }
  obs::SetWatchSink(nullptr);
  EXPECT_NE(captured.find("point=head label=r1 tick(n0)"), std::string::npos);
}

}  // namespace
}  // namespace p2
