#include "src/runtime/uint160.h"

#include <gtest/gtest.h>

#include "src/runtime/random.h"

namespace p2 {
namespace {

TEST(Uint160, DefaultIsZero) {
  Uint160 z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToHex(), "0");
}

TEST(Uint160, AdditionCarriesAcrossLimbs) {
  Uint160 a(0, 0, ~0ull);  // low limb all ones
  Uint160 r = a + Uint160(1);
  EXPECT_EQ(r.limbs()[0], 0u);
  EXPECT_EQ(r.limbs()[1], 1u);
  EXPECT_EQ(r.limbs()[2], 0u);
}

TEST(Uint160, SubtractionBorrowsAcrossLimbs) {
  Uint160 a(0, 1, 0);  // 2^64
  Uint160 r = a - Uint160(1);
  EXPECT_EQ(r.limbs()[0], ~0ull);
  EXPECT_EQ(r.limbs()[1], 0u);
}

TEST(Uint160, WrapsModulo2To160) {
  Uint160 max = Uint160::Max();
  EXPECT_TRUE((max + Uint160(1)).IsZero());
  EXPECT_EQ(Uint160(0) - Uint160(1), max);
}

TEST(Uint160, ShiftLeftSmall) {
  Uint160 one(1);
  EXPECT_EQ((one << 4).Low64(), 16u);
  EXPECT_EQ((one << 63).Low64(), 1ull << 63);
}

TEST(Uint160, ShiftLeftAcrossLimbBoundary) {
  Uint160 one(1);
  Uint160 r = one << 64;
  EXPECT_EQ(r.limbs()[0], 0u);
  EXPECT_EQ(r.limbs()[1], 1u);
  r = one << 159;
  EXPECT_EQ(r.limbs()[2], 1ull << 31);
  EXPECT_TRUE((one << 160).IsZero());
  EXPECT_TRUE((one << 200).IsZero());
}

TEST(Uint160, ComparisonIsUnsignedLexicographic) {
  EXPECT_LT(Uint160(5), Uint160(6));
  EXPECT_LT(Uint160(0, 0, ~0ull), Uint160(0, 1, 0));
  EXPECT_LT(Uint160(0, ~0ull, ~0ull), Uint160(1, 0, 0));
  EXPECT_LE(Uint160(7), Uint160(7));
  EXPECT_GT(Uint160(8), Uint160(7));
  EXPECT_GE(Uint160(8), Uint160(8));
}

TEST(Uint160, HexRoundTrip) {
  Uint160 v;
  ASSERT_TRUE(Uint160::FromHex("0xdeadbeef", &v));
  EXPECT_EQ(v.Low64(), 0xdeadbeefull);
  EXPECT_EQ(v.ToHex(), "deadbeef");
  ASSERT_TRUE(Uint160::FromHex("ffffffffffffffffffffffffffffffffffffffff", &v));
  EXPECT_EQ(v, Uint160::Max());
  EXPECT_FALSE(Uint160::FromHex("xyz", &v));
  EXPECT_FALSE(Uint160::FromHex("", &v));
  // 41 hex digits overflow 160 bits.
  EXPECT_FALSE(Uint160::FromHex("10000000000000000000000000000000000000000", &v));
}

TEST(Uint160, HashOfIsDeterministicAndSpreads) {
  Uint160 a = Uint160::HashOf("n1");
  Uint160 b = Uint160::HashOf("n1");
  Uint160 c = Uint160::HashOf("n2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Uint160, IntervalOpenOpen) {
  Uint160 lo(10);
  Uint160 hi(20);
  EXPECT_FALSE(Uint160(10).InOO(lo, hi));
  EXPECT_TRUE(Uint160(11).InOO(lo, hi));
  EXPECT_TRUE(Uint160(19).InOO(lo, hi));
  EXPECT_FALSE(Uint160(20).InOO(lo, hi));
  EXPECT_FALSE(Uint160(25).InOO(lo, hi));
}

TEST(Uint160, IntervalOpenClosed) {
  Uint160 lo(10);
  Uint160 hi(20);
  EXPECT_FALSE(Uint160(10).InOC(lo, hi));
  EXPECT_TRUE(Uint160(20).InOC(lo, hi));
  EXPECT_FALSE(Uint160(21).InOC(lo, hi));
}

TEST(Uint160, IntervalWrapsAroundZero) {
  // Interval (max-5, 5): walks clockwise through 0.
  Uint160 lo = Uint160::Max() - Uint160(5);
  Uint160 hi(5);
  EXPECT_TRUE(Uint160(0).InOO(lo, hi));
  EXPECT_TRUE(Uint160::Max().InOO(lo, hi));
  EXPECT_TRUE(Uint160(4).InOO(lo, hi));
  EXPECT_FALSE(Uint160(5).InOO(lo, hi));
  EXPECT_FALSE(Uint160(100).InOO(lo, hi));
  EXPECT_TRUE(Uint160(5).InOC(lo, hi));
}

TEST(Uint160, DegenerateIntervalIsFullRing) {
  // Chord semantics: (x, x] covers the whole ring (single-node ring owns
  // every key), (x, x) covers everything but x.
  Uint160 x(42);
  EXPECT_TRUE(Uint160(7).InOC(x, x));
  EXPECT_TRUE(x.InOC(x, x));
  EXPECT_TRUE(Uint160(7).InOO(x, x));
  EXPECT_FALSE(x.InOO(x, x));
}

TEST(Uint160, DistanceFrom) {
  EXPECT_EQ(Uint160(15).DistanceFrom(Uint160(10)), Uint160(5));
  // Wrap: distance from 10 back around to 5.
  Uint160 d = Uint160(5).DistanceFrom(Uint160(10));
  EXPECT_EQ(d, Uint160::Max() - Uint160(4));
}

// Property sweep: a + b - b == a, and interval membership matches a
// reference implementation over 64-bit values.
class Uint160PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Uint160PropertyTest, AddSubRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Uint160 a = rng.NextId();
    Uint160 b = rng.NextId();
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(a - b + b, a);
    EXPECT_EQ(a + b, b + a);
  }
}

TEST_P(Uint160PropertyTest, IntervalComplementarity) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 200; ++i) {
    Uint160 n = rng.NextId();
    Uint160 s = rng.NextId();
    Uint160 k = rng.NextId();
    if (n == s) {
      continue;
    }
    // Chord lookup exclusivity invariant: either K in (N,S] or S in (N,K)
    // (used by rules L1 vs L3 to fire exactly one case).
    bool own = k.InOC(n, s);
    bool forward = s.InOO(n, k) || k == n;
    EXPECT_NE(own, forward) << "n=" << n.ToHex() << " s=" << s.ToHex()
                            << " k=" << k.ToHex();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Uint160PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace p2
