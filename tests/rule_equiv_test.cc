// Randomized differential test: semi-naive vs legacy planner.
//
// Generates random OverLog programs in a fragment where both planners are
// specified to produce identical results — deterministic expressions only,
// pure-table rules restricted to single-predicate bodies (so the legacy
// single trigger sees every delta the semi-naive variants see), DAG table
// dependencies, and no deletions on tables that support derived heads
// (remove chains then never fire, and the legacy planner has no remove
// path to compare against). Within that fragment the semi-naive planner's
// cost-ordered joins, delta variants and incremental aggregates must be
// OBSERVABLY EQUIVALENT to the legacy source-order, full-scan plans: same
// final contents of every table and the same multiset of emitted stream
// heads, for the same driven insert/inject sequence.
//
// Every program also round-trips through both explain dumps, pinning that
// mode selection actually reaches the plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/p2/node.h"
#include "src/sim/network.h"

namespace p2 {
namespace {

struct GenTable {
  std::string name;
  size_t arity;  // including the leading address field
};

struct GenProgram {
  std::string text;
  std::vector<GenTable> bases;     // driven with inserts
  std::vector<std::string> heads;  // stream heads to subscribe to
};

std::string Var(size_t i) { return std::string(1, static_cast<char>('A' + i)); }

// Builds one random program: 2-3 base tables, 1-2 stream rules with
// multi-table join bodies (where cost ordering can actually reorder), one
// single-predicate pure-table chain, and one table aggregate.
GenProgram Generate(std::mt19937* rng) {
  auto pick = [rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(*rng);
  };
  GenProgram p;
  std::ostringstream out;

  size_t num_bases = static_cast<size_t>(pick(2, 3));
  for (size_t i = 0; i < num_bases; ++i) {
    GenTable t;
    t.name = "b" + std::to_string(i);
    t.arity = static_cast<size_t>(pick(3, 4));
    p.bases.push_back(t);
    // Whole row as key: inserts never displace, so both planners see the
    // same multiset of rows however the drive sequence collides.
    out << "materialize(" << t.name << ", infinity, 1000, keys(";
    for (size_t k = 2; k <= t.arity; ++k) {
      out << (k == 2 ? "" : ",") << k;
    }
    out << ")).\n";
  }

  // Stream rules: ev(X, A) joined against every base on its first data
  // column, all bindings exported. Different bodies per rule exercise
  // different join orders under the cost model.
  int num_stream = pick(1, 2);
  for (int r = 0; r < num_stream; ++r) {
    std::vector<size_t> body(p.bases.size());
    for (size_t i = 0; i < body.size(); ++i) {
      body[i] = i;
    }
    std::shuffle(body.begin(), body.end(), *rng);
    size_t use = static_cast<size_t>(pick(2, static_cast<int>(body.size())));
    std::string head = "out" + std::to_string(r);
    p.heads.push_back(head);
    out << "s" << r << " " << head << "@X(X";
    size_t var = 0;
    std::vector<std::string> terms;
    for (size_t i = 0; i < use; ++i) {
      const GenTable& t = p.bases[body[i]];
      std::ostringstream term;
      term << t.name << "@X(X, A";  // join column: shared variable A
      for (size_t k = 2; k < t.arity; ++k) {
        term << ", " << Var(1 + var);  // B, C, ... all exported
        ++var;
      }
      term << ")";
      terms.push_back(term.str());
    }
    for (size_t v = 0; v < 1 + var; ++v) {
      out << ", " << Var(v);
    }
    out << ") :- ev@X(X, A)";
    for (const std::string& t : terms) {
      out << ", " << t;
    }
    if (pick(0, 1) == 1) {
      out << ", A < 4";  // deterministic filter
    }
    out << ".\n";
  }

  // Pure-table chain: d0 :- b0, d1 :- d0. Single-predicate bodies keep the
  // legacy single trigger equivalent; all vars in the head so contents
  // match row-for-row.
  out << "materialize(d0, infinity, 1000, keys(2,3)).\n"
      << "materialize(d1, infinity, 1000, keys(2,3)).\n"
      << "t0 d0@X(X, A, B) :- " << p.bases[0].name << "@X(X, A, B";
  for (size_t k = 3; k < p.bases[0].arity; ++k) {
    out << ", _";
  }
  out << ").\nt1 d1@X(X, B, A) :- d0@X(X, A, B), B != A.\n";

  // Table aggregate over b1's first two data columns.
  const char* agg = pick(0, 1) == 0 ? "min" : "max";
  out << "materialize(agg0, infinity, 1000, keys(2)).\n"
      << "ag agg0@X(X, A, " << agg << "<B>) :- " << p.bases[1].name << "@X(X, A, B";
  for (size_t k = 3; k < p.bases[1].arity; ++k) {
    out << ", _";
  }
  out << ").\n";

  p.text = out.str();
  return p;
}

// One node running `program` under `mode`, fed the identical drive
// sequence; returns (sorted table dump, sorted stream-head multiset).
struct RunResult {
  std::vector<std::string> tables;
  std::vector<std::string> streams;
};

std::string RowKey(const Tuple& t) {
  // Field 0 is always the node's own address; drop it so runs on different
  // transports compare equal.
  std::string s = t.name() + "(";
  for (size_t i = 1; i < t.size(); ++i) {
    s += t.field(i).ToString() + ",";
  }
  return s + ")";
}

RunResult Drive(const GenProgram& p, PlannerMode mode, uint64_t seed,
                bool counting = true) {
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 7);
  auto transport = net.MakeTransport("n1", 0);
  P2NodeConfig c;
  c.executor = &loop;
  c.transport = transport.get();
  c.seed = 42;
  c.planner_mode = mode;
  c.counting = counting;
  P2Node node(c);
  std::string err;
  EXPECT_TRUE(node.Install(p.text, &err)) << err << "\n" << p.text;

  RunResult result;
  for (const std::string& head : p.heads) {
    node.Subscribe(head, [&result](const TuplePtr& t) {
      result.streams.push_back(RowKey(*t));
    });
  }
  node.Start();

  // Identical drive sequence for both modes: interleaved base inserts and
  // event injections over a tiny value domain (collisions guaranteed).
  std::mt19937 drive(static_cast<unsigned>(seed));
  auto pick = [&drive](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(drive);
  };
  for (int step = 0; step < 60; ++step) {
    if (pick(0, 3) == 0) {
      node.Inject(Tuple::Make("ev", {Value::Addr("n1"), Value::Int(pick(0, 5))}));
    } else {
      const GenTable& t = p.bases[static_cast<size_t>(pick(
          0, static_cast<int>(p.bases.size()) - 1))];
      std::vector<Value> fields{Value::Addr("n1")};
      for (size_t k = 1; k < t.arity; ++k) {
        fields.push_back(Value::Int(pick(0, 5)));
      }
      node.GetTable(t.name)->Insert(Tuple::Make(t.name, std::move(fields)));
    }
    loop.RunUntil(loop.Now() + 0.01);
  }
  loop.RunUntil(loop.Now() + 1.0);

  for (const char* name : {"d0", "d1", "agg0"}) {
    for (const TuplePtr& row : node.GetTable(name)->Scan()) {
      result.tables.push_back(RowKey(*row));
    }
  }
  for (const GenTable& t : p.bases) {
    for (const TuplePtr& row : node.GetTable(t.name)->Scan()) {
      result.tables.push_back(RowKey(*row));
    }
  }
  std::sort(result.tables.begin(), result.tables.end());
  std::sort(result.streams.begin(), result.streams.end());
  return result;
}

TEST(RuleEquivTest, RandomProgramsAgreeAcrossPlanners) {
  // Three-way: legacy, semi-naive with support counting (the default), and
  // semi-naive with counting off (the PR 6 wiring). The corpus is
  // insert-only, where all three are specified to be equivalent.
  for (uint64_t case_id = 0; case_id < 25; ++case_id) {
    std::mt19937 rng(static_cast<unsigned>(1000 + case_id));
    GenProgram p = Generate(&rng);
    RunResult legacy = Drive(p, PlannerMode::kLegacy, case_id);
    RunResult counting = Drive(p, PlannerMode::kSemiNaive, case_id);
    RunResult no_counting = Drive(p, PlannerMode::kSemiNaive, case_id, /*counting=*/false);
    EXPECT_EQ(legacy.tables, counting.tables) << "case " << case_id << "\n" << p.text;
    EXPECT_EQ(legacy.streams, counting.streams) << "case " << case_id << "\n" << p.text;
    EXPECT_EQ(legacy.tables, no_counting.tables) << "case " << case_id << "\n" << p.text;
    EXPECT_EQ(legacy.streams, no_counting.streams) << "case " << case_id << "\n" << p.text;
  }
}

// Projected-support rule h(B) :- b(A,B): the head drops A, so several b
// rows derive the SAME h row. PR 6 refused such rules a remove chain
// (deleting h on the first support loss would over-delete); counting keeps
// a per-head-row derivation count instead and deletes only at zero.
class MultiDerivationTest : public ::testing::Test {
 protected:
  static constexpr char kProgram[] =
      "materialize(b, infinity, 1000, keys(2,3)).\n"
      "materialize(h, infinity, 1000, keys(2)).\n"
      "r h@X(X,B) :- b@X(X,A,B).\n";

  MultiDerivationTest() : net_(&loop_, Topology(TopologyConfig{}), 7) {
    transport_ = net_.MakeTransport("n1", 0);
  }

  std::unique_ptr<P2Node> Make(PlannerMode mode, bool counting) {
    P2NodeConfig c;
    c.executor = &loop_;
    c.transport = transport_.get();
    c.seed = 42;
    c.planner_mode = mode;
    c.counting = counting;
    auto node = std::make_unique<P2Node>(c);
    std::string err;
    EXPECT_TRUE(node->Install(kProgram, &err)) << err;
    node->Start();
    return node;
  }

  void InsertB(P2Node* n, int64_t a, int64_t b) {
    n->GetTable("b")->Insert(
        Tuple::Make("b", {Value::Addr("n1"), Value::Int(a), Value::Int(b)}));
  }
  bool DeleteB(P2Node* n, int64_t a, int64_t b) {
    return n->GetTable("b")->DeleteByKey({Value::Int(a), Value::Int(b)});
  }
  std::vector<std::string> DumpH(P2Node* n) {
    std::vector<std::string> rows;
    for (const TuplePtr& row : n->GetTable("h")->Scan()) {
      rows.push_back(RowKey(*row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  SimEventLoop loop_;
  SimNetwork net_;
  std::unique_ptr<SimTransport> transport_;
};

TEST_F(MultiDerivationTest, CountingNeverDeletesARowWithALiveSupport) {
  auto counting = Make(PlannerMode::kSemiNaive, /*counting=*/true);
  auto ttl_only = Make(PlannerMode::kSemiNaive, /*counting=*/false);
  for (P2Node* n : {counting.get(), ttl_only.get()}) {
    for (int64_t a = 0; a < 3; ++a) {
      InsertB(n, a, 7);
    }
  }
  loop_.RunUntil(loop_.Now() + 0.1);
  const SupportCounts* counts = counting->SupportCountsFor("h");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->Count(*Tuple::Make("h", {Value::Addr("n1"), Value::Int(7)})), 3u);
  ASSERT_EQ(ttl_only->SupportCountsFor("h"), nullptr);

  // Two of three supports retract: h(7) must survive under counting.
  for (P2Node* n : {counting.get(), ttl_only.get()}) {
    EXPECT_TRUE(DeleteB(n, 0, 7));
    EXPECT_TRUE(DeleteB(n, 1, 7));
  }
  loop_.RunUntil(loop_.Now() + 0.1);
  EXPECT_EQ(counting->GetTable("h")->size(), 1u);
  EXPECT_EQ(counts->Count(*Tuple::Make("h", {Value::Addr("n1"), Value::Int(7)})), 1u);

  // Last support retracts: counting deletes the head; the TTL-only node
  // (PR 6 gating: projected supports get NO remove chain) keeps it until
  // soft-state expiry — which never comes at infinite lifetime.
  for (P2Node* n : {counting.get(), ttl_only.get()}) {
    EXPECT_TRUE(DeleteB(n, 2, 7));
  }
  loop_.RunUntil(loop_.Now() + 0.1);
  EXPECT_EQ(counting->GetTable("h")->size(), 0u);
  EXPECT_EQ(ttl_only->GetTable("h")->size(), 1u);
}

TEST_F(MultiDerivationTest, FinalStatesAgreeWhenEverySurvivingHeadHasSupport) {
  // Retractions mid-run, then one support re-inserted per surviving head
  // value: every planner mode must converge to the same final h table
  // (counting deleted-and-rederived, the others just kept deriving).
  auto drive = [&](P2Node* n) {
    for (int64_t b = 0; b < 3; ++b) {
      for (int64_t a = 0; a < 4; ++a) {
        InsertB(n, a, b);
      }
    }
    loop_.RunUntil(loop_.Now() + 0.05);
    for (int64_t a = 0; a < 4; ++a) {
      DeleteB(n, a, 0);  // all supports of h(0)
    }
    DeleteB(n, 0, 1);  // some supports of h(1)
    DeleteB(n, 1, 1);
    loop_.RunUntil(loop_.Now() + 0.05);
    for (int64_t b = 0; b < 3; ++b) {
      InsertB(n, 9, b);  // fresh support for every head value
    }
    loop_.RunUntil(loop_.Now() + 0.05);
  };
  auto legacy = Make(PlannerMode::kLegacy, true);
  auto counting = Make(PlannerMode::kSemiNaive, true);
  auto ttl_only = Make(PlannerMode::kSemiNaive, false);
  drive(legacy.get());
  drive(counting.get());
  drive(ttl_only.get());
  EXPECT_EQ(DumpH(legacy.get()), DumpH(counting.get()));
  EXPECT_EQ(DumpH(legacy.get()), DumpH(ttl_only.get()));
  EXPECT_EQ(DumpH(counting.get()).size(), 3u);
}

TEST(RuleEquivTest, ModeReachesThePlan) {
  std::mt19937 rng(1);
  GenProgram p = Generate(&rng);
  SimEventLoop loop;
  SimNetwork net(&loop, Topology(TopologyConfig{}), 7);
  auto transport = net.MakeTransport("n1", 0);
  for (PlannerMode mode : {PlannerMode::kSemiNaive, PlannerMode::kLegacy}) {
    P2NodeConfig c;
    c.executor = &loop;
    c.transport = transport.get();
    c.planner_mode = mode;
    P2Node node(c);
    std::string err;
    ASSERT_TRUE(node.Install(p.text, &err)) << err;
    const std::string& dump = node.PlanExplain();
    if (mode == PlannerMode::kSemiNaive) {
      EXPECT_NE(dump.find("plan mode=semi-naive counting=on"), std::string::npos);
      EXPECT_NE(dump.find("delta-insert"), std::string::npos);
      EXPECT_NE(dump.find("(incremental)"), std::string::npos);
      // Counting reaches the chains: counted heads route through the
      // support counter and retract through the counted path.
      EXPECT_NE(dump.find("-> count+route"), std::string::npos);
      EXPECT_NE(dump.find("-> retract-count (local)"), std::string::npos);
    } else {
      EXPECT_NE(dump.find("plan mode=legacy"), std::string::npos);
      // Single trigger per rule: no "+pred" delta variants, no remove chains.
      EXPECT_EQ(dump.find("rule t1+"), std::string::npos);
      EXPECT_EQ(dump.find("delta-remove"), std::string::npos);
      EXPECT_NE(dump.find("(full-scan)"), std::string::npos);
    }
  }
  // counting=off keeps the PR 6 wiring: no counted chains anywhere.
  P2NodeConfig c;
  c.executor = &loop;
  c.transport = transport.get();
  c.planner_mode = PlannerMode::kSemiNaive;
  c.counting = false;
  P2Node node(c);
  std::string err;
  ASSERT_TRUE(node.Install(p.text, &err)) << err;
  const std::string& dump = node.PlanExplain();
  EXPECT_NE(dump.find("plan mode=semi-naive counting=off"), std::string::npos);
  EXPECT_EQ(dump.find("count+route"), std::string::npos);
  EXPECT_EQ(dump.find("retract-count"), std::string::npos);
}

}  // namespace
}  // namespace p2
