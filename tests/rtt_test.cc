// RTT estimator math: Jacobson/Karels SRTT/RTTVAR updates, RTO clamping,
// timeout backoff, and the Karn's-rule contract around retransmitted
// samples (enforced at the channel layer by never feeding them in).
#include "src/net/stack/rtt.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(RttEstimator, InitialRtoBeforeAnySample) {
  RttConfig cfg;
  cfg.initial_rto_s = 1.5;
  RttEstimator rtt(cfg);
  EXPECT_FALSE(rtt.has_sample());
  EXPECT_DOUBLE_EQ(rtt.Rto(), 1.5);
}

TEST(RttEstimator, FirstSampleSeedsSrttAndRttvar) {
  RttEstimator rtt;
  rtt.AddSample(0.4);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_DOUBLE_EQ(rtt.srtt_s(), 0.4);
  EXPECT_DOUBLE_EQ(rtt.rttvar_s(), 0.2);
  // RTO = SRTT + 4*RTTVAR = 0.4 + 0.8 = 1.2, inside the default clamp.
  EXPECT_DOUBLE_EQ(rtt.Rto(), 1.2);
}

TEST(RttEstimator, EwmaUpdateMatchesRfc6298) {
  RttEstimator rtt;
  rtt.AddSample(0.4);
  rtt.AddSample(0.2);
  // RTTVAR' = 3/4*0.2 + 1/4*|0.4-0.2| = 0.2; SRTT' = 7/8*0.4 + 1/8*0.2.
  EXPECT_NEAR(rtt.rttvar_s(), 0.2, 1e-12);
  EXPECT_NEAR(rtt.srtt_s(), 0.375, 1e-12);
  EXPECT_NEAR(rtt.Rto(), 0.375 + 4 * 0.2, 1e-12);
}

TEST(RttEstimator, ConvergesOnSteadyRtt) {
  RttEstimator rtt;
  for (int i = 0; i < 200; ++i) {
    rtt.AddSample(0.3);
  }
  EXPECT_NEAR(rtt.srtt_s(), 0.3, 1e-6);
  EXPECT_NEAR(rtt.rttvar_s(), 0.0, 1e-6);
  EXPECT_EQ(rtt.samples(), 200u);
}

TEST(RttEstimator, RtoClampedToMinimum) {
  RttEstimator rtt;  // default min_rto 0.25s
  for (int i = 0; i < 100; ++i) {
    rtt.AddSample(0.01);  // SRTT+4*RTTVAR collapses below the floor
  }
  EXPECT_DOUBLE_EQ(rtt.Rto(), RttConfig{}.min_rto_s);
}

TEST(RttEstimator, RtoClampedToMaximum) {
  RttEstimator rtt;
  rtt.AddSample(30.0);
  EXPECT_DOUBLE_EQ(rtt.Rto(), RttConfig{}.max_rto_s);
}

TEST(RttEstimator, BackoffDoublesAndIsCapped) {
  RttConfig cfg;
  cfg.max_rto_s = 60.0;
  RttEstimator rtt(cfg);
  rtt.AddSample(0.5);  // RTO = 0.5 + 4*0.25 = 1.5
  double base = rtt.Rto();
  rtt.Backoff();
  EXPECT_DOUBLE_EQ(rtt.Rto(), 2 * base);
  rtt.Backoff();
  EXPECT_DOUBLE_EQ(rtt.Rto(), 4 * base);
  for (int i = 0; i < 10; ++i) {
    rtt.Backoff();
  }
  EXPECT_DOUBLE_EQ(rtt.Rto(), 60.0);
  // ResetBackoff clears the multiplier without a sample.
  rtt.ResetBackoff();
  EXPECT_DOUBLE_EQ(rtt.Rto(), base);
}

TEST(RttEstimator, KarnFreshSampleResetsBackoff) {
  RttEstimator rtt;
  rtt.AddSample(0.5);
  double base = rtt.Rto();
  rtt.Backoff();
  rtt.Backoff();
  ASSERT_GT(rtt.Rto(), base);
  // A new unambiguous (non-retransmitted) sample clears the backoff (the
  // RTO even dips below the pre-backoff value as RTTVAR decays).
  rtt.AddSample(0.5);
  EXPECT_LE(rtt.Rto(), base);
  EXPECT_GT(rtt.Rto(), base / 2);
}

TEST(RttEstimator, NegativeSamplesTreatedAsZero) {
  RttEstimator rtt;
  rtt.AddSample(-1.0);
  EXPECT_DOUBLE_EQ(rtt.srtt_s(), 0.0);
  EXPECT_DOUBLE_EQ(rtt.Rto(), RttConfig{}.min_rto_s);
}

}  // namespace
}  // namespace p2
