#include "src/table/table.h"

#include <gtest/gtest.h>

#include "src/sim/event_loop.h"

namespace p2 {
namespace {

TuplePtr Row(const std::string& name, int64_t k, int64_t v) {
  return Tuple::Make(name, {Value::Int(k), Value::Int(v)});
}

class TableTest : public ::testing::Test {
 protected:
  TableSpec Spec(double lifetime, size_t max_size) {
    TableSpec s;
    s.name = "t";
    s.lifetime_s = lifetime;
    s.max_size = max_size;
    s.key_positions = {0};
    return s;
  }
  SimEventLoop loop_;
};

TEST_F(TableTest, InsertAndFind) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  EXPECT_TRUE(t.Insert(Row("t", 1, 10)));
  EXPECT_EQ(t.size(), 1u);
  TuplePtr found = t.FindByKey({Value::Int(1)});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->field(1).AsInt(), 10);
  EXPECT_EQ(t.FindByKey({Value::Int(9)}), nullptr);
}

TEST_F(TableTest, InsertReplacesByPrimaryKey) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  EXPECT_TRUE(t.Insert(Row("t", 1, 10)));
  EXPECT_TRUE(t.Insert(Row("t", 1, 20)));   // changed content
  EXPECT_FALSE(t.Insert(Row("t", 1, 20)));  // identical refresh
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.FindByKey({Value::Int(1)})->field(1).AsInt(), 20);
}

TEST_F(TableTest, FifoEvictionBeyondMaxSize) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 3), &loop_);
  for (int i = 0; i < 5; ++i) {
    t.Insert(Row("t", i, i));
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.FindByKey({Value::Int(0)}), nullptr);
  EXPECT_EQ(t.FindByKey({Value::Int(1)}), nullptr);
  EXPECT_NE(t.FindByKey({Value::Int(4)}), nullptr);
}

TEST_F(TableTest, RefreshMovesRowToBackOfEvictionOrder) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 2), &loop_);
  t.Insert(Row("t", 1, 1));
  t.Insert(Row("t", 2, 2));
  t.Insert(Row("t", 1, 1));  // refresh 1: now 2 is oldest
  t.Insert(Row("t", 3, 3));  // evicts 2
  EXPECT_NE(t.FindByKey({Value::Int(1)}), nullptr);
  EXPECT_EQ(t.FindByKey({Value::Int(2)}), nullptr);
}

TEST_F(TableTest, SoftStateExpiry) {
  Table t(Spec(10.0, 100), &loop_);
  t.Insert(Row("t", 1, 1));
  loop_.RunUntil(5.0);
  t.Insert(Row("t", 2, 2));
  loop_.RunUntil(10.5);  // row 1 expired (inserted at 0, ttl 10)
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.FindByKey({Value::Int(1)}), nullptr);
  EXPECT_NE(t.FindByKey({Value::Int(2)}), nullptr);
  loop_.RunUntil(16.0);
  EXPECT_EQ(t.size(), 0u);
}

TEST_F(TableTest, RefreshExtendsLifetime) {
  Table t(Spec(10.0, 100), &loop_);
  t.Insert(Row("t", 1, 1));
  loop_.RunUntil(8.0);
  t.Insert(Row("t", 1, 1));  // refresh at t=8: expires at 18
  loop_.RunUntil(15.0);
  EXPECT_NE(t.FindByKey({Value::Int(1)}), nullptr);
  loop_.RunUntil(19.0);
  EXPECT_EQ(t.FindByKey({Value::Int(1)}), nullptr);
}

TEST_F(TableTest, DeleteByKeyAndMatching) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  t.Insert(Row("t", 1, 10));
  t.Insert(Row("t", 2, 20));
  EXPECT_TRUE(t.DeleteByKey({Value::Int(1)}));
  EXPECT_FALSE(t.DeleteByKey({Value::Int(1)}));
  // DeleteMatching extracts the key from a derived tuple (value ignored).
  EXPECT_TRUE(t.DeleteMatching(*Row("t", 2, 999)));
  EXPECT_EQ(t.size(), 0u);
}

TEST_F(TableTest, SecondaryIndexLookup) {
  TableSpec s;
  s.name = "member";
  s.key_positions = {0};
  Table t(s, &loop_);
  t.Insert(Tuple::Make("member", {Value::Int(1), Value::Str("a"), Value::Int(100)}));
  t.Insert(Tuple::Make("member", {Value::Int(2), Value::Str("b"), Value::Int(100)}));
  t.Insert(Tuple::Make("member", {Value::Int(3), Value::Str("a"), Value::Int(200)}));
  t.AddIndex({1});
  EXPECT_TRUE(t.HasIndex({1}));
  EXPECT_FALSE(t.HasIndex({2}));
  std::vector<TuplePtr> hits = t.LookupByCols({1}, {Value::Str("a")});
  EXPECT_EQ(hits.size(), 2u);
  // Index stays correct across replacement and deletion.
  t.Insert(Tuple::Make("member", {Value::Int(1), Value::Str("c"), Value::Int(1)}));
  hits = t.LookupByCols({1}, {Value::Str("a")});
  EXPECT_EQ(hits.size(), 1u);
  t.DeleteByKey({Value::Int(3)});
  EXPECT_TRUE(t.LookupByCols({1}, {Value::Str("a")}).empty());
}

TEST_F(TableTest, LookupWithoutIndexScans) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  t.Insert(Row("t", 1, 7));
  t.Insert(Row("t", 2, 7));
  t.Insert(Row("t", 3, 8));
  EXPECT_EQ(t.LookupByCols({1}, {Value::Int(7)}).size(), 2u);
}

TEST_F(TableTest, RepeatedScansAutoMaterializeAnIndex) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  for (int i = 0; i < 10; ++i) {
    t.Insert(Row("t", i, i % 3));
  }
  EXPECT_FALSE(t.HasIndex({1}));
  for (int probe = 0; probe < Table::kAutoIndexScans; ++probe) {
    EXPECT_EQ(t.LookupByCols({1}, {Value::Int(0)}).size(), 4u);
  }
  // The threshold-th scan built the index; results stay identical and the
  // index tracks subsequent mutations.
  EXPECT_TRUE(t.HasIndex({1}));
  t.Insert(Row("t", 10, 0));
  EXPECT_EQ(t.LookupByCols({1}, {Value::Int(0)}).size(), 5u);
  t.DeleteByKey({Value::Int(0)});
  EXPECT_EQ(t.LookupByCols({1}, {Value::Int(0)}).size(), 4u);
}

TEST_F(TableTest, ExpiryTimerFiresRemovalListenersWithoutTouches) {
  // Rows must expire (and notify removal listeners) on the executor's
  // clock even when nothing queries the table — table aggregates depend on
  // the notification to shrink.
  Table t(Spec(5.0, 100), &loop_);
  int removed = 0;
  t.AddRemoveListener([&](const TuplePtr&) { ++removed; });
  t.Insert(Row("t", 1, 1));
  t.Insert(Row("t", 2, 2));
  loop_.RunUntil(4.9);
  EXPECT_EQ(removed, 0);
  loop_.RunUntil(5.1);  // no table call in between: the timer purges
  EXPECT_EQ(removed, 2);
}

TEST_F(TableTest, MultiColumnIndex) {
  TableSpec s;
  s.name = "env";
  s.key_positions = {0, 1};
  Table t(s, &loop_);
  t.Insert(Tuple::Make("env", {Value::Int(1), Value::Str("x"), Value::Int(5)}));
  t.Insert(Tuple::Make("env", {Value::Int(1), Value::Str("y"), Value::Int(6)}));
  t.AddIndex({0, 1});
  std::vector<TuplePtr> hits = t.LookupByCols({0, 1}, {Value::Int(1), Value::Str("y")});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->field(2).AsInt(), 6);
}

TEST_F(TableTest, ScanReturnsOldestFirst) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  t.Insert(Row("t", 1, 1));
  t.Insert(Row("t", 2, 2));
  t.Insert(Row("t", 1, 9));  // refresh: moves to back
  std::vector<TuplePtr> rows = t.Scan();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->field(0).AsInt(), 2);
  EXPECT_EQ(rows[1]->field(0).AsInt(), 1);
}

TEST_F(TableTest, DeltaListenersFireOnEveryInsert) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 100), &loop_);
  int fires = 0;
  t.AddDeltaListener([&](const TuplePtr&) { ++fires; });
  t.Insert(Row("t", 1, 1));
  t.Insert(Row("t", 1, 1));  // refresh also fires (soft-state re-derivation)
  t.Insert(Row("t", 1, 2));
  EXPECT_EQ(fires, 3);
  t.DeleteByKey({Value::Int(1)});
  EXPECT_EQ(fires, 3);  // deletes do not fire insert deltas
}

TEST_F(TableTest, WholeTupleKeyWhenNoKeyPositions) {
  TableSpec s;
  s.name = "t";
  Table t(s, &loop_);
  t.Insert(Row("t", 1, 1));
  t.Insert(Row("t", 1, 1));
  t.Insert(Row("t", 1, 2));
  EXPECT_EQ(t.size(), 2u);
}

TEST_F(TableTest, ApproxBytesGrowsWithRows) {
  Table t(Spec(std::numeric_limits<double>::infinity(), 1000), &loop_);
  size_t empty = t.ApproxBytes();
  for (int i = 0; i < 100; ++i) {
    t.Insert(Row("t", i, i));
  }
  EXPECT_GT(t.ApproxBytes(), empty + 100 * sizeof(Tuple));
}

}  // namespace
}  // namespace p2
